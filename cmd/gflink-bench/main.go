// Command gflink-bench regenerates the tables and figures of the
// GFlink paper's evaluation on the simulated testbed.
//
// Usage:
//
//	gflink-bench -list
//	gflink-bench -exp fig5a,table2
//	gflink-bench -all [-scale 4] [-md results.md] [-trace out.json]
//
// -scale divides the real (in-memory) data sizes without changing any
// simulated cost; 1 is full fidelity, larger values run faster.
//
// -trace additionally records every deployment's span stream and writes
// one Chrome trace_event JSON file (open it at chrome://tracing or
// https://ui.perfetto.dev). All span timestamps come from the virtual
// clock, so the file is byte-identical across runs, GOMAXPROCS values
// and -scale settings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"gflink/internal/bench"
	"gflink/internal/obs"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list experiments and exit")
		exps   = flag.String("exp", "", "comma-separated experiment IDs to run")
		all    = flag.Bool("all", false, "run every experiment")
		scale  = flag.Int64("scale", 1, "real-data scale divisor multiplier (1 = full fidelity)")
		mdPath = flag.String("md", "", "also write results as markdown to this file")
		check  = flag.Bool("check", false, "run each experiment's pinned-shape check and exit nonzero on regression")
		trace  = flag.String("trace", "", "write a Chrome trace_event JSON of every run to this file")
		bjson  = flag.String("benchjson", "", "write the rendered tables (header, rows, notes) as machine-readable JSON to this file")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		return
	}

	var ids []string
	switch {
	case *all:
		for _, e := range bench.All() {
			ids = append(ids, e.ID)
		}
	case *exps != "":
		ids = strings.Split(*exps, ",")
	default:
		fmt.Fprintln(os.Stderr, "nothing to do: pass -all, -exp or -list")
		flag.Usage()
		os.Exit(2)
	}

	var md strings.Builder
	var failed bool
	var procs []obs.TraceProcess
	var tables []*bench.Table
	md.WriteString("# GFlink reproduction results\n\n")
	for _, id := range ids {
		e, ok := bench.ByID(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
			os.Exit(1)
		}
		var t *bench.Table
		if *trace != "" {
			var ps []obs.TraceProcess
			t, ps = bench.RunTraced(e, *scale)
			procs = append(procs, ps...)
		} else {
			t = e.Run(*scale)
		}
		fmt.Println(t.String())
		md.WriteString(t.Markdown())
		tables = append(tables, t)
		if *check {
			if e.Check == nil {
				fmt.Printf("check %s: no pinned-shape check\n\n", e.ID)
			} else if err := e.Check(t); err != nil {
				fmt.Fprintln(os.Stderr, "check failed:", err)
				failed = true
			} else {
				fmt.Printf("check %s: ok\n\n", e.ID)
			}
		}
	}
	if *bjson != "" {
		data, err := json.MarshalIndent(tables, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "marshaling bench json:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*bjson, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "writing bench json:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *bjson)
	}
	if failed {
		os.Exit(1)
	}
	if *trace != "" {
		data, err := obs.ChromeTrace(procs...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "building trace:", err)
			os.Exit(1)
		}
		if err := obs.ValidateChromeTrace(data); err != nil {
			fmt.Fprintln(os.Stderr, "trace failed schema validation:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*trace, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "writing trace:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d events from %d runs)\n", *trace, strings.Count(string(data), `"ph"`), len(procs))
	}
	if *mdPath != "" {
		if err := os.WriteFile(*mdPath, []byte(md.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "writing markdown:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *mdPath)
	}
}
