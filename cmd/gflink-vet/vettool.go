package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"gflink/internal/analysis"
	"gflink/internal/analysis/suite"
)

// vetConfig is the JSON unit description `go vet` hands a -vettool
// (the same schema golang.org/x/tools/go/analysis/unitchecker reads).
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// runVetTool analyzes one compilation unit described by cfgFile,
// resolving imports through the export data the go command prepared.
func runVetTool(cfgFile string) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fail(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fail(fmt.Errorf("parsing vet config %s: %w", cfgFile, err))
	}
	// The go command requires a facts file even though this suite
	// exports no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("gflink-vet: no facts\n"), 0o666); err != nil {
			fail(err)
		}
	}
	if cfg.VetxOnly {
		return
	}
	var active []analysis.Rule
	for _, r := range suite.Rules() {
		if r.Applies == nil || r.Applies(cfg.ImportPath) {
			active = append(active, r)
		}
	}
	if len(active) == 0 {
		return
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			typecheckFail(cfg, err)
			return
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	tconf := types.Config{Importer: importer.ForCompiler(fset, compiler, lookup)}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		typecheckFail(cfg, err)
		return
	}
	pkg := &analysis.Package{
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	findings, err := analysis.RunAnalyzers(pkg, active)
	if err != nil {
		fail(err)
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

func typecheckFail(cfg vetConfig, err error) {
	if cfg.SucceedOnTypecheckFailure {
		return
	}
	fail(err)
}
