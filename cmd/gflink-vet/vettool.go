package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"gflink/internal/analysis"
	"gflink/internal/analysis/suite"
)

// vetConfig is the JSON unit description `go vet` hands a -vettool
// (the same schema golang.org/x/tools/go/analysis/unitchecker reads).
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	// PackageVetx maps each dependency's import path to the facts file
	// its own vet invocation wrote; VetxOutput is where this unit's
	// facts go. Facts are re-exported transitively, so direct imports
	// suffice.
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// runVetTool analyzes one compilation unit described by cfgFile,
// resolving imports through the export data the go command prepared and
// cross-package analysis facts through the dependencies' vetx files.
func runVetTool(cfgFile string) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fail(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fail(fmt.Errorf("parsing vet config %s: %w", cfgFile, err))
	}
	var active []analysis.Rule
	for _, r := range suite.Rules() {
		if r.Applies == nil || r.Applies(cfg.ImportPath) {
			active = append(active, r)
		}
	}
	store := analysis.NewFactStore()
	for _, vetx := range cfg.PackageVetx {
		data, err := os.ReadFile(vetx)
		if err != nil || len(data) == 0 {
			continue // dependency exported no facts
		}
		if err := store.Decode(data); err != nil {
			fail(err)
		}
	}
	writeFacts := func() {
		if cfg.VetxOutput == "" {
			return
		}
		if err := os.WriteFile(cfg.VetxOutput, store.Encode(), 0o666); err != nil {
			fail(err)
		}
	}
	if len(active) == 0 {
		writeFacts() // propagate dependency facts even when exempt
		return
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			typecheckFail(cfg, err)
			writeFacts()
			return
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	tconf := types.Config{Importer: importer.ForCompiler(fset, compiler, lookup)}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		typecheckFail(cfg, err)
		writeFacts()
		return
	}
	pkg := &analysis.Package{
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	findings, err := analysis.RunAnalyzers(pkg, active, store)
	if err != nil {
		fail(err)
	}
	writeFacts()
	if cfg.VetxOnly {
		return // facts-only pass; diagnostics belong to the display pass
	}
	report(findings)
	if len(findings) > 0 {
		os.Exit(1)
	}
}

func typecheckFail(cfg vetConfig, err error) {
	if cfg.SucceedOnTypecheckFailure {
		return
	}
	fail(err)
}
