// Command gflink-vet runs the repository's custom static analyzers
// (wallclock, clockgo, maporder, lockhold, lockorder, buflifecycle,
// bufescape) over the module. See DESIGN.md "Concurrency & lifetime
// invariants" for what each enforces and why `go test -race` cannot.
//
// Usage:
//
//	gflink-vet [packages]        # standalone; defaults to ./...
//	go vet -vettool=$(which gflink-vet) ./...   # as a vet tool
//
// In standalone mode the tool type-checks the module from source
// (including in-package test files) and needs no build cache. When
// invoked by `go vet -vettool` it speaks the vet config protocol
// instead, reusing the export data the go command already built.
// Exit status: 0 clean, 1 findings, 2 operational error.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"gflink/internal/analysis"
	"gflink/internal/analysis/suite"
)

// jsonOutput selects the machine-readable diagnostic format (-json):
// one JSON object per line on stdout, consumed by CI to turn findings
// into source-anchored annotations.
var jsonOutput bool

func main() {
	args := os.Args[1:]
	// `go vet` probes the tool's identity with -V=full and its flag
	// surface with -flags before handing it unit configs.
	for _, a := range args {
		switch a {
		case "-V=full", "-V":
			fmt.Printf("gflink-vet version gflink-vet-2\n")
			return
		case "-flags":
			fmt.Println("[]")
			return
		}
	}
	var pkgs []string
	for _, a := range args {
		if a == "-json" || a == "--json" {
			jsonOutput = true
			continue
		}
		pkgs = append(pkgs, a)
	}
	if len(pkgs) == 1 && strings.HasSuffix(pkgs[0], ".cfg") {
		runVetTool(pkgs[0]) // go vet -vettool mode
		return
	}
	if len(pkgs) == 0 {
		pkgs = []string{"./..."}
	}
	l, err := analysis.NewLoader(".")
	if err != nil {
		fail(err)
	}
	findings, err := analysis.Run(l, pkgs, suite.Rules())
	if err != nil {
		fail(err)
	}
	report(findings)
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// jsonFinding is the -json wire format: one diagnostic per line.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// report prints findings in the selected format: human-readable to
// stderr by default, newline-delimited JSON to stdout under -json.
func report(findings []analysis.Finding) {
	if !jsonOutput {
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, f)
		}
		return
	}
	enc := json.NewEncoder(os.Stdout)
	for _, f := range findings {
		enc.Encode(jsonFinding{
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Column:   f.Pos.Column,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		})
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "gflink-vet:", err)
	os.Exit(2)
}
