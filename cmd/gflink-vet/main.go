// Command gflink-vet runs the repository's custom static analyzers
// (wallclock, clockgo, lockhold, buflifecycle) over the module. See
// DESIGN.md "Concurrency & lifetime invariants" for what each enforces
// and why `go test -race` cannot.
//
// Usage:
//
//	gflink-vet [packages]        # standalone; defaults to ./...
//	go vet -vettool=$(which gflink-vet) ./...   # as a vet tool
//
// In standalone mode the tool type-checks the module from source
// (including in-package test files) and needs no build cache. When
// invoked by `go vet -vettool` it speaks the vet config protocol
// instead, reusing the export data the go command already built.
// Exit status: 0 clean, 1 findings, 2 operational error.
package main

import (
	"fmt"
	"os"
	"strings"

	"gflink/internal/analysis"
	"gflink/internal/analysis/suite"
)

func main() {
	args := os.Args[1:]
	// `go vet` probes the tool's identity with -V=full and its flag
	// surface with -flags before handing it unit configs.
	for _, a := range args {
		switch a {
		case "-V=full", "-V":
			fmt.Printf("gflink-vet version gflink-vet-1\n")
			return
		case "-flags":
			fmt.Println("[]")
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runVetTool(args[0]) // go vet -vettool mode
		return
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	l, err := analysis.NewLoader(".")
	if err != nil {
		fail(err)
	}
	findings, err := analysis.Run(l, args, suite.Rules())
	if err != nil {
		fail(err)
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "gflink-vet:", err)
	os.Exit(2)
}
