// Command gflink-vet runs the repository's custom static analyzers
// (wallclock, clockgo, maporder, lockhold, lockorder, buflifecycle,
// bufescape, plus the flow-sensitive spanpair, clockflow, counterkey,
// outputpurity and the allocation-discipline pair hotalloc and
// poolsafe) over the module. See DESIGN.md "Concurrency & lifetime
// invariants" for what each enforces and why `go test -race` cannot.
//
// Usage:
//
//	gflink-vet [packages]        # standalone; defaults to ./...
//	go vet -vettool=$(which gflink-vet) ./...   # as a vet tool
//
// Flags (standalone mode):
//
//	-json                  newline-delimited JSON diagnostics on stdout
//	-baseline file         suppress findings recorded in file; exit 1
//	                       only on NEW findings (ratchet for CI)
//	-write-baseline file   write the current findings to file and exit 0
//
// Baseline entries match on (analyzer, file, message) as a multiset —
// line numbers drift with unrelated edits, so they are recorded for
// humans but ignored when matching.
//
// In standalone mode the tool type-checks the module from source
// (including in-package test files) and needs no build cache. When
// invoked by `go vet -vettool` it speaks the vet config protocol
// instead, reusing the export data the go command already built.
// Exit status: 0 clean, 1 findings, 2 operational error.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"gflink/internal/analysis"
	"gflink/internal/analysis/suite"
)

// jsonOutput selects the machine-readable diagnostic format (-json):
// one JSON object per line on stdout, consumed by CI to turn findings
// into source-anchored annotations.
var jsonOutput bool

func main() {
	args := os.Args[1:]
	// `go vet` probes the tool's identity with -V=full and its flag
	// surface with -flags before handing it unit configs.
	for _, a := range args {
		switch a {
		case "-V=full", "-V":
			fmt.Printf("gflink-vet version gflink-vet-2\n")
			return
		case "-flags":
			fmt.Println("[]")
			return
		}
	}
	var pkgs []string
	var baselinePath, writeBaselinePath string
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case a == "-json" || a == "--json":
			jsonOutput = true
		case strings.HasPrefix(a, "-baseline="):
			baselinePath = strings.TrimPrefix(a, "-baseline=")
		case a == "-baseline" && i+1 < len(args):
			i++
			baselinePath = args[i]
		case strings.HasPrefix(a, "-write-baseline="):
			writeBaselinePath = strings.TrimPrefix(a, "-write-baseline=")
		case a == "-write-baseline" && i+1 < len(args):
			i++
			writeBaselinePath = args[i]
		default:
			pkgs = append(pkgs, a)
		}
	}
	if len(pkgs) == 1 && strings.HasSuffix(pkgs[0], ".cfg") {
		runVetTool(pkgs[0]) // go vet -vettool mode
		return
	}
	if len(pkgs) == 0 {
		pkgs = []string{"./..."}
	}
	l, err := analysis.NewLoader(".")
	if err != nil {
		fail(err)
	}
	findings, err := analysis.Run(l, pkgs, suite.Rules())
	if err != nil {
		fail(err)
	}
	relativize(findings)
	if writeBaselinePath != "" {
		if err := writeBaseline(writeBaselinePath, findings); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "gflink-vet: wrote %d finding(s) to %s\n", len(findings), writeBaselinePath)
		return
	}
	if baselinePath != "" {
		var suppressed int
		findings, suppressed, err = filterBaseline(baselinePath, findings)
		if err != nil {
			fail(err)
		}
		if suppressed > 0 {
			fmt.Fprintf(os.Stderr, "gflink-vet: %d baselined finding(s) suppressed\n", suppressed)
		}
	}
	report(findings)
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// relativize rewrites finding paths relative to the working directory,
// so baselines (and CI annotations) are stable across checkouts.
func relativize(findings []analysis.Finding) {
	wd, err := os.Getwd()
	if err != nil {
		return
	}
	for i := range findings {
		if rel, err := filepath.Rel(wd, findings[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			findings[i].Pos.Filename = filepath.ToSlash(rel)
		}
	}
}

// baselineKey is the identity a baseline entry matches on: file and
// message pin the finding, line numbers are allowed to drift.
func baselineKey(analyzer, file, message string) string {
	return analyzer + "\x00" + file + "\x00" + message
}

// writeBaseline records the current findings as a sorted JSON array.
func writeBaseline(path string, findings []analysis.Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Column:   f.Pos.Column,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// filterBaseline drops findings covered by the baseline file,
// consuming one baseline entry per match (a multiset: two identical
// known findings suppress exactly two identical new ones).
func filterBaseline(path string, findings []analysis.Finding) ([]analysis.Finding, int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("reading baseline: %w", err)
	}
	var known []jsonFinding
	if err := json.Unmarshal(data, &known); err != nil {
		return nil, 0, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	budget := make(map[string]int, len(known))
	for _, k := range known {
		budget[baselineKey(k.Analyzer, k.File, k.Message)]++
	}
	var fresh []analysis.Finding
	suppressed := 0
	for _, f := range findings {
		key := baselineKey(f.Analyzer, f.Pos.Filename, f.Message)
		if budget[key] > 0 {
			budget[key]--
			suppressed++
			continue
		}
		fresh = append(fresh, f)
	}
	return fresh, suppressed, nil
}

// jsonFinding is the -json wire format: one diagnostic per line.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// report prints findings in the selected format: human-readable to
// stderr by default, newline-delimited JSON to stdout under -json.
func report(findings []analysis.Finding) {
	if !jsonOutput {
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, f)
		}
		return
	}
	enc := json.NewEncoder(os.Stdout)
	for _, f := range findings {
		enc.Encode(jsonFinding{
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Column:   f.Pos.Column,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		})
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "gflink-vet:", err)
	os.Exit(2)
}
