// Package gflink is a Go reproduction of GFlink (Chen, Li, Ouyang,
// Zeng, Li — ICPP 2016 / IEEE TPDS 29(6), 2018): an in-memory computing
// architecture on heterogeneous CPU-GPU clusters for big data.
//
// The public surface re-exports the system's layers:
//
//   - the baseline Flink-like engine (cluster, jobs, DataSet operators),
//   - GFlink itself (GPUManagers, GDST blocks, GWork, the GPU cache and
//     the adaptive locality-aware stream scheduler),
//   - the GStruct schema system with AoS/SoA/AoP layouts,
//   - the streaming DataStream layer (bounded buffers, credit-based
//     backpressure, tumbling-window aggregation with CPU/GPU placement),
//   - the workload suite and the benchmark harness that regenerates
//     every table and figure of the paper's evaluation.
//
// Everything runs on a deterministic virtual clock: times reported by
// jobs are simulated seconds derived from explicit hardware cost models
// (see DESIGN.md), while all data transformations really execute, so
// results are checkable.
//
// Quick start:
//
//	g := gflink.New(gflink.Config{
//		Config:        gflink.ClusterConfig{Workers: 2, Model: costmodel.Default()},
//		GPUsPerWorker: 2,
//	})
//	g.Run(func() {
//		job := g.Cluster.NewJob("example")
//		// build GDSTs, submit GWork, run operators...
//		_ = job
//	})
//
// See examples/ for complete programs.
package gflink

import (
	"gflink/internal/core"
	"gflink/internal/costmodel"
	"gflink/internal/flink"
	"gflink/internal/gstruct"
	"gflink/internal/obs"
	"gflink/internal/plan"
	"gflink/internal/stream"
)

// Core GFlink types.
type (
	// Config configures a GFlink deployment (cluster plus GPU-side
	// parameters).
	Config = core.Config
	// ClusterConfig configures the baseline engine.
	ClusterConfig = flink.Config
	// GFlink is a running deployment: the embedded cluster plus one
	// GPUManager per worker.
	GFlink = core.GFlink
	// GWork is the unit of GPU work (Section 3.5.3 of the paper).
	GWork = core.GWork
	// Input is one input buffer of a GWork with its cache directive.
	Input = core.Input
	// CacheKey identifies a cached block on a device.
	CacheKey = core.CacheKey
	// CachePolicy selects a cache region's eviction scheme.
	CachePolicy = core.CachePolicy
	// EvictionPolicy is the pluggable eviction interface the cache
	// regions order victims with (DESIGN.md "Tiered memory").
	EvictionPolicy = core.EvictionPolicy
	// Block is a page of GStruct records in off-heap memory.
	Block = core.Block
	// GDST is a distributed dataset of blocks.
	GDST = core.GDST
	// GPUMapSpec configures a gpuMapPartition operator.
	GPUMapSpec = core.GPUMapSpec
	// Schema is a GStruct definition with C-compatible layout.
	Schema = gstruct.Schema
	// Field is one GStruct member.
	Field = gstruct.Field
	// GPUProfile describes a device generation.
	GPUProfile = costmodel.GPUProfile
	// StreamConfig configures a GStreamManager (used by advanced
	// embedders; deployments built with New wire it automatically).
	StreamConfig = core.StreamConfig
	// WorkReport is a completed GWork's execution report.
	WorkReport = obs.WorkReport
	// SchedulerStats are a GStreamManager's scheduling counters.
	SchedulerStats = obs.SchedulerStats
)

// Deployment constructors.
var (
	// New builds a homogeneous deployment.
	New = core.New
	// NewHetero builds a deployment with per-device GPU profiles.
	NewHetero = core.NewHetero
)

// GDST constructors and operators.
var (
	// NewGDST builds a GDST from a schema and a fill function.
	NewGDST = core.NewGDST
	// GPUMapPartition is the paper's gpuMapPartition operator.
	GPUMapPartition = core.GPUMapPartition
	// GPUReducePartition is the per-block GPU reducer.
	GPUReducePartition = core.GPUReducePartition
	// CollectBlocks gathers blocks to the driver.
	CollectBlocks = core.CollectBlocks
	// FreeBlocks releases a dead dataset's off-heap buffers.
	FreeBlocks = core.FreeBlocks
)

// Deferred dataflow plans (the JobGraph layer). The generic stream
// operators (plan.Source, plan.Map, plan.Either, ...) cannot be
// re-exported as values; import gflink/internal/plan directly for
// those, as the examples do.
type (
	// Plan is a deferred job graph: operators append nodes, Execute
	// materializes them through the chaining and placement passes.
	Plan = plan.Graph
	// PlanOptions configure one graph's planning passes.
	PlanOptions = plan.Options
	// PlacementMode selects forced or cost-model-driven device placement.
	PlacementMode = plan.Mode
)

// Plan constructors and driver-side nodes.
var (
	// NewPlan starts an empty deferred job graph.
	NewPlan = plan.NewGraph
	// PlanIterate appends a bulk-iteration node.
	PlanIterate = plan.Iterate
	// PlanDo appends a driver-side node.
	PlanDo = plan.Do
	// PlanEitherDo appends a driver-side CPU-or-GPU node.
	PlanEitherDo = plan.EitherDo
	// PlanGPUMap appends a deferred gpuMapPartition node.
	PlanGPUMap = plan.GPUMap
	// PlanGPUReduce appends a deferred gpuReducePartition node.
	PlanGPUReduce = plan.GPUReduce
)

// Placement modes.
const (
	AutoPlace = plan.Auto
	ForceCPU  = plan.ForceCPU
	ForceGPU  = plan.ForceGPU
)

// Streaming DataStream layer: the unbounded counterpart to Plan. A
// Stream is a linear source→window→sink pipeline whose stages run as
// virtual-time processes connected by bounded, credit-backpressured
// edges; window aggregation lowers onto the GPU map/reduce path or a
// CPU slot by the same cost-model comparison Plan uses (DESIGN.md
// "Streaming layer").
type (
	// Stream is a deferred streaming pipeline; NewStream starts one.
	Stream = stream.Pipeline
	// StreamOptions are a pipeline's resolved settings (shaped like
	// PlanOptions: construct through NewStream's functional options).
	StreamOptions = stream.Options
	// StreamOption mutates StreamOptions at construction.
	StreamOption = stream.Option
	// StreamStage is a stage handle returned by the stage builders.
	StreamStage = stream.Stage
	// StreamRecord is one streaming element (key + value).
	StreamRecord = stream.Record
	// StreamResult is one pipeline run's measurements.
	StreamResult = stream.Result
	// StreamSourceSpec configures a generator source stage.
	StreamSourceSpec = stream.SourceSpec
	// StreamWindowSpec configures a tumbling-window aggregation stage.
	StreamWindowSpec = stream.WindowSpec
	// StreamTrigger decides when a window fires (TumblingCount).
	StreamTrigger = stream.Trigger
)

// Stream constructors and functional options.
var (
	// NewStream starts an empty pipeline against a deployment, shaped
	// like NewPlan: nothing touches the virtual clock until Run.
	NewStream = stream.New
	// TumblingCount builds a count-based tumbling-window trigger.
	TumblingCount = stream.TumblingCount
	// StreamWithMode pins window placement (ForceCPU/ForceGPU/AutoPlace).
	StreamWithMode = stream.WithMode
	// StreamWithBatchRecords sets the records per micro-batch.
	StreamWithBatchRecords = stream.WithBatchRecords
	// StreamWithBufferBatches sets the per-edge credit limit.
	StreamWithBufferBatches = stream.WithBufferBatches
	// StreamWithRecordBytes sets the nominal per-record wire size.
	StreamWithRecordBytes = stream.WithRecordBytes
	// StreamWithTracer directs the pipeline's spans to a tracer.
	StreamWithTracer = stream.WithTracer
	// StreamWithMetrics directs the stream.* counters to a registry.
	StreamWithMetrics = stream.WithMetrics
)

// Cache-eviction policies for the per-job GPU cache region
// (Config.CachePolicy). FIFO and stop-when-full are the paper's two
// schemes (Section 4.2.2); LRU and cost-aware belong to the tiered
// memory subsystem, which can also back evictions with a host paging
// tier and spill disk (Config.HostTierBytes, Config.SpillDisk).
const (
	EvictFIFO      = core.EvictFIFO
	StopWhenFull   = core.StopWhenFull
	EvictLRU       = core.EvictLRU
	EvictCostAware = core.EvictCostAware
)

// Observability: spans, metrics and trace export. Every deployment
// carries an Observability under GFlink.Obs; these aliases expose the
// layer without importing internal packages. All span timestamps come
// from the virtual clock, so traces are byte-identical across runs.
type (
	// Observability bundles a deployment's tracer and metrics registry.
	Observability = obs.Observability
	// Tracer records deterministic spans.
	Tracer = obs.Tracer
	// TraceSpan is one recorded span.
	TraceSpan = obs.Span
	// TraceAttr is one span attribute.
	TraceAttr = obs.Attr
	// TraceProcess groups one tracer's spans under a process name in a
	// Chrome trace export.
	TraceProcess = obs.TraceProcess
	// MetricsRegistry is a named-counter registry.
	MetricsRegistry = obs.Registry
	// Metric is one named counter value in a registry snapshot.
	Metric = obs.Metric
)

// Observability constructors and trace export.
var (
	// NewTracer builds a standalone span tracer.
	NewTracer = obs.NewTracer
	// NewMetrics builds a standalone metrics registry.
	NewMetrics = obs.NewRegistry
	// ChromeTrace serializes tracers as Chrome trace_event JSON.
	ChromeTrace = obs.ChromeTrace
	// WriteChromeTrace streams Chrome trace_event JSON to a writer.
	WriteChromeTrace = obs.WriteChromeTrace
	// ValidateChromeTrace checks trace bytes against the schema the
	// exporter promises.
	ValidateChromeTrace = obs.ValidateChromeTrace
)

// Explain renders a plan as text: placement decisions with cost-model
// estimates, the stage list after chaining, and measured stage times
// once the plan has executed.
func Explain(p *Plan) string { return p.Explain() }

// GStruct schema helpers.
var (
	// NewSchema declares a GStruct (returns an error on invalid specs).
	NewSchema = gstruct.New
	// MustSchema is NewSchema panicking on error.
	MustSchema = gstruct.MustNew
)

// Layout constants (Section 2.1).
const (
	AoS = gstruct.AoS
	SoA = gstruct.SoA
	AoP = gstruct.AoP
)

// Device generations used in the paper's evaluation.
var (
	GTX750 = costmodel.GTX750
	C2050  = costmodel.C2050
	K20    = costmodel.K20
	P100   = costmodel.P100
)
