package gflink

import (
	"testing"

	"gflink/internal/costmodel"
	"gflink/internal/gstruct"
	"gflink/internal/kernels"
)

// TestPublicAPIEndToEnd drives the whole stack through the facade: a
// GStruct schema, a GDST, the gpuMapPartition operator with a real
// kernel, and result verification — the quickstart example as a test.
func TestPublicAPIEndToEnd(t *testing.T) {
	g := New(Config{
		Config: ClusterConfig{
			Workers:      2,
			Model:        costmodel.Default(),
			ScaleDivisor: 1000,
		},
		GPUsPerWorker: 2,
	})
	const points = 1_000_000
	g.Run(func() {
		job := g.Cluster.NewJob("facade")
		ds := NewGDST(g, job, kernels.Point3Schema, AoS, points, 0,
			func(part int, v gstruct.View, i int, ord int64) {
				v.PutFloat32At(i, 0, 0, float32(ord%7))
				v.PutFloat32At(i, 1, 0, float32(ord%5))
				v.PutFloat32At(i, 2, 0, float32(ord%3))
			})
		if ds.NominalCount() != points {
			t.Fatalf("nominal = %d", ds.NominalCount())
		}
		out := GPUMapPartition(g, ds, GPUMapSpec{
			Name:      "addPoint",
			Kernel:    kernels.PointAddKernel,
			OutSchema: kernels.Point3Schema,
			OutLayout: AoS,
			Args:      []int64{kernels.F32Arg(1), kernels.F32Arg(2), kernels.F32Arg(3)},
		})
		for p := 0; p < out.Partitions(); p++ {
			for bi, ob := range out.Partition(p).Items {
				ib := ds.Partition(p).Items[bi]
				iv, ov := ib.View(), ob.View()
				for i := 0; i < ib.N; i++ {
					for f, d := range []float32{1, 2, 3} {
						if got, want := ov.Float32At(i, f, 0), iv.Float32At(i, f, 0)+d; got != want {
							t.Fatalf("p%d b%d i%d f%d: %v want %v", p, bi, i, f, got, want)
						}
					}
				}
			}
		}
		FreeBlocks(out)
		FreeBlocks(ds)
	})
}

// TestFacadeSchemaHelpers checks the re-exported schema API and layout
// constants.
func TestFacadeSchemaHelpers(t *testing.T) {
	s, err := NewSchema("T", 8, Field{Name: "a", Kind: gstruct.Float64}, Field{Name: "b", Kind: gstruct.Int32})
	if err != nil {
		t.Fatal(err)
	}
	if s.Stride() != 16 {
		t.Errorf("stride = %d, want 16 (double @0, int @8, pad to 16)", s.Stride())
	}
	if _, err := NewSchema("bad", 5); err == nil {
		t.Error("invalid schema accepted")
	}
	if AoS == SoA || SoA == AoP {
		t.Error("layout constants collide")
	}
	for _, p := range []GPUProfile{GTX750, C2050, K20, P100} {
		if p.Name == "" || p.MemBytes == 0 {
			t.Errorf("profile incomplete: %+v", p)
		}
	}
}

// TestFacadeHetero exercises NewHetero through the facade.
func TestFacadeHetero(t *testing.T) {
	g := NewHetero(Config{
		Config: ClusterConfig{Workers: 1, Model: costmodel.Default()},
	}, [][]GPUProfile{{C2050, P100}})
	if g.Manager(0).Devices[1].Profile.Name != "P100" {
		t.Error("hetero profile not applied")
	}
	g.Run(func() {})
}
