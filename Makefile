GO ?= go

.PHONY: build test race vet vet-baseline bench check-deprecated

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

# go vet's standard checks plus the repo's own thirteen-analyzer suite
# (wallclock, clockgo, maporder, lockhold, lockorder, buflifecycle,
# bufescape, spanpair, clockflow, counterkey, outputpurity, hotalloc,
# poolsafe — see DESIGN.md "Concurrency & lifetime invariants").
# Findings recorded in vet-baseline.json are suppressed: CI ratchets
# on NEW findings only; the examples tree is vetted alongside the
# module.
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/gflink-vet -baseline vet-baseline.json ./... ./examples/...

# Re-record the suppression baseline. Run only when deliberately
# accepting existing findings; the diff to vet-baseline.json is the
# review surface.
vet-baseline:
	$(GO) run ./cmd/gflink-vet -write-baseline vet-baseline.json ./... ./examples/...

bench:
	$(GO) run ./cmd/gflink-bench -list

# Fail when non-test code calls a Deprecated: positional constructor
# (NewGStreamManager / NewGMemoryManager). The shims exist only so the
# tests that pin their equivalence to the options constructors keep
# compiling; new code uses NewStreamManager / NewMemoryManager.
check-deprecated:
	@hits=$$(grep -rn --include='*.go' --exclude='*_test.go' --exclude-dir=testdata \
		-E '\bNewG(StreamManager|MemoryManager)\(' . | grep -v 'func NewG' || true); \
	if [ -n "$$hits" ]; then \
		echo "deprecated positional constructors called from non-test code:"; \
		echo "$$hits"; \
		exit 1; \
	fi
