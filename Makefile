GO ?= go

.PHONY: build test race vet bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

# go vet's standard checks plus the repo's own analyzer suite
# (wallclock, clockgo, maporder, lockhold, lockorder, buflifecycle,
# bufescape — see DESIGN.md "Concurrency & lifetime invariants").
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/gflink-vet ./...

bench:
	$(GO) run ./cmd/gflink-bench -list
