package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestTracerRecordsInOrder(t *testing.T) {
	tr := NewTracer()
	tr.Record("driver", "plan", "a", 10, 20, Str("k", "v"))
	tr.Record("driver", "plan", "b", 5, 8)
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	a := spans[0]
	if a.Name != "a" || a.Track != "driver" || a.Cat != "plan" ||
		a.Start != 10 || a.End != 20 || a.Seq != 0 {
		t.Errorf("span a = %+v", a)
	}
	if a.Dur() != 10 {
		t.Errorf("a.Dur() = %v, want 10", a.Dur())
	}
	if len(a.Attrs) != 1 || a.Attrs[0].Key != "k" || a.Attrs[0].Val != "v" {
		t.Errorf("a.Attrs = %+v", a.Attrs)
	}
	if spans[1].Seq != 1 {
		t.Errorf("b.Seq = %d, want 1", spans[1].Seq)
	}
	// Spans returns a copy: mutating it must not affect the tracer.
	spans[0].Name = "mutated"
	if tr.Spans()[0].Name != "a" {
		t.Error("Spans() aliases internal storage")
	}
}

// TestBeginEndRecordsAtEnd checks that an open span is invisible until
// End, that End merges Begin-time and End-time attrs in order, and that
// Seq is assigned by End order — i.e. Begin/End is sequencing-identical
// to calling Record at the End site.
func TestBeginEndRecordsAtEnd(t *testing.T) {
	tr := NewTracer()
	open := tr.Begin("driver", "plan", "a", 10, Str("k", "v"))
	if tr.Len() != 0 {
		t.Fatal("Begin must not record anything")
	}
	tr.Record("driver", "plan", "b", 11, 12)
	open.End(20, Int("n", 3))
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "b" || spans[0].Seq != 0 {
		t.Errorf("first recorded span = %+v, want b with Seq 0", spans[0])
	}
	a := spans[1]
	if a.Name != "a" || a.Start != 10 || a.End != 20 || a.Seq != 1 {
		t.Errorf("span a = %+v", a)
	}
	if len(a.Attrs) != 2 || a.Attrs[0].Key != "k" || a.Attrs[1].Key != "n" {
		t.Errorf("a.Attrs = %+v, want Begin attrs then End attrs", a.Attrs)
	}
}

// TestBeginEndDoesNotAliasBeginAttrs ensures ending a span with extra
// attrs never mutates the slice handed to Begin (two spans from one
// Begin-attr slice must not corrupt each other).
func TestBeginEndDoesNotAliasBeginAttrs(t *testing.T) {
	tr := NewTracer()
	base := make([]Attr, 1, 4)
	base[0] = Str("k", "v")
	s1 := tr.Begin("t", "c", "one", 0, base...)
	s1.End(1, Str("end", "one"))
	if base[:cap(base)][1] == (Attr{Key: "end", Val: "one"}) {
		t.Error("End wrote into the Begin attr slice's spare capacity")
	}
	spans := tr.Spans()
	if len(spans[0].Attrs) != 2 {
		t.Errorf("span attrs = %+v", spans[0].Attrs)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	tr.Record("x", "y", "z", 0, 1)
	tr.RecordGWork("s", "q", "w", 0, 1, WorkReport{})
	tr.Begin("x", "y", "z", 0).End(1)
	var open *OpenSpan
	open.End(1)
	if tr.Len() != 0 || tr.Spans() != nil {
		t.Error("nil tracer is not a no-op")
	}
	var r *Registry
	r.Add("c", 1)
	if r.Get("c") != 0 || r.Total("c") != 0 || r.Snapshot() != nil {
		t.Error("nil registry is not a no-op")
	}
	var o *Observability
	if o.Tracer() != nil || o.Metrics() != nil {
		t.Error("nil observability must yield nil components")
	}
	// And the nil components those getters return must themselves be
	// usable, closing the chain.
	o.Tracer().Record("x", "y", "z", 0, 1)
	o.Metrics().Add("c", 1)
}

func TestAttrConstructors(t *testing.T) {
	if a := Str("s", "v"); a.Val != "v" {
		t.Errorf("Str = %+v", a)
	}
	if a := Int("i", 7); a.Val != int64(7) {
		t.Errorf("Int = %+v", a)
	}
	if a := Dur("d", 1500*time.Millisecond); a.Val != "1.5s" {
		t.Errorf("Dur = %+v", a)
	}
	if a := Bool("b", true); a.Val != true {
		t.Errorf("Bool = %+v", a)
	}
}

func TestRecordGWorkSpanTree(t *testing.T) {
	tr := NewTracer()
	r := WorkReport{
		DeviceID: 3, Worker: 1,
		QueueWait: 5, H2D: 10, Kernel: 20, D2H: 7,
		CacheHits: 2, CacheMisses: 1, StolenFrom: 2,
	}
	if r.Pipeline() != 37 {
		t.Fatalf("Pipeline() = %v, want 37", r.Pipeline())
	}
	tr.RecordGWork("w0/gpu3/s0", "w0/gpu3/queue", "saxpy", 100, 105, r, Int("job", 9))
	spans := tr.Spans()
	if len(spans) != 5 {
		t.Fatalf("got %d spans, want 5 (queue, gwork, h2d, kernel, d2h)", len(spans))
	}
	q := spans[0]
	if q.Name != "queue:saxpy" || q.Track != "w0/gpu3/queue" || q.Cat != "queue" ||
		q.Start != 100 || q.End != 105 {
		t.Errorf("queue span = %+v", q)
	}
	g := spans[1]
	if g.Name != "saxpy" || g.Track != "w0/gpu3/s0" || g.Cat != "gwork" ||
		g.Start != 105 || g.End != 105+37 {
		t.Errorf("gwork span = %+v", g)
	}
	want := map[string]any{
		"device": int64(3), "worker": int64(1),
		"cache_hits": int64(2), "cache_misses": int64(1),
		"stolen_from": int64(2), "job": int64(9),
	}
	got := map[string]any{}
	for _, a := range g.Attrs {
		got[a.Key] = a.Val
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("gwork attr %s = %v, want %v", k, got[k], v)
		}
	}
	// The stage children tile [start, start+Pipeline] exactly.
	stages := spans[2:]
	names := []string{"h2d", "kernel", "d2h"}
	cursor := time.Duration(105)
	durs := []time.Duration{10, 20, 7}
	for i, s := range stages {
		if s.Name != names[i] || s.Cat != "stage" || s.Track != "w0/gpu3/s0" {
			t.Errorf("stage %d = %+v", i, s)
		}
		if s.Start != cursor || s.Dur() != durs[i] {
			t.Errorf("stage %s spans [%v,%v], want start %v dur %v", s.Name, s.Start, s.End, cursor, durs[i])
		}
		cursor = s.End
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Add("cache.hits.gpu0", 3)
	r.Add("cache.hits.gpu1", 4)
	r.Add("cache.misses.gpu0", 1)
	r.Add("cache.hits.gpu0", 2)
	if got := r.Get("cache.hits.gpu0"); got != 5 {
		t.Errorf("Get = %d, want 5", got)
	}
	if got := r.Get("absent"); got != 0 {
		t.Errorf("Get(absent) = %d, want 0", got)
	}
	if got := r.Total("cache.hits"); got != 9 {
		t.Errorf("Total(cache.hits) = %d, want 9", got)
	}
	snap := r.Snapshot()
	wantNames := []string{"cache.hits.gpu0", "cache.hits.gpu1", "cache.misses.gpu0"}
	if len(snap) != len(wantNames) {
		t.Fatalf("snapshot has %d entries, want %d", len(snap), len(wantNames))
	}
	for i, m := range snap {
		if m.Name != wantNames[i] {
			t.Errorf("snapshot[%d] = %s, want %s (sorted)", i, m.Name, wantNames[i])
		}
	}
}

func traceFixture() *Tracer {
	tr := NewTracer()
	tr.Record("driver", "plan", "plan:x", 0, 100, Str("mode", "auto"))
	tr.RecordGWork("w0/gpu0/s0", "w0/gpu0/queue", "k1", 10, 12,
		WorkReport{DeviceID: 0, QueueWait: 2, H2D: 3, Kernel: 5, D2H: 1, StolenFrom: -1})
	return tr
}

func TestChromeTraceValidatesAndIsDeterministic(t *testing.T) {
	a, err := ChromeTrace(TraceProcess{Name: "p", Tracer: traceFixture()})
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(a); err != nil {
		t.Fatalf("self-emitted trace fails validation: %v", err)
	}
	b, err := ChromeTrace(TraceProcess{Name: "p", Tracer: traceFixture()})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("identical span streams serialized differently")
	}
	for _, want := range []string{
		`"name":"process_name"`, `"name":"thread_name"`,
		`"name":"queue:k1"`, `"ph":"X"`, `"cat":"gwork"`,
	} {
		if !strings.Contains(string(a), want) {
			t.Errorf("trace missing %s", want)
		}
	}
	// An empty trace still carries the traceEvents array.
	empty, err := ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(empty); err != nil {
		t.Errorf("empty trace invalid: %v", err)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, TraceProcess{Name: "p", Tracer: traceFixture()}); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
}

func TestValidateChromeTraceRejects(t *testing.T) {
	cases := map[string]string{
		"not json":        `{`,
		"no traceEvents":  `{}`,
		"missing name":    `{"traceEvents":[{"ph":"X","ts":0,"pid":0,"tid":0}]}`,
		"negative ts":     `{"traceEvents":[{"name":"a","ph":"X","ts":-1,"pid":0,"tid":0}]}`,
		"negative dur":    `{"traceEvents":[{"name":"a","ph":"X","ts":0,"dur":-2,"pid":0,"tid":0}]}`,
		"missing pid":     `{"traceEvents":[{"name":"a","ph":"X","ts":0,"tid":0}]}`,
		"missing tid":     `{"traceEvents":[{"name":"a","ph":"X","ts":0,"pid":0}]}`,
		"bad phase":       `{"traceEvents":[{"name":"a","ph":"B","ts":0,"pid":0,"tid":0}]}`,
		"unknown meta":    `{"traceEvents":[{"name":"other","ph":"M","ts":0,"pid":0,"tid":0,"args":{"name":"x"}}]}`,
		"meta no args":    `{"traceEvents":[{"name":"process_name","ph":"M","ts":0,"pid":0,"tid":0}]}`,
		"meta empty name": `{"traceEvents":[{"name":"thread_name","ph":"M","ts":0,"pid":0,"tid":0,"args":{"name":""}}]}`,
	}
	for label, data := range cases {
		if err := ValidateChromeTrace([]byte(data)); err == nil {
			t.Errorf("%s: validation passed, want error", label)
		}
	}
}
