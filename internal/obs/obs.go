// Package obs is GFlink's deterministic observability layer: a span
// tracer and a metrics registry threaded through the execution stack
// (GStreamManager, GMemoryManager, the plan layer), exporting Chrome
// trace_event JSON and snapshot-able counters.
//
// Determinism is the design constraint (invariant #8 of DESIGN.md):
// this package holds no time source at all. Every timestamp is a
// virtual-clock duration passed in by the caller, so a trace is a pure
// function of the simulated schedule — byte-identical across runs,
// GOMAXPROCS settings and host machines, and enabling it changes no
// simulated time. The gflink-vet wallclock analyzer guarantees no host
// time can leak in; span sequence numbers are deterministic because
// the virtual clock runs exactly one process at a time.
package obs

import (
	"sort"
	"strings"
	"sync"
	"time"
)

// Attr is one span annotation (a Chrome trace "args" entry). Values
// must be JSON-marshalable; use the Str/Int/Dur/Bool constructors.
type Attr struct {
	Key string
	Val any
}

// Str builds a string attribute.
func Str(k, v string) Attr { return Attr{Key: k, Val: v} }

// Int builds an integer attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, Val: v} }

// Dur builds a duration attribute, rendered in Go's duration syntax.
func Dur(k string, d time.Duration) Attr { return Attr{Key: k, Val: d.String()} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Val: v} }

// Span is one completed interval on a named track. Tracks are logical
// execution lanes ("driver", "w0/gpu1/s2", ...); the Chrome exporter
// maps them to thread rows.
type Span struct {
	Track string
	Cat   string
	Name  string
	Start time.Duration
	End   time.Duration
	Attrs []Attr
	// Seq is the recording order, deterministic under the cooperative
	// virtual-clock scheduler; the exporter uses it to break Start ties.
	Seq uint64
}

// Dur returns the span's length.
func (s Span) Dur() time.Duration { return s.End - s.Start }

// Tracer collects spans. All methods are nil-safe no-ops, so producers
// can thread an optional tracer without guards; SetEnabled(false)
// additionally turns a live tracer into a zero-cost sink.
type Tracer struct {
	mu    sync.Mutex
	spans []Span
	seq   uint64
	// disabled is set before the simulation runs and never written
	// during it, so the Enabled fast path reads it without the lock.
	disabled bool
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Enabled reports whether recording is on. It is the hot-path gate for
// span call sites: the hotalloc analyzer treats the body of an
// `if t.Enabled() { ... }` statement as observability-cold, so attr
// slices and Begin/Record calls built inside one cost nothing — not
// even their argument construction — when tracing is off or the tracer
// is nil.
//
//gflink:hotpath
func (t *Tracer) Enabled() bool { return t != nil && !t.disabled }

// SetEnabled turns recording on or off. A disabled tracer drops
// Record, and Begin hands out the shared no-op OpenSpan. Flip it only
// while the simulation is quiescent (before Run, or between runs):
// the flag is read lock-free on the hot path.
func (t *Tracer) SetEnabled(on bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.disabled = !on
}

// Record appends one completed span. start and end must come from the
// virtual clock (or be derived from virtual-clock readings).
//
// Record is on the GWork hot path (a nil or disabled tracer returns
// before touching anything); with tracing on, span storage grows
// amortized — use Reserve to preallocate it when the span count is
// known up front.
//
//gflink:hotpath
func (t *Tracer) Record(track, cat, name string, start, end time.Duration, attrs ...Attr) {
	if !t.Enabled() {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	//gflink:allow-alloc amortized span-storage growth; Reserve preallocates it
	t.spans = append(t.spans, Span{
		Track: track, Cat: cat, Name: name,
		Start: start, End: end, Attrs: attrs, Seq: t.seq,
	})
	t.seq++
}

// Reserve grows the span storage to hold at least n more spans without
// reallocating, so a tracing run of known size records allocation-free.
func (t *Tracer) Reserve(n int) {
	if t == nil || n <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if free := cap(t.spans) - len(t.spans); free < n {
		grown := make([]Span, len(t.spans), len(t.spans)+n)
		copy(grown, t.spans)
		t.spans = grown
	}
}

// Len reports the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Spans returns a copy of the recorded spans in recording order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// OpenSpan is a span opened by Tracer.Begin and still awaiting its end
// timestamp. Nothing is recorded until End runs — an OpenSpan that is
// dropped leaves no trace, which is why the gflink-vet spanpair
// analyzer proves every Begin reaches an End (or a visible ownership
// transfer) on all paths out of the opening function.
type OpenSpan struct {
	t     *Tracer
	track string
	cat   string
	name  string
	start time.Duration
	attrs []Attr
}

// noopOpen is the sentinel OpenSpan Begin hands out when tracing is
// off: shared, immutable, and with no tracer attached, so End on it
// returns immediately. Handing out a sentinel instead of nil keeps the
// whole Begin/End pair allocation-free with tracing off without
// forcing call sites to branch.
var noopOpen = &OpenSpan{}

// Begin opens a span at a virtual-clock timestamp. The span is recorded
// when End is called; until then it is invisible to Spans/Len. Begin on
// a nil or disabled tracer returns the shared no-op OpenSpan — zero
// allocations — and End on a nil or no-op OpenSpan is a no-op, so the
// pair is as thread-through-able as Record. Attr arguments still cost
// a variadic slice at the call site even when tracing is off; hot
// paths wrap attr-carrying Begins in an `if t.Enabled()` guard.
//
//gflink:hotpath
func (t *Tracer) Begin(track, cat, name string, start time.Duration, attrs ...Attr) *OpenSpan {
	if !t.Enabled() {
		return noopOpen
	}
	//gflink:allow-alloc tracing-on span shell; the disabled path returns the shared sentinel
	return &OpenSpan{t: t, track: track, cat: cat, name: name, start: start, attrs: attrs}
}

// End completes the span at a virtual-clock timestamp, appending any
// extra attributes after the ones given to Begin. The recording order
// (and with it the span's Seq) is the order of End calls, exactly as if
// the caller had invoked Record at this point. End on a nil or no-op
// OpenSpan touches nothing and allocates nothing.
//
//gflink:hotpath
func (s *OpenSpan) End(end time.Duration, attrs ...Attr) {
	if s == nil {
		return
	}
	if s.t.Enabled() {
		all := s.attrs
		if len(attrs) > 0 {
			all = append(append([]Attr(nil), s.attrs...), attrs...)
		}
		s.t.Record(s.track, s.cat, s.name, s.start, end, all...)
	}
}

// WorkReport is the per-GWork execution report: where the work ran and
// what each pipeline stage cost. GWork.Report returns it; RecordGWork
// turns it into a span tree.
type WorkReport struct {
	// DeviceID and Worker locate the executing GPU.
	DeviceID int
	Worker   int
	// QueueWait covers submission to pipeline start (GWork Pool time
	// plus device-memory admission).
	QueueWait time.Duration
	// H2D, Kernel and D2H are the three pipeline stage durations.
	H2D, Kernel, D2H time.Duration
	// CacheHits and CacheMisses count the cache-flagged inputs served
	// from (resp. transferred into) the GPU cache.
	CacheHits, CacheMisses int
	// StolenFrom is the device ID whose queue the work was stolen from
	// (Algorithm 5.2), or -1 when it was dispatched normally.
	StolenFrom int
	// Chunks is the chunk count the double-buffered pipeline split this
	// work into (0 or 1 means the monolithic three-stage pipeline).
	Chunks int
	// Overlap is the transfer/kernel time hidden by chunked
	// double-buffering: the serialized sum of every DMA and kernel
	// charge minus the pipeline's wall time, clamped at zero. Always 0
	// for monolithic works.
	Overlap time.Duration
}

// Pipeline returns the summed H2D + kernel + D2H time.
func (r WorkReport) Pipeline() time.Duration { return r.H2D + r.Kernel + r.D2H }

// RecordGWork emits the span tree of one GWork execution: the
// queue-wait on the device's queue track, then the gwork span with its
// H2D → kernel → D2H children on the executing stream's track,
// annotated with device id, cache hits/misses and steal origin.
func (t *Tracer) RecordGWork(streamTrack, queueTrack, name string, submit, start time.Duration, r WorkReport, attrs ...Attr) {
	if t == nil {
		return
	}
	t.Record(queueTrack, "queue", "queue:"+name, submit, start,
		Int("device", int64(r.DeviceID)))
	base := []Attr{
		Int("device", int64(r.DeviceID)),
		Int("worker", int64(r.Worker)),
		Int("cache_hits", int64(r.CacheHits)),
		Int("cache_misses", int64(r.CacheMisses)),
		Int("stolen_from", int64(r.StolenFrom)),
	}
	if r.Chunks > 1 {
		// Only chunked works carry these, so monolithic traces stay
		// byte-identical to the pre-chunking format. The stage children
		// below then tile the wall clock: h2d runs to the first chunk's
		// kernel start, kernel to the last chunk's kernel end.
		base = append(base, Int("chunks", int64(r.Chunks)), Dur("overlap", r.Overlap))
	}
	all := append(base, attrs...)
	t.Record(streamTrack, "gwork", name, start, start+r.Pipeline(), all...)
	t.Record(streamTrack, "stage", "h2d", start, start+r.H2D)
	t.Record(streamTrack, "stage", "kernel", start+r.H2D, start+r.H2D+r.Kernel)
	t.Record(streamTrack, "stage", "d2h", start+r.H2D+r.Kernel, start+r.Pipeline())
}

// SchedulerStats is one snapshot of a GStreamManager's counters:
// direct dispatches to idle streams, GWork Pool enqueues, and steals.
type SchedulerStats struct {
	Direct, Pooled, Steals int64
}

// Metric is one named counter value.
type Metric struct {
	Name  string
	Value int64
}

// Registry is a set of named monotonic counters. Like the tracer it is
// nil-safe, and snapshots are sorted so consumers never observe map
// order. Hot producers preregister a Counter handle once and bump it
// lock-free; ad-hoc producers use Add/Max, which pay a mutex and a map
// probe per call.
type Registry struct {
	mu       sync.Mutex
	counters map[string]int64
	handles  map[string]*Counter
	// disabled is set before the simulation runs and never written
	// during it, so the Enabled fast path reads it without the lock.
	disabled bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{counters: make(map[string]int64), handles: make(map[string]*Counter)}
}

// Counter is a preregistered handle on one named counter: a direct
// slot pointer, bumped without hashing the name or taking the registry
// lock. Safe under the cooperative virtual-clock scheduler — exactly
// one process runs at a time, with happens-before edges through every
// handoff — which is the same discipline the stream-worker scratch
// buffers rely on. A nil Counter (from a nil registry) drops writes.
type Counter struct {
	name     string
	v        int64
	disabled bool
}

// Counter interns name and returns its handle. Handles registered for
// the same name share a slot. Registering on a nil registry returns
// nil, whose methods are no-ops, so construction-time wiring needs no
// guards.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.handles[name]; ok {
		return c
	}
	c := &Counter{name: name, disabled: r.disabled}
	r.handles[name] = c
	return c
}

// Add increments the counter by delta: one predictable branch and one
// integer add on the hot path.
//
//gflink:hotpath
func (c *Counter) Add(delta int64) {
	if c == nil || c.disabled {
		return
	}
	c.v += delta
}

// Max raises the counter to v if v exceeds its current value.
//
//gflink:hotpath
func (c *Counter) Max(v int64) {
	if c == nil || c.disabled {
		return
	}
	if v > c.v {
		c.v = v
	}
}

// Get returns the counter's current value.
//
//gflink:hotpath
func (c *Counter) Get() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Enabled reports whether the registry accepts writes; like
// Tracer.Enabled it is the zero-cost gate for metric call sites that
// would otherwise build names or values just to record them.
//
//gflink:hotpath
func (r *Registry) Enabled() bool { return r != nil && !r.disabled }

// SetEnabled turns recording on or off, including every handle already
// registered. Flip it only while the simulation is quiescent (before
// Run, or between runs): the flag is read lock-free on the hot path.
func (r *Registry) SetEnabled(on bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.disabled = !on
	for _, c := range r.handles { //gflink:unordered — flag write, no observable order
		c.disabled = !on
	}
}

// Add increments the named counter by delta.
//
//gflink:hotpath
func (r *Registry) Add(name string, delta int64) {
	if !r.Enabled() {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	//gflink:allow-alloc bounded counter set; steady-state writes hit existing buckets
	r.counters[name] += delta
}

// Max raises the named counter to v if v exceeds its current value — a
// high-watermark gauge (queue depths, buffer occupancy) stored in the
// same namespace-checked counter set as Add.
//
//gflink:hotpath
func (r *Registry) Max(name string, v int64) {
	if !r.Enabled() {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v > r.counters[name] {
		//gflink:allow-alloc bounded counter set; steady-state writes hit existing buckets
		r.counters[name] = v
	}
}

// Get returns the named counter's value (0 when never incremented),
// whether it lives in a preregistered handle or the ad-hoc map.
//
//gflink:hotpath
func (r *Registry) Get(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.handles[name]; ok {
		return c.v + r.counters[name]
	}
	return r.counters[name]
}

// Total sums every counter whose name starts with prefix — e.g.
// Total("cache.hits") aggregates the per-device "cache.hits.gpuN"
// counters.
func (r *Registry) Total(prefix string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var n int64
	for name, v := range r.counters { //gflink:unordered — summing ints
		if strings.HasPrefix(name, prefix) {
			n += v
		}
	}
	for name, c := range r.handles { //gflink:unordered — summing ints
		if strings.HasPrefix(name, prefix) {
			n += c.v
		}
	}
	return n
}

// Snapshot returns every nonzero-or-map-resident counter sorted by
// name, merging preregistered handles with the ad-hoc map. A handle
// that was never bumped stays out of the snapshot, matching the map
// counters' never-incremented behavior.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	totals := make(map[string]int64, len(r.counters)+len(r.handles))
	for name, v := range r.counters { //gflink:unordered — merged into totals, sorted below
		totals[name] = v
	}
	for name, c := range r.handles { //gflink:unordered — merged into totals, sorted below
		if c.v != 0 {
			totals[name] += c.v
		}
	}
	names := make([]string, 0, len(totals))
	for name := range totals {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]Metric, 0, len(names))
	for _, name := range names {
		out = append(out, Metric{Name: name, Value: totals[name]})
	}
	return out
}

// Observability bundles the tracer and registry one deployment feeds.
// A nil *Observability yields nil components, which are themselves
// no-ops, so observability can be threaded unconditionally.
type Observability struct {
	tracer  *Tracer
	metrics *Registry
}

// New returns a fresh tracer + registry pair.
func New() *Observability {
	return &Observability{tracer: NewTracer(), metrics: NewRegistry()}
}

// Tracer returns the span tracer.
func (o *Observability) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.tracer
}

// Metrics returns the counter registry.
func (o *Observability) Metrics() *Registry {
	if o == nil {
		return nil
	}
	return o.metrics
}
