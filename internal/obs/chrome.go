package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// TraceProcess is one tracer exported as a Chrome trace process row —
// typically one GFlink deployment.
type TraceProcess struct {
	Name   string
	Tracer *Tracer
}

// chromeEvent is one trace_event entry: "X" complete events carry the
// spans, "M" metadata events name the process and thread rows.
// Timestamps and durations are microseconds (the format's unit).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

func micros(d int64) float64 { return float64(d) / 1e3 }

// ChromeTrace serializes the given processes as Chrome trace_event
// JSON, loadable in chrome://tracing and Perfetto. The output is a
// pure function of the recorded spans: thread ids come from sorted
// track names, spans are ordered by (start, recording sequence), and
// json.Marshal sorts every args map — so traces of a deterministic
// simulation are byte-identical across runs.
func ChromeTrace(procs ...TraceProcess) ([]byte, error) {
	evs := []chromeEvent{}
	for pid, p := range procs {
		evs = append(evs, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": p.Name},
		})
		spans := p.Tracer.Spans()
		tids := make(map[string]int, 8)
		tracks := make([]string, 0, 8)
		for _, s := range spans {
			if _, ok := tids[s.Track]; !ok {
				tids[s.Track] = 0
				tracks = append(tracks, s.Track)
			}
		}
		sort.Strings(tracks)
		for tid, track := range tracks {
			tids[track] = tid
			evs = append(evs, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]any{"name": track},
			})
		}
		sort.SliceStable(spans, func(i, j int) bool {
			if spans[i].Start != spans[j].Start {
				return spans[i].Start < spans[j].Start
			}
			return spans[i].Seq < spans[j].Seq
		})
		for _, s := range spans {
			ev := chromeEvent{
				Name: s.Name, Cat: s.Cat, Ph: "X",
				Ts:  micros(int64(s.Start)),
				Dur: micros(int64(s.End - s.Start)),
				Pid: pid, Tid: tids[s.Track],
			}
			if len(s.Attrs) > 0 {
				ev.Args = make(map[string]any, len(s.Attrs))
				for _, a := range s.Attrs {
					ev.Args[a.Key] = a.Val
				}
			}
			evs = append(evs, ev)
		}
	}
	return json.Marshal(chromeFile{TraceEvents: evs})
}

// WriteChromeTrace writes ChromeTrace's output to w.
func WriteChromeTrace(w io.Writer, procs ...TraceProcess) error {
	data, err := ChromeTrace(procs...)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// ValidateChromeTrace checks that data is structurally valid Chrome
// trace_event JSON as this package emits it: a traceEvents array whose
// entries are either "X" complete events (name, non-negative ts/dur,
// pid, tid) or "M" process/thread metadata events carrying args.name.
func ValidateChromeTrace(data []byte) error {
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("obs: trace is not valid JSON: %w", err)
	}
	if f.TraceEvents == nil {
		return fmt.Errorf("obs: trace has no traceEvents array")
	}
	for i, e := range f.TraceEvents {
		name, _ := e["name"].(string)
		if name == "" {
			return fmt.Errorf("obs: event %d: missing name", i)
		}
		ph, _ := e["ph"].(string)
		switch ph {
		case "X":
			ts, ok := e["ts"].(float64)
			if !ok || ts < 0 {
				return fmt.Errorf("obs: event %d (%s): bad ts %v", i, name, e["ts"])
			}
			if d, present := e["dur"]; present {
				if dur, ok := d.(float64); !ok || dur < 0 {
					return fmt.Errorf("obs: event %d (%s): bad dur %v", i, name, d)
				}
			}
			if _, ok := e["pid"].(float64); !ok {
				return fmt.Errorf("obs: event %d (%s): missing pid", i, name)
			}
			if _, ok := e["tid"].(float64); !ok {
				return fmt.Errorf("obs: event %d (%s): missing tid", i, name)
			}
		case "M":
			if name != "process_name" && name != "thread_name" {
				return fmt.Errorf("obs: event %d: unknown metadata event %q", i, name)
			}
			args, ok := e["args"].(map[string]any)
			if !ok {
				return fmt.Errorf("obs: event %d (%s): metadata without args", i, name)
			}
			if v, ok := args["name"].(string); !ok || v == "" {
				return fmt.Errorf("obs: event %d (%s): metadata without args.name", i, name)
			}
		default:
			return fmt.Errorf("obs: event %d (%s): unsupported phase %q", i, name, ph)
		}
	}
	return nil
}
