package vclock

import (
	"time"
)

// waiter is a parked process waiting on a primitive. Wakeups close ch.
type waiter struct {
	ch  chan struct{}
	n   int64 // semaphore units requested
	seq uint64
}

// Queue is an unbounded FIFO channel between processes. Get blocks on an
// empty queue; Put never blocks. A closed queue reports ok=false from Get
// once drained. The zero value is not usable; use NewQueue.
type Queue[T any] struct {
	c       *Clock
	items   []T
	waiters []*waiter
	closed  bool
}

// NewQueue returns an empty open queue bound to clock c.
func NewQueue[T any](c *Clock) *Queue[T] {
	return &Queue[T]{c: c}
}

// Put appends v and wakes one waiting Get, if any.
func (q *Queue[T]) Put(v T) {
	q.c.mu.Lock()
	defer q.c.mu.Unlock()
	if q.closed {
		panic("vclock: Put on closed Queue")
	}
	q.items = append(q.items, v)
	q.wakeOneLocked()
}

// Close marks the queue closed; blocked and future Gets observe ok=false
// once the buffered items drain.
func (q *Queue[T]) Close() {
	q.c.mu.Lock()
	defer q.c.mu.Unlock()
	q.closed = true
	for _, w := range q.waiters {
		q.c.ready("queue", w.ch)
	}
	q.waiters = nil
}

// Get removes and returns the oldest item, blocking while the queue is
// open and empty. ok is false if the queue is closed and drained.
func (q *Queue[T]) Get() (v T, ok bool) {
	for {
		q.c.mu.Lock()
		if len(q.items) > 0 {
			v = q.items[0]
			// Avoid retaining the popped element.
			var zero T
			q.items[0] = zero
			q.items = q.items[1:]
			q.c.mu.Unlock()
			return v, true
		}
		if q.closed {
			q.c.mu.Unlock()
			return v, false
		}
		w := &waiter{ch: make(chan struct{})}
		q.waiters = append(q.waiters, w)
		q.c.block("queue")
		q.c.mu.Unlock()
		<-w.ch
	}
}

// TryGet removes and returns the oldest item without blocking.
func (q *Queue[T]) TryGet() (v T, ok bool) {
	q.c.mu.Lock()
	defer q.c.mu.Unlock()
	if len(q.items) == 0 {
		return v, false
	}
	v = q.items[0]
	var zero T
	q.items[0] = zero
	q.items = q.items[1:]
	return v, true
}

// Len reports the number of buffered items.
func (q *Queue[T]) Len() int {
	q.c.mu.Lock()
	defer q.c.mu.Unlock()
	return len(q.items)
}

func (q *Queue[T]) wakeOneLocked() {
	if len(q.waiters) == 0 {
		return
	}
	w := q.waiters[0]
	q.waiters[0] = nil
	q.waiters = q.waiters[1:]
	q.c.ready("queue", w.ch)
}

// Semaphore is a counting semaphore used to model contended hardware
// resources (CPU cores, DMA engines, device compute). Acquire order is
// FIFO, which keeps simulations deterministic.
type Semaphore struct {
	c       *Clock
	name    string
	free    int64
	cap     int64
	waiters []*waiter
}

// NewSemaphore returns a semaphore with the given capacity.
func NewSemaphore(c *Clock, name string, capacity int64) *Semaphore {
	if capacity <= 0 {
		panic("vclock: semaphore capacity must be positive")
	}
	return &Semaphore{c: c, name: name, free: capacity, cap: capacity}
}

// Acquire blocks until n units are available and takes them. n greater
// than the capacity panics (it could never succeed).
func (s *Semaphore) Acquire(n int64) {
	if n > s.cap {
		panic("vclock: semaphore acquire exceeds capacity: " + s.name)
	}
	s.c.mu.Lock()
	// FIFO: only take fast path if nobody is already queued.
	if len(s.waiters) == 0 && s.free >= n {
		s.free -= n
		s.c.mu.Unlock()
		return
	}
	w := &waiter{ch: make(chan struct{}), n: n}
	s.waiters = append(s.waiters, w)
	s.c.block("sem:" + s.name)
	s.c.mu.Unlock()
	<-w.ch
}

// Release returns n units and wakes as many queued acquirers as now fit,
// in FIFO order.
func (s *Semaphore) Release(n int64) {
	s.c.mu.Lock()
	defer s.c.mu.Unlock()
	s.free += n
	if s.free > s.cap {
		panic("vclock: semaphore over-release: " + s.name)
	}
	for len(s.waiters) > 0 && s.waiters[0].n <= s.free {
		w := s.waiters[0]
		s.waiters[0] = nil
		s.waiters = s.waiters[1:]
		s.free -= w.n
		s.c.ready("sem:"+s.name, w.ch)
	}
}

// Free reports the available units (racy outside quiescence; intended
// for scheduler heuristics and tests).
func (s *Semaphore) Free() int64 {
	s.c.mu.Lock()
	defer s.c.mu.Unlock()
	return s.free
}

// Use runs fn while holding n units.
func (s *Semaphore) Use(n int64, fn func()) {
	s.Acquire(n)
	defer s.Release(n)
	fn()
}

// Event is a one-shot broadcast: Wait blocks until Set is called; after
// Set, Wait returns immediately.
type Event struct {
	c       *Clock
	set     bool
	waiters []*waiter
}

// NewEvent returns an unset event.
func NewEvent(c *Clock) *Event { return &Event{c: c} }

// Set fires the event, waking all current and future waiters. Setting an
// already-set event is a no-op.
func (e *Event) Set() {
	e.c.mu.Lock()
	defer e.c.mu.Unlock()
	if e.set {
		return
	}
	e.set = true
	for _, w := range e.waiters {
		e.c.ready("event", w.ch)
	}
	e.waiters = nil
}

// Wait blocks until the event is set.
func (e *Event) Wait() {
	e.c.mu.Lock()
	if e.set {
		e.c.mu.Unlock()
		return
	}
	w := &waiter{ch: make(chan struct{})}
	e.waiters = append(e.waiters, w)
	e.c.block("event")
	e.c.mu.Unlock()
	<-w.ch
}

// IsSet reports whether the event fired.
func (e *Event) IsSet() bool {
	e.c.mu.Lock()
	defer e.c.mu.Unlock()
	return e.set
}

// Group tracks a set of child processes and lets a parent wait for all
// of them, mirroring sync.WaitGroup for virtual-time processes.
type Group struct {
	c     *Clock
	n     int
	done  *Event
	ended bool
}

// NewGroup returns an empty group.
func NewGroup(c *Clock) *Group {
	return &Group{c: c, done: NewEvent(c)}
}

// Go spawns fn as a process tracked by the group.
func (g *Group) Go(name string, fn func()) {
	g.c.mu.Lock()
	if g.ended {
		g.c.mu.Unlock()
		panic("vclock: Group.Go after Wait returned")
	}
	g.n++
	g.c.mu.Unlock()
	g.c.Go(name, func() {
		defer func() {
			g.c.mu.Lock()
			g.n--
			fire := g.n == 0
			g.c.mu.Unlock()
			if fire {
				g.done.Set()
			}
		}()
		fn()
	})
}

// Wait blocks until every spawned process has finished. A group with no
// processes returns immediately.
func (g *Group) Wait() {
	g.c.mu.Lock()
	if g.n == 0 {
		g.ended = true
		g.c.mu.Unlock()
		return
	}
	g.c.mu.Unlock()
	g.done.Wait()
	g.c.mu.Lock()
	g.ended = true
	g.c.mu.Unlock()
}

// AfterFunc schedules fn to run as a new process at now+d.
func (c *Clock) AfterFunc(name string, d time.Duration, fn func()) {
	c.Go(name, func() {
		c.Sleep(d)
		fn()
	})
}

// Deadline is a cancellable timer used for timeouts (e.g., the work
// stealing idle timeout). Elapsed reports whether d passed without
// Cancel.
type Deadline struct {
	ev        *Event
	cancelled bool
	c         *Clock
}

// NewDeadline arms a deadline d in the future.
func NewDeadline(c *Clock, d time.Duration) *Deadline {
	dl := &Deadline{ev: NewEvent(c), c: c}
	c.Go("deadline", func() {
		c.Sleep(d)
		c.mu.Lock()
		cancelled := dl.cancelled
		c.mu.Unlock()
		if !cancelled {
			dl.ev.Set()
		}
	})
	return dl
}

// Cancel disarms the deadline if it has not fired.
func (d *Deadline) Cancel() {
	d.c.mu.Lock()
	d.cancelled = true
	d.c.mu.Unlock()
}

// Fired reports whether the deadline elapsed before cancellation.
func (d *Deadline) Fired() bool { return d.ev.IsSet() }
