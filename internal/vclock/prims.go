package vclock

import (
	"time"
)

// waiter is a parked process waiting on a primitive: the process shell
// to wake plus the semaphore units it requested. Wakes target the
// process's own channel, so in the batched engine the waker recycles
// the waiter shell the moment it leaves the wait queue; the legacy
// engine keeps the pre-batching behavior of the woken process
// re-locking to recycle it.
type waiter struct {
	p *proc
	n int64 // semaphore units requested
}

// Queue is an unbounded FIFO channel between processes. Get blocks on an
// empty queue; Put never blocks. A closed queue reports ok=false from Get
// once drained. The zero value is not usable; use NewQueue.
type Queue[T any] struct {
	c       *Clock
	items   FIFO[T]
	waiters FIFO[*waiter]
	closed  bool
}

// NewQueue returns an empty open queue bound to clock c.
func NewQueue[T any](c *Clock) *Queue[T] {
	return &Queue[T]{c: c}
}

// Put appends v and wakes one waiting Get, if any.
//
//gflink:hotpath
func (q *Queue[T]) Put(v T) {
	q.c.mu.Lock()
	defer q.c.mu.Unlock()
	if q.closed {
		panic("vclock: Put on closed Queue")
	}
	q.items.Push(v)
	q.wakeOneLocked()
}

// Close marks the queue closed; blocked and future Gets observe ok=false
// once the buffered items drain.
func (q *Queue[T]) Close() {
	q.c.mu.Lock()
	defer q.c.mu.Unlock()
	q.closed = true
	for {
		w, ok := q.waiters.Pop()
		if !ok {
			break
		}
		q.c.ready(reasonQueue, w.p)
		if !q.c.legacy {
			q.c.putWaiterLocked(w)
		}
	}
}

// Get removes and returns the oldest item, blocking while the queue is
// open and empty. ok is false if the queue is closed and drained.
//
//gflink:hotpath
func (q *Queue[T]) Get() (v T, ok bool) {
	q.c.mu.Lock()
	for {
		if v, ok = q.items.Pop(); ok {
			q.c.mu.Unlock()
			return v, true
		}
		if q.closed {
			q.c.mu.Unlock()
			return v, false
		}
		p := q.c.cur
		w := q.c.takeWaiterLocked(p, 0)
		q.waiters.Push(w)
		q.c.block(reasonQueue, nil)
		q.c.mu.Unlock()
		<-p.ch
		// The wake was a one-shot send into the process's own channel;
		// re-lock and re-check. The waker already recycled the waiter
		// shell (batched engine); the legacy engine recycles it here.
		q.c.mu.Lock()
		if q.c.legacy {
			q.c.putWaiterLocked(w)
		}
	}
}

// TryGet removes and returns the oldest item without blocking.
//
//gflink:hotpath
func (q *Queue[T]) TryGet() (v T, ok bool) {
	q.c.mu.Lock()
	defer q.c.mu.Unlock()
	return q.items.Pop()
}

// Len reports the number of buffered items.
//
//gflink:hotpath
func (q *Queue[T]) Len() int {
	q.c.mu.Lock()
	defer q.c.mu.Unlock()
	return q.items.Len()
}

//gflink:hotpath
func (q *Queue[T]) wakeOneLocked() {
	if w, ok := q.waiters.Pop(); ok {
		q.c.ready(reasonQueue, w.p)
		if !q.c.legacy {
			q.c.putWaiterLocked(w)
		}
	}
}

// Semaphore is a counting semaphore used to model contended hardware
// resources (CPU cores, DMA engines, device compute). Acquire order is
// FIFO, which keeps simulations deterministic.
type Semaphore struct {
	c         *Clock
	name      string
	reasonIdx int // census index of "sem:"+name, interned at construction
	free      int64
	cap       int64
	waiters   FIFO[*waiter]
}

// NewSemaphore returns a semaphore with the given capacity.
func NewSemaphore(c *Clock, name string, capacity int64) *Semaphore {
	if capacity <= 0 {
		panic("vclock: semaphore capacity must be positive")
	}
	return &Semaphore{c: c, name: name, reasonIdx: c.RegisterReason("sem:" + name), free: capacity, cap: capacity}
}

// Acquire blocks until n units are available and takes them. n greater
// than the capacity panics (it could never succeed).
//
//gflink:hotpath
func (s *Semaphore) Acquire(n int64) {
	if n > s.cap {
		//gflink:allow-alloc panic diagnostic on an impossible acquire
		panic("vclock: semaphore acquire exceeds capacity: " + s.name)
	}
	s.c.mu.Lock()
	// FIFO: only take fast path if nobody is already queued.
	if s.waiters.Len() == 0 && s.free >= n {
		s.free -= n
		s.c.mu.Unlock()
		return
	}
	p := s.c.cur
	w := s.c.takeWaiterLocked(p, n)
	s.waiters.Push(w)
	s.c.block(s.reasonIdx, nil)
	s.c.mu.Unlock()
	<-p.ch
	if s.c.legacy {
		// Pre-batching behavior: the woken process re-locks to recycle
		// the waiter shell Release removed from the queue.
		s.c.mu.Lock()
		s.c.putWaiterLocked(w)
		s.c.mu.Unlock()
	}
}

// Release returns n units and wakes as many queued acquirers as now fit,
// in FIFO order.
//
//gflink:hotpath
func (s *Semaphore) Release(n int64) {
	s.c.mu.Lock()
	defer s.c.mu.Unlock()
	s.free += n
	if s.free > s.cap {
		//gflink:allow-alloc panic diagnostic on over-release
		panic("vclock: semaphore over-release: " + s.name)
	}
	for {
		w, ok := s.waiters.Front()
		if !ok || w.n > s.free {
			return
		}
		s.waiters.Pop()
		s.free -= w.n
		s.c.ready(s.reasonIdx, w.p)
		if !s.c.legacy {
			s.c.putWaiterLocked(w)
		}
	}
}

// Free reports the available units (racy outside quiescence; intended
// for scheduler heuristics and tests).
//
//gflink:hotpath
func (s *Semaphore) Free() int64 {
	s.c.mu.Lock()
	defer s.c.mu.Unlock()
	return s.free
}

// Use runs fn while holding n units.
func (s *Semaphore) Use(n int64, fn func()) {
	s.Acquire(n)
	defer s.Release(n)
	fn()
}

// Event is a one-shot broadcast: Wait blocks until Set is called; after
// Set, Wait returns immediately. Reset rearms a set event for reuse.
type Event struct {
	c       *Clock
	set     bool
	waiters FIFO[*waiter]
}

// NewEvent returns an unset event.
func NewEvent(c *Clock) *Event { return &Event{c: c} }

// Set fires the event, waking all current and future waiters. Setting an
// already-set event is a no-op.
//
//gflink:hotpath
func (e *Event) Set() {
	e.c.mu.Lock()
	defer e.c.mu.Unlock()
	if e.set {
		return
	}
	e.set = true
	for {
		w, ok := e.waiters.Pop()
		if !ok {
			break
		}
		e.c.ready(reasonEvent, w.p)
		if !e.c.legacy {
			e.c.putWaiterLocked(w)
		}
	}
}

// Wait blocks until the event is set.
//
//gflink:hotpath
func (e *Event) Wait() {
	e.c.mu.Lock()
	if e.set {
		e.c.mu.Unlock()
		return
	}
	p := e.c.cur
	w := e.c.takeWaiterLocked(p, 0)
	e.waiters.Push(w)
	e.c.block(reasonEvent, nil)
	e.c.mu.Unlock()
	<-p.ch
	if e.c.legacy {
		// Pre-batching behavior: the woken process re-locks to recycle
		// the waiter shell Set removed from the queue.
		e.c.mu.Lock()
		e.c.putWaiterLocked(w)
		e.c.mu.Unlock()
	}
}

// IsSet reports whether the event fired.
//
//gflink:hotpath
func (e *Event) IsSet() bool {
	e.c.mu.Lock()
	defer e.c.mu.Unlock()
	return e.set
}

// Reset returns a fired event to the unset state so the same Event can
// be reused (e.g., the completion event of a pooled GWork). Resetting
// an event that still has blocked waiters panics: their wake-up would
// otherwise be lost. Resetting an unset event is a no-op.
//
//gflink:hotpath
func (e *Event) Reset() {
	e.c.mu.Lock()
	defer e.c.mu.Unlock()
	if e.waiters.Len() > 0 {
		panic("vclock: Event.Reset with blocked waiters")
	}
	e.set = false
}

// Group tracks a set of child processes and lets a parent wait for all
// of them, mirroring sync.WaitGroup for virtual-time processes.
type Group struct {
	c     *Clock
	n     int
	done  *Event
	ended bool
}

// NewGroup returns an empty group.
func NewGroup(c *Clock) *Group {
	return &Group{c: c, done: NewEvent(c)}
}

// Go spawns fn as a process tracked by the group.
func (g *Group) Go(name string, fn func()) {
	g.c.mu.Lock()
	if g.ended {
		g.c.mu.Unlock()
		panic("vclock: Group.Go after Wait returned")
	}
	g.n++
	g.c.mu.Unlock()
	g.c.Go(name, func() {
		defer func() {
			g.c.mu.Lock()
			g.n--
			fire := g.n == 0
			g.c.mu.Unlock()
			if fire {
				g.done.Set()
			}
		}()
		fn()
	})
}

// Wait blocks until every spawned process has finished. A group with no
// processes returns immediately.
func (g *Group) Wait() {
	g.c.mu.Lock()
	if g.n == 0 {
		g.ended = true
		g.c.mu.Unlock()
		return
	}
	g.c.mu.Unlock()
	g.done.Wait()
	g.c.mu.Lock()
	g.ended = true
	g.c.mu.Unlock()
}

// AfterFunc schedules fn to run as a new process at now+d.
func (c *Clock) AfterFunc(name string, d time.Duration, fn func()) {
	c.Go(name, func() {
		c.Sleep(d)
		fn()
	})
}

// Deadline is a cancellable timer used for timeouts (e.g., the work
// stealing idle timeout). Elapsed reports whether d passed without
// Cancel.
type Deadline struct {
	ev        *Event
	cancelled bool
	c         *Clock
}

// NewDeadline arms a deadline d in the future.
func NewDeadline(c *Clock, d time.Duration) *Deadline {
	dl := &Deadline{ev: NewEvent(c), c: c}
	c.Go("deadline", func() {
		c.Sleep(d)
		c.mu.Lock()
		cancelled := dl.cancelled
		c.mu.Unlock()
		if !cancelled {
			dl.ev.Set()
		}
	})
	return dl
}

// Cancel disarms the deadline if it has not fired.
func (d *Deadline) Cancel() {
	d.c.mu.Lock()
	d.cancelled = true
	d.c.mu.Unlock()
}

// Fired reports whether the deadline elapsed before cancellation.
func (d *Deadline) Fired() bool { return d.ev.IsSet() }
