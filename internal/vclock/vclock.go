// Package vclock implements a deterministic virtual-time kernel for the
// GFlink simulator.
//
// Every concurrent component of the simulated cluster (task slots, CUDA
// streams, DMA engines, network transfers, disks) runs as an ordinary
// goroutine registered with a Clock. Such a goroutine is called a
// process. Processes may block only through the primitives provided by
// this package (Sleep, Queue, Semaphore, Event, ...). Scheduling is
// cooperative: exactly one process executes at a time, and when it
// blocks the kernel hands control to the next ready process in FIFO
// wake order. The clock advances to the earliest pending deadline
// exactly when no process is ready, which makes simulated schedules —
// including the admission order at contended semaphores when several
// processes wake at the same instant — deterministic and independent of
// host scheduling, GOMAXPROCS, or wall time.
//
// Dispatch is batched: when the clock advances, every timer sharing the
// new instant is drained from the heap at once, in seq order, into a
// wake batch; readied processes still run before the next batch member
// fires, so the observable wake order is exactly the pre-batching
// FIFO-by-seq order (see DESIGN.md "Simulator engine").
//
// If every process is blocked and no timer is pending, the simulation
// cannot make progress; the kernel panics with a diagnostic listing the
// blocked processes, which turns would-be hangs into debuggable errors.
package vclock

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// proc is one registered process: a permanent wake channel the
// dispatcher sends into (one-shot, buffered) plus the process name for
// diagnostics. The shell is recycled through a free list when the
// process exits, so timeout- and deadline-heavy workloads that spawn
// short-lived processes stay allocation-free at steady state.
type proc struct {
	ch   chan struct{}
	name string
}

// Census indices for the closed set of built-in block reasons. The
// blocked-process census is a fixed-index counter array — not a map —
// so the hot park/wake path never hashes a string; semaphores register
// their "sem:<name>" labels with RegisterReason at construction.
const (
	reasonSleep = iota
	reasonQueue
	reasonEvent
	numBuiltinReasons
)

// Clock is a virtual-time scheduler. The zero value is not usable; use
// New.
type Clock struct {
	mu  sync.Mutex
	now time.Duration
	// nowNanos mirrors now for lock-free Now(): it is written under mu,
	// always before the wake-up send that lets another process run, and
	// read atomically by everyone else.
	nowNanos int64
	running  int   // processes currently executing: 0 or 1 once Run starts
	total    int   // registered processes alive
	cur      *proc // the process holding the execution slot
	// runq holds readied processes in wake order; wakeq holds the
	// remainder of the current co-deadline timer batch in seq order.
	// Dispatch order is runq, then wakeq, then a fresh batch from the
	// timer heap.
	runq    Ring[*proc]
	wakeq   Ring[*proc]
	timers  timerHeap
	seq     uint64 // tie-break for identical deadlines; preserves FIFO order
	started bool   // set by Run; no advancement/deadlock checks before it
	done    chan struct{}
	// Fixed-index blocked census for deadlock diagnostics: blockedN[i]
	// processes are parked for reasonLabels[i].
	reasonLabels []string
	blockedN     []int
	// legacy selects the pre-batching dispatch engine (one timer per
	// dispatch, census map, per-park recycle round trip) for speedup
	// baselines and byte-identity tests. Immutable once Run starts.
	legacy        bool
	legacyBlocked map[string]int
	// panicked records a panic raised inside a process so Run can
	// re-raise it on the caller's goroutine.
	panicked any
	hasPanic bool
	// Free lists recycling park machinery across blocks: wake-ups are
	// one-shot sends into each process's buffered channel, so timer and
	// waiter shells are reusable the moment their wake is queued. This
	// keeps the park/wake cycle in Sleep and the primitives
	// allocation-free at steady state (invariant 10).
	freeWaiters []*waiter
	freeTimers  []*timer
	freeProcs   []*proc
}

// New returns a Clock positioned at virtual time zero.
func New() *Clock {
	return &Clock{
		done:         make(chan struct{}),
		reasonLabels: []string{"sleep", "queue", "event"},
		blockedN:     make([]int, numBuiltinReasons),
	}
}

// SetLegacyDispatch switches the clock to the pre-batching dispatch
// engine: timers fire one per dispatch with a full channel handoff
// each, the blocked census is a string-keyed map, and parked processes
// re-lock after waking to recycle their park shells. Schedules and
// traces are byte-identical to the batched engine — only the constant
// factor differs — which is exactly what the vclock-bench speedup
// baseline and the dispatch-equivalence tests need. It must be called
// before Run.
func (c *Clock) SetLegacyDispatch(on bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		panic("vclock: SetLegacyDispatch after Run started")
	}
	c.legacy = on
	if on && c.legacyBlocked == nil {
		c.legacyBlocked = make(map[string]int)
	}
}

// RegisterReason interns a block-reason label for the deadlock census
// and returns its fixed index. Labels are deduplicated, so primitives
// sharing a name share a census row exactly as the map census did.
func (c *Clock) RegisterReason(label string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, l := range c.reasonLabels {
		if l == label {
			return i
		}
	}
	c.reasonLabels = append(c.reasonLabels, label)
	c.blockedN = append(c.blockedN, 0)
	return len(c.reasonLabels) - 1
}

// Now reports the current virtual time as a duration since the start of
// the simulation. The batched engine reads it lock-free: the dispatcher
// publishes the instant atomically before any wake-up send, and only
// the dispatcher — which runs while every other process is parked —
// ever writes it.
//
//gflink:hotpath
func (c *Clock) Now() time.Duration {
	if c.legacy {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.now
	}
	return time.Duration(atomic.LoadInt64(&c.nowNanos))
}

// setNowLocked advances the clock, publishing the new instant for
// lock-free Now readers. Callers must hold c.mu and must not have sent
// any wake-up for the new instant yet.
//
//gflink:hotpath
func (c *Clock) setNowLocked(d time.Duration) {
	c.now = d
	atomic.StoreInt64(&c.nowNanos, int64(d))
}

// Go spawns fn as a new registered process. It may be called from any
// goroutine, including non-process goroutines, before or during Run.
// The new process does not run immediately: it joins the ready queue
// and is dispatched when the current process blocks or exits, so spawn
// order — not host scheduling — decides execution order.
func (c *Clock) Go(name string, fn func()) {
	c.mu.Lock()
	p := c.takeProcLocked(name)
	c.total++
	c.runq.Push(p)
	c.mu.Unlock()
	// The vclock runtime is the one place real goroutines are created:
	// every simulated process is backed by exactly one, registered with
	// the census above before it starts. The goroutine parks until the
	// dispatcher hands it the (single) execution slot.
	//gflink:allow-go
	go func() {
		defer func() {
			if r := recover(); r != nil {
				c.mu.Lock()
				if !c.hasPanic {
					c.hasPanic = true
					c.panicked = fmt.Errorf("process %q panicked: %v", p.name, r)
				}
				c.mu.Unlock()
			}
			c.exit(p)
		}()
		<-p.ch
		fn()
	}()
}

// Run executes root as the initial process and blocks until every
// process has finished. It returns the final virtual time. Run may be
// called once per Clock.
//
// Processes spawned before Run (e.g., stream executors created during
// deployment construction) may block on primitives; the clock neither
// advances nor declares deadlock until Run starts.
func (c *Clock) Run(root func()) time.Duration {
	c.Go("root", root)
	c.mu.Lock()
	c.started = true
	// Kick the dispatcher: processes spawned before Run (including root)
	// are parked in the ready queue and run from here on, one at a time.
	c.dispatchLocked(nil)
	c.mu.Unlock()
	<-c.done
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.hasPanic {
		panic(c.panicked)
	}
	return c.now
}

// exit unregisters the calling process and recycles its shell. The
// wake channel is provably empty here — every wake-up is a one-shot
// send the process consumed before running — so the shell (channel
// included) is immediately reusable by a future Go.
func (c *Clock) exit(p *proc) {
	c.mu.Lock()
	c.running--
	c.total--
	c.putProcLocked(p)
	if c.total == 0 {
		defer c.mu.Unlock()
		select {
		case <-c.done:
		default:
			close(c.done)
		}
		return
	}
	c.dispatchLocked(nil)
	c.mu.Unlock()
}

// Sleep blocks the calling process for d of virtual time. Negative or
// zero durations yield without advancing time... actually a zero sleep
// still round-trips through the timer heap so that co-scheduled wakeups
// at the same instant occur in FIFO order.
//
// When the sleeper's own timer heads the next dispatch batch — common
// when one worker races ahead of every other process — block reports a
// self-wake and Sleep returns without touching its wake channel at all:
// one locked section, zero channel operations.
//
//gflink:hotpath
func (c *Clock) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	c.mu.Lock()
	p := c.cur
	t := c.takeTimerLocked(p, c.now+d)
	heap.Push(&c.timers, t)
	if c.legacy {
		c.block(reasonSleep, nil)
		c.mu.Unlock()
		<-p.ch
		// Woken by a one-shot send: p.ch is drained and t is off the heap,
		// so the timer can be recycled. The extra lock round-trip changes
		// no scheduling decision — this process already holds the
		// execution slot. (The batched engine recycles the timer inside
		// the dispatcher instead and skips this round trip.)
		c.mu.Lock()
		c.putTimerLocked(t)
		c.mu.Unlock()
		return
	}
	if c.block(reasonSleep, p) {
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	<-p.ch
}

// takeProcLocked returns a recycled (or new) process shell. Callers
// must hold c.mu.
func (c *Clock) takeProcLocked(name string) *proc {
	if n := len(c.freeProcs); n > 0 {
		p := c.freeProcs[n-1]
		c.freeProcs[n-1] = nil
		c.freeProcs = c.freeProcs[:n-1]
		p.name = name
		return p
	}
	return &proc{ch: make(chan struct{}, 1), name: name}
}

// putProcLocked recycles an exited process's shell. Callers must hold
// c.mu.
func (c *Clock) putProcLocked(p *proc) {
	p.name = ""
	c.freeProcs = append(c.freeProcs, p)
}

// takeTimerLocked returns a recycled (or new) timer armed for deadline
// on behalf of p, with the global wake sequence already assigned.
// Callers must hold c.mu.
//
//gflink:hotpath
func (c *Clock) takeTimerLocked(p *proc, deadline time.Duration) *timer {
	c.seq++
	if n := len(c.freeTimers); n > 0 {
		t := c.freeTimers[n-1]
		c.freeTimers[n-1] = nil
		c.freeTimers = c.freeTimers[:n-1]
		t.deadline = deadline
		t.seq = c.seq
		t.p = p
		return t
	}
	//gflink:allow-alloc cold start: the free list amortizes this away at steady state
	return &timer{deadline: deadline, seq: c.seq, p: p}
}

// putTimerLocked recycles a fired timer. The batched dispatcher calls
// it the moment a timer is drained from the heap — before the wake-up
// send — because the wake now targets the process shell, not the timer.
// Callers must hold c.mu.
//
//gflink:hotpath
func (c *Clock) putTimerLocked(t *timer) {
	t.p = nil
	//gflink:allow-alloc amortized growth of the timer free list
	c.freeTimers = append(c.freeTimers, t)
}

// takeWaiterLocked returns a recycled (or new) waiter parked for p with
// n units requested. Callers must hold c.mu.
//
//gflink:hotpath
func (c *Clock) takeWaiterLocked(p *proc, n int64) *waiter {
	if l := len(c.freeWaiters); l > 0 {
		w := c.freeWaiters[l-1]
		c.freeWaiters[l-1] = nil
		c.freeWaiters = c.freeWaiters[:l-1]
		w.p = p
		w.n = n
		return w
	}
	//gflink:allow-alloc cold start: the free list amortizes this away at steady state
	return &waiter{p: p, n: n}
}

// putWaiterLocked recycles a waiter whose wake has been queued (batched
// engine: the waker recycles it; legacy engine: the woken process does,
// after re-locking). Callers must hold c.mu.
//
//gflink:hotpath
func (c *Clock) putWaiterLocked(w *waiter) {
	w.p = nil
	w.n = 0
	//gflink:allow-alloc amortized growth of the waiter free list
	c.freeWaiters = append(c.freeWaiters, w)
}

// block marks the calling process blocked for the given census reason
// and hands the execution slot to the next ready process (advancing the
// clock if none is ready). self is the calling process when the caller
// can be woken by a timer it just armed; block returns true when the
// dispatcher re-selected self, in which case the caller keeps the slot
// and must NOT park. Callers must hold c.mu and, unless block reports a
// self-wake, must park on their process channel after releasing it.
//
//gflink:hotpath
func (c *Clock) block(idx int, self *proc) bool {
	c.running--
	if c.legacy {
		//gflink:allow-alloc legacy baseline engine keeps the pre-batching census map by design
		c.legacyBlocked[c.reasonLabels[idx]]++
		//gflink:allow-alloc legacy baseline engine: pre-batching one-timer dispatcher, off the production path
		c.legacyDispatchLocked()
		return false
	}
	c.blockedN[idx]++
	return c.dispatchLocked(self)
}

// ready marks one process blocked for the given census reason as ready
// to run again. It joins the ready queue but does not execute until
// dispatched — the waker keeps the execution slot until it blocks or
// exits, and queued wake order is what makes contended admissions
// deterministic. Callers must hold c.mu.
//
//gflink:hotpath
func (c *Clock) ready(idx int, p *proc) {
	if c.legacy {
		label := c.reasonLabels[idx]
		//gflink:allow-alloc legacy baseline engine keeps the pre-batching census map by design
		c.legacyBlocked[label]--
		if c.legacyBlocked[label] == 0 {
			delete(c.legacyBlocked, label)
		}
	} else {
		c.blockedN[idx]--
	}
	c.runq.Push(p)
}

// dispatchLocked hands the execution slot to the next process in wake
// order: a readied process first, then the rest of the current
// co-deadline batch, then — with both queues empty — a fresh batch
// drained from the timer heap. Draining every timer that shares the
// earliest deadline in one locked sweep (seq order, which is FIFO
// order) is what "batched dispatch" means; it is observationally
// identical to the one-timer-per-dispatch engine because a timer armed
// *after* the batch formed necessarily carries a larger seq and the
// same instant, so it would have fired after the whole batch anyway.
//
// dispatchLocked returns true when the selected process is self: the
// caller keeps the execution slot and no channel operation happens at
// all. Callers must hold c.mu.
//
//gflink:hotpath
func (c *Clock) dispatchLocked(self *proc) bool {
	if c.legacy {
		// Route every dispatch entry point (block, exit, Run) through the
		// one-timer engine on a legacy clock. Mixing dispatchers corrupts
		// the park machinery: this path recycles fired timers and forms
		// wakeq batches, while legacy sleepers recycle their own timers
		// and legacyDispatchLocked never drains wakeq.
		//gflink:allow-alloc legacy baseline engine: pre-batching one-timer dispatcher, off the production path
		c.legacyDispatchLocked()
		return false
	}
	if !c.started || c.running > 0 || c.total == 0 {
		return false
	}
	if p, ok := c.runq.Pop(); ok {
		return c.handoffLocked(p, self)
	}
	if p, ok := c.wakeq.Pop(); ok {
		return c.handoffLocked(p, self)
	}
	if len(c.timers) == 0 {
		//gflink:allow-alloc deadlock diagnostics: cold path that ends the simulation
		c.deadlockLocked()
		return false
	}
	// Form the batch: pop every timer sharing the earliest deadline, in
	// seq order. The first wakes now; the rest wait in wakeq behind any
	// processes the woken ones ready (virtual time holds still for the
	// whole batch).
	t := heap.Pop(&c.timers).(*timer)
	c.setNowLocked(t.deadline)
	c.blockedN[reasonSleep]--
	p := t.p
	c.putTimerLocked(t)
	for len(c.timers) > 0 && c.timers[0].deadline == c.now {
		t2 := heap.Pop(&c.timers).(*timer)
		c.blockedN[reasonSleep]--
		c.wakeq.Push(t2.p)
		c.putTimerLocked(t2)
	}
	return c.handoffLocked(p, self)
}

// handoffLocked gives p the execution slot. A handoff to self is the
// fast path: no channel send, the caller just keeps running. Callers
// must hold c.mu.
//
//gflink:hotpath
func (c *Clock) handoffLocked(p, self *proc) bool {
	c.running++
	c.cur = p
	if p == self {
		return true
	}
	p.ch <- struct{}{}
	return false
}

// legacyDispatchLocked is the pre-batching dispatcher: next readied
// process, else exactly one timer — the earliest pending (FIFO by seq
// at equal deadlines) — fires per dispatch, with a full channel handoff
// each. Co-deadline timers fire one by one as each woken process blocks
// again; virtual time holds still in between. Callers must hold c.mu.
func (c *Clock) legacyDispatchLocked() {
	if !c.started || c.running > 0 || c.total == 0 {
		return
	}
	if p, ok := c.runq.Pop(); ok {
		c.running++
		c.cur = p
		p.ch <- struct{}{}
		return
	}
	if len(c.timers) == 0 {
		c.deadlockLocked()
		return
	}
	t := heap.Pop(&c.timers).(*timer)
	c.setNowLocked(t.deadline)
	c.legacyBlocked["sleep"]--
	if c.legacyBlocked["sleep"] == 0 {
		delete(c.legacyBlocked, "sleep")
	}
	c.running++
	c.cur = t.p
	t.p.ch <- struct{}{}
}

// deadlockLocked ends the simulation with a deadlock diagnostic. Either
// a process died by panic (simulation already compromised) or this is a
// genuine deadlock. The error surfaces from Run on the caller's
// goroutine: panicking here would unwind with c.mu held and wedge the
// recover path. Parked processes are leaked; this path ends the
// simulation.
func (c *Clock) deadlockLocked() {
	if !c.hasPanic {
		c.hasPanic = true
		c.panicked = fmt.Errorf("vclock: deadlock: all processes blocked with no pending timer\n%s", c.diagnosticLocked())
	}
	select {
	case <-c.done:
	default:
		close(c.done)
	}
}

// diagnosticLocked renders the blocked-process census for deadlock
// panics: the nonzero reasons, sorted by label.
func (c *Clock) diagnosticLocked() string {
	var b strings.Builder
	fmt.Fprintf(&b, "  virtual time: %v\n  processes alive: %d\n  blocked on:\n", c.now, c.total)
	type row struct {
		label string
		n     int
	}
	var rows []row
	if c.legacy {
		for label, n := range c.legacyBlocked { //gflink:unordered — sorted below
			rows = append(rows, row{label, n})
		}
	} else {
		for i, n := range c.blockedN {
			if n != 0 {
				rows = append(rows, row{c.reasonLabels[i], n})
			}
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].label < rows[j].label })
	for _, r := range rows {
		fmt.Fprintf(&b, "    %-12s %d\n", r.label, r.n)
	}
	return b.String()
}

// timer is one pending Sleep deadline; the wake targets the parked
// process's shell, so the dispatcher recycles the timer the moment it
// leaves the heap.
type timer struct {
	deadline time.Duration
	seq      uint64
	p        *proc
}

type timerHeap []*timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].deadline != h[j].deadline {
		return h[i].deadline < h[j].deadline
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x any)   { *h = append(*h, x.(*timer)) }
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}
