// Package vclock implements a deterministic virtual-time kernel for the
// GFlink simulator.
//
// Every concurrent component of the simulated cluster (task slots, CUDA
// streams, DMA engines, network transfers, disks) runs as an ordinary
// goroutine registered with a Clock. Such a goroutine is called a
// process. Processes may block only through the primitives provided by
// this package (Sleep, Queue, Semaphore, Event, ...). Scheduling is
// cooperative: exactly one process executes at a time, and when it
// blocks the kernel hands control to the next ready process in FIFO
// wake order. The clock advances to the earliest pending deadline
// exactly when no process is ready, which makes simulated schedules —
// including the admission order at contended semaphores when several
// processes wake at the same instant — deterministic and independent of
// host scheduling, GOMAXPROCS, or wall time.
//
// If every process is blocked and no timer is pending, the simulation
// cannot make progress; the kernel panics with a diagnostic listing the
// blocked processes, which turns would-be hangs into debuggable errors.
package vclock

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Clock is a virtual-time scheduler. The zero value is not usable; use
// New.
type Clock struct {
	mu      sync.Mutex
	now     time.Duration
	running int                 // processes currently executing: 0 or 1 once Run starts
	total   int                 // registered processes alive
	runq    FIFO[chan struct{}] // ready processes awaiting dispatch, in wake order
	timers  timerHeap
	seq     uint64 // tie-break for identical deadlines; preserves FIFO order
	started bool   // set by Run; no advancement/deadlock checks before it
	done    chan struct{}
	blocked map[string]int // reason -> count, for deadlock diagnostics
	// panicked records a panic raised inside a process so Run can
	// re-raise it on the caller's goroutine.
	panicked any
	hasPanic bool
	// Free lists recycling park machinery across blocks: wake-ups are
	// one-shot sends into each waiter/timer's buffered channel, so the
	// channel is empty — and reusable — the moment its parked process
	// resumes. This keeps the park/wake cycle in Sleep and the
	// primitives allocation-free at steady state (invariant 10).
	freeWaiters []*waiter
	freeTimers  []*timer
}

// New returns a Clock positioned at virtual time zero.
func New() *Clock {
	return &Clock{
		done:    make(chan struct{}),
		blocked: make(map[string]int),
	}
}

// Now reports the current virtual time as a duration since the start of
// the simulation.
//
//gflink:hotpath
func (c *Clock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Go spawns fn as a new registered process. It may be called from any
// goroutine, including non-process goroutines, before or during Run.
// The new process does not run immediately: it joins the ready queue
// and is dispatched when the current process blocks or exits, so spawn
// order — not host scheduling — decides execution order.
func (c *Clock) Go(name string, fn func()) {
	ch := make(chan struct{}, 1)
	c.mu.Lock()
	c.total++
	c.runq.Push(ch)
	c.mu.Unlock()
	// The vclock runtime is the one place real goroutines are created:
	// every simulated process is backed by exactly one, registered with
	// the census above before it starts. The goroutine parks until the
	// dispatcher hands it the (single) execution slot.
	//gflink:allow-go
	go func() {
		defer func() {
			if r := recover(); r != nil {
				c.mu.Lock()
				if !c.hasPanic {
					c.hasPanic = true
					c.panicked = fmt.Errorf("process %q panicked: %v", name, r)
				}
				c.mu.Unlock()
			}
			c.exit()
		}()
		<-ch
		fn()
	}()
}

// Run executes root as the initial process and blocks until every
// process has finished. It returns the final virtual time. Run may be
// called once per Clock.
//
// Processes spawned before Run (e.g., stream executors created during
// deployment construction) may block on primitives; the clock neither
// advances nor declares deadlock until Run starts.
func (c *Clock) Run(root func()) time.Duration {
	c.Go("root", root)
	c.mu.Lock()
	c.started = true
	// Kick the dispatcher: processes spawned before Run (including root)
	// are parked in the ready queue and run from here on, one at a time.
	c.dispatchLocked()
	c.mu.Unlock()
	<-c.done
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.hasPanic {
		panic(c.panicked)
	}
	return c.now
}

// exit unregisters the calling process.
func (c *Clock) exit() {
	c.mu.Lock()
	c.running--
	c.total--
	if c.total == 0 {
		defer c.mu.Unlock()
		select {
		case <-c.done:
		default:
			close(c.done)
		}
		return
	}
	c.dispatchLocked()
	c.mu.Unlock()
}

// Sleep blocks the calling process for d of virtual time. Negative or
// zero durations yield without advancing time... actually a zero sleep
// still round-trips through the timer heap so that co-scheduled wakeups
// at the same instant occur in FIFO order.
//
//gflink:hotpath
func (c *Clock) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	c.mu.Lock()
	t := c.takeTimerLocked(c.now + d)
	heap.Push(&c.timers, t)
	c.block("sleep")
	c.mu.Unlock()
	<-t.ch
	// Woken by a one-shot send: t.ch is drained and t is off the heap, so
	// the timer can be recycled. The extra lock round-trip changes no
	// scheduling decision — this process already holds the execution slot.
	c.mu.Lock()
	c.putTimerLocked(t)
	c.mu.Unlock()
}

// takeTimerLocked returns a recycled (or new) timer armed for deadline,
// with the global wake sequence already assigned. Callers must hold
// c.mu.
//
//gflink:hotpath
func (c *Clock) takeTimerLocked(deadline time.Duration) *timer {
	c.seq++
	if n := len(c.freeTimers); n > 0 {
		t := c.freeTimers[n-1]
		c.freeTimers[n-1] = nil
		c.freeTimers = c.freeTimers[:n-1]
		t.deadline = deadline
		t.seq = c.seq
		return t
	}
	//gflink:allow-alloc cold start: the free list amortizes this away at steady state
	return &timer{deadline: deadline, seq: c.seq, ch: make(chan struct{}, 1)}
}

// putTimerLocked recycles a fired, drained timer. Callers must hold
// c.mu.
//
//gflink:hotpath
func (c *Clock) putTimerLocked(t *timer) {
	//gflink:allow-alloc amortized growth of the timer free list
	c.freeTimers = append(c.freeTimers, t)
}

// takeWaiterLocked returns a recycled (or new) waiter with an empty
// wake channel and n set. Callers must hold c.mu.
//
//gflink:hotpath
func (c *Clock) takeWaiterLocked(n int64) *waiter {
	if l := len(c.freeWaiters); l > 0 {
		w := c.freeWaiters[l-1]
		c.freeWaiters[l-1] = nil
		c.freeWaiters = c.freeWaiters[:l-1]
		w.n = n
		return w
	}
	//gflink:allow-alloc cold start: the free list amortizes this away at steady state
	return &waiter{ch: make(chan struct{}, 1), n: n}
}

// putWaiterLocked recycles a woken, drained waiter. Callers must hold
// c.mu.
//
//gflink:hotpath
func (c *Clock) putWaiterLocked(w *waiter) {
	w.n = 0
	//gflink:allow-alloc amortized growth of the waiter free list
	c.freeWaiters = append(c.freeWaiters, w)
}

// block marks the calling process blocked for the given reason and
// hands the execution slot to the next ready process (advancing the
// clock if none is ready). Callers must hold c.mu and, after releasing
// it, must park on the channel their wake-up will send into.
//
//gflink:hotpath
func (c *Clock) block(reason string) {
	c.running--
	//gflink:allow-alloc bounded census map; steady-state writes hit existing buckets
	c.blocked[reason]++
	c.dispatchLocked()
}

// ready marks one process blocked for reason as ready to run again. It
// joins the ready queue but does not execute until dispatched — the
// waker keeps the execution slot until it blocks or exits, and queued
// wake order is what makes contended admissions deterministic. Callers
// must hold c.mu.
//
//gflink:hotpath
func (c *Clock) ready(reason string, ch chan struct{}) {
	//gflink:allow-alloc bounded census map; steady-state writes hit existing buckets
	c.blocked[reason]--
	if c.blocked[reason] == 0 {
		delete(c.blocked, reason)
	}
	c.runq.Push(ch)
}

// dispatchLocked hands the execution slot to the next ready process, or
// — when none is ready — fires the earliest pending timer. Wake-ups are
// one-shot sends into each process's buffered channel, so channels are
// drained — and recyclable — the moment the woken process resumes.
// Callers must hold c.mu.
//
//gflink:hotpath
func (c *Clock) dispatchLocked() {
	if !c.started || c.running > 0 || c.total == 0 {
		return
	}
	if ch, ok := c.runq.Pop(); ok {
		c.running++
		ch <- struct{}{}
		return
	}
	if len(c.timers) == 0 {
		//gflink:allow-alloc deadlock diagnostics: cold path that ends the simulation
		c.deadlockLocked()
		return
	}
	// Fire the earliest timer (FIFO by seq at equal deadlines) and run
	// its process. Co-deadline timers fire one by one as each woken
	// process blocks again; virtual time holds still in between.
	t := heap.Pop(&c.timers).(*timer)
	c.now = t.deadline
	//gflink:allow-alloc bounded census map; steady-state writes hit existing buckets
	c.blocked["sleep"]--
	if c.blocked["sleep"] == 0 {
		delete(c.blocked, "sleep")
	}
	c.running++
	t.ch <- struct{}{}
}

// deadlockLocked ends the simulation with a deadlock diagnostic. Either
// a process died by panic (simulation already compromised) or this is a
// genuine deadlock. The error surfaces from Run on the caller's
// goroutine: panicking here would unwind with c.mu held and wedge the
// recover path. Parked processes are leaked; this path ends the
// simulation.
func (c *Clock) deadlockLocked() {
	if !c.hasPanic {
		c.hasPanic = true
		c.panicked = fmt.Errorf("vclock: deadlock: all processes blocked with no pending timer\n%s", c.diagnosticLocked())
	}
	select {
	case <-c.done:
	default:
		close(c.done)
	}
}

// diagnosticLocked renders the blocked-process census for deadlock
// panics.
func (c *Clock) diagnosticLocked() string {
	var b strings.Builder
	fmt.Fprintf(&b, "  virtual time: %v\n  processes alive: %d\n  blocked on:\n", c.now, c.total)
	reasons := make([]string, 0, len(c.blocked))
	for r := range c.blocked {
		reasons = append(reasons, r)
	}
	sort.Strings(reasons)
	for _, r := range reasons {
		fmt.Fprintf(&b, "    %-12s %d\n", r, c.blocked[r])
	}
	return b.String()
}

type timer struct {
	deadline time.Duration
	seq      uint64
	ch       chan struct{}
}

type timerHeap []*timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].deadline != h[j].deadline {
		return h[i].deadline < h[j].deadline
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x any)   { *h = append(*h, x.(*timer)) }
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}
