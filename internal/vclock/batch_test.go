package vclock

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// runOrder executes body under a fresh clock (legacy or batched
// dispatch) where each spawned process appends its marks to a shared
// log, and returns the log.
func runOrder(legacy bool, body func(c *Clock, log *[]string)) []string {
	c := New()
	c.SetLegacyDispatch(legacy)
	var log []string
	c.Run(func() { body(c, &log) })
	return log
}

// TestCoDeadlineBatchFIFOBySeq pins the batching invariant: when many
// timers share the earliest deadline, the whole batch is dispatched in
// arm (seq) order — exactly the order the one-timer-per-dispatch legacy
// engine produces.
func TestCoDeadlineBatchFIFOBySeq(t *testing.T) {
	body := func(c *Clock, log *[]string) {
		g := NewGroup(c)
		for i := 0; i < 8; i++ {
			i := i
			g.Go(fmt.Sprintf("p%d", i), func() {
				c.Sleep(10 * time.Millisecond) // all eight share one deadline
				*log = append(*log, fmt.Sprintf("p%d", i))
			})
		}
		g.Wait()
	}
	got := runOrder(false, body)
	want := runOrder(true, body)
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("batched wake order %v != legacy order %v", got, want)
	}
	for i, m := range got {
		if m != fmt.Sprintf("p%d", i) {
			t.Fatalf("wake order %v, want arm order p0..p7", got)
		}
	}
}

// TestBatchInterleavedWithReadyWakes covers the subtle half of the
// equivalence proof: a process woken from a co-deadline batch readies
// other processes (via an event) before the rest of the batch has run.
// Those readied processes must run before the remaining batch members —
// in legacy dispatch they become runnable before the next timer pops,
// and batched dispatch preserves that by draining the run queue before
// the wake queue.
func TestBatchInterleavedWithReadyWakes(t *testing.T) {
	body := func(c *Clock, log *[]string) {
		g := NewGroup(c)
		ev := NewEvent(c)
		for i := 0; i < 3; i++ {
			i := i
			g.Go(fmt.Sprintf("waiter%d", i), func() {
				ev.Wait()
				*log = append(*log, fmt.Sprintf("waiter%d", i))
			})
		}
		for i := 0; i < 4; i++ {
			i := i
			g.Go(fmt.Sprintf("sleeper%d", i), func() {
				c.Sleep(5 * time.Millisecond)
				if i == 0 {
					// First member of the batch readies all three
					// waiters mid-batch.
					ev.Set()
				}
				*log = append(*log, fmt.Sprintf("sleeper%d", i))
			})
		}
		g.Wait()
	}
	got := runOrder(false, body)
	want := runOrder(true, body)
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("batched order %v != legacy order %v", got, want)
	}
}

// TestBatchMixedQueueTraffic mixes co-deadline timer batches with queue
// handoffs — the sleeper-producer wakes a blocked consumer mid-batch —
// and requires the execution order to match the legacy engine exactly.
func TestBatchMixedQueueTraffic(t *testing.T) {
	body := func(c *Clock, log *[]string) {
		g := NewGroup(c)
		q := NewQueue[int](c)
		g.Go("consumer", func() {
			for {
				v, ok := q.Get()
				if !ok {
					return
				}
				*log = append(*log, fmt.Sprintf("got%d", v))
			}
		})
		for i := 0; i < 3; i++ {
			i := i
			g.Go(fmt.Sprintf("prod%d", i), func() {
				c.Sleep(3 * time.Millisecond)
				q.Put(i)
				*log = append(*log, fmt.Sprintf("put%d", i))
				c.Sleep(3 * time.Millisecond)
				*log = append(*log, fmt.Sprintf("done%d", i))
			})
		}
		g.Go("closer", func() {
			c.Sleep(20 * time.Millisecond)
			q.Close()
		})
		g.Wait()
	}
	got := runOrder(false, body)
	want := runOrder(true, body)
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("batched order %v != legacy order %v", got, want)
	}
}

// TestRingFIFOWraparound drives a Ring through repeated push/pop cycles
// that wrap the backing array without growing it.
func TestRingFIFOWraparound(t *testing.T) {
	var r Ring[int]
	next, expect := 0, 0
	// Fill to 6 of the initial 8 slots, then cycle 100 times: head and
	// tail lap the backing array repeatedly.
	for i := 0; i < 6; i++ {
		r.Push(next)
		next++
	}
	for i := 0; i < 100; i++ {
		v, ok := r.Pop()
		if !ok || v != expect {
			t.Fatalf("pop %d: got (%d,%v), want (%d,true)", i, v, ok, expect)
		}
		expect++
		r.Push(next)
		next++
	}
	if r.Len() != 6 {
		t.Fatalf("Len = %d after balanced cycling, want 6", r.Len())
	}
}

// TestRingGrowthPreservesOrder forces several capacity doublings from a
// deliberately wrapped state and checks strict FIFO across them.
func TestRingGrowthPreservesOrder(t *testing.T) {
	var r Ring[int]
	// Wrap the initial ring first so growth has to unwrap a split
	// [head..end)+[0..tail) layout.
	for i := 0; i < 5; i++ {
		r.Push(i)
	}
	for i := 0; i < 5; i++ {
		if v, ok := r.Pop(); !ok || v != i {
			t.Fatalf("warmup pop: got (%d,%v), want (%d,true)", v, ok, i)
		}
	}
	const n = 1000 // 8 -> 1024 capacity: seven doublings
	for i := 0; i < n; i++ {
		r.Push(i)
	}
	if r.Len() != n {
		t.Fatalf("Len = %d, want %d", r.Len(), n)
	}
	for i := 0; i < n; i++ {
		if v, ok := r.Pop(); !ok || v != i {
			t.Fatalf("pop: got (%d,%v), want (%d,true)", v, ok, i)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("Pop on empty ring returned ok")
	}
}

// TestDeadlockDiagnosticCensus pins the diagnostic's content after
// batching: the panic must render one "reason: count" row per blocked
// reason, including interned per-semaphore reasons, with the right
// counts.
func TestDeadlockDiagnosticCensus(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected deadlock panic")
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, "deadlock") {
			t.Fatalf("unexpected panic: %v", r)
		}
		census := map[string]int{}
		for _, line := range strings.Split(msg, "\n") {
			var label string
			var n int
			if _, err := fmt.Sscanf(strings.TrimSpace(line), "%s %d", &label, &n); err == nil {
				census[label] = n
			}
		}
		// The driver's Group.Wait parks on the group's done event, so
		// the event census includes it alongside the explicit waiter.
		want := map[string]int{"queue": 2, "event": 2, "sem:gate": 1}
		for label, n := range want {
			if census[label] != n {
				t.Errorf("census[%s] = %d, want %d (full diagnostic: %q)", label, census[label], n, msg)
			}
		}
	}()
	c := New()
	c.Run(func() {
		g := NewGroup(c)
		q := NewQueue[int](c)
		ev := NewEvent(c)
		sem := NewSemaphore(c, "gate", 1)
		g.Go("q1", func() { q.Get() })
		g.Go("q2", func() { q.Get() })
		g.Go("e1", func() { ev.Wait() })
		g.Go("s1", func() {
			sem.Acquire(1)
			sem.Acquire(1) // starves itself: nobody releases
		})
		g.Wait()
	})
}

// TestLegacyDispatchGuards pins the mode-switch contract: flipping
// dispatch modes after the clock has started must panic rather than
// silently mix engines.
func TestLegacyDispatchGuards(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected panic from SetLegacyDispatch after Run")
		}
	}()
	c := New()
	c.Run(func() {
		c.SetLegacyDispatch(true)
	})
}
