package vclock

// FIFO is a head-indexed first-in-first-out queue that recycles its
// backing array instead of re-slicing it away: Pop zeroes the popped
// slot and advances a head index, and the array is reused once the
// queue drains (or compacted in place when it fills while partially
// consumed). Push therefore allocates only on genuine capacity growth,
// which keeps steady-state producers/consumers — the scheduler run
// queue, stream inboxes, per-device work queues — allocation-free.
//
// A FIFO is not safe for concurrent use; callers provide their own
// locking (the vclock kernel uses it under Clock.mu).
type FIFO[T any] struct {
	buf  []T
	head int
}

// Len reports the number of queued items.
//
//gflink:hotpath
func (f *FIFO[T]) Len() int { return len(f.buf) - f.head }

// Push appends v at the tail.
//
//gflink:hotpath
func (f *FIFO[T]) Push(v T) {
	if f.head > 0 && len(f.buf) == cap(f.buf) {
		// Full but partially consumed: compact in place instead of
		// growing, so steady-state traffic reuses the array forever.
		var zero T
		n := copy(f.buf, f.buf[f.head:])
		for i := n; i < len(f.buf); i++ {
			f.buf[i] = zero
		}
		f.buf = f.buf[:n]
		f.head = 0
	}
	//gflink:allow-alloc amortized growth of the queue's backing array
	f.buf = append(f.buf, v)
}

// Pop removes and returns the head item; ok is false on an empty
// queue. The vacated slot is zeroed so popped values are not retained.
//
//gflink:hotpath
func (f *FIFO[T]) Pop() (v T, ok bool) {
	if f.head >= len(f.buf) {
		return v, false
	}
	var zero T
	v = f.buf[f.head]
	f.buf[f.head] = zero
	f.head++
	if f.head == len(f.buf) {
		f.head = 0
		f.buf = f.buf[:0]
	}
	return v, true
}

// Front returns the head item without removing it; ok is false on an
// empty queue.
//
//gflink:hotpath
func (f *FIFO[T]) Front() (v T, ok bool) {
	if f.head >= len(f.buf) {
		return v, false
	}
	return f.buf[f.head], true
}

// At returns the i'th queued item (0 is the head). It panics when i is
// out of range, matching slice indexing.
//
//gflink:hotpath
func (f *FIFO[T]) At(i int) T { return f.buf[f.head+i] }
