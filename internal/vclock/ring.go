package vclock

// Ring is a growable circular FIFO buffer. Unlike FIFO (which compacts
// its backing array in place when it fills while partially consumed),
// a Ring never copies at steady state: Push writes at (head+n) mod cap
// and Pop advances head, so a queue that stays non-empty forever still
// reuses the same backing array. The array is free-listed in the sense
// of invariant 10: it is allocated on genuine capacity growth only and
// recycled across every push/pop cycle thereafter. Capacity is kept a
// power of two so the wrap is a mask, not a division.
//
// The dispatcher's run queue and co-deadline wake batch are Rings; they
// carry sustained traffic for the whole simulation and must not copy or
// allocate per event.
//
// A Ring is not safe for concurrent use; callers provide their own
// locking (the vclock kernel uses it under Clock.mu).
type Ring[T any] struct {
	buf  []T
	head int
	n    int
}

// Len reports the number of queued items.
//
//gflink:hotpath
func (r *Ring[T]) Len() int { return r.n }

// Push appends v at the tail, growing the backing array only when full.
//
//gflink:hotpath
func (r *Ring[T]) Push(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

// Pop removes and returns the head item; ok is false on an empty ring.
// The vacated slot is zeroed so popped values are not retained.
//
//gflink:hotpath
func (r *Ring[T]) Pop() (v T, ok bool) {
	if r.n == 0 {
		return v, false
	}
	var zero T
	v = r.buf[r.head]
	r.buf[r.head] = zero
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return v, true
}

// grow doubles the capacity (minimum 8, always a power of two) and
// unrolls the circular contents to the front of the new array.
//
//gflink:hotpath
func (r *Ring[T]) grow() {
	newCap := 2 * len(r.buf)
	if newCap < 8 {
		newCap = 8
	}
	//gflink:allow-alloc amortized doubling of the ring's backing array
	buf := make([]T, newCap)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = buf
	r.head = 0
}
