package vclock

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestSleepAdvancesTime(t *testing.T) {
	c := New()
	var at time.Duration
	end := c.Run(func() {
		c.Sleep(3 * time.Second)
		at = c.Now()
	})
	if at != 3*time.Second {
		t.Errorf("Now after Sleep(3s) = %v, want 3s", at)
	}
	if end != 3*time.Second {
		t.Errorf("Run returned %v, want 3s", end)
	}
}

func TestZeroAndNegativeSleep(t *testing.T) {
	c := New()
	c.Run(func() {
		c.Sleep(0)
		c.Sleep(-time.Second)
		if c.Now() != 0 {
			t.Errorf("time advanced to %v after zero/negative sleeps", c.Now())
		}
	})
}

func TestParallelSleepsOverlap(t *testing.T) {
	c := New()
	end := c.Run(func() {
		g := NewGroup(c)
		for i := 0; i < 10; i++ {
			g.Go("sleeper", func() { c.Sleep(5 * time.Second) })
		}
		g.Wait()
	})
	if end != 5*time.Second {
		t.Errorf("10 parallel 5s sleeps took %v, want 5s", end)
	}
}

func TestSequentialSleepsAccumulate(t *testing.T) {
	c := New()
	end := c.Run(func() {
		for i := 0; i < 4; i++ {
			c.Sleep(250 * time.Millisecond)
		}
	})
	if end != time.Second {
		t.Errorf("4 sequential 250ms sleeps took %v, want 1s", end)
	}
}

func TestTimeMonotonicAcrossProcesses(t *testing.T) {
	c := New()
	var mu sync.Mutex
	var seen []time.Duration
	c.Run(func() {
		g := NewGroup(c)
		for i := 0; i < 8; i++ {
			d := time.Duration(i) * 100 * time.Millisecond
			g.Go("p", func() {
				c.Sleep(d)
				mu.Lock()
				seen = append(seen, c.Now())
				mu.Unlock()
			})
		}
		g.Wait()
	})
	if !sort.SliceIsSorted(seen, func(i, j int) bool { return seen[i] < seen[j] }) {
		t.Errorf("wakeup times not monotone: %v", seen)
	}
}

func TestQueueFIFO(t *testing.T) {
	c := New()
	var got []int
	c.Run(func() {
		q := NewQueue[int](c)
		for i := 0; i < 100; i++ {
			q.Put(i)
		}
		q.Close()
		for {
			v, ok := q.Get()
			if !ok {
				break
			}
			got = append(got, v)
		}
	})
	for i, v := range got {
		if v != i {
			t.Fatalf("queue order violated at %d: got %d", i, v)
		}
	}
	if len(got) != 100 {
		t.Fatalf("drained %d items, want 100", len(got))
	}
}

func TestQueueBlocksConsumerUntilPut(t *testing.T) {
	c := New()
	var consumedAt time.Duration
	c.Run(func() {
		q := NewQueue[string](c)
		g := NewGroup(c)
		g.Go("consumer", func() {
			v, ok := q.Get()
			if !ok || v != "x" {
				t.Errorf("Get = %q,%v", v, ok)
			}
			consumedAt = c.Now()
		})
		g.Go("producer", func() {
			c.Sleep(2 * time.Second)
			q.Put("x")
		})
		g.Wait()
	})
	if consumedAt != 2*time.Second {
		t.Errorf("consumed at %v, want 2s", consumedAt)
	}
}

func TestQueueCloseWakesWaiters(t *testing.T) {
	c := New()
	oks := make([]bool, 3)
	c.Run(func() {
		q := NewQueue[int](c)
		g := NewGroup(c)
		for i := 0; i < 3; i++ {
			g.Go("waiter", func() { _, oks[i] = q.Get() })
		}
		g.Go("closer", func() {
			c.Sleep(time.Second)
			q.Close()
		})
		g.Wait()
	})
	for i, ok := range oks {
		if ok {
			t.Errorf("waiter %d got ok=true from closed empty queue", i)
		}
	}
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	c := New()
	end := c.Run(func() {
		sem := NewSemaphore(c, "cpu", 2)
		g := NewGroup(c)
		for i := 0; i < 6; i++ {
			g.Go("task", func() {
				sem.Use(1, func() { c.Sleep(time.Second) })
			})
		}
		g.Wait()
	})
	// 6 one-second tasks on 2 slots => 3 seconds.
	if end != 3*time.Second {
		t.Errorf("makespan %v, want 3s", end)
	}
}

func TestSemaphoreFIFOOrder(t *testing.T) {
	c := New()
	var order []int
	c.Run(func() {
		sem := NewSemaphore(c, "r", 1)
		sem.Acquire(1)
		g := NewGroup(c)
		for i := 0; i < 5; i++ {
			i := i
			// Stagger arrivals so queue order is deterministic.
			g.Go("w", func() {
				c.Sleep(time.Duration(i+1) * time.Millisecond)
				sem.Acquire(1)
				order = append(order, i)
				sem.Release(1)
			})
		}
		c.Sleep(time.Second)
		sem.Release(1)
		g.Wait()
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
}

func TestSemaphoreMultiUnitAcquire(t *testing.T) {
	c := New()
	end := c.Run(func() {
		sem := NewSemaphore(c, "mem", 4)
		g := NewGroup(c)
		// One big task (4 units) then two small ones (2 each): the big one
		// runs alone, the small ones run together afterwards.
		g.Go("big", func() { sem.Use(4, func() { c.Sleep(time.Second) }) })
		g.Go("s1", func() {
			c.Sleep(time.Millisecond)
			sem.Use(2, func() { c.Sleep(time.Second) })
		})
		g.Go("s2", func() {
			c.Sleep(time.Millisecond)
			sem.Use(2, func() { c.Sleep(time.Second) })
		})
		g.Wait()
	})
	// Big runs [0,1s]; smalls arrive at 1ms, wait, then run [1s,2s]
	// concurrently.
	if end != 2*time.Second {
		t.Errorf("makespan %v, want 2s", end)
	}
}

func TestEventBroadcast(t *testing.T) {
	c := New()
	var wokeAt [4]time.Duration
	c.Run(func() {
		ev := NewEvent(c)
		g := NewGroup(c)
		for i := 0; i < 4; i++ {
			g.Go("w", func() {
				ev.Wait()
				wokeAt[i] = c.Now()
			})
		}
		g.Go("setter", func() {
			c.Sleep(7 * time.Second)
			ev.Set()
		})
		g.Wait()
		// Wait after Set returns immediately.
		ev.Wait()
	})
	for i, at := range wokeAt {
		if at != 7*time.Second {
			t.Errorf("waiter %d woke at %v, want 7s", i, at)
		}
	}
}

func TestGroupEmptyWait(t *testing.T) {
	c := New()
	c.Run(func() {
		g := NewGroup(c)
		g.Wait() // must not block
	})
}

func TestDeadlineFiresAndCancels(t *testing.T) {
	c := New()
	c.Run(func() {
		d1 := NewDeadline(c, time.Second)
		d2 := NewDeadline(c, time.Second)
		d2.Cancel()
		c.Sleep(2 * time.Second)
		if !d1.Fired() {
			t.Error("d1 did not fire")
		}
		if d2.Fired() {
			t.Error("cancelled d2 fired")
		}
	})
}

func TestDeadlockDetection(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected deadlock panic")
		}
		if !strings.Contains(fmt.Sprint(r), "deadlock") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	c := New()
	c.Run(func() {
		q := NewQueue[int](c)
		q.Get() // nobody will ever Put
	})
}

func TestProcessPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic from Run")
		}
		if !strings.Contains(fmt.Sprint(r), "boom") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	c := New()
	c.Run(func() { panic("boom") })
}

func TestAfterFunc(t *testing.T) {
	c := New()
	var at time.Duration
	c.Run(func() {
		done := NewEvent(c)
		c.AfterFunc("later", 42*time.Millisecond, func() {
			at = c.Now()
			done.Set()
		})
		done.Wait()
	})
	if at != 42*time.Millisecond {
		t.Errorf("AfterFunc ran at %v, want 42ms", at)
	}
}

// Property: for any set of task durations run on a k-slot semaphore, the
// makespan equals the deterministic list-scheduling makespan (tasks
// admitted in FIFO order).
func TestSemaphoreMakespanProperty(t *testing.T) {
	f := func(durs []uint16, width uint8) bool {
		k := int(width%4) + 1
		if len(durs) > 40 {
			durs = durs[:40]
		}
		c := New()
		end := c.Run(func() {
			sem := NewSemaphore(c, "k", int64(k))
			g := NewGroup(c)
			for i, d := range durs {
				d := time.Duration(d) * time.Millisecond
				// Stagger by i nanoseconds to make admission order
				// deterministic.
				i := i
				g.Go("t", func() {
					c.Sleep(time.Duration(i) * time.Nanosecond)
					sem.Use(1, func() { c.Sleep(d) })
				})
			}
			g.Wait()
		})
		// Reference: greedy earliest-available-slot schedule.
		slots := make([]time.Duration, k)
		for i, d := range durs {
			arrive := time.Duration(i) * time.Nanosecond
			// pick earliest-free slot
			best := 0
			for j := 1; j < k; j++ {
				if slots[j] < slots[best] {
					best = j
				}
			}
			start := slots[best]
			if arrive > start {
				start = arrive
			}
			slots[best] = start + time.Duration(d)*time.Millisecond
		}
		var want time.Duration
		for _, s := range slots {
			if s > want {
				want = s
			}
		}
		// Also account for tasks arriving after all slots drained.
		if n := len(durs); n > 0 {
			if last := time.Duration(n-1) * time.Nanosecond; last > want {
				want = last
			}
		}
		return end == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: a queue delivers exactly the multiset of values put, in put
// order, across an arbitrary interleaving of producers.
func TestQueueDeliveryProperty(t *testing.T) {
	f := func(vals []int32) bool {
		c := New()
		var got []int32
		c.Run(func() {
			q := NewQueue[int32](c)
			g := NewGroup(c)
			g.Go("producer", func() {
				for _, v := range vals {
					q.Put(v)
					c.Sleep(time.Microsecond)
				}
				q.Close()
			})
			g.Go("consumer", func() {
				for {
					v, ok := q.Get()
					if !ok {
						return
					}
					got = append(got, v)
				}
			})
			g.Wait()
		})
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Determinism: the same program yields the same final virtual time on
// repeated runs.
func TestDeterminism(t *testing.T) {
	run := func() time.Duration {
		c := New()
		return c.Run(func() {
			sem := NewSemaphore(c, "gpu", 2)
			q := NewQueue[int](c)
			g := NewGroup(c)
			for w := 0; w < 3; w++ {
				g.Go("worker", func() {
					for {
						v, ok := q.Get()
						if !ok {
							return
						}
						sem.Use(1, func() {
							c.Sleep(time.Duration(v) * time.Millisecond)
						})
					}
				})
			}
			for i := 1; i <= 20; i++ {
				q.Put(i * 7 % 13)
				c.Sleep(time.Millisecond)
			}
			q.Close()
			g.Wait()
		})
	}
	first := run()
	for i := 0; i < 5; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d gave %v, first gave %v", i, got, first)
		}
	}
}
