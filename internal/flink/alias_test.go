package flink

import "testing"

// The public read paths must not hand out aliases of a dataset's
// backing storage: a driver program that sorts or overwrites a
// collected result (or a Partition view) must never corrupt the
// partitions a later operator will read.
func TestCollectAndPartitionAreDefensiveCopies(t *testing.T) {
	c := testCluster(2)
	c.Clock.Run(func() {
		j := c.NewJob("alias")
		ds := Generate(j, "nums", 8, 8, 4, func(part int, ord int64) int64 {
			return int64(part)*100 + ord
		})

		want := Collect(ds)

		// Mutate everything a caller can reach.
		got := Collect(ds)
		for i := range got {
			got[i] = -1
		}
		for p := 0; p < ds.Partitions(); p++ {
			view := ds.Partition(p)
			for i := range view.Items {
				view.Items[i] = -2
			}
		}

		after := Collect(ds)
		if len(after) != len(want) {
			t.Fatalf("record count changed: %d -> %d", len(want), len(after))
		}
		for i := range after {
			if after[i] != want[i] {
				t.Fatalf("partition storage corrupted at %d: %d != %d (collect mutation=%d)",
					i, after[i], want[i], got[i])
			}
		}
	})
}
