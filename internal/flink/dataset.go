package flink

import (
	"fmt"
	"hash/fnv"
	"sort"

	"gflink/internal/costmodel"
	"gflink/internal/vclock"
)

// Partition is one distributed slice of a Dataset, pinned to a worker.
// Items holds the real (scaled-down) records; Nominal is the
// paper-scale record count the partition represents for cost purposes.
type Partition[T any] struct {
	Worker  int
	Items   []T
	Nominal int64
}

// Dataset mirrors Flink's DST: a collection of records partitioned over
// the cluster, manipulated through transformation operators. Called
// directly, the engine is eager — each operator deploys its tasks
// immediately — which keeps the simulation faithful to task-level
// costs. The deferred optimizer lives above it: package plan records
// operators as JobGraph nodes, chains narrow ones, places Either nodes
// on CPU or GPU, and only then drives these same eager operators.
type Dataset[T any] struct {
	job         *Job
	parts       []Partition[T]
	recordBytes int // approximate serialized record size
}

// AnyDataset is the type-erased view of a Dataset, enough for the plan
// layer's chaining pass to reason about record sizes and counts without
// knowing T.
type AnyDataset interface {
	Partitions() int
	RecordBytes() int
	NominalCount() int64
}

// Job returns the owning job.
func (d *Dataset[T]) Job() *Job { return d.job }

// Partitions returns the partition count.
func (d *Dataset[T]) Partitions() int { return len(d.parts) }

// Partition returns partition p. The Items slice is a defensive copy:
// callers may reorder or overwrite it without corrupting the dataset.
// Record contents of reference types are still shared — partitions hold
// live simulation state (e.g. GDST blocks), not serialized bytes.
func (d *Dataset[T]) Partition(p int) Partition[T] {
	part := d.parts[p]
	items := make([]T, len(part.Items))
	copy(items, part.Items)
	part.Items = items
	return part
}

// RecordBytes returns the per-record serialized size estimate.
func (d *Dataset[T]) RecordBytes() int { return d.recordBytes }

// NominalCount sums the nominal record counts of all partitions.
func (d *Dataset[T]) NominalCount() int64 {
	var n int64
	for _, p := range d.parts {
		n += p.Nominal
	}
	return n
}

// RealCount sums the real record counts.
func (d *Dataset[T]) RealCount() int64 {
	var n int64
	for _, p := range d.parts {
		n += int64(len(p.Items))
	}
	return n
}

// realDivisor returns the cluster's nominal-to-real scale.
func (j *Job) realDivisor() int64 { return j.cluster.Cfg.ScaleDivisor }

// FromPartitions wraps pre-built partitions as a Dataset.
func FromPartitions[T any](j *Job, recordBytes int, parts []Partition[T]) *Dataset[T] {
	return &Dataset[T]{job: j, parts: parts, recordBytes: recordBytes}
}

// Generate creates a Dataset of nominal records spread over parallelism
// partitions (round-robin across workers). gen produces the real
// records: it receives the partition index and the record's nominal
// ordinal, so generators stay deterministic under any scale divisor.
// Generation itself is free (input staging precedes the measured job).
func Generate[T any](j *Job, name string, nominal int64, recordBytes, parallelism int, gen func(part int, ordinal int64) T) *Dataset[T] {
	if parallelism <= 0 {
		parallelism = j.cluster.Parallelism()
	}
	div := j.realDivisor()
	parts := make([]Partition[T], parallelism)
	per := nominal / int64(parallelism)
	for p := range parts {
		nom := per
		if p == parallelism-1 {
			nom = nominal - per*int64(parallelism-1)
		}
		real := nom / div
		if real == 0 && nom > 0 {
			real = 1
		}
		items := make([]T, real)
		for i := int64(0); i < real; i++ {
			items[i] = gen(p, i*div)
		}
		parts[p] = Partition[T]{Worker: p % j.cluster.Cfg.Workers, Items: items, Nominal: nom}
	}
	return FromPartitions(j, recordBytes, parts)
}

// ReadHDFS creates a Dataset by reading the named file: one source task
// per split, charging disk (and network, when the split is not local)
// before materializing records with gen, exactly as a Flink HDFS input
// format would. recordBytes is the on-disk record size; the nominal
// record count of each partition is split bytes / recordBytes.
func ReadHDFS[T any](j *Job, file string, parallelism, recordBytes int, gen func(split int, ordinal int64) T) (*Dataset[T], error) {
	f, err := j.cluster.FS.Open(file)
	if err != nil {
		return nil, err
	}
	if parallelism <= 0 {
		parallelism = j.cluster.Parallelism()
	}
	splits := j.cluster.FS.Splits(f, parallelism)
	div := j.realDivisor()
	parts := make([]Partition[T], len(splits))
	// Prefer split-local workers, falling back to round-robin.
	workerOf := func(p int) int {
		if locals := splits[p].LocalNodes; len(locals) > 0 {
			return locals[p%len(locals)]
		}
		return p % j.cluster.Cfg.Workers
	}
	j.runTasks("source:"+file, len(splits), workerOf, func(p int, tm *TaskManager) {
		s := splits[p]
		j.cluster.FS.ReadSplit(tm.ID, s)
		nom := s.Length / int64(recordBytes)
		real := nom / div
		if real == 0 && nom > 0 {
			real = 1
		}
		items := make([]T, real)
		for i := int64(0); i < real; i++ {
			items[i] = gen(p, i*div)
		}
		parts[p] = Partition[T]{Worker: tm.ID, Items: items, Nominal: nom}
	})
	return FromPartitions(j, recordBytes, parts), nil
}

// scaleNominal rescales a nominal count by the observed real
// selectivity.
func scaleNominal(nominal, realIn, realOut int64) int64 {
	if realIn <= 0 {
		return 0
	}
	return nominal * realOut / realIn
}

// ScaleNominal is the exported selectivity rescaling rule, shared with
// the plan layer's fused chains so a fused filter shrinks nominal
// counts exactly as the eager operator would.
func ScaleNominal(nominal, realIn, realOut int64) int64 {
	return scaleNominal(nominal, realIn, realOut)
}

// ChargeCompute sleeps for the iterator-model execution time of a task
// processing nominal records with per-record demand perRec. Exposed for
// operators (such as GFlink's GPU producers) that account for their own
// costs through ProcessPartitions.
func (j *Job) ChargeCompute(nominal int64, perRec costmodel.Work) {
	j.cluster.Clock.Sleep(j.cluster.Cfg.Model.CPU.SlotTime(nominal, perRec.Scale(float64(nominal))))
}

// ChargeWork sleeps for the slot time of the batch demand w with no
// per-record iterator overhead. Fused operator chains use it: the chain
// head charges the record overhead once (records enter the fused task
// through one iterator), and each chained operator then charges only
// its compute and memory demand.
func (j *Job) ChargeWork(w costmodel.Work) {
	j.cluster.Clock.Sleep(j.cluster.Cfg.Model.CPU.SlotTime(0, w))
}

// ProcessPartitions deploys one task per partition that transforms the
// whole partition without the engine charging any per-record cost: the
// body accounts for its own resource use. body returns the output items
// and their nominal count. This is the extension hook GFlink's
// block-processing operators are built on — it bypasses the
// one-element-at-a-time iterator model (Section 3.1's execution-model
// mismatch).
func ProcessPartitions[T, U any](d *Dataset[T], name string, outBytes int, body func(p, worker int, in Partition[T]) ([]U, int64)) *Dataset[U] {
	out := make([]Partition[U], len(d.parts))
	d.job.runTasks(name, len(d.parts), d.workerOf, func(p int, tm *TaskManager) {
		in := d.parts[p]
		items, nominal := body(p, in.Worker, in)
		out[p] = Partition[U]{Worker: in.Worker, Items: items, Nominal: nominal}
	})
	return FromPartitions(d.job, outBytes, out)
}

// Map applies f to every record. perRec is the per-record resource
// demand of f; outBytes the serialized size of U records.
func Map[T, U any](d *Dataset[T], name string, perRec costmodel.Work, outBytes int, f func(T) U) *Dataset[U] {
	out := make([]Partition[U], len(d.parts))
	d.job.runTasks("map:"+name, len(d.parts), d.workerOf, func(p int, tm *TaskManager) {
		in := d.parts[p]
		d.job.ChargeCompute(in.Nominal, perRec)
		items := make([]U, len(in.Items))
		for i, v := range in.Items {
			items[i] = f(v)
		}
		out[p] = Partition[U]{Worker: in.Worker, Items: items, Nominal: in.Nominal}
	})
	return FromPartitions(d.job, outBytes, out)
}

// MapPartition applies f to each whole partition (Flink's mapPartition;
// this is the operator GFlink's block-processing model accelerates).
func MapPartition[T, U any](d *Dataset[T], name string, perRec costmodel.Work, outBytes int, f func(worker int, in []T) []U) *Dataset[U] {
	out := make([]Partition[U], len(d.parts))
	d.job.runTasks("mapPartition:"+name, len(d.parts), d.workerOf, func(p int, tm *TaskManager) {
		in := d.parts[p]
		d.job.ChargeCompute(in.Nominal, perRec)
		items := f(in.Worker, in.Items)
		out[p] = Partition[U]{Worker: in.Worker, Items: items, Nominal: scaleNominal(in.Nominal, int64(len(in.Items)), int64(len(items)))}
	})
	return FromPartitions(d.job, outBytes, out)
}

// Filter keeps records satisfying pred; nominal counts shrink by the
// observed selectivity.
func Filter[T any](d *Dataset[T], name string, perRec costmodel.Work, pred func(T) bool) *Dataset[T] {
	out := make([]Partition[T], len(d.parts))
	d.job.runTasks("filter:"+name, len(d.parts), d.workerOf, func(p int, tm *TaskManager) {
		in := d.parts[p]
		d.job.ChargeCompute(in.Nominal, perRec)
		var items []T
		for _, v := range in.Items {
			if pred(v) {
				items = append(items, v)
			}
		}
		out[p] = Partition[T]{Worker: in.Worker, Items: items, Nominal: scaleNominal(in.Nominal, int64(len(in.Items)), int64(len(items)))}
	})
	return FromPartitions(d.job, d.recordBytes, out)
}

// FlatMap expands each record into zero or more records.
func FlatMap[T, U any](d *Dataset[T], name string, perRec costmodel.Work, outBytes int, f func(T) []U) *Dataset[U] {
	out := make([]Partition[U], len(d.parts))
	d.job.runTasks("flatMap:"+name, len(d.parts), d.workerOf, func(p int, tm *TaskManager) {
		in := d.parts[p]
		d.job.ChargeCompute(in.Nominal, perRec)
		var items []U
		for _, v := range in.Items {
			items = append(items, f(v)...)
		}
		out[p] = Partition[U]{Worker: in.Worker, Items: items, Nominal: scaleNominal(in.Nominal, int64(len(in.Items)), int64(len(items)))}
	})
	return FromPartitions(d.job, outBytes, out)
}

func (d *Dataset[T]) workerOf(p int) int { return d.parts[p].Worker }

// hashKey maps any comparable key to a deterministic 64-bit hash.
func hashKey[K comparable](k K) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%v", k)
	return h.Sum64()
}

// sortKeys puts arbitrary comparable keys into a canonical order: by
// deterministic hash, ties broken by formatted representation. Group-by
// operators emit in this order so workload results are byte-stable
// across runs — insertion order would be deterministic too, but would
// change whenever an upstream operator reorders its output, and the
// reproduced figures hash entire result sets.
func sortKeys[K comparable](keys []K) {
	sort.Slice(keys, func(i, j int) bool {
		hi, hj := hashKey(keys[i]), hashKey(keys[j])
		if hi != hj {
			return hi < hj
		}
		return fmt.Sprint(keys[i]) < fmt.Sprint(keys[j])
	})
}

// shuffleCost charges sender-side serialization and performs the
// network exchange for a partition-to-partition byte matrix.
func shuffleExchange(j *Job, fromWorker []int, toWorker []int, bytes [][]int64) {
	g := vclock.NewGroup(j.cluster.Clock)
	for p := range bytes {
		for q := range bytes[p] {
			n := bytes[p][q]
			if n <= 0 {
				continue
			}
			src, dst := fromWorker[p], toWorker[q]
			g.Go(fmt.Sprintf("shuffle[%d->%d]", p, q), func() {
				j.cluster.Net.Transfer(src, dst, n)
			})
		}
	}
	g.Wait()
}

// ReduceByKey groups records by key and combines each group to a single
// record with the associative combiner. A map-side combine runs before
// the hash shuffle, as Flink's combinable reduce does, so shuffle
// volume is proportional to distinct keys.
func ReduceByKey[T any, K comparable](d *Dataset[T], name string, perRec costmodel.Work, key func(T) K, combine func(T, T) T) *Dataset[T] {
	nparts := len(d.parts)
	model := d.job.cluster.Cfg.Model

	// Phase 1: map-side combine and split by target partition.
	outbox := make([][][]T, nparts)       // [p][q]records
	outNominal := make([][]int64, nparts) // [p][q]
	d.job.runTasks("combine:"+name, nparts, d.workerOf, func(p int, tm *TaskManager) {
		in := d.parts[p]
		d.job.ChargeCompute(in.Nominal, perRec)
		groups := make(map[K]T)
		order := make([]K, 0)
		for _, v := range in.Items {
			k := key(v)
			if prev, ok := groups[k]; ok {
				groups[k] = combine(prev, v)
			} else {
				groups[k] = v
				order = append(order, k)
			}
		}
		sortKeys(order)
		byTarget := make([][]T, nparts)
		for _, k := range order {
			q := int(hashKey(k) % uint64(nparts))
			byTarget[q] = append(byTarget[q], groups[k])
		}
		outbox[p] = byTarget
		outNominal[p] = make([]int64, nparts)
		combinedNominal := scaleNominal(in.Nominal, int64(len(in.Items)), int64(len(order)))
		var sent int64
		for q, recs := range byTarget {
			nom := scaleNominal(combinedNominal, int64(len(order)), int64(len(recs)))
			outNominal[p][q] = nom
			sent += nom
		}
		// Sender-side serialization of everything leaving this node.
		d.job.cluster.Clock.Sleep(model.CPU.SerDe(sent * int64(d.recordBytes)))
	})

	// Phase 2: network exchange.
	from := make([]int, nparts)
	to := make([]int, nparts)
	bytes := make([][]int64, nparts)
	for p := range d.parts {
		from[p] = d.parts[p].Worker
		bytes[p] = make([]int64, nparts)
		for q := 0; q < nparts; q++ {
			to[q] = q % d.job.cluster.Cfg.Workers
			bytes[p][q] = outNominal[p][q] * int64(d.recordBytes)
		}
	}
	shuffleExchange(d.job, from, to, bytes)

	// Phase 3: reduce-side final combine.
	out := make([]Partition[T], nparts)
	d.job.runTasks("reduce:"+name, nparts, func(q int) int { return q % d.job.cluster.Cfg.Workers }, func(q int, tm *TaskManager) {
		var incoming []T
		var nominal int64
		for p := 0; p < nparts; p++ {
			incoming = append(incoming, outbox[p][q]...)
			nominal += outNominal[p][q]
		}
		d.job.cluster.Clock.Sleep(model.CPU.SerDe(nominal * int64(d.recordBytes)))
		d.job.ChargeCompute(nominal, perRec)
		groups := make(map[K]T)
		order := make([]K, 0)
		for _, v := range incoming {
			k := key(v)
			if prev, ok := groups[k]; ok {
				groups[k] = combine(prev, v)
			} else {
				groups[k] = v
				order = append(order, k)
			}
		}
		sortKeys(order)
		items := make([]T, 0, len(order))
		for _, k := range order {
			items = append(items, groups[k])
		}
		out[q] = Partition[T]{Worker: tm.ID, Items: items, Nominal: scaleNominal(nominal, int64(len(incoming)), int64(len(items)))}
	})
	return FromPartitions(d.job, d.recordBytes, out)
}

// GroupReduce groups by key and applies reduce to each whole group
// (non-combinable aggregation: the full groups cross the network).
func GroupReduce[T any, K comparable, U any](d *Dataset[T], name string, perRec costmodel.Work, outBytes int, key func(T) K, reduce func(K, []T) U) *Dataset[U] {
	nparts := len(d.parts)
	model := d.job.cluster.Cfg.Model

	outbox := make([][][]T, nparts)
	outNominal := make([][]int64, nparts)
	d.job.runTasks("partition:"+name, nparts, d.workerOf, func(p int, tm *TaskManager) {
		in := d.parts[p]
		byTarget := make([][]T, nparts)
		for _, v := range in.Items {
			q := int(hashKey(key(v)) % uint64(nparts))
			byTarget[q] = append(byTarget[q], v)
		}
		outbox[p] = byTarget
		outNominal[p] = make([]int64, nparts)
		for q, recs := range byTarget {
			outNominal[p][q] = scaleNominal(in.Nominal, int64(len(in.Items)), int64(len(recs)))
		}
		d.job.cluster.Clock.Sleep(model.CPU.SerDe(in.Nominal * int64(d.recordBytes)))
	})

	from := make([]int, nparts)
	to := make([]int, nparts)
	bytes := make([][]int64, nparts)
	for p := range d.parts {
		from[p] = d.parts[p].Worker
		bytes[p] = make([]int64, nparts)
		for q := 0; q < nparts; q++ {
			to[q] = q % d.job.cluster.Cfg.Workers
			bytes[p][q] = outNominal[p][q] * int64(d.recordBytes)
		}
	}
	shuffleExchange(d.job, from, to, bytes)

	out := make([]Partition[U], nparts)
	d.job.runTasks("groupReduce:"+name, nparts, func(q int) int { return q % d.job.cluster.Cfg.Workers }, func(q int, tm *TaskManager) {
		var incoming []T
		var nominal int64
		for p := 0; p < nparts; p++ {
			incoming = append(incoming, outbox[p][q]...)
			nominal += outNominal[p][q]
		}
		d.job.cluster.Clock.Sleep(model.CPU.SerDe(nominal * int64(d.recordBytes)))
		d.job.ChargeCompute(nominal, perRec)
		groups := make(map[K][]T)
		order := make([]K, 0)
		for _, v := range incoming {
			k := key(v)
			if _, ok := groups[k]; !ok {
				order = append(order, k)
			}
			groups[k] = append(groups[k], v)
		}
		sortKeys(order)
		items := make([]U, 0, len(order))
		for _, k := range order {
			items = append(items, reduce(k, groups[k]))
		}
		out[q] = Partition[U]{Worker: tm.ID, Items: items, Nominal: scaleNominal(nominal, int64(len(incoming)), int64(len(items)))}
	})
	return FromPartitions(d.job, outBytes, out)
}

// Collect gathers every record to the driver (via the master), charging
// serialization and the network hops, and returns them in partition
// order. The returned slice is freshly allocated — mutating it (or its
// order) never touches the source partitions.
func Collect[T any](d *Dataset[T]) []T {
	model := d.job.cluster.Cfg.Model
	g := vclock.NewGroup(d.job.cluster.Clock)
	for p := range d.parts {
		part := d.parts[p]
		g.Go(fmt.Sprintf("collect[%d]", p), func() {
			bytes := part.Nominal * int64(d.recordBytes)
			d.job.cluster.Clock.Sleep(model.CPU.SerDe(bytes))
			d.job.cluster.Net.Transfer(part.Worker, 0, bytes)
		})
	}
	g.Wait()
	var out []T
	for _, p := range d.parts {
		out = append(out, p.Items...)
	}
	return out
}

// Count returns the nominal record count, with a driver round trip.
func Count[T any](d *Dataset[T]) int64 {
	d.job.cluster.Clock.Sleep(d.job.cluster.Cfg.Model.Net.Latency * 2)
	return d.NominalCount()
}

// Broadcast charges the cost of shipping n bytes from the driver to
// every worker (used for broadcast variables such as KMeans centroids).
func (j *Job) Broadcast(n int64) {
	g := vclock.NewGroup(j.cluster.Clock)
	for w := 1; w < j.cluster.Cfg.Workers; w++ {
		w := w
		g.Go(fmt.Sprintf("broadcast[%d]", w), func() {
			j.cluster.Net.Transfer(0, w, n)
		})
	}
	g.Wait()
	j.cluster.Clock.Sleep(j.cluster.Cfg.Model.Net.Latency)
}

// AllGather charges redistributing a totalBytes value that is
// partitioned across the workers so every worker ends with the whole
// value (e.g., the SpMV vector between iterations): each worker ships
// its share to every peer, all links working in parallel.
func (j *Job) AllGather(totalBytes int64) {
	w := j.cluster.Cfg.Workers
	if w <= 1 || totalBytes <= 0 {
		return
	}
	share := totalBytes / int64(w)
	g := vclock.NewGroup(j.cluster.Clock)
	for src := 0; src < w; src++ {
		for dst := 0; dst < w; dst++ {
			if src == dst {
				continue
			}
			src, dst := src, dst
			g.Go(fmt.Sprintf("allgather[%d->%d]", src, dst), func() {
				j.cluster.Net.Transfer(src, dst, share)
			})
		}
	}
	g.Wait()
}

// ShuffleBytes charges an even all-to-all exchange of totalBytes (e.g.,
// a join's build-side redistribution) without moving any real data.
func (j *Job) ShuffleBytes(totalBytes int64) {
	w := j.cluster.Cfg.Workers
	if w <= 1 || totalBytes <= 0 {
		return
	}
	per := totalBytes / int64(w*w)
	if per <= 0 {
		per = 1
	}
	g := vclock.NewGroup(j.cluster.Clock)
	for src := 0; src < w; src++ {
		for dst := 0; dst < w; dst++ {
			if src == dst {
				continue
			}
			src, dst := src, dst
			g.Go(fmt.Sprintf("shufbytes[%d->%d]", src, dst), func() {
				j.cluster.Net.Transfer(src, dst, per)
			})
		}
	}
	g.Wait()
}

// Superstep charges the driver-side synchronization barrier between
// bulk iterations.
func (j *Job) Superstep() {
	j.cluster.Clock.Sleep(j.cluster.Cfg.Model.Overheads.SuperstepSync)
}

// Iterate runs body n times with a superstep barrier after each
// iteration, mirroring Flink's bulk iterations. body receives the
// iteration index and the loop dataset and returns the next one.
func Iterate[T any](d *Dataset[T], n int, body func(i int, in *Dataset[T]) *Dataset[T]) *Dataset[T] {
	cur := d
	for i := 0; i < n; i++ {
		cur = body(i, cur)
		cur.job.Superstep()
	}
	return cur
}

// WriteHDFS writes the dataset to the named file, one sink task per
// partition following the replication pipeline.
func WriteHDFS[T any](d *Dataset[T], file string) {
	d.job.runTasks("sink:"+file, len(d.parts), d.workerOf, func(p int, tm *TaskManager) {
		part := d.parts[p]
		bytes := part.Nominal * int64(d.recordBytes)
		d.job.cluster.Clock.Sleep(d.job.cluster.Cfg.Model.CPU.SerDe(bytes))
		d.job.cluster.FS.Write(tm.ID, file, bytes)
	})
}

// Rebalance redistributes partitions round-robin over workers (Flink's
// rebalance), paying the full network exchange.
func Rebalance[T any](d *Dataset[T]) *Dataset[T] {
	nparts := len(d.parts)
	out := make([]Partition[T], nparts)
	g := vclock.NewGroup(d.job.cluster.Clock)
	for p := range d.parts {
		p := p
		part := d.parts[p]
		target := p % d.job.cluster.Cfg.Workers
		g.Go(fmt.Sprintf("rebalance[%d]", p), func() {
			if part.Worker != target {
				d.job.cluster.Net.Transfer(part.Worker, target, part.Nominal*int64(d.recordBytes))
			}
			out[p] = Partition[T]{Worker: target, Items: part.Items, Nominal: part.Nominal}
		})
	}
	g.Wait()
	return FromPartitions(d.job, d.recordBytes, out)
}
