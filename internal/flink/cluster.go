// Package flink implements the baseline in-memory dataflow engine the
// paper extends: a master-slave cluster (JobManager + TaskManagers)
// executing DataSet programs on CPU task slots through the
// one-element-at-a-time iterator model, with hash shuffles over the
// simulated network, HDFS sources and sinks, bulk iterations, and task
// retry on failure.
//
// The engine executes programs for real (operators transform real Go
// values) while charging virtual time per the cost model: per-record
// iterator overhead, operator compute demand, serialization on shuffle
// paths, network and disk transfers, and the framework's fixed job and
// per-superstep overheads.
//
// GFlink (package core) layers GPUManagers on top of this cluster
// without modifying it, mirroring how the paper keeps compile-time and
// run-time compatibility with stock Flink.
package flink

import (
	"fmt"
	"sync"

	"gflink/internal/costmodel"
	"gflink/internal/hdfs"
	"gflink/internal/membuf"
	"gflink/internal/netsim"
	"gflink/internal/vclock"
)

// Config describes a simulated cluster.
type Config struct {
	// Workers is the number of slave nodes (TaskManagers).
	Workers int
	// SlotsPerWorker is the task-slot count per TaskManager; 0 means
	// one per CPU core, Flink's default.
	SlotsPerWorker int
	// Model carries all hardware cost constants.
	Model costmodel.Model
	// PageSize is the off-heap memory-segment size (block size for GPU
	// transfers); 0 means membuf.DefaultPageSize.
	PageSize int
	// OffHeapPages bounds each worker's off-heap pool; 0 = unbounded.
	OffHeapPages int
	// HDFS configures the colocated file system.
	HDFS hdfs.Config
	// ScaleDivisor is the nominal-to-real data divisor workload
	// generators apply: a dataset declared with N nominal records holds
	// N/ScaleDivisor real ones. It never changes simulated costs, only
	// how much real data correctness is validated on. 0 means 1.
	ScaleDivisor int64
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.SlotsPerWorker <= 0 {
		c.SlotsPerWorker = c.Model.CPU.Cores
	}
	if c.SlotsPerWorker <= 0 {
		c.SlotsPerWorker = 1
	}
	if c.PageSize <= 0 {
		c.PageSize = membuf.DefaultPageSize
	}
	if c.ScaleDivisor <= 0 {
		c.ScaleDivisor = 1
	}
	return c
}

// Cluster is one simulated deployment: a JobManager, one TaskManager
// per worker node, the network, and HDFS.
type Cluster struct {
	Clock *vclock.Clock
	Cfg   Config
	Net   *netsim.Network
	FS    *hdfs.FS

	JobManager   *JobManager
	TaskManagers []*TaskManager
}

// NewCluster builds a cluster on a fresh virtual clock.
func NewCluster(cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	clock := vclock.New()
	net := netsim.New(clock, cfg.Model.Net, cfg.Workers)
	fs := hdfs.New(clock, cfg.Model.Disk, net, cfg.HDFS)
	c := &Cluster{Clock: clock, Cfg: cfg, Net: net, FS: fs}
	c.JobManager = &JobManager{cluster: c}
	for i := 0; i < cfg.Workers; i++ {
		c.TaskManagers = append(c.TaskManagers, &TaskManager{
			ID:    i,
			slots: vclock.NewSemaphore(clock, fmt.Sprintf("tm%d-slots", i), int64(cfg.SlotsPerWorker)),
			Pool:  membuf.NewPool(clock, cfg.Model, membuf.Config{PageSize: cfg.PageSize, CapacityPages: cfg.OffHeapPages}),
		})
	}
	return c
}

// Parallelism returns the default job parallelism: total task slots.
func (c *Cluster) Parallelism() int {
	return c.Cfg.Workers * c.Cfg.SlotsPerWorker
}

// TaskManager is one worker node's execution agent: it owns the task
// slots and the off-heap memory pool. (GFlink's GPUManager attaches per
// TaskManager in package core.)
type TaskManager struct {
	ID    int
	slots *vclock.Semaphore
	Pool  *membuf.Pool
}

// Slots exposes the slot semaphore (used by tests and by the GFlink
// producer tasks).
func (tm *TaskManager) Slots() *vclock.Semaphore { return tm.slots }

// JobManager is the cluster coordinator: it admits jobs, deploys tasks
// and retries failed ones.
type JobManager struct {
	cluster *Cluster
	jobSeq  int
}

// Job is one running dataflow program. Obtain via Cluster.NewJob from
// inside a virtual-time process; the submission overhead is charged
// immediately.
type Job struct {
	ID      int
	Name    string
	cluster *Cluster

	// failures maps operator name to the number of task attempts that
	// should be failed (test hook for the retry path).
	failMu   sync.Mutex
	failures map[string]int
	retries  int
}

// NewJob submits a job: the driver program runs on the calling process.
// Submission and plan translation cost is charged here.
func (c *Cluster) NewJob(name string) *Job {
	c.JobManager.jobSeq++
	j := &Job{
		ID:       c.JobManager.jobSeq,
		Name:     name,
		cluster:  c,
		failures: make(map[string]int),
	}
	c.Clock.Sleep(c.Cfg.Model.Overheads.JobSubmit)
	return j
}

// InjectTaskFailures arranges for the next n task attempts of the named
// operator to fail; the JobManager transparently retries them
// (exercising the reliability path the paper cites as the reason to
// build on Flink).
func (j *Job) InjectTaskFailures(operator string, n int) {
	j.failMu.Lock()
	j.failures[operator] += n
	j.failMu.Unlock()
}

// Retries reports how many task attempts were retried so far.
func (j *Job) Retries() int {
	j.failMu.Lock()
	defer j.failMu.Unlock()
	return j.retries
}

// shouldFail consumes one injected failure for operator, if any.
func (j *Job) shouldFail(operator string) bool {
	j.failMu.Lock()
	defer j.failMu.Unlock()
	if j.failures[operator] > 0 {
		j.failures[operator]--
		j.retries++
		return true
	}
	return false
}

// runTasks deploys one task per partition of the operator and waits for
// all of them: the JobManager's scheduling loop. Each task runs on its
// partition's worker, holding one task slot. Failed attempts are
// retried on the same worker (Flink restarts from the consumed state;
// our eager model simply re-runs the task body).
// RunTasks exposes the scheduling loop to the plan layer: a fused
// operator chain deploys exactly one task per partition for the whole
// chain, so it needs the deploy-acquire-retry protocol without any
// eager operator wrapped around it.
func (j *Job) RunTasks(operator string, nparts int, workerOf func(p int) int, body func(p int, tm *TaskManager)) {
	j.runTasks(operator, nparts, workerOf, body)
}

func (j *Job) runTasks(operator string, nparts int, workerOf func(p int) int, body func(p int, tm *TaskManager)) {
	c := j.cluster
	g := vclock.NewGroup(c.Clock)
	for p := 0; p < nparts; p++ {
		p := p
		tm := c.TaskManagers[workerOf(p)%len(c.TaskManagers)]
		g.Go(fmt.Sprintf("%s[%d]", operator, p), func() {
			for {
				c.Clock.Sleep(c.Cfg.Model.Overheads.TaskDeploy)
				tm.slots.Acquire(1)
				failed := j.shouldFail(operator)
				if !failed {
					body(p, tm)
				}
				tm.slots.Release(1)
				if !failed {
					return
				}
			}
		})
	}
	g.Wait()
}
