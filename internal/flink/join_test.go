package flink

import (
	"sort"
	"testing"

	"gflink/internal/costmodel"
)

func TestJoinSemantics(t *testing.T) {
	c := testCluster(2)
	type user struct {
		ID   int
		Name string
	}
	type order struct {
		UserID int
		Amount int
	}
	type row struct {
		Name   string
		Amount int
	}
	c.Clock.Run(func() {
		j := c.NewJob("join")
		users := FromPartitions(j, 16, []Partition[user]{
			{Worker: 0, Items: []user{{1, "ann"}, {2, "bob"}}, Nominal: 2},
			{Worker: 1, Items: []user{{3, "cat"}}, Nominal: 1},
		})
		orders := FromPartitions(j, 12, []Partition[order]{
			{Worker: 0, Items: []order{{1, 10}, {3, 30}, {1, 11}}, Nominal: 3},
			{Worker: 1, Items: []order{{2, 20}, {9, 99}}, Nominal: 2},
		})
		joined := Join(users, orders, "userOrders", costmodel.Work{Flops: 10}, 24,
			func(u user) int { return u.ID },
			func(o order) int { return o.UserID },
			func(u user, o order) row { return row{Name: u.Name, Amount: o.Amount} })
		got := Collect(joined)
		sort.Slice(got, func(i, k int) bool {
			if got[i].Name != got[k].Name {
				return got[i].Name < got[k].Name
			}
			return got[i].Amount < got[k].Amount
		})
		want := []row{{"ann", 10}, {"ann", 11}, {"bob", 20}, {"cat", 30}}
		if len(got) != len(want) {
			t.Fatalf("join produced %d rows, want %d: %v", len(got), len(want), got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("row %d = %v, want %v", i, got[i], want[i])
			}
		}
	})
}

func TestJoinChargesShuffle(t *testing.T) {
	c := NewCluster(Config{Workers: 2, Model: costmodel.Default(), ScaleDivisor: 100})
	c.Clock.Run(func() {
		j := c.NewJob("joincost")
		a := Generate(j, "a", 100_000, 32, 4, func(p int, ord int64) int64 { return ord % 1000 })
		b := Generate(j, "b", 100_000, 32, 4, func(p int, ord int64) int64 { return ord % 1000 })
		Join(a, b, "selfish", costmodel.Work{}, 16,
			func(v int64) int64 { return v },
			func(v int64) int64 { return v },
			func(x, y int64) [2]int64 { return [2]int64{x, y} })
	})
	if _, bytes := c.Net.Stats(); bytes == 0 {
		t.Error("join moved no bytes over the network")
	}
}

func TestJoinAcrossJobsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("cross-job join did not panic")
		}
	}()
	c := testCluster(1)
	c.Clock.Run(func() {
		j1 := c.NewJob("one")
		j2 := c.NewJob("two")
		a := Generate(j1, "a", 10, 8, 1, func(int, int64) int64 { return 0 })
		b := Generate(j2, "b", 10, 8, 1, func(int, int64) int64 { return 0 })
		Join(a, b, "bad", costmodel.Work{}, 8,
			func(v int64) int64 { return v }, func(v int64) int64 { return v },
			func(x, y int64) int64 { return x + y })
	})
}

func TestCountByKey(t *testing.T) {
	c := testCluster(2)
	c.Clock.Run(func() {
		j := c.NewJob("cbk")
		ds := Generate(j, "n", 90, 8, 3, func(p int, ord int64) int64 { return ord % 3 })
		counts := CountByKey(ds, "mod3", func(v int64) int64 { return v })
		var total int64
		for _, kc := range counts {
			total += kc.Count
		}
		if total != ds.RealCount() {
			t.Errorf("counts sum to %d, want %d", total, ds.RealCount())
		}
		if len(counts) != 3 {
			t.Errorf("distinct keys = %d, want 3", len(counts))
		}
	})
}
