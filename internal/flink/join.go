package flink

import (
	"gflink/internal/costmodel"
)

// Join performs an equi-join of two datasets on keys extracted by
// keyA/keyB, producing merge(a, b) for every matching pair. Both sides
// are hash-partitioned across the cluster (a repartition join: each
// side's records travel to the partition owning their key), then each
// partition builds a hash table on the A side and probes it with the B
// side — Flink's REPARTITION_HASH strategy.
//
// perRec is charged per probed record; shuffle serialization and
// network costs are charged for both sides at nominal scale.
func Join[A, B any, K comparable, O any](
	a *Dataset[A], b *Dataset[B], name string,
	perRec costmodel.Work, outBytes int,
	keyA func(A) K, keyB func(B) K,
	merge func(A, B) O,
) *Dataset[O] {
	if a.job != b.job {
		panic("flink: Join across jobs")
	}
	j := a.job
	nparts := len(a.parts)
	if len(b.parts) > nparts {
		nparts = len(b.parts)
	}
	model := j.cluster.Cfg.Model

	// Phase 1: partition both sides by key hash.
	aBox, aNom := partitionByKey(a, name+":A", nparts, keyA)
	bBox, bNom := partitionByKey(b, name+":B", nparts, keyB)

	// Phase 2: network exchange for both sides.
	exchangeSide(j, a, nparts, aNom)
	exchangeSide(j, b, nparts, bNom)

	// Phase 3: build-and-probe per target partition.
	out := make([]Partition[O], nparts)
	j.runTasks("join:"+name, nparts, func(q int) int { return q % j.cluster.Cfg.Workers }, func(q int, tm *TaskManager) {
		var incomingA []A
		var incomingB []B
		var nomA, nomB int64
		for p := 0; p < len(aBox); p++ {
			incomingA = append(incomingA, aBox[p][q]...)
			nomA += aNom[p][q]
		}
		for p := 0; p < len(bBox); p++ {
			incomingB = append(incomingB, bBox[p][q]...)
			nomB += bNom[p][q]
		}
		j.cluster.Clock.Sleep(model.CPU.SerDe(nomA*int64(a.recordBytes) + nomB*int64(b.recordBytes)))
		j.ChargeCompute(nomA+nomB, perRec)
		table := make(map[K][]A)
		for _, v := range incomingA {
			k := keyA(v)
			table[k] = append(table[k], v)
		}
		var items []O
		for _, v := range incomingB {
			for _, av := range table[keyB(v)] {
				items = append(items, merge(av, v))
			}
		}
		realIn := int64(len(incomingA) + len(incomingB))
		out[q] = Partition[O]{Worker: tm.ID, Items: items, Nominal: scaleNominal(nomA+nomB, realIn, int64(len(items)))}
	})
	return FromPartitions(j, outBytes, out)
}

// partitionByKey splits every partition's records by target hash
// bucket, returning the record matrix and per-(src,dst) nominal counts.
func partitionByKey[T any, K comparable](d *Dataset[T], op string, nparts int, key func(T) K) ([][][]T, [][]int64) {
	box := make([][][]T, len(d.parts))
	nom := make([][]int64, len(d.parts))
	model := d.job.cluster.Cfg.Model
	d.job.runTasks("partition:"+op, len(d.parts), d.workerOf, func(p int, tm *TaskManager) {
		in := d.parts[p]
		byTarget := make([][]T, nparts)
		for _, v := range in.Items {
			q := int(hashKey(key(v)) % uint64(nparts))
			byTarget[q] = append(byTarget[q], v)
		}
		box[p] = byTarget
		nom[p] = make([]int64, nparts)
		for q, recs := range byTarget {
			nom[p][q] = scaleNominal(in.Nominal, int64(len(in.Items)), int64(len(recs)))
		}
		d.job.cluster.Clock.Sleep(model.CPU.SerDe(in.Nominal * int64(d.recordBytes)))
	})
	return box, nom
}

// exchangeSide runs the network transfers of one join side.
func exchangeSide[T any](j *Job, d *Dataset[T], nparts int, nom [][]int64) {
	from := make([]int, len(d.parts))
	to := make([]int, nparts)
	bytes := make([][]int64, len(d.parts))
	for p := range d.parts {
		from[p] = d.parts[p].Worker
		bytes[p] = make([]int64, nparts)
		for q := 0; q < nparts; q++ {
			to[q] = q % j.cluster.Cfg.Workers
			bytes[p][q] = nom[p][q] * int64(d.recordBytes)
		}
	}
	shuffleExchange(j, from, to, bytes)
}

// KeyCount is one result record of CountByKey.
type KeyCount[K comparable] struct {
	Key   K
	Count int64
}

// CountByKey returns the number of records per key, gathered at the
// driver (a convenience built on ReduceByKey). Results come back in
// canonical key order — returning a map here would push a
// nondeterministic iteration onto every caller.
func CountByKey[T any, K comparable](d *Dataset[T], name string, key func(T) K) []KeyCount[K] {
	type kc struct {
		K K
		N int64
	}
	pairs := Map(d, name+":pair", costmodel.Work{}, d.recordBytes+8, func(v T) kc { return kc{K: key(v), N: 1} })
	reduced := ReduceByKey(pairs, name+":count", costmodel.Work{Flops: 1},
		func(p kc) K { return p.K },
		func(x, y kc) kc { return kc{K: x.K, N: x.N + y.N} })
	collected := Collect(reduced)
	keys := make([]K, len(collected))
	byKey := make(map[K]int64, len(collected))
	for i, p := range collected {
		keys[i] = p.K
		byKey[p.K] += p.N
	}
	sortKeys(keys)
	out := make([]KeyCount[K], 0, len(keys))
	for i, k := range keys {
		if i > 0 && keys[i-1] == k {
			continue // duplicate key (counts already merged above)
		}
		out = append(out, KeyCount[K]{Key: k, Count: byKey[k]})
	}
	return out
}
