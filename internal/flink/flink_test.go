package flink

import (
	"testing"
	"time"

	"gflink/internal/costmodel"
)

func testCluster(workers int) *Cluster {
	return NewCluster(Config{
		Workers: workers,
		Model:   costmodel.Default(),
	})
}

func TestClusterDefaults(t *testing.T) {
	c := testCluster(3)
	if c.Cfg.SlotsPerWorker != 4 {
		t.Errorf("slots per worker = %d, want 4 (CPU cores)", c.Cfg.SlotsPerWorker)
	}
	if c.Parallelism() != 12 {
		t.Errorf("parallelism = %d, want 12", c.Parallelism())
	}
	if len(c.TaskManagers) != 3 {
		t.Errorf("task managers = %d", len(c.TaskManagers))
	}
}

func TestJobSubmitCharged(t *testing.T) {
	c := testCluster(1)
	end := c.Clock.Run(func() {
		c.NewJob("noop")
	})
	if end != c.Cfg.Model.Overheads.JobSubmit {
		t.Errorf("submission cost %v, want %v", end, c.Cfg.Model.Overheads.JobSubmit)
	}
}

func TestGenerateDistribution(t *testing.T) {
	c := NewCluster(Config{Workers: 2, Model: costmodel.Default(), ScaleDivisor: 10})
	c.Clock.Run(func() {
		j := c.NewJob("gen")
		ds := Generate(j, "nums", 1000, 8, 4, func(p int, ord int64) int64 { return ord })
		if ds.Partitions() != 4 {
			t.Fatalf("partitions = %d", ds.Partitions())
		}
		if ds.NominalCount() != 1000 {
			t.Errorf("nominal = %d", ds.NominalCount())
		}
		if ds.RealCount() != 100 {
			t.Errorf("real = %d, want 100 (scale 10)", ds.RealCount())
		}
		// Partitions alternate workers.
		if ds.Partition(0).Worker != 0 || ds.Partition(1).Worker != 1 || ds.Partition(2).Worker != 0 {
			t.Error("round-robin worker assignment broken")
		}
	})
}

func TestMapTransformsAndCharges(t *testing.T) {
	c := testCluster(1)
	perRec := costmodel.Work{Flops: 100}
	var elapsed time.Duration
	c.Clock.Run(func() {
		j := c.NewJob("map")
		ds := Generate(j, "nums", 400, 8, 4, func(p int, ord int64) int64 { return ord })
		t0 := c.Clock.Now()
		out := Map(ds, "double", perRec, 8, func(v int64) int64 { return v * 2 })
		elapsed = c.Clock.Now() - t0
		for p := 0; p < out.Partitions(); p++ {
			in, o := ds.Partition(p), out.Partition(p)
			for i := range in.Items {
				if o.Items[i] != in.Items[i]*2 {
					t.Fatalf("map result wrong at %d/%d", p, i)
				}
			}
		}
	})
	// 4 tasks of 100 nominal records on 4 slots, all parallel:
	// deploy + slot time.
	want := c.Cfg.Model.Overheads.TaskDeploy + c.Cfg.Model.CPU.SlotTime(100, perRec.Scale(100))
	if elapsed != want {
		t.Errorf("map wave took %v, want %v", elapsed, want)
	}
}

func TestSlotContentionSerializesTasks(t *testing.T) {
	// 8 partitions on a 1-worker (4 slots) cluster: two waves.
	c := testCluster(1)
	perRec := costmodel.Work{Flops: 1.2e5} // 100us per 1000 records... per record 1.2e5 flops
	var elapsed time.Duration
	c.Clock.Run(func() {
		j := c.NewJob("waves")
		ds := Generate(j, "n", 8000, 8, 8, func(p int, ord int64) int64 { return ord })
		t0 := c.Clock.Now()
		Map(ds, "busy", perRec, 8, func(v int64) int64 { return v })
		elapsed = c.Clock.Now() - t0
	})
	one := c.Cfg.Model.CPU.SlotTime(1000, perRec.Scale(1000))
	if elapsed < 2*one {
		t.Errorf("8 tasks on 4 slots took %v, want >= %v (two waves)", elapsed, 2*one)
	}
	if elapsed > 3*one {
		t.Errorf("8 tasks on 4 slots took %v, too slow vs wave time %v", elapsed, one)
	}
}

func TestFilterAdjustsNominal(t *testing.T) {
	c := testCluster(1)
	c.Clock.Run(func() {
		j := c.NewJob("filter")
		ds := Generate(j, "n", 1000, 8, 2, func(p int, ord int64) int64 { return ord })
		out := Filter(ds, "even", costmodel.Work{}, func(v int64) bool { return v%2 == 0 })
		if got := out.NominalCount(); got != 500 {
			t.Errorf("filtered nominal = %d, want 500", got)
		}
	})
}

func TestFlatMapExpands(t *testing.T) {
	c := testCluster(1)
	c.Clock.Run(func() {
		j := c.NewJob("fm")
		ds := Generate(j, "n", 100, 8, 2, func(p int, ord int64) int64 { return ord })
		out := FlatMap(ds, "triple", costmodel.Work{}, 8, func(v int64) []int64 { return []int64{v, v, v} })
		if out.RealCount() != 3*ds.RealCount() {
			t.Errorf("flatmap real = %d, want %d", out.RealCount(), 3*ds.RealCount())
		}
		if out.NominalCount() != 300 {
			t.Errorf("flatmap nominal = %d, want 300", out.NominalCount())
		}
	})
}

func TestReduceByKeyWordCountSemantics(t *testing.T) {
	c := testCluster(2)
	words := []string{"a", "b", "a", "c", "b", "a"}
	type wc struct {
		Word  string
		Count int64
	}
	c.Clock.Run(func() {
		j := c.NewJob("wc")
		ds := Generate(j, "words", int64(len(words)), 16, 3, func(p int, ord int64) wc {
			return wc{Word: words[(int64(p)*2+ord)%int64(len(words))], Count: 1}
		})
		// Deterministic known input instead: build explicit partitions.
		parts := []Partition[wc]{
			{Worker: 0, Items: []wc{{"a", 1}, {"b", 1}}, Nominal: 2},
			{Worker: 1, Items: []wc{{"a", 1}, {"c", 1}}, Nominal: 2},
			{Worker: 0, Items: []wc{{"b", 1}, {"a", 1}}, Nominal: 2},
		}
		ds = FromPartitions(j, 16, parts)
		out := ReduceByKey(ds, "count", costmodel.Work{},
			func(v wc) string { return v.Word },
			func(a, b wc) wc { return wc{Word: a.Word, Count: a.Count + b.Count} })
		got := map[string]int64{}
		for _, v := range Collect(out) {
			got[v.Word] += v.Count
		}
		want := map[string]int64{"a": 3, "b": 2, "c": 1}
		for k, n := range want {
			if got[k] != n {
				t.Errorf("count[%s] = %d, want %d", k, got[k], n)
			}
		}
		if len(got) != len(want) {
			t.Errorf("got %d distinct words, want %d", len(got), len(want))
		}
	})
}

func TestGroupReduce(t *testing.T) {
	c := testCluster(2)
	c.Clock.Run(func() {
		j := c.NewJob("gr")
		ds := Generate(j, "n", 100, 8, 4, func(p int, ord int64) int64 { return ord })
		// Group by value % 3 and count group sizes.
		out := GroupReduce(ds, "mod3", costmodel.Work{}, 16,
			func(v int64) int64 { return v % 3 },
			func(k int64, vs []int64) [2]int64 { return [2]int64{k, int64(len(vs))} })
		var total int64
		for _, g := range Collect(out) {
			total += g[1]
		}
		if total != ds.RealCount() {
			t.Errorf("group sizes sum to %d, want %d", total, ds.RealCount())
		}
	})
}

func TestShuffleCostsTime(t *testing.T) {
	// A reduce over many distinct keys on a 2-worker cluster must spend
	// network time; the same reduce with everything on one worker and
	// one partition must not.
	c := NewCluster(Config{Workers: 2, Model: costmodel.Default(), ScaleDivisor: 1000})
	var withNet time.Duration
	c.Clock.Run(func() {
		j := c.NewJob("shuffle")
		ds := Generate(j, "n", 1_000_000, 64, 4, func(p int, ord int64) int64 { return ord })
		t0 := c.Clock.Now()
		ReduceByKey(ds, "ident", costmodel.Work{}, func(v int64) int64 { return v }, func(a, b int64) int64 { return a })
		withNet = c.Clock.Now() - t0
	})
	tr, by := c.Net.Stats()
	if tr == 0 || by == 0 {
		t.Fatalf("shuffle moved no bytes (transfers=%d bytes=%d)", tr, by)
	}
	if withNet < c.Cfg.Model.Net.TransferTime(by/4) {
		t.Errorf("shuffle time %v implausibly small for %d bytes", withNet, by)
	}
}

func TestCollectGathersInOrder(t *testing.T) {
	c := testCluster(2)
	c.Clock.Run(func() {
		j := c.NewJob("collect")
		ds := Generate(j, "n", 40, 8, 4, func(p int, ord int64) int64 { return int64(p)*1000 + ord })
		got := Collect(ds)
		if len(got) != int(ds.RealCount()) {
			t.Fatalf("collected %d items", len(got))
		}
		idx := 0
		for p := 0; p < ds.Partitions(); p++ {
			for _, v := range ds.Partition(p).Items {
				if got[idx] != v {
					t.Fatalf("order mismatch at %d", idx)
				}
				idx++
			}
		}
	})
}

func TestIterateRunsBodyAndCharges(t *testing.T) {
	c := testCluster(1)
	var iterations int
	end := c.Clock.Run(func() {
		j := c.NewJob("iter")
		ds := Generate(j, "n", 10, 8, 1, func(p int, ord int64) int64 { return ord })
		Iterate(ds, 5, func(i int, in *Dataset[int64]) *Dataset[int64] {
			iterations++
			return in
		})
	})
	if iterations != 5 {
		t.Errorf("body ran %d times", iterations)
	}
	want := c.Cfg.Model.Overheads.JobSubmit + 5*c.Cfg.Model.Overheads.SuperstepSync
	if end != want {
		t.Errorf("iterate cost %v, want %v", end, want)
	}
}

func TestHDFSRoundTrip(t *testing.T) {
	c := testCluster(2)
	c.Clock.Run(func() {
		c.FS.Create("in", 64<<20)
		j := c.NewJob("io")
		ds, err := ReadHDFS(j, "in", 4, 64, func(split int, ord int64) int64 { return ord })
		if err != nil {
			t.Fatal(err)
		}
		if ds.NominalCount() != (64<<20)/64 {
			t.Errorf("nominal records = %d", ds.NominalCount())
		}
		WriteHDFS(ds, "out")
		f, err := c.FS.Open("out")
		if err != nil {
			t.Fatal(err)
		}
		if f.Size != ds.NominalCount()*64 {
			t.Errorf("output size = %d", f.Size)
		}
	})
	if _, err := c.Clock, error(nil); err != nil {
		t.Fatal(err)
	}
}

func TestReadHDFSMissingFile(t *testing.T) {
	c := testCluster(1)
	c.Clock.Run(func() {
		j := c.NewJob("io")
		if _, err := ReadHDFS(j, "nope", 1, 8, func(int, int64) int64 { return 0 }); err == nil {
			t.Error("reading a missing file succeeded")
		}
	})
}

func TestTaskFailureRetry(t *testing.T) {
	c := testCluster(1)
	c.Clock.Run(func() {
		j := c.NewJob("flaky")
		j.InjectTaskFailures("map:x", 2)
		ds := Generate(j, "n", 100, 8, 4, func(p int, ord int64) int64 { return ord })
		out := Map(ds, "x", costmodel.Work{}, 8, func(v int64) int64 { return v + 1 })
		// Despite two failed attempts the result is complete and correct.
		if out.RealCount() != ds.RealCount() {
			t.Errorf("lost records after retry: %d vs %d", out.RealCount(), ds.RealCount())
		}
		if j.Retries() != 2 {
			t.Errorf("retries = %d, want 2", j.Retries())
		}
	})
}

func TestMoreWorkersFinishFaster(t *testing.T) {
	run := func(workers int) time.Duration {
		c := NewCluster(Config{Workers: workers, Model: costmodel.Default(), ScaleDivisor: 100_000})
		perRec := costmodel.Work{Flops: 1e4}
		var elapsed time.Duration
		c.Clock.Run(func() {
			j := c.NewJob("scale")
			ds := Generate(j, "n", 40_000_000, 8, workers*4, func(p int, ord int64) int64 { return ord })
			t0 := c.Clock.Now()
			Map(ds, "work", perRec, 8, func(v int64) int64 { return v })
			elapsed = c.Clock.Now() - t0
		})
		return elapsed
	}
	t1, t4 := run(1), run(4)
	ratio := float64(t1) / float64(t4)
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("1->4 worker speedup = %.2f, want ~4 (t1=%v t4=%v)", ratio, t1, t4)
	}
}

func TestBroadcastAndRebalance(t *testing.T) {
	c := testCluster(3)
	c.Clock.Run(func() {
		j := c.NewJob("misc")
		j.Broadcast(1 << 20)
		ds := FromPartitions(j, 8, []Partition[int64]{
			{Worker: 0, Items: []int64{1, 2}, Nominal: 2},
			{Worker: 0, Items: []int64{3}, Nominal: 1},
			{Worker: 0, Items: []int64{4}, Nominal: 1},
		})
		out := Rebalance(ds)
		workers := map[int]bool{}
		for p := 0; p < out.Partitions(); p++ {
			workers[out.Partition(p).Worker] = true
		}
		if len(workers) != 3 {
			t.Errorf("rebalance spread over %d workers, want 3", len(workers))
		}
		if Count(out) != 4 {
			t.Errorf("count = %d", Count(out))
		}
	})
	if _, by := c.Net.Stats(); by == 0 {
		t.Error("broadcast/rebalance moved no bytes")
	}
}

func TestDeterministicEndToEnd(t *testing.T) {
	run := func() time.Duration {
		c := NewCluster(Config{Workers: 2, Model: costmodel.Default(), ScaleDivisor: 100})
		return c.Clock.Run(func() {
			j := c.NewJob("det")
			ds := Generate(j, "n", 100000, 16, 8, func(p int, ord int64) int64 { return ord % 97 })
			out := ReduceByKey(ds, "mod", costmodel.Work{Flops: 50}, func(v int64) int64 { return v }, func(a, b int64) int64 { return a + b })
			Collect(out)
		})
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("nondeterministic job time: %v vs %v", a, b)
	}
}
