package core

import (
	"fmt"
	"time"

	"gflink/internal/costmodel"
	"gflink/internal/gpu"
	"gflink/internal/obs"
	"gflink/internal/vclock"
)

// This file implements chunked double-buffered GWork pipelining: when
// the stream manager has chunking enabled, a GWork's three stages are
// split into C cost-model-chosen chunks spread over two CUDA streams of
// the same worker, so the H2D transfer of chunk i+1 overlaps the kernel
// of chunk i (and, with two copy engines, D2H overlaps both). Chunk
// ordering is enforced by each chunk waiting on the previous chunk's
// kernel completion event.
//
// Correctness rule: all *real* data movement stays whole. Chunk 0's
// H2D ops carry the full real copy (and the full projected ranges) and
// run the kernel function for real over the complete buffers; the last
// chunk's D2H carries the completed result back. Every other chunk op
// is a pure timing shadow charging its nominal share. Enabling chunking
// therefore never changes a workload's output, only its simulated
// timings (DESIGN.md invariant 9).

// chunkCount resolves the chunk count for w on this worker: 1 unless
// chunking is enabled and either the work forces a count (Chunks > 1)
// or the cost model favours splitting, weighing the work's declared
// KernelWork against the H2D volume this execution would actually ship
// (cache-resident inputs cost nothing).
func (sw *streamWorker) chunkCount(w *GWork) int {
	if !sw.mgr.chunking || sw.alt == nil {
		return 1
	}
	if w.Chunks == 1 {
		return 1
	}
	if w.Chunks > 1 {
		return w.Chunks
	}
	if (w.KernelWork == costmodel.Work{}) {
		return 1
	}
	var h2d int64
	for _, in := range w.In {
		if in.Cache && sw.ds.mem.CachedBytes([]CacheKey{in.Key}) > 0 {
			continue
		}
		h2d += in.Nominal
	}
	coalesce := w.Coalesce
	if coalesce <= 0 {
		coalesce = 1
	}
	return sw.mgr.wrapper.model.ChunkCount(sw.ds.dev.Profile, w.KernelWork, coalesce, h2d, w.OutNominal)
}

// nominalShare splits n into chunks equal parts with the remainder on
// chunk 0, so the charged total is exactly n.
func nominalShare(n int64, chunks, k int) int64 {
	base := n / int64(chunks)
	if k == 0 {
		return n - int64(chunks-1)*base
	}
	return base
}

// execChunked runs one GWork through the chunked double-buffered
// pipeline. Setup (admission, cache lookups, allocation, pinning) and
// teardown (cache insertion, frees) are identical to the monolithic
// path; only the transfer/kernel middle differs.
//
//gflink:gated chunking -- reachable only when chunked pipelining is enabled; outputpurity holds it to shadow/boundary copies
func (sw *streamWorker) execChunked(w *GWork, chunks int) {
	mgr := sw.mgr
	dev := sw.ds.dev
	mem := sw.ds.mem
	wr := mgr.wrapper
	pcie := wr.model.PCIe

	footprint := w.OutNominal
	for _, in := range w.In {
		footprint += in.Nominal
	}
	if footprint > sw.ds.budgetCap {
		footprint = sw.ds.budgetCap
	}
	if footprint > 0 {
		sw.ds.budget.Acquire(footprint)
		defer sw.ds.budget.Release(footprint)
	}

	var (
		devBufs  = make([]*gpu.Buffer, len(w.In))
		acquired []CacheKey
		toCache  []int
		toFree   []*gpu.Buffer
		dmas     []int // indices of w.In that need a transfer

		tStart                 time.Duration
		cacheHits, cacheMisses int
	)
	malloc := func(nominal int64, real int) (*gpu.Buffer, error) {
		b, err := wr.Malloc(dev, nominal, real)
		if err != nil {
			mem.Reclaim(nominal)
			b, err = wr.Malloc(dev, nominal, real)
		}
		return b, err
	}
	fail := func(err error) {
		for _, k := range acquired {
			mem.Release(k)
		}
		for _, b := range toFree {
			wr.Free(dev, b)
		}
		w.err = err
		w.device = dev
		w.report = obs.WorkReport{
			DeviceID: dev.ID, Worker: dev.Node,
			QueueWait:   tStart - w.submitT,
			CacheHits:   cacheHits,
			CacheMisses: cacheMisses,
			StolenFrom:  w.stolenFrom,
		}
		// Mirror the monolithic fail path: a failed work still queued
		// and still occupied the stream, so the trace records the queue
		// wait and a failed gwork span instead of a hole.
		mgr.tracer.Record(sw.ds.queueTrack, "queue", "queue:"+w.ExecuteName,
			w.submitT, tStart, obs.Int("device", int64(dev.ID)))
		mgr.tracer.Record(sw.track, "gwork", w.ExecuteName,
			tStart, mgr.clock.Now(),
			obs.Int("device", int64(dev.ID)),
			obs.Int("job", int64(w.JobID)),
			obs.Str("error", err.Error()))
		w.done.Set()
	}

	tStart = mgr.clock.Now()
	// Setup: serve cache hits and allocate device buffers up front;
	// transfers are enqueued chunk by chunk below.
	for i, in := range w.In {
		if in.Cache {
			if buf, ok := mem.Acquire(in.Key); ok {
				devBufs[i] = buf
				acquired = append(acquired, in.Key)
				cacheHits++
				continue
			}
			cacheMisses++
		}
		buf, err := malloc(in.Nominal, len(in.Buf.Bytes()))
		if err != nil {
			fail(fmt.Errorf("allocating input %d of %q: %w", i, w.ExecuteName, err))
			return
		}
		devBufs[i] = buf
		if in.Cache {
			toCache = append(toCache, i)
		} else {
			toFree = append(toFree, buf)
		}
		wr.HostRegister(in.Buf)
		dmas = append(dmas, i)
	}
	outBuf, err := malloc(w.OutNominal, len(w.Out.Bytes()))
	if err != nil {
		fail(fmt.Errorf("allocating output of %q: %w", w.ExecuteName, err))
		return
	}
	toFree = append(toFree, outBuf)
	wr.HostRegister(w.Out)

	ctx := &gpu.KernelCtx{
		In:        devBufs,
		Out:       []*gpu.Buffer{outBuf},
		N:         w.Size,
		Nominal:   w.Nominal,
		GridSize:  w.GridSize,
		BlockSize: w.BlockSize,
		Args:      w.Args,
	}
	if w.Coalesce > 0 {
		ctx.SetCoalesce(w.Coalesce)
	}

	lanes := [2]*gpu.Stream{sw.stream, sw.alt}
	tracks := [2]string{sw.track + "/dbuf0", sw.track + "/dbuf1"}
	// shadow is a non-nil empty range list: a copy op that charges its
	// nominal share but moves no real bytes.
	shadow := []gpu.CopyRange{}

	var (
		// Pipeline milestones, written inside stream ops and read after
		// the final synchronize (safe: the cooperative virtual-clock
		// scheduler orders the writes before the reads).
		tPipe0, tK0, tKend time.Duration
		// serialized sums every DMA and kernel busy charge; the overlap
		// summary is serialized minus the busy window's wall time.
		serialized time.Duration
		futs       = make([]*gpu.Future, chunks)
	)
	lanes[0].Callback(func() { tPipe0 = mgr.clock.Now() })
	for k := 0; k < chunks; k++ {
		kk := k
		s := lanes[k%2]
		track := tracks[k%2]

		// H2D shares of every transferred input; chunk 0 carries the
		// real (possibly projected) copy.
		for _, i := range dmas {
			in := w.In[i]
			share := nominalShare(in.Nominal, chunks, k)
			if share <= 0 && k > 0 {
				continue
			}
			ranges := shadow
			if k == 0 {
				ranges = in.Ranges // nil = full copy
			}
			wr.MemcpyH2DRangesAsync(s, devBufs[i], in.Buf, ranges, share)
			dur := pcie.TransferTime(share)
			serialized += dur
			mgr.metrics.Add(fmt.Sprintf("xfer.h2d.bytes.gpu%d", dev.ID), share)
			s.Callback(func() {
				end := mgr.clock.Now()
				mgr.tracer.Record(track, "chunk", fmt.Sprintf("h2d.c%d", kk), end-dur, end,
					obs.Int("job", int64(w.JobID)))
			})
		}

		if k == 0 {
			s.Callback(func() { tK0 = mgr.clock.Now() })
		}
		var after *vclock.Event
		if k > 0 {
			after = futs[k-1].Done()
		}
		futs[k] = wr.LaunchChunkAsync(s, w.ExecuteName, ctx, k, chunks, after)
		fut := futs[k]
		s.Callback(func() {
			end := mgr.clock.Now()
			d, _ := fut.Wait() // already resolved: same stream, FIFO
			mgr.tracer.Record(track, "chunk", fmt.Sprintf("kernel.c%d", kk), end-d, end,
				obs.Int("job", int64(w.JobID)))
		})
		if k == chunks-1 {
			s.Callback(func() { tKend = mgr.clock.Now() })
		}

		// D2H share; the last chunk carries the completed result back.
		dshare := nominalShare(w.OutNominal, chunks, k)
		if dshare <= 0 && k != chunks-1 {
			continue
		}
		dranges := shadow
		if k == chunks-1 {
			dranges = nil
		}
		wr.MemcpyD2HRangesAsync(s, w.Out, outBuf, dranges, dshare)
		ddur := pcie.TransferTime(dshare)
		serialized += ddur
		mgr.metrics.Add(fmt.Sprintf("xfer.d2h.bytes.gpu%d", dev.ID), dshare)
		s.Callback(func() {
			end := mgr.clock.Now()
			mgr.tracer.Record(track, "chunk", fmt.Sprintf("d2h.c%d", kk), end-ddur, end,
				obs.Int("job", int64(w.JobID)))
		})
	}

	wr.StreamSynchronize(sw.stream)
	wr.StreamSynchronize(sw.alt)
	var kerr error
	for _, f := range futs {
		d, err := f.Wait()
		serialized += d
		if kerr == nil && err != nil {
			kerr = err
		}
	}

	for _, i := range toCache {
		in := w.In[i]
		if mem.Insert(in.Key, devBufs[i], in.Nominal) {
			acquired = append(acquired, in.Key)
		} else {
			toFree = append(toFree, devBufs[i])
		}
	}
	for _, k := range acquired {
		mem.Release(k)
	}
	for _, b := range toFree {
		wr.Free(dev, b)
	}

	tEnd := mgr.clock.Now()
	overlap := serialized - (tEnd - tPipe0)
	if overlap < 0 {
		overlap = 0
	}
	// Stage attribution tiles the wall span exactly: H2D runs to the
	// first chunk's kernel start, kernel to the last chunk's kernel end,
	// D2H covers the rest — so Queue + H2D + Kernel + D2H still equals
	// the full submit-to-done interval.
	w.report = obs.WorkReport{
		DeviceID: dev.ID, Worker: dev.Node,
		QueueWait:   tStart - w.submitT,
		H2D:         tK0 - tStart,
		Kernel:      tKend - tK0,
		D2H:         tEnd - tKend,
		CacheHits:   cacheHits,
		CacheMisses: cacheMisses,
		StolenFrom:  w.stolenFrom,
		Chunks:      chunks,
		Overlap:     overlap,
	}
	w.err = kerr
	w.device = dev
	mgr.tracer.RecordGWork(sw.track, sw.ds.queueTrack, w.ExecuteName,
		w.submitT, tStart, w.report, obs.Int("job", int64(w.JobID)))
	w.done.Set()
}
