package core

import (
	"strings"
	"testing"

	"gflink/internal/costmodel"
	"gflink/internal/gpu"
	"gflink/internal/obs"
	"gflink/internal/vclock"
)

// TestStreamOptions checks the functional options mutate a
// StreamConfig the way their names promise.
func TestStreamOptions(t *testing.T) {
	tr := obs.NewTracer()
	reg := obs.NewRegistry()
	var cfg StreamConfig
	for _, o := range []StreamOption{
		WithTracer(tr), WithMetrics(reg), WithStealing(false),
		WithScheduler(RoundRobin), WithStreamsPerGPU(7),
	} {
		o(&cfg)
	}
	if cfg.Tracer != tr || cfg.Metrics != reg {
		t.Error("WithTracer/WithMetrics did not set the sinks")
	}
	if !cfg.NoStealing {
		t.Error("WithStealing(false) must set NoStealing")
	}
	WithStealing(true)(&cfg)
	if cfg.NoStealing {
		t.Error("WithStealing(true) must clear NoStealing")
	}
	if cfg.Policy != RoundRobin || cfg.StreamsPerGPU != 7 {
		t.Errorf("policy/streams = %v/%d", cfg.Policy, cfg.StreamsPerGPU)
	}
}

// TestDeprecatedNewGStreamManagerShim keeps the positional constructor
// working: it must build the same manager the StreamConfig path does,
// including the stealing flag's polarity.
func TestDeprecatedNewGStreamManagerShim(t *testing.T) {
	model := costmodel.Default()
	clock := vclock.New()
	wrapper := NewCUDAWrapper(clock, model)
	dev := gpu.NewDevice(clock, 0, 0, costmodel.C2050, model.PCIe)
	mem := NewGMemoryManager(dev, wrapper, costmodel.C2050.MemBytes/2, EvictFIFO)
	m := NewGStreamManager(clock, wrapper, []*GMemoryManager{mem}, 2, RoundRobin, false)
	if m.stealing {
		t.Error("shim stealing=false must disable stealing")
	}
	if m.policy != RoundRobin {
		t.Errorf("policy = %v, want RoundRobin", m.policy)
	}
	if got := len(m.devs[0].streams); got != 2 {
		t.Errorf("streams per GPU = %d, want 2", got)
	}
	if m.tracer != nil || m.metrics != nil {
		t.Error("shim must not wire observability")
	}
	clock.Run(func() {
		m.Close()
		dev.Close()
	})
}

// TestDeploymentObservability drives two GWork through a deployment
// and checks the span tree and the counters the stack emits.
func TestDeploymentObservability(t *testing.T) {
	g := newGFlink(1, 1)
	g.Run(func() {
		key := CacheKey{JobID: 1, Partition: 0, Block: 0}
		w1, _, _ := submitSimple(g, 0, 64, 64, true, key)
		if err := w1.Wait(); err != nil {
			t.Fatal(err)
		}
		w2, _, _ := submitSimple(g, 0, 64, 64, true, key)
		if err := w2.Wait(); err != nil {
			t.Fatal(err)
		}
	})
	spans := g.Obs.Tracer().Spans()
	if len(spans) != 10 {
		t.Fatalf("got %d spans, want 10 (2 GWork x 5 spans)", len(spans))
	}
	cats := map[string]int{}
	for _, s := range spans {
		cats[s.Cat]++
		if !strings.HasPrefix(s.Track, "w0/gpu0/") {
			t.Errorf("span %q on track %q, want a w0/gpu0 track", s.Name, s.Track)
		}
		if s.End < s.Start {
			t.Errorf("span %q ends before it starts", s.Name)
		}
	}
	if cats["queue"] != 2 || cats["gwork"] != 2 || cats["stage"] != 6 {
		t.Errorf("span categories = %v, want 2 queue, 2 gwork, 6 stage", cats)
	}
	m := g.Obs.Metrics()
	if got := m.Get("cache.hits.gpu0"); got != 1 {
		t.Errorf("cache.hits.gpu0 = %d, want 1 (second GWork hits)", got)
	}
	if got := m.Get("cache.misses.gpu0"); got != 1 {
		t.Errorf("cache.misses.gpu0 = %d, want 1 (first GWork misses)", got)
	}
	if got := m.Get("cache.inserts.gpu0"); got != 1 {
		t.Errorf("cache.inserts.gpu0 = %d, want 1", got)
	}
	if got := m.Total("sched."); got == 0 {
		t.Error("no scheduler counters recorded")
	}
	st := g.Manager(0).Streams.Stats()
	if st.Direct+st.Pooled != 2 {
		t.Errorf("Stats() = %+v, want direct+pooled == 2", st)
	}
}
