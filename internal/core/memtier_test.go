package core

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"
	"time"

	"gflink/internal/costmodel"
	"gflink/internal/flink"
	"gflink/internal/gpu"
	"gflink/internal/vclock"
)

// tieredGFlink builds a single-GPU deployment with the host paging
// tier armed.
func tieredGFlink(cacheBytes, hostTier int64) *GFlink {
	return New(Config{
		Config:           flink.Config{Workers: 1, Model: costmodel.Default()},
		GPUsPerWorker:    1,
		CacheBytesPerJob: cacheBytes,
		HostTierBytes:    hostTier,
	})
}

func TestLRUEvictionKeepsTouchedEntry(t *testing.T) {
	g := New(Config{
		Config:           flink.Config{Workers: 1, Model: costmodel.Default()},
		GPUsPerWorker:    1,
		CacheBytesPerJob: 100,
		CachePolicy:      EvictLRU,
	})
	g.Run(func() {
		mem := g.Manager(0).Streams.Memory(0)
		dev := g.Manager(0).Devices[0]
		k1 := CacheKey{JobID: 1, Block: 1}
		k2 := CacheKey{JobID: 1, Block: 2}
		k3 := CacheKey{JobID: 1, Block: 3}
		for _, k := range []CacheKey{k1, k2} {
			b, _ := dev.Malloc(40, 0)
			if !mem.Insert(k, b, 40) {
				t.Fatalf("insert %v failed", k)
			}
			mem.Release(k)
		}
		// Touch k1: under LRU it becomes most-recently-used, so the
		// third insert must evict k2 — the opposite of FIFO.
		if _, ok := mem.Acquire(k1); !ok {
			t.Fatal("k1 not resident")
		}
		mem.Release(k1)
		b3, _ := dev.Malloc(40, 0)
		if !mem.Insert(k3, b3, 40) {
			t.Fatal("insert k3 failed")
		}
		mem.Release(k3)
		if _, ok := mem.Acquire(k2); ok {
			t.Error("k2 survived LRU eviction despite being least recently used")
		}
		if _, ok := mem.Acquire(k1); !ok {
			t.Error("LRU evicted the recently touched k1")
		} else {
			mem.Release(k1)
		}
		g.ReleaseJobCaches(1)
	})
}

func TestCostAwareEvictionKeepsHighValueEntry(t *testing.T) {
	g := New(Config{
		Config:           flink.Config{Workers: 1, Model: costmodel.Default()},
		GPUsPerWorker:    1,
		CacheBytesPerJob: 100,
		CachePolicy:      EvictCostAware,
	})
	g.Run(func() {
		mem := g.Manager(0).Streams.Memory(0)
		dev := g.Manager(0).Devices[0]
		k1 := CacheKey{JobID: 1, Block: 1}
		k2 := CacheKey{JobID: 1, Block: 2}
		k3 := CacheKey{JobID: 1, Block: 3}
		for _, k := range []CacheKey{k1, k2} {
			b, _ := dev.Malloc(40, 0)
			if !mem.Insert(k, b, 40) {
				t.Fatalf("insert %v failed", k)
			}
			mem.Release(k)
		}
		// k1 earns three hits; k2 none. The cost-aware score (bytes
		// saved per reload byte, i.e. the hit count at equal sizes)
		// makes k2 the victim even though k1 is older.
		for i := 0; i < 3; i++ {
			if _, ok := mem.Acquire(k1); !ok {
				t.Fatal("k1 not resident")
			}
			mem.Release(k1)
		}
		b3, _ := dev.Malloc(40, 0)
		if !mem.Insert(k3, b3, 40) {
			t.Fatal("insert k3 failed")
		}
		mem.Release(k3)
		if _, ok := mem.Acquire(k2); ok {
			t.Error("k2 survived cost-aware eviction despite zero hits")
		}
		if _, ok := mem.Acquire(k1); !ok {
			t.Error("cost-aware policy evicted the high-hit-count k1")
		} else {
			mem.Release(k1)
		}
		g.ReleaseJobCaches(1)
	})
}

// TestHostTierDemotePromoteRoundTrip pins invariant 11: a victim's
// bytes demote into the host tier and a later Acquire promotes them
// back bit-identical, at simulated transfer cost.
func TestHostTierDemotePromoteRoundTrip(t *testing.T) {
	g := tieredGFlink(100, 1<<20)
	g.Run(func() {
		mem := g.Manager(0).Streams.Memory(0)
		dev := g.Manager(0).Devices[0]
		k1 := CacheKey{JobID: 1, Block: 1}
		k2 := CacheKey{JobID: 1, Block: 2}
		b1, _ := dev.Malloc(60, 16)
		want := []byte("tiered-memory-11")
		copy(b1.Bytes(), want)
		if !mem.Insert(k1, b1, 60) {
			t.Fatal("insert k1 failed")
		}
		mem.Release(k1)
		b2, _ := dev.Malloc(60, 0)
		t0 := g.Clock.Now()
		if !mem.Insert(k2, b2, 60) { // evicts k1 -> demotes it
			t.Fatal("insert k2 failed")
		}
		if g.Clock.Now() == t0 {
			t.Error("demotion charged no simulated transfer time")
		}
		mem.Release(k2)
		if got := mem.HostPages(1); got != 1 {
			t.Fatalf("host pages = %d, want 1 (demoted k1)", got)
		}
		m := g.Obs.Metrics()
		if got := m.Get("mem.demotions.gpu0"); got != 1 {
			t.Errorf("mem.demotions.gpu0 = %d, want 1", got)
		}
		t1 := g.Clock.Now()
		buf, ok := mem.Acquire(k1)
		if !ok {
			t.Fatal("k1 not promotable from the host tier")
		}
		if g.Clock.Now() == t1 {
			t.Error("promotion charged no simulated transfer time")
		}
		if !bytes.Equal(buf.Bytes()[:len(want)], want) {
			t.Errorf("promoted bytes = %q, want %q", buf.Bytes()[:len(want)], want)
		}
		mem.Release(k1)
		if got := m.Get("mem.promotions.gpu0"); got != 1 {
			t.Errorf("mem.promotions.gpu0 = %d, want 1", got)
		}
		// Promoting k1 into the full region evicted k2, which demoted in
		// turn: the tier holds exactly k2's page now.
		if got := mem.HostPages(1); got != 1 {
			t.Errorf("host pages after promotion = %d, want 1 (k2 demoted by k1's re-entry)", got)
		}
		if got := m.Get("mem.demotions.gpu0"); got != 2 {
			t.Errorf("mem.demotions.gpu0 = %d, want 2 (k1 then k2)", got)
		}
		g.ReleaseJobCaches(1)
	})
}

// TestHostTierSpillReload overflows the host tier so the page spills
// to the simulated disk, then reloads it — still bit-identical.
func TestHostTierSpillReload(t *testing.T) {
	g := tieredGFlink(100, 50) // tier smaller than one 60-byte page
	g.Run(func() {
		mem := g.Manager(0).Streams.Memory(0)
		dev := g.Manager(0).Devices[0]
		k1 := CacheKey{JobID: 1, Block: 1}
		k2 := CacheKey{JobID: 1, Block: 2}
		b1, _ := dev.Malloc(60, 8)
		want := []byte("spill-me")
		copy(b1.Bytes(), want)
		if !mem.Insert(k1, b1, 60) {
			t.Fatal("insert k1 failed")
		}
		mem.Release(k1)
		b2, _ := dev.Malloc(60, 0)
		if !mem.Insert(k2, b2, 60) { // demote k1; 60 > 50 -> spill it
			t.Fatal("insert k2 failed")
		}
		mem.Release(k2)
		m := g.Obs.Metrics()
		if got := m.Get("mem.spills.gpu0"); got != 1 {
			t.Fatalf("mem.spills.gpu0 = %d, want 1", got)
		}
		if got := mem.HostPages(1); got != 1 {
			t.Fatalf("host pages = %d, want 1 (spilled k1)", got)
		}
		buf, ok := mem.Acquire(k1)
		if !ok {
			t.Fatal("k1 not reloadable from the spill disk")
		}
		if !bytes.Equal(buf.Bytes()[:len(want)], want) {
			t.Errorf("reloaded bytes = %q, want %q", buf.Bytes()[:len(want)], want)
		}
		mem.Release(k1)
		if got := m.Get("mem.reloads.gpu0"); got != 1 {
			t.Errorf("mem.reloads.gpu0 = %d, want 1", got)
		}
		if got := m.Get("mem.promotions.gpu0"); got != 1 {
			t.Errorf("mem.promotions.gpu0 = %d, want 1", got)
		}
		g.ReleaseJobCaches(1)
	})
}

// TestReclaimNeverDemotesPinned is the regression test for Reclaim
// racing in-flight pins: churn goroutines insert, reclaim and acquire
// around a long-pinned entry, and the pinned entry must never be
// demoted or spilled — its device buffer stays the same object with
// the same bytes. Run with -race; exercised at GOMAXPROCS 1 and 4.
func TestReclaimNeverDemotesPinned(t *testing.T) {
	for _, procs := range []int{1, 4} {
		t.Run(fmt.Sprintf("procs=%d", procs), func(t *testing.T) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)
			g := tieredGFlink(1000, 500)
			g.Run(func() {
				mem := g.Manager(0).Streams.Memory(0)
				dev := g.Manager(0).Devices[0]
				pinned := CacheKey{JobID: 1, Block: 0}
				b1, err := dev.Malloc(400, 8)
				if err != nil {
					t.Fatal(err)
				}
				want := []byte("pinned!!")
				copy(b1.Bytes(), want)
				if !mem.Insert(pinned, b1, 400) {
					t.Fatal("insert pinned entry failed")
				}
				// Stays pinned (refs=1) through all the churn below.
				grp := vclock.NewGroup(g.Clock)
				for w := 0; w < 4; w++ {
					w := w
					grp.Go(fmt.Sprintf("churn[%d]", w), func() {
						for i := 0; i < 25; i++ {
							k := CacheKey{JobID: 1, Block: 1 + w*100 + i}
							b, err := dev.Malloc(300, 4)
							if err != nil {
								mem.Reclaim(300)
								if b, err = dev.Malloc(300, 4); err != nil {
									continue
								}
							}
							if mem.Insert(k, b, 300) {
								mem.Release(k)
							} else {
								dev.Free(b)
							}
							g.Clock.Sleep(time.Microsecond)
							mem.Reclaim(200)
							if _, ok := mem.Acquire(k); ok {
								mem.Release(k)
							}
						}
					})
				}
				grp.Wait()
				buf, ok := mem.Acquire(pinned)
				if !ok {
					t.Fatal("pinned entry vanished under Reclaim churn")
				}
				if buf != b1 {
					t.Error("pinned entry was demoted and re-promoted while pinned: device buffer replaced")
				}
				if !bytes.Equal(buf.Bytes()[:len(want)], want) {
					t.Errorf("pinned bytes = %q, want %q", buf.Bytes()[:len(want)], want)
				}
				mem.Release(pinned) // the Acquire above
				mem.Release(pinned) // the original insert pin
				g.ReleaseJobCaches(1)
			})
		})
	}
}

// TestMemOptionsAndShim checks the functional options and the
// deprecated positional constructor.
func TestMemOptionsAndShim(t *testing.T) {
	model := costmodel.Default()
	clock := vclock.New()
	wrapper := NewCUDAWrapper(clock, model)
	dev := gpu.NewDevice(clock, 0, 0, costmodel.C2050, model.PCIe)
	disk := costmodel.Disk{ReadMBps: 42, WriteMBps: 24, Seek: time.Millisecond}
	m := NewMemoryManager(dev, wrapper, 1<<20,
		WithPolicy(EvictLRU), WithHostTierBytes(4096), WithDiskBandwidth(disk))
	if got := m.Policy().Name(); got != "lru" {
		t.Errorf("WithPolicy: policy = %q, want lru", got)
	}
	if m.HostTierBytes() != 4096 {
		t.Errorf("WithHostTierBytes: %d, want 4096", m.HostTierBytes())
	}
	if m.spillDisk != disk {
		t.Errorf("WithDiskBandwidth: %+v, want %+v", m.spillDisk, disk)
	}
	if m.hostPool == nil || m.hostPages == nil {
		t.Error("host tier enabled but pool/pages not initialised")
	}

	def := NewMemoryManager(dev, wrapper, 1<<20)
	if got := def.Policy().Name(); got != "fifo" {
		t.Errorf("default policy = %q, want fifo", got)
	}
	if def.HostTierBytes() != 0 || def.hostPool != nil {
		t.Error("default manager must have the host tier disabled")
	}
	if def.spillDisk != costmodel.DefaultSpillDisk {
		t.Errorf("default spill disk = %+v, want DefaultSpillDisk", def.spillDisk)
	}

	custom := customPolicy{}
	if got := NewMemoryManager(dev, wrapper, 1, WithEvictionPolicy(custom)).Policy(); got != custom {
		t.Errorf("WithEvictionPolicy: policy = %#v, want the custom instance", got)
	}

	for _, tc := range []struct {
		pol  CachePolicy
		name string
	}{
		{EvictFIFO, "fifo"}, {StopWhenFull, "stop"}, {EvictLRU, "lru"}, {EvictCostAware, "cost"},
	} {
		shim := NewGMemoryManager(dev, wrapper, 1<<20, tc.pol)
		if got := shim.Policy().Name(); got != tc.name {
			t.Errorf("shim policy %v = %q, want %q", tc.pol, got, tc.name)
		}
		if got := tc.pol.String(); got != tc.name {
			t.Errorf("CachePolicy(%d).String() = %q, want %q", tc.pol, got, tc.name)
		}
	}
	clock.Run(func() { dev.Close() })
}

// customPolicy is a minimal EvictionPolicy for the plug-in test.
type customPolicy struct{}

func (customPolicy) Name() string                              { return "custom" }
func (customPolicy) Admit(r *cacheRegion, e *cacheEntry)       { r.pushBack(e) }
func (customPolicy) Touch(*cacheRegion, *cacheEntry)           {}
func (customPolicy) Victim(r *cacheRegion) (*cacheEntry, bool) { return oldestUnpinned(r), false }
func (customPolicy) Remove(r *cacheRegion, e *cacheEntry)      { r.unlink(e) }
