package core

import (
	"encoding/binary"
	"math"
	"testing"
	"time"

	"gflink/internal/costmodel"
	"gflink/internal/flink"
	"gflink/internal/gpu"
	"gflink/internal/gstruct"
	"gflink/internal/membuf"
)

var f32Schema = gstruct.MustNew("F32", 4, gstruct.Field{Name: "v", Kind: gstruct.Float32})

func init() {
	// doubleF32 multiplies every float32 by two: 1 flop and 8 bytes per
	// element.
	gpu.Register("core_test.double", func(ctx *gpu.KernelCtx) error {
		in, out := ctx.In[0].Bytes(), ctx.Out[0].Bytes()
		for i := 0; i < ctx.N; i++ {
			v := math.Float32frombits(binary.LittleEndian.Uint32(in[i*4:]))
			binary.LittleEndian.PutUint32(out[i*4:], math.Float32bits(2*v))
		}
		ctx.Charge(costmodel.Work{Flops: float64(ctx.Nominal), BytesRead: 4 * float64(ctx.Nominal), BytesWritten: 4 * float64(ctx.Nominal)})
		return nil
	})
	// heavy is double with a 400x compute charge, used to give kernels
	// transfer-comparable durations in the pipelining test.
	gpu.Register("core_test.heavy", func(ctx *gpu.KernelCtx) error {
		in, out := ctx.In[0].Bytes(), ctx.Out[0].Bytes()
		for i := 0; i < ctx.N; i++ {
			v := math.Float32frombits(binary.LittleEndian.Uint32(in[i*4:]))
			binary.LittleEndian.PutUint32(out[i*4:], math.Float32bits(2*v))
		}
		ctx.Charge(costmodel.Work{Flops: 400 * float64(ctx.Nominal), BytesRead: 4 * float64(ctx.Nominal), BytesWritten: 4 * float64(ctx.Nominal)})
		return nil
	})
	// sum reduces a block to one float32.
	gpu.Register("core_test.sum", func(ctx *gpu.KernelCtx) error {
		in, out := ctx.In[0].Bytes(), ctx.Out[0].Bytes()
		var s float32
		for i := 0; i < ctx.N; i++ {
			s += math.Float32frombits(binary.LittleEndian.Uint32(in[i*4:]))
		}
		binary.LittleEndian.PutUint32(out, math.Float32bits(s))
		ctx.Charge(costmodel.Work{Flops: float64(ctx.Nominal), BytesRead: 4 * float64(ctx.Nominal)})
		return nil
	})
}

func newGFlink(workers, gpus int) *GFlink {
	return New(Config{
		Config:        flink.Config{Workers: workers, Model: costmodel.Default(), ScaleDivisor: 1},
		GPUsPerWorker: gpus,
	})
}

// submitSimple builds and submits a double-kernel GWork over n float32s.
func submitSimple(g *GFlink, worker, n int, nominal int64, cache bool, key CacheKey) (*GWork, *membuf.HBuffer, *membuf.HBuffer) {
	pool := g.Cluster.TaskManagers[worker].Pool
	in := pool.MustAllocate(4 * n)
	out := pool.MustAllocate(4 * n)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(in.Bytes()[i*4:], math.Float32bits(float32(i)))
	}
	w := &GWork{
		ExecuteName: "core_test.double",
		Size:        n,
		Nominal:     nominal,
		BlockSize:   256,
		GridSize:    (n + 255) / 256,
		In:          []Input{{Buf: in, Nominal: 4 * nominal, Cache: cache, Key: key}},
		Out:         out,
		OutNominal:  4 * nominal,
		JobID:       key.JobID,
	}
	g.Manager(worker).Streams.Submit(w)
	return w, in, out
}

func TestGWorkEndToEnd(t *testing.T) {
	g := newGFlink(1, 1)
	g.Run(func() {
		w, _, out := submitSimple(g, 0, 100, 100, false, CacheKey{})
		if err := w.Wait(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			got := math.Float32frombits(binary.LittleEndian.Uint32(out.Bytes()[i*4:]))
			if got != 2*float32(i) {
				t.Fatalf("out[%d] = %v, want %v", i, got, 2*float32(i))
			}
		}
		if w.Device() == nil {
			t.Error("no device recorded")
		}
		rep := w.Report()
		if rep.H2D <= 0 || rep.Kernel <= 0 {
			t.Errorf("timings h2d=%v kernel=%v", rep.H2D, rep.Kernel)
		}
		if rep.DeviceID != w.Device().ID || rep.Worker != 0 {
			t.Errorf("report location = gpu%d/w%d, want gpu%d/w0", rep.DeviceID, rep.Worker, w.Device().ID)
		}
		if rep.StolenFrom != -1 {
			t.Errorf("directly dispatched work reports steal origin %d", rep.StolenFrom)
		}
		// Scratch buffers must be freed afterwards.
		if used := w.Device().UsedBytes(); used != 0 {
			t.Errorf("device leaks %d bytes", used)
		}
	})
}

func TestUnknownKernelFailsWork(t *testing.T) {
	g := newGFlink(1, 1)
	g.Run(func() {
		pool := g.Cluster.TaskManagers[0].Pool
		w := &GWork{
			ExecuteName: "core_test.missing",
			Size:        1, Nominal: 1, BlockSize: 1, GridSize: 1,
			In:  []Input{{Buf: pool.MustAllocate(4), Nominal: 4}},
			Out: pool.MustAllocate(4), OutNominal: 4,
		}
		g.Manager(0).Streams.Submit(w)
		if err := w.Wait(); err == nil {
			t.Error("missing kernel did not fail the work")
		}
	})
}

func TestCacheSkipsSecondTransfer(t *testing.T) {
	g := newGFlink(1, 1)
	g.Run(func() {
		key := CacheKey{JobID: 1, Partition: 0, Block: 0}
		nominal := int64(64 << 20) // 64 Mi elements: transfers dominate
		tBefore := g.Clock.Now()
		w1, in, _ := submitSimple(g, 0, 256, nominal, true, key)
		if err := w1.Wait(); err != nil {
			t.Fatal(err)
		}
		first := g.Clock.Now() - tBefore
		if w1.Report().CacheHits != 0 {
			t.Errorf("first run had %d cache hits", w1.Report().CacheHits)
		}
		if w1.Report().CacheMisses != 1 {
			t.Errorf("first run cache misses = %d, want 1", w1.Report().CacheMisses)
		}
		t0 := g.Clock.Now()
		// Second work over the same cached block.
		pool := g.Cluster.TaskManagers[0].Pool
		out2 := pool.MustAllocate(4 * 256)
		w2 := &GWork{
			ExecuteName: "core_test.double",
			Size:        256, Nominal: nominal, BlockSize: 256, GridSize: 1,
			In:  []Input{{Buf: in, Nominal: 4 * nominal, Cache: true, Key: key}},
			Out: out2, OutNominal: 4 * nominal, JobID: 1,
		}
		g.Manager(0).Streams.Submit(w2)
		if err := w2.Wait(); err != nil {
			t.Fatal(err)
		}
		second := g.Clock.Now() - t0
		if w2.Report().CacheHits != 1 {
			t.Errorf("second run cache hits = %d, want 1", w2.Report().CacheHits)
		}
		// The second run skips the input H2D (roughly half the transfer
		// volume): it must be decisively faster.
		if float64(second) > 0.65*float64(first) {
			t.Errorf("cached run %v vs first run %v: H2D not skipped", second, first)
		}
		mem := g.Manager(0).Streams.Memory(0)
		if mem.Entries(1) != 1 {
			t.Errorf("cache entries = %d", mem.Entries(1))
		}
		g.ReleaseJobCaches(1)
		if mem.Entries(1) != 0 {
			t.Error("ReleaseJobCaches left entries")
		}
		if used := g.Manager(0).Devices[0].UsedBytes(); used != 0 {
			t.Errorf("device leaks %d bytes after release", used)
		}
	})
}

func TestFIFOEviction(t *testing.T) {
	g := New(Config{
		Config:           flink.Config{Workers: 1, Model: costmodel.Default()},
		GPUsPerWorker:    1,
		CacheBytesPerJob: 100,
	})
	g.Run(func() {
		mem := g.Manager(0).Streams.Memory(0)
		dev := g.Manager(0).Devices[0]
		alloc := func() *gpu.Buffer {
			b, err := dev.Malloc(40, 0)
			if err != nil {
				t.Fatal(err)
			}
			return b
		}
		k1 := CacheKey{JobID: 1, Block: 1}
		k2 := CacheKey{JobID: 1, Block: 2}
		k3 := CacheKey{JobID: 1, Block: 3}
		for _, k := range []CacheKey{k1, k2} {
			if !mem.Insert(k, alloc(), 40) {
				t.Fatalf("insert %v failed", k)
			}
			mem.Release(k)
		}
		// Third insert (40 bytes into a 100-byte region holding 80)
		// evicts the oldest, k1.
		if !mem.Insert(k3, alloc(), 40) {
			t.Fatal("insert k3 failed")
		}
		mem.Release(k3)
		if _, ok := mem.Acquire(k1); ok {
			t.Error("k1 survived FIFO eviction")
		}
		if _, ok := mem.Acquire(k2); !ok {
			t.Error("k2 was evicted out of order")
		} else {
			mem.Release(k2)
		}
		if mem.Used(1) != 80 {
			t.Errorf("region used = %d, want 80", mem.Used(1))
		}
		g.ReleaseJobCaches(1)
	})
}

func TestStopWhenFullPolicy(t *testing.T) {
	g := New(Config{
		Config:           flink.Config{Workers: 1, Model: costmodel.Default()},
		GPUsPerWorker:    1,
		CacheBytesPerJob: 100,
		CachePolicy:      StopWhenFull,
	})
	g.Run(func() {
		mem := g.Manager(0).Streams.Memory(0)
		dev := g.Manager(0).Devices[0]
		b1, _ := dev.Malloc(60, 0)
		b2, _ := dev.Malloc(60, 0)
		k1 := CacheKey{JobID: 1, Block: 1}
		if !mem.Insert(k1, b1, 60) {
			t.Fatal("first insert failed")
		}
		mem.Release(k1)
		if mem.Insert(CacheKey{JobID: 1, Block: 2}, b2, 60) {
			t.Error("StopWhenFull inserted past capacity")
		}
		if _, ok := mem.Acquire(k1); !ok {
			t.Error("StopWhenFull evicted the resident entry")
		} else {
			mem.Release(k1)
		}
		dev.Free(b2)
		g.ReleaseJobCaches(1)
	})
}

func TestPinnedEntriesSurviveEviction(t *testing.T) {
	g := New(Config{
		Config:           flink.Config{Workers: 1, Model: costmodel.Default()},
		GPUsPerWorker:    1,
		CacheBytesPerJob: 100,
	})
	g.Run(func() {
		mem := g.Manager(0).Streams.Memory(0)
		dev := g.Manager(0).Devices[0]
		b1, _ := dev.Malloc(60, 0)
		k1 := CacheKey{JobID: 1, Block: 1}
		mem.Insert(k1, b1, 60) // stays pinned (refs=1): no Release
		b2, _ := dev.Malloc(60, 0)
		if mem.Insert(CacheKey{JobID: 1, Block: 2}, b2, 60) {
			t.Error("insert evicted a pinned entry")
		}
		dev.Free(b2)
		mem.Release(k1)
		g.ReleaseJobCaches(1)
	})
}

func TestLocalitySchedulingPrefersCachedGPU(t *testing.T) {
	g := newGFlink(1, 2)
	g.Run(func() {
		key := CacheKey{JobID: 7, Partition: 3, Block: 9}
		w1, in, _ := submitSimple(g, 0, 64, 1<<20, true, key)
		if err := w1.Wait(); err != nil {
			t.Fatal(err)
		}
		first := w1.Device()
		// Ten more works over the same cached block: all must land on the
		// device holding the cache.
		pool := g.Cluster.TaskManagers[0].Pool
		for i := 0; i < 10; i++ {
			out := pool.MustAllocate(4 * 64)
			w := &GWork{
				ExecuteName: "core_test.double",
				Size:        64, Nominal: 1 << 20, BlockSize: 256, GridSize: 1,
				In:  []Input{{Buf: in, Nominal: 4 << 20, Cache: true, Key: key}},
				Out: out, OutNominal: 4 << 20, JobID: 7,
			}
			g.Manager(0).Streams.Submit(w)
			if err := w.Wait(); err != nil {
				t.Fatal(err)
			}
			if w.Device() != first {
				t.Fatalf("work %d ran on %v, cache lives on %v", i, w.Device().ID, first.ID)
			}
			if w.Report().CacheHits != 1 {
				t.Fatalf("work %d missed the cache", i)
			}
		}
		g.ReleaseJobCaches(7)
	})
}

func TestUncachedWorkSpreadsOverGPUs(t *testing.T) {
	g := newGFlink(1, 2)
	g.Run(func() {
		seen := map[int]int{}
		var works []*GWork
		for i := 0; i < 8; i++ {
			w, _, _ := submitSimple(g, 0, 64, 8<<20, false, CacheKey{})
			works = append(works, w)
		}
		for _, w := range works {
			if err := w.Wait(); err != nil {
				t.Fatal(err)
			}
			seen[w.Device().ID]++
		}
		if len(seen) != 2 {
			t.Errorf("uncached work used %d GPUs, want 2: %v", len(seen), seen)
		}
	})
}

func TestWorkStealingDrainsForeignQueue(t *testing.T) {
	// One worker, two GPUs, one stream each. Cache everything on GPU 0
	// so Algorithm 5.1 targets it; its queue backs up and GPU 1's idle
	// stream must steal.
	g := New(Config{
		Config:        flink.Config{Workers: 1, Model: costmodel.Default()},
		GPUsPerWorker: 2,
		StreamsPerGPU: 1,
	})
	g.Run(func() {
		key := CacheKey{JobID: 1, Partition: 0, Block: 0}
		w0, in, _ := submitSimple(g, 0, 64, 32<<20, true, key)
		if err := w0.Wait(); err != nil {
			t.Fatal(err)
		}
		pool := g.Cluster.TaskManagers[0].Pool
		var works []*GWork
		for i := 0; i < 12; i++ {
			out := pool.MustAllocate(4 * 64)
			w := &GWork{
				ExecuteName: "core_test.double",
				Size:        64, Nominal: 32 << 20, BlockSize: 256, GridSize: 1,
				In:  []Input{{Buf: in, Nominal: 128 << 20, Cache: true, Key: key}},
				Out: out, OutNominal: 128 << 20, JobID: 1,
			}
			g.Manager(0).Streams.Submit(w)
			works = append(works, w)
		}
		devs := map[int]int{}
		for _, w := range works {
			if err := w.Wait(); err != nil {
				t.Fatal(err)
			}
			devs[w.Device().ID]++
		}
		if len(devs) != 2 {
			t.Errorf("stealing did not engage the second GPU: %v", devs)
		}
		if st := g.Manager(0).Streams.Stats(); st.Steals == 0 {
			t.Error("no steals recorded")
		}
		g.ReleaseJobCaches(1)
	})
}

func TestStealingDisabledKeepsWorkHome(t *testing.T) {
	g := New(Config{
		Config:          flink.Config{Workers: 1, Model: costmodel.Default()},
		GPUsPerWorker:   2,
		StreamsPerGPU:   1,
		DisableStealing: true,
	})
	g.Run(func() {
		key := CacheKey{JobID: 1, Partition: 0, Block: 0}
		w0, in, _ := submitSimple(g, 0, 64, 32<<20, true, key)
		if err := w0.Wait(); err != nil {
			t.Fatal(err)
		}
		pool := g.Cluster.TaskManagers[0].Pool
		var works []*GWork
		for i := 0; i < 12; i++ {
			out := pool.MustAllocate(4 * 64)
			w := &GWork{
				ExecuteName: "core_test.double",
				Size:        64, Nominal: 32 << 20, BlockSize: 256, GridSize: 1,
				In:  []Input{{Buf: in, Nominal: 128 << 20, Cache: true, Key: key}},
				Out: out, OutNominal: 128 << 20, JobID: 1,
			}
			g.Manager(0).Streams.Submit(w)
			works = append(works, w)
		}
		cacheDev := w0.Device()
		for _, w := range works {
			if err := w.Wait(); err != nil {
				t.Fatal(err)
			}
			// Direct dispatch may still use the idle GPU 1 stream, but
			// pool-queued work must only drain on the cache-owning GPU.
			_ = cacheDev
		}
		if st := g.Manager(0).Streams.Stats(); st.Steals != 0 {
			t.Errorf("stealing disabled but %d steals happened", st.Steals)
		}
		g.ReleaseJobCaches(1)
	})
}

func TestRoundRobinPolicyCyclesDevices(t *testing.T) {
	g := New(Config{
		Config:        flink.Config{Workers: 1, Model: costmodel.Default()},
		GPUsPerWorker: 2,
		Scheduler:     RoundRobin,
	})
	g.Run(func() {
		var works []*GWork
		for i := 0; i < 6; i++ {
			w, _, _ := submitSimple(g, 0, 16, 1024, false, CacheKey{})
			works = append(works, w)
		}
		devs := map[int]int{}
		for _, w := range works {
			if err := w.Wait(); err != nil {
				t.Fatal(err)
			}
			devs[w.Device().ID]++
		}
		if devs[0] != 3 || devs[1] != 3 {
			t.Errorf("round robin distribution = %v, want 3/3", devs)
		}
	})
}

func TestNewGDSTBlocking(t *testing.T) {
	g := New(Config{
		Config:        flink.Config{Workers: 2, Model: costmodel.Default(), PageSize: 1024, ScaleDivisor: 4},
		GPUsPerWorker: 1,
	})
	g.Run(func() {
		j := g.Cluster.NewJob("gdst")
		ds := NewGDST(g, j, f32Schema, gstruct.AoS, 40_000, 4, func(part int, v gstruct.View, i int, ord int64) {
			v.PutFloat32At(i, 0, 0, float32(ord))
		})
		if ds.NominalCount() != 40_000 {
			t.Errorf("nominal = %d", ds.NominalCount())
		}
		blockCap := 1024 / 4
		var realTotal int64
		for p := 0; p < ds.Partitions(); p++ {
			part := ds.Partition(p)
			var nomSum int64
			for _, b := range part.Items {
				if b.N > blockCap {
					t.Fatalf("block of %d elems exceeds page capacity %d", b.N, blockCap)
				}
				realTotal += int64(b.N)
				nomSum += b.Nominal
				if got := b.View().Float32At(0, 0, 0); got < 0 {
					t.Fatal("fill not applied")
				}
			}
			if nomSum != part.Nominal {
				t.Errorf("partition %d block nominals sum to %d, want %d", p, nomSum, part.Nominal)
			}
		}
		if realTotal != 10_000 {
			t.Errorf("real records = %d, want 10000", realTotal)
		}
	})
}

func TestGPUMapPartitionCorrectness(t *testing.T) {
	g := New(Config{
		Config:        flink.Config{Workers: 2, Model: costmodel.Default(), PageSize: 2048, ScaleDivisor: 8},
		GPUsPerWorker: 2,
	})
	g.Run(func() {
		j := g.Cluster.NewJob("map")
		ds := NewGDST(g, j, f32Schema, gstruct.AoS, 16_000, 4, func(part int, v gstruct.View, i int, ord int64) {
			v.PutFloat32At(i, 0, 0, float32(ord)+0.5)
		})
		out := GPUMapPartition(g, ds, GPUMapSpec{
			Name:      "double",
			Kernel:    "core_test.double",
			OutSchema: f32Schema,
			OutLayout: gstruct.AoS,
		})
		if out.NominalCount() == 0 {
			t.Fatal("no output")
		}
		for p := 0; p < out.Partitions(); p++ {
			inPart, outPart := ds.Partition(p), out.Partition(p)
			for bi, ob := range outPart.Items {
				ib := inPart.Items[bi]
				iv, ov := ib.View(), ob.View()
				for i := 0; i < ib.N; i++ {
					want := 2 * iv.Float32At(i, 0, 0)
					if got := ov.Float32At(i, 0, 0); got != want {
						t.Fatalf("p%d b%d i%d: %v want %v", p, bi, i, got, want)
					}
				}
			}
		}
	})
}

func TestGPUReducePartition(t *testing.T) {
	g := New(Config{
		Config:        flink.Config{Workers: 1, Model: costmodel.Default(), PageSize: 1024, ScaleDivisor: 1},
		GPUsPerWorker: 1,
	})
	g.Run(func() {
		j := g.Cluster.NewJob("reduce")
		const n = 1000
		ds := NewGDST(g, j, f32Schema, gstruct.AoS, n, 2, func(part int, v gstruct.View, i int, ord int64) {
			v.PutFloat32At(i, 0, 0, 1.0)
		})
		partials := GPUReducePartition(g, ds, GPUMapSpec{
			Name:      "sum",
			Kernel:    "core_test.sum",
			OutSchema: f32Schema,
			OutLayout: gstruct.AoS,
		}, 1)
		var total float32
		for _, b := range CollectBlocks(partials) {
			total += b.View().Float32At(0, 0, 0)
		}
		if total != n {
			t.Errorf("sum = %v, want %v", total, float32(n))
		}
	})
}

func TestPipeliningBeatsSingleStream(t *testing.T) {
	run := func(streams int) time.Duration {
		g := New(Config{
			Config:        flink.Config{Workers: 1, Model: costmodel.Default(), PageSize: 32768, ScaleDivisor: 1 << 10},
			GPUsPerWorker: 1,
			StreamsPerGPU: streams,
		})
		var elapsed time.Duration
		g.Run(func() {
			j := g.Cluster.NewJob("pipe")
			ds := NewGDST(g, j, f32Schema, gstruct.AoS, 64<<20, 1, func(part int, v gstruct.View, i int, ord int64) {
				v.PutFloat32At(i, 0, 0, float32(ord))
			})
			t0 := g.Clock.Now()
			GPUMapPartition(g, ds, GPUMapSpec{
				Name: "heavy", Kernel: "core_test.heavy",
				OutSchema: f32Schema, OutLayout: gstruct.AoS,
			})
			elapsed = g.Clock.Now() - t0
		})
		return elapsed
	}
	single, multi := run(1), run(4)
	if float64(multi) > 0.8*float64(single) {
		t.Errorf("pipelining gained too little: 1 stream %v vs 4 streams %v", single, multi)
	}
}

func TestCloseWithQueuedWorkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Close with queued work did not panic")
		}
	}()
	g := New(Config{
		Config:        flink.Config{Workers: 1, Model: costmodel.Default()},
		GPUsPerWorker: 1,
		StreamsPerGPU: 1,
	})
	g.Clock.Run(func() {
		// Saturate the single stream, then queue extra work and close
		// immediately.
		var works []*GWork
		for i := 0; i < 6; i++ {
			w, _, _ := submitSimple(g, 0, 64, 256<<20, false, CacheKey{})
			works = append(works, w)
		}
		g.Close() // must panic: pool almost surely non-empty
		for _, w := range works {
			w.Wait()
		}
	})
}
