package core

// EvictionPolicy decides which cached entries a region gives up under
// capacity pressure. The GMemoryManager owns all locking and all
// side effects (freeing or demoting the victim's device buffer,
// counters): a policy only maintains ordering metadata on the region's
// intrusive eviction list and answers victim queries. Every method is
// called with the manager's mutex held.
//
// The four built-in implementations cover the paper's two schemes
// (Section 4.2.2: FIFO eviction and stop-when-full) plus the tiered
// subsystem's LRU and cost-aware policies; custom implementations plug
// in through WithEvictionPolicy.
type EvictionPolicy interface {
	// Name identifies the policy in tables and experiment output.
	Name() string
	// Admit records a newly inserted entry in the policy's bookkeeping.
	Admit(r *cacheRegion, e *cacheEntry)
	// Touch records a cache hit on a resident entry.
	Touch(r *cacheRegion, e *cacheEntry)
	// Victim returns the entry the policy would evict next (nil when
	// every entry is pinned) and whether the policy forbids evicting to
	// admit a new object (StopWhenFull). Memory-pressure reclaim ignores
	// stop and frees the victim regardless, matching the pre-refactor
	// behaviour where stop-when-full only guards insertion.
	Victim(r *cacheRegion) (e *cacheEntry, stop bool)
	// Remove drops an entry from the policy's bookkeeping, either
	// because it was evicted or because its job's region is released.
	Remove(r *cacheRegion, e *cacheEntry)
}

// policyFor maps the CachePolicy enum to its implementation.
func policyFor(p CachePolicy) EvictionPolicy {
	switch p {
	case StopWhenFull:
		return stopPolicy{}
	case EvictLRU:
		return lruPolicy{}
	case EvictCostAware:
		return costPolicy{}
	default:
		return fifoPolicy{}
	}
}

// The intrusive eviction list: entries double as list nodes (prev/next
// fields), so policy bookkeeping allocates nothing — entry shells ride
// the manager's free list and the list operations below are pure
// pointer swaps, keeping the hit path hotalloc-clean (invariant 10).

// pushBack appends e as the newest entry of r's eviction list.
//
//gflink:hotpath
func (r *cacheRegion) pushBack(e *cacheEntry) {
	e.prev = r.tail
	e.next = nil
	if r.tail != nil {
		r.tail.next = e
	} else {
		r.head = e
	}
	r.tail = e
}

// unlink removes e from r's eviction list.
//
//gflink:hotpath
func (r *cacheRegion) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		r.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		r.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// oldestUnpinned walks the eviction list front to back and returns the
// first entry with no in-flight references — the shared victim scan of
// the FIFO-ordered policies.
//
//gflink:hotpath
func oldestUnpinned(r *cacheRegion) *cacheEntry {
	for e := r.head; e != nil; e = e.next {
		if e.refs == 0 {
			return e
		}
	}
	return nil
}

// fifoPolicy evicts the oldest cached objects until a new one fits —
// the paper's default garbage-collection scheme.
type fifoPolicy struct{}

func (fifoPolicy) Name() string { return "fifo" }

//gflink:hotpath
func (fifoPolicy) Admit(r *cacheRegion, e *cacheEntry) { r.pushBack(e) }

//gflink:hotpath
func (fifoPolicy) Touch(r *cacheRegion, e *cacheEntry) {}

//gflink:hotpath
func (fifoPolicy) Victim(r *cacheRegion) (*cacheEntry, bool) { return oldestUnpinned(r), false }

//gflink:hotpath
func (fifoPolicy) Remove(r *cacheRegion, e *cacheEntry) { r.unlink(e) }

// stopPolicy refuses new insertions once the region is full — "useful
// when the data needed to be cached in the GPUs in one iteration is
// larger than that of the region". Its victim scan still works (FIFO
// order) so memory-pressure reclaim can free entries; only
// evict-to-admit is forbidden, signalled by stop=true.
type stopPolicy struct{}

func (stopPolicy) Name() string { return "stop" }

//gflink:hotpath
func (stopPolicy) Admit(r *cacheRegion, e *cacheEntry) { r.pushBack(e) }

//gflink:hotpath
func (stopPolicy) Touch(r *cacheRegion, e *cacheEntry) {}

//gflink:hotpath
func (stopPolicy) Victim(r *cacheRegion) (*cacheEntry, bool) { return oldestUnpinned(r), true }

//gflink:hotpath
func (stopPolicy) Remove(r *cacheRegion, e *cacheEntry) { r.unlink(e) }

// lruPolicy evicts the least-recently-used entry: a hit moves the
// entry to the back of the eviction list, so constantly reused blocks
// survive capacity pressure that cycles colder blocks through the
// region — the classic gap over FIFO under reuse-heavy iteration.
type lruPolicy struct{}

func (lruPolicy) Name() string { return "lru" }

//gflink:hotpath
func (lruPolicy) Admit(r *cacheRegion, e *cacheEntry) { r.pushBack(e) }

//gflink:hotpath
func (lruPolicy) Touch(r *cacheRegion, e *cacheEntry) {
	r.unlink(e)
	r.pushBack(e)
}

//gflink:hotpath
func (lruPolicy) Victim(r *cacheRegion) (*cacheEntry, bool) { return oldestUnpinned(r), false }

//gflink:hotpath
func (lruPolicy) Remove(r *cacheRegion, e *cacheEntry) { r.unlink(e) }

// costPolicy evicts the entry with the lowest bytes-saved-per-
// reload-byte score. Keeping an entry saves one transfer of its
// nominal size per future hit, while evicting it costs one reload of
// the same nominal size, so the ratio reduces to the entry's hit
// count: evict the least-touched entry, breaking ties oldest-first
// (insertion order, which the list preserves because Touch does not
// reorder).
type costPolicy struct{}

func (costPolicy) Name() string { return "cost" }

//gflink:hotpath
func (costPolicy) Admit(r *cacheRegion, e *cacheEntry) { r.pushBack(e) }

//gflink:hotpath
func (costPolicy) Touch(r *cacheRegion, e *cacheEntry) { e.touches++ }

//gflink:hotpath
func (costPolicy) Victim(r *cacheRegion) (*cacheEntry, bool) {
	var best *cacheEntry
	for e := r.head; e != nil; e = e.next {
		if e.refs > 0 {
			continue
		}
		if best == nil || e.touches < best.touches {
			best = e
		}
	}
	return best, false
}

//gflink:hotpath
func (costPolicy) Remove(r *cacheRegion, e *cacheEntry) { r.unlink(e) }
