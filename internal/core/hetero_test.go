package core

import (
	"testing"
	"time"

	"gflink/internal/costmodel"
	"gflink/internal/flink"
	"gflink/internal/gstruct"
)

func TestNewHeteroProfilesPerDevice(t *testing.T) {
	g := NewHetero(Config{
		Config: flink.Config{Workers: 2, Model: costmodel.Default()},
	}, [][]costmodel.GPUProfile{
		{costmodel.C2050, costmodel.K20},
		{costmodel.P100},
	})
	if len(g.Managers) != 2 {
		t.Fatalf("managers = %d", len(g.Managers))
	}
	if got := g.Manager(0).Devices[0].Profile.Name; got != "C2050" {
		t.Errorf("w0d0 = %s", got)
	}
	if got := g.Manager(0).Devices[1].Profile.Name; got != "K20" {
		t.Errorf("w0d1 = %s", got)
	}
	if got := g.Manager(1).Devices[0].Profile.Name; got != "P100" {
		t.Errorf("w1d0 = %s", got)
	}
	g.Run(func() {
		// The same compute-bound kernel must run faster on the P100 than
		// on the C2050.
		run := func(worker int) time.Duration {
			w, _, _ := submitSimple(g, worker, 64, 1<<28, false, CacheKey{})
			if err := w.Wait(); err != nil {
				t.Fatal(err)
			}
			return w.Report().Kernel
		}
		c2050 := run(0)
		p100 := run(1)
		if p100 >= c2050 {
			t.Errorf("P100 kernel (%v) not faster than C2050 (%v)", p100, c2050)
		}
	})
}

func TestHeteroCacheCapacityFollowsDevice(t *testing.T) {
	g := NewHetero(Config{
		Config: flink.Config{Workers: 1, Model: costmodel.Default()},
	}, [][]costmodel.GPUProfile{{costmodel.GTX750, costmodel.P100}})
	small := g.Manager(0).Streams.Memory(0).RegionCap()
	big := g.Manager(0).Streams.Memory(1).RegionCap()
	if small >= big {
		t.Errorf("GTX750 region (%d) not smaller than P100's (%d)", small, big)
	}
	g.Run(func() {})
}

func TestCUDAWrapperChargesControlChannel(t *testing.T) {
	g := newGFlink(1, 1)
	m := costmodel.Default()
	g.Run(func() {
		dev := g.Manager(0).Devices[0]
		wr := g.Manager(0).Wrapper
		t0 := g.Clock.Now()
		b, err := wr.Malloc(dev, 1024, 0)
		if err != nil {
			t.Fatal(err)
		}
		// One JNI round trip plus the driver's allocation overhead.
		if got := g.Clock.Now() - t0; got <= m.Overheads.JNICall {
			t.Errorf("Malloc charged %v, want > JNI %v", got, m.Overheads.JNICall)
		}
		t1 := g.Clock.Now()
		wr.Free(dev, b)
		if got := g.Clock.Now() - t1; got != m.Overheads.JNICall {
			t.Errorf("Free charged %v, want %v", got, m.Overheads.JNICall)
		}
	})
}

func TestGPUPathSurvivesProducerTaskRetry(t *testing.T) {
	// The reliability path the paper cites: a failed producer task is
	// retried by the JobManager and the GPU work still completes with
	// correct results.
	g := New(Config{
		Config:        flink.Config{Workers: 1, Model: costmodel.Default(), PageSize: 2048, ScaleDivisor: 8},
		GPUsPerWorker: 1,
	})
	g.Run(func() {
		j := g.Cluster.NewJob("flaky")
		j.InjectTaskFailures("gpu:double", 2)
		ds := NewGDST(g, j, f32Schema, gstruct.AoS, 8000, 2, func(part int, v gstruct.View, i int, ord int64) {
			v.PutFloat32At(i, 0, 0, float32(ord))
		})
		out := GPUMapPartition(g, ds, GPUMapSpec{
			Name: "double", Kernel: "core_test.double",
			OutSchema: f32Schema, OutLayout: gstruct.AoS,
		})
		if j.Retries() != 2 {
			t.Errorf("retries = %d, want 2", j.Retries())
		}
		for p := 0; p < out.Partitions(); p++ {
			for bi, ob := range out.Partition(p).Items {
				ib := ds.Partition(p).Items[bi]
				iv, ov := ib.View(), ob.View()
				for i := 0; i < ib.N; i++ {
					if ov.Float32At(i, 0, 0) != 2*iv.Float32At(i, 0, 0) {
						t.Fatalf("wrong result at p%d b%d i%d after retry", p, bi, i)
					}
				}
			}
		}
	})
}
