package core

import (
	"fmt"
	"sort"
	"sync"

	"gflink/internal/costmodel"
	"gflink/internal/gpu"
	"gflink/internal/membuf"
	"gflink/internal/obs"
	"gflink/internal/vclock"
)

// CachePolicy selects the garbage-collection scheme of a cache region
// (Section 4.2.2 describes the first two; LRU and cost-aware belong to
// the tiered-memory extension).
type CachePolicy int

const (
	// EvictFIFO evicts the oldest cached objects until a new one fits.
	EvictFIFO CachePolicy = iota
	// StopWhenFull refuses new insertions once the region is full —
	// "useful when the data needed to be cached in the GPUs in one
	// iteration is larger than that of the region".
	StopWhenFull
	// EvictLRU evicts the least-recently-used object; hits refresh an
	// entry's position, so hot blocks survive cyclic capacity pressure.
	EvictLRU
	// EvictCostAware evicts the object with the lowest bytes-saved-per-
	// reload-byte score (its hit count; see costPolicy).
	EvictCostAware
)

// String names the policy as experiments and tables render it.
func (p CachePolicy) String() string { return policyFor(p).Name() }

// GMemoryManager owns one device's memory on behalf of GFlink
// (Section 4.2): it allocates and releases buffers automatically around
// each GWork and maintains the per-job cache regions — a hash table of
// CacheKey to device buffer plus the eviction list its EvictionPolicy
// orders. With a host tier configured (WithHostTierBytes) it becomes
// the top of a three-level hierarchy: victims demote to a membuf-backed
// host page pool instead of being freed, pages spill onward to
// simulated disk when the host tier overflows, and a later Acquire
// promotes pages back at costmodel transfer cost instead of forcing the
// caller to re-transfer or recompute.
type GMemoryManager struct {
	dev     *gpu.Device
	wrapper *CUDAWrapper
	clock   *vclock.Clock
	model   costmodel.Model
	// pol orders eviction; fifoPolicy unless an option overrides it.
	pol EvictionPolicy
	// regionCap is the per-job cache-region capacity in nominal bytes
	// (the user-defined parameter of Section 4.2.2).
	regionCap int64
	// metrics receives the cache counters ("cache.<event>.gpu<ID>") and
	// tier counters ("mem.<event>.gpu<ID>"); nil until observe wires a
	// registry. The counter handles are preregistered per device so
	// hot-path cache events neither concatenate strings nor hash a
	// counter name (the counterkey analyzer validates the names through
	// the Registry.Counter call sites in observe).
	metrics      *obs.Registry
	cntHits      *obs.Counter
	cntMisses    *obs.Counter
	cntInserts   *obs.Counter
	cntRejects   *obs.Counter
	cntStop      *obs.Counter
	cntEvictions *obs.Counter

	// Tier observability: demotion/promotion/spill/reload spans land on
	// the per-device mem track; tracer is nil until observe wires one.
	tracer        *obs.Tracer
	memTrack      string
	cntDemotions  *obs.Counter
	cntPromotions *obs.Counter
	cntSpills     *obs.Counter
	cntReloads    *obs.Counter

	// hostTierBytes caps the host paging tier in nominal bytes; 0
	// disables the tier entirely and victims are freed as before.
	hostTierBytes int64
	// spillDisk is the simulated device host pages spill to when the
	// tier overflows.
	spillDisk costmodel.Disk
	// hostPool backs resident host pages with off-heap buffers. The
	// tier's capacity is enforced in nominal bytes by hostUsed, so the
	// pool itself is unbounded: it only holds the scaled-down real
	// bytes.
	hostPool *membuf.Pool

	mu      sync.Mutex
	regions map[int]*cacheRegion // by job ID
	// freeEntries recycles cacheEntry shells (which double as eviction
	// list nodes) so steady-state insert-after-evict allocates nothing.
	freeEntries []*cacheEntry
	// pending collects entries evicted under mu whose demotion (which
	// charges simulated time and therefore must not run under the
	// mutex) is still owed; takePendingLocked hands the batch to settle
	// after the lock is released.
	pending []*cacheEntry

	// Host tier state (all guarded by mu). hostHead/hostTail order the
	// resident pages oldest-first for spilling; spilled pages stay in
	// hostPages but leave the resident list.
	hostPages          map[CacheKey]*hostPage
	hostHead, hostTail *hostPage
	hostUsed           int64
	freePages          []*hostPage
}

type cacheRegion struct {
	capacity int64
	used     int64
	entries  map[CacheKey]*cacheEntry
	// head/tail anchor the intrusive eviction list the region's policy
	// orders (oldest candidate first). Entries are their own nodes, so
	// eviction bookkeeping rides the manager's shell free list.
	head, tail *cacheEntry
}

type cacheEntry struct {
	key     CacheKey
	buf     *gpu.Buffer
	nominal int64
	refs    int   // in-flight kernels using the entry; evictable at 0
	touches int64 // hits since insertion (the cost-aware policy's signal)
	prev    *cacheEntry
	next    *cacheEntry
}

// MemOption configures optional behaviour of a memory manager.
type MemOption func(*GMemoryManager)

// WithPolicy selects a built-in eviction policy.
func WithPolicy(p CachePolicy) MemOption {
	return func(m *GMemoryManager) { m.pol = policyFor(p) }
}

// WithEvictionPolicy plugs a custom EvictionPolicy implementation.
func WithEvictionPolicy(p EvictionPolicy) MemOption {
	return func(m *GMemoryManager) { m.pol = p }
}

// WithHostTierBytes enables the host paging tier, capped at n nominal
// bytes: evicted cache entries demote their bytes to host pages instead
// of being freed, and Acquire promotes them back at H2D transfer cost.
func WithHostTierBytes(n int64) MemOption {
	return func(m *GMemoryManager) { m.hostTierBytes = n }
}

// WithDiskBandwidth sets the simulated disk host pages spill to when
// the host tier overflows (default costmodel.DefaultSpillDisk).
func WithDiskBandwidth(d costmodel.Disk) MemOption {
	return func(m *GMemoryManager) { m.spillDisk = d }
}

// NewMemoryManager builds the manager for one device. Without options
// it reproduces the paper's configuration: FIFO eviction, no host
// tier.
func NewMemoryManager(dev *gpu.Device, wrapper *CUDAWrapper, regionCap int64, opts ...MemOption) *GMemoryManager {
	m := &GMemoryManager{
		dev:       dev,
		wrapper:   wrapper,
		clock:     wrapper.clock,
		model:     wrapper.model,
		pol:       fifoPolicy{},
		regionCap: regionCap,
		memTrack:  fmt.Sprintf("gpu%d/mem", dev.ID),
		spillDisk: costmodel.DefaultSpillDisk,
		regions:   make(map[int]*cacheRegion),
	}
	for _, o := range opts {
		o(m)
	}
	if m.hostTierBytes > 0 {
		m.hostPool = membuf.NewPool(wrapper.clock, wrapper.model, membuf.Config{})
		m.hostPages = make(map[CacheKey]*hostPage)
	}
	return m
}

// NewGMemoryManager builds the manager from positional arguments.
//
// Deprecated: use NewMemoryManager with functional options
// (WithPolicy, WithHostTierBytes, WithDiskBandwidth). This shim is
// kept for one release, like the NewGStreamManager precedent.
func NewGMemoryManager(dev *gpu.Device, wrapper *CUDAWrapper, regionCap int64, policy CachePolicy) *GMemoryManager {
	return NewMemoryManager(dev, wrapper, regionCap, WithPolicy(policy))
}

// observe directs the cache and tier counters to r and the tier spans
// to tr (wired by NewStreamManager, which shares one registry and
// tracer across a worker's devices).
func (m *GMemoryManager) observe(r *obs.Registry, tr *obs.Tracer) {
	m.metrics = r
	m.tracer = tr
	suffix := fmt.Sprintf(".gpu%d", m.dev.ID)
	m.cntHits = r.Counter("cache.hits" + suffix)
	m.cntMisses = r.Counter("cache.misses" + suffix)
	m.cntInserts = r.Counter("cache.inserts" + suffix)
	m.cntRejects = r.Counter("cache.rejects" + suffix)
	m.cntStop = r.Counter("cache.stop" + suffix)
	m.cntEvictions = r.Counter("cache.evictions" + suffix)
	m.cntDemotions = r.Counter("mem.demotions" + suffix)
	m.cntPromotions = r.Counter("mem.promotions" + suffix)
	m.cntSpills = r.Counter("mem.spills" + suffix)
	m.cntReloads = r.Counter("mem.reloads" + suffix)
}

// Device returns the managed device.
func (m *GMemoryManager) Device() *gpu.Device { return m.dev }

// RegionCap returns the per-job cache-region capacity.
func (m *GMemoryManager) RegionCap() int64 { return m.regionCap }

// Policy returns the manager's eviction policy.
func (m *GMemoryManager) Policy() EvictionPolicy { return m.pol }

// HostTierBytes returns the host paging tier's capacity (0 when the
// tier is disabled).
func (m *GMemoryManager) HostTierBytes() int64 { return m.hostTierBytes }

// region returns the job's cache region, allocating it lazily ("the
// cache region of a specific job is allocated when the job starts").
//
//gflink:hotpath
func (m *GMemoryManager) region(jobID int) *cacheRegion {
	r, ok := m.regions[jobID]
	if !ok {
		//gflink:allow-alloc lazy per-job region creation: once per job, not per work
		r = &cacheRegion{capacity: m.regionCap, entries: make(map[CacheKey]*cacheEntry)}
		//gflink:allow-alloc per-job region registration: once per job, not per work
		m.regions[jobID] = r
	}
	return r
}

// Acquire looks up key and, when present, pins the entry against
// eviction and returns its device buffer. With the host tier enabled a
// device miss falls through to the page pool: a resident (or spilled)
// page is promoted back to the device at simulated transfer (and disk)
// cost and returned pinned, like a hit. Callers must pair a hit with
// Release.
//
//gflink:hotpath
func (m *GMemoryManager) Acquire(key CacheKey) (*gpu.Buffer, bool) {
	m.mu.Lock()
	r := m.region(key.JobID)
	if e, ok := r.entries[key]; ok {
		e.refs++
		//gflink:allow-alloc policy dispatch: built-in Touch is pointer-only bookkeeping, verified hotalloc-clean in evict.go
		m.pol.Touch(r, e)
		m.cntHits.Add(1)
		m.mu.Unlock()
		return e.buf, true
	}
	if m.hostTierBytes > 0 {
		//gflink:allow-alloc tiered promotion lookup: opt-in path off the pinned hot route
		if pg := m.takePageLocked(key); pg != nil {
			m.mu.Unlock()
			//gflink:allow-alloc tiered promotion: opt-in path off the pinned hot route
			return m.promote(key, pg)
		}
	}
	m.cntMisses.Add(1)
	m.mu.Unlock()
	return nil, false
}

// Release unpins a previously acquired entry.
//
//gflink:hotpath
func (m *GMemoryManager) Release(key CacheKey) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r := m.region(key.JobID)
	if e, ok := r.entries[key]; ok && e.refs > 0 {
		e.refs--
	}
}

// Insert caches buf under key, evicting per the region policy. It
// returns false (and leaves buf owned by the caller) when the region
// cannot hold the object; on success the region owns buf. The new entry
// starts pinned with one reference, matching the in-flight kernel that
// triggered the transfer; the caller must Release it. With the host
// tier enabled, victims demote to host pages after the lock is
// dropped — demotion charges simulated time, so it never runs under mu
// (the lockhold invariant).
//
//gflink:hotpath
func (m *GMemoryManager) Insert(key CacheKey, buf *gpu.Buffer, nominal int64) bool {
	m.mu.Lock()
	r := m.region(key.JobID)
	if _, dup := r.entries[key]; dup {
		m.cntRejects.Add(1)
		m.mu.Unlock()
		return false
	}
	if nominal > r.capacity {
		m.cntRejects.Add(1)
		m.mu.Unlock()
		return false
	}
	for r.used+nominal > r.capacity {
		//gflink:allow-alloc policy dispatch: built-in Victim is a pointer-only list walk, verified hotalloc-clean in evict.go
		v, stop := m.pol.Victim(r)
		if stop {
			m.cntStop.Add(1)
			m.mu.Unlock()
			return false
		}
		if v == nil {
			m.cntRejects.Add(1)
			m.mu.Unlock()
			return false // everything pinned
		}
		m.evictLocked(r, v)
	}
	e := m.entryLocked()
	e.key, e.buf, e.nominal, e.refs = key, buf, nominal, 1
	//gflink:allow-alloc policy dispatch: built-in Admit is a pointer-only list push, verified hotalloc-clean in evict.go
	m.pol.Admit(r, e)
	//gflink:allow-alloc cache-entry registration, one per cached block
	r.entries[key] = e
	r.used += nominal
	m.cntInserts.Add(1)
	pend := m.takePendingLocked()
	m.mu.Unlock()
	if pend != nil {
		//gflink:allow-alloc tiered demotion: opt-in path off the pinned hot route
		m.settle(pend)
	}
	return true
}

// evictLocked detaches a chosen victim from its region and either
// frees its device buffer (no host tier) or queues it on m.pending for
// demotion once the caller drops mu.
//
//gflink:hotpath
func (m *GMemoryManager) evictLocked(r *cacheRegion, e *cacheEntry) {
	//gflink:allow-alloc policy dispatch: built-in Remove is a pointer-only list unlink, verified hotalloc-clean in evict.go
	m.pol.Remove(r, e)
	delete(r.entries, e.key)
	r.used -= e.nominal
	if m.hostTierBytes > 0 {
		//gflink:allow-alloc tiered demotion queue: opt-in path off the pinned hot route
		m.pending = append(m.pending, e)
		m.cntEvictions.Add(1)
		return
	}
	m.dev.Free(e.buf)
	m.cntEvictions.Add(1)
	m.recycleEntryLocked(e)
}

// entryLocked returns a zeroed cacheEntry shell from the free list.
//
//gflink:hotpath
func (m *GMemoryManager) entryLocked() *cacheEntry {
	if n := len(m.freeEntries); n > 0 {
		e := m.freeEntries[n-1]
		m.freeEntries[n-1] = nil
		m.freeEntries = m.freeEntries[:n-1]
		return e
	}
	//gflink:allow-alloc cache-entry cold start: shells recycle through the free list thereafter
	return &cacheEntry{}
}

// recycleEntryLocked zeroes a shell and returns it to the free list.
//
//gflink:hotpath
func (m *GMemoryManager) recycleEntryLocked(e *cacheEntry) {
	*e = cacheEntry{}
	//gflink:allow-alloc amortized free-list growth, bounded by the peak entry count
	m.freeEntries = append(m.freeEntries, e)
}

// takePendingLocked hands the owed demotion batch (if any) to the
// caller, which must run settle on it after releasing mu.
//
//gflink:hotpath
func (m *GMemoryManager) takePendingLocked() []*cacheEntry {
	if len(m.pending) == 0 {
		return nil
	}
	p := m.pending
	m.pending = nil
	return p
}

// CachedBytes sums the nominal sizes of the given keys present in this
// device's regions — the quantity Algorithm 5.1 maximizes when picking
// a GPU. Host-tier pages do not count: locality means device-resident.
//
//gflink:hotpath
func (m *GMemoryManager) CachedBytes(keys []CacheKey) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n int64
	for _, k := range keys {
		if r, ok := m.regions[k.JobID]; ok {
			if e, ok := r.entries[k]; ok {
				n += e.nominal
			}
		}
	}
	return n
}

// Used reports the region occupancy for a job.
func (m *GMemoryManager) Used(jobID int) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if r, ok := m.regions[jobID]; ok {
		return r.used
	}
	return 0
}

// Entries reports the number of cached objects for a job.
func (m *GMemoryManager) Entries(jobID int) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if r, ok := m.regions[jobID]; ok {
		return len(r.entries)
	}
	return 0
}

// HostPages reports the number of host-tier pages (resident plus
// spilled) held for a job.
func (m *GMemoryManager) HostPages(jobID int) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for k := range m.hostPages {
		if k.JobID == jobID {
			n++
		}
	}
	return n
}

// Reclaim evicts unpinned cache entries (policy order, across regions
// in job order) until the device has at least need bytes free or
// nothing more can be evicted — the automatic-management behaviour that
// lets transient GWork allocations proceed under cache pressure.
// Memory pressure overrides StopWhenFull: the policy's victim is freed
// even though the policy forbids evict-to-admit. Pinned entries
// (refs > 0) are never victims, never demoted, never spilled. With the
// host tier enabled each victim demotes (charging simulated time) with
// the mutex released.
func (m *GMemoryManager) Reclaim(need int64) {
	for {
		m.mu.Lock()
		if m.dev.FreeBytes() >= need {
			m.mu.Unlock()
			return
		}
		var victim *cacheEntry
		jobs := make([]int, 0, len(m.regions))
		for id := range m.regions {
			jobs = append(jobs, id)
		}
		sort.Ints(jobs)
		for _, id := range jobs {
			r := m.regions[id]
			if v, _ := m.pol.Victim(r); v != nil {
				m.pol.Remove(r, v)
				delete(r.entries, v.key)
				r.used -= v.nominal
				victim = v
				break
			}
		}
		if victim == nil {
			m.mu.Unlock()
			return
		}
		if m.hostTierBytes > 0 {
			m.cntEvictions.Add(1)
			m.mu.Unlock()
			m.demote(victim)
			continue
		}
		m.dev.Free(victim.buf)
		m.cntEvictions.Add(1)
		m.recycleEntryLocked(victim)
		m.mu.Unlock()
	}
}

// ReleaseJob frees a job's whole cache region ("it is released when the
// job finishes") along with any host-tier pages and spilled blobs the
// job demoted. Releasing with in-flight references panics: the job
// cannot finish while its work is still running.
func (m *GMemoryManager) ReleaseJob(jobID int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if r, ok := m.regions[jobID]; ok {
		keys := make([]CacheKey, 0, len(r.entries))
		for key := range r.entries {
			keys = append(keys, key)
		}
		sort.Slice(keys, func(i, j int) bool {
			a, b := keys[i], keys[j]
			if a.Partition != b.Partition {
				return a.Partition < b.Partition
			}
			return a.Block < b.Block
		})
		for _, key := range keys {
			e := r.entries[key]
			if e.refs > 0 {
				panic(fmt.Sprintf("core: ReleaseJob(%d) with pinned cache entry %+v", jobID, key))
			}
			m.dev.Free(e.buf)
			m.pol.Remove(r, e)
			m.recycleEntryLocked(e)
		}
		delete(m.regions, jobID)
	}
	m.releaseJobPagesLocked(jobID)
}
