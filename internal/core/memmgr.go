package core

import (
	"container/list"
	"fmt"
	"sort"
	"sync"

	"gflink/internal/gpu"
	"gflink/internal/obs"
)

// CachePolicy selects the garbage-collection scheme of a cache region
// (Section 4.2.2 describes both).
type CachePolicy int

const (
	// EvictFIFO evicts the oldest cached objects until a new one fits.
	EvictFIFO CachePolicy = iota
	// StopWhenFull refuses new insertions once the region is full —
	// "useful when the data needed to be cached in the GPUs in one
	// iteration is larger than that of the region".
	StopWhenFull
)

// GMemoryManager owns one device's memory on behalf of GFlink
// (Section 4.2): it allocates and releases buffers automatically around
// each GWork and maintains the per-job cache regions — a hash table of
// CacheKey to device buffer plus the FIFO list driving eviction.
type GMemoryManager struct {
	dev     *gpu.Device
	wrapper *CUDAWrapper
	policy  CachePolicy
	// regionCap is the per-job cache-region capacity in nominal bytes
	// (the user-defined parameter of Section 4.2.2).
	regionCap int64
	// metrics receives the cache counters ("cache.<event>.gpu<ID>");
	// nil until observe wires a registry. The counter names are
	// precomputed per device so hot-path cache events don't concatenate
	// strings (the counterkey analyzer validates them through field
	// provenance).
	metrics       *obs.Registry
	hitsName      string
	missesName    string
	insertsName   string
	rejectsName   string
	stopName      string
	evictionsName string

	mu      sync.Mutex
	regions map[int]*cacheRegion // by job ID
}

type cacheRegion struct {
	capacity int64
	used     int64
	entries  map[CacheKey]*cacheEntry
	fifo     *list.List // of CacheKey, oldest first
}

type cacheEntry struct {
	buf     *gpu.Buffer
	nominal int64
	refs    int // in-flight kernels using the entry; evictable at 0
	elem    *list.Element
}

// NewGMemoryManager builds the manager for one device.
func NewGMemoryManager(dev *gpu.Device, wrapper *CUDAWrapper, regionCap int64, policy CachePolicy) *GMemoryManager {
	suffix := fmt.Sprintf(".gpu%d", dev.ID)
	return &GMemoryManager{
		dev:           dev,
		wrapper:       wrapper,
		policy:        policy,
		regionCap:     regionCap,
		hitsName:      "cache.hits" + suffix,
		missesName:    "cache.misses" + suffix,
		insertsName:   "cache.inserts" + suffix,
		rejectsName:   "cache.rejects" + suffix,
		stopName:      "cache.stop" + suffix,
		evictionsName: "cache.evictions" + suffix,
		regions:       make(map[int]*cacheRegion),
	}
}

// observe directs the cache counters to r (wired by NewStreamManager,
// which shares one registry across a worker's devices).
func (m *GMemoryManager) observe(r *obs.Registry) { m.metrics = r }

// Device returns the managed device.
func (m *GMemoryManager) Device() *gpu.Device { return m.dev }

// RegionCap returns the per-job cache-region capacity.
func (m *GMemoryManager) RegionCap() int64 { return m.regionCap }

// region returns the job's cache region, allocating it lazily ("the
// cache region of a specific job is allocated when the job starts").
//
//gflink:hotpath
func (m *GMemoryManager) region(jobID int) *cacheRegion {
	r, ok := m.regions[jobID]
	if !ok {
		//gflink:allow-alloc lazy per-job region creation: once per job, not per work
		r = &cacheRegion{capacity: m.regionCap, entries: make(map[CacheKey]*cacheEntry), fifo: list.New()}
		//gflink:allow-alloc per-job region registration: once per job, not per work
		m.regions[jobID] = r
	}
	return r
}

// Acquire looks up key and, when present, pins the entry against
// eviction and returns its device buffer. Callers must pair a hit with
// Release.
//
//gflink:hotpath
func (m *GMemoryManager) Acquire(key CacheKey) (*gpu.Buffer, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r := m.region(key.JobID)
	e, ok := r.entries[key]
	if !ok {
		m.metrics.Add(m.missesName, 1)
		return nil, false
	}
	e.refs++
	m.metrics.Add(m.hitsName, 1)
	return e.buf, true
}

// Release unpins a previously acquired entry.
//
//gflink:hotpath
func (m *GMemoryManager) Release(key CacheKey) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r := m.region(key.JobID)
	if e, ok := r.entries[key]; ok && e.refs > 0 {
		e.refs--
	}
}

// Insert caches buf under key, evicting per the region policy. It
// returns false (and leaves buf owned by the caller) when the region
// cannot hold the object; on success the region owns buf. The new entry
// starts pinned with one reference, matching the in-flight kernel that
// triggered the transfer; the caller must Release it.
//
//gflink:hotpath
func (m *GMemoryManager) Insert(key CacheKey, buf *gpu.Buffer, nominal int64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	r := m.region(key.JobID)
	if _, dup := r.entries[key]; dup {
		m.metrics.Add(m.rejectsName, 1)
		return false
	}
	if nominal > r.capacity {
		m.metrics.Add(m.rejectsName, 1)
		return false
	}
	for r.used+nominal > r.capacity {
		if m.policy == StopWhenFull {
			m.metrics.Add(m.stopName, 1)
			return false
		}
		if !m.evictOldestLocked(r) {
			m.metrics.Add(m.rejectsName, 1)
			return false // everything pinned
		}
	}
	//gflink:allow-alloc cache-entry bookkeeping: one entry per cached block, bounded by the region capacity
	e := &cacheEntry{buf: buf, nominal: nominal, refs: 1}
	//gflink:allow-alloc FIFO eviction-order node, one per cached block
	e.elem = r.fifo.PushBack(key)
	//gflink:allow-alloc cache-entry registration, one per cached block
	r.entries[key] = e
	r.used += nominal
	m.metrics.Add(m.insertsName, 1)
	return true
}

// evictOldestLocked removes the oldest unpinned entry, freeing its
// device buffer. It reports whether anything was evicted.
//
//gflink:hotpath
func (m *GMemoryManager) evictOldestLocked(r *cacheRegion) bool {
	//gflink:allow-alloc FIFO bookkeeping walk on the eviction path, not the steady-state hit path
	for el := r.fifo.Front(); el != nil; el = el.Next() {
		key := el.Value.(CacheKey)
		e := r.entries[key]
		if e.refs > 0 {
			continue
		}
		//gflink:allow-alloc FIFO node removal on the eviction path
		r.fifo.Remove(el)
		delete(r.entries, key)
		r.used -= e.nominal
		m.dev.Free(e.buf)
		m.metrics.Add(m.evictionsName, 1)
		return true
	}
	return false
}

// CachedBytes sums the nominal sizes of the given keys present in this
// device's regions — the quantity Algorithm 5.1 maximizes when picking
// a GPU.
//
//gflink:hotpath
func (m *GMemoryManager) CachedBytes(keys []CacheKey) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n int64
	for _, k := range keys {
		if r, ok := m.regions[k.JobID]; ok {
			if e, ok := r.entries[k]; ok {
				n += e.nominal
			}
		}
	}
	return n
}

// Used reports the region occupancy for a job.
func (m *GMemoryManager) Used(jobID int) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if r, ok := m.regions[jobID]; ok {
		return r.used
	}
	return 0
}

// Entries reports the number of cached objects for a job.
func (m *GMemoryManager) Entries(jobID int) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if r, ok := m.regions[jobID]; ok {
		return len(r.entries)
	}
	return 0
}

// Reclaim evicts unpinned cache entries (oldest first, across regions
// in job order) until the device has at least need bytes free or
// nothing more can be evicted — the automatic-management behaviour that
// lets transient GWork allocations proceed under cache pressure.
func (m *GMemoryManager) Reclaim(need int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for m.dev.FreeBytes() < need {
		jobs := make([]int, 0, len(m.regions))
		for id := range m.regions {
			jobs = append(jobs, id)
		}
		sort.Ints(jobs)
		evicted := false
		for _, id := range jobs {
			if m.evictOldestLocked(m.regions[id]) {
				evicted = true
				break
			}
		}
		if !evicted {
			return
		}
	}
}

// ReleaseJob frees a job's whole cache region ("it is released when the
// job finishes"). Releasing with in-flight references panics: the job
// cannot finish while its work is still running.
func (m *GMemoryManager) ReleaseJob(jobID int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.regions[jobID]
	if !ok {
		return
	}
	keys := make([]CacheKey, 0, len(r.entries))
	for key := range r.entries {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Partition != b.Partition {
			return a.Partition < b.Partition
		}
		return a.Block < b.Block
	})
	for _, key := range keys {
		e := r.entries[key]
		if e.refs > 0 {
			panic(fmt.Sprintf("core: ReleaseJob(%d) with pinned cache entry %+v", jobID, key))
		}
		m.dev.Free(e.buf)
	}
	delete(m.regions, jobID)
}
