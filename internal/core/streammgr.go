package core

import (
	"fmt"
	"sync"
	"time"

	"gflink/internal/gpu"
	"gflink/internal/obs"
	"gflink/internal/vclock"
)

// SchedulerPolicy selects how Submit picks a GPU for a GWork.
type SchedulerPolicy int

const (
	// LocalityAware is Algorithm 5.1: prefer the GPU holding the most
	// cached input bytes.
	LocalityAware SchedulerPolicy = iota
	// RoundRobin ignores locality (the ablation baseline).
	RoundRobin
)

// GStreamManager is one worker's streaming dataflow engine (Section 5):
// it owns the GWork Scheduler, the GWork Pool (one FIFO queue per GPU)
// and the GStream Pool (one bulk of streams per GPU). TaskManager tasks
// produce GWork via Submit; stream workers consume it, each executing
// the three-stage H2D / kernel / D2H pipeline on its own CUDA stream.
type GStreamManager struct {
	clock    *vclock.Clock
	wrapper  *CUDAWrapper
	policy   SchedulerPolicy
	stealing bool
	chunking bool
	tracer   *obs.Tracer
	metrics  *obs.Registry
	node     int // worker index, used in metric names
	// workPool recycles GWork shells across submissions (Section 3.5.3's
	// GWork objects are short-lived and per-block; recycling keeps the
	// producer side of the pipeline allocation-free).
	workPool *WorkPool
	// Preregistered per-worker counter handles, so the scheduling hot
	// path never formats strings, hashes a name or takes the registry
	// lock.
	cntDirect, cntPooled, cntSteals *obs.Counter

	mu   sync.Mutex
	devs []*deviceState
	rr   int // round-robin cursor
	// scratchKeys is the reusable cache-key scratch of pickGPULocked,
	// guarded by mu like the rest of the scheduler state.
	scratchKeys []CacheKey

	// counters
	directDispatch int64
	pooled         int64
	steals         int64
}

type deviceState struct {
	idx     int
	dev     *gpu.Device
	mem     *GMemoryManager
	queue   vclock.FIFO[*GWork]        // this GPU's FIFO queue in the GWork Pool
	idle    vclock.FIFO[*streamWorker] // idle streams of this bulk
	streams []*streamWorker
	// cntH2D and cntD2H are the preregistered per-device transfer
	// counters ("xfer.h2d.bytes.gpuN" / "xfer.d2h.bytes.gpuN").
	cntH2D, cntD2H *obs.Counter
	// queueTrack is the trace track carrying this device's queue-wait
	// spans (kept off the stream tracks so parked work never overlaps
	// an executing span).
	queueTrack string
	// budget bounds the transient device memory of in-flight works
	// (device capacity minus the cache region), so concurrent streams
	// backpressure instead of running the device out of memory.
	budget    *vclock.Semaphore
	budgetCap int64
}

type streamWorker struct {
	mgr    *GStreamManager
	ds     *deviceState
	stream *gpu.Stream
	// alt is the second CUDA stream of the double-buffered chunked
	// pipeline; nil unless chunking is enabled (it would add a
	// virtual-clock process and perturb the deterministic schedule of
	// the pinned paper figures).
	alt   *gpu.Stream
	inbox *vclock.Queue[*GWork]
	track string // trace track of this stream's pipeline spans

	// Per-stream execution scratch, reused across the works this
	// (single-process) stream executes so the three-stage pipeline is
	// allocation-free at steady state. Reset by exec before each work.
	devBufs  []*gpu.Buffer
	acquired []CacheKey
	toCache  []int
	toFree   []*gpu.Buffer
	ctx      gpu.KernelCtx
	outArr   [1]*gpu.Buffer
	// tAfterH2D is the H2D-complete milestone of the current work,
	// written by the prebuilt markH2D callback (one closure per stream,
	// not per work; safe because a stream runs one work at a time).
	tAfterH2D time.Duration
	markH2D   func()
	// fut is the reusable launch future (one per stream, not per work;
	// safe because exec waits on each launch before issuing the next).
	fut *gpu.Future
}

// StreamConfig configures a GStreamManager. Clock, Wrapper and
// Memories are required; the zero value of every other field selects
// the default — 4 streams per GPU, Algorithm 5.1 scheduling, stealing
// enabled, no tracing.
type StreamConfig struct {
	Clock   *vclock.Clock
	Wrapper *CUDAWrapper
	// Memories holds one GMemoryManager per device of this worker.
	Memories []*GMemoryManager
	// StreamsPerGPU sizes each GStream Pool bulk (0 means 4).
	StreamsPerGPU int
	// Policy selects Algorithm 5.1 (default) or the RoundRobin ablation.
	Policy SchedulerPolicy
	// NoStealing disables Algorithm 5.2 (the zero value keeps it on).
	NoStealing bool
	// Tracer, when set, receives a span tree per executed GWork.
	Tracer *obs.Tracer
	// Metrics, when set, receives the scheduler counters and every
	// device's cache counters.
	Metrics *obs.Registry
	// Chunking enables chunked double-buffered GWork pipelining: the
	// three stages split into cost-model-chosen chunks and H2D of chunk
	// i+1 overlaps the kernel of chunk i on a second stream per worker.
	// Off by default; the monolithic pipeline stays byte-identical.
	Chunking bool
}

// StreamOption mutates a StreamConfig before construction.
type StreamOption func(*StreamConfig)

// WithTracer directs per-GWork span trees to t.
func WithTracer(t *obs.Tracer) StreamOption {
	return func(c *StreamConfig) { c.Tracer = t }
}

// WithMetrics directs scheduler and cache counters to r.
func WithMetrics(r *obs.Registry) StreamOption {
	return func(c *StreamConfig) { c.Metrics = r }
}

// WithStealing enables or disables Algorithm 5.2.
func WithStealing(enabled bool) StreamOption {
	return func(c *StreamConfig) { c.NoStealing = !enabled }
}

// WithScheduler selects the scheduling policy. (Formerly WithPolicy;
// renamed when the memory manager's WithPolicy eviction option took
// the name.)
func WithScheduler(p SchedulerPolicy) StreamOption {
	return func(c *StreamConfig) { c.Policy = p }
}

// WithStreamsPerGPU sizes each GStream Pool bulk.
func WithStreamsPerGPU(n int) StreamOption {
	return func(c *StreamConfig) { c.StreamsPerGPU = n }
}

// WithChunking enables chunked double-buffered pipelining.
func WithChunking(enabled bool) StreamOption {
	return func(c *StreamConfig) { c.Chunking = enabled }
}

// NewStreamManager builds the manager from cfg with opts applied.
// StreamsPerGPU streams are created per device; all start idle.
func NewStreamManager(cfg StreamConfig, opts ...StreamOption) *GStreamManager {
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.StreamsPerGPU <= 0 {
		cfg.StreamsPerGPU = 4
	}
	m := &GStreamManager{
		clock: cfg.Clock, wrapper: cfg.Wrapper,
		policy: cfg.Policy, stealing: !cfg.NoStealing,
		chunking: cfg.Chunking,
		tracer:   cfg.Tracer, metrics: cfg.Metrics,
		workPool: NewWorkPool(cfg.Clock),
	}
	if len(cfg.Memories) > 0 {
		m.node = cfg.Memories[0].Device().Node
	}
	m.cntDirect = m.metrics.Counter(fmt.Sprintf("sched.direct.w%d", m.node))
	m.cntPooled = m.metrics.Counter(fmt.Sprintf("sched.pooled.w%d", m.node))
	m.cntSteals = m.metrics.Counter(fmt.Sprintf("sched.steals.w%d", m.node))
	for i, mem := range cfg.Memories {
		mem.observe(cfg.Metrics, cfg.Tracer)
		budgetCap := mem.Device().Profile.MemBytes - mem.RegionCap()
		if min := mem.Device().Profile.MemBytes / 4; budgetCap < min {
			budgetCap = min
		}
		ds := &deviceState{
			idx: i, dev: mem.Device(), mem: mem,
			queueTrack: fmt.Sprintf("w%d/gpu%d/queue", mem.Device().Node, i),
			budget:     vclock.NewSemaphore(cfg.Clock, fmt.Sprintf("gpu%d-membudget", mem.Device().ID), budgetCap),
			budgetCap:  budgetCap,
			cntH2D:     m.metrics.Counter(fmt.Sprintf("xfer.h2d.bytes.gpu%d", mem.Device().ID)),
			cntD2H:     m.metrics.Counter(fmt.Sprintf("xfer.d2h.bytes.gpu%d", mem.Device().ID)),
		}
		for s := 0; s < cfg.StreamsPerGPU; s++ {
			sw := &streamWorker{
				mgr: m,
				ds:  ds,
				// Streams are created at deployment startup, before any
				// measured job, so no control-channel time is charged.
				stream: mem.Device().NewStream(cfg.Wrapper.model.CPU),
				inbox:  vclock.NewQueue[*GWork](cfg.Clock),
				track:  fmt.Sprintf("w%d/gpu%d/s%d", mem.Device().Node, i, s),
			}
			sw.markH2D = func() { sw.tAfterH2D = sw.mgr.clock.Now() }
			sw.fut = gpu.NewFuture(cfg.Clock)
			if cfg.Chunking {
				// The double-buffer lane. Created only when chunking is
				// on: a stream is a virtual-clock process, and spawning
				// it unconditionally would perturb the deterministic
				// schedule of every pinned figure.
				sw.alt = mem.Device().NewStream(cfg.Wrapper.model.CPU)
			}
			ds.streams = append(ds.streams, sw)
			ds.idle.Push(sw)
			cfg.Clock.Go(fmt.Sprintf("gstream-w%d-g%d-s%d", mem.Device().Node, i, s), sw.run)
		}
		m.devs = append(m.devs, ds)
	}
	return m
}

// NewGStreamManager builds the manager from positional arguments.
//
// Deprecated: use NewStreamManager with a StreamConfig plus functional
// options. This shim is kept for one release.
func NewGStreamManager(clock *vclock.Clock, wrapper *CUDAWrapper, mems []*GMemoryManager, streamsPerGPU int, policy SchedulerPolicy, stealing bool) *GStreamManager {
	return NewStreamManager(StreamConfig{
		Clock:         clock,
		Wrapper:       wrapper,
		Memories:      mems,
		StreamsPerGPU: streamsPerGPU,
		Policy:        policy,
	}, WithStealing(stealing))
}

// Devices returns the number of GPUs managed.
func (m *GStreamManager) Devices() int { return len(m.devs) }

// Memory returns device i's GMemoryManager.
func (m *GStreamManager) Memory(i int) *GMemoryManager { return m.devs[i].mem }

// Pool returns the manager's GWork recycling pool. Producers may Get
// shells from it instead of allocating; a Get'd shell must come back
// via Put once its completion event has been consumed.
func (m *GStreamManager) Pool() *WorkPool { return m.workPool }

// Close stops every stream worker by closing its inbox. Close must
// only be called once all outstanding work has completed: it panics if
// any GWork is still queued in the GWork Pool, since work parked there
// would otherwise be silently dropped.
func (m *GStreamManager) Close() {
	m.mu.Lock()
	for _, ds := range m.devs {
		if ds.queue.Len() > 0 {
			m.mu.Unlock()
			panic("core: GStreamManager.Close with queued GWork")
		}
	}
	devs := m.devs
	m.mu.Unlock()
	for _, ds := range devs {
		for _, sw := range ds.streams {
			sw.inbox.Close()
		}
	}
}

// Stats reports the scheduling counters (direct dispatches to idle
// streams, GWork Pool enqueues, steals) as one snapshot.
func (m *GStreamManager) Stats() obs.SchedulerStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return obs.SchedulerStats{Direct: m.directDispatch, Pooled: m.pooled, Steals: m.steals}
}

// Submit schedules w per Algorithm 5.1. It never blocks the producer:
// when every stream is busy the work parks in the GWork Pool.
//
//gflink:hotpath
func (m *GStreamManager) Submit(w *GWork) {
	if w.done == nil {
		//gflink:allow-alloc unpooled submission; WorkPool shells arrive with their event preset
		w.done = vclock.NewEvent(m.clock)
	}
	w.submitT = m.clock.Now()
	w.stolenFrom = -1
	m.mu.Lock()
	gid := m.pickGPULocked(w)

	var sw *streamWorker
	if gid >= 0 && m.devs[gid].idle.Len() > 0 {
		// Line 6: an idle stream on the locality-preferred GPU.
		sw = m.popIdleLocked(gid)
	} else {
		// Lines 3-4 / 8-9: the bulk with the most idle streams.
		if b := m.bulkWithMostIdleLocked(); b >= 0 {
			sw = m.popIdleLocked(b)
		}
	}
	if sw == nil {
		// Lines 11-18: no idle stream anywhere; park in the pool.
		q := gid
		if q < 0 {
			q = m.queueWithLeastWorkLocked()
		}
		m.devs[q].queue.Push(w)
		m.pooled++
		m.mu.Unlock()
		m.cntPooled.Add(1)
		return
	}
	m.directDispatch++
	m.mu.Unlock()
	m.cntDirect.Add(1)
	sw.inbox.Put(w)
}

// pickGPULocked implements the GMemoryManager consultation of
// Algorithm 5.1: the GPU with the biggest sum of the work's cached
// input bytes resident in device memory, or -1 when nothing is cached
// anywhere (GID null). Under RoundRobin it cycles through devices.
//
//gflink:hotpath
func (m *GStreamManager) pickGPULocked(w *GWork) int {
	if m.policy == RoundRobin {
		gid := m.rr % len(m.devs)
		m.rr++
		return gid
	}
	keys := m.scratchKeys[:0]
	for _, in := range w.In {
		if in.Cache {
			//gflink:allow-alloc amortized growth of the key scratch, reused under mu
			keys = append(keys, in.Key)
		}
	}
	m.scratchKeys = keys
	if len(keys) == 0 {
		return -1
	}
	best, bestBytes := -1, int64(0)
	for i, ds := range m.devs {
		if n := ds.mem.CachedBytes(keys); n > bestBytes {
			best, bestBytes = i, n
		}
	}
	return best
}

//gflink:hotpath
func (m *GStreamManager) popIdleLocked(gid int) *streamWorker {
	sw, _ := m.devs[gid].idle.Pop()
	return sw
}

//gflink:hotpath
func (m *GStreamManager) bulkWithMostIdleLocked() int {
	best, most := -1, 0
	for i, ds := range m.devs {
		if ds.idle.Len() > most {
			best, most = i, ds.idle.Len()
		}
	}
	return best
}

//gflink:hotpath
func (m *GStreamManager) queueWithLeastWorkLocked() int {
	best, least := 0, int(^uint(0)>>1)
	for i, ds := range m.devs {
		if ds.queue.Len() < least {
			best, least = i, ds.queue.Len()
		}
	}
	return best
}

// stealLocked implements Algorithm 5.2 for a stream of GPU gid: first
// the GPU's own queue, then (when stealing is enabled) the queue with
// the most pending GWork.
//
//gflink:hotpath
func (m *GStreamManager) stealLocked(gid int) *GWork {
	if w, ok := m.devs[gid].queue.Pop(); ok {
		return w
	}
	if !m.stealing {
		return nil
	}
	best, most := -1, 0
	for i, ds := range m.devs {
		if ds.queue.Len() > most {
			best, most = i, ds.queue.Len()
		}
	}
	if best < 0 {
		return nil
	}
	w, _ := m.devs[best].queue.Pop()
	m.steals++
	w.stolenFrom = m.devs[best].dev.ID
	m.cntSteals.Add(1)
	return w
}

// nextOrIdle atomically either takes more work for sw or parks it on
// the idle list, so no submission can fall between the check and the
// park.
//
//gflink:hotpath
func (m *GStreamManager) nextOrIdle(sw *streamWorker) *GWork {
	m.mu.Lock()
	defer m.mu.Unlock()
	if w := m.stealLocked(sw.ds.idx); w != nil {
		return w
	}
	sw.ds.idle.Push(sw)
	return nil
}

// run is a stream worker's consumer loop: execute directly handed work,
// then keep pulling from the GWork Pool until it runs dry, then go
// idle. (This is the event-driven equivalent of the paper's periodic
// Stealing poll with an idle-timeout thread release.)
//
//gflink:hotpath
func (sw *streamWorker) run() {
	for {
		w, ok := sw.inbox.Get()
		if !ok {
			return
		}
		for w != nil {
			sw.exec(w)
			w = sw.mgr.nextOrIdle(sw)
		}
	}
}

// scratchBufs prepares the per-stream scratch for a work with n inputs
// and returns the zeroed device-buffer slot slice. The scratch slices
// only grow to the widest work this stream has seen, so steady-state
// executions reuse them allocation-free.
//
//gflink:hotpath
func (sw *streamWorker) scratchBufs(n int) []*gpu.Buffer {
	if cap(sw.devBufs) < n {
		//gflink:allow-alloc scratch growth to the widest GWork this stream has seen
		sw.devBufs = make([]*gpu.Buffer, n)
	}
	s := sw.devBufs[:n]
	for i := range s {
		s[i] = nil
	}
	sw.acquired = sw.acquired[:0]
	sw.toCache = sw.toCache[:0]
	sw.toFree = sw.toFree[:0]
	return s
}

// malloc allocates device memory with a cache-reclaim fallback: when
// device memory is tight, evict unpinned cache entries and retry once.
//
//gflink:hotpath
func (sw *streamWorker) malloc(nominal int64, real int) (*gpu.Buffer, error) {
	b, err := sw.mgr.wrapper.Malloc(sw.ds.dev, nominal, real)
	if err != nil {
		//gflink:allow-alloc cache-reclaim retry: memory-pressure cold path
		sw.ds.mem.Reclaim(nominal)
		b, err = sw.mgr.wrapper.Malloc(sw.ds.dev, nominal, real)
	}
	return b, err
}

// fail completes w with err after releasing pins and scratch buffers.
// A failed work still queued and still occupied the stream, so the
// trace records the queue wait and a failed gwork span instead of a
// hole where the work died.
func (sw *streamWorker) fail(w *GWork, tStart time.Duration, cacheHits, cacheMisses int, err error) {
	mgr := sw.mgr
	dev := sw.ds.dev
	for _, k := range sw.acquired {
		sw.ds.mem.Release(k)
	}
	for _, b := range sw.toFree {
		mgr.wrapper.Free(dev, b)
	}
	w.err = err
	w.device = dev
	w.report = obs.WorkReport{
		DeviceID: dev.ID, Worker: dev.Node,
		QueueWait:   tStart - w.submitT,
		CacheHits:   cacheHits,
		CacheMisses: cacheMisses,
		StolenFrom:  w.stolenFrom,
	}
	mgr.tracer.Record(sw.ds.queueTrack, "queue", "queue:"+w.ExecuteName,
		w.submitT, tStart, obs.Int("device", int64(dev.ID)))
	mgr.tracer.Record(sw.track, "gwork", w.ExecuteName,
		tStart, mgr.clock.Now(),
		obs.Int("device", int64(dev.ID)),
		obs.Int("job", int64(w.JobID)),
		obs.Str("error", err.Error()))
	w.done.Set()
}

// exec runs one GWork through the three-stage pipeline on this stream,
// or through the chunked double-buffered pipeline when chunking is
// enabled and the cost model favours splitting.
//
//gflink:hotpath
func (sw *streamWorker) exec(w *GWork) {
	//gflink:allow-alloc chunked pipeline: opt-in path off the pinned hot route
	if c := sw.chunkCount(w); c > 1 {
		//gflink:allow-alloc chunked pipeline: opt-in path off the pinned hot route
		sw.execChunked(w, c)
		return
	}
	mgr := sw.mgr
	dev := sw.ds.dev
	mem := sw.ds.mem
	wr := mgr.wrapper

	// Admission control: reserve the work's worst-case transient device
	// memory atomically so concurrent streams throttle instead of
	// failing allocations mid-flight.
	footprint := w.OutNominal
	for _, in := range w.In {
		footprint += in.Nominal
	}
	if footprint > sw.ds.budgetCap {
		footprint = sw.ds.budgetCap
	}
	if footprint > 0 {
		sw.ds.budget.Acquire(footprint)
		defer sw.ds.budget.Release(footprint)
	}

	devBufs := sw.scratchBufs(len(w.In))
	var cacheHits, cacheMisses int

	tStart := mgr.clock.Now()
	// Stage 1: host-to-device input transfers, skipping cache hits.
	for i, in := range w.In {
		if in.Cache {
			if buf, ok := mem.Acquire(in.Key); ok {
				devBufs[i] = buf
				//gflink:allow-alloc amortized growth of the pin scratch
				sw.acquired = append(sw.acquired, in.Key)
				cacheHits++
				continue
			}
			cacheMisses++
		}
		buf, err := sw.malloc(in.Nominal, len(in.Buf.Bytes()))
		if err != nil {
			//gflink:allow-alloc failure diagnostic: cold path that ends the work
			sw.fail(w, tStart, cacheHits, cacheMisses, fmt.Errorf("allocating input %d of %q: %w", i, w.ExecuteName, err))
			return
		}
		devBufs[i] = buf
		if in.Cache {
			//gflink:allow-alloc amortized growth of the cache-insert scratch
			sw.toCache = append(sw.toCache, i)
		} else {
			//gflink:allow-alloc amortized growth of the free-list scratch
			sw.toFree = append(sw.toFree, buf)
		}
		wr.HostRegister(in.Buf)
		if in.Ranges != nil {
			// Column projection: ship only the referenced byte ranges,
			// charged at the (projected) nominal volume.
			wr.MemcpyH2DRangesAsync(sw.stream, buf, in.Buf, in.Ranges, in.Nominal)
		} else {
			wr.MemcpyH2DAsync(sw.stream, buf, in.Buf, in.Nominal)
		}
		sw.ds.cntH2D.Add(in.Nominal)
	}

	outBuf, err := sw.malloc(w.OutNominal, len(w.Out.Bytes()))
	if err != nil {
		//gflink:allow-alloc failure diagnostic: cold path that ends the work
		sw.fail(w, tStart, cacheHits, cacheMisses, fmt.Errorf("allocating output of %q: %w", w.ExecuteName, err))
		return
	}
	//gflink:allow-alloc amortized growth of the free-list scratch
	sw.toFree = append(sw.toFree, outBuf)
	wr.HostRegister(w.Out)

	sw.tAfterH2D = 0
	sw.stream.Callback(sw.markH2D)

	// Stage 2: kernel execution, on the stream's reusable launch
	// context (safe: a stream runs one work at a time, and exec waits
	// on the launch future before returning).
	sw.outArr[0] = outBuf
	ctx := &sw.ctx
	*ctx = gpu.KernelCtx{
		In:        devBufs,
		Out:       sw.outArr[:],
		N:         w.Size,
		Nominal:   w.Nominal,
		GridSize:  w.GridSize,
		BlockSize: w.BlockSize,
		Args:      w.Args,
	}
	if w.Coalesce > 0 {
		ctx.SetCoalesce(w.Coalesce)
	}
	wr.LaunchAsyncInto(sw.stream, sw.fut, w.ExecuteName, ctx)

	// Stage 3: device-to-host output transfer.
	wr.MemcpyD2HAsync(sw.stream, w.Out, outBuf, w.OutNominal)
	sw.ds.cntD2H.Add(w.OutNominal)
	wr.StreamSynchronize(sw.stream)
	kernelDur, kerr := sw.fut.Wait()

	// Post-execution bookkeeping: cache fresh inputs, then drop pins and
	// scratch allocations.
	for _, i := range sw.toCache {
		in := w.In[i]
		if mem.Insert(in.Key, devBufs[i], in.Nominal) {
			//gflink:allow-alloc amortized growth of the pin scratch
			sw.acquired = append(sw.acquired, in.Key)
		} else {
			//gflink:allow-alloc amortized growth of the free-list scratch
			sw.toFree = append(sw.toFree, devBufs[i])
		}
	}
	for _, k := range sw.acquired {
		mem.Release(k)
	}
	for _, b := range sw.toFree {
		wr.Free(dev, b)
	}

	tEnd := mgr.clock.Now()
	tAfterH2D := sw.tAfterH2D
	d2h := tEnd - tAfterH2D - kernelDur
	if d2h < 0 {
		d2h = 0
	}
	w.report = obs.WorkReport{
		DeviceID: dev.ID, Worker: dev.Node,
		QueueWait:   tStart - w.submitT,
		H2D:         tAfterH2D - tStart,
		Kernel:      kernelDur,
		D2H:         d2h,
		CacheHits:   cacheHits,
		CacheMisses: cacheMisses,
		StolenFrom:  w.stolenFrom,
	}
	w.err = kerr
	w.device = dev
	if mgr.tracer.Enabled() {
		mgr.tracer.RecordGWork(sw.track, sw.ds.queueTrack, w.ExecuteName, w.submitT, tStart, w.report, obs.Int("job", int64(w.JobID)))
	}
	w.done.Set()
}
