package core

import (
	"sort"

	"gflink/internal/gpu"
	"gflink/internal/membuf"
	"gflink/internal/obs"
)

// The host paging tier (DESIGN.md "Tiered memory", invariant 11).
//
// When WithHostTierBytes arms the tier, a victim's bytes are not lost
// on eviction: they demote over PCIe into a membuf-backed host page,
// spill onward to simulated disk when the host tier overflows, and
// promote back to the device when a later Acquire asks for the key.
// Every movement charges only simulated time — the real (scaled-down)
// bytes are copied verbatim at each hop, so a promoted buffer is
// bit-identical to the one that was evicted and output bytes never
// change (invariant 11). None of these functions may be entered while
// m.mu is held: they sleep on the virtual clock (the lockhold
// invariant), taking the mutex themselves only around bookkeeping.

// hostPage is one demoted cache object. Resident pages hold their real
// bytes in an off-heap HBuffer and sit on the manager's oldest-first
// spill list; spilled pages keep the bytes in a simulated on-disk blob
// and leave the list.
type hostPage struct {
	key     CacheKey
	nominal int64
	real    int             // real (scaled-down) byte length
	hbuf    *membuf.HBuffer // resident backing; nil when spilled or real == 0
	disk    []byte          // simulated on-disk copy when spilled
	spilled bool
	prev    *hostPage
	next    *hostPage
}

// pagePushBackLocked appends p as the newest resident page.
func (m *GMemoryManager) pagePushBackLocked(p *hostPage) {
	p.prev = m.hostTail
	p.next = nil
	if m.hostTail != nil {
		m.hostTail.next = p
	} else {
		m.hostHead = p
	}
	m.hostTail = p
}

// pageUnlinkLocked removes p from the resident list.
func (m *GMemoryManager) pageUnlinkLocked(p *hostPage) {
	if p.prev != nil {
		p.prev.next = p.next
	} else {
		m.hostHead = p.next
	}
	if p.next != nil {
		p.next.prev = p.prev
	} else {
		m.hostTail = p.prev
	}
	p.prev, p.next = nil, nil
}

// pageLocked returns a zeroed hostPage shell from the free list.
func (m *GMemoryManager) pageLocked() *hostPage {
	if n := len(m.freePages); n > 0 {
		p := m.freePages[n-1]
		m.freePages[n-1] = nil
		m.freePages = m.freePages[:n-1]
		return p
	}
	return &hostPage{}
}

// recyclePageLocked releases a page's backing (host buffer or disk
// blob) and returns the shell to the free list.
func (m *GMemoryManager) recyclePageLocked(p *hostPage) {
	if p.hbuf != nil {
		p.hbuf.Free()
	}
	*p = hostPage{}
	m.freePages = append(m.freePages, p)
}

// takePageLocked removes and returns the page cached under key, or nil.
// Called with m.mu held (from Acquire); the caller promotes the page
// after dropping the lock.
func (m *GMemoryManager) takePageLocked(key CacheKey) *hostPage {
	pg, ok := m.hostPages[key]
	if !ok {
		return nil
	}
	delete(m.hostPages, key)
	if !pg.spilled {
		m.pageUnlinkLocked(pg)
		m.hostUsed -= pg.nominal
	}
	return pg
}

// settle demotes a batch of entries evicted under the lock. Runs
// without m.mu held; only reachable with the host tier enabled.
func (m *GMemoryManager) settle(pend []*cacheEntry) {
	for i, e := range pend {
		m.demote(e)
		pend[i] = nil
	}
	m.mu.Lock()
	if m.pending == nil {
		m.pending = pend[:0]
	}
	m.mu.Unlock()
}

// demote moves an evicted entry's bytes from the device into the host
// tier: one D2H transfer through the pre-opened redirection channel
// (GFlinkTransferTime covers the JNI redirect and DMA setup), then the
// device buffer is freed. Overflowing the host tier spills the oldest
// resident pages to disk. The entry must already be detached from its
// region and unpinned; m.mu must not be held.
//
//gflink:gated hosttier -- reachable only when the host paging tier is enabled; invariant 11 holds it to byte-preserving copies
func (m *GMemoryManager) demote(e *cacheEntry) {
	key, nominal := e.key, e.nominal
	t0 := m.clock.Now()
	m.clock.Sleep(m.model.PCIe.GFlinkTransferTime(nominal))
	src := e.buf.Bytes()
	var hb *membuf.HBuffer
	if len(src) > 0 {
		hb = m.hostPool.MustAllocate(len(src))
		//gflink:real-copy -- demotion preserves the victim's real bytes verbatim (invariant 11)
		copy(hb.Bytes(), src)
	}
	real := len(src)
	m.dev.Free(e.buf)
	m.cntDemotions.Add(1)
	m.tracer.Record(m.memTrack, "mem", "demote", t0, m.clock.Now(), obs.Int("nominal", nominal))

	var spills []*hostPage
	m.mu.Lock()
	m.recycleEntryLocked(e)
	if old, ok := m.hostPages[key]; ok {
		// A stale copy of the same key: the block was re-inserted and
		// re-evicted while an earlier demotion or spill was in flight.
		// The bytes we carry are the newest.
		delete(m.hostPages, key)
		if !old.spilled {
			m.pageUnlinkLocked(old)
			m.hostUsed -= old.nominal
		}
		m.recyclePageLocked(old)
	}
	pg := m.pageLocked()
	pg.key, pg.nominal, pg.real, pg.hbuf = key, nominal, real, hb
	m.hostPages[key] = pg
	m.pagePushBackLocked(pg)
	m.hostUsed += nominal
	for m.hostUsed > m.hostTierBytes && m.hostHead != nil {
		p := m.hostHead
		m.pageUnlinkLocked(p)
		delete(m.hostPages, p.key)
		m.hostUsed -= p.nominal
		spills = append(spills, p)
	}
	m.mu.Unlock()
	for _, p := range spills {
		m.spill(p)
	}
}

// spill writes one page to the simulated spill disk, freeing its host
// buffer. The page has already left the tier's map and resident list;
// it re-enters the map as a spilled page once the disk write is
// charged.
//
//gflink:gated hosttier -- reachable only when the host paging tier is enabled; invariant 11 holds it to byte-preserving copies
func (m *GMemoryManager) spill(p *hostPage) {
	t0 := m.clock.Now()
	m.clock.Sleep(m.spillDisk.WriteTime(p.nominal))
	if p.hbuf != nil {
		//gflink:real-copy -- the disk blob is a verbatim copy of the page's real bytes (invariant 11)
		p.disk = append(p.disk[:0], p.hbuf.Bytes()...)
		p.hbuf.Free()
		p.hbuf = nil
	}
	p.spilled = true
	m.cntSpills.Add(1)
	m.tracer.Record(m.memTrack, "mem", "spill", t0, m.clock.Now(), obs.Int("nominal", p.nominal))
	m.mu.Lock()
	if _, dup := m.hostPages[p.key]; dup {
		// A fresher copy of the key re-entered the tier while the disk
		// write was in flight; ours is stale.
		m.recyclePageLocked(p)
	} else {
		m.hostPages[p.key] = p
	}
	m.mu.Unlock()
}

// promote moves a page's bytes back onto the device: a disk read first
// when the page was spilled (counted as a reload), then one H2D
// transfer, then the buffer re-enters the region through Insert —
// pinned with one reference like any fresh insertion, so the caller
// must Release it. On failure (device exhausted even after Reclaim, or
// the region refuses the entry) the lookup degrades to a plain miss
// and the caller re-transfers as usual. m.mu must not be held.
//
//gflink:gated hosttier -- reachable only when the host paging tier is enabled; invariant 11 holds it to byte-preserving copies
func (m *GMemoryManager) promote(key CacheKey, pg *hostPage) (*gpu.Buffer, bool) {
	t0 := m.clock.Now()
	reload := pg.spilled
	if reload {
		m.clock.Sleep(m.spillDisk.ReadTime(pg.nominal))
	}
	m.clock.Sleep(m.model.PCIe.GFlinkTransferTime(pg.nominal))
	buf, err := m.dev.Malloc(pg.nominal, pg.real)
	if err != nil {
		m.Reclaim(pg.nominal)
		buf, err = m.dev.Malloc(pg.nominal, pg.real)
	}
	if err != nil {
		m.restorePage(pg)
		m.cntMisses.Add(1)
		return nil, false
	}
	if pg.hbuf != nil {
		//gflink:real-copy -- promotion restores the demoted real bytes verbatim (invariant 11)
		copy(buf.Bytes(), pg.hbuf.Bytes())
	} else {
		//gflink:real-copy -- promotion restores the spilled real bytes verbatim (invariant 11)
		copy(buf.Bytes(), pg.disk)
	}
	nominal := pg.nominal
	m.mu.Lock()
	m.recyclePageLocked(pg)
	m.mu.Unlock()
	if !m.Insert(key, buf, nominal) {
		// The region cannot take the entry back (stop policy, all
		// pinned, or a racing insert won); degrade to a miss.
		m.dev.Free(buf)
		m.cntMisses.Add(1)
		return nil, false
	}
	if reload {
		m.cntReloads.Add(1)
		m.tracer.Record(m.memTrack, "mem", "reload", t0, m.clock.Now(), obs.Int("nominal", nominal))
	} else {
		m.tracer.Record(m.memTrack, "mem", "promote", t0, m.clock.Now(), obs.Int("nominal", nominal))
	}
	m.cntPromotions.Add(1)
	return buf, true
}

// restorePage puts a page back into the tier after a failed promotion,
// charging nothing (the bytes never left the host).
func (m *GMemoryManager) restorePage(pg *hostPage) {
	m.mu.Lock()
	if _, dup := m.hostPages[pg.key]; dup {
		m.recyclePageLocked(pg)
	} else {
		m.hostPages[pg.key] = pg
		if !pg.spilled {
			m.pagePushBackLocked(pg)
			m.hostUsed += pg.nominal
		}
	}
	m.mu.Unlock()
}

// releaseJobPagesLocked drops every host-tier page and spilled blob a
// job owns, in deterministic key order. Called with m.mu held from
// ReleaseJob.
func (m *GMemoryManager) releaseJobPagesLocked(jobID int) {
	if len(m.hostPages) == 0 {
		return
	}
	keys := make([]CacheKey, 0, len(m.hostPages))
	for k := range m.hostPages {
		if k.JobID == jobID {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Partition != b.Partition {
			return a.Partition < b.Partition
		}
		return a.Block < b.Block
	})
	for _, k := range keys {
		pg := m.hostPages[k]
		delete(m.hostPages, k)
		if !pg.spilled {
			m.pageUnlinkLocked(pg)
			m.hostUsed -= pg.nominal
		}
		m.recyclePageLocked(pg)
	}
}
