package core

import (
	"sync"

	"gflink/internal/vclock"
)

// WorkPool recycles GWork shells so that steady-state submission —
// the producer half of the paper's producer-consumer execution model —
// allocates nothing: the shell, its In slice backing and its completion
// event are all reused across works. Get/Put pairs are enforced by the
// gflink-vet poolsafe analyzer; the GStreamManager owns one pool
// (Streams.Pool()) shared by every producer task.
//
// A GWork obtained from Get must not be touched after Put, and Put must
// run only after Wait returned (the completion event is Reset for the
// next user, which panics if anything is still blocked on it).
type WorkPool struct {
	clock *vclock.Clock
	mu    sync.Mutex
	free  []*GWork
}

// NewWorkPool returns an empty pool whose shells' completion events are
// bound to clock.
func NewWorkPool(clock *vclock.Clock) *WorkPool {
	return &WorkPool{clock: clock}
}

// Get returns a zeroed GWork shell with its completion event preset,
// ready for the caller to fill and Submit. The shell must come back via
// Put (or have its ownership visibly transferred) on every path.
//
//gflink:hotpath
//gflink:pool
func (p *WorkPool) Get() *GWork {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		w := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return w
	}
	p.mu.Unlock()
	//gflink:allow-alloc pool cold start: shell and completion event are created once, then recycled
	return &GWork{done: vclock.NewEvent(p.clock)}
}

// Put recycles a completed GWork. The completion event is rearmed and
// the In backing array is kept (element-zeroed so cached *HBuffer
// pointers don't pin host memory); every other field — including Args,
// whose backing belongs to the submitter — is dropped.
//
//gflink:hotpath
func (p *WorkPool) Put(w *GWork) {
	if w == nil {
		return
	}
	if w.done == nil {
		panic("core: WorkPool.Put of a GWork that was not pooled")
	}
	ev := w.done
	ev.Reset()
	for i := range w.In {
		w.In[i] = Input{}
	}
	*w = GWork{done: ev, In: w.In[:0]}
	p.mu.Lock()
	//gflink:allow-alloc amortized free-list growth, bounded by peak in-flight works
	p.free = append(p.free, w)
	p.mu.Unlock()
}
