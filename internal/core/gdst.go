package core

import (
	"fmt"

	"gflink/internal/costmodel"
	"gflink/internal/flink"
	"gflink/internal/gpu"
	"gflink/internal/gstruct"
	"gflink/internal/membuf"
	"gflink/internal/vclock"
)

// Block is one page-sized chunk of a GDST: GStruct records stored as
// raw bytes in one off-heap HBuffer, never straddling the page boundary
// (Section 5.1), so the block can be DMA'd to a device as-is.
type Block struct {
	Schema *gstruct.Schema
	Layout gstruct.Layout
	Buf    *membuf.HBuffer
	// N is the real record count; Nominal the paper-scale count.
	N       int
	Nominal int64
	// Partition and Index form the default cache key.
	Partition, Index int
}

// View returns a typed accessor over the block's bytes.
func (b *Block) View() gstruct.View {
	return gstruct.MustView(b.Schema, b.Layout, b.Buf.Bytes(), b.N)
}

// BytesPerElem returns the per-record byte footprint under the block's
// layout.
func (b *Block) BytesPerElem() int { return b.Schema.Size(b.Layout, 1) }

// NominalBytes returns the block's paper-scale byte size — what the DMA
// engine is charged for.
func (b *Block) NominalBytes() int64 { return b.Nominal * int64(b.BytesPerElem()) }

// Key returns the block's default cache key within a job.
func (b *Block) Key(jobID int) CacheKey {
	return CacheKey{JobID: jobID, Partition: b.Partition, Block: b.Index}
}

// GDST is a GPU-based DST (Section 3.5.1): a distributed dataset of
// GStruct blocks.
type GDST = *flink.Dataset[*Block]

// NewGDST creates a GDST of nominal records of the given schema spread
// over parallelism partitions, splitting each partition into page-sized
// blocks. fill populates real record ord (the element's index within
// the block view) given its nominal ordinal, keeping generation
// deterministic under any scale divisor.
func NewGDST(g *GFlink, j *flink.Job, schema *gstruct.Schema, layout gstruct.Layout, nominal int64, parallelism int, fill func(part int, v gstruct.View, i int, ordinal int64)) GDST {
	if parallelism <= 0 {
		parallelism = g.Cluster.Parallelism()
	}
	perElem := schema.Size(layout, 1)
	blockCap := membuf.ElemsPerPage(g.Cfg.Config.PageSize, perElem)
	if blockCap <= 0 {
		panic(fmt.Sprintf("core: %s records (%dB) larger than a page (%dB)", schema.Name(), perElem, g.Cfg.Config.PageSize))
	}
	div := g.Cfg.Config.ScaleDivisor
	per := nominal / int64(parallelism)
	parts := make([]flink.Partition[*Block], parallelism)
	for p := 0; p < parallelism; p++ {
		nomPart := per
		if p == parallelism-1 {
			nomPart = nominal - per*int64(parallelism-1)
		}
		realPart := nomPart / div
		if realPart == 0 && nomPart > 0 {
			realPart = 1
		}
		worker := p % g.Cfg.Config.Workers
		pool := g.Cluster.TaskManagers[worker].Pool
		var blocks []*Block
		var done int64
		var nomDone int64
		// A block must fit the page in real bytes AND represent a bounded
		// nominal payload: at paper scale the page rule would split it,
		// and the scale-down must not recombine blocks into device-sized
		// transfers.
		maxNomBytesPerBlock := g.Cfg.MaxBlockNominal
		if maxNomBytesPerBlock <= 0 {
			maxNomBytesPerBlock = 128 << 20
		}
		numBlocks := (realPart + int64(blockCap) - 1) / int64(blockCap)
		if byNom := (nomPart*int64(perElem) + maxNomBytesPerBlock - 1) / maxNomBytesPerBlock; byNom > numBlocks {
			numBlocks = byNom
		}
		if numBlocks > realPart {
			numBlocks = realPart
		}
		if numBlocks < 1 {
			numBlocks = 1
		}
		perBlockReal := (realPart + numBlocks - 1) / numBlocks
		if perBlockReal > int64(blockCap) {
			perBlockReal = int64(blockCap)
		}
		for bi := 0; done < realPart; bi++ {
			n := realPart - done
			if n > perBlockReal {
				n = perBlockReal
			}
			nom := nomPart * n / realPart
			if done+n == realPart {
				nom = nomPart - nomDone
			}
			buf := pool.MustAllocate(schema.Size(layout, int(n)))
			b := &Block{Schema: schema, Layout: layout, Buf: buf, N: int(n), Nominal: nom, Partition: p, Index: bi}
			v := b.View()
			for i := 0; i < int(n); i++ {
				fill(p, v, i, (done+int64(i))*div)
			}
			blocks = append(blocks, b)
			done += n
			nomDone += nom
		}
		parts[p] = flink.Partition[*Block]{Worker: worker, Items: blocks, Nominal: nomPart}
	}
	return flink.FromPartitions(j, perElem, parts)
}

// GPUMapSpec configures a gpuMapPartition operator (the paper's
// GPU-based Mapper, Section 3.5.2): which kernel to run per block, the
// output shape, cache directives and extra inputs (e.g., broadcast
// variables such as KMeans centroids).
type GPUMapSpec struct {
	// Name labels the operator; Kernel is the registered kernel entry
	// (the GWork executeName).
	Name   string
	Kernel string
	// OutSchema and OutLayout shape the output blocks.
	OutSchema *gstruct.Schema
	OutLayout gstruct.Layout
	// OutElems maps input to output element counts; nil means identity
	// (a map); a constant function makes the operator a per-block
	// reducer.
	OutElems func(in int) int
	// CacheInput marks the input blocks for the GPU cache.
	CacheInput bool
	// Args are scalar kernel arguments.
	Args []int64
	// Extra supplies additional per-block inputs.
	Extra func(b *Block) []Input
	// FixedOutput marks the output as scale-independent (a per-block
	// reduction partial such as centroid sums): its nominal size equals
	// its real size instead of scaling with the input's nominal count.
	FixedOutput bool
	// BlockSize is the CUDA block size (default 256, as in
	// Algorithm 3.1).
	BlockSize int
	// KernelPerRec is the kernel's per-record roofline demand, used by
	// the chunked-pipelining policy to weigh kernel time against
	// transfer time (zero disables cost-model chunking for these works).
	KernelPerRec costmodel.Work
	// ProducerWork is the per-record CPU cost of assembling the work
	// (normally negligible: no serialization happens on this path).
	ProducerWork costmodel.Work
}

// GPUMapPartition runs spec's kernel over every block of ds: each
// TaskManager task produces one GWork per block, submits them all to
// the worker's GStreamManager, then waits — the producer/consumer
// decoupling of Fig. 4. It returns the dataset of output blocks.
func GPUMapPartition(g *GFlink, ds GDST, spec GPUMapSpec) GDST {
	if spec.BlockSize <= 0 {
		spec.BlockSize = 256
	}
	outElems := spec.OutElems
	if outElems == nil {
		outElems = func(in int) int { return in }
	}
	jobID := ds.Job().ID
	outPerElem := spec.OutSchema.Size(spec.OutLayout, 1)
	coalesce := costmodel.CoalesceFactor(spec.OutLayout.String())

	return flink.ProcessPartitions(ds, "gpu:"+spec.Name, outPerElem, func(p, worker int, part flink.Partition[*Block]) ([]*Block, int64) {
		blocks := part.Items
		mgr := g.Manager(worker)
		pool := g.Cluster.TaskManagers[worker].Pool
		// The producer iterates blocks, not elements: charge the
		// per-record overhead at nominal *block* granularity (the
		// execution-model fix of Section 3.1), plus any user-declared
		// assembly work per element.
		if len(blocks) > 0 {
			// At paper scale the partition holds nominal/page-capacity
			// blocks (Section 5.1: one block per memory page); the real
			// block count is a scale-down artifact and must not drive the
			// charge.
			pageElems := maxI64(1, int64(membuf.ElemsPerPage(g.Cfg.Config.PageSize, blocks[0].BytesPerElem())))
			nominalBlocks := (part.Nominal + pageElems - 1) / pageElems
			ds.Job().ChargeCompute(nominalBlocks, costmodel.Work{})
			if spec.ProducerWork != (costmodel.Work{}) {
				ds.Job().ChargeCompute(part.Nominal, spec.ProducerWork)
			}
		}
		works := make([]*GWork, len(blocks))
		outs := make([]*Block, len(blocks))
		wp := mgr.Streams.Pool()
		ptx := spec.Kernel + ".ptx"
		var outNominalTotal int64
		for i, b := range blocks {
			on := outElems(b.N)
			outNominal := b.Nominal
			if spec.FixedOutput {
				outNominal = int64(on)
			} else if b.N > 0 {
				outNominal = b.Nominal * int64(on) / int64(b.N)
			}
			if on > 0 && outNominal == 0 {
				outNominal = int64(on)
			}
			outBuf := pool.MustAllocate(spec.OutSchema.Size(spec.OutLayout, on))
			outs[i] = &Block{
				Schema:    spec.OutSchema,
				Layout:    spec.OutLayout,
				Buf:       outBuf,
				N:         on,
				Nominal:   outNominal,
				Partition: b.Partition,
				Index:     b.Index,
			}
			// Pooled shell: the producer recycles GWork allocations across
			// blocks (and partitions) instead of allocating one per block.
			w := wp.Get()
			w.PtxPath = ptx
			w.ExecuteName = spec.Kernel
			w.Size = b.N
			w.Nominal = b.Nominal
			w.BlockSize = spec.BlockSize
			w.GridSize = (b.N + spec.BlockSize - 1) / spec.BlockSize
			w.Out = outBuf
			w.OutNominal = outNominal * int64(outPerElem)
			w.Args = spec.Args
			w.Coalesce = coalesce
			w.JobID = jobID
			if spec.KernelPerRec != (costmodel.Work{}) {
				w.KernelWork = spec.KernelPerRec.Scale(float64(b.Nominal))
			}
			w.In = append(w.In, projectInput(g, spec.Kernel, b, Input{
				Buf:     b.Buf,
				Nominal: b.NominalBytes(),
				Cache:   spec.CacheInput,
				Key:     b.Key(jobID),
			}, spec.Args))
			if spec.Extra != nil {
				w.In = append(w.In, spec.Extra(b)...)
			}
			works[i] = w
			mgr.Streams.Submit(w)
		}
		for i, w := range works {
			if err := w.Wait(); err != nil {
				panic(fmt.Sprintf("core: GWork %s on block %d failed: %v", spec.Kernel, i, err))
			}
			wp.Put(w)
			works[i] = nil
		}
		for _, ob := range outs {
			outNominalTotal += ob.Nominal
		}
		return outs, outNominalTotal
	})
}

// projectInput applies SoA column projection to a block-backed GWork
// input: when the deployment enables projection, the block is SoA, and
// the kernel's registered field-use declaration reads a strict subset
// of the schema, the input ships (and caches) only the referenced byte
// ranges at their original offsets — nominal volume, cache key and real
// copy all shrink together. Otherwise the input is returned unchanged,
// keeping the default path byte-identical.
//
//gflink:gated projection -- effective only when projection is enabled; outputpurity holds it to shadow/boundary copies
func projectInput(g *GFlink, kernel string, b *Block, in Input, args []int64) Input {
	if !g.Cfg.EnableProjection || b.Layout != gstruct.SoA || b.Schema.NumFields() > gstruct.MaxCols {
		return in
	}
	reads, ok := gpu.KernelReads(kernel, b.Schema, args)
	if !ok || b.Schema.Covers(reads) {
		return in
	}
	ranges := b.Schema.SoAColumnRanges(reads, b.N)
	cr := make([]gpu.CopyRange, len(ranges))
	for i, r := range ranges {
		cr[i] = gpu.CopyRange{Off: r.Off, Len: r.Len}
	}
	in.Nominal = b.Nominal * int64(b.Schema.ProjectedElemBytes(reads))
	in.Ranges = cr
	in.Key.Cols = reads
	return in
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// GPUReducePartition is gpuMapPartition with a fixed-size output per
// block (the paper's GPU-based Reducer): each block reduces to
// partialElems records which the caller combines (typically on the
// driver).
func GPUReducePartition(g *GFlink, ds GDST, spec GPUMapSpec, partialElems int) GDST {
	spec.OutElems = func(int) int { return partialElems }
	spec.FixedOutput = true
	return GPUMapPartition(g, ds, spec)
}

// CollectBlocks gathers all blocks to the driver (paying the network
// cost of their nominal bytes).
func CollectBlocks(ds GDST) []*Block {
	return flink.Collect(ds)
}

// FreeBlocks returns every block's off-heap buffer to its pool. Use
// when intermediate datasets are dead (Flink's managed memory release).
func FreeBlocks(ds GDST) {
	for p := 0; p < ds.Partitions(); p++ {
		for _, b := range ds.Partition(p).Items {
			if !b.Buf.Freed() {
				b.Buf.Free()
			}
		}
	}
}

// StageBuffer places per-worker copies of a value that is already
// distributed on the cluster (state kept between supersteps, whose
// network redistribution is charged separately via Job.AllGather or
// Job.ShuffleBytes). No network time is charged; the caller still pays
// PCIe when the buffers feed GWork inputs.
func StageBuffer(g *GFlink, src *membuf.HBuffer) []*membuf.HBuffer {
	out := make([]*membuf.HBuffer, g.Cfg.Config.Workers)
	for w := range out {
		dst := g.Cluster.TaskManagers[w].Pool.MustAllocate(src.Size())
		copy(dst.Bytes(), src.Bytes())
		out[w] = dst
	}
	return out
}

// BroadcastBuffer ships a driver-built HBuffer to every worker (e.g.,
// the centroids of a KMeans iteration), charging the network cost, and
// returns per-worker copies. The returned buffers belong to each
// worker's pool.
func BroadcastBuffer(g *GFlink, j *flink.Job, src *membuf.HBuffer, nominalBytes int64) []*membuf.HBuffer {
	out := make([]*membuf.HBuffer, g.Cfg.Config.Workers)
	grp := vclock.NewGroup(g.Cluster.Clock)
	for w := 0; w < g.Cfg.Config.Workers; w++ {
		w := w
		grp.Go(fmt.Sprintf("bcastbuf[%d]", w), func() {
			if w != 0 {
				g.Cluster.Net.Transfer(0, w, nominalBytes)
			}
			dst := g.Cluster.TaskManagers[w].Pool.MustAllocate(src.Size())
			copy(dst.Bytes(), src.Bytes())
			out[w] = dst
		})
	}
	grp.Wait()
	return out
}
