package core

import (
	"testing"

	"gflink/internal/costmodel"
	"gflink/internal/flink"
)

// TestFailedWorkEmitsSpans pins the fail-path trace contract on both
// pipelines: a GWork that dies in setup (here: an input whose nominal
// volume can never be allocated) still queued and still occupied a
// stream, so it must leave a queue span and an error-annotated gwork
// span instead of a hole in the trace.
func TestFailedWorkEmitsSpans(t *testing.T) {
	for _, tc := range []struct {
		name   string
		chunks int
	}{
		{"monolithic", 0},
		{"chunked", 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := New(Config{
				Config:         flink.Config{Workers: 1, Model: costmodel.Default(), ScaleDivisor: 1},
				GPUsPerWorker:  1,
				EnableChunking: true,
			})
			g.Run(func() {
				pool := g.Cluster.TaskManagers[0].Pool
				in := pool.MustAllocate(64)
				out := pool.MustAllocate(64)
				w := &GWork{
					ExecuteName: "core_test.double",
					Size:        16,
					Nominal:     16,
					BlockSize:   256,
					GridSize:    1,
					Chunks:      tc.chunks,
					In:          []Input{{Buf: in, Nominal: 1 << 50}},
					Out:         out,
					OutNominal:  64,
				}
				g.Manager(0).Streams.Submit(w)
				if err := w.Wait(); err == nil {
					t.Fatal("oversized input must fail allocation")
				}
			})
			spans := g.Obs.Tracer().Spans()
			if len(spans) != 2 {
				t.Fatalf("got %d spans, want 2 (queue + failed gwork)", len(spans))
			}
			var queue, gwork bool
			for _, s := range spans {
				switch s.Cat {
				case "queue":
					queue = true
				case "gwork":
					gwork = true
					var errAttr bool
					for _, a := range s.Attrs {
						if a.Key == "error" {
							errAttr = true
						}
					}
					if !errAttr {
						t.Errorf("failed gwork span %q carries no error attribute", s.Name)
					}
					if s.End < s.Start {
						t.Errorf("failed gwork span ends before it starts")
					}
				}
			}
			if !queue || !gwork {
				t.Errorf("span categories missing: queue=%v gwork=%v", queue, gwork)
			}
		})
	}
}
