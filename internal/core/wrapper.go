package core

import (
	"gflink/internal/costmodel"
	"gflink/internal/gpu"
	"gflink/internal/membuf"
	"gflink/internal/vclock"
)

// CUDAWrapper is the Java-side half of GFlink's communication layer
// (Section 4.1): it exposes the CUDA driver and runtime APIs to the
// engine, redirecting every call through the CUDAStub (the C++ half)
// over JNI. Control-channel calls (malloc, free, launch, stream
// management) cost one JNI round trip each; transfer-channel calls add
// the JNI redirect on top of the DMA itself — the overhead visible in
// Table 2's small-transfer rows.
//
// The wrapper is also where the off-heap design pays off: HBuffers are
// direct buffers, so their virtual addresses are handed straight to the
// DMA engine with no JVM-heap-to-native copy and no
// serialization/deserialization (the buffer bytes already match the
// CUDA struct layout by construction of gstruct).
type CUDAWrapper struct {
	clock *vclock.Clock
	model costmodel.Model
}

// NewCUDAWrapper builds the wrapper for one worker node.
func NewCUDAWrapper(clock *vclock.Clock, model costmodel.Model) *CUDAWrapper {
	return &CUDAWrapper{clock: clock, model: model}
}

// jni charges one control-channel round trip.
func (w *CUDAWrapper) jni() { w.clock.Sleep(w.model.Overheads.JNICall) }

// redirect charges the transfer-channel JNI redirect.
func (w *CUDAWrapper) redirect() { w.clock.Sleep(w.model.PCIe.JNIRedirect) }

// Malloc allocates device memory (cudaMalloc through JNI).
func (w *CUDAWrapper) Malloc(d *gpu.Device, nominal int64, real int) (*gpu.Buffer, error) {
	w.jni()
	return d.Malloc(nominal, real)
}

// Free releases device memory (cudaFree through JNI).
func (w *CUDAWrapper) Free(d *gpu.Device, b *gpu.Buffer) {
	w.jni()
	d.Free(b)
}

// HostRegister page-locks a direct buffer (cudaHostRegister). The pin
// is released by the buffer's owner: Free unpins implicitly, so the
// registration lives exactly as long as the buffer.
func (w *CUDAWrapper) HostRegister(b *membuf.HBuffer) {
	w.jni()
	//gflink:owns-buffer -- caller keeps ownership; Free() unpins
	b.Pin()
}

// MemcpyH2D is the synchronous transfer-channel host-to-device copy
// (cudaMemcpyH2D): JNI redirect plus DMA.
func (w *CUDAWrapper) MemcpyH2D(d *gpu.Device, dst *gpu.Buffer, src *membuf.HBuffer, nominal int64) {
	w.redirect()
	d.MemcpyH2D(dst, src, nominal, w.model.CPU)
}

// MemcpyD2H is the synchronous device-to-host copy.
func (w *CUDAWrapper) MemcpyD2H(d *gpu.Device, dst *membuf.HBuffer, src *gpu.Buffer, nominal int64) {
	w.redirect()
	d.MemcpyD2H(dst, src, nominal, w.model.CPU)
}

// MemcpyH2DAsync enqueues an asynchronous copy on a stream
// (cudaMemcpyH2DAsync); the source must be page-locked.
func (w *CUDAWrapper) MemcpyH2DAsync(s *gpu.Stream, dst *gpu.Buffer, src *membuf.HBuffer, nominal int64) {
	w.redirect()
	s.H2DAsync(dst, src, nominal)
}

// MemcpyD2HAsync enqueues an asynchronous device-to-host copy.
func (w *CUDAWrapper) MemcpyD2HAsync(s *gpu.Stream, dst *membuf.HBuffer, src *gpu.Buffer, nominal int64) {
	w.redirect()
	s.D2HAsync(dst, src, nominal)
}

// MemcpyH2DRangesAsync enqueues an asynchronous projected host-to-device
// copy: only the given real byte ranges move, charged at nominal bytes
// (the column-projection transfer). One JNI redirect per call, like any
// other transfer-channel entry point.
func (w *CUDAWrapper) MemcpyH2DRangesAsync(s *gpu.Stream, dst *gpu.Buffer, src *membuf.HBuffer, ranges []gpu.CopyRange, nominal int64) {
	w.redirect()
	s.H2DRangesAsync(dst, src, ranges, nominal)
}

// MemcpyD2HRangesAsync is the device-to-host counterpart.
func (w *CUDAWrapper) MemcpyD2HRangesAsync(s *gpu.Stream, dst *membuf.HBuffer, src *gpu.Buffer, ranges []gpu.CopyRange, nominal int64) {
	w.redirect()
	s.D2HRangesAsync(dst, src, ranges, nominal)
}

// LaunchChunkAsync enqueues one chunk of a chunked kernel launch
// (see gpu.Stream.LaunchChunkAsync). One JNI control call per chunk —
// each chunk is a real launch.
func (w *CUDAWrapper) LaunchChunkAsync(s *gpu.Stream, name string, ctx *gpu.KernelCtx, k, chunks int, after *vclock.Event) *gpu.Future {
	w.jni()
	return s.LaunchChunkAsync(name, ctx, k, chunks, after)
}

// LaunchAsync enqueues a kernel launch on a stream.
func (w *CUDAWrapper) LaunchAsync(s *gpu.Stream, name string, ctx *gpu.KernelCtx) *gpu.Future {
	w.jni()
	return s.LaunchAsync(name, ctx)
}

// LaunchAsyncInto enqueues a kernel launch that completes through a
// caller-owned reusable future (see gpu.Stream.LaunchAsyncInto), so a
// stream worker that waits on each launch before the next one launches
// kernels without allocating.
func (w *CUDAWrapper) LaunchAsyncInto(s *gpu.Stream, f *gpu.Future, name string, ctx *gpu.KernelCtx) {
	w.jni()
	s.LaunchAsyncInto(f, name, ctx)
}

// StreamCreate creates a CUDA stream (cudaStreamCreate).
func (w *CUDAWrapper) StreamCreate(d *gpu.Device) *gpu.Stream {
	w.jni()
	return d.NewStream(w.model.CPU)
}

// StreamSynchronize waits for a stream to drain
// (cudaStreamSynchronize).
func (w *CUDAWrapper) StreamSynchronize(s *gpu.Stream) {
	w.jni()
	s.Synchronize()
}
