package core

import (
	"encoding/binary"
	"math"
	"testing"

	"gflink/internal/costmodel"
	"gflink/internal/gpu"
	"gflink/internal/membuf"
	"gflink/internal/obs"
	"gflink/internal/vclock"
)

// BenchmarkHotPath1MGWorks drives GWorks through the full
// submit/exec/complete hot path — one benchmark op is one GWork — on a
// tracing-off deployment (counters stay on, as in every real
// deployment). Run with -benchmem: allocs/op is the per-GWork
// allocation count the hotalloc analyzer locks in (0 at steady state
// since command shells, futures and counter handles pooled), and
// `-benchtime=1000000x` reproduces the scaled-up 1M-GWork sweep; the
// canonical 100k-GWork scenario vclock-bench times in CI is the same
// loop at `-benchtime=100000x`.
func BenchmarkHotPath1MGWorks(b *testing.B) {
	clock := vclock.New()
	model := costmodel.Default()
	wrapper := NewCUDAWrapper(clock, model)
	dev := gpu.NewDevice(clock, 0, 0, costmodel.C2050, model.PCIe)
	mem := NewMemoryManager(dev, wrapper, costmodel.C2050.MemBytes*6/10, WithPolicy(EvictFIFO))
	mgr := NewStreamManager(StreamConfig{
		Clock:    clock,
		Wrapper:  wrapper,
		Memories: []*GMemoryManager{mem},
		Metrics:  obs.NewRegistry(),
	})
	pool := membuf.NewPool(clock, model, membuf.Config{})
	const n = 64
	var kerr error
	b.ReportAllocs()
	b.ResetTimer()
	clock.Run(func() {
		in := pool.MustAllocate(4 * n)
		out := pool.MustAllocate(4 * n)
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(in.Bytes()[i*4:], math.Float32bits(float32(i)))
		}
		wp := mgr.Pool()
		for i := 0; i < b.N && kerr == nil; i++ {
			w := wp.Get()
			w.ExecuteName = "core_test.double"
			w.Size = n
			w.Nominal = n
			w.BlockSize = 256
			w.GridSize = 1
			w.In = append(w.In, Input{Buf: in, Nominal: 4 * n})
			w.Out = out
			w.OutNominal = 4 * n
			mgr.Submit(w)
			kerr = w.Wait()
			wp.Put(w)
		}
		mgr.Close()
		dev.Close()
	})
	if kerr != nil {
		b.Fatal(kerr)
	}
}
