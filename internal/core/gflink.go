package core

import (
	"time"

	"gflink/internal/costmodel"
	"gflink/internal/flink"
	"gflink/internal/gpu"
	"gflink/internal/obs"
)

// Config extends the baseline cluster configuration with the GPU-side
// parameters GFlink adds.
type Config struct {
	flink.Config

	// GPUsPerWorker is the device count per slave node (the paper's
	// testbed uses 2).
	GPUsPerWorker int
	// GPUProfile selects the device generation; zero value means Tesla
	// C2050, the cluster experiments' GPU.
	GPUProfile costmodel.GPUProfile
	// StreamsPerGPU sizes each GStream Pool bulk (default 4).
	StreamsPerGPU int
	// CacheBytesPerJob is the per-job, per-device cache-region capacity
	// (the user-defined parameter of Section 4.2.2). 0 means 60% of
	// device memory.
	CacheBytesPerJob int64
	// CachePolicy selects FIFO eviction (default), StopWhenFull, or the
	// tiered subsystem's EvictLRU / EvictCostAware.
	CachePolicy CachePolicy
	// HostTierBytes caps each device's host paging tier in nominal
	// bytes. 0 disables the tier (paper mode): evicted cache entries are
	// freed instead of demoted.
	HostTierBytes int64
	// SpillDisk overrides the simulated disk host pages spill to when
	// the host tier overflows; the zero value selects
	// costmodel.DefaultSpillDisk.
	SpillDisk costmodel.Disk
	// Scheduler selects Algorithm 5.1 (default) or the RoundRobin
	// ablation.
	Scheduler SchedulerPolicy
	// DisableStealing turns off Algorithm 5.2 (ablation).
	DisableStealing bool
	// MaxBlockNominal bounds the paper-scale bytes one GDST block
	// represents (the effective memory-page granularity of the
	// three-stage pipeline). 0 means 128 MiB.
	MaxBlockNominal int64
	// EnableProjection turns on SoA column projection: GWork inputs
	// built from GDST blocks ship only the columns the kernel's
	// registered field-use declaration reads. Off by default (the
	// paper-mode figures ship whole blocks).
	EnableProjection bool
	// EnableChunking turns on chunked double-buffered GWork pipelining
	// in every worker's stream manager. Off by default.
	EnableChunking bool
}

// GFlink is a cluster with one GPUManager per worker — the system of
// Fig. 1a. It embeds the baseline cluster, so every CPU-path operator
// keeps working unchanged.
type GFlink struct {
	*flink.Cluster
	Cfg      Config
	Managers []*GPUManager
	// Obs collects the deployment's spans and counters. Observability
	// only reads the virtual clock — it never charges time — so
	// enabling it changes no simulated result.
	Obs *obs.Observability
}

// GPUManager manages one worker's GPU computing resources (Fig. 1b):
// the devices, the communication layer (CUDAWrapper/CUDAStub), the
// GMemoryManagers and the GStreamManager.
type GPUManager struct {
	Worker  int
	Wrapper *CUDAWrapper
	Devices []*gpu.Device
	Streams *GStreamManager
}

// New builds a GFlink deployment.
func New(cfg Config) *GFlink {
	if cfg.GPUsPerWorker <= 0 {
		cfg.GPUsPerWorker = 1
	}
	if cfg.GPUProfile.Name == "" {
		cfg.GPUProfile = costmodel.C2050
	}
	cluster := flink.NewCluster(cfg.Config)
	cfg.Config = cluster.Cfg
	if cfg.CacheBytesPerJob <= 0 {
		cfg.CacheBytesPerJob = cfg.GPUProfile.MemBytes * 6 / 10
	}
	g := &GFlink{Cluster: cluster, Cfg: cfg, Obs: obs.New()}
	devID := 0
	for w := 0; w < cfg.Config.Workers; w++ {
		wrapper := NewCUDAWrapper(cluster.Clock, cfg.Config.Model)
		mgr := &GPUManager{Worker: w, Wrapper: wrapper}
		var mems []*GMemoryManager
		for k := 0; k < cfg.GPUsPerWorker; k++ {
			dev := gpu.NewDevice(cluster.Clock, devID, w, cfg.GPUProfile, cfg.Config.Model.PCIe)
			devID++
			mgr.Devices = append(mgr.Devices, dev)
			mems = append(mems, NewMemoryManager(dev, wrapper, cfg.CacheBytesPerJob, memOptions(cfg)...))
		}
		mgr.Streams = NewStreamManager(StreamConfig{
			Clock:         cluster.Clock,
			Wrapper:       wrapper,
			Memories:      mems,
			StreamsPerGPU: cfg.StreamsPerGPU,
			Policy:        cfg.Scheduler,
			NoStealing:    cfg.DisableStealing,
			Tracer:        g.Obs.Tracer(),
			Metrics:       g.Obs.Metrics(),
			Chunking:      cfg.EnableChunking,
		})
		g.Managers = append(g.Managers, mgr)
	}
	return g
}

// NewHetero builds a GFlink deployment whose workers carry the given
// per-device profiles (for the heterogeneous-GPU experiments of
// Fig 8b). profiles[w][k] is worker w's k-th device.
func NewHetero(cfg Config, profiles [][]costmodel.GPUProfile) *GFlink {
	cluster := flink.NewCluster(cfg.Config)
	cfg.Config = cluster.Cfg
	g := &GFlink{Cluster: cluster, Cfg: cfg, Obs: obs.New()}
	devID := 0
	for w := 0; w < cfg.Config.Workers; w++ {
		wrapper := NewCUDAWrapper(cluster.Clock, cfg.Config.Model)
		mgr := &GPUManager{Worker: w, Wrapper: wrapper}
		var mems []*GMemoryManager
		for _, prof := range profiles[w] {
			cap := cfg.CacheBytesPerJob
			if cap <= 0 {
				cap = prof.MemBytes * 6 / 10
			}
			dev := gpu.NewDevice(cluster.Clock, devID, w, prof, cfg.Config.Model.PCIe)
			devID++
			mgr.Devices = append(mgr.Devices, dev)
			mems = append(mems, NewMemoryManager(dev, wrapper, cap, memOptions(cfg)...))
		}
		mgr.Streams = NewStreamManager(StreamConfig{
			Clock:         cluster.Clock,
			Wrapper:       wrapper,
			Memories:      mems,
			StreamsPerGPU: cfg.StreamsPerGPU,
			Policy:        cfg.Scheduler,
			NoStealing:    cfg.DisableStealing,
			Tracer:        g.Obs.Tracer(),
			Metrics:       g.Obs.Metrics(),
			Chunking:      cfg.EnableChunking,
		})
		g.Managers = append(g.Managers, mgr)
	}
	return g
}

// memOptions translates the deployment config into memory-manager
// options.
func memOptions(cfg Config) []MemOption {
	opts := []MemOption{WithPolicy(cfg.CachePolicy)}
	if cfg.HostTierBytes > 0 {
		opts = append(opts, WithHostTierBytes(cfg.HostTierBytes))
	}
	if cfg.SpillDisk != (costmodel.Disk{}) {
		opts = append(opts, WithDiskBandwidth(cfg.SpillDisk))
	}
	return opts
}

// Manager returns worker w's GPUManager.
func (g *GFlink) Manager(w int) *GPUManager { return g.Managers[w] }

// Close shuts every stream worker and device down. It must be called
// inside the simulation, after all submitted work has completed.
func (g *GFlink) Close() {
	for _, m := range g.Managers {
		m.Streams.Close()
	}
	for _, m := range g.Managers {
		for _, d := range m.Devices {
			d.Close()
		}
	}
}

// Run executes driver as the simulation root and closes the deployment
// when it returns; it yields the total virtual time.
func (g *GFlink) Run(driver func()) time.Duration {
	return g.Clock.Run(func() {
		defer g.Close()
		driver()
	})
}

// ReleaseJobCaches frees the job's cache regions on every device of
// every worker (called when a job finishes).
func (g *GFlink) ReleaseJobCaches(jobID int) {
	for _, m := range g.Managers {
		for i := 0; i < m.Streams.Devices(); i++ {
			m.Streams.Memory(i).ReleaseJob(jobID)
		}
	}
}
