// Package core implements GFlink itself — the paper's contribution —
// on top of the baseline engine in package flink:
//
//   - GWork (Section 3.5.3): the unit of GPU work programmers assemble
//     in GPU-based Mappers and Reducers — kernel entry name, ptx path,
//     input/output HBuffers, launch geometry and cache directives.
//   - CUDAWrapper / CUDAStub (Section 4.1): the control channel (JNI
//     calls wrapping the CUDA driver API) and the transfer channel
//     (direct off-heap buffer DMA, page-locking, async copies).
//   - GMemoryManager (Section 4.2): automatic device-memory management
//     plus the per-job GPU cache — a hash table keyed by partition and
//     block IDs with FIFO eviction, or the alternative
//     stop-caching-when-full policy.
//   - GStreamManager (Section 5): the producer-consumer execution model
//     where TaskManager tasks produce GWork and CUDA streams consume it
//     through the three-stage H2D/kernel/D2H pipeline, scheduled by the
//     adaptive locality-aware algorithm (Algorithm 5.1) with
//     locality-aware work stealing (Algorithm 5.2).
//   - GDST (Section 3.5.1): GStruct-backed block datasets and the
//     gpuMapPartition / gpuReducePartition operators.
package core

import (
	"time"

	"gflink/internal/costmodel"
	"gflink/internal/gpu"
	"gflink/internal/gstruct"
	"gflink/internal/membuf"
	"gflink/internal/obs"
	"gflink/internal/vclock"
)

// CacheKey identifies a cached block in a device's cache region. "By
// default, the key of a block is the partition ID and the block ID"
// (Section 4.2.2); JobID scopes regions per job. Cols qualifies the
// entry with the column projection it holds: the zero value means "all
// columns" (the pre-projection behaviour), so a projected entry never
// aliases a full one and the cache can serve both side by side.
type CacheKey struct {
	JobID     int
	Partition int
	Block     int
	Cols      gstruct.ColSet
}

// Input is one input HBuffer of a GWork, with its nominal transfer size
// and cache directive.
type Input struct {
	Buf     *membuf.HBuffer
	Nominal int64
	Cache   bool
	Key     CacheKey
	// Ranges, when non-nil, restricts the real H2D copy to these byte
	// ranges of Buf (at their original offsets, so device-side column
	// addressing is unchanged) — the column-projection transfer. Nominal
	// must then already be the projected volume. nil ships the whole
	// buffer.
	Ranges []gpu.CopyRange
}

// GWork is the abstraction model for GPU computing (Section 3.5.3):
// programmers set the buffers, the ptx path and kernel entry name, the
// launch geometry and the cache flags, then submit it to the
// GStreamManager.
type GWork struct {
	// PtxPath and ExecuteName locate the kernel (the registry in
	// package gpu stands in for loaded ptx modules).
	PtxPath     string
	ExecuteName string
	// Size is the real element count; Nominal the paper-scale count
	// used for cost accounting.
	Size    int
	Nominal int64
	// BlockSize and GridSize mirror the CUDA launch configuration.
	BlockSize, GridSize int
	// In are the input buffers; Out receives the result.
	In         []Input
	Out        *membuf.HBuffer
	OutNominal int64
	// Args carries scalar kernel arguments.
	Args []int64
	// Coalesce is the memory-coalescing factor of the kernel's access
	// pattern (derived from the GStruct layout); 0 means fully
	// coalesced.
	Coalesce float64
	// JobID scopes the cache region.
	JobID int
	// Chunks controls double-buffered chunked pipelining when the
	// stream manager has chunking enabled: 0 lets the cost model pick
	// the chunk count from KernelWork (monolithic when KernelWork is
	// zero), 1 forces a monolithic pipeline, >1 forces that count. With
	// chunking disabled the field is ignored.
	Chunks int
	// KernelWork is the kernel's total roofline demand for this work,
	// used by the chunk policy to weigh kernel time against transfer
	// time.
	KernelWork costmodel.Work

	done   *vclock.Event
	err    error
	device *gpu.Device
	// scheduler bookkeeping: submission time and steal origin (set by
	// Submit / stealLocked), folded into report by the stream worker.
	submitT    time.Duration
	stolenFrom int
	report     obs.WorkReport
}

// Wait blocks until the work completes and returns its error.
func (w *GWork) Wait() error {
	w.done.Wait()
	return w.err
}

// Device returns the GPU that executed the work (after Wait).
func (w *GWork) Device() *gpu.Device { return w.device }

// Report returns the execution report (after Wait): queue wait, the
// three pipeline stage durations, cache hit/miss counts, and where the
// work ran — everything the old Timings/CacheHits accessors exposed,
// as one named struct the observability layer consumes directly.
func (w *GWork) Report() obs.WorkReport { return w.report }

// totalCachedBytes sums the nominal sizes of the cache-flagged inputs.
func (w *GWork) totalCachedBytes() int64 {
	var n int64
	for _, in := range w.In {
		if in.Cache {
			n += in.Nominal
		}
	}
	return n
}
