package core

import (
	"testing"
	"time"

	"gflink/internal/costmodel"
	"gflink/internal/flink"
	"gflink/internal/membuf"
)

// submitChunked builds and submits one double-kernel GWork with an
// explicit chunk-count override (0 = cost-model / monolithic default).
func submitChunked(g *GFlink, n int, nominal int64, chunks int) (*GWork, *membuf.HBuffer, *membuf.HBuffer) {
	pool := g.Cluster.TaskManagers[0].Pool
	in := pool.MustAllocate(4 * n)
	out := pool.MustAllocate(4 * n)
	w := &GWork{
		ExecuteName: "core_test.double",
		Size:        n,
		Nominal:     nominal,
		BlockSize:   256,
		GridSize:    (n + 255) / 256,
		In:          []Input{{Buf: in, Nominal: 4 * nominal}},
		Out:         out,
		OutNominal:  4 * nominal,
		Chunks:      chunks,
		JobID:       1,
	}
	g.Manager(0).Streams.Submit(w)
	return w, in, out
}

// TestWorkReportAccounting pins the stage-attribution invariant: for
// every executed GWork — monolithic or chunked — QueueWait + H2D +
// Kernel + D2H equals the submit-to-completion interval exactly, and
// the emitted span tree tiles the same interval (queue span from submit
// to pipeline start, gwork span of exactly Pipeline() length).
func TestWorkReportAccounting(t *testing.T) {
	for _, tc := range []struct {
		name   string
		chunks int
	}{
		{"monolithic", 1},
		{"chunked", 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := New(Config{
				Config:         flink.Config{Workers: 1, Model: costmodel.Default(), ScaleDivisor: 1},
				GPUsPerWorker:  1,
				EnableChunking: true,
			})
			type run struct {
				wall  time.Duration
				queue time.Duration
				pipe  time.Duration
				chnk  int
			}
			var runs []run
			g.Run(func() {
				clock := g.Cluster.Clock
				for i := 0; i < 3; i++ {
					t0 := clock.Now()
					w, in, out := submitChunked(g, 256, 1<<20, tc.chunks)
					if err := w.Wait(); err != nil {
						t.Fatal(err)
					}
					wall := clock.Now() - t0
					rep := w.Report()
					runs = append(runs, run{wall: wall, queue: rep.QueueWait, pipe: rep.Pipeline(), chnk: rep.Chunks})
					in.Free()
					out.Free()
				}
			})
			for i, r := range runs {
				if got := r.queue + r.pipe; got != r.wall {
					t.Errorf("work %d: QueueWait+H2D+Kernel+D2H = %v, wall = %v (diff %v)", i, got, r.wall, r.wall-got)
				}
				if tc.chunks > 1 && r.chnk != tc.chunks {
					t.Errorf("work %d: Chunks = %d, want %d", i, r.chnk, tc.chunks)
				}
			}
			// The span tree must tile the same intervals: each queue span
			// ends where its gwork span starts, and the gwork span is
			// exactly Pipeline() long.
			var qEnds, gStarts []time.Duration
			var gi int
			for _, s := range g.Obs.Tracer().Spans() {
				switch s.Cat {
				case "queue":
					qEnds = append(qEnds, s.End)
				case "gwork":
					gStarts = append(gStarts, s.Start)
					if gi < len(runs) && s.Dur() != runs[gi].pipe {
						t.Errorf("gwork span %d: Dur = %v, want Pipeline() = %v", gi, s.Dur(), runs[gi].pipe)
					}
					gi++
				}
			}
			if len(qEnds) != len(runs) || len(gStarts) != len(runs) {
				t.Fatalf("got %d queue / %d gwork spans, want %d each", len(qEnds), len(gStarts), len(runs))
			}
			for i := range qEnds {
				if qEnds[i] != gStarts[i] {
					t.Errorf("queue span %d ends at %v but gwork starts at %v", i, qEnds[i], gStarts[i])
				}
			}
		})
	}
}
