package workloads

import (
	"gflink/internal/costmodel"
	"gflink/internal/flink"
)

// minI64 returns the smaller of two int64s.
func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// nodeVal is one (node, value) shuffle record of the graph workloads:
// a map-side-combined contribution (PageRank) or candidate label
// (ConnectedComponents). 12 bytes on the wire.
type nodeVal struct {
	Node int32
	Val  float32
}

const nodeValBytes = 12

// pairNominal estimates the paper-scale count of map-side-combined
// pairs a partition ships: the observed touched fraction, capped by the
// analytic expectation for a skewed graph (at aggressive scale-down
// every real node is touched, which would wildly overestimate the
// shuffle). The 0.4 factor reflects the combining a power-law
// destination distribution enables.
func pairNominal(touched, realNodes int, nominalNodes, edgesNominal int64) int64 {
	if realNodes == 0 {
		return 0
	}
	byRatio := nominalNodes * int64(touched) / int64(realNodes)
	cap := int64(0.4 * float64(minI64(edgesNominal, nominalNodes)))
	return minI64(byRatio, cap)
}

// densePairsF32 converts a dense per-partition accumulator into the
// aggregated pairs Flink's combinable reduce would ship: only touched
// nodes travel.
func densePairsF32(dense []float32, nominalNodes, edgesNominal int64) ([]nodeVal, int64) {
	var pairs []nodeVal
	for i, v := range dense {
		if v != 0 {
			pairs = append(pairs, nodeVal{Node: int32(i), Val: v})
		}
	}
	return pairs, pairNominal(len(pairs), len(dense), nominalNodes, edgesNominal)
}

// shuffleSumPairs runs the combinable hash shuffle that aggregates
// contributions cluster-wide (the part of every PageRank superstep that
// stays on the engine in both variants) and folds the result into a
// dense vector. The driver-side materialization itself is bookkeeping —
// in Flink the reduced values stay on the workers and join the next
// superstep — so only the shuffle is charged.
func shuffleSumPairs(pairs *flink.Dataset[nodeVal], nReal int) []float32 {
	reduced := flink.ReduceByKey(pairs, "aggContrib", costmodel.Work{Flops: 4},
		func(p nodeVal) int32 { return p.Node },
		func(a, b nodeVal) nodeVal { return nodeVal{Node: a.Node, Val: a.Val + b.Val} })
	out := make([]float32, nReal)
	for pi := 0; pi < reduced.Partitions(); pi++ {
		for _, p := range reduced.Partition(pi).Items {
			out[p.Node] += p.Val
		}
	}
	return out
}

// shuffleMinPairs is shuffleSumPairs with min-combining over label
// candidates; absent nodes keep their previous label.
func shuffleMinPairs(pairs *flink.Dataset[nodeVal], prev []uint32) []uint32 {
	reduced := flink.ReduceByKey(pairs, "aggLabels", costmodel.Work{Flops: 2},
		func(p nodeVal) int32 { return p.Node },
		func(a, b nodeVal) nodeVal {
			if b.Val < a.Val {
				return b
			}
			return a
		})
	out := append([]uint32(nil), prev...)
	for pi := 0; pi < reduced.Partitions(); pi++ {
		for _, p := range reduced.Partition(pi).Items {
			if l := uint32(p.Val); l < out[p.Node] {
				out[p.Node] = l
			}
		}
	}
	return out
}

// labelPairs converts a dense label array into pairs for nodes whose
// label improved versus prev.
func labelPairs(labels []uint32, prev []uint32, nominalNodes, edgesNominal int64) ([]nodeVal, int64) {
	var pairs []nodeVal
	for i, l := range labels {
		if l < prev[i] {
			pairs = append(pairs, nodeVal{Node: int32(i), Val: float32(l)})
		}
	}
	return pairs, pairNominal(len(pairs), len(labels), nominalNodes, edgesNominal)
}
