package workloads

import (
	"gflink/internal/core"
	"gflink/internal/costmodel"
	"gflink/internal/flink"
	"gflink/internal/gstruct"
	"gflink/internal/kernels"
	"gflink/internal/membuf"
	"gflink/internal/plan"
)

// SpMVParams configures the iterative sparse matrix-vector benchmark
// (Fig 6a, 7b, 7d, 8a): y = A·x repeated, with the matrix cacheable on
// the GPUs and the vector re-shipped every iteration.
type SpMVParams struct {
	// MatrixBytes is the nominal CSR size (the paper sweeps 2-32 GB and
	// uses 1.0 GB + 123 MB vector on the single machine).
	MatrixBytes int64
	// NNZPerRow is the row density. When FixedRows is set it is derived
	// from MatrixBytes instead.
	NNZPerRow int
	// FixedRows pins the matrix dimension (and so the vector size) while
	// MatrixBytes grows via density — the paper's sweep keeps a ~123 MB
	// vector across matrix sizes.
	FixedRows int64
	// Iterations is the multiply count.
	Iterations  int
	Parallelism int
	// UseCache keeps the matrix blocks resident on the devices
	// (the Fig 8a ablation turns it off).
	UseCache bool
	// FromHDFS charges reading the matrix in the first iteration;
	// WriteResult writes the vector in the last (Fig 7b's setup).
	FromHDFS    bool
	WriteResult bool
	Seed        uint64
}

func (p *SpMVParams) defaults() {
	if p.FixedRows > 0 {
		nnz := (p.MatrixBytes/p.FixedRows - 4) / 8
		if nnz < 1 {
			nnz = 1
		}
		p.NNZPerRow = int(nnz)
	}
	if p.NNZPerRow == 0 {
		p.NNZPerRow = 16
	}
	if p.Iterations == 0 {
		p.Iterations = 10
	}
}

// Rows derives the square-matrix dimension from the nominal byte size
// (or returns the pinned dimension).
func (p SpMVParams) Rows() int64 {
	if p.FixedRows > 0 {
		return p.FixedRows
	}
	perRow := int64(p.NNZPerRow*8 + 4)
	return p.MatrixBytes / perRow
}

// spmvCol returns the column of the i-th non-zero of real row r.
func spmvCol(seed uint64, r int64, i, nReal int) int32 {
	return int32(mix(seed, uint64(r)*31+uint64(i)) % uint64(nReal))
}

// spmvPart is one partition's real CSR chunk.
type spmvPart struct {
	rowStart int
	rowPtr   []int32
	colIdx   []int32
	vals     []float32
}

// buildSpMVParts constructs the per-partition real CSR chunks. The
// matrix is row-stochastic-ish (values 1/nnzPerRow) so iterated
// products stay bounded.
func buildSpMVParts(p SpMVParams, par, nReal int) []spmvPart {
	parts := make([]spmvPart, par)
	rowsPer := nReal / par
	val := float32(1) / float32(p.NNZPerRow)
	for pi := 0; pi < par; pi++ {
		start := pi * rowsPer
		end := start + rowsPer
		if pi == par-1 {
			end = nReal
		}
		rows := end - start
		sp := spmvPart{rowStart: start}
		sp.rowPtr = make([]int32, rows+1)
		for r := 0; r < rows; r++ {
			for i := 0; i < p.NNZPerRow; i++ {
				sp.colIdx = append(sp.colIdx, spmvCol(p.Seed, int64(start+r), i, nReal))
				sp.vals = append(sp.vals, val)
			}
			sp.rowPtr[r+1] = int32(len(sp.colIdx))
		}
		parts[pi] = sp
	}
	return parts
}

func vectorChecksum(x []float32) float64 {
	var s float64
	for i, v := range x {
		s += float64(v) * float64(i%97+1)
	}
	return s
}

// initialVector is the deterministic starting x.
func initialVector(seed uint64, nReal int) []float32 {
	x := make([]float32, nReal)
	for i := range x {
		x[i] = unit(seed+42, uint64(i)) + 0.5
	}
	return x
}

// spmvPerNNZWork is the per-nonzero demand of the CPU multiply: Flink
// SpMV represents the matrix as (row, col, value) tuples, so the
// iterator model pays per-record overhead on every non-zero — the
// reason the paper's CPU baseline is so slow.
var spmvPerNNZWork = costmodel.Work{Flops: 40, BytesRead: 24}

// spmvStageCost estimates the multiply stage for auto placement: the
// matrix crosses PCIe once (then stays resident when UseCache holds)
// while the vector is streamed to every device each iteration.
func spmvStageCost(g *core.GFlink, p SpMVParams, par int) costmodel.StageCost {
	cpuLanes, gpuLanes := planLanes(g, par)
	rows := p.Rows()
	nnz := rows * int64(p.NNZPerRow)
	const blockBytes = 256 << 20
	launches := (p.MatrixBytes + blockBytes - 1) / blockBytes
	if launches < int64(par) {
		launches = int64(par)
	}
	return costmodel.StageCost{
		Records:        nnz,
		CPUPerRec:      spmvPerNNZWork,
		GPUWork:        kernels.SpMVWork(nnz, rows),
		HostToDevice:   p.MatrixBytes,
		H2DStreamed:    rows * 4 * int64(gpuLanes),
		DeviceToHost:   rows * 4,
		Launches:       launches,
		Executions:     int64(p.Iterations),
		CacheResident:  p.UseCache,
		CPUParallelism: cpuLanes,
		GPUParallelism: gpuLanes,
	}
}

// kernelRowsOf decodes a CSR block's row count from its header.
func kernelRowsOf(blk *core.Block) int32 {
	b := blk.Buf.Bytes()
	return int32(uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24)
}

// SpMV runs the iterative multiply through the plan layer as one
// pipeline. The matrix source and the per-iteration multiply are
// Either nodes in the "multiply" placement group: the CPU body keeps
// the CSR chunks as one-item engine partitions and multiplies through
// the iterator model; the GPU body encodes the chunks into cacheable
// device blocks and launches the CSR kernel, re-shipping x each
// iteration. Forced modes reproduce the former SpMVCPU/SpMVGPU drivers
// exactly; Auto lets the cost model pick.
func SpMV(g *core.GFlink, p SpMVParams, opts plan.Options) Result {
	p.defaults()
	c := g.Cluster
	start := c.Clock.Now()
	res := Result{}
	par := p.Parallelism
	if par <= 0 {
		par = c.Parallelism()
	}
	rowsNominal := p.Rows()
	nReal := int(rowsNominal / g.Cfg.Config.ScaleDivisor)
	if nReal < par {
		nReal = par
	}
	parts := buildSpMVParts(p, par, nReal)
	x := initialVector(p.Seed, nReal)
	workers := g.Cfg.Config.Workers

	// Branch-local state: the CPU placement carries the CSR chunks as an
	// engine dataset, the GPU placement as encoded device blocks.
	var matrix *flink.Dataset[spmvPart]
	var gmatrix *flink.Dataset[*core.Block]
	var blockParts []flink.Partition[*core.Block]
	var chunkRowStart [][]int

	gr := plan.NewGraph(g, "spmv-"+opts.Mode.String(), opts)
	gr.PlaceGroup("multiply", spmvStageCost(g, p, par))
	plan.EitherDo(gr, "matrix", "multiply",
		func(ctx *plan.Ctx) {
			// A one-item-per-partition dataset carrying the CSR chunks.
			chunkParts := make([]flink.Partition[spmvPart], par)
			rowsNomPer := rowsNominal / int64(par)
			for pi := range chunkParts {
				nom := rowsNomPer
				if pi == par-1 {
					nom = rowsNominal - rowsNomPer*int64(par-1)
				}
				chunkParts[pi] = flink.Partition[spmvPart]{Worker: pi % c.Cfg.Workers, Items: []spmvPart{parts[pi]}, Nominal: nom}
			}
			matrix = flink.FromPartitions(ctx.Job, p.NNZPerRow*8+4, chunkParts)
		},
		func(ctx *plan.Ctx) {
			// Encode each partition's CSR into off-heap blocks. Blocks are
			// multi-page (CSR chunks are not GStruct records, so the
			// page-straddling rule does not apply) but bounded in nominal bytes
			// so a single transfer can never exceed device memory.
			const maxNomBytesPerBlock = 256 << 20
			byteSchema := gstruct.MustNew("CSRByte", 1, gstruct.Field{Name: "b", Kind: gstruct.Uint8})
			blockParts = make([]flink.Partition[*core.Block], par)
			chunkRowStart = make([][]int, par) // real row offsets of each chunk
			rowsNomPer := rowsNominal / int64(par)
			for pi := range blockParts {
				worker := pi % c.Cfg.Workers
				sp := parts[pi]
				realRows := len(sp.rowPtr) - 1
				nomRows := rowsNomPer
				if pi == par-1 {
					nomRows = rowsNominal - rowsNomPer*int64(par-1)
				}
				nomBytes := nomRows * int64(p.NNZPerRow*8+4)
				chunks := int((nomBytes + maxNomBytesPerBlock - 1) / maxNomBytesPerBlock)
				if chunks > realRows {
					chunks = realRows
				}
				if chunks < 1 {
					chunks = 1
				}
				per := (realRows + chunks - 1) / chunks
				var blocks []*core.Block
				var nomDone int64
				for bi, r0 := 0, 0; r0 < realRows; bi, r0 = bi+1, r0+per {
					r1 := r0 + per
					if r1 > realRows {
						r1 = realRows
					}
					base := sp.rowPtr[r0]
					rowPtr := make([]int32, r1-r0+1)
					for i := range rowPtr {
						rowPtr[i] = sp.rowPtr[r0+i] - base
					}
					colIdx := sp.colIdx[base:sp.rowPtr[r1]]
					vals := sp.vals[base:sp.rowPtr[r1]]
					size := kernels.EncodedCSRSize(r1-r0, len(colIdx))
					buf := c.TaskManagers[worker].Pool.MustAllocate(size)
					kernels.EncodeCSR(buf.Bytes(), rowPtr, colIdx, vals)
					nom := nomBytes * int64(r1-r0) / int64(realRows)
					if r1 == realRows {
						nom = nomBytes - nomDone
					}
					nomDone += nom
					blocks = append(blocks, &core.Block{
						Schema: byteSchema, Layout: gstruct.AoS,
						Buf: buf, N: size, Nominal: nom,
						Partition: pi, Index: bi,
					})
					chunkRowStart[pi] = append(chunkRowStart[pi], r0)
				}
				blockParts[pi] = flink.Partition[*core.Block]{Worker: worker, Items: blocks, Nominal: nomRows}
			}
			gmatrix = flink.FromPartitions(ctx.Job, 1, blockParts)
		})
	iters := plan.Iterate(gr, "power", p.Iterations, func(it int, sub *plan.Graph) {
		plan.Do(sub, "stage-in", func(ctx *plan.Ctx) {
			if it == 0 && p.FromHDFS {
				// Fig 7b: the first iteration reads the matrix from HDFS.
				stageRead(g, ctx.Job, "spmv-matrix", p.MatrixBytes, par)
			}
		})
		plan.Do(sub, "allgather", func(ctx *plan.Ctx) {
			// The y parts of the previous iteration live on their workers:
			// every worker all-gathers the full vector.
			ctx.Job.AllGather(rowsNominal * 4)
		})
		plan.EitherDo(sub, "multiply", "multiply",
			func(ctx *plan.Ctx) {
				j := ctx.Job
				xNow := x
				tm0 := c.Clock.Now()
				yParts := flink.ProcessPartitions(matrix, "multiply", 4, func(pi, worker int, in flink.Partition[spmvPart]) ([][]float32, int64) {
					j.ChargeCompute(in.Nominal*int64(p.NNZPerRow), spmvPerNNZWork)
					sp := in.Items[0]
					return [][]float32{kernels.CPUSpMV(sp.rowPtr, sp.colIdx, sp.vals, xNow)}, in.Nominal
				})
				res.MapPhase = c.Clock.Now() - tm0
				// y stays distributed (it feeds the next all-gather); the driver
				// materialization below is bookkeeping only.
				next := make([]float32, nReal)
				for pi := 0; pi < yParts.Partitions(); pi++ {
					copy(next[parts[pi].rowStart:], yParts.Partition(pi).Items[0])
				}
				x = next
			},
			func(ctx *plan.Ctx) {
				j := ctx.Job
				// Stage off-heap copies of x; the PCIe hop is charged on each
				// GWork's vector input.
				xBuf := c.TaskManagers[0].Pool.MustAllocate(4 * nReal)
				for i, v := range x {
					putRawF32(xBuf.Bytes(), i, v)
				}
				perWorker := core.StageBuffer(g, xBuf)
				// x crosses PCIe once per device per iteration via the cache.
				iterKey := core.CacheKey{JobID: j.ID, Partition: -2, Block: it}
				tm0 := c.Clock.Now()
				yParts := flink.ProcessPartitions(gmatrix, "gpu:multiply", 4, func(pi, worker int, in flink.Partition[*core.Block]) ([][]float32, int64) {
					sp := parts[pi]
					rows := len(sp.rowPtr) - 1
					pool := c.TaskManagers[worker].Pool
					y := make([]float32, rows)
					// One GWork per matrix chunk; all submitted before waiting so
					// the stream pipeline overlaps their stages.
					works := make([]*core.GWork, len(in.Items))
					outs := make([]*membuf.HBuffer, len(in.Items))
					for bi, blk := range in.Items {
						chunkRows := int(kernelRowsOf(blk))
						outBuf := pool.MustAllocate(4 * chunkRows)
						nomRows := in.Nominal * int64(chunkRows) / int64(rows)
						w := &core.GWork{
							ExecuteName: kernels.SpMVCSRKernel,
							Size:        chunkRows,
							Nominal:     nomRows,
							BlockSize:   256,
							GridSize:    (chunkRows + 255) / 256,
							In: []core.Input{
								{Buf: blk.Buf, Nominal: blk.Nominal, Cache: p.UseCache, Key: blk.Key(j.ID)},
								{Buf: perWorker[worker%workers], Nominal: rowsNominal * 4, Cache: p.UseCache, Key: iterKey},
							},
							Out:        outBuf,
							OutNominal: nomRows * 4,
							Args:       []int64{nomRows * int64(p.NNZPerRow), nomRows},
							KernelWork: kernels.SpMVWork(nomRows*int64(p.NNZPerRow), nomRows),
							JobID:      j.ID,
						}
						g.Manager(worker).Streams.Submit(w)
						works[bi] = w
						outs[bi] = outBuf
					}
					for bi, w := range works {
						if err := w.Wait(); err != nil {
							panic(err)
						}
						r0 := chunkRowStart[pi][bi]
						for r := 0; r < w.Size; r++ {
							y[r0+r] = rawF32(outs[bi].Bytes(), r)
						}
						outs[bi].Free()
					}
					return [][]float32{y}, in.Nominal
				})
				res.MapPhase = c.Clock.Now() - tm0
				// y stays distributed; driver materialization is bookkeeping.
				next := make([]float32, nReal)
				for pi := 0; pi < yParts.Partitions(); pi++ {
					copy(next[parts[pi].rowStart:], yParts.Partition(pi).Items[0])
				}
				x = next
				for _, b := range perWorker {
					b.Free()
				}
				xBuf.Free()
			})
		plan.Do(sub, "sink", func(ctx *plan.Ctx) {
			if it == p.Iterations-1 && p.WriteResult {
				// Fig 7b: the last iteration writes the vector to HDFS.
				writeResult(g, "spmv-output", rowsNominal*4)
			}
		})
	})
	plan.EitherDo(gr, "cleanup", "multiply",
		func(ctx *plan.Ctx) {},
		func(ctx *plan.Ctx) {
			g.ReleaseJobCaches(ctx.Job.ID)
			for pi := range blockParts {
				blockParts[pi].Items[0].Buf.Free()
			}
		})
	gr.Execute()

	res.Iterations = iters.Durations
	res.Total = c.Clock.Now() - start
	res.Checksum = vectorChecksum(x)
	return res
}

// SpMVCPU runs the baseline iterative multiply.
func SpMVCPU(g *core.GFlink, p SpMVParams) Result {
	return SpMV(g, p, plan.Options{Mode: plan.ForceCPU})
}

// SpMVGPU runs the GFlink multiply: each partition's CSR chunk is one
// cacheable device block; x is broadcast and transferred each
// iteration, exactly the traffic pattern Fig 8a's cache ablation
// measures.
func SpMVGPU(g *core.GFlink, p SpMVParams) Result {
	return SpMV(g, p, plan.Options{Mode: plan.ForceGPU})
}
