package workloads

import (
	"gflink/internal/core"
	"gflink/internal/plan"
	"gflink/internal/stream"
)

// BackpressureParams configures the streaming backpressure workload: a
// generator source on worker 0 feeding a tumbling-window aggregation on
// the last worker (so every batch crosses the cluster network), with
// the aggregates draining back to a sink on worker 0.
type BackpressureParams struct {
	// Records bounds the stream.
	Records int64
	// Mode places the window stage (plan.ForceCPU / plan.ForceGPU /
	// plan.Auto).
	Mode plan.Mode
	// BufferBatches is the per-edge credit limit; 0 keeps the stream
	// layer's default.
	BufferBatches int
	// BatchRecords overrides the micro-batch size; 0 keeps the default.
	BatchRecords int
	// WindowRecords is the tumbling-window width (default 1024).
	WindowRecords int
	// Slots is the aggregation table size (default 256).
	Slots int
	// Seed keys the generator (default 42).
	Seed uint64
}

// Backpressure runs the rate-mismatched source→window→sink pipeline and
// returns its result. Must be called inside g.Run, like every driver in
// this package.
func Backpressure(g *core.GFlink, p BackpressureParams) stream.Result {
	if p.WindowRecords <= 0 {
		p.WindowRecords = 1024
	}
	if p.Slots <= 0 {
		p.Slots = 256
	}
	if p.Seed == 0 {
		p.Seed = 42
	}
	opts := []stream.Option{stream.WithMode(p.Mode)}
	if p.BufferBatches > 0 {
		opts = append(opts, stream.WithBufferBatches(p.BufferBatches))
	}
	if p.BatchRecords > 0 {
		opts = append(opts, stream.WithBatchRecords(p.BatchRecords))
	}
	windowWorker := g.Cfg.Config.Workers - 1
	pl := stream.New(g, "backpressure", opts...)
	pl.Source("source", 0, stream.SourceSpec{Records: p.Records, Seed: p.Seed}).
		Window("window", windowWorker, stream.WindowSpec{
			Trigger: stream.TumblingCount(p.WindowRecords),
			Slots:   p.Slots,
		}).
		Sink("sink", 0)
	return pl.Run()
}
