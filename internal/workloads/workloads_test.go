package workloads

import (
	"math"
	"testing"
	"time"

	"gflink/internal/costmodel"
)

// testSpec is a small 2-worker deployment with aggressive scale-down.
func testSpec(div int64) Spec {
	return Spec{
		Workers:       2,
		GPUsPerWorker: 2,
		Profile:       costmodel.C2050,
		ScaleDivisor:  div,
	}
}

// close enough for float32 accumulation-order differences.
func relClose(a, b, tol float64) bool {
	if a == b {
		return true
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return false
	}
	return math.Abs(a-b)/den < tol
}

func TestKMeansCPUvsGPUEquivalence(t *testing.T) {
	g := testSpec(2000).Build()
	var cpu, gpu Result
	g.Run(func() {
		p := KMeansParams{Points: 2_000_000, K: 4, D: 8, Iterations: 3, Parallelism: 8, UseCache: true, Seed: 1}
		cpu = KMeansCPU(g, p)
		gpu = KMeansGPU(g, p)
	})
	if !relClose(cpu.Checksum, gpu.Checksum, 0.02) {
		t.Errorf("checksums diverge: cpu %v gpu %v", cpu.Checksum, gpu.Checksum)
	}
	if gpu.Total >= cpu.Total {
		t.Errorf("GPU KMeans (%v) not faster than CPU (%v)", gpu.Total, cpu.Total)
	}
	if len(cpu.Iterations) != 3 || len(gpu.Iterations) != 3 {
		t.Errorf("iteration counts: %d/%d", len(cpu.Iterations), len(gpu.Iterations))
	}
}

func TestKMeansCacheWarmsAfterFirstIteration(t *testing.T) {
	g := testSpec(2000).Build()
	var r Result
	g.Run(func() {
		r = KMeansGPU(g, KMeansParams{Points: 4_000_000, K: 4, D: 8, Iterations: 4, Parallelism: 8, UseCache: true, Seed: 2})
	})
	// Iteration 1 pays the H2D of every point block; later iterations
	// hit the cache and must be faster.
	if r.Iterations[1] >= r.Iterations[0] {
		t.Errorf("iter1 (%v) not faster than iter0 (%v) despite cache", r.Iterations[1], r.Iterations[0])
	}
}

func TestLinRegCPUvsGPUEquivalence(t *testing.T) {
	g := testSpec(2000).Build()
	var cpu, gpu Result
	g.Run(func() {
		p := LinRegParams{Samples: 2_000_000, D: 8, Iterations: 3, Parallelism: 8, UseCache: true, Seed: 3}
		cpu = LinRegCPU(g, p)
		gpu = LinRegGPU(g, p)
	})
	if !relClose(cpu.Checksum, gpu.Checksum, 0.02) {
		t.Errorf("checksums diverge: cpu %v gpu %v", cpu.Checksum, gpu.Checksum)
	}
	if gpu.Total >= cpu.Total {
		t.Errorf("GPU LinReg (%v) not faster than CPU (%v)", gpu.Total, cpu.Total)
	}
}

func TestPointAddCPUvsGPUEquivalence(t *testing.T) {
	g := testSpec(1000).Build()
	var cpu, gpu Result
	g.Run(func() {
		p := PointAddParams{Points: 1_000_000, Iterations: 2, Parallelism: 8, Seed: 4}
		cpu = PointAddCPU(g, p)
		gpu = PointAddGPU(g, p)
	})
	if !relClose(cpu.Checksum, gpu.Checksum, 1e-6) {
		t.Errorf("checksums diverge: cpu %v gpu %v", cpu.Checksum, gpu.Checksum)
	}
}

func TestSpMVCPUvsGPUExactEquivalence(t *testing.T) {
	g := testSpec(1000).Build()
	var cpu, gpu Result
	g.Run(func() {
		p := SpMVParams{MatrixBytes: 256 << 20, NNZPerRow: 8, Iterations: 3, Parallelism: 8, UseCache: true, Seed: 5}
		cpu = SpMVCPU(g, p)
		gpu = SpMVGPU(g, p)
	})
	// Identical operation order: results must match exactly.
	if cpu.Checksum != gpu.Checksum {
		t.Errorf("checksums diverge: cpu %v gpu %v", cpu.Checksum, gpu.Checksum)
	}
	if gpu.Total >= cpu.Total {
		t.Errorf("GPU SpMV (%v) not faster than CPU (%v)", gpu.Total, cpu.Total)
	}
}

func TestSpMVCacheEffect(t *testing.T) {
	run := func(cache bool) Result {
		// Single machine, as in the paper's Fig 8a setup: no network, so
		// the matrix reload dominates the uncached iterations.
		g := Spec{Workers: 1, GPUsPerWorker: 2, Profile: costmodel.C2050, ScaleDivisor: 2000}.Build()
		var r Result
		g.Run(func() {
			r = SpMVGPU(g, SpMVParams{MatrixBytes: 1 << 30, NNZPerRow: 8, Iterations: 6, Parallelism: 4, UseCache: cache, Seed: 6})
		})
		return r
	}
	with, without := run(true), run(false)
	if with.Checksum != without.Checksum {
		t.Errorf("cache changed results: %v vs %v", with.Checksum, without.Checksum)
	}
	if float64(with.Total) > 0.8*float64(without.Total) {
		t.Errorf("cache gained too little: with %v vs without %v", with.Total, without.Total)
	}
	// Steady-state iterations show the gap most clearly (Fig 8a).
	if with.Iterations[3] >= without.Iterations[3] {
		t.Errorf("cached steady iteration (%v) not faster than uncached (%v)", with.Iterations[3], without.Iterations[3])
	}
}

func TestSpMVFirstIterationSlower(t *testing.T) {
	g := testSpec(1000).Build()
	var r Result
	g.Run(func() {
		r = SpMVGPU(g, SpMVParams{MatrixBytes: 512 << 20, NNZPerRow: 8, Iterations: 4, Parallelism: 8, UseCache: true, FromHDFS: true, WriteResult: true, Seed: 7})
	})
	// Fig 7b: iteration 0 pays HDFS + matrix H2D; steady iterations are
	// much cheaper.
	if r.Iterations[0] < 2*r.Iterations[2] {
		t.Errorf("first iteration %v not >> steady %v", r.Iterations[0], r.Iterations[2])
	}
}

func TestPageRankCPUvsGPUExactEquivalence(t *testing.T) {
	g := testSpec(2000).Build()
	var cpu, gpu Result
	g.Run(func() {
		p := PageRankParams{Pages: 1_000_000, EdgesPerPage: 8, Iterations: 3, Parallelism: 8, UseCache: true, Seed: 8}
		cpu = PageRankCPU(g, p)
		gpu = PageRankGPU(g, p)
	})
	if cpu.Checksum != gpu.Checksum {
		t.Errorf("checksums diverge: cpu %v gpu %v", cpu.Checksum, gpu.Checksum)
	}
	if gpu.Total >= cpu.Total {
		t.Errorf("GPU PageRank (%v) not faster than CPU (%v)", gpu.Total, cpu.Total)
	}
}

func TestConnCompCPUvsGPUExactEquivalence(t *testing.T) {
	g := testSpec(2000).Build()
	var cpu, gpu Result
	g.Run(func() {
		p := ConnCompParams{Pages: 1_000_000, EdgesPerPage: 8, Iterations: 3, Parallelism: 8, UseCache: true, Seed: 9}
		cpu = ConnCompCPU(g, p)
		gpu = ConnCompGPU(g, p)
	})
	if cpu.Checksum != gpu.Checksum {
		t.Errorf("checksums diverge: cpu %v gpu %v", cpu.Checksum, gpu.Checksum)
	}
	if gpu.Total >= cpu.Total {
		t.Errorf("GPU ConnComp (%v) not faster than CPU (%v)", gpu.Total, cpu.Total)
	}
}

func TestWordCountCPUvsGPUExactEquivalence(t *testing.T) {
	g := testSpec(4000).Build()
	var cpu, gpu Result
	g.Run(func() {
		p := WordCountParams{Bytes: 512 << 20, Parallelism: 8, Seed: 10}
		cpu = WordCountCPU(g, p)
		gpu = WordCountGPU(g, p)
	})
	if cpu.Checksum != gpu.Checksum {
		t.Errorf("checksums diverge: cpu %v gpu %v", cpu.Checksum, gpu.Checksum)
	}
	// WordCount is I/O bound: GPU helps, but only modestly (Fig 5c).
	sp := Speedup(cpu, gpu)
	if sp < 1.0 || sp > 2.0 {
		t.Errorf("WordCount speedup %.2f outside I/O-bound band [1.0, 2.0]", sp)
	}
}

func TestIterativeSpeedupBeatsWordCount(t *testing.T) {
	// The paper's headline shape: iterative compute-heavy workloads gain
	// far more than the one-pass I/O-bound one.
	g1 := testSpec(20000).Build()
	var kcpu, kgpu Result
	g1.Run(func() {
		p := KMeansParams{Points: 40_000_000, K: 8, D: 16, Iterations: 5, Parallelism: 8, UseCache: true, Seed: 11}
		kcpu = KMeansCPU(g1, p)
		kgpu = KMeansGPU(g1, p)
	})
	g2 := testSpec(4000).Build()
	var wcpu, wgpu Result
	g2.Run(func() {
		p := WordCountParams{Bytes: 512 << 20, Parallelism: 8, Seed: 11}
		wcpu = WordCountCPU(g2, p)
		wgpu = WordCountGPU(g2, p)
	})
	ks, ws := Speedup(kcpu, kgpu), Speedup(wcpu, wgpu)
	if ks <= ws {
		t.Errorf("KMeans speedup (%.2f) should exceed WordCount's (%.2f)", ks, ws)
	}
	if ks < 2.5 {
		t.Errorf("KMeans speedup %.2f implausibly low (want >= 2.5 at this scale)", ks)
	}
}

func TestRunConcurrently(t *testing.T) {
	g := testSpec(2000).Build()
	var each []time.Duration
	var makespan time.Duration
	g.Run(func() {
		each, makespan = RunConcurrently(g.Clock, []func(){
			func() { PointAddGPU(g, PointAddParams{Points: 1_000_000, Parallelism: 4, Seed: 12}) },
			func() { PointAddGPU(g, PointAddParams{Points: 1_000_000, Parallelism: 4, Seed: 13}) },
		})
	})
	if len(each) != 2 || each[0] <= 0 || each[1] <= 0 {
		t.Fatalf("durations: %v", each)
	}
	if makespan < each[0] && makespan < each[1] {
		t.Errorf("makespan %v below both app times %v", makespan, each)
	}
}

func TestDeterministicWorkloads(t *testing.T) {
	run := func() (float64, time.Duration) {
		g := testSpec(2000).Build()
		var r Result
		g.Run(func() {
			r = KMeansGPU(g, KMeansParams{Points: 1_000_000, K: 4, D: 8, Iterations: 2, Parallelism: 8, UseCache: true, Seed: 14})
		})
		return r.Checksum, r.Total
	}
	c1, t1 := run()
	c2, t2 := run()
	if c1 != c2 || t1 != t2 {
		t.Errorf("nondeterminism: (%v,%v) vs (%v,%v)", c1, t1, c2, t2)
	}
}
