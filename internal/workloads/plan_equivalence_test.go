package workloads

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"gflink/internal/plan"
)

// The pre-refactor eager drivers produced these exact results (same
// deployment, same parameters). Pinning them as literals makes the
// planned pipelines' equivalence a regression test, not a tautology:
// forced-CPU and forced-GPU plans must reproduce the eager engine's
// virtual-clock trace byte for byte, nanosecond for nanosecond.
var eagerGolden = map[string]Result{
	"wc-cpu": {Total: 3751324438, MapPhase: 410442318, Checksum: 4.9375816e+07},
	"wc-gpu": {Total: 3395827966, MapPhase: 54945846, Checksum: 4.9375816e+07},
	"km-cpu": {Total: 2438583990, MapPhase: 39071418, Checksum: 32105.33296060562,
		Iterations: []time.Duration{406605774, 159272442, 372705774}},
	"km-gpu": {Total: 2334524246, MapPhase: 2709312, Checksum: 32105.33296060562,
		Iterations: []time.Duration{375470242, 122810336, 336243668}},
	"spmv-cpu": {Total: 4300746211, MapPhase: 370443413, Checksum: 193219.0654707551,
		Iterations: []time.Duration{1482489545, 553704693, 764551973}},
	"spmv-gpu": {Total: 3253378788, MapPhase: 13862843, Checksum: 193219.0654707551,
		Iterations: []time.Duration{1148283262, 197124123, 407971403}},
}

func goldenWCParams() WordCountParams {
	return WordCountParams{Bytes: 512 << 20, Parallelism: 8, Seed: 10}
}

func goldenKMParams() KMeansParams {
	return KMeansParams{Points: 2_000_000, K: 4, D: 8, Iterations: 3, Parallelism: 8,
		UseCache: true, FromHDFS: true, WriteResult: true, Seed: 1}
}

func goldenSpMVParams() SpMVParams {
	return SpMVParams{MatrixBytes: 256 << 20, NNZPerRow: 8, Iterations: 3, Parallelism: 8,
		UseCache: true, FromHDFS: true, WriteResult: true, Seed: 5}
}

// planObservation is one full equivalence sweep: the forced placements
// replayed under the exact golden configurations, plus every workload
// run standalone in each of the three modes so Auto can be compared
// against the forced runs it must match.
type planObservation struct {
	Golden map[string]Result
	Solo   map[string]Result
}

func planEquivalenceRun() planObservation {
	obs := planObservation{Golden: map[string]Result{}, Solo: map[string]Result{}}

	// Replays of the golden sequences: both placements back to back on
	// one cluster, exactly how the eager baselines were recorded.
	{
		g := testSpec(4000).Build()
		g.Run(func() {
			obs.Golden["wc-cpu"] = WordCountCPU(g, goldenWCParams())
			obs.Golden["wc-gpu"] = WordCountGPU(g, goldenWCParams())
		})
	}
	{
		g := testSpec(2000).Build()
		g.Run(func() {
			obs.Golden["km-cpu"] = KMeansCPU(g, goldenKMParams())
			obs.Golden["km-gpu"] = KMeansGPU(g, goldenKMParams())
		})
	}
	{
		g := testSpec(1000).Build()
		g.Run(func() {
			obs.Golden["spmv-cpu"] = SpMVCPU(g, goldenSpMVParams())
			obs.Golden["spmv-gpu"] = SpMVGPU(g, goldenSpMVParams())
		})
	}

	// Standalone runs, one fresh cluster each, in all three modes.
	modes := []plan.Mode{plan.ForceCPU, plan.ForceGPU, plan.Auto}
	for _, m := range modes {
		opts := plan.Options{Mode: m}
		{
			g := testSpec(4000).Build()
			g.Run(func() { obs.Solo["wc-"+m.String()] = WordCount(g, goldenWCParams(), opts) })
		}
		{
			g := testSpec(2000).Build()
			g.Run(func() { obs.Solo["km-"+m.String()] = KMeans(g, goldenKMParams(), opts) })
		}
		{
			g := testSpec(1000).Build()
			g.Run(func() { obs.Solo["spmv-"+m.String()] = SpMV(g, goldenSpMVParams(), opts) })
		}
	}
	return obs
}

// TestPlannedMatchesEagerGolden is the refactor's equivalence gate:
// forced-CPU and forced-GPU planned pipelines must reproduce the
// pre-refactor eager results exactly, and Auto placement must land on
// one of the two forced traces (it may pick either device, but it must
// not invent a third behavior).
func TestPlannedMatchesEagerGolden(t *testing.T) {
	obs := planEquivalenceRun()
	for name, want := range eagerGolden {
		if got := obs.Golden[name]; !reflect.DeepEqual(got, want) {
			t.Errorf("%s diverged from the eager golden:\ngot:  %+v\nwant: %+v", name, got, want)
		}
	}
	for _, wl := range []string{"wc", "km", "spmv"} {
		auto := obs.Solo[wl+"-auto"]
		cpu := obs.Solo[wl+"-cpu"]
		gpu := obs.Solo[wl+"-gpu"]
		if !reflect.DeepEqual(auto, cpu) && !reflect.DeepEqual(auto, gpu) {
			t.Errorf("%s auto placement matches neither forced trace:\nauto: %+v\ncpu:  %+v\ngpu:  %+v",
				wl, auto, cpu, gpu)
		}
	}
}

// TestPlannedDeterministicAcrossGOMAXPROCS extends the determinism
// regression net over the plan layer: the full equivalence sweep —
// every workload, every placement mode — must observe identical
// results under serial and parallel schedulers and on a repeated run.
// Run under -race in CI.
func TestPlannedDeterministicAcrossGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	runtime.GOMAXPROCS(1)
	serial := planEquivalenceRun()
	runtime.GOMAXPROCS(4)
	parallel := planEquivalenceRun()

	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("planned runs differ across GOMAXPROCS:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
	again := planEquivalenceRun()
	if !reflect.DeepEqual(parallel, again) {
		t.Errorf("repeated planned run differs:\nfirst:  %+v\nsecond: %+v", parallel, again)
	}
}
