// Package workloads implements the paper's six evaluation benchmarks
// (Table 1: KMeans, PageRank, WordCount, ComponentConnect,
// LinearRegression, SpMV) plus the PointAdd microbenchmark of
// Algorithm 3.1 and Fig 8, each in two variants:
//
//   - a CPU driver on the baseline Flink engine (iterator execution
//     model, per-record overheads), and
//   - a GFlink driver using GDST blocks, GWork submission and the GPU
//     cache.
//
// Both variants compute over identical real (scaled-down) data so
// results are comparable; the shapes the paper reports emerge from the
// cost models, not from scripted numbers.
package workloads

import (
	"fmt"
	"time"

	"gflink/internal/core"
	"gflink/internal/costmodel"
	"gflink/internal/flink"
	"gflink/internal/hdfs"
	"gflink/internal/vclock"
)

// Spec describes the deployment every workload runs on.
type Spec struct {
	Workers        int
	SlotsPerWorker int
	GPUsPerWorker  int
	Profile        costmodel.GPUProfile
	ScaleDivisor   int64
	StreamsPerGPU  int
	CacheBytes     int64
	CachePolicy    core.CachePolicy
	// HostTierBytes caps the per-device host paging tier (0 = disabled,
	// the paper-mode default).
	HostTierBytes int64
	// SpillDisk overrides the simulated spill disk (zero value =
	// costmodel.DefaultSpillDisk).
	SpillDisk  costmodel.Disk
	Scheduler  core.SchedulerPolicy
	NoStealing bool
	PageSize   int
	// BlockNominal bounds the nominal bytes per GDST block (0 = 128 MiB).
	BlockNominal int64
	// Projection enables SoA column projection on the transfer channel
	// (the abl-projection ablation). Off in paper mode.
	Projection bool
	// Chunking enables chunked double-buffered GWork pipelining (the
	// abl-chunking ablation). Off in paper mode.
	Chunking bool
	// OnBuild, when set, sees every deployment Build constructs before
	// the workload runs — the hook the bench harness uses to collect
	// tracers and metric registries without threading observability
	// through every workload signature.
	OnBuild func(*core.GFlink)
}

// Build constructs the GFlink deployment (which embeds the baseline
// cluster used by the CPU drivers).
func (s Spec) Build() *core.GFlink {
	g := core.New(core.Config{
		Config: flink.Config{
			Workers:        s.Workers,
			SlotsPerWorker: s.SlotsPerWorker,
			Model:          costmodel.Default(),
			PageSize:       s.PageSize,
			ScaleDivisor:   s.ScaleDivisor,
			HDFS:           hdfs.Config{},
		},
		GPUsPerWorker:    s.GPUsPerWorker,
		GPUProfile:       s.Profile,
		StreamsPerGPU:    s.StreamsPerGPU,
		CacheBytesPerJob: s.CacheBytes,
		CachePolicy:      s.CachePolicy,
		HostTierBytes:    s.HostTierBytes,
		SpillDisk:        s.SpillDisk,
		Scheduler:        s.Scheduler,
		DisableStealing:  s.NoStealing,
		MaxBlockNominal:  s.BlockNominal,
		EnableProjection: s.Projection,
		EnableChunking:   s.Chunking,
	})
	if s.OnBuild != nil {
		s.OnBuild(g)
	}
	return g
}

// Result is a workload run's measurements.
type Result struct {
	// Total is the end-to-end virtual time of the measured job,
	// including submission and any HDFS I/O it performs.
	Total time.Duration
	// Iterations holds per-iteration times for iterative workloads.
	Iterations []time.Duration
	// MapPhase is the steady-state duration of the map/kernel phase
	// (last iteration), the quantity Fig 8b reports.
	MapPhase time.Duration
	// Checksum fingerprints the output for CPU/GPU equivalence checks.
	Checksum float64
}

// Speedup returns base.Total / r.Total.
func Speedup(base, r Result) float64 {
	if r.Total <= 0 {
		return 0
	}
	return float64(base.Total) / float64(r.Total)
}

// mix is splitmix64: a deterministic 64-bit mixer used by every data
// generator, keyed by (seed, ordinal) so the CPU and GPU variants build
// bit-identical real datasets at any scale divisor.
func mix(seed, x uint64) uint64 {
	z := seed + 0x9e3779b97f4a7c15*(x+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// unit maps (seed, ordinal) to a float32 in [0, 1).
func unit(seed, x uint64) float32 {
	return float32(mix(seed, x)>>40) / float32(1<<24)
}

// planLanes returns the lane counts placement estimates divide a stage
// over: CPU stages spread over the job's task slots, GPU stages over
// the deployment's devices.
func planLanes(g *core.GFlink, par int) (cpuLanes, gpuLanes int) {
	if par <= 0 || par > g.Cluster.Parallelism() {
		par = g.Cluster.Parallelism()
	}
	cpuLanes = par
	gpuLanes = g.Cfg.Config.Workers * g.Cfg.GPUsPerWorker
	if gpuLanes < 1 {
		gpuLanes = 1
	}
	return cpuLanes, gpuLanes
}

// stageRead creates (if needed) an HDFS file of the given size and runs
// one reader task per partition, charging the disk and network time of
// streaming it in — the first-iteration I/O of Fig 7a/7b and the input
// scan of WordCount.
func stageRead(g *core.GFlink, j *flink.Job, name string, bytes int64, par int) {
	c := g.Cluster
	if par <= 0 {
		par = c.Parallelism()
	}
	f, err := c.FS.Open(name)
	if err != nil {
		f = c.FS.Create(name, bytes)
	}
	splits := c.FS.Splits(f, par)
	dummy := flink.Generate(j, "stage:"+name, int64(par), 1, par, func(int, int64) struct{} { return struct{}{} })
	flink.ProcessPartitions(dummy, "read:"+name, 1, func(p, worker int, in flink.Partition[struct{}]) ([]struct{}, int64) {
		c.FS.ReadSplit(worker, splits[p])
		return nil, splits[p].Length
	})
}

// writeResult writes bytes to HDFS through one sink task per worker,
// each writing its share (the final-iteration output of Fig 7a/7b).
func writeResult(g *core.GFlink, name string, bytes int64) {
	w := g.Cfg.Config.Workers
	share := bytes / int64(w)
	grp := vclock.NewGroup(g.Cluster.Clock)
	for i := 0; i < w; i++ {
		i := i
		grp.Go(fmt.Sprintf("sink[%d]", i), func() {
			g.Cluster.FS.Write(i, name, share)
		})
	}
	grp.Wait()
}

// runConcurrently launches each driver as its own virtual-time process
// and returns the per-driver durations plus the makespan (the
// multi-application experiments of Fig 8c/8d).
func RunConcurrently(clock *vclock.Clock, drivers []func()) (each []time.Duration, makespan time.Duration) {
	each = make([]time.Duration, len(drivers))
	start := clock.Now()
	grp := vclock.NewGroup(clock)
	for i, d := range drivers {
		i, d := i, d
		grp.Go(fmt.Sprintf("app-%d", i), func() {
			t0 := clock.Now()
			d()
			each[i] = clock.Now() - t0
		})
	}
	grp.Wait()
	return each, clock.Now() - start
}
