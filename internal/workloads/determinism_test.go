package workloads

import (
	"reflect"
	"runtime"
	"testing"

	"gflink/internal/flink"
)

// detObservation is everything one determinism run exposes: full
// workload results (virtual-clock totals included) plus the record
// ordering of a driver-side group-by, the two things map iteration
// order or goroutine scheduling could plausibly perturb.
type detObservation struct {
	CPU, GPU Result
	Counts   []flink.KeyCount[int64]
}

// determinismRun builds a fresh cluster and runs WordCount on both
// paths plus a CountByKey pipeline with colliding keys.
func determinismRun() detObservation {
	g := testSpec(1000).Build()
	var out detObservation
	g.Run(func() {
		p := WordCountParams{Bytes: 1 << 24, Parallelism: 6, Seed: 7}
		out.CPU = WordCountCPU(g, p)
		out.GPU = WordCountGPU(g, p)
		j := g.Cluster.NewJob("det-groups")
		ds := flink.Generate(j, "nums", 40_000, 8, 8, func(part int, ord int64) int64 {
			return (int64(part)*31 + ord/1000) % 7
		})
		out.Counts = flink.CountByKey(ds, "mod7", func(v int64) int64 { return v })
	})
	return out
}

// TestDeterministicAcrossGOMAXPROCS runs the same workloads under
// serial and parallel schedulers and demands byte-identical
// observations: same checksums, same result ordering, and the same
// simulated-clock totals down to the nanosecond. The virtual clock
// already serializes process execution; this test is the regression
// net for the residual nondeterminism sources (map iteration feeding
// ordered output, float accumulation order) that the maporder analyzer
// guards statically. Run under -race in CI.
func TestDeterministicAcrossGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	runtime.GOMAXPROCS(1)
	serial := determinismRun()
	runtime.GOMAXPROCS(4)
	parallel := determinismRun()

	if serial.CPU.Total != parallel.CPU.Total || serial.GPU.Total != parallel.GPU.Total {
		t.Errorf("simulated-clock totals differ across GOMAXPROCS: cpu %v vs %v, gpu %v vs %v",
			serial.CPU.Total, parallel.CPU.Total, serial.GPU.Total, parallel.GPU.Total)
	}
	if serial.CPU.Checksum != parallel.CPU.Checksum || serial.GPU.Checksum != parallel.GPU.Checksum {
		t.Errorf("checksums differ across GOMAXPROCS: cpu %v vs %v, gpu %v vs %v",
			serial.CPU.Checksum, parallel.CPU.Checksum, serial.GPU.Checksum, parallel.GPU.Checksum)
	}
	if !reflect.DeepEqual(serial.CPU, parallel.CPU) || !reflect.DeepEqual(serial.GPU, parallel.GPU) {
		t.Errorf("workload results differ across GOMAXPROCS:\nserial:   %+v %+v\nparallel: %+v %+v",
			serial.CPU, serial.GPU, parallel.CPU, parallel.GPU)
	}
	if !reflect.DeepEqual(serial.Counts, parallel.Counts) {
		t.Errorf("CountByKey ordering differs across GOMAXPROCS:\nserial:   %v\nparallel: %v",
			serial.Counts, parallel.Counts)
	}
	// A second run on the same GOMAXPROCS must also be identical — the
	// cheap way to catch nondeterminism that GOMAXPROCS alone does not
	// tickle (map seed randomization changes per process, but two runs
	// in one process still reshuffle iteration order).
	again := determinismRun()
	if !reflect.DeepEqual(parallel, again) {
		t.Errorf("repeated run differs:\nfirst:  %+v\nsecond: %+v", parallel, again)
	}
}
