package workloads

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"gflink/internal/core"
	"gflink/internal/costmodel"
	"gflink/internal/flink"
	"gflink/internal/kernels"
	"gflink/internal/plan"
)

// WordCountParams configures the WordCount benchmark: the only batch
// (one-pass) workload of Table 1, whose HDFS scan makes it I/O-bound
// (the ~1.1x speedup of Fig 5c).
type WordCountParams struct {
	// Bytes is the nominal input size (24-56 GB in the paper).
	Bytes int64
	// Vocab is the distinct-word table size.
	Vocab int
	// LineBytes is the average record length.
	LineBytes   int
	Parallelism int
	Seed        uint64
}

func (p *WordCountParams) defaults() {
	if p.Vocab == 0 {
		p.Vocab = 4096
	}
	if p.LineBytes == 0 {
		p.LineBytes = 100
	}
}

// wcLine deterministically generates the text line at nominal ordinal
// ord: skewed word ids joined by spaces, padded to ~LineBytes.
func wcLine(seed uint64, ord int64, lineBytes, vocab int) string {
	var b strings.Builder
	i := 0
	for b.Len() < lineBytes-8 {
		m := mix(seed, uint64(ord)*97+uint64(i))
		// Product skew: low word ids are much more frequent.
		id := int((m % uint64(vocab)) * ((m >> 32) % uint64(vocab)) / uint64(vocab))
		fmt.Fprintf(&b, "w%d ", id)
		i++
	}
	return b.String()
}

// wcChecksum fingerprints a count table. Slots are summed in sorted
// order: float addition is not associative, so map order would make the
// checksum differ between runs of the same binary.
func wcChecksum(counts map[int]uint32) float64 {
	slots := make([]int, 0, len(counts))
	for slot := range counts {
		slots = append(slots, slot)
	}
	sort.Ints(slots)
	var s float64
	for _, slot := range slots {
		s += float64(slot+1) * float64(counts[slot])
	}
	return s
}

// wcPair is one (slot, count) shuffle record.
type wcPair struct {
	Slot  int
	Count uint32
}

// wordCountStageCost estimates the tokenize stage for auto placement:
// one pass over the text (records at ~12 bytes per word) against one
// kernel launch per partition with the full text crossing PCIe and only
// the dense count tables coming back.
func wordCountStageCost(g *core.GFlink, p WordCountParams) costmodel.StageCost {
	cpuLanes, gpuLanes := planLanes(g, p.Parallelism)
	return costmodel.StageCost{
		Records:        p.Bytes / 12,
		CPUPerRec:      costmodel.Work{Flops: 14, BytesRead: 7},
		GPUWork:        kernels.WordCountWork(p.Bytes),
		HostToDevice:   p.Bytes,
		DeviceToHost:   int64(4*p.Vocab) * int64(cpuLanes),
		Launches:       int64(cpuLanes),
		CPUParallelism: cpuLanes,
		GPUParallelism: gpuLanes,
	}
}

// WordCount runs the benchmark through the plan layer as one pipeline:
// HDFS source, an Either tokenize stage (iterator-model CPU body vs
// tokenizing-kernel GPU body), the count shuffle, and the output write.
// Forced modes reproduce the former WordCountCPU/WordCountGPU drivers
// exactly; Auto lets the cost model pick the tokenize device.
func WordCount(g *core.GFlink, p WordCountParams, opts plan.Options) Result {
	p.defaults()
	c := g.Cluster
	start := c.Clock.Now()
	res := Result{}
	var counts map[int]uint32
	var tm0 time.Duration

	gr := plan.NewGraph(g, "wordcount-"+opts.Mode.String(), opts)
	gr.PlaceGroup("tokenize", wordCountStageCost(g, p))
	lines := plan.Source(gr, "wc-input", func(ctx *plan.Ctx) *flink.Dataset[string] {
		c.FS.Create("wc-input", p.Bytes)
		// The scan cost is identical on both placements.
		lines, err := flink.ReadHDFS(ctx.Job, "wc-input", p.Parallelism, p.LineBytes, func(split int, ord int64) string {
			return wcLine(p.Seed, ord, p.LineBytes, p.Vocab)
		})
		if err != nil {
			panic(err)
		}
		tm0 = c.Clock.Now()
		return lines
	})
	tables := plan.Either(lines, "tokenize", "tokenize",
		func(ctx *plan.Ctx, in *flink.Dataset[string]) *flink.Dataset[wcPair] {
			return tokenizeCPU(ctx.Job, in, p)
		},
		func(ctx *plan.Ctx, in *flink.Dataset[string]) *flink.Dataset[wcPair] {
			return tokenizeGPU(ctx.G, ctx.Job, in, p)
		})
	reduced := plan.ReduceByKey(tables, "sumCounts", costmodel.Work{Flops: 2},
		func(pr wcPair) int { return pr.Slot },
		func(a, b wcPair) wcPair { return wcPair{Slot: a.Slot, Count: a.Count + b.Count} })
	plan.Collect(reduced, "counts", func(ctx *plan.Ctx, recs []wcPair) {
		counts = make(map[int]uint32, p.Vocab)
		for _, pr := range recs {
			counts[pr.Slot] += pr.Count
		}
		res.MapPhase = c.Clock.Now() - tm0
		flinkWriteCounts(g, p.Vocab)
	})
	gr.Execute()

	res.Total = c.Clock.Now() - start
	res.Checksum = wcChecksum(counts)
	return res
}

// WordCountCPU runs the baseline WordCount: scan HDFS, tokenize through
// the iterator model, shuffle counts, write the result.
func WordCountCPU(g *core.GFlink, p WordCountParams) Result {
	return WordCount(g, p, plan.Options{Mode: plan.ForceCPU})
}

// WordCountGPU runs the GFlink WordCount: text blocks go to the
// tokenizing kernel; the shuffle and I/O stay on the engine, which is
// why the speedup is modest.
func WordCountGPU(g *core.GFlink, p WordCountParams) Result {
	return WordCount(g, p, plan.Options{Mode: plan.ForceGPU})
}

// tokenizeCPU tokenizes and counts per partition on the engine. The
// iterator model pays per-word record overhead plus the scan cost
// (HiBench text averages ~12 bytes per word including the separator).
func tokenizeCPU(j *flink.Job, lines *flink.Dataset[string], p WordCountParams) *flink.Dataset[wcPair] {
	wordsPerLine := float64(p.LineBytes) / 12.0
	return flink.ProcessPartitions(lines, "tokenize", 12, func(pi, worker int, in flink.Partition[string]) ([]wcPair, int64) {
		nominalWords := int64(float64(in.Nominal) * wordsPerLine)
		j.ChargeCompute(nominalWords, costmodel.Work{Flops: 14, BytesRead: 7})
		text := strings.Join(in.Items, " ")
		table := kernels.CPUWordCount([]byte(text), p.Vocab)
		var pairs []wcPair
		for slot, cnt := range table {
			if cnt > 0 {
				pairs = append(pairs, wcPair{Slot: slot, Count: cnt})
			}
		}
		return pairs, int64(p.Vocab)
	})
}

// tokenizeGPU ships each partition's text to the tokenizing kernel and
// reads back the dense count table.
func tokenizeGPU(g *core.GFlink, j *flink.Job, lines *flink.Dataset[string], p WordCountParams) *flink.Dataset[wcPair] {
	return flink.ProcessPartitions(lines, "gpu:tokenize", 12, func(pi, worker int, in flink.Partition[string]) ([]wcPair, int64) {
		text := []byte(strings.Join(in.Items, " "))
		pool := g.Cluster.TaskManagers[worker].Pool
		inBuf := pool.MustAllocate(len(text) + 1)
		copy(inBuf.Bytes(), text)
		outBuf := pool.MustAllocate(4 * p.Vocab)
		nominalBytes := in.Nominal * int64(p.LineBytes)
		w := &core.GWork{
			ExecuteName: kernels.WordCountKernel,
			Size:        len(text),
			Nominal:     nominalBytes,
			BlockSize:   256,
			GridSize:    (len(text) + 255) / 256,
			In:          []core.Input{{Buf: inBuf, Nominal: nominalBytes}},
			Out:         outBuf,
			OutNominal:  int64(4 * p.Vocab),
			Args:        []int64{int64(p.Vocab)},
			KernelWork:  kernels.WordCountWork(nominalBytes),
			JobID:       j.ID,
		}
		g.Manager(worker).Streams.Submit(w)
		if err := w.Wait(); err != nil {
			panic(err)
		}
		var pairs []wcPair
		for slot := 0; slot < p.Vocab; slot++ {
			if cnt := rawU32(outBuf.Bytes(), slot); cnt > 0 {
				pairs = append(pairs, wcPair{Slot: slot, Count: cnt})
			}
		}
		inBuf.Free()
		outBuf.Free()
		return pairs, int64(p.Vocab)
	})
}

// flinkWriteCounts writes the reduced table to HDFS.
func flinkWriteCounts(g *core.GFlink, vocab int) {
	g.Cluster.FS.Write(0, "wc-output", int64(vocab*12))
}

// rawU32 reads the i-th little-endian uint32 of buf.
func rawU32(buf []byte, i int) uint32 {
	return uint32(buf[i*4]) | uint32(buf[i*4+1])<<8 | uint32(buf[i*4+2])<<16 | uint32(buf[i*4+3])<<24
}
