package workloads

import (
	"gflink/internal/core"
	"gflink/internal/costmodel"
	"gflink/internal/flink"
	"gflink/internal/gstruct"
	"gflink/internal/kernels"
)

// ConnCompParams configures the ComponentConnect benchmark (Fig 6c):
// iterative label propagation over the same synthetic graphs as
// PageRank.
type ConnCompParams struct {
	// Pages is the nominal node count (5-25 million).
	Pages int64
	// EdgesPerPage is the average out-degree.
	EdgesPerPage int
	// Iterations is the fixed superstep count (HiBench runs a bounded
	// number rather than to convergence).
	Iterations  int
	Parallelism int
	UseCache    bool
	Seed        uint64
}

func (p *ConnCompParams) defaults() {
	if p.EdgesPerPage == 0 {
		p.EdgesPerPage = 8
	}
	if p.Iterations == 0 {
		p.Iterations = 10
	}
}

// ccCPUEdgeWork is the per-edge demand of the baseline propagation
// step: the join probe and tuple handling of Flink's delta-iteration
// ConnectedComponents per edge.
var ccCPUEdgeWork = costmodel.Work{Flops: 850, BytesRead: 550}

func labelsChecksum(l []uint32) float64 {
	var s float64
	for i, v := range l {
		s += float64(v) * float64(i%83+1)
	}
	return s
}

// ConnCompCPU runs the baseline label propagation.
func ConnCompCPU(g *core.GFlink, p ConnCompParams) Result {
	p.defaults()
	c := g.Cluster
	start := c.Clock.Now()
	j := c.NewJob("concomp-cpu")
	par := p.Parallelism
	if par <= 0 {
		par = c.Parallelism()
	}
	gs := buildGraph(p.Seed, p.Pages, p.EdgesPerPage, par, g.Cfg.Config.ScaleDivisor)
	edgeParts := make([]flink.Partition[[][2]int32], par)
	for pi := range edgeParts {
		edgeParts[pi] = flink.Partition[[][2]int32]{Worker: pi % c.Cfg.Workers, Items: [][][2]int32{gs.edges[pi]}, Nominal: gs.nomParts[pi]}
	}
	edges := flink.FromPartitions(j, 8, edgeParts)
	labels := make([]uint32, gs.nReal)
	for i := range labels {
		labels[i] = uint32(i)
	}
	res := Result{}
	for it := 0; it < p.Iterations; it++ {
		t0 := c.Clock.Now()
		// Redistribute labels to the edge partitions (Flink's delta
		// iteration join shuffle).
		j.ShuffleBytes(p.Pages * 4 * 2)
		lNow := labels
		tm0 := c.Clock.Now()
		pairs := flink.ProcessPartitions(edges, "propagate", nodeValBytes, func(pi, worker int, in flink.Partition[[][2]int32]) ([]nodeVal, int64) {
			j.ChargeCompute(in.Nominal, ccCPUEdgeWork)
			nl, _ := kernels.CPUConnCompProp(in.Items[0], lNow)
			return labelPairs(nl, lNow, p.Pages, in.Nominal)
		})
		res.MapPhase = c.Clock.Now() - tm0
		labels = shuffleMinPairs(pairs, labels)
		j.Superstep()
		res.Iterations = append(res.Iterations, c.Clock.Now()-t0)
	}
	res.Total = c.Clock.Now() - start
	res.Checksum = labelsChecksum(labels)
	return res
}

// ConnCompGPU runs the GFlink label propagation with cached edge
// blocks.
func ConnCompGPU(g *core.GFlink, p ConnCompParams) Result {
	p.defaults()
	c := g.Cluster
	start := c.Clock.Now()
	j := c.NewJob("concomp-gpu")
	par := p.Parallelism
	if par <= 0 {
		par = c.Parallelism()
	}
	gs := buildGraph(p.Seed, p.Pages, p.EdgesPerPage, par, g.Cfg.Config.ScaleDivisor)
	edgeSchema := gstruct.MustNew("CCEdgeBlock", 4, gstruct.Field{Name: "e", Kind: gstruct.Int32, Len: 2})
	blockParts := make([]flink.Partition[*core.Block], par)
	for pi := range blockParts {
		worker := pi % c.Cfg.Workers
		es := gs.edges[pi]
		buf := c.TaskManagers[worker].Pool.MustAllocate(8 * len(es))
		for i, e := range es {
			putRawF32asI32(buf.Bytes(), i*2, e[0])
			putRawF32asI32(buf.Bytes(), i*2+1, e[1])
		}
		blk := &core.Block{
			Schema: edgeSchema, Layout: gstruct.AoS,
			Buf: buf, N: len(es), Nominal: gs.nomParts[pi],
			Partition: pi, Index: 0,
		}
		blockParts[pi] = flink.Partition[*core.Block]{Worker: worker, Items: []*core.Block{blk}, Nominal: gs.nomParts[pi]}
	}
	blocks := flink.FromPartitions(j, 8, blockParts)
	labels := make([]uint32, gs.nReal)
	for i := range labels {
		labels[i] = uint32(i)
	}
	res := Result{}
	workers := g.Cfg.Config.Workers
	for it := 0; it < p.Iterations; it++ {
		t0 := c.Clock.Now()
		j.ShuffleBytes(p.Pages * 4 * 2)
		labelBuf := c.TaskManagers[0].Pool.MustAllocate(4 * gs.nReal)
		for i, l := range labels {
			putRawF32asI32(labelBuf.Bytes(), i, int32(l))
		}
		perWorker := core.StageBuffer(g, labelBuf)
		iterKey := core.CacheKey{JobID: j.ID, Partition: -2, Block: it}
		lNow := labels
		tm0 := c.Clock.Now()
		pairs := flink.ProcessPartitions(blocks, "gpu:propagate", nodeValBytes, func(pi, worker int, in flink.Partition[*core.Block]) ([]nodeVal, int64) {
			blk := in.Items[0]
			pool := c.TaskManagers[worker].Pool
			outBuf := pool.MustAllocate(4 * gs.nReal)
			w := &core.GWork{
				ExecuteName: kernels.ConnCompKernel,
				Size:        blk.N,
				Nominal:     blk.Nominal,
				BlockSize:   256,
				GridSize:    (blk.N + 255) / 256,
				In: []core.Input{
					{Buf: blk.Buf, Nominal: blk.Nominal * 8, Cache: p.UseCache, Key: blk.Key(j.ID)},
					// Labels cross PCIe once per GPU per superstep.
					{Buf: perWorker[worker%workers], Nominal: p.Pages * 4, Cache: p.UseCache, Key: iterKey},
				},
				Out: outBuf,
				// Improved labels only: at most one per edge.
				OutNominal: minI64(blk.Nominal, p.Pages) * 4,
				Args:       []int64{int64(gs.nReal)},
				JobID:      j.ID,
			}
			g.Manager(worker).Streams.Submit(w)
			if err := w.Wait(); err != nil {
				panic(err)
			}
			nl := make([]uint32, gs.nReal)
			for i := range nl {
				nl[i] = rawU32(outBuf.Bytes(), i)
			}
			outBuf.Free()
			return labelPairs(nl, lNow, p.Pages, in.Nominal)
		})
		res.MapPhase = c.Clock.Now() - tm0
		labels = shuffleMinPairs(pairs, labels)
		for _, b := range perWorker {
			b.Free()
		}
		labelBuf.Free()
		j.Superstep()
		res.Iterations = append(res.Iterations, c.Clock.Now()-t0)
	}
	g.ReleaseJobCaches(j.ID)
	for pi := range blockParts {
		blockParts[pi].Items[0].Buf.Free()
	}
	res.Total = c.Clock.Now() - start
	res.Checksum = labelsChecksum(labels)
	return res
}
