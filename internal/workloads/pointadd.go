package workloads

import (
	"gflink/internal/core"
	"gflink/internal/flink"
	"gflink/internal/gstruct"
	"gflink/internal/kernels"
)

// PointAddParams configures the PointAdd microbenchmark of
// Algorithm 3.1, used in the GMapper-speedup (Fig 8b) and concurrency
// (Fig 8c/8d) experiments.
type PointAddParams struct {
	// Points is the nominal point count.
	Points int64
	// Iterations repeats the map (iTimes in Algorithm 3.1).
	Iterations  int
	Parallelism int
	UseCache    bool
	Seed        uint64
}

func (p *PointAddParams) defaults() {
	if p.Iterations == 0 {
		p.Iterations = 1
	}
}

var pointAddDelta = [3]float32{1.0, 2.0, 3.0}

func pointAddCoord(seed uint64, ord int64, j int) float32 {
	return unit(seed, uint64(ord)*3+uint64(j)) * 10
}

// PointAddCPU runs the baseline map.
func PointAddCPU(g *core.GFlink, p PointAddParams) Result {
	p.defaults()
	c := g.Cluster
	start := c.Clock.Now()
	j := c.NewJob("pointadd-cpu")
	pts := flink.Generate(j, "points", p.Points, 12, p.Parallelism, func(part int, ord int64) [3]float32 {
		return [3]float32{
			pointAddCoord(p.Seed, ord, 0),
			pointAddCoord(p.Seed, ord, 1),
			pointAddCoord(p.Seed, ord, 2),
		}
	})
	res := Result{}
	var sum float64
	for it := 0; it < p.Iterations; it++ {
		t0 := c.Clock.Now()
		tm0 := c.Clock.Now()
		pts = flink.Map(pts, "addPoint", kernels.PointAddWork, 12, func(pt [3]float32) [3]float32 {
			return kernels.CPUPointAdd(pt, pointAddDelta)
		})
		res.MapPhase = c.Clock.Now() - tm0
		j.Superstep()
		res.Iterations = append(res.Iterations, c.Clock.Now()-t0)
	}
	for pi := 0; pi < pts.Partitions(); pi++ {
		for _, pt := range pts.Partition(pi).Items {
			sum += float64(pt[0]) + float64(pt[1]) + float64(pt[2])
		}
	}
	res.Total = c.Clock.Now() - start
	res.Checksum = sum
	return res
}

// PointAddGPU runs the gpuMapPartition version of Algorithm 3.1.
func PointAddGPU(g *core.GFlink, p PointAddParams) Result {
	p.defaults()
	c := g.Cluster
	start := c.Clock.Now()
	j := c.NewJob("pointadd-gpu")
	ds := core.NewGDST(g, j, kernels.Point3Schema, gstruct.AoS, p.Points, p.Parallelism, func(part int, v gstruct.View, i int, ord int64) {
		for jj := 0; jj < 3; jj++ {
			v.PutFloat32At(i, jj, 0, pointAddCoord(p.Seed, ord, jj))
		}
	})
	res := Result{}
	cur := ds
	for it := 0; it < p.Iterations; it++ {
		t0 := c.Clock.Now()
		tm0 := c.Clock.Now()
		next := core.GPUMapPartition(g, cur, core.GPUMapSpec{
			Name:       "addPoint",
			Kernel:     kernels.PointAddKernel,
			OutSchema:  kernels.Point3Schema,
			OutLayout:  gstruct.AoS,
			CacheInput: p.UseCache && it == 0,
			Args: []int64{
				kernels.F32Arg(pointAddDelta[0]),
				kernels.F32Arg(pointAddDelta[1]),
				kernels.F32Arg(pointAddDelta[2]),
			},
		})
		res.MapPhase = c.Clock.Now() - tm0
		if cur != ds {
			core.FreeBlocks(cur)
		}
		cur = next
		j.Superstep()
		res.Iterations = append(res.Iterations, c.Clock.Now()-t0)
	}
	var sum float64
	for pi := 0; pi < cur.Partitions(); pi++ {
		for _, b := range cur.Partition(pi).Items {
			v := b.View()
			for i := 0; i < b.N; i++ {
				sum += float64(v.Float32At(i, 0, 0)) + float64(v.Float32At(i, 1, 0)) + float64(v.Float32At(i, 2, 0))
			}
		}
	}
	g.ReleaseJobCaches(j.ID)
	if cur != ds {
		core.FreeBlocks(cur)
	}
	core.FreeBlocks(ds)
	res.Total = c.Clock.Now() - start
	res.Checksum = sum
	return res
}
