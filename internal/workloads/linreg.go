package workloads

import (
	"gflink/internal/core"
	"gflink/internal/costmodel"
	"gflink/internal/flink"
	"gflink/internal/gstruct"
	"gflink/internal/kernels"
)

// LinRegParams configures the LinearRegression benchmark (batch
// gradient descent over dense samples, Fig 6b).
type LinRegParams struct {
	// Samples is the nominal sample count (150-270 million in the
	// paper).
	Samples int64
	// D is the feature dimension.
	D int
	// Iterations is the gradient-descent step count.
	Iterations int
	// LearningRate for the weight update.
	LearningRate float32
	Parallelism  int
	UseCache     bool
	// MetaCols widens each sample with unread trailing float32 metadata
	// columns after the label; the gradient kernel reads only the D+1
	// feature/label prefix, so projection can drop them from the
	// transfer channel (the abl-projection setup).
	MetaCols int
	Seed     uint64
}

func (p *LinRegParams) defaults() {
	if p.D == 0 {
		p.D = 32
	}
	if p.Iterations == 0 {
		p.Iterations = 10
	}
	if p.LearningRate == 0 {
		p.LearningRate = 0.1
	}
}

// trueWeights is the planted model the generator samples from.
func linregTrueWeights(seed uint64, d int) []float32 {
	w := make([]float32, d+1)
	for j := range w {
		w[j] = unit(seed+555, uint64(j))*2 - 1
	}
	return w
}

// linregSample generates feature j (j<d) or the label (j==d) of sample
// ord.
func linregSample(seed uint64, truth []float32, ord int64, j, d int) float32 {
	if j < d {
		return unit(seed, uint64(ord)*uint64(d+1)+uint64(j))*2 - 1
	}
	// Label: truth·x + bias + small noise.
	var y float32 = truth[d]
	for jj := 0; jj < d; jj++ {
		y += truth[jj] * (unit(seed, uint64(ord)*uint64(d+1)+uint64(jj))*2 - 1)
	}
	return y + (unit(seed+999, uint64(ord))*0.02 - 0.01)
}

func weightsChecksum(w []float32) float64 {
	var s float64
	for i, v := range w {
		s += float64(v) * float64(i+1)
	}
	return s
}

// LinRegCPU runs the baseline-Flink linear regression.
func LinRegCPU(g *core.GFlink, p LinRegParams) Result {
	p.defaults()
	c := g.Cluster
	start := c.Clock.Now()
	j := c.NewJob("linreg-cpu")
	truth := linregTrueWeights(p.Seed, p.D)
	samples := flink.Generate(j, "samples", p.Samples, 4*(p.D+1), p.Parallelism, func(part int, ord int64) []float32 {
		s := make([]float32, p.D+1)
		for jj := 0; jj <= p.D; jj++ {
			s[jj] = linregSample(p.Seed, truth, ord, jj, p.D)
		}
		return s
	})
	weights := make([]float32, p.D+1)
	res := Result{}
	// The JVM iterator path pays tuple access and boxing per feature on
	// top of the arithmetic.
	perRec := costmodel.Work{Flops: float64(20*p.D + 8), BytesRead: float64(4 * (p.D + 1))}
	n := float32(samples.RealCount())
	for it := 0; it < p.Iterations; it++ {
		t0 := c.Clock.Now()
		j.Broadcast(int64(4 * (p.D + 1)))
		w := weights
		tm0 := c.Clock.Now()
		// One fixed-size gradient partial per partition regardless of
		// scale: nominal output count is 1.
		partials := flink.ProcessPartitions(samples, "gradient", 4*(p.D+2), func(pi, worker int, in flink.Partition[[]float32]) ([][]float32, int64) {
			j.ChargeCompute(in.Nominal, perRec)
			return [][]float32{kernels.CPULinRegGrad(in.Items, w, p.D)}, 1
		})
		grad := make([]float32, p.D+2)
		for _, part := range flink.Collect(partials) {
			kernels.MergePartials(grad, part)
		}
		res.MapPhase = c.Clock.Now() - tm0
		weights = kernels.ApplyGradient(weights, grad, n, p.LearningRate, p.D)
		j.Superstep()
		res.Iterations = append(res.Iterations, c.Clock.Now()-t0)
	}
	res.Total = c.Clock.Now() - start
	res.Checksum = weightsChecksum(weights)
	return res
}

// LinRegGPU runs the GFlink linear regression with the gradient kernel.
func LinRegGPU(g *core.GFlink, p LinRegParams) Result {
	p.defaults()
	c := g.Cluster
	start := c.Clock.Now()
	j := c.NewJob("linreg-gpu")
	truth := linregTrueWeights(p.Seed, p.D)
	// MetaCols > 0 widens the schema with trailing metadata columns the
	// gradient kernel never reads.
	schema := kernels.SampleSchemaMeta(p.D, p.MetaCols)
	ds := core.NewGDST(g, j, schema, gstruct.SoA, p.Samples, p.Parallelism, func(part int, v gstruct.View, i int, ord int64) {
		for jj := 0; jj <= p.D; jj++ {
			v.PutFloat32At(i, jj, 0, linregSample(p.Seed, truth, ord, jj, p.D))
		}
		for m := 0; m < p.MetaCols; m++ {
			v.PutFloat32At(i, p.D+1+m, 0, unit(p.Seed+888, uint64(ord)*59+uint64(m)))
		}
	})
	partialSchema := gstruct.MustNew("LRPartial", 4,
		gstruct.Field{Name: "grad", Kind: gstruct.Float32, Len: p.D + 2})
	weights := make([]float32, p.D+1)
	res := Result{}
	workers := g.Cfg.Config.Workers
	// Real sample count: ds counts blocks, so sum their element counts.
	var realSamples int
	for pi := 0; pi < ds.Partitions(); pi++ {
		for _, b := range ds.Partition(pi).Items {
			realSamples += b.N
		}
	}
	n := float32(realSamples)
	for it := 0; it < p.Iterations; it++ {
		t0 := c.Clock.Now()
		wBuf := c.TaskManagers[0].Pool.MustAllocate(4 * (p.D + 1))
		for i, v := range weights {
			putRawF32(wBuf.Bytes(), i, v)
		}
		perWorker := core.BroadcastBuffer(g, j, wBuf, int64(4*(p.D+1)))
		tm0 := c.Clock.Now()
		partials := core.GPUReducePartition(g, ds, core.GPUMapSpec{
			Name:         "linregGrad",
			Kernel:       kernels.LinRegGradKernel,
			OutSchema:    partialSchema,
			OutLayout:    gstruct.AoS,
			CacheInput:   p.UseCache,
			Args:         []int64{int64(p.D)},
			KernelPerRec: kernels.LinRegWork(p.D),
			Extra: func(b *core.Block) []core.Input {
				return []core.Input{{
					Buf:     perWorker[b.Partition%workers],
					Nominal: int64(4 * (p.D + 1)),
				}}
			},
		}, 1)
		grad := make([]float32, p.D+2)
		for _, blk := range core.CollectBlocks(partials) {
			v := blk.View()
			for i := range grad {
				grad[i] += v.Float32At(0, 0, i)
			}
		}
		res.MapPhase = c.Clock.Now() - tm0
		core.FreeBlocks(partials)
		for _, b := range perWorker {
			b.Free()
		}
		wBuf.Free()
		weights = kernels.ApplyGradient(weights, grad, n, p.LearningRate, p.D)
		j.Superstep()
		res.Iterations = append(res.Iterations, c.Clock.Now()-t0)
	}
	g.ReleaseJobCaches(j.ID)
	core.FreeBlocks(ds)
	res.Total = c.Clock.Now() - start
	res.Checksum = weightsChecksum(weights)
	return res
}
