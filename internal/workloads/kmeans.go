package workloads

import (
	"encoding/binary"
	"fmt"
	"math"

	"gflink/internal/core"
	"gflink/internal/costmodel"
	"gflink/internal/flink"
	"gflink/internal/gstruct"
	"gflink/internal/kernels"
	"gflink/internal/plan"
)

// KMeansParams configures the KMeans benchmark (HiBench-style: dense
// float points, fixed iteration count).
type KMeansParams struct {
	// Points is the nominal point count (the paper sweeps 150-270
	// million).
	Points int64
	// K and D are the cluster and dimension counts (HiBench defaults:
	// k=10, d=20).
	K, D int
	// Iterations is the fixed Lloyd iteration count.
	Iterations int
	// Parallelism is the partition count (0 = cluster default).
	Parallelism int
	// UseCache enables the GPU cache for the point blocks (GPU variant
	// only).
	UseCache bool
	// FromHDFS reads the input in the first iteration and WriteResult
	// writes the centroids in the last, as Fig 7a's setup does.
	FromHDFS    bool
	WriteResult bool
	// MetaCols widens each point with unread trailing float32 metadata
	// columns (record ids, tags). The assign kernel only reads the first
	// D coordinate columns, so with column projection enabled these
	// columns never cross PCIe — the abl-projection setup.
	MetaCols int
	// Seed keys the generators.
	Seed uint64
}

func (p *KMeansParams) defaults() {
	if p.K == 0 {
		p.K = 10
	}
	if p.D == 0 {
		p.D = 20
	}
	if p.Iterations == 0 {
		p.Iterations = 10
	}
}

// pointBytes is the on-wire record size (coordinates plus metadata).
func (p KMeansParams) pointBytes() int { return 4 * (p.D + p.MetaCols) }

// kmeansCoord generates coordinate j of nominal point ord: points
// cluster around K true centers so the algorithm has real structure.
func kmeansCoord(seed uint64, ord int64, j, k int) float32 {
	center := mix(seed, uint64(ord)) % uint64(k)
	base := unit(seed+uint64(center)*977+uint64(j)*31, 0) * 100
	noise := unit(seed+123457, uint64(ord)*29+uint64(j))*4 - 2
	return base + noise
}

// initialCentroids derives the deterministic starting centroids.
func initialCentroids(seed uint64, k, d int) []float32 {
	cents := make([]float32, k*d)
	for c := 0; c < k; c++ {
		for j := 0; j < d; j++ {
			cents[c*d+j] = kmeansCoord(seed, int64(c)*7919, j, k)
		}
	}
	return cents
}

// centroidChecksum fingerprints a centroid set.
func centroidChecksum(cents []float32) float64 {
	var s float64
	for i, v := range cents {
		s += float64(v) * float64(i+1)
	}
	return s
}

// kmeansStageCost estimates the assign stage for auto placement: the
// points cross PCIe once (then stay cached when UseCache holds), the
// centroids are streamed per device per iteration, and each iteration
// returns one partial-sums record per launch.
func kmeansStageCost(g *core.GFlink, p KMeansParams) costmodel.StageCost {
	cpuLanes, gpuLanes := planLanes(g, p.Parallelism)
	pointBytes := p.Points * int64(p.pointBytes())
	blockBytes := g.Cfg.MaxBlockNominal
	if blockBytes <= 0 {
		blockBytes = 128 << 20
	}
	launches := (pointBytes + blockBytes - 1) / blockBytes
	// With column projection enabled only the D coordinate columns cross
	// PCIe; the MetaCols tail stays on the host.
	var projected int64
	if g.Cfg.EnableProjection && p.MetaCols > 0 {
		projected = p.Points * int64(4*p.D)
	}
	return costmodel.StageCost{
		Records:        p.Points,
		CPUPerRec:      kernels.KMeansWork(p.K, p.D),
		GPUWork:        kernels.KMeansWork(p.K, p.D).Scale(float64(p.Points)),
		HostToDevice:   pointBytes,
		ProjectedH2D:   projected,
		H2DStreamed:    int64(4 * p.K * p.D * gpuLanes),
		DeviceToHost:   int64(4*p.K*(p.D+1)) * launches,
		Launches:       launches,
		Executions:     int64(p.Iterations),
		CacheResident:  p.UseCache,
		CPUParallelism: cpuLanes,
		GPUParallelism: gpuLanes,
	}
}

// KMeans runs Lloyd iterations through the plan layer as one pipeline.
// The source and the per-iteration assign stage are Either nodes in the
// "assign" placement group: the CPU body keeps the points as engine
// partitions and assigns through the iterator model, the GPU body
// builds SoA GDST blocks and launches the fused assign-reduce kernel.
// Forced modes reproduce the former KMeansCPU/KMeansGPU drivers
// exactly; Auto lets the cost model pick.
func KMeans(g *core.GFlink, p KMeansParams, opts plan.Options) Result {
	p.defaults()
	c := g.Cluster
	start := c.Clock.Now()
	res := Result{}
	cents := initialCentroids(p.Seed, p.K, p.D)
	perRec := kernels.KMeansWork(p.K, p.D)
	workers := g.Cfg.Config.Workers

	// Branch-local state: the CPU placement materializes points as an
	// engine dataset, the GPU placement as SoA GDST blocks.
	var points *flink.Dataset[[]float32]
	var ds core.GDST
	var partialSchema *gstruct.Schema

	gr := plan.NewGraph(g, "kmeans-"+opts.Mode.String(), opts)
	gr.PlaceGroup("assign", kmeansStageCost(g, p))
	plan.EitherDo(gr, "points", "assign",
		func(ctx *plan.Ctx) {
			points = flink.Generate(ctx.Job, "points", p.Points, p.pointBytes(), p.Parallelism, func(part int, ord int64) []float32 {
				pt := make([]float32, p.D)
				for jj := 0; jj < p.D; jj++ {
					pt[jj] = kmeansCoord(p.Seed, ord, jj, p.K)
				}
				return pt
			})
		},
		func(ctx *plan.Ctx) {
			// MetaCols > 0 widens the schema with trailing metadata columns
			// the assign kernel never reads.
			schema := kernels.PointSchema(p.D + p.MetaCols)
			ds = core.NewGDST(g, ctx.Job, schema, gstruct.SoA, p.Points, p.Parallelism, func(part int, v gstruct.View, i int, ord int64) {
				for jj := 0; jj < p.D; jj++ {
					v.PutFloat32At(i, jj, 0, kmeansCoord(p.Seed, ord, jj, p.K))
				}
				for jj := p.D; jj < p.D+p.MetaCols; jj++ {
					v.PutFloat32At(i, jj, 0, unit(p.Seed+777, uint64(ord)*53+uint64(jj)))
				}
			})
			partialSchema = gstruct.MustNew(fmt.Sprintf("KPartial%dx%d", p.K, p.D), 4,
				gstruct.Field{Name: "sums", Kind: gstruct.Float32, Len: p.K * (p.D + 1)})
		})
	iters := plan.Iterate(gr, "lloyd", p.Iterations, func(it int, sub *plan.Graph) {
		plan.Do(sub, "stage-in", func(ctx *plan.Ctx) {
			if it == 0 && p.FromHDFS {
				// Fig 7a: the first iteration reads the points from HDFS.
				stageRead(g, ctx.Job, "kmeans-input", p.Points*int64(p.pointBytes()), p.Parallelism)
			}
		})
		plan.EitherDo(sub, "assign", "assign",
			func(ctx *plan.Ctx) {
				j := ctx.Job
				j.Broadcast(int64(p.K * p.D * 4))
				centsNow := cents
				tm0 := c.Clock.Now()
				// Partial sums are one fixed-size record per partition at any
				// scale, so nominal output is 1 (not the input's nominal count).
				partials := flink.ProcessPartitions(points, "assign", 4*p.K*(p.D+1), func(pi, worker int, in flink.Partition[[]float32]) ([][]float32, int64) {
					j.ChargeCompute(in.Nominal, perRec)
					return [][]float32{kernels.CPUKMeansAssign(in.Items, centsNow, p.K, p.D)}, 1
				})
				merged := make([]float32, p.K*(p.D+1))
				for _, part := range flink.Collect(partials) {
					kernels.MergePartials(merged, part)
				}
				res.MapPhase = c.Clock.Now() - tm0
				cents = kernels.UpdateCentroids(merged, cents, p.K, p.D)
			},
			func(ctx *plan.Ctx) {
				j := ctx.Job
				// Centroids are consumed by the kernel as a flat c*d+j float
				// array; write them raw into an off-heap buffer and broadcast.
				centBuf := c.TaskManagers[0].Pool.MustAllocate(4 * p.K * p.D)
				for i, v := range cents {
					putRawF32(centBuf.Bytes(), i, v)
				}
				perWorker := core.BroadcastBuffer(g, j, centBuf, int64(4*p.K*p.D))
				tm0 := c.Clock.Now()
				partials := core.GPUReducePartition(g, ds, core.GPUMapSpec{
					Name:         "kmeansAssign",
					Kernel:       kernels.KMeansAssignKernel,
					OutSchema:    partialSchema,
					OutLayout:    gstruct.AoS,
					CacheInput:   p.UseCache,
					Args:         []int64{int64(p.K), int64(p.D)},
					KernelPerRec: kernels.KMeansWork(p.K, p.D),
					Extra: func(b *core.Block) []core.Input {
						return []core.Input{{
							Buf:     perWorker[b.Partition%workers],
							Nominal: int64(4 * p.K * p.D),
						}}
					},
				}, 1)
				merged := make([]float32, p.K*(p.D+1))
				for _, blk := range core.CollectBlocks(partials) {
					v := blk.View()
					for i := range merged {
						merged[i] += v.Float32At(0, 0, i)
					}
				}
				res.MapPhase = c.Clock.Now() - tm0
				core.FreeBlocks(partials)
				for _, b := range perWorker {
					b.Free()
				}
				centBuf.Free()
				cents = kernels.UpdateCentroids(merged, cents, p.K, p.D)
			})
		plan.Do(sub, "sink", func(ctx *plan.Ctx) {
			if it == p.Iterations-1 && p.WriteResult {
				// HiBench KMeans writes the per-point cluster assignments.
				writeResult(g, "kmeans-output", p.Points*8)
			}
		})
	})
	plan.EitherDo(gr, "cleanup", "assign",
		func(ctx *plan.Ctx) {},
		func(ctx *plan.Ctx) {
			g.ReleaseJobCaches(ctx.Job.ID)
			core.FreeBlocks(ds)
		})
	gr.Execute()

	res.Iterations = iters.Durations
	res.Total = c.Clock.Now() - start
	res.Checksum = centroidChecksum(cents)
	return res
}

// KMeansCPU runs the baseline-Flink KMeans. Call inside the cluster's
// virtual clock.
func KMeansCPU(g *core.GFlink, p KMeansParams) Result {
	return KMeans(g, p, plan.Options{Mode: plan.ForceCPU})
}

// KMeansGPU runs the GFlink KMeans: points live in SoA GDST blocks,
// each iteration broadcasts the centroids and launches the fused
// assign-reduce kernel per block.
func KMeansGPU(g *core.GFlink, p KMeansParams) Result {
	return KMeans(g, p, plan.Options{Mode: plan.ForceGPU})
}

// putRawF32 writes a little-endian float32 at index i of buf.
func putRawF32(buf []byte, i int, v float32) {
	binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(v))
}

// rawF32 reads a little-endian float32 at index i of buf.
func rawF32(buf []byte, i int) float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
}
