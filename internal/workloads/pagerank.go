package workloads

import (
	"gflink/internal/core"
	"gflink/internal/costmodel"
	"gflink/internal/flink"
	"gflink/internal/gstruct"
	"gflink/internal/kernels"
)

// PageRankParams configures the PageRank benchmark (Fig 5b). Each
// superstep computes per-partition rank contributions (GPU-offloadable)
// and aggregates them across the cluster (a network shuffle that stays
// on the engine and bounds the end-to-end speedup, as the paper's
// Observation 1 predicts for shuffle-heavy jobs).
type PageRankParams struct {
	// Pages is the nominal node count (5-25 million in the paper).
	Pages int64
	// EdgesPerPage is the average out-degree.
	EdgesPerPage int
	// Damping is the PageRank damping factor.
	Damping float32
	// Iterations is the superstep count.
	Iterations  int
	Parallelism int
	UseCache    bool
	Seed        uint64
}

func (p *PageRankParams) defaults() {
	if p.EdgesPerPage == 0 {
		p.EdgesPerPage = 8
	}
	if p.Damping == 0 {
		p.Damping = 0.85
	}
	if p.Iterations == 0 {
		p.Iterations = 10
	}
}

// prEdge generates the e-th real edge of partition part. Destinations
// follow a product-skew (power-law-like) distribution, as web graphs
// do, which is what makes map-side combining effective.
func prEdge(seed uint64, part int, ord int64, nReal int) [2]int32 {
	h := mix(seed+uint64(part)*1_000_003, uint64(ord))
	un := uint64(nReal)
	src := int32(h % un)
	dst := int32(((h >> 24) % un) * ((h >> 44) % un) / un)
	return [2]int32{src, dst}
}

// prCPUEdgeWork is the per-edge demand of the baseline contribution
// map: the join probe, tuple construction and combiner emission Flink's
// join-based PageRank performs per edge on the JVM.
var prCPUEdgeWork = costmodel.Work{Flops: 1450, BytesRead: 600}

// graphSetup holds what both variants share: partition real-edge sets
// and global out-degrees.
type graphSetup struct {
	nReal    int
	par      int
	edges    [][][2]int32 // per partition
	outdeg   []int32
	nomParts []int64 // nominal edges per partition
}

func buildGraph(seed uint64, nodes int64, edgesPer int, par int, div int64) graphSetup {
	nReal := int(nodes / div)
	if nReal < 2 {
		nReal = 2
	}
	m := nodes * int64(edgesPer)
	per := m / int64(par)
	gs := graphSetup{nReal: nReal, par: par, outdeg: make([]int32, nReal)}
	for p := 0; p < par; p++ {
		nom := per
		if p == par-1 {
			nom = m - per*int64(par-1)
		}
		real := nom / div
		if real == 0 && nom > 0 {
			real = 1
		}
		es := make([][2]int32, real)
		for i := int64(0); i < real; i++ {
			es[i] = prEdge(seed, p, i*div, nReal)
			gs.outdeg[es[i][0]]++
		}
		gs.edges = append(gs.edges, es)
		gs.nomParts = append(gs.nomParts, nom)
	}
	return gs
}

func ranksChecksum(r []float32) float64 {
	var s float64
	for i, v := range r {
		s += float64(v) * float64(i%89+1)
	}
	return s
}

// PageRankCPU runs the baseline PageRank.
func PageRankCPU(g *core.GFlink, p PageRankParams) Result {
	p.defaults()
	c := g.Cluster
	start := c.Clock.Now()
	j := c.NewJob("pagerank-cpu")
	par := p.Parallelism
	if par <= 0 {
		par = c.Parallelism()
	}
	gs := buildGraph(p.Seed, p.Pages, p.EdgesPerPage, par, g.Cfg.Config.ScaleDivisor)
	edgeParts := make([]flink.Partition[[][2]int32], par)
	for pi := range edgeParts {
		edgeParts[pi] = flink.Partition[[][2]int32]{Worker: pi % c.Cfg.Workers, Items: [][][2]int32{gs.edges[pi]}, Nominal: gs.nomParts[pi]}
	}
	edges := flink.FromPartitions(j, 8, edgeParts)
	ranks := make([]float32, gs.nReal)
	for i := range ranks {
		ranks[i] = 1 / float32(gs.nReal)
	}
	res := Result{}
	for it := 0; it < p.Iterations; it++ {
		t0 := c.Clock.Now()
		// Redistribute ranks to the edge partitions (the join shuffle of
		// Flink's PageRank; ~2 copies of the rank vector cross the wire).
		j.ShuffleBytes(p.Pages * 4 * 2)
		rNow := ranks
		tm0 := c.Clock.Now()
		pairs := flink.ProcessPartitions(edges, "contrib", nodeValBytes, func(pi, worker int, in flink.Partition[[][2]int32]) ([]nodeVal, int64) {
			j.ChargeCompute(in.Nominal, prCPUEdgeWork)
			dense := kernels.CPUPageRankContrib(in.Items[0], rNow, gs.outdeg, gs.nReal)
			return densePairsF32(dense, p.Pages, in.Nominal)
		})
		res.MapPhase = c.Clock.Now() - tm0
		merged := shuffleSumPairs(pairs, gs.nReal)
		ranks = kernels.ApplyDamping(merged, p.Damping, gs.nReal)
		j.Superstep()
		res.Iterations = append(res.Iterations, c.Clock.Now()-t0)
	}
	res.Total = c.Clock.Now() - start
	res.Checksum = ranksChecksum(ranks)
	return res
}

// PageRankGPU runs the GFlink PageRank: cached edge blocks, per-block
// contribution kernel, engine-side aggregation.
func PageRankGPU(g *core.GFlink, p PageRankParams) Result {
	p.defaults()
	c := g.Cluster
	start := c.Clock.Now()
	j := c.NewJob("pagerank-gpu")
	par := p.Parallelism
	if par <= 0 {
		par = c.Parallelism()
	}
	gs := buildGraph(p.Seed, p.Pages, p.EdgesPerPage, par, g.Cfg.Config.ScaleDivisor)
	byteSchema := gstruct.MustNew("EdgeBlock", 4, gstruct.Field{Name: "e", Kind: gstruct.Int32, Len: 2})
	blockParts := make([]flink.Partition[*core.Block], par)
	for pi := range blockParts {
		worker := pi % c.Cfg.Workers
		es := gs.edges[pi]
		buf := c.TaskManagers[worker].Pool.MustAllocate(8 * len(es))
		for i, e := range es {
			putRawF32asI32(buf.Bytes(), i*2, e[0])
			putRawF32asI32(buf.Bytes(), i*2+1, e[1])
		}
		blk := &core.Block{
			Schema: byteSchema, Layout: gstruct.AoS,
			Buf: buf, N: len(es), Nominal: gs.nomParts[pi],
			Partition: pi, Index: 0,
		}
		blockParts[pi] = flink.Partition[*core.Block]{Worker: worker, Items: []*core.Block{blk}, Nominal: gs.nomParts[pi]}
	}
	blocks := flink.FromPartitions(j, 8, blockParts)
	ranks := make([]float32, gs.nReal)
	for i := range ranks {
		ranks[i] = 1 / float32(gs.nReal)
	}
	res := Result{}
	workers := g.Cfg.Config.Workers
	// The out-degree array is static: stage it per worker once and let
	// the devices cache it.
	degBuf := c.TaskManagers[0].Pool.MustAllocate(4 * gs.nReal)
	for i, d := range gs.outdeg {
		putRawF32asI32(degBuf.Bytes(), i, d)
	}
	degPerWorker := core.StageBuffer(g, degBuf)
	for it := 0; it < p.Iterations; it++ {
		t0 := c.Clock.Now()
		// Same join shuffle as the CPU path; the PCIe hop to the devices
		// is charged on the GWork inputs below.
		j.ShuffleBytes(p.Pages * 4 * 2)
		rankBuf := c.TaskManagers[0].Pool.MustAllocate(4 * gs.nReal)
		for i, r := range ranks {
			putRawF32(rankBuf.Bytes(), i, r)
		}
		perWorker := core.StageBuffer(g, rankBuf)
		iterKey := core.CacheKey{JobID: j.ID, Partition: -2, Block: it}
		tm0 := c.Clock.Now()
		pairs := flink.ProcessPartitions(blocks, "gpu:contrib", nodeValBytes, func(pi, worker int, in flink.Partition[*core.Block]) ([]nodeVal, int64) {
			blk := in.Items[0]
			pool := c.TaskManagers[worker].Pool
			outBuf := pool.MustAllocate(4 * gs.nReal)
			w := &core.GWork{
				ExecuteName: kernels.PageRankContribKernel,
				Size:        blk.N,
				Nominal:     blk.Nominal,
				BlockSize:   256,
				GridSize:    (blk.N + 255) / 256,
				In: []core.Input{
					{Buf: blk.Buf, Nominal: blk.Nominal * 8, Cache: p.UseCache, Key: blk.Key(j.ID)},
					// Fresh ranks cross PCIe once per GPU per superstep
					// (later works on the same device hit the cache).
					{Buf: perWorker[worker%workers], Nominal: p.Pages * 4, Cache: p.UseCache, Key: iterKey},
					{Buf: degPerWorker[worker%workers], Nominal: p.Pages * 4, Cache: p.UseCache, Key: core.CacheKey{JobID: j.ID, Partition: -1, Block: 0}},
				},
				Out: outBuf,
				// The kernel emits compacted contributions: at most one
				// per edge, never more than the node count.
				OutNominal: minI64(blk.Nominal, p.Pages) * 4,
				Args:       []int64{int64(gs.nReal)},
				JobID:      j.ID,
			}
			g.Manager(worker).Streams.Submit(w)
			if err := w.Wait(); err != nil {
				panic(err)
			}
			dense := make([]float32, gs.nReal)
			for i := range dense {
				dense[i] = rawF32(outBuf.Bytes(), i)
			}
			outBuf.Free()
			return densePairsF32(dense, p.Pages, in.Nominal)
		})
		res.MapPhase = c.Clock.Now() - tm0
		merged := shuffleSumPairs(pairs, gs.nReal)
		ranks = kernels.ApplyDamping(merged, p.Damping, gs.nReal)
		for _, b := range perWorker {
			b.Free()
		}
		rankBuf.Free()
		j.Superstep()
		res.Iterations = append(res.Iterations, c.Clock.Now()-t0)
	}
	for _, b := range degPerWorker {
		b.Free()
	}
	degBuf.Free()
	g.ReleaseJobCaches(j.ID)
	for pi := range blockParts {
		blockParts[pi].Items[0].Buf.Free()
	}
	res.Total = c.Clock.Now() - start
	res.Checksum = ranksChecksum(ranks)
	return res
}

// putRawF32asI32 writes a little-endian int32 at index i.
func putRawF32asI32(buf []byte, i int, v int32) {
	buf[i*4] = byte(v)
	buf[i*4+1] = byte(v >> 8)
	buf[i*4+2] = byte(v >> 16)
	buf[i*4+3] = byte(v >> 24)
}
