package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// buildFixture parses and type-checks one file's worth of source and
// returns the CFG plus reaching defs of the named function.
func buildFixture(t *testing.T, src, fn string) (*types.Info, *CFG, *ReachingDefs, *ast.FuncDecl) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("fixture", fset, []*ast.File{f}, info); err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Name.Name != fn {
			continue
		}
		cfg := FuncCFG(info, fd)
		rd := NewReachingDefs(info, cfg, fd.Recv, fd.Type)
		return info, cfg, rd, fd
	}
	t.Fatalf("function %s not found", fn)
	return nil, nil, nil, nil
}

// callBlock finds the block whose nodes contain a call to name.
func callBlock(cfg *CFG, name string) *Block {
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			found := false
			ast.Inspect(n, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
						found = true
					}
				}
				return true
			})
			if found {
				return b
			}
		}
	}
	return nil
}

// useOf finds the use identifier of a variable inside a call to mark.
func useOf(t *testing.T, info *types.Info, cfg *CFG, mark, varName string) *ast.Ident {
	t.Helper()
	blk := callBlock(cfg, mark)
	if blk == nil {
		t.Fatalf("no call to %s", mark)
	}
	var id *ast.Ident
	for _, n := range blk.Nodes {
		ast.Inspect(n, func(n ast.Node) bool {
			if i, ok := n.(*ast.Ident); ok && i.Name == varName {
				if _, isVar := info.Uses[i].(*types.Var); isVar {
					id = i
				}
			}
			return true
		})
	}
	if id == nil {
		t.Fatalf("no use of %s at %s", varName, mark)
	}
	return id
}

const joinSrc = `package fixture
func sink(int) {}
func branches(c bool) {
	x := 1
	if c {
		x = 2
	} else {
		x = 3
	}
	sink(x)
}`

// TestBranchJoin: after an if/else both branch definitions reach the
// join, and the pre-branch definition is killed on every path.
func TestBranchJoin(t *testing.T) {
	_, cfg, rd, _ := buildFixture(t, joinSrc, "branches")
	id := useOf(t, rd.info, cfg, "sink", "x")
	defs := rd.DefsAt(id)
	if len(defs) != 2 {
		t.Fatalf("got %d reaching defs at sink(x), want 2 (both branches)", len(defs))
	}
	for _, d := range defs {
		if d.Kind != DefAssign {
			t.Errorf("def kind = %v, want DefAssign", d.Kind)
		}
		if d.Guard() == nil {
			t.Errorf("branch def has no guard condition")
		}
	}
}

const loopSrc = `package fixture
func sink(int) {}
func loop(n int) {
	x := 0
	for i := 0; i < n; i++ {
		if i == 3 {
			continue
		}
		if i == 5 {
			break
		}
		x = i
	}
	sink(x)
}`

// TestLoopContinueBreak: the loop body's definition flows around the
// back edge, past continue and break, to the loop exit.
func TestLoopContinueBreak(t *testing.T) {
	_, cfg, rd, _ := buildFixture(t, loopSrc, "loop")
	id := useOf(t, rd.info, cfg, "sink", "x")
	defs := rd.DefsAt(id)
	if len(defs) != 2 {
		t.Fatalf("got %d reaching defs at sink(x), want 2 (init + body)", len(defs))
	}
	kinds := map[DefKind]int{}
	for _, d := range defs {
		kinds[d.Kind]++
	}
	if kinds[DefAssign] != 2 {
		t.Errorf("def kinds = %v, want two DefAssign", kinds)
	}
	// The break must jump straight to the loop exit: the block holding
	// sink(x) is reachable from the break's block.
	if cfg.Exit == nil || len(cfg.Exit.Preds) == 0 {
		t.Error("loop CFG has no path to exit")
	}
}

const panicSrc = `package fixture
func mayPanic(c bool) int {
	if c {
		panic("boom")
	}
	return 1
}`

// TestPanicEdges: an explicit panic(...) ends its block with an edge to
// the CFG's panic exit, not the normal exit.
func TestPanicEdges(t *testing.T) {
	_, cfg, _, _ := buildFixture(t, panicSrc, "mayPanic")
	if len(cfg.Panic.Preds) != 1 {
		t.Fatalf("panic block has %d preds, want 1", len(cfg.Panic.Preds))
	}
	from := cfg.Panic.Preds[0]
	hasPanicCall := false
	for _, n := range from.Nodes {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				hasPanicCall = true
			}
		}
	}
	if !hasPanicCall {
		t.Error("panic edge does not come from the panic call's block")
	}
	for _, s := range from.Succs {
		if s == cfg.Exit {
			t.Error("panicking block must not fall through to the normal exit")
		}
	}
}

const deferSrc = `package fixture
func cleanup() {}
func other()   {}
func withDefer(c bool) {
	defer cleanup()
	if c {
		defer other()
		return
	}
}`

// TestDeferCollection: defer statements are listed in source order for
// exit-path modeling (they run on return and panic alike).
func TestDeferCollection(t *testing.T) {
	_, cfg, _, _ := buildFixture(t, deferSrc, "withDefer")
	if len(cfg.Defers) != 2 {
		t.Fatalf("got %d defers, want 2", len(cfg.Defers))
	}
	first, ok := cfg.Defers[0].Call.Fun.(*ast.Ident)
	if !ok || first.Name != "cleanup" {
		t.Errorf("first defer = %v, want cleanup", cfg.Defers[0].Call.Fun)
	}
}

const rangeSrc = `package fixture
func sink(int) {}
func iterate(xs []int) {
	total := 0
	for _, v := range xs {
		total += v
	}
	sink(total)
}`

// TestRangeLoop: range key/value defs and op-assign modify defs both
// resolve; the modified total reaches the sink along with its init.
func TestRangeLoop(t *testing.T) {
	_, cfg, rd, _ := buildFixture(t, rangeSrc, "iterate")
	id := useOf(t, rd.info, cfg, "sink", "total")
	defs := rd.DefsAt(id)
	if len(defs) != 2 {
		t.Fatalf("got %d reaching defs, want 2 (init + loop modify)", len(defs))
	}
	kinds := map[DefKind]bool{}
	for _, d := range defs {
		kinds[d.Kind] = true
	}
	if !kinds[DefAssign] || !kinds[DefModify] {
		t.Errorf("def kinds = %v, want DefAssign and DefModify", kinds)
	}
}

const untrackedSrc = `package fixture
func sink(int) {}
func escapes() {
	x := 1
	f := func() { x = 2 }
	f()
	p := 3
	q := &p
	_ = q
	sink(x)
	sink(p)
}`

// TestUntrackedVars: closure-assigned and address-taken variables are
// flagged untrackable and their uses resolve to no defs.
func TestUntrackedVars(t *testing.T) {
	_, cfg, rd, _ := buildFixture(t, untrackedSrc, "escapes")
	id := useOf(t, rd.info, cfg, "sink", "x")
	if rd.DefsAt(id) != nil {
		t.Error("closure-assigned var must not resolve to defs")
	}
	var xv *types.Var
	for use, obj := range rd.info.Uses {
		if use.Name == "x" {
			xv, _ = obj.(*types.Var)
		}
	}
	if xv == nil || rd.Tracked(xv) {
		t.Error("closure-assigned var must be untracked")
	}
}

const switchSrc = `package fixture
func sink(int) {}
func sw(n int) {
	x := 0
	switch n {
	case 1:
		x = 1
		fallthrough
	case 2:
		x = 2
	default:
		x = 3
	}
	sink(x)
}`

// TestSwitchFallthrough: with a default clause the pre-switch def dies;
// the fallthrough chains case 1 into case 2's block.
func TestSwitchFallthrough(t *testing.T) {
	_, cfg, rd, _ := buildFixture(t, switchSrc, "sw")
	id := useOf(t, rd.info, cfg, "sink", "x")
	defs := rd.DefsAt(id)
	// x=1 is always overwritten by the fallthrough into x=2, so only
	// x=2 and x=3 reach the join.
	if len(defs) != 2 {
		t.Fatalf("got %d reaching defs, want 2 (fallthrough kills case 1's def)", len(defs))
	}
}

// TestBackwardSolve runs a backward must-analysis over a diamond: "every
// path from here to exit calls done()". The lattice is bool with AND
// meet — exactly the shape spanpair uses.
func TestBackwardSolve(t *testing.T) {
	src := `package fixture
func done()  {}
func work()  {}
func f(c bool) {
	work()
	if c {
		done()
		return
	}
	work()
}`
	_, cfg, _, _ := buildFixture(t, src, "f")
	callsDone := func(b *Block) bool {
		for _, n := range b.Nodes {
			found := false
			ast.Inspect(n, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "done" {
						found = true
					}
				}
				return true
			})
			if found {
				return true
			}
		}
		return false
	}
	_, out := Solve(cfg, FlowProblem[bool]{
		Dir:      Backward,
		Boundary: false,
		Init:     func() bool { return true },
		Meet:     func(a, b bool) bool { return a && b },
		Transfer: func(b *Block, in bool) bool { return in || callsDone(b) },
		Equal:    func(a, b bool) bool { return a == b },
	})
	thenBlk := callBlock(cfg, "done")
	if !out[thenBlk] {
		t.Error("the done() branch must satisfy the property")
	}
	if out[cfg.Entry] {
		t.Error("the else path skips done(); entry must not satisfy the property")
	}
}

// TestGotoEdges: a forward goto patches an edge once its label appears.
func TestGotoEdges(t *testing.T) {
	src := `package fixture
func sink(int) {}
func jumps(c bool) {
	x := 1
	if c {
		goto end
	}
	x = 2
end:
	sink(x)
}`
	_, cfg, rd, _ := buildFixture(t, src, "jumps")
	id := useOf(t, rd.info, cfg, "sink", "x")
	defs := rd.DefsAt(id)
	if len(defs) != 2 {
		t.Fatalf("got %d reaching defs, want 2 (goto path keeps x=1)", len(defs))
	}
}

const deferLoopSrc = `package fixture
func sink(int) {}
func release(int) {}
func deferInLoop(n int) {
	x := 0
	for i := 0; i < n; i++ {
		defer release(i)
		x = i
	}
	sink(x)
}`

// TestDeferInLoop: a defer inside a loop body is collected once (it is
// one static site, however many times it arms at run time), and the
// loop's dataflow is unaffected: init and body defs both reach the
// sink past the defer.
func TestDeferInLoop(t *testing.T) {
	_, cfg, rd, _ := buildFixture(t, deferLoopSrc, "deferInLoop")
	if len(cfg.Defers) != 1 {
		t.Fatalf("got %d defers, want 1 (one static site in the loop body)", len(cfg.Defers))
	}
	if id, ok := cfg.Defers[0].Call.Fun.(*ast.Ident); !ok || id.Name != "release" {
		t.Errorf("loop defer = %v, want release", cfg.Defers[0].Call.Fun)
	}
	id := useOf(t, rd.info, cfg, "sink", "x")
	defs := rd.DefsAt(id)
	if len(defs) != 2 {
		t.Fatalf("got %d reaching defs, want 2 (init + loop body)", len(defs))
	}
}

const labeledLoopSrc = `package fixture
func sink(int) {}
func nested(m, n int) {
	x := 0
outer:
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if j == 1 {
				continue outer
			}
			if j == 2 {
				break outer
			}
			x = i + j
		}
		x = -1
	}
	sink(x)
}`

// TestLabeledBreakContinue: `continue outer` from the inner loop must
// target the outer loop's post statement (skipping the outer body's
// trailing x=-1 on that path), and `break outer` must jump past both
// loops. All three assignments still reach the sink: init (m==0),
// x=i+j (via break outer after it), and x=-1 (inner loop ran dry).
func TestLabeledBreakContinue(t *testing.T) {
	_, cfg, rd, _ := buildFixture(t, labeledLoopSrc, "nested")
	id := useOf(t, rd.info, cfg, "sink", "x")
	defs := rd.DefsAt(id)
	if len(defs) != 3 {
		t.Fatalf("got %d reaching defs, want 3 (init, inner body, outer tail)", len(defs))
	}
	// The labeled-jump blocks must not fall through into the inner
	// loop's ordinary continue target: each ends in exactly one edge,
	// and neither edge lands on an inner-loop block.
	var inner []*Block
	for _, b := range cfg.Blocks {
		if strings.HasPrefix(b.Kind, "for.") && b.Kind != "for.exit" {
			inner = append(inner, b)
		}
	}
	if len(inner) == 0 {
		t.Fatal("no for.* blocks built for nested loops")
	}
}

const selectSrc = `package fixture
func sink(int) {}
func sel(ch chan int) {
	x := 0
	select {
	case v := <-ch:
		x = v
	default:
		x = 1
	}
	sink(x)
}`

// TestSelectWithDefault: both the comm case and the default clause get
// their own blocks joining after the select, and — because the default
// makes the select exhaustive — the pre-select x=0 is killed on every
// path: only the two in-select assignments reach the sink.
func TestSelectWithDefault(t *testing.T) {
	_, cfg, rd, _ := buildFixture(t, selectSrc, "sel")
	id := useOf(t, rd.info, cfg, "sink", "x")
	defs := rd.DefsAt(id)
	if len(defs) != 2 {
		t.Fatalf("got %d reaching defs, want 2 (case + default kill the init)", len(defs))
	}
	cases, joins := 0, 0
	for _, b := range cfg.Blocks {
		switch b.Kind {
		case "select.case":
			cases++
		case "select.join":
			joins++
		}
	}
	if cases != 2 {
		t.Errorf("got %d select.case blocks, want 2 (comm case + default)", cases)
	}
	if joins != 1 {
		t.Errorf("got %d select.join blocks, want 1", joins)
	}
}

// TestBlockKindsAreLabeled sanity-checks the debug labels the builder
// assigns, which the analyzer tests lean on when diagnosing failures.
func TestBlockKindsAreLabeled(t *testing.T) {
	_, cfg, _, _ := buildFixture(t, joinSrc, "branches")
	var kinds []string
	for _, b := range cfg.Blocks {
		kinds = append(kinds, b.Kind)
	}
	joined := strings.Join(kinds, " ")
	for _, want := range []string{"entry", "exit", "panic", "if.then", "if.else", "if.join"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %q block in %v", want, kinds)
		}
	}
}
