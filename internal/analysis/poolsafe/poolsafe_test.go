package poolsafe_test

import (
	"testing"

	"gflink/internal/analysis/analysistest"
	"gflink/internal/analysis/poolsafe"
)

func TestPoolsafe(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), poolsafe.Analyzer, "poolsafe/dep", "poolsafe")
}
