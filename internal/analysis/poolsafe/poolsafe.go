// Package poolsafe proves the pool discipline behind allocation-free
// hot paths: a value obtained from a //gflink:pool-annotated source (a
// Get-like method of a free-list type) must reach exactly one matching
// Put on every non-panicking path out of the acquiring function, and
// must not be referenced — directly or through a reference retained by
// an earlier call — after it has been returned to the pool.
//
// The analysis is a forward may-problem over the function's CFG (the
// same path-pair machinery as spanpair), with three bits per
// acquisition: live (acquired, not yet returned), done (returned), and
// retained (an earlier call kept a reference, per bufescape-style
// retention: imported Retains facts cross-package, a lexical scan for
// same-package callees). Findings:
//
//   - live at the exit block: the value leaks on some path (panic
//     exits are deliberately exempt — an abandoned pooled object on a
//     dying path costs one recycle, not correctness);
//   - Put while done: the value may be returned twice;
//   - any use while done: use after Put;
//   - Put while retained: the retained reference escapes the Put.
//
// Ownership transfer is the escape hatch, exactly as in spanpair:
// storing the value (into a slice, field, channel, or another
// variable), returning it, appending it, or capturing it in a closure
// hands the Put obligation to the new owner and ends tracking. Plain
// uses — field reads and writes, indexing, nil comparisons, passing to
// a non-retaining callee — keep the obligation in place. A Put inside
// a defer discharges the obligation on both the return and panic edges
// without marking the value done at the defer statement itself, so
// uses between the defer and the return stay legal.
package poolsafe

import (
	"go/ast"
	"go/token"
	"go/types"

	"gflink/internal/analysis"
	"gflink/internal/analysis/bufescape"
)

// PoolSource is an object fact marking a //gflink:pool-annotated
// Get-like method, so acquisitions through it are tracked from other
// packages too.
type PoolSource struct{}

// AFact marks PoolSource as a fact type.
func (*PoolSource) AFact() {}

// Analyzer is the poolsafe analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      "poolsafe",
	Doc:       "values from //gflink:pool sources must reach exactly one Put on every path and not escape after Put",
	Run:       run,
	FactTypes: []analysis.Fact{(*PoolSource)(nil)},
}

func run(pass *analysis.Pass) (interface{}, error) {
	c := &checker{
		pass:    pass,
		decls:   make(map[*types.Func]*ast.FuncDecl),
		sources: make(map[*types.Func]bool),
		retain:  make(map[*types.Func][]bool),
	}
	for _, f := range pass.Files {
		idx := analysis.DirectiveIndex(pass.Fset, f)
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			c.decls[obj] = fd
			if analysis.DirectiveAt(idx, pass.Fset, "pool", fd.Pos()) {
				c.sources[obj] = true
				if analysis.ObjectKey(obj) != "" {
					pass.ExportObjectFact(obj, &PoolSource{})
				}
			}
		}
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkFunc(fd.Body, fd.Recv, fd.Type)
		}
	}
	return nil, nil
}

type checker struct {
	pass    *analysis.Pass
	decls   map[*types.Func]*ast.FuncDecl
	sources map[*types.Func]bool
	retain  map[*types.Func][]bool // lexical retention cache, by param
}

// isSource reports whether a call acquires from an annotated pool, and
// if so which pool type owns the value (the source's receiver type).
func (c *checker) isSource(call *ast.CallExpr) (*types.Named, bool) {
	fn := staticOrigin(c.pass.TypesInfo, call)
	if fn == nil {
		return nil, false
	}
	if !c.sources[fn] && !c.pass.ImportObjectFact(fn, &PoolSource{}) {
		return nil, false
	}
	return recvNamed(fn), true
}

// retains reports whether fn keeps a reference to its i'th parameter:
// by imported bufescape Retains fact, or for same-package callees by a
// lexical scan.
func (c *checker) retains(fn *types.Func, i int) bool {
	sig, _ := fn.Type().(*types.Signature)
	var fact bufescape.Retains
	if c.pass.ImportObjectFact(fn, &fact) {
		return paramBit(fact.Params, sig, i)
	}
	ps, ok := c.retain[fn]
	if !ok {
		ps = c.lexicalRetention(fn)
		c.retain[fn] = ps
	}
	return paramBit(ps, sig, i)
}

func paramBit(ps []bool, sig *types.Signature, i int) bool {
	if sig != nil && sig.Variadic() && i >= len(ps)-1 {
		i = len(ps) - 1
	}
	return i >= 0 && i < len(ps) && ps[i]
}

// lexicalRetention scans a same-package callee's body: a parameter is
// retained when it is stored (assignment right-hand side, composite
// literal element, channel send, append argument) or captured by a
// function literal.
func (c *checker) lexicalRetention(fn *types.Func) []bool {
	decl := c.decls[fn]
	sig, _ := fn.Type().(*types.Signature)
	if decl == nil || decl.Body == nil || sig == nil {
		return nil
	}
	ps := make([]bool, sig.Params().Len())
	vars := make(map[*types.Var]int, len(ps))
	for i := 0; i < sig.Params().Len(); i++ {
		vars[sig.Params().At(i)] = i
	}
	info := c.pass.TypesInfo
	var stack []ast.Node
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok {
				if i, ok := vars[v]; ok && retainingUse(stack, id) {
					ps[i] = true
				}
			}
		}
		stack = append(stack, n)
		return true
	})
	return ps
}

// retainingUse reports whether a parameter occurrence stores the
// reference beyond the call.
func retainingUse(stack []ast.Node, id *ast.Ident) bool {
	for _, a := range stack {
		if _, ok := a.(*ast.FuncLit); ok {
			return true
		}
	}
	switch p := parentOf(stack).(type) {
	case *ast.AssignStmt:
		for _, l := range p.Lhs {
			if ast.Unparen(l) == ast.Expr(id) {
				return false
			}
		}
		return true // on a right-hand side: stored somewhere
	case *ast.CompositeLit, *ast.KeyValueExpr, *ast.SendStmt:
		return true
	case *ast.CallExpr:
		fun, ok := ast.Unparen(p.Fun).(*ast.Ident)
		return ok && fun.Name == "append"
	}
	return false
}

// parentOf returns the nearest non-paren ancestor.
func parentOf(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			continue
		}
		return stack[i]
	}
	return nil
}

func recvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

func sameNamed(a, b *types.Named) bool {
	if a == nil || b == nil {
		return false
	}
	ao, bo := a.Obj(), b.Obj()
	if ao.Pkg() == nil || bo.Pkg() == nil {
		return ao == bo
	}
	return ao.Name() == bo.Name() && ao.Pkg().Path() == bo.Pkg().Path()
}

// acq is one tracked acquisition: a definition whose RHS is a source
// call.
type acq struct {
	def  *analysis.Def
	call *ast.CallExpr
	pool *types.Named
}

func (c *checker) checkFunc(body *ast.BlockStmt, recv *ast.FieldList, ftype *ast.FuncType) {
	info := c.pass.TypesInfo
	cfg := analysis.BuildCFG(info, body)
	rd := analysis.NewReachingDefs(info, cfg, recv, ftype)

	var acqs []acq
	acqID := make(map[*analysis.Def]int)
	for _, blk := range cfg.Blocks {
		for _, n := range blk.Nodes {
			c.collectAcqs(rd, n, func(d *analysis.Def, call *ast.CallExpr, pool *types.Named) {
				if _, seen := acqID[d]; seen {
					return
				}
				acqID[d] = len(acqs)
				acqs = append(acqs, acq{def: d, call: call, pool: pool})
			})
			// A discarded acquisition leaks immediately.
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := ast.Unparen(es.X).(*ast.CallExpr); ok {
					if _, src := c.isSource(call); src {
						c.pass.Reportf(call.Pos(), "pooled value is discarded; acquire into a variable and return it with Put (or don't acquire)")
					}
				}
			}
		}
	}
	if len(acqs) == 0 {
		return
	}

	st := func() []bool { return make([]bool, 3*len(acqs)) }
	in, _ := analysis.Solve(cfg, analysis.FlowProblem[[]bool]{
		Dir:      analysis.Forward,
		Boundary: st(),
		Init:     st,
		Meet: func(a, b []bool) []bool {
			m := make([]bool, len(a))
			for i := range a {
				m[i] = a[i] || b[i]
			}
			return m
		},
		Transfer: func(blk *analysis.Block, in []bool) []bool {
			s := append([]bool(nil), in...)
			for _, n := range blk.Nodes {
				c.process(rd, acqs, acqID, n, s, nil)
			}
			return s
		},
		Equal: func(a, b []bool) bool {
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
			return true
		},
	})

	// Reporting pass: re-walk each block once from its solved entry
	// state (the solver's transfer must stay silent — it runs to
	// fixpoint).
	seen := make(map[token.Pos]map[string]bool)
	rep := func(pos token.Pos, kind, msg string) {
		if seen[pos] == nil {
			seen[pos] = make(map[string]bool)
		}
		if seen[pos][kind] {
			return
		}
		seen[pos][kind] = true
		c.pass.Reportf(pos, "%s", msg)
	}
	for _, blk := range cfg.Blocks {
		s := append([]bool(nil), in[blk]...)
		for _, n := range blk.Nodes {
			c.process(rd, acqs, acqID, n, s, rep)
		}
	}

	// Exactly-one-Put: still live at the exit block means some
	// non-panicking path abandons the value.
	for i, open := range in[cfg.Exit][:len(acqs)] {
		if open {
			rep(acqs[i].call.Pos(), "leak",
				"pooled value is not returned with Put on every path out of the function (store or hand it off to transfer the obligation)")
		}
	}
}

// collectAcqs finds definitions of trackable locals whose RHS is a
// source call.
func (c *checker) collectAcqs(rd *analysis.ReachingDefs, n ast.Node, fn func(*analysis.Def, *ast.CallExpr, *types.Named)) {
	assign, ok := n.(*ast.AssignStmt)
	if !ok || (assign.Tok != token.ASSIGN && assign.Tok != token.DEFINE) {
		return
	}
	info := c.pass.TypesInfo
	for i, l := range assign.Lhs {
		id, ok := ast.Unparen(l).(*ast.Ident)
		if !ok || i >= len(assign.Rhs) {
			continue
		}
		call, ok := ast.Unparen(assign.Rhs[i]).(*ast.CallExpr)
		if !ok {
			continue
		}
		pool, src := c.isSource(call)
		if !src {
			continue
		}
		v := defVar(info, id)
		if v == nil || !rd.Tracked(v) {
			continue
		}
		for _, d := range rd.Defs(v) {
			if d.Node == n && d.RHS != nil && ast.Unparen(d.RHS) == call {
				fn(d, call, pool)
			}
		}
	}
}

// process applies one statement's effect to the state vector s
// (layout: [live... done... retained...]); with a non-nil reporter it
// also emits findings.
func (c *checker) process(rd *analysis.ReachingDefs, acqs []acq, acqID map[*analysis.Def]int, node ast.Node, s []bool, rep func(token.Pos, string, string)) {
	info := c.pass.TypesInfo
	n := len(acqs)
	nilCmp := nilComparisonIdents(node)
	consumed := make(map[*ast.Ident]bool)

	// applyPut resolves one call as a Put of tracked values. asDefer
	// discharges the obligation without marking the value done — a
	// deferred Put runs at function exit, so later uses stay legal.
	applyPut := func(call *ast.CallExpr, asDefer bool) {
		fn := staticOrigin(info, call)
		if fn == nil || fn.Name() != "Put" {
			return
		}
		rn := recvNamed(fn)
		for _, a := range call.Args {
			id, ok := ast.Unparen(a).(*ast.Ident)
			if !ok {
				continue
			}
			for _, d := range rd.DefsAt(id) {
				i, ok := acqID[d]
				if !ok || !sameNamed(rn, acqs[i].pool) {
					continue
				}
				consumed[id] = true
				if rep != nil && s[n+i] {
					rep(call.Pos(), "double", "pooled value may already have been returned; a second Put corrupts the free list")
				}
				if rep != nil && s[2*n+i] {
					rep(call.Pos(), "retained", "pooled value was retained by an earlier call and is returned to the pool while still referenced (escape after Put)")
				}
				s[i] = false
				if !asDefer {
					s[n+i] = true
				}
			}
		}
	}

	// handleDefer covers defer p.Put(w) and deferred closures that put
	// captured values (matched by variable, as in spanpair).
	handleDefer := func(def *ast.DeferStmt) {
		applyPut(def.Call, true)
		lit, ok := ast.Unparen(def.Call.Fun).(*ast.FuncLit)
		if !ok {
			return
		}
		ast.Inspect(lit.Body, func(y ast.Node) bool {
			call, ok := y.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := staticOrigin(info, call)
			if fn == nil || fn.Name() != "Put" {
				return true
			}
			rn := recvNamed(fn)
			for _, a := range call.Args {
				id, ok := ast.Unparen(a).(*ast.Ident)
				if !ok {
					continue
				}
				v, _ := info.Uses[id].(*types.Var)
				if v == nil {
					continue
				}
				for i, ac := range acqs {
					if ac.def.Var == v && sameNamed(rn, ac.pool) {
						s[i] = false
					}
				}
			}
			return true
		})
	}

	if def, ok := node.(*ast.DeferStmt); ok {
		handleDefer(def)
		return
	}

	var stack []ast.Node
	ast.Inspect(node, func(x ast.Node) (descend bool) {
		if x == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend = true
		defer func() {
			if descend {
				stack = append(stack, x)
			}
		}()
		switch x := x.(type) {
		case *ast.DeferStmt:
			handleDefer(x)
			return false
		case *ast.FuncLit:
			// Capturing the value transfers ownership to the closure.
			ast.Inspect(x.Body, func(y ast.Node) bool {
				if id, ok := y.(*ast.Ident); ok {
					if v, _ := info.Uses[id].(*types.Var); v != nil {
						for i, ac := range acqs {
							if ac.def.Var == v {
								s[i] = false
							}
						}
					}
				}
				return true
			})
			return false
		case *ast.CallExpr:
			applyPut(x, false)
		case *ast.Ident:
			if consumed[x] || nilCmp[x] {
				return true
			}
			for _, d := range rd.DefsAt(x) {
				i, ok := acqID[d]
				if !ok {
					continue
				}
				if rep != nil && s[n+i] {
					rep(x.Pos(), "useafter", "pooled value used after being returned to the pool")
				}
				switch c.classifyUse(stack, x) {
				case useRetain:
					s[2*n+i] = true
				case useTransfer:
					s[i] = false
				}
			}
		}
		return true
	})

	// Gen after kills, strong update: a fresh acquisition resets all
	// three bits for its definition.
	c.collectAcqs(rd, node, func(d *analysis.Def, _ *ast.CallExpr, _ *types.Named) {
		if i, ok := acqID[d]; ok {
			s[i] = true
			s[n+i] = false
			s[2*n+i] = false
		}
	})
}

type useKind int

const (
	useNeutral useKind = iota
	useRetain
	useTransfer
)

// classifyUse decides what one occurrence of a tracked value does to
// the Put obligation. Field access, indexing, dereference, nil
// comparison and reassignment are neutral; a call argument retains or
// stays neutral depending on the callee; everything else (stores,
// returns, sends, composite literals, address-of, dynamic calls)
// transfers ownership.
func (c *checker) classifyUse(stack []ast.Node, id *ast.Ident) useKind {
	switch p := parentOf(stack).(type) {
	case *ast.SelectorExpr:
		if ast.Unparen(p.X) == ast.Expr(id) {
			return useNeutral
		}
	case *ast.IndexExpr:
		if ast.Unparen(p.X) == ast.Expr(id) {
			return useNeutral
		}
	case *ast.SliceExpr:
		if ast.Unparen(p.X) == ast.Expr(id) {
			return useNeutral
		}
	case *ast.StarExpr:
		return useNeutral
	case *ast.BinaryExpr:
		if p.Op == token.EQL || p.Op == token.NEQ {
			return useNeutral
		}
	case *ast.AssignStmt:
		for _, l := range p.Lhs {
			if ast.Unparen(l) == ast.Expr(id) {
				return useNeutral // reassignment; reaching defs retire this def
			}
		}
	case *ast.CallExpr:
		if ast.Unparen(p.Fun) == ast.Expr(id) {
			return useTransfer // calling a pooled func value: unknown
		}
		ai := -1
		for j, a := range p.Args {
			if ast.Unparen(a) == ast.Expr(id) {
				ai = j
			}
		}
		if ai < 0 {
			return useTransfer
		}
		callee := staticOrigin(c.pass.TypesInfo, p)
		if callee == nil {
			// Builtins: append stores, the rest only read; calls
			// through function values are unknown and transfer.
			if fun, ok := ast.Unparen(p.Fun).(*ast.Ident); ok {
				if _, isBuiltin := c.pass.TypesInfo.Uses[fun].(*types.Builtin); isBuiltin {
					if fun.Name == "append" {
						return useTransfer
					}
					return useNeutral
				}
			}
			return useTransfer
		}
		if c.retains(callee, ai) {
			return useRetain
		}
		return useNeutral
	}
	return useTransfer
}

func nilComparisonIdents(n ast.Node) map[*ast.Ident]bool {
	out := make(map[*ast.Ident]bool)
	ast.Inspect(n, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
		if isNil(x) {
			if id, ok := y.(*ast.Ident); ok {
				out[id] = true
			}
		}
		if isNil(y) {
			if id, ok := x.(*ast.Ident); ok {
				out[id] = true
			}
		}
		return true
	})
	return out
}

func isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// staticOrigin resolves a call's static callee, canonicalized to its
// generic origin so local lookups and facts line up for instantiated
// methods.
func staticOrigin(info *types.Info, call *ast.CallExpr) *types.Func {
	fn := analysis.StaticCallee(info, call)
	if fn != nil {
		fn = fn.Origin()
	}
	return fn
}

func defVar(info *types.Info, id *ast.Ident) *types.Var {
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}
