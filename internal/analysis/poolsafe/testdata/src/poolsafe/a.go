// Package poolsafe exercises the poolsafe analyzer: every acquisition
// from a //gflink:pool source reaches exactly one Put, and nothing
// touches the value afterwards.
package poolsafe

import "poolsafe/dep"

type buf struct {
	b    []byte
	next *buf
}

type pool struct{ free []*buf }

// Get returns a pooled buf.
//
//gflink:pool
func (p *pool) Get() *buf {
	if n := len(p.free); n > 0 {
		w := p.free[n-1]
		p.free = p.free[:n-1]
		return w
	}
	return &buf{}
}

// Put returns a buf to the free list.
func (p *pool) Put(w *buf) { p.free = append(p.free, w) }

var sink *buf

func keep(w *buf)  { sink = w }
func touch(w *buf) { w.b = w.b[:0] }

func ok(p *pool) {
	w := p.Get()
	touch(w)
	w.b = append(w.b, 1)
	p.Put(w)
}

func okBranches(p *pool, c bool) {
	w := p.Get()
	if c {
		p.Put(w)
		return
	}
	w.b = nil
	p.Put(w)
}

func okDefer(p *pool) {
	w := p.Get()
	defer p.Put(w)
	w.b = append(w.b, 1) // legal: the deferred Put runs after this
}

func okDeferClosure(p *pool) {
	w := p.Get()
	defer func() { p.Put(w) }()
	w.b = nil
}

func okLoop(p *pool, n int) {
	for i := 0; i < n; i++ {
		w := p.Get()
		w.b = w.b[:0]
		p.Put(w)
	}
}

func okTransfer(p *pool, out []*buf) {
	w := p.Get()
	out[0] = w // ownership transferred; Put is the receiver's job now
}

func okReturn(p *pool) *buf {
	w := p.Get()
	return w // caller owns it
}

func leakNilCheck(p *pool) {
	w := p.Get() // want `not returned with Put on every path`
	if w == nil {
		return // conservative: even the nil-guarded path must Put
	}
	p.Put(w)
}

func leak(p *pool, c bool) {
	w := p.Get() // want `not returned with Put on every path`
	if c {
		return
	}
	p.Put(w)
}

func leakLoopBreak(p *pool, n int) {
	for i := 0; i < n; i++ {
		w := p.Get() // want `not returned with Put on every path`
		if w.next != nil {
			break
		}
		p.Put(w)
	}
}

func leakDiscard(p *pool) {
	p.Get() // want `discarded`
}

func doublePut(p *pool, c bool) {
	w := p.Get()
	if c {
		p.Put(w)
	}
	p.Put(w) // want `may already have been returned`
}

func useAfterPut(p *pool) {
	w := p.Get()
	p.Put(w)
	w.b = nil // want `used after being returned`
}

func escapeAfterPut(p *pool) {
	w := p.Get()
	p.Put(w)
	sink = w // want `used after being returned`
}

func retainedPut(p *pool) {
	w := p.Get()
	keep(w)  // keep stores w in a global...
	p.Put(w) // want `retained by an earlier call`
}

func touchedPut(p *pool) {
	w := p.Get()
	touch(w) // touch only mutates in place: no retention
	p.Put(w)
}

func okDep(p *dep.Pool) {
	w := p.Get()
	w.N++
	p.Put(w)
}

func leakDep(p *dep.Pool, c bool) {
	w := p.Get() // want `not returned with Put on every path`
	if c {
		p.Put(w)
	}
}

func okLabeledLoops(p *pool, m, n int) {
outer:
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			w := p.Get()
			if j == 1 {
				p.Put(w)
				continue outer
			}
			p.Put(w)
		}
	}
}

func leakLabeledBreak(p *pool, m, n int) {
outer:
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			w := p.Get() // want `not returned with Put on every path`
			if j == 2 {
				break outer // jumps past both Put sites
			}
			p.Put(w)
		}
	}
}

func okSelectDefault(p *pool, ch chan int) {
	w := p.Get()
	select {
	case <-ch:
		p.Put(w)
	default:
		p.Put(w)
	}
}

func leakSelectDefault(p *pool, ch chan int) {
	w := p.Get() // want `not returned with Put on every path`
	select {
	case <-ch:
		p.Put(w)
	default:
	}
}

func okDeferInLoopBody(p *pool, n int) {
	for i := 0; i < n; i++ {
		w := p.Get()
		defer p.Put(w) // arms once per iteration; each w is returned at exit
		w.b = nil
	}
}
