// Package dep exports a PoolSource fact consumed by the poolsafe
// fixture package.
package dep

// Work is a pooled object.
type Work struct{ N int }

// Pool is a free-list of Works.
type Pool struct{ free []*Work }

// Get returns a pooled Work.
//
//gflink:pool
func (p *Pool) Get() *Work {
	if n := len(p.free); n > 0 {
		w := p.free[n-1]
		p.free = p.free[:n-1]
		return w
	}
	return &Work{}
}

// Put returns a Work to the free list.
func (p *Pool) Put(w *Work) { p.free = append(p.free, w) }
