package counterkey_test

import (
	"testing"

	"gflink/internal/analysis/analysistest"
	"gflink/internal/analysis/counterkey"
)

// The dep fixture is listed first so its CounterKey fact exists when
// the dependent package is analyzed.
func TestCounterkey(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), counterkey.Analyzer, "counterkey/dep", "counterkey")
}
