// Package counterkey enforces the metric-name half of DESIGN.md
// invariant 8: every counter name passed to (*obs.Registry).Add,
// (*obs.Registry).Max or (*obs.Registry).Counter (the preregistered
// lock-free handle constructor) must be a compile-time constant format
// string
// that matches the metrics grammar, so dashboards and the repository
// self-checks can enumerate every counter the simulator can ever emit
// by reading the source.
//
// The grammar mirrors the namespaces the obs registry documents:
//
//	cache.{hits|misses|inserts|rejects|stop|evictions}[.gpu<N>]
//	sched.{direct|pooled|steals}[.w<N>]
//	xfer.{h2d|d2h}.bytes.gpu<N>
//	mem.{demotions|promotions|spills|reloads}[.gpu<N>]
//	stream.{records|batches|windows|blockedns|grants|depthmax}[.s<N>]
//
// A key expression is evaluated symbolically into a pattern: string
// constants and constant-format fmt.Sprintf calls contribute literal
// text with one wildcard per verb; concatenation concatenates.
// Literal dot-separated segments are validated against the grammar up
// to the first wildcarded segment (a prefix of a valid key is valid —
// helpers routinely append the worker or device suffix). A key whose
// *root* is a wildcard is only acceptable when that wildcard is a
// parameter of the enclosing function: the function then exports a
// CounterKey fact and the obligation moves to its callers, exactly
// like clockflow's TimestampSink flow. Any other dynamic root is
// reported as not compile-time constant.
//
// Reads of unexported struct fields are resolved through field
// provenance: hot paths precompute their counter names once (a
// per-Add fmt.Sprintf is an allocation the hotalloc analyzer
// forbids), so a field read is an acceptable key exactly when every
// package-local assignment to that field — plain assignments and
// composite-literal entries alike — evaluates to a grammar-valid
// pattern. The counters stay statically enumerable: the enumeration
// just reads the field's initializers instead of the Add site.
//
// Test files are exempt (they probe the registry with throwaway
// names). Suppress a single site with //gflink:counter-key.
package counterkey

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"gflink/internal/analysis"
)

// CounterKey marks a function some of whose parameters form the root
// of a counter name passed to the obs registry; callers must pass
// grammar-conforming constant keys (or key prefixes) at those indices.
type CounterKey struct{ Indices []int }

// AFact marks CounterKey as a fact type.
func (*CounterKey) AFact() {}

// Analyzer implements the counterkey check.
var Analyzer = &analysis.Analyzer{
	Name:      "counterkey",
	Doc:       "counter names passed to the obs registry must be compile-time constant format strings matching the metrics grammar",
	Run:       run,
	FactTypes: []analysis.Fact{(*CounterKey)(nil)},
}

const obsPath = "gflink/internal/obs"

// wildcard stands in for one dynamically-formatted region of a key
// pattern. NUL cannot appear in a sane metric name.
const wildcard = "\x00"

// grammar maps each namespace root to the matchers of its remaining
// segments, in order. A key may stop early (prefix) but not run long.
var grammar = map[string][]func(string) bool{
	"cache":  {oneOf("hits", "misses", "inserts", "rejects", "stop", "evictions"), numbered("gpu")},
	"sched":  {oneOf("direct", "pooled", "steals"), numbered("w")},
	"xfer":   {oneOf("h2d", "d2h"), oneOf("bytes"), numbered("gpu")},
	"mem":    {oneOf("demotions", "promotions", "spills", "reloads"), numbered("gpu")},
	"stream": {oneOf("records", "batches", "windows", "blockedns", "grants", "depthmax"), numbered("s")},
}

func oneOf(names ...string) func(string) bool {
	set := make(map[string]bool, len(names))
	for _, n := range names {
		set[n] = true
	}
	return func(s string) bool { return set[s] }
}

// numbered matches prefix followed by one or more decimal digits
// (gpu0, w12). The segment may also be fully wildcarded by formatting.
func numbered(prefix string) func(string) bool {
	return func(s string) bool {
		rest, ok := strings.CutPrefix(s, prefix)
		if !ok || rest == "" {
			return false
		}
		for _, c := range rest {
			if c < '0' || c > '9' {
				return false
			}
		}
		return true
	}
}

// part is one symbolic piece of a key expression: literal text, or a
// wildcard whose producing expression is kept for root classification.
type part struct {
	lit  string
	expr ast.Expr // non-nil marks a wildcard
}

// fnScope is one analyzed function or function literal.
type fnScope struct {
	obj  *types.Func // nil for literals
	sig  *types.Signature
	body *ast.BlockStmt
	rd   *analysis.ReachingDefs
	idx  map[string]map[int]bool
}

func run(pass *analysis.Pass) (interface{}, error) {
	info := pass.TypesInfo
	st := &state{
		pass:     pass,
		keyed:    make(map[*types.Func]map[int]bool),
		fields:   make(map[*types.Var][]ast.Expr),
		visiting: make(map[*types.Var]bool),
	}
	var scopes []*fnScope
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		collectFieldInits(info, f, st.fields)
		idx := analysis.DirectiveIndex(pass.Fset, f)
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := info.Defs[fd.Name].(*types.Func)
			cfg := analysis.BuildCFG(info, fd.Body)
			scopes = append(scopes, &fnScope{
				obj:  obj,
				sig:  sigOf(obj),
				body: fd.Body,
				rd:   analysis.NewReachingDefs(info, cfg, fd.Recv, fd.Type),
				idx:  idx,
			})
		}
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.FuncLit)
			if !ok {
				return true
			}
			sig, _ := info.Types[lit].Type.(*types.Signature)
			cfg := analysis.BuildCFG(info, lit.Body)
			scopes = append(scopes, &fnScope{
				sig:  sig,
				body: lit.Body,
				rd:   analysis.NewReachingDefs(info, cfg, nil, lit.Type),
				idx:  idx,
			})
			return true
		})
	}

	// Obligation fixpoint: a function whose parameter roots a key at a
	// keyed call site becomes keyed itself, so its callers are checked.
	for changed := true; changed; {
		changed = false
		for _, sc := range scopes {
			if sc.obj == nil {
				continue
			}
			forEachCall(sc.body, func(call *ast.CallExpr) {
				for _, i := range st.calleeKeyed(analysis.StaticCallee(info, call)) {
					if i >= len(call.Args) {
						continue
					}
					parts := st.eval(sc, call.Args[i], nil)
					if len(parts) == 0 || parts[0].expr == nil {
						continue
					}
					p, ok := st.rootParam(sc, parts[0].expr)
					if !ok {
						continue
					}
					if st.keyed[sc.obj] == nil {
						st.keyed[sc.obj] = make(map[int]bool)
					}
					if !st.keyed[sc.obj][p] {
						st.keyed[sc.obj][p] = true
						changed = true
					}
				}
			})
		}
	}

	// Report pass.
	for _, sc := range scopes {
		forEachCall(sc.body, func(call *ast.CallExpr) {
			for _, i := range st.calleeKeyed(analysis.StaticCallee(info, call)) {
				if i >= len(call.Args) {
					continue
				}
				arg := call.Args[i]
				parts := st.eval(sc, arg, nil)
				msg := st.check(sc, parts)
				if msg == "" {
					continue
				}
				if analysis.DirectiveAt(sc.idx, pass.Fset, "counter-key", arg.Pos()) ||
					analysis.DirectiveAt(sc.idx, pass.Fset, "counter-key", call.Pos()) {
					continue
				}
				pass.Reportf(arg.Pos(), "%s", msg)
			}
		})
	}

	// Export obligations for dependent packages.
	for fn, idxs := range st.keyed {
		out := make([]int, 0, len(idxs))
		for i := range idxs {
			out = append(out, i)
		}
		sort.Ints(out)
		pass.ExportObjectFact(fn, &CounterKey{Indices: out})
	}
	return nil, nil
}

type state struct {
	pass  *analysis.Pass
	keyed map[*types.Func]map[int]bool
	// fields maps a struct field to every package-local expression
	// assigned to it; a nil entry poisons the field (assigned from a
	// multi-valued call, so its contents are not enumerable).
	fields   map[*types.Var][]ast.Expr
	visiting map[*types.Var]bool // field-provenance cycle guard
}

// collectFieldInits records every assignment to a struct field in f:
// plain (possibly multi-)assignments, keyed composite-literal entries,
// and positional struct literals.
func collectFieldInits(info *types.Info, f *ast.File, fields map[*types.Var][]ast.Expr) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, l := range n.Lhs {
				sel, ok := ast.Unparen(l).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				s, ok := info.Selections[sel]
				if !ok || s.Kind() != types.FieldVal {
					continue
				}
				fv, ok := s.Obj().(*types.Var)
				if !ok {
					continue
				}
				if len(n.Rhs) == len(n.Lhs) {
					fields[fv] = append(fields[fv], n.Rhs[i])
				} else {
					fields[fv] = append(fields[fv], nil)
				}
			}
		case *ast.CompositeLit:
			tv, ok := info.Types[n]
			if !ok {
				return true
			}
			styp, ok := tv.Type.Underlying().(*types.Struct)
			if !ok {
				return true
			}
			for i, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					id, ok := kv.Key.(*ast.Ident)
					if !ok {
						continue
					}
					if fv, ok := info.Uses[id].(*types.Var); ok {
						fields[fv] = append(fields[fv], kv.Value)
					}
				} else if i < styp.NumFields() {
					fields[styp.Field(i)] = append(fields[styp.Field(i)], el)
				}
			}
		}
		return true
	})
}

// fieldParts resolves a read of a struct field into a key pattern via
// field provenance. It returns nil when the field is not resolvable
// this way (exported, foreign, or never assigned locally) — the caller
// then treats the read as an opaque wildcard. When every recorded
// assignment evaluates to an acceptable pattern, the first one stands
// in for the read; otherwise the first failing assignment does, so the
// use site reports the underlying defect.
func (st *state) fieldParts(sc *fnScope, sel *ast.SelectorExpr) []part {
	s, ok := st.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	fv, ok := s.Obj().(*types.Var)
	if !ok || fv.Pkg() != st.pass.Pkg || fv.Exported() || st.visiting[fv] {
		return nil
	}
	inits := st.fields[fv]
	if len(inits) == 0 {
		return nil
	}
	st.visiting[fv] = true
	defer delete(st.visiting, fv)
	var good []part
	for _, init := range inits {
		if init == nil {
			return []part{{expr: sel}}
		}
		parts := st.eval(sc, init, nil)
		if st.check(sc, parts) != "" {
			return parts
		}
		if good == nil {
			good = parts
		}
	}
	return good
}

// calleeKeyed resolves the key-parameter indices of a call target:
// the Registry.Add root, package-local obligations, or imported facts.
func (st *state) calleeKeyed(fn *types.Func) []int {
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	if fn.Pkg().Path() == obsPath {
		if k := analysis.ObjectKey(fn); k == "Registry.Add" || k == "Registry.Max" || k == "Registry.Counter" {
			return []int{0}
		}
	}
	if fn.Pkg() == st.pass.Pkg {
		local := st.keyed[fn]
		out := make([]int, 0, len(local))
		for i := range local {
			out = append(out, i)
		}
		sort.Ints(out)
		return out
	}
	var fact CounterKey
	if st.pass.ImportObjectFact(fn, &fact) {
		return fact.Indices
	}
	return nil
}

// check validates an evaluated key pattern. It returns a diagnostic
// message, or "" when the pattern is acceptable (possibly by moving
// the obligation to callers via the fixpoint above).
func (st *state) check(sc *fnScope, parts []part) string {
	if len(parts) == 0 {
		return "counter name is not a compile-time constant format string; counter keys must be statically enumerable"
	}
	if parts[0].expr != nil {
		if _, ok := st.rootParam(sc, parts[0].expr); ok {
			return "" // callers carry the obligation via the CounterKey fact
		}
		return "counter name is not a compile-time constant format string; counter keys must be statically enumerable"
	}
	var b strings.Builder
	for _, p := range parts {
		if p.expr != nil {
			b.WriteString(wildcard)
		} else {
			b.WriteString(p.lit)
		}
	}
	pattern := b.String()
	segs := strings.Split(pattern, ".")
	if strings.Contains(segs[0], wildcard) {
		return "" // mixed-literal root: dynamic suffix within the first segment
	}
	matchers, ok := grammar[segs[0]]
	if !ok {
		return badKey(pattern)
	}
	for i, seg := range segs[1:] {
		if strings.Contains(seg, wildcard) {
			return "" // formatted tail: trusted from here on
		}
		if i >= len(matchers) || !matchers[i](seg) {
			return badKey(pattern)
		}
	}
	return ""
}

func badKey(pattern string) string {
	display := strings.ReplaceAll(pattern, wildcard, "*")
	return "counter name \"" + display + "\" does not match the metrics grammar (cache.*, sched.*, xfer.*, mem.*, stream.*); see DESIGN.md invariant 8"
}

// rootParam reports whether an expression is (transitively) a read of
// one of the enclosing function's parameters, and which one.
func (st *state) rootParam(sc *fnScope, e ast.Expr) (int, bool) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || sc.sig == nil {
		return 0, false
	}
	v, _ := st.pass.TypesInfo.Uses[id].(*types.Var)
	if v == nil || !sc.rd.Tracked(v) {
		return 0, false
	}
	defs := sc.rd.DefsAt(id)
	if len(defs) == 0 {
		return 0, false
	}
	for _, d := range defs {
		if d.Kind != analysis.DefParam {
			return 0, false
		}
	}
	params := sc.sig.Params()
	for i := 0; i < params.Len(); i++ {
		if params.At(i) == v {
			return i, true
		}
	}
	return 0, false
}

// eval symbolically evaluates a key expression into literal/wildcard
// parts. visited guards definition cycles.
func (st *state) eval(sc *fnScope, e ast.Expr, visited map[*analysis.Def]bool) []part {
	info := st.pass.TypesInfo
	e = ast.Unparen(e)
	if tv, ok := info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return []part{{lit: constant.StringVal(tv.Value)}}
	}
	switch e := e.(type) {
	case *ast.BinaryExpr:
		if e.Op == token.ADD {
			return append(st.eval(sc, e.X, visited), st.eval(sc, e.Y, visited)...)
		}
	case *ast.CallExpr:
		fn := analysis.StaticCallee(info, e)
		if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && fn.Name() == "Sprintf" && len(e.Args) > 0 {
			if tv, ok := info.Types[e.Args[0]]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
				return sprintfParts(constant.StringVal(tv.Value), e.Args[1:])
			}
		}
	case *ast.SelectorExpr:
		if parts := st.fieldParts(sc, e); parts != nil {
			return parts
		}
	case *ast.Ident:
		v, _ := info.Uses[e].(*types.Var)
		if v == nil || !sc.rd.Tracked(v) {
			return []part{{expr: e}}
		}
		defs := sc.rd.DefsAt(e)
		if len(defs) == 1 && defs[0].Kind == analysis.DefAssign && !defs[0].Multi && defs[0].RHS != nil {
			d := defs[0]
			if visited[d] {
				return []part{{expr: e}}
			}
			if visited == nil {
				visited = make(map[*analysis.Def]bool)
			}
			visited[d] = true
			defer delete(visited, d)
			return st.eval(sc, d.RHS, visited)
		}
		return []part{{expr: e}}
	}
	return []part{{expr: e}}
}

// sprintfParts splits a constant format string into literal chunks
// with one wildcard per verb, pairing verbs with their arguments.
func sprintfParts(format string, args []ast.Expr) []part {
	var parts []part
	var lit strings.Builder
	arg := 0
	for i := 0; i < len(format); i++ {
		c := format[i]
		if c != '%' {
			lit.WriteByte(c)
			continue
		}
		if i+1 < len(format) && format[i+1] == '%' {
			lit.WriteByte('%')
			i++
			continue
		}
		// Consume flags/width/precision up to the verb letter.
		j := i + 1
		for j < len(format) && !isVerbLetter(format[j]) {
			j++
		}
		i = j
		if lit.Len() > 0 {
			parts = append(parts, part{lit: lit.String()})
			lit.Reset()
		}
		w := part{}
		if arg < len(args) {
			w.expr = args[arg]
		} else {
			w.expr = ast.NewIdent("_") // malformed format: plain wildcard
		}
		arg++
		parts = append(parts, w)
	}
	if lit.Len() > 0 {
		parts = append(parts, part{lit: lit.String()})
	}
	return parts
}

func isVerbLetter(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func sigOf(fn *types.Func) *types.Signature {
	if fn == nil {
		return nil
	}
	sig, _ := fn.Type().(*types.Signature)
	return sig
}

// forEachCall visits every call expression in a body, excluding nested
// function literals (they are separate scopes).
func forEachCall(body *ast.BlockStmt, fn func(*ast.CallExpr)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			fn(call)
		}
		return true
	})
}
