// Fixture for the counterkey analyzer: counter names reaching the obs
// registry must be constant format strings matching the grammar.
package counterkey

import (
	"fmt"
	"strings"

	"counterkey/dep"

	"gflink/internal/obs"
)

func good(r *obs.Registry) {
	r.Add("cache.hits", 1)
	r.Add("sched.steals.w3", 1)
	r.Add(fmt.Sprintf("xfer.h2d.bytes.gpu%d", 2), 64)
	r.Add("cache.evictions.gpu11", 1)
	r.Add("sched.direct", 1) // prefix of a valid key is valid
	r.Add("mem.demotions.gpu0", 1)
	r.Add("mem.spills", 1) // tier totals before the device suffix is appended
	r.Add(fmt.Sprintf("mem.promotions.gpu%d", 1), 1)
	r.Add("mem.reloads.gpu7", 1)
	r.Add("stream.records.s0", 1)
	r.Add(fmt.Sprintf("stream.blockedns.s%d", 2), 1)
	r.Add("stream.grants", 1) // edge totals before the stage suffix is appended
}

// maxIsKeyed: Registry.Max shares Add's key obligation — high-watermark
// gauges live in the same grammar-checked namespace.
func maxIsKeyed(r *obs.Registry, stage int) {
	r.Max("stream.depthmax.s1", 4)
	r.Max(fmt.Sprintf("stream.depthmax.s%d", stage), 4)
	r.Max("stream.credits", 1) // want `does not match the metrics grammar`
	r.Max("queue.depth", 1)    // want `does not match the metrics grammar`
}

func typos(r *obs.Registry) {
	r.Add("cache.hit", 1)           // want `does not match the metrics grammar`
	r.Add("xfer.h2d.gpu0", 1)       // want `does not match the metrics grammar`
	r.Add("queue.depth", 1)         // want `does not match the metrics grammar`
	r.Add("sched.w3", 1)            // want `does not match the metrics grammar`
	r.Add("cache.hits.cpu", 1)      // want `does not match the metrics grammar`
	r.Add("mem.evictions", 1)       // want `does not match the metrics grammar`
	r.Add("mem.spills.w2", 1)       // want `does not match the metrics grammar`
	r.Add("stream.credits", 1)      // want `does not match the metrics grammar`
	r.Add("stream.records.gpu0", 1) // want `does not match the metrics grammar`
}

func tooLong(r *obs.Registry) {
	r.Add("sched.pooled.w1.extra", 1) // want `does not match the metrics grammar`
}

func formattedTail(r *obs.Registry, event string, gpu int) {
	// A literal root with a formatted tail is accepted: the producers
	// of the dynamic pieces are validated at their own call sites.
	r.Add("cache."+event+fmt.Sprintf(".gpu%d", gpu), 1)
	r.Add(fmt.Sprintf("xfer.d2h.bytes.gpu%d", gpu), 1)
}

func dynamicRoot(r *obs.Registry, parts []string) {
	r.Add(strings.Join(parts, "."), 1) // want `not a compile-time constant`
}

func badRootFormat(r *obs.Registry) {
	r.Add(fmt.Sprintf("%d.hits", 3), 1) // want `not a compile-time constant`
}

func viaLocal(r *obs.Registry) {
	key := "sched.oops"
	r.Add(key, 1) // want `does not match the metrics grammar`
	ok := "cache.misses"
	r.Add(ok, 1)
}

// helper roots its key at a parameter, so it acquires a CounterKey
// obligation and its callers are checked instead.
func helper(r *obs.Registry, name string) {
	r.Add(fmt.Sprintf("%s.w%d", name, 3), 1)
}

func callsHelper(r *obs.Registry) {
	helper(r, "sched.direct")
	helper(r, "sched.oops") // want `does not match the metrics grammar`
}

// chained forwards its parameter into helper: the obligation
// propagates through the package-local fixpoint.
func chained(r *obs.Registry, name string) {
	helper(r, name)
}

func callsChained(r *obs.Registry) {
	chained(r, "sched.pooled")
	chained(r, "flink.latency") // want `does not match the metrics grammar`
}

func crossPackage(r *obs.Registry) {
	dep.KeyedCount(r, "sched.steals", 2)
	dep.KeyedCount(r, "spark.shuffle", 2) // want `does not match the metrics grammar`
}

func waived(r *obs.Registry, key string) {
	r.Add(key, 1) //gflink:counter-key -- bridge for externally-namespaced metrics
}

// keyFields exercises field provenance: hot paths precompute counter
// names into struct fields, and a field read is a valid key when every
// package-local assignment to the field is a grammar-valid pattern.
type keyFields struct {
	direct   string
	h2dName  string
	typo     string
	dynamic  string
	poisoned string
}

func newKeyFields(node, gpu int, parts []string) *keyFields {
	k := &keyFields{
		direct: fmt.Sprintf("sched.direct.w%d", node),
		typo:   "queue.depth",
	}
	k.h2dName = fmt.Sprintf("xfer.h2d.bytes.gpu%d", gpu)
	k.dynamic = strings.Join(parts, ".")
	// Provenance is the conjunction of every assignment in the package:
	// one bad write (the literal below) poisons the field even at reads
	// that only ever see the good write at runtime.
	k.poisoned = "cache.hits"
	return k
}

func usesKeyFields(r *obs.Registry, k *keyFields) {
	r.Add(k.direct, 1)
	r.Add(k.h2dName, 1)
	r.Add(k.typo, 1)     // want `does not match the metrics grammar`
	r.Add(k.dynamic, 1)  // want `not a compile-time constant`
	r.Add(k.poisoned, 1) // want `does not match the metrics grammar`
}

func poisons(k *keyFields) {
	k.poisoned = "flink.latency"
}
