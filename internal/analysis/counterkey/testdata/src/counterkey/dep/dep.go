// Fixture dependency for counterkey's cross-package fact flow:
// KeyedCount roots its counter name at a parameter, so callers in
// dependent packages inherit the grammar obligation via a CounterKey
// fact.
package dep

import (
	"fmt"

	"gflink/internal/obs"
)

// KeyedCount bumps name for one worker; name must be a valid key
// prefix at every caller.
func KeyedCount(r *obs.Registry, name string, worker int) {
	r.Add(fmt.Sprintf("%s.w%d", name, worker), 1)
}
