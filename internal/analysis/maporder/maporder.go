// Package maporder flags `for range` loops over maps whose bodies have
// order-observable effects.
//
// Go randomizes map iteration order, and the simulator's claims rest on
// byte-identical reproducibility: every reproduced figure is a
// deterministic function of the virtual clock, and the virtual clock's
// schedule is itself a function of the order in which processes are
// spawned, woken and charged. A map-ordered loop that appends to a
// slice, sends on a channel, accumulates floating-point values, or
// calls into the clock makes results differ between two runs of the
// *same binary* — the one nondeterminism class that survives vclock,
// -race and the wallclock/clockgo analyzers.
//
// An effect is order-observable when the loop body
//
//   - appends to a slice declared outside the loop (exempted when the
//     slice is passed to a sort/slices call after the loop — the
//     canonical collect-keys-then-sort idiom),
//   - sends on a channel,
//   - accumulates float or string values into a variable declared
//     outside the loop (integer accumulation is exactly associative and
//     commutative, so it stays legal),
//   - calls a function that may touch the virtual clock — directly, or
//     transitively through any chain of static calls. Transitive reach
//     is computed interprocedurally: the analyzer exports a UsesVClock
//     fact for every function that can reach package vclock, and
//     imports those facts when analyzing dependent packages, or
//   - panics with, or returns, loop-derived values (which entry
//     triggers first is nondeterministic).
//
// Loops whose iteration order is genuinely irrelevant carry
// //gflink:unordered on the `for` line or the line above, with a
// justification.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"gflink/internal/analysis"
)

// UsesVClock marks a function that may observe or advance the virtual
// clock, directly or transitively. Exported for every such function so
// dependent packages inherit the reachability relation.
type UsesVClock struct{}

// AFact marks UsesVClock as a fact type.
func (*UsesVClock) AFact() {}

const vclockPath = "gflink/internal/vclock"

// Analyzer implements the maporder check.
var Analyzer = &analysis.Analyzer{
	Name:      "maporder",
	Doc:       "flag range-over-map loops with order-observable effects (slice appends, channel sends, float accumulation, virtual-clock calls, loop-derived panics/returns); suppress with //gflink:unordered",
	Run:       run,
	FactTypes: []analysis.Fact{(*UsesVClock)(nil)},
}

func run(pass *analysis.Pass) (interface{}, error) {
	g := analysis.BuildCallGraph(pass)

	// Interprocedural clock reachability: seed with direct calls into
	// package vclock, close over the package's call graph with imported
	// facts resolving cross-package callees, then export.
	reach := g.Fixpoint(
		func(fi *analysis.FuncInfo) []string {
			for _, c := range fi.Callees {
				if touchesVClockDirect(c) {
					return []string{"vclock"}
				}
			}
			return nil
		},
		func(callee *types.Func) []string {
			if touchesVClockDirect(callee) || pass.ImportObjectFact(callee, &UsesVClock{}) {
				return []string{"vclock"}
			}
			return nil
		},
	)
	for _, fi := range g.Decls {
		if len(reach[fi.Obj]) > 0 {
			pass.ExportObjectFact(fi.Obj, &UsesVClock{})
		}
	}

	touchesClock := func(fn *types.Func) bool {
		if touchesVClockDirect(fn) {
			return true
		}
		if set, ok := reach[fn]; ok {
			return len(set) > 0
		}
		return pass.ImportObjectFact(fn, &UsesVClock{})
	}

	for _, f := range pass.Files {
		idx := analysis.DirectiveIndex(pass.Fset, f)
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if !isMapRange(pass, rs) {
					return true
				}
				if analysis.DirectiveAt(idx, pass.Fset, "unordered", rs.Pos()) {
					return true
				}
				checkLoop(pass, fd.Body, rs, touchesClock)
				return true
			})
		}
	}
	return nil, nil
}

// touchesVClockDirect reports whether fn is itself part of the virtual
// clock: any function or method of package vclock observes or advances
// virtual time (even Clock.Now is an observation whose order matters).
func touchesVClockDirect(fn *types.Func) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == vclockPath
}

// isMapRange reports whether the range expression's core type is a map.
func isMapRange(pass *analysis.Pass, rs *ast.RangeStmt) bool {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// checkLoop reports every order-observable effect of one map-ranged
// loop body.
func checkLoop(pass *analysis.Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt, touchesClock func(*types.Func) bool) {
	loopVars := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		id, ok := e.(*ast.Ident)
		if !ok {
			continue
		}
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			loopVars[obj] = true
		} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
			loopVars[obj] = true
		}
	}
	usesLoopVar := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && loopVars[pass.TypesInfo.Uses[id]] {
				found = true
			}
			return !found
		})
		return found
	}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "nondeterministic map iteration: channel send in map-iteration order; sort the keys first or annotate the loop with //gflink:unordered")
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if usesLoopVar(res) {
					pass.Reportf(n.Pos(), "nondeterministic map iteration: returns loop-derived values (which entry returns first is nondeterministic); sort the keys first or annotate the loop with //gflink:unordered")
					break
				}
			}
		case *ast.AssignStmt:
			checkAssign(pass, fnBody, rs, n)
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "panic" && isBuiltinUse(pass, id) {
				for _, arg := range n.Args {
					if usesLoopVar(arg) {
						pass.Reportf(n.Pos(), "nondeterministic map iteration: panics with loop-derived values (which entry panics is nondeterministic); sort the keys first or annotate the loop with //gflink:unordered")
						break
					}
				}
				return true
			}
			if callee := analysis.StaticCallee(pass.TypesInfo, n); callee != nil && touchesClock(callee) {
				pass.Reportf(n.Pos(), "nondeterministic map iteration: %s may observe or advance the virtual clock, making the schedule depend on map order; sort the keys first or annotate the loop with //gflink:unordered", calleeName(callee))
			}
		}
		return true
	})
}

// checkAssign flags appends to outer slices and non-associative
// accumulation into outer variables.
func checkAssign(pass *analysis.Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt, asg *ast.AssignStmt) {
	outerObj := func(e ast.Expr) types.Object {
		id, ok := e.(*ast.Ident)
		if !ok {
			return nil
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			obj = pass.TypesInfo.Defs[id]
		}
		if obj == nil {
			return nil
		}
		if obj.Pos() >= rs.Pos() && obj.Pos() <= rs.End() {
			return nil // declared inside the loop
		}
		return obj
	}

	// Accumulation: x += v / x -= v / x *= v ... on float or string.
	switch asg.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if obj := outerObj(asg.Lhs[0]); obj != nil && nonAssociative(obj.Type()) {
			pass.Reportf(asg.Pos(), "nondeterministic map iteration: accumulates %s into %q in map-iteration order (floating-point addition is not associative); sort the keys first or annotate the loop with //gflink:unordered", obj.Type(), obj.Name())
		}
		return
	case token.ASSIGN, token.DEFINE:
	default:
		return
	}

	for i, rhs := range asg.Rhs {
		if i >= len(asg.Lhs) {
			break
		}
		// x = x + v on float/string.
		if bin, ok := rhs.(*ast.BinaryExpr); ok && (bin.Op == token.ADD || bin.Op == token.SUB || bin.Op == token.MUL || bin.Op == token.QUO) {
			if obj := outerObj(asg.Lhs[i]); obj != nil && nonAssociative(obj.Type()) {
				if x, ok := bin.X.(*ast.Ident); ok && pass.TypesInfo.Uses[x] == obj {
					pass.Reportf(asg.Pos(), "nondeterministic map iteration: accumulates %s into %q in map-iteration order (floating-point addition is not associative); sort the keys first or annotate the loop with //gflink:unordered", obj.Type(), obj.Name())
					continue
				}
			}
		}
		// x = append(x, ...) into an outer slice.
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			continue
		}
		if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" || !isBuiltinUse(pass, id) {
			continue
		}
		obj := outerObj(asg.Lhs[i])
		if obj == nil {
			continue
		}
		if sortedAfter(pass, fnBody, rs, obj) {
			continue // collect-then-sort idiom
		}
		pass.Reportf(asg.Pos(), "nondeterministic map iteration: appends to %q in map-iteration order and %q is never sorted afterwards; sort it (sort.Slice, slices.Sort, ...) or annotate the loop with //gflink:unordered", obj.Name(), obj.Name())
	}
}

// isBuiltinUse reports whether id denotes a predeclared builtin (not a
// user-defined shadow).
func isBuiltinUse(pass *analysis.Pass, id *ast.Ident) bool {
	_, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

// nonAssociative reports whether accumulating values of type t is
// order-sensitive: floating point, complex, and string concatenation.
func nonAssociative(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsFloat|types.IsComplex|types.IsString) != 0
}

// sortedAfter reports whether obj is passed to a sort or slices call
// after the loop within the same function body.
func sortedAfter(pass *analysis.Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		callee := analysis.StaticCallee(pass.TypesInfo, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		if p := callee.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// calleeName renders a callee for diagnostics.
func calleeName(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok && n.Obj().Pkg() != nil {
			return "(" + n.Obj().Pkg().Name() + "." + n.Obj().Name() + ")." + fn.Name()
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
