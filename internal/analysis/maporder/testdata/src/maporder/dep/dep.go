// Package dep provides helpers whose virtual-clock reach is visible to
// importers only through exported UsesVClock facts.
package dep

import "gflink/internal/vclock"

// Tick parks the calling process, advancing the virtual clock.
func Tick(c *vclock.Clock) {
	c.Sleep(1)
}

// TickIndirect reaches the clock through another function in this
// package, exercising transitive fact export.
func TickIndirect(c *vclock.Clock) {
	Tick(c)
}

// Pure has no clock effect.
func Pure(x int) int {
	return x + 1
}
