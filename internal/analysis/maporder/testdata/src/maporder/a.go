package maporder

import (
	"sort"

	"gflink/internal/vclock"

	"maporder/dep"
)

// --- channel sends ---

func sends(m map[string]int, ch chan int) {
	for _, v := range m {
		ch <- v // want `channel send in map-iteration order`
	}
}

func sliceSend(xs []int, ch chan int) {
	for _, v := range xs {
		ch <- v // slice order is deterministic: allowed
	}
}

func suppressedSend(m map[string]int, ch chan int) {
	//gflink:unordered -- every entry reaches the channel; the consumer sorts
	for _, v := range m {
		ch <- v
	}
}

// --- appends ---

func appends(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `appends to "keys" in map-iteration order`
	}
	return keys
}

func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // sorted below: allowed
	}
	sort.Strings(keys)
	return keys
}

func innerAppend(m map[string][]int) {
	for _, vs := range m {
		var local []int
		local = append(local, vs...) // target lives inside the loop: allowed
		_ = local
	}
}

// --- accumulation ---

func floatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `accumulates float64 into "sum"`
	}
	return sum
}

func stringConcat(m map[string]string) string {
	out := ""
	for _, v := range m {
		out = out + v // want `accumulates string into "out"`
	}
	return out
}

func intSum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v // integer addition is associative and commutative: allowed
	}
	return n
}

func innerAccum(m map[string][]float64) float64 {
	total := 0.0
	for _, vs := range m {
		s := 0.0
		for _, v := range vs {
			s += v // accumulator lives inside the map loop: allowed
		}
		_ = s
	}
	return total
}

// --- virtual-clock calls ---

func clockDirect(m map[string]int, c *vclock.Clock) {
	for range m {
		c.Sleep(1) // want `\(vclock\.Clock\)\.Sleep may observe or advance the virtual clock`
	}
}

func tickLocal(c *vclock.Clock) {
	c.Sleep(1)
}

func clockTransitive(m map[string]int, c *vclock.Clock) {
	for range m {
		tickLocal(c) // want `maporder\.tickLocal may observe or advance the virtual clock`
	}
}

func clockCrossPackage(m map[string]int, c *vclock.Clock) {
	for range m {
		dep.Tick(c) // want `dep\.Tick may observe or advance the virtual clock`
	}
}

func clockCrossPackageTransitive(m map[string]int, c *vclock.Clock) {
	for range m {
		dep.TickIndirect(c) // want `dep\.TickIndirect may observe or advance the virtual clock`
	}
}

func pureCrossPackage(m map[string]int) int {
	n := 0
	for k := range m {
		n += dep.Pure(len(k)) // dep.Pure never reaches the clock: allowed
	}
	return n
}

// --- loop-derived panics and returns ---

func panics(m map[string]int) {
	for k, v := range m {
		if v < 0 {
			panic("negative count for " + k) // want `panics with loop-derived values`
		}
	}
}

func panicsConst(m map[string]int) {
	for _, v := range m {
		if v < 0 {
			panic("negative count") // same message whichever entry trips it: allowed
		}
	}
}

func returnsFirst(m map[string]int) (string, bool) {
	for k := range m {
		return k, true // want `returns loop-derived values`
	}
	return "", false
}

func returnsFixed(m map[string]int) bool {
	for _, v := range m {
		if v < 0 {
			return true // loop-independent value: allowed
		}
	}
	return false
}
