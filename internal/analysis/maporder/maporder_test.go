package maporder_test

import (
	"testing"

	"gflink/internal/analysis/analysistest"
	"gflink/internal/analysis/maporder"
)

func TestMapOrder(t *testing.T) {
	// dep is listed first so its UsesVClock facts are in the store when
	// the maporder fixture (which imports it) is analyzed.
	analysistest.Run(t, analysistest.TestData(), maporder.Analyzer, "maporder/dep", "maporder")
}
