// Package analysis is a self-contained re-implementation of the core of
// golang.org/x/tools/go/analysis, built only on the standard library.
//
// The module deliberately has no external dependencies (the simulator
// must build hermetically), so instead of importing x/tools this package
// provides the same Analyzer/Pass/Diagnostic contract plus a loader
// (load.go) and a driver (driver.go) able to type-check the module from
// source. Analyzers written against it are source-compatible with the
// x/tools API for the subset they use, so they could be lifted onto the
// real framework if the dependency ever becomes available.
//
// The thirteen production analyzers live in the subpackages wallclock,
// clockgo, maporder, lockhold, lockorder, buflifecycle, bufescape,
// spanpair, clockflow, counterkey, outputpurity, hotalloc and
// poolsafe; cmd/gflink-vet wires them into a multichecker via the
// suite subpackage. The flow-sensitive six (spanpair, clockflow,
// counterkey, outputpurity, hotalloc, poolsafe) share the CFG/dataflow
// core in cfg.go: per-function control-flow graphs with panic and
// defer edges, a generic forward/backward worklist solver, and
// reaching definitions with branch-guard tracking. See DESIGN.md "Concurrency & lifetime invariants" for the
// invariants they enforce.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the
	// command line. It must be a valid Go identifier.
	Name string

	// Doc is the analyzer's documentation; the first line is used as a
	// summary by the multichecker's usage message.
	Doc string

	// Run applies the analyzer to one package. It may report
	// diagnostics via pass.Report/Reportf. The result value is unused
	// by this driver (kept for x/tools API compatibility).
	Run func(*Pass) (interface{}, error)

	// FactTypes lists the fact types the analyzer exports and imports
	// (see facts.go). A non-empty FactTypes marks the analyzer as
	// interprocedural: the driver then runs it over module-internal
	// dependencies of the requested packages too (facts only, no
	// diagnostics) so cross-package facts are available when dependents
	// are analyzed.
	FactTypes []Fact
}

// Pass provides one analyzed package to an Analyzer's Run function.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report emits one finding.
	Report func(Diagnostic)

	// facts is the run-wide store backing the
	// Export/ImportObjectFact and Export/ImportPackageFact methods;
	// nil when the driver runs without fact support.
	facts *FactStore
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Category string
	Message  string
}

// Reportf emits a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Position resolves pos against the pass's file set.
func (p *Pass) Position(pos token.Pos) token.Position {
	return p.Fset.Position(pos)
}
