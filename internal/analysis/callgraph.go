package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// CallGraph is a lightweight per-package static call graph over the
// source-importing loader: for every function declared in the analyzed
// package it records the statically resolvable callees (direct calls
// to declared functions and methods; calls through function values and
// interface methods are invisible, which keeps the interprocedural
// analyzers sound only for the direct-call discipline the simulator
// actually uses). Interprocedural analyzers combine it with facts:
// same-package callees are resolved through the graph's fixpoint
// helpers, cross-package callees through Import*Fact.
type CallGraph struct {
	// Decls maps each declared function to its syntax, in source order.
	Decls []*FuncInfo
	// byObj indexes Decls by their types object.
	byObj map[*types.Func]*FuncInfo
}

// FuncInfo is one declared function with its resolved call sites.
type FuncInfo struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	// Callees are the statically resolved targets of calls anywhere in
	// the body (function literals included), deduplicated, in first-use
	// order.
	Callees []*types.Func
}

// BuildCallGraph scans the pass's files and resolves every static call.
func BuildCallGraph(pass *Pass) *CallGraph {
	g := &CallGraph{byObj: make(map[*types.Func]*FuncInfo)}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &FuncInfo{Obj: obj, Decl: fd}
			seen := make(map[*types.Func]bool)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := StaticCallee(pass.TypesInfo, call); callee != nil && !seen[callee] {
					seen[callee] = true
					fi.Callees = append(fi.Callees, callee)
				}
				return true
			})
			g.Decls = append(g.Decls, fi)
			g.byObj[obj] = fi
		}
	}
	return g
}

// Lookup returns the FuncInfo of a function declared in this package,
// or nil for cross-package (or undeclared) functions.
func (g *CallGraph) Lookup(fn *types.Func) *FuncInfo {
	return g.byObj[fn]
}

// Fixpoint propagates a string-set property through the package's call
// graph until stable. seed gives each declared function's direct
// contribution; external resolves callees declared outside the package
// (typically via an imported fact). The result maps every declared
// function to its transitive set, sorted.
func (g *CallGraph) Fixpoint(seed func(*FuncInfo) []string, external func(*types.Func) []string) map[*types.Func][]string {
	sets := make(map[*types.Func]map[string]bool, len(g.Decls))
	for _, fi := range g.Decls {
		s := make(map[string]bool)
		for _, v := range seed(fi) {
			s[v] = true
		}
		sets[fi.Obj] = s
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range g.Decls {
			s := sets[fi.Obj]
			absorb := func(v string) {
				if !s[v] {
					s[v] = true
					changed = true
				}
			}
			for _, callee := range fi.Callees {
				if local, ok := sets[callee]; ok {
					//gflink:unordered -- absorbing into a set; membership, not order, feeds the result
					for v := range local {
						absorb(v)
					}
				} else if external != nil {
					for _, v := range external(callee) {
						absorb(v)
					}
				}
			}
		}
	}
	out := make(map[*types.Func][]string, len(sets))
	for fn, s := range sets {
		vals := make([]string, 0, len(s))
		for v := range s {
			vals = append(vals, v)
		}
		sort.Strings(vals)
		out[fn] = vals
	}
	return out
}

// StaticCallee resolves the declared function or method a call
// expression statically targets, or nil for calls through function
// values, interface methods, type conversions, and builtins.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil
			}
			if fn, ok := sel.Obj().(*types.Func); ok {
				// Interface method calls have no static body.
				if recv := sel.Recv(); recv != nil {
					if _, iface := recv.Underlying().(*types.Interface); iface {
						return nil
					}
				}
				return fn
			}
			return nil
		}
		// Package-qualified call (pkg.Func).
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
