// Package clockgo flags bare go statements in simulator packages.
//
// The virtual clock (internal/vclock) advances only when every
// registered process is blocked on a vclock primitive. A goroutine
// spawned with a bare go statement is invisible to that census: the
// clock may advance while the rogue goroutine still runs, yielding
// schedules that depend on host scheduling — or the simulation may
// deadlock-panic because the goroutine's work was never counted.
// Simulator code must spawn concurrency through (*vclock.Clock).Go (or
// Group.Go), which registers the process with the scheduler.
//
// The vclock runtime itself needs one real goroutine per process; such
// sites are annotated //gflink:allow-go, which this analyzer honours on
// the go statement's line or the line above.
package clockgo

import (
	"go/ast"

	"gflink/internal/analysis"
)

// Analyzer implements the clockgo check.
var Analyzer = &analysis.Analyzer{
	Name: "clockgo",
	Doc:  "flag bare go statements in simulator packages; spawn processes with (*vclock.Clock).Go so the virtual clock tracks them (suppress with //gflink:allow-go)",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		idx := analysis.DirectiveIndex(pass.Fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if analysis.DirectiveAt(idx, pass.Fset, "allow-go", g.Pos()) {
				return true
			}
			pass.Reportf(g.Pos(), "bare go statement in a simulator package; use (*vclock.Clock).Go so the virtual clock tracks the process, or annotate with //gflink:allow-go")
			return true
		})
	}
	return nil, nil
}
