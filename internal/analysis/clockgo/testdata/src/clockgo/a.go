// Fixture for the clockgo analyzer: bare go statements are flagged,
// clock.Go and //gflink:allow-go sites are not.
package clockgo

import "gflink/internal/vclock"

func bad() {
	go work() // want `bare go statement`
}

func badLit(n int) {
	for i := 0; i < n; i++ {
		go func() { // want `bare go statement`
			work()
		}()
	}
}

func okAllowedSameLine() {
	go work() //gflink:allow-go
}

func okAllowedAbove() {
	//gflink:allow-go -- host-side bridge goroutine, not a simulated process
	go work()
}

func okClock(c *vclock.Clock) {
	c.Go("worker", work)
	g := vclock.NewGroup(c)
	g.Go("worker", work)
	g.Wait()
}

func work() {}
