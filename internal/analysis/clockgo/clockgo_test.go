package clockgo_test

import (
	"testing"

	"gflink/internal/analysis/analysistest"
	"gflink/internal/analysis/clockgo"
)

func TestClockGo(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), clockgo.Analyzer, "clockgo")
}
