package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Finding is one resolved diagnostic produced by a driver run.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Rule binds an analyzer to the set of packages it applies to. A nil
// Applies runs the analyzer everywhere.
type Rule struct {
	Analyzer *Analyzer
	Applies  func(importPath string) bool
}

// Under returns a package predicate matching prefix and everything
// below it (e.g. Under("gflink/internal")).
func Under(prefix string) func(string) bool {
	return func(path string) bool {
		return path == prefix || strings.HasPrefix(path, prefix+"/")
	}
}

// Except wraps a predicate, excluding the exact packages given.
func Except(pred func(string) bool, paths ...string) func(string) bool {
	return func(path string) bool {
		for _, p := range paths {
			if path == p {
				return false
			}
		}
		return pred == nil || pred(path)
	}
}

// Run loads every package matched by patterns (test files included) and
// applies each rule whose predicate admits the package. Findings come
// back sorted by position for deterministic output.
func Run(l *Loader, patterns []string, rules []Rule) ([]Finding, error) {
	targets, err := l.Expand(patterns)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, t := range targets {
		dir, importPath := t[0], t[1]
		var active []Rule
		for _, r := range rules {
			if r.Applies == nil || r.Applies(importPath) {
				active = append(active, r)
			}
		}
		if len(active) == 0 {
			continue
		}
		pkg, err := l.Load(dir, importPath, true)
		if err != nil {
			return nil, err
		}
		fs, err := RunAnalyzers(pkg, active)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// RunAnalyzers applies the given rules' analyzers to one loaded package.
func RunAnalyzers(pkg *Package, rules []Rule) ([]Finding, error) {
	var findings []Finding
	for _, r := range rules {
		a := r.Analyzer
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		pass.Report = func(d Diagnostic) {
			findings = append(findings, Finding{
				Analyzer: a.Name,
				Pos:      pkg.Fset.Position(d.Pos),
				Message:  d.Message,
			})
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.ImportPath, err)
		}
	}
	return findings, nil
}
