package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Finding is one resolved diagnostic produced by a driver run.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Rule binds an analyzer to the set of packages it applies to. A nil
// Applies runs the analyzer everywhere.
type Rule struct {
	Analyzer *Analyzer
	Applies  func(importPath string) bool
}

// Under returns a package predicate matching prefix and everything
// below it (e.g. Under("gflink/internal")).
func Under(prefix string) func(string) bool {
	return func(path string) bool {
		return path == prefix || strings.HasPrefix(path, prefix+"/")
	}
}

// Except wraps a predicate, excluding the exact packages given.
func Except(pred func(string) bool, paths ...string) func(string) bool {
	return func(path string) bool {
		for _, p := range paths {
			if path == p {
				return false
			}
		}
		return pred == nil || pred(path)
	}
}

// Run loads every package matched by patterns (test files included) and
// applies each rule whose predicate admits the package.
//
// When any rule's analyzer declares FactTypes, the run is
// interprocedural: module-internal dependencies of the targets are
// loaded too (without test files), every loaded package is analyzed in
// dependency order over one shared FactStore, and fact-producing
// analyzers run on the dependencies as well — with their diagnostics
// discarded — so cross-package facts exist by the time dependents need
// them. Diagnostics are only reported for the requested targets, and
// come back sorted by position for deterministic output.
func Run(l *Loader, patterns []string, rules []Rule) ([]Finding, error) {
	targets, err := l.Expand(patterns)
	if err != nil {
		return nil, err
	}
	isTarget := make(map[string]bool, len(targets))
	loaded := make(map[string]*Package)
	var paths []string
	for _, t := range targets {
		dir, importPath := t[0], t[1]
		pkg, err := l.Load(dir, importPath, true)
		if err != nil {
			return nil, err
		}
		isTarget[importPath] = true
		loaded[importPath] = pkg
		paths = append(paths, importPath)
	}

	// With facts in play, pull in module-internal dependencies so their
	// facts can be computed; breadth-first over file imports, visiting
	// in sorted order for determinism.
	if anyFacts(rules) {
		queue := append([]string(nil), paths...)
		sort.Strings(queue)
		for len(queue) > 0 {
			p := queue[0]
			queue = queue[1:]
			for _, dep := range moduleImports(l, loaded[p]) {
				if loaded[dep] != nil {
					continue
				}
				dir, ok := l.DirFor(dep)
				if !ok {
					continue
				}
				pkg, err := l.Load(dir, dep, false)
				if err != nil {
					return nil, err
				}
				loaded[dep] = pkg
				paths = append(paths, dep)
				queue = append(queue, dep)
			}
		}
	}

	order := topoOrder(l, loaded)
	store := NewFactStore()
	var findings []Finding
	for _, path := range order {
		pkg := loaded[path]
		var active []Rule
		for _, r := range rules {
			if r.Applies != nil && !r.Applies(path) {
				continue
			}
			if !isTarget[path] && len(r.Analyzer.FactTypes) == 0 {
				continue // dependencies only run for their facts
			}
			active = append(active, r)
		}
		if len(active) == 0 {
			continue
		}
		fs, err := RunAnalyzers(pkg, active, store)
		if err != nil {
			return nil, err
		}
		if isTarget[path] {
			findings = append(findings, fs...)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

func anyFacts(rules []Rule) bool {
	for _, r := range rules {
		if len(r.Analyzer.FactTypes) > 0 {
			return true
		}
	}
	return false
}

// moduleImports lists pkg's module-internal imports, sorted.
func moduleImports(l *Loader, pkg *Package) []string {
	seen := make(map[string]bool)
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == l.ModulePath() || strings.HasPrefix(path, l.ModulePath()+"/") {
				seen[path] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// topoOrder sorts the loaded packages dependencies-first (imports
// restricted to the loaded set), breaking ties by import path so the
// order — and with it fact computation and finding emission — is
// deterministic.
func topoOrder(l *Loader, loaded map[string]*Package) []string {
	paths := make([]string, 0, len(loaded))
	for p := range loaded {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	state := make(map[string]int, len(paths)) // 0 unvisited, 1 visiting, 2 done
	var order []string
	var visit func(string)
	visit = func(p string) {
		if state[p] != 0 {
			return // done, or a cycle the type checker already rejected
		}
		state[p] = 1
		for _, dep := range moduleImports(l, loaded[p]) {
			if loaded[dep] != nil {
				visit(dep)
			}
		}
		state[p] = 2
		order = append(order, p)
	}
	for _, p := range paths {
		visit(p)
	}
	return order
}

// RunAnalyzers applies the given rules' analyzers to one loaded
// package. store carries facts across packages of a run; pass nil for
// a private, single-package store.
func RunAnalyzers(pkg *Package, rules []Rule, store *FactStore) ([]Finding, error) {
	if store == nil {
		store = NewFactStore()
	}
	var findings []Finding
	for _, r := range rules {
		a := r.Analyzer
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			facts:     store,
		}
		pass.Report = func(d Diagnostic) {
			findings = append(findings, Finding{
				Analyzer: a.Name,
				Pos:      pkg.Fset.Position(d.Pos),
				Message:  d.Message,
			})
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.ImportPath, err)
		}
	}
	return findings, nil
}
