// Fixture for the wallclock analyzer: clock-reading and timer
// functions are banned; duration values and constants are legal.
package wallclock

import "time"

// Durations are the cost-model currency and stay legal.
const tick = 5 * time.Millisecond

func bad() time.Time {
	time.Sleep(tick)          // want `time\.Sleep is wall-clock`
	t0 := time.Now()          // want `time\.Now is wall-clock`
	_ = time.Since(t0)        // want `time\.Since is wall-clock`
	<-time.After(tick)        // want `time\.After is wall-clock`
	_ = time.Tick(tick)       // want `time\.Tick is wall-clock`
	tm := time.NewTimer(tick) // want `time\.NewTimer is wall-clock`
	tm.Stop()
	return time.Now() // want `time\.Now is wall-clock`
}

// Host time as the measurand itself (benchmark harnesses timing the
// simulator) is waived explicitly, line-above or same-line.
func okWaived() time.Duration {
	//gflink:allow-wallclock host wall-clock is the measurand here
	t0 := time.Now()
	return time.Since(t0) //gflink:allow-wallclock host wall-clock is the measurand here
}

func okDurations() time.Duration {
	d, err := time.ParseDuration("5ms")
	if err != nil {
		return tick
	}
	return d + tick*time.Duration(3)
}
