package wallclock_test

import (
	"testing"

	"gflink/internal/analysis/analysistest"
	"gflink/internal/analysis/wallclock"
)

func TestWallclock(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), wallclock.Analyzer, "wallclock")
}
