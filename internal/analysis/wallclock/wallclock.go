// Package wallclock forbids wall-clock time sources in simulator
// packages.
//
// Every paper figure the repo reproduces is a deterministic function of
// the virtual clock (internal/vclock): the simulation advances only
// when every process blocks, so schedules are independent of host load,
// GOMAXPROCS and wall time. A single time.Now or time.Sleep smuggled
// into a simulator package reintroduces host nondeterminism that no
// test can reliably catch — runs would differ across machines while
// each individual run looks plausible. This analyzer bans the time
// package's clock-reading and timer functions outright; time.Duration
// values and duration constants (the cost-model currency) remain legal.
package wallclock

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"gflink/internal/analysis"
)

// banned lists the time-package functions that read or wait on the host
// clock. time.Duration arithmetic, ParseDuration and the Duration
// constants are deliberately not listed.
var banned = map[string]string{
	"Now":       "read the virtual clock via (*vclock.Clock).Now",
	"Sleep":     "use (*vclock.Clock).Sleep",
	"After":     "use vclock primitives (Clock.AfterFunc, Deadline)",
	"AfterFunc": "use (*vclock.Clock).AfterFunc",
	"Since":     "subtract (*vclock.Clock).Now values",
	"Until":     "subtract (*vclock.Clock).Now values",
	"NewTimer":  "use vclock.NewDeadline",
	"NewTicker": "use (*vclock.Clock).Sleep in a process loop",
	"Tick":      "use (*vclock.Clock).Sleep in a process loop",
}

// Analyzer implements the wallclock check.
var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc:  "forbid wall-clock time sources (time.Now, time.Sleep, ...) in simulator packages; all time must flow through vclock.Clock (suppress with //gflink:allow-wallclock where host time is the measurand)",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	// Collect offending idents first so reports come out in source
	// order regardless of map iteration order.
	var ids []*ast.Ident
	for id, obj := range pass.TypesInfo.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
			continue
		}
		if _, bad := banned[fn.Name()]; bad {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Pos() < ids[j].Pos() })
	// Directive indices are per-file (line numbers only make sense
	// within one file), built lazily for files that contain findings.
	idxs := map[*ast.File]map[string]map[int]bool{}
	fileFor := func(pos token.Pos) *ast.File {
		for _, f := range pass.Files {
			if f.FileStart <= pos && pos < f.FileEnd {
				return f
			}
		}
		return nil
	}
	for _, id := range ids {
		// //gflink:allow-wallclock waives a use where host time is the
		// measurand itself (the simulator-speed benchmark), never an
		// input to simulated behavior.
		if f := fileFor(id.Pos()); f != nil {
			idx, ok := idxs[f]
			if !ok {
				idx = analysis.DirectiveIndex(pass.Fset, f)
				idxs[f] = idx
			}
			if analysis.DirectiveAt(idx, pass.Fset, "allow-wallclock", id.Pos()) {
				continue
			}
		}
		fn := pass.TypesInfo.Uses[id].(*types.Func)
		pass.Reportf(id.Pos(), "time.%s is wall-clock and breaks simulation determinism; %s", fn.Name(), banned[fn.Name()])
	}
	return nil, nil
}
