package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directives are magic comments of the form //gflink:<name> that
// suppress a finding at the statement they annotate. A directive
// applies to its own line and to the line directly below it, so both
// styles work:
//
//	//gflink:allow-go -- the vclock runtime spawns its own goroutines
//	go func() { ... }()
//
//	go fn() //gflink:allow-go
type directiveIndex map[string]map[int]bool // directive name -> lines present

// DirectiveIndex scans a file's comments for //gflink: directives.
func DirectiveIndex(fset *token.FileSet, f *ast.File) map[string]map[int]bool {
	idx := make(directiveIndex)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			rest, ok := strings.CutPrefix(text, "//gflink:")
			if !ok {
				continue
			}
			name := rest
			if i := strings.IndexAny(rest, " \t"); i >= 0 {
				name = rest[:i]
			}
			if name == "" {
				continue
			}
			if idx[name] == nil {
				idx[name] = make(map[int]bool)
			}
			idx[name][fset.Position(c.Pos()).Line] = true
		}
	}
	return idx
}

// DirectiveAt reports whether the named directive annotates pos: the
// directive comment sits on the same line or the line above.
func DirectiveAt(idx map[string]map[int]bool, fset *token.FileSet, name string, pos token.Pos) bool {
	lines := idx[name]
	if lines == nil {
		return false
	}
	line := fset.Position(pos).Line
	return lines[line] || lines[line-1]
}
