package analysis

import (
	"encoding/json"
	"fmt"
	"go/types"
	"reflect"
	"sort"
)

// A Fact is a serializable observation one analyzer run exports about a
// package or one of its package-level objects, to be imported when a
// dependent package is analyzed — the mechanism that turns the suite's
// single-package analyzers into interprocedural, whole-program ones
// (mirroring golang.org/x/tools/go/analysis facts).
//
// Facts must be JSON-marshalable structs; implement the marker method
// on the pointer type:
//
//	type LockSet struct{ Locks []string }
//	func (*LockSet) AFact() {}
//
// Identity is structural, not pointer-based: facts are keyed by
// (package path, object key, fact type), where the object key is a
// stable textual path ("FuncName" or "Recv.Method" — see ObjectKey).
// That makes facts survive both JSON round trips between `go vet`
// compilation units and the loader re-type-checking a package twice
// (once as an import, once as a test-augmented target).
type Fact interface {
	AFact() // dummy marker method
}

// factKey addresses one fact in a store. obj == "" denotes a package
// fact.
type factKey struct {
	pkg string
	obj string
	typ string
}

// FactStore holds every fact exported so far in a driver run. One store
// is shared across all packages of a run so facts flow from
// dependencies to dependents; it is not safe for concurrent use (the
// driver is single-threaded by design — see the determinism notes in
// driver.go).
type FactStore struct {
	m map[factKey]json.RawMessage
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{m: make(map[factKey]json.RawMessage)}
}

func factType(f Fact) string {
	t := reflect.TypeOf(f)
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	return t.String()
}

// ObjectKey returns the stable textual path of a package-level object:
// "Name" for functions, types, and vars, "Recv.Name" for methods. Only
// package-level objects have keys; local objects return "".
func ObjectKey(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	if fn, ok := obj.(*types.Func); ok {
		sig, ok := fn.Type().(*types.Signature)
		if ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if n, ok := t.(*types.Named); ok {
				return n.Obj().Name() + "." + fn.Name()
			}
			return ""
		}
	}
	// Package-level objects live in the package scope.
	if obj.Parent() != obj.Pkg().Scope() {
		return ""
	}
	return obj.Name()
}

// put marshals and stores one fact.
func (s *FactStore) put(pkg, obj string, fact Fact) error {
	data, err := json.Marshal(fact)
	if err != nil {
		return fmt.Errorf("analysis: marshaling fact %s: %w", factType(fact), err)
	}
	s.m[factKey{pkg: pkg, obj: obj, typ: factType(fact)}] = data
	return nil
}

// get unmarshals one fact into the caller's pointer, reporting whether
// it was present.
func (s *FactStore) get(pkg, obj string, fact Fact) bool {
	data, ok := s.m[factKey{pkg: pkg, obj: obj, typ: factType(fact)}]
	if !ok {
		return false
	}
	return json.Unmarshal(data, fact) == nil
}

// factRecord is the serialized form of one fact (the vetx wire format
// used between `go vet` compilation units).
type factRecord struct {
	Pkg  string          `json:"pkg"`
	Obj  string          `json:"obj,omitempty"`
	Type string          `json:"type"`
	Data json.RawMessage `json:"data"`
}

// Encode serializes every fact in the store, sorted for byte-stable
// output. Facts of dependencies are included, so encoding after
// analyzing one unit propagates transitive facts through direct-import
// vetx files exactly as unitchecker does.
func (s *FactStore) Encode() []byte {
	recs := make([]factRecord, 0, len(s.m))
	for k, v := range s.m {
		recs = append(recs, factRecord{Pkg: k.pkg, Obj: k.obj, Type: k.typ, Data: v})
	}
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Obj != b.Obj {
			return a.Obj < b.Obj
		}
		return a.Type < b.Type
	})
	data, err := json.Marshal(recs)
	if err != nil {
		// Raw messages re-marshal without error by construction.
		panic(err)
	}
	return data
}

// Decode merges previously encoded facts into the store. Unknown input
// is rejected; duplicate keys keep the incoming value (facts are
// deterministic functions of their package, so duplicates agree).
func (s *FactStore) Decode(data []byte) error {
	var recs []factRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		return fmt.Errorf("analysis: decoding facts: %w", err)
	}
	for _, r := range recs {
		s.m[factKey{pkg: r.Pkg, obj: r.Obj, typ: r.Type}] = r.Data
	}
	return nil
}

// Len reports the number of stored facts.
func (s *FactStore) Len() int { return len(s.m) }

// ExportObjectFact associates fact with a package-level object
// (typically a function or method of the package under analysis).
// Objects without a stable key (locals) are silently skipped.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.facts == nil || obj == nil || obj.Pkg() == nil {
		return
	}
	key := ObjectKey(obj)
	if key == "" {
		return
	}
	if err := p.facts.put(obj.Pkg().Path(), key, fact); err != nil {
		panic(err)
	}
}

// ImportObjectFact copies the fact previously exported for obj (by this
// pass or the analysis of another package) into the provided pointer,
// reporting whether one was found.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if p.facts == nil || obj == nil || obj.Pkg() == nil {
		return false
	}
	key := ObjectKey(obj)
	if key == "" {
		return false
	}
	return p.facts.get(obj.Pkg().Path(), key, fact)
}

// ExportPackageFact associates fact with the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) {
	if p.facts == nil || p.Pkg == nil {
		return
	}
	if err := p.facts.put(p.Pkg.Path(), "", fact); err != nil {
		panic(err)
	}
}

// ImportPackageFact copies the fact previously exported for the package
// with the given import path, reporting whether one was found.
func (p *Pass) ImportPackageFact(path string, fact Fact) bool {
	if p.facts == nil {
		return false
	}
	return p.facts.get(path, "", fact)
}
