package outputpurity_test

import (
	"testing"

	"gflink/internal/analysis/analysistest"
	"gflink/internal/analysis/outputpurity"
)

func TestOutputpurity(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), outputpurity.Analyzer, "outputpurity")
}
