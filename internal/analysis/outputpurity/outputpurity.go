// Package outputpurity enforces DESIGN.md invariant 9: code that is
// reachable only when an opt-in transfer feature (SoA column
// projection, chunked double-buffered pipelining) is enabled must not
// write result buffers except through the sanctioned copy paths, so
// enabling a feature can change *when* bytes move but never *which*
// bytes the caller observes.
//
// A function is feature-gated when its declaration carries a
// //gflink:gated <feature> directive (the annotation the gated entry
// points in internal/core carry), or transitively when every one of
// its in-package static callers is gated — helpers reachable only from
// gated code inherit the obligation; a single ungated caller breaks
// the inheritance because the helper then also runs on the default
// path, where full copies are the norm.
//
// Inside gated functions (function literals included) two things are
// flagged:
//
//   - whole-buffer copies — the synchronous/async CUDAWrapper Memcpy
//     entry points and the builtin copy — unless the site carries
//     //gflink:real-copy;
//   - ranged copies (Memcpy*RangesAsync) whose range-list argument
//     cannot be proven to be either the empty shadow list
//     ([]gpu.CopyRange{}, a charge-only op that moves no real bytes)
//     or assigned under a chunk-boundary equality guard (k == 0 /
//     k == chunks-1), the two sanctioned ways a chunked pipeline may
//     move real bytes.
//
// The proof is flow-sensitive: each reaching definition of the range
// list must individually be a shadow assignment or equality-guarded,
// which is exactly the `ranges := shadow; if k == 0 { ranges = ... }`
// idiom execChunked uses.
package outputpurity

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"gflink/internal/analysis"
)

// Analyzer implements the outputpurity check.
var Analyzer = &analysis.Analyzer{
	Name: "outputpurity",
	Doc:  "feature-gated code must not write result buffers outside the sanctioned shadow/chunk-boundary copy paths",
	Run:  run,
}

const corePath = "gflink/internal/core"

// wholeCopy lists the CUDAWrapper entry points that move a full
// buffer in one call.
var wholeCopy = map[string]bool{
	"CUDAWrapper.MemcpyH2D":      true,
	"CUDAWrapper.MemcpyD2H":      true,
	"CUDAWrapper.MemcpyH2DAsync": true,
	"CUDAWrapper.MemcpyD2HAsync": true,
}

// rangedCopy maps the ranged entry points to the index of their
// range-list argument.
var rangedCopy = map[string]int{
	"CUDAWrapper.MemcpyH2DRangesAsync": 3,
	"CUDAWrapper.MemcpyD2HRangesAsync": 3,
}

// scope is one declared function in a non-test file.
type scope struct {
	obj  *types.Func
	fd   *ast.FuncDecl
	rd   *analysis.ReachingDefs
	idx  map[string]map[int]bool
	info *types.Info
}

func run(pass *analysis.Pass) (interface{}, error) {
	info := pass.TypesInfo
	var scopes []*scope
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		idx := analysis.DirectiveIndex(pass.Fset, f)
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			cfg := analysis.BuildCFG(info, fd.Body)
			scopes = append(scopes, &scope{
				obj:  obj,
				fd:   fd,
				rd:   analysis.NewReachingDefs(info, cfg, fd.Recv, fd.Type),
				idx:  idx,
				info: info,
			})
		}
	}

	// Callers of each in-package function, from non-test files only
	// (so a test exercising a helper directly cannot flip its
	// gatedness between runs that do and don't load tests).
	callers := make(map[*types.Func]map[*types.Func]bool)
	declared := make(map[*types.Func]bool, len(scopes))
	for _, sc := range scopes {
		declared[sc.obj] = true
	}
	for _, sc := range scopes {
		ast.Inspect(sc.fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := analysis.StaticCallee(info, call)
			if callee == nil || !declared[callee] {
				return true
			}
			if callers[callee] == nil {
				callers[callee] = make(map[*types.Func]bool)
			}
			callers[callee][sc.obj] = true
			return true
		})
	}

	// Gatedness: directive-seeded, then propagated to every function
	// all of whose callers are gated (least fixpoint — monotone, since
	// growing the gated set can only satisfy more "all callers" tests).
	gated := make(map[*types.Func]bool)
	for _, sc := range scopes {
		if analysis.DirectiveAt(sc.idx, pass.Fset, "gated", sc.fd.Pos()) {
			gated[sc.obj] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, sc := range scopes {
			if gated[sc.obj] || len(callers[sc.obj]) == 0 {
				continue
			}
			all := true
			for c := range callers[sc.obj] {
				if !gated[c] {
					all = false
					break
				}
			}
			if all {
				gated[sc.obj] = true
				changed = true
			}
		}
	}

	for _, sc := range scopes {
		if gated[sc.obj] {
			checkGated(pass, sc)
		}
	}
	return nil, nil
}

// checkGated walks one gated function (nested literals included) and
// flags unsanctioned buffer writes.
func checkGated(pass *analysis.Pass, sc *scope) {
	ast.Inspect(sc.fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if analysis.DirectiveAt(sc.idx, pass.Fset, "real-copy", call.Pos()) {
			return true
		}
		if isBuiltinCopy(sc.info, call) {
			pass.Reportf(call.Pos(), "whole-buffer copy inside feature-gated code; gated paths must not write result buffers outside the sanctioned ranged-copy paths (invariant 9; //gflink:real-copy if the full copy is the sanctioned one)")
			return true
		}
		fn := analysis.StaticCallee(sc.info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != corePath {
			return true
		}
		key := analysis.ObjectKey(fn)
		if wholeCopy[key] {
			pass.Reportf(call.Pos(), "whole-buffer copy inside feature-gated code; gated paths must not write result buffers outside the sanctioned ranged-copy paths (invariant 9; //gflink:real-copy if the full copy is the sanctioned one)")
			return true
		}
		if i, ok := rangedCopy[key]; ok && i < len(call.Args) {
			if !sc.rangesSanctioned(call.Args[i]) {
				pass.Reportf(call.Args[i].Pos(), "range list of a gated ranged copy is neither the empty shadow list nor assigned under a chunk-boundary equality guard; gated code must not perform unguarded full copies (invariant 9)")
			}
		}
		return true
	})
}

// rangesSanctioned proves a range-list argument moves real bytes only
// at chunk boundaries: every reaching definition is either a shadow
// (empty) list or sits under an equality guard.
func (sc *scope) rangesSanctioned(e ast.Expr) bool {
	e = ast.Unparen(e)
	if isEmptyComposite(e) {
		return true
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	defs := sc.rd.DefsAt(id)
	if len(defs) == 0 {
		return false // untracked, or used inside a nested literal
	}
	for _, d := range defs {
		if sc.defSanctioned(d, nil) {
			continue
		}
		return false
	}
	return true
}

func (sc *scope) defSanctioned(d *analysis.Def, visited map[*analysis.Def]bool) bool {
	if g, ok := d.Guard().(*ast.BinaryExpr); ok && g.Op == token.EQL {
		return true // chunk-boundary guard: k == 0 / k == chunks-1
	}
	if d.Kind != analysis.DefAssign || d.Multi || d.RHS == nil {
		return false
	}
	return sc.shadowExpr(d.RHS, visited)
}

// shadowExpr reports whether an expression is provably the empty
// shadow range list, directly or through tracked assignments.
func (sc *scope) shadowExpr(e ast.Expr, visited map[*analysis.Def]bool) bool {
	e = ast.Unparen(e)
	if isEmptyComposite(e) {
		return true
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	defs := sc.rd.DefsAt(id)
	if len(defs) == 0 {
		return false
	}
	for _, d := range defs {
		if visited[d] {
			return false
		}
		if visited == nil {
			visited = make(map[*analysis.Def]bool)
		}
		visited[d] = true
		ok := d.Kind == analysis.DefAssign && !d.Multi && d.RHS != nil && sc.shadowExpr(d.RHS, visited)
		delete(visited, d)
		if !ok {
			return false
		}
	}
	return true
}

func isEmptyComposite(e ast.Expr) bool {
	cl, ok := e.(*ast.CompositeLit)
	return ok && len(cl.Elts) == 0
}

// isBuiltinCopy recognizes the builtin copy, which StaticCallee cannot
// resolve (builtins have no *types.Func).
func isBuiltinCopy(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "copy" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}
