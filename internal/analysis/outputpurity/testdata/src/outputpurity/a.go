// Fixture for the outputpurity analyzer: feature-gated code must not
// write result buffers outside the sanctioned shadow/chunk-boundary
// copy paths.
package outputpurity

import (
	"gflink/internal/core"
	"gflink/internal/gpu"
	"gflink/internal/membuf"
)

// chunkedOK mirrors execChunked's sanctioned idiom: shadow lists
// everywhere, real bytes only under chunk-boundary equality guards.
//
//gflink:gated chunking
func chunkedOK(w *core.CUDAWrapper, s *gpu.Stream, dst *gpu.Buffer, out *membuf.HBuffer, src *gpu.Buffer, in *membuf.HBuffer, chunks int) {
	shadow := []gpu.CopyRange{}
	for k := 0; k < chunks; k++ {
		ranges := shadow
		if k == 0 {
			ranges = nil
		}
		w.MemcpyH2DRangesAsync(s, dst, in, ranges, 10)
		dranges := shadow
		if k == chunks-1 {
			dranges = nil
		}
		w.MemcpyD2HRangesAsync(s, out, src, dranges, 10)
	}
}

//gflink:gated chunking
func wholeInGated(w *core.CUDAWrapper, d *gpu.Device, dst *gpu.Buffer, src *membuf.HBuffer) {
	w.MemcpyH2D(d, dst, src, 10) // want `whole-buffer copy inside feature-gated code`
}

//gflink:gated projection
func hostCopyInGated(dst, src *membuf.HBuffer) {
	copy(dst.Bytes(), src.Bytes()) // want `whole-buffer copy inside feature-gated code`
}

//gflink:gated chunking
func sanctionedFull(dst, src *membuf.HBuffer) {
	//gflink:real-copy -- staging rebuild is the sanctioned full copy here
	copy(dst.Bytes(), src.Bytes())
}

//gflink:gated chunking
func unguardedFull(w *core.CUDAWrapper, s *gpu.Stream, dst *gpu.Buffer, in *membuf.HBuffer) {
	w.MemcpyH2DRangesAsync(s, dst, in,
		nil, // want `neither the empty shadow list nor assigned under a chunk-boundary equality guard`
		10)
}

//gflink:gated chunking
func wrongGuard(w *core.CUDAWrapper, s *gpu.Stream, dst *gpu.Buffer, in *membuf.HBuffer, k int) {
	shadow := []gpu.CopyRange{}
	ranges := shadow
	if k > 0 { // an inequality is not a chunk-boundary guard
		ranges = nil
	}
	w.MemcpyH2DRangesAsync(s, dst, in,
		ranges, // want `neither the empty shadow list nor assigned under a chunk-boundary equality guard`
		10)
}

//gflink:gated chunking
func literalShadowOK(w *core.CUDAWrapper, s *gpu.Stream, dst *gpu.Buffer, in *membuf.HBuffer) {
	w.MemcpyH2DRangesAsync(s, dst, in, []gpu.CopyRange{}, 10)
}

//gflink:gated chunking
func insideClosure(w *core.CUDAWrapper, d *gpu.Device, dst *gpu.Buffer, src *membuf.HBuffer) func() {
	// Function literals inherit the enclosing function's gatedness.
	return func() {
		w.MemcpyH2D(d, dst, src, 10) // want `whole-buffer copy inside feature-gated code`
	}
}

// inheritsGate is reachable only from gated code, so it inherits the
// obligation through the caller fixpoint.
func inheritsGate(w *core.CUDAWrapper, d *gpu.Device, dst *membuf.HBuffer, src *gpu.Buffer) {
	w.MemcpyD2H(d, dst, src, 10) // want `whole-buffer copy inside feature-gated code`
}

//gflink:gated projection
func gatedCallerA(w *core.CUDAWrapper, d *gpu.Device, dst *membuf.HBuffer, src *gpu.Buffer) {
	inheritsGate(w, d, dst, src)
}

//gflink:gated chunking
func gatedCallerB(w *core.CUDAWrapper, d *gpu.Device, dst *membuf.HBuffer, src *gpu.Buffer) {
	inheritsGate(w, d, dst, src)
}

// sharedHelper also runs on the default path (one ungated caller), so
// it carries no obligation.
func sharedHelper(w *core.CUDAWrapper, d *gpu.Device, dst *gpu.Buffer, src *membuf.HBuffer) {
	w.MemcpyH2D(d, dst, src, 10)
}

//gflink:gated chunking
func gatedMixedCaller(w *core.CUDAWrapper, d *gpu.Device, dst *gpu.Buffer, src *membuf.HBuffer) {
	sharedHelper(w, d, dst, src)
}

func ungatedMixedCaller(w *core.CUDAWrapper, d *gpu.Device, dst *gpu.Buffer, src *membuf.HBuffer) {
	sharedHelper(w, d, dst, src)
	w.MemcpyD2H(d, nil, nil, 10) // ungated code copies freely
}
