// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against // want comment expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest for this module's
// self-contained analysis framework.
//
// Fixture layout follows the x/tools convention: testdata/src/<pkg>
// holds one package, loaded with import path <pkg>. Fixture packages
// may import each other (resolved against testdata/src first), any
// package of this module (so fixtures can exercise the real
// internal/vclock and internal/membuf types), and the standard library.
//
// Expectations are trailing comments of the form
//
//	q.Get() // want `may block the virtual clock`
//	time.Now() // want "wall-clock" "second pattern on the same line"
//
// Each quoted string is a regular expression that must match the
// message of one diagnostic reported on that line; diagnostics with no
// matching expectation, and expectations with no matching diagnostic,
// fail the test.
package analysistest

import (
	"go/ast"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"gflink/internal/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// Run loads each fixture package from testdata/src and applies the
// analyzer, reporting expectation mismatches through t.
//
// All packages of one call share a fact store, analyzed in the order
// given: list dependency fixtures before the packages that import
// them, and facts flow between them exactly as in a driver run.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	l, err := analysis.NewLoader(testdata)
	if err != nil {
		t.Fatal(err)
	}
	l.ExtraSrcDirs = []string{filepath.Join(testdata, "src")}
	store := analysis.NewFactStore()
	for _, pkgPath := range pkgs {
		dir := filepath.Join(testdata, "src", filepath.FromSlash(pkgPath))
		pkg, err := l.Load(dir, pkgPath, false)
		if err != nil {
			t.Errorf("loading fixture %s: %v", pkgPath, err)
			continue
		}
		findings, err := analysis.RunAnalyzers(pkg, []analysis.Rule{{Analyzer: a}}, store)
		if err != nil {
			t.Errorf("running %s on %s: %v", a.Name, pkgPath, err)
			continue
		}
		checkExpectations(t, pkg, findings)
	}
}

// expectation is one // want pattern awaiting a diagnostic.
type expectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

func checkExpectations(t *testing.T, pkg *analysis.Package, findings []analysis.Finding) {
	t.Helper()
	var expects []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				expects = append(expects, parseWant(t, pkg, c)...)
			}
		}
	}
	for _, fd := range findings {
		matched := false
		for _, e := range expects {
			if e.matched || e.file != fd.Pos.Filename || e.line != fd.Pos.Line {
				continue
			}
			if e.rx.MatchString(fd.Message) {
				e.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", fd.Pos, fd.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: no diagnostic matched `%s`", e.file, e.line, e.raw)
		}
	}
}

// parseWant extracts the expectations of one comment.
func parseWant(t *testing.T, pkg *analysis.Package, c *ast.Comment) []*expectation {
	t.Helper()
	rest, ok := strings.CutPrefix(strings.TrimLeft(strings.TrimPrefix(c.Text, "//"), " \t"), "want ")
	if !ok {
		return nil
	}
	pos := pkg.Fset.Position(c.Pos())
	var out []*expectation
	for _, m := range wantRE.FindAllStringSubmatch(rest, -1) {
		raw := m[2]
		if m[1] != "" || raw == "" {
			unq, err := strconv.Unquote(`"` + m[1] + `"`)
			if err != nil {
				t.Errorf("%s: bad want pattern %q: %v", pos, m[1], err)
				continue
			}
			raw = unq
		}
		rx, err := regexp.Compile(raw)
		if err != nil {
			t.Errorf("%s: bad want regexp %q: %v", pos, raw, err)
			continue
		}
		out = append(out, &expectation{file: pos.Filename, line: pos.Line, rx: rx, raw: raw})
	}
	if len(out) == 0 {
		t.Errorf("%s: // want comment with no patterns", pos)
	}
	return out
}
