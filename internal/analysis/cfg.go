package analysis

// This file is the flow-sensitive layer of the analysis framework:
// per-function control-flow graphs built over the AST loader, a generic
// forward/backward worklist solver, and a reaching-definitions lattice
// with per-use def resolution. The AST-walking analyzers (wallclock,
// lockhold, ...) check properties of individual expressions; the CFG
// analyzers (spanpair, clockflow, counterkey, outputpurity) check
// properties of *paths* — "ended on every way out of the function",
// "derived from a vclock reading on every definition that reaches this
// argument" — which no single-pass walk can express.
//
// The design mirrors golang.org/x/tools/go/cfg where the contracts
// overlap: blocks hold statement-level nodes in execution order, and
// control statements are represented by their scrutinee (an if's Cond,
// a switch's Tag) rather than the whole statement, except for
// *ast.RangeStmt, which appears in its header block as itself — clients
// walking block nodes must not descend into a RangeStmt's Body, which
// is represented by successor blocks.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// A Block is one straight-line sequence of nodes: execution enters at
// the top, runs every node in order, and leaves along one of Succs.
type Block struct {
	// Index is the block's position in CFG.Blocks (dense, stable).
	Index int
	// Kind labels the block's origin ("entry", "if.then", "for.body",
	// ...) for debugging and tests.
	Kind string
	// Nodes are the statements and scrutinee expressions executed in
	// this block, in order.
	Nodes []ast.Node
	// Succs and Preds are the control-flow edges.
	Succs, Preds []*Block
	// Guard is the innermost branch condition this block is directly
	// control-dependent on: an if's Cond for its then/else blocks, nil
	// elsewhere. outputpurity uses it to recognize boundary-chunk
	// guards; it is not a full control-dependence relation.
	Guard ast.Expr
}

// A CFG is the control-flow graph of one function body. Entry has no
// Nodes; a function's parameters are modeled by the analyses' boundary
// values, not by entry-block statements. Exit collects every return
// (and the fall-off-the-end path); Panic collects every explicit
// panic(...) statement, giving backward analyses a distinct abnormal
// exit on which deferred cleanup still runs.
type CFG struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block
	Panic  *Block
	// Defers lists every defer statement in source order. Deferred
	// calls execute on both Exit and Panic paths; analyzers that model
	// cleanup (spanpair) consult this list rather than edges.
	Defers []*ast.DeferStmt
}

// BuildCFG constructs the CFG of one function body. info (optional) is
// used to distinguish the panic builtin from a shadowing declaration;
// with a nil info any call spelled panic(...) is treated as the
// builtin.
func BuildCFG(info *types.Info, body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{info: info, cfg: &CFG{}}
	b.cfg.Entry = b.newBlock("entry", nil)
	b.cfg.Exit = b.newBlock("exit", nil)
	b.cfg.Panic = b.newBlock("panic", nil)
	first := b.newBlock("body", nil)
	b.edge(b.cfg.Entry, first)
	b.cur = first
	b.stmtList(body.List)
	// Falling off the end of the body is an implicit return.
	if b.cur != nil {
		b.edge(b.cur, b.cfg.Exit)
	}
	return b.cfg
}

// FuncCFG builds the CFG of a declared function, or returns nil for
// bodyless declarations.
func FuncCFG(info *types.Info, fd *ast.FuncDecl) *CFG {
	if fd.Body == nil {
		return nil
	}
	return BuildCFG(info, fd.Body)
}

// loopTarget records where break/continue jump for one enclosing
// breakable construct.
type loopTarget struct {
	label     string
	brk, cont *Block // cont is nil for switch/select
}

type cfgBuilder struct {
	info  *types.Info
	cfg   *CFG
	cur   *Block // nil after a terminator (return/panic/branch)
	loops []loopTarget
	// labels maps a label name to its block; gotos seen before their
	// label park in pendingGotos until the label is declared.
	labels       map[string]*Block
	pendingGotos map[string][]*Block
	// pendingLabel is the label naming the next loop/switch statement.
	pendingLabel string
}

func (b *cfgBuilder) newBlock(kind string, guard ast.Expr) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Kind: kind, Guard: guard}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// add appends a node to the current block, reviving an unreachable
// block after a terminator so dead code is still analyzed (harmlessly:
// it has no predecessors, so dataflow assigns it the bottom value).
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable", nil)
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// seal ends the current block after a terminator.
func (b *cfgBuilder) seal() { b.cur = nil }

// jumpTo adds an edge from the current block (if live) and seals it.
func (b *cfgBuilder) jumpTo(to *Block) {
	if b.cur != nil {
		b.edge(b.cur, to)
	}
	b.seal()
}

// takeLabel consumes the pending label for the construct being built.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// isPanicCall reports whether e is a call to the panic builtin.
func (b *cfgBuilder) isPanicCall(e ast.Expr) (*ast.CallExpr, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "panic" {
		return nil, false
	}
	if b.info != nil {
		if _, builtin := b.info.Uses[id].(*types.Builtin); !builtin {
			return nil, false
		}
	}
	return call, true
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		head := b.cur
		join := b.newBlock("if.join", nil)
		then := b.newBlock("if.then", s.Cond)
		b.edge(head, then)
		b.cur = then
		b.stmt(s.Body)
		b.jumpTo(join)
		if s.Else != nil {
			els := b.newBlock("if.else", s.Cond)
			b.edge(head, els)
			b.cur = els
			b.stmt(s.Else)
			b.jumpTo(join)
		} else {
			b.edge(head, join)
		}
		b.cur = join

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock("for.head", nil)
		b.jumpTo(head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		body := b.newBlock("for.body", s.Cond)
		exit := b.newBlock("for.exit", nil)
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, exit)
		}
		cont := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock("for.post", nil)
			cont = post
		}
		b.loops = append(b.loops, loopTarget{label: label, brk: exit, cont: cont})
		b.cur = body
		b.stmt(s.Body)
		b.loops = b.loops[:len(b.loops)-1]
		if post != nil {
			b.jumpTo(post)
			b.cur = post
			b.stmt(s.Post)
			b.jumpTo(head)
		} else {
			b.jumpTo(head)
		}
		b.cur = exit

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock("range.head", nil)
		b.jumpTo(head)
		head.Nodes = append(head.Nodes, s) // clients: do not descend into s.Body
		body := b.newBlock("range.body", nil)
		exit := b.newBlock("range.exit", nil)
		b.edge(head, body)
		b.edge(head, exit)
		b.loops = append(b.loops, loopTarget{label: label, brk: exit, cont: head})
		b.cur = body
		b.stmt(s.Body)
		b.loops = b.loops[:len(b.loops)-1]
		b.jumpTo(head)
		b.cur = exit

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.buildSwitch(label, s.Body.List, func(c *ast.CaseClause, blk *Block) {
			for _, e := range c.List {
				blk.Nodes = append(blk.Nodes, e)
			}
		})

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.buildSwitch(label, s.Body.List, nil)

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.cur
		if head == nil {
			head = b.newBlock("unreachable", nil)
			b.cur = head
		}
		join := b.newBlock("select.join", nil)
		b.loops = append(b.loops, loopTarget{label: label, brk: join})
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock("select.case", nil)
			b.edge(head, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.jumpTo(join)
		}
		b.loops = b.loops[:len(b.loops)-1]
		if len(s.Body.List) == 0 {
			// select{} blocks forever: join is unreachable.
			b.seal()
		}
		b.cur = join

	case *ast.LabeledStmt:
		lb := b.newBlock("label."+s.Label.Name, nil)
		b.jumpTo(lb)
		b.cur = lb
		if b.labels == nil {
			b.labels = make(map[string]*Block)
		}
		b.labels[s.Label.Name] = lb
		for _, from := range b.pendingGotos[s.Label.Name] {
			b.edge(from, lb)
		}
		delete(b.pendingGotos, s.Label.Name)
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK, token.CONTINUE:
			want := ""
			if s.Label != nil {
				want = s.Label.Name
			}
			for i := len(b.loops) - 1; i >= 0; i-- {
				t := b.loops[i]
				if s.Tok == token.CONTINUE && t.cont == nil {
					continue // switch/select: continue targets the loop outside
				}
				if want != "" && t.label != want {
					continue
				}
				if s.Tok == token.BREAK {
					b.jumpTo(t.brk)
				} else {
					b.jumpTo(t.cont)
				}
				return
			}
			b.seal() // malformed branch; drop the edge rather than crash
		case token.GOTO:
			if s.Label == nil {
				b.seal()
				return
			}
			if to, ok := b.labels[s.Label.Name]; ok {
				b.jumpTo(to)
				return
			}
			if b.cur != nil {
				if b.pendingGotos == nil {
					b.pendingGotos = make(map[string][]*Block)
				}
				b.pendingGotos[s.Label.Name] = append(b.pendingGotos[s.Label.Name], b.cur)
			}
			b.seal()
		case token.FALLTHROUGH:
			// Handled structurally by buildSwitch; reaching one here
			// (malformed code) just ends the block.
			b.seal()
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.jumpTo(b.cfg.Exit)

	case *ast.ExprStmt:
		if call, ok := b.isPanicCall(s.X); ok {
			b.add(call)
			b.jumpTo(b.cfg.Panic)
			return
		}
		b.add(s)

	case *ast.DeferStmt:
		// The defer's arguments are evaluated here; the call itself
		// runs at function exit, which analyses model via cfg.Defers.
		b.add(s)
		b.cfg.Defers = append(b.cfg.Defers, s)

	default:
		// Assignments, declarations, inc/dec, go, send, empty: straight
		// line.
		b.add(s)
	}
}

// buildSwitch lowers (type-)switch clauses: every clause is entered
// from the head (guards are not exclusive for the analysis — a may
// over-approximation), falls through to the join, and a fallthrough
// statement chains to the next clause's block. addScrutinee, when
// non-nil, records each clause's case expressions in its block.
func (b *cfgBuilder) buildSwitch(label string, clauses []ast.Stmt, addScrutinee func(*ast.CaseClause, *Block)) {
	head := b.cur
	if head == nil {
		head = b.newBlock("unreachable", nil)
		b.cur = head
	}
	join := b.newBlock("switch.join", nil)
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		blocks[i] = b.newBlock("switch.case", nil)
		b.edge(head, blocks[i])
		if cc, ok := c.(*ast.CaseClause); ok {
			if cc.List == nil {
				hasDefault = true
			}
			if addScrutinee != nil {
				addScrutinee(cc, blocks[i])
			}
		}
	}
	if !hasDefault {
		b.edge(head, join)
	}
	b.loops = append(b.loops, loopTarget{label: label, brk: join})
	for i, c := range clauses {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		b.cur = blocks[i]
		body := cc.Body
		fallsThrough := false
		if n := len(body); n > 0 {
			if br, ok := body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				body = body[:n-1]
				fallsThrough = i+1 < len(clauses)
			}
		}
		b.stmtList(body)
		if fallsThrough {
			b.jumpTo(blocks[i+1])
		} else {
			b.jumpTo(join)
		}
	}
	b.loops = b.loops[:len(b.loops)-1]
	b.cur = join
}

// Direction selects how a dataflow problem traverses the CFG.
type Direction int

const (
	// Forward propagates facts along control flow (reaching
	// definitions, taint).
	Forward Direction = iota
	// Backward propagates against it (liveness, "an End is reachable
	// on every path").
	Backward
)

// FlowProblem describes one monotone dataflow problem over a CFG for
// Solve. F is the lattice element type; Meet, Transfer and Equal must
// treat their arguments as immutable and return fresh values.
type FlowProblem[F any] struct {
	Dir Direction
	// Boundary is the value at the flow entry: the entry block for
	// Forward problems, the exit and panic blocks for Backward ones.
	Boundary F
	// Init yields the optimistic initial value for every other block.
	Init func() F
	// Meet combines the values arriving along multiple edges.
	Meet func(a, b F) F
	// Transfer pushes a value through one block's nodes.
	Transfer func(b *Block, in F) F
	// Equal detects convergence.
	Equal func(a, b F) bool
}

// Solve runs the iterative worklist algorithm to fixpoint and returns
// the value at each block's flow entry and exit ("entry"/"exit" in the
// problem's direction: for Backward problems In is the value after the
// block's last node and Out the value before its first).
func Solve[F any](cfg *CFG, p FlowProblem[F]) (in, out map[*Block]F) {
	in = make(map[*Block]F, len(cfg.Blocks))
	out = make(map[*Block]F, len(cfg.Blocks))
	boundary := func(blk *Block) bool {
		if p.Dir == Forward {
			return blk == cfg.Entry
		}
		return blk == cfg.Exit || blk == cfg.Panic
	}
	preds := func(blk *Block) []*Block {
		if p.Dir == Forward {
			return blk.Preds
		}
		return blk.Succs
	}
	for _, blk := range cfg.Blocks {
		if boundary(blk) {
			in[blk] = p.Boundary
		} else {
			in[blk] = p.Init()
		}
		out[blk] = p.Transfer(blk, in[blk])
	}
	work := make([]*Block, len(cfg.Blocks))
	copy(work, cfg.Blocks)
	queued := make([]bool, len(cfg.Blocks))
	for i := range queued {
		queued[i] = true
	}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk.Index] = false
		if !boundary(blk) {
			v := p.Init()
			for _, pr := range preds(blk) {
				v = p.Meet(v, out[pr])
			}
			in[blk] = v
		}
		nv := p.Transfer(blk, in[blk])
		if p.Equal(nv, out[blk]) {
			continue
		}
		out[blk] = nv
		next := blk.Succs
		if p.Dir == Backward {
			next = blk.Preds
		}
		for _, s := range next {
			if !queued[s.Index] {
				queued[s.Index] = true
				work = append(work, s)
			}
		}
	}
	return in, out
}

// DefKind classifies how a Def gives its variable a value.
type DefKind int

const (
	// DefParam: function parameter, receiver, or named result.
	DefParam DefKind = iota
	// DefAssign: x = e, x := e, or var x = e.
	DefAssign
	// DefZero: var x T with no initializer (zero value).
	DefZero
	// DefRange: a range statement's key or value variable.
	DefRange
	// DefModify: x op= e, x++, x-- — the previous value flows in.
	DefModify
)

// A Def is one definition site of a local variable.
type Def struct {
	Var  *types.Var
	Kind DefKind
	// Node is the defining statement or, for DefParam, the declaring
	// field; nil for unlisted receivers.
	Node ast.Node
	// RHS is the defining expression for DefAssign/DefModify. When the
	// assignment unpacks multiple values (x, y := f()), RHS is the
	// whole multi-valued expression and Multi is true.
	RHS   ast.Expr
	Multi bool
	// Block is the block the definition executes in (nil for params).
	Block *Block
	// index is the def's dense id in its ReachingDefs universe.
	index int
	// guard caches Block.Guard at the definition point.
	guard ast.Expr
}

// Guard returns the innermost branch condition the definition is
// directly control-dependent on, or nil.
func (d *Def) Guard() ast.Expr { return d.guard }

// ReachingDefs is the classic forward may-analysis: for every use of a
// local variable, which definitions can supply its value. Variables
// whose value escapes simple tracking — address-taken, or assigned
// inside a nested function literal — are reported via Tracked as
// untrackable, and uses inside nested function literals are not
// resolved (they execute at an unknown time).
type ReachingDefs struct {
	cfg  *CFG
	info *types.Info

	defs      []*Def
	byVar     map[*types.Var][]*Def
	untracked map[*types.Var]bool
	useDefs   map[*ast.Ident][]*Def
}

// NewReachingDefs computes reaching definitions for one function. recv
// and params declare the boundary definitions (either may be nil);
// body vars are discovered from the CFG's nodes.
func NewReachingDefs(info *types.Info, cfg *CFG, recv *ast.FieldList, fnType *ast.FuncType) *ReachingDefs {
	r := &ReachingDefs{
		cfg:       cfg,
		info:      info,
		byVar:     make(map[*types.Var][]*Def),
		untracked: make(map[*types.Var]bool),
		useDefs:   make(map[*ast.Ident][]*Def),
	}
	var params []*Def
	addParams := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					params = append(params, r.newDef(v, DefParam, f, nil, false, nil))
				}
			}
		}
	}
	addParams(recv)
	if fnType != nil {
		addParams(fnType.Params)
		addParams(fnType.Results) // named results are zero-valued params
	}

	// First pass: mark untrackable variables (address-taken anywhere,
	// or assigned inside a function literal) and collect the defs of
	// each block in order.
	for _, blk := range cfg.Blocks {
		for _, n := range blk.Nodes {
			r.scanUntracked(n, false)
		}
	}
	for _, blk := range cfg.Blocks {
		for _, n := range blk.Nodes {
			b := blk
			r.walkNode(n, nil, func(d *Def) { d.Block = b; d.guard = b.Guard })
		}
	}

	// Dataflow over def bitsets: a def of v kills every other def of v.
	entry := newBitset(len(r.defs))
	for _, d := range params {
		entry.set(d.index)
	}
	inSets, _ := Solve(cfg, FlowProblem[bitset]{
		Dir:      Forward,
		Boundary: entry,
		Init:     func() bitset { return newBitset(len(r.defs)) },
		Meet: func(a, b bitset) bitset {
			m := a.clone()
			m.union(b)
			return m
		},
		Transfer: func(blk *Block, in bitset) bitset {
			cur := in.clone()
			for _, n := range blk.Nodes {
				r.walkNode(n, nil, func(d *Def) { r.apply(cur, d) })
			}
			return cur
		},
		Equal: func(a, b bitset) bool { return a.equal(b) },
	})

	// Resolution pass: replay each block from its fixpoint entry value,
	// resolving every use against the current def set.
	for _, blk := range cfg.Blocks {
		cur := inSets[blk].clone()
		for _, n := range blk.Nodes {
			r.walkNode(n,
				func(id *ast.Ident) {
					v := r.useVar(id)
					if v == nil || r.untracked[v] {
						return
					}
					var ds []*Def
					for _, d := range r.byVar[v] {
						if cur.has(d.index) {
							ds = append(ds, d)
						}
					}
					r.useDefs[id] = ds
				},
				func(d *Def) { r.apply(cur, d) })
		}
	}
	return r
}

// DefsAt returns the definitions that may reach a use of a local
// variable, or nil when the identifier is not a tracked local use.
func (r *ReachingDefs) DefsAt(id *ast.Ident) []*Def { return r.useDefs[id] }

// Tracked reports whether v's definitions are fully visible to the
// analysis: declared in this function, never address-taken, never
// assigned from a nested function literal.
func (r *ReachingDefs) Tracked(v *types.Var) bool {
	return v != nil && !r.untracked[v] && len(r.byVar[v]) > 0
}

// Defs returns every definition of v in this function, in discovery
// order (params first, then source order).
func (r *ReachingDefs) Defs(v *types.Var) []*Def { return r.byVar[v] }

func (r *ReachingDefs) newDef(v *types.Var, kind DefKind, node ast.Node, rhs ast.Expr, multi bool, blk *Block) *Def {
	d := &Def{Var: v, Kind: kind, Node: node, RHS: rhs, Multi: multi, Block: blk, index: len(r.defs)}
	r.defs = append(r.defs, d)
	r.byVar[v] = append(r.byVar[v], d)
	return d
}

// apply updates a def bitset with one definition executing.
func (r *ReachingDefs) apply(cur bitset, d *Def) {
	for _, o := range r.byVar[d.Var] {
		cur.clear(o.index)
	}
	cur.set(d.index)
}

// defVar resolves an identifier on the left of a definition to its
// variable object (Defs for :=, Uses for =).
func (r *ReachingDefs) defVar(id *ast.Ident) *types.Var {
	if id.Name == "_" {
		return nil
	}
	if v, ok := r.info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := r.info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// useVar resolves an identifier in value position to a variable.
func (r *ReachingDefs) useVar(id *ast.Ident) *types.Var {
	v, _ := r.info.Uses[id].(*types.Var)
	return v
}

// scanUntracked marks variables the analysis must give up on. inLit is
// true once the walk has entered a nested function literal: any
// assignment target there is untracked (it can run at any time).
func (r *ReachingDefs) scanUntracked(n ast.Node, inLit bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if !inLit {
				r.scanUntracked(n.Body, true)
				return false
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
					if v := r.defVar(id); v != nil {
						r.untracked[v] = true
					}
				}
			}
		case *ast.AssignStmt:
			if inLit {
				for _, l := range n.Lhs {
					if id, ok := ast.Unparen(l).(*ast.Ident); ok {
						if v := r.defVar(id); v != nil {
							r.untracked[v] = true
						}
					}
				}
			}
		case *ast.IncDecStmt:
			if inLit {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
					if v := r.defVar(id); v != nil {
						r.untracked[v] = true
					}
				}
			}
		case *ast.RangeStmt:
			// A block-level RangeStmt node: only its header belongs
			// here. Its body is other blocks; do not double-visit.
			if !inLit {
				if n.X != nil {
					r.scanUntracked(n.X, false)
				}
				return false
			}
		}
		return true
	})
}

// walkNode visits one block node in evaluation order, reporting
// variable uses (before the defs of the same node) and definitions.
// Uses inside nested function literals are not reported. Either
// callback may be nil.
func (r *ReachingDefs) walkNode(n ast.Node, use func(*ast.Ident), def func(*Def)) {
	if use == nil {
		use = func(*ast.Ident) {}
	}
	if def == nil {
		def = func(*Def) {}
	}
	uses := func(e ast.Node) {
		if e == nil {
			return
		}
		ast.Inspect(e, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.Ident:
				if r.useVar(n) != nil {
					use(n)
				}
			}
			return true
		})
	}
	mkDef := func(id *ast.Ident, kind DefKind, node ast.Node, rhs ast.Expr, multi bool) {
		v := r.defVar(id)
		if v == nil {
			return
		}
		// Reuse the Def discovered in the collection pass: defs are
		// identified by (var, node), and walkNode visits nodes in the
		// same order every pass.
		for _, d := range r.byVar[v] {
			if d.Node == node && d.Kind == kind {
				def(d)
				return
			}
		}
		def(r.newDef(v, kind, node, rhs, multi, nil))
	}

	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, e := range n.Rhs {
			uses(e)
		}
		if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
			multi := len(n.Lhs) > 1 && len(n.Rhs) == 1
			for i, l := range n.Lhs {
				l = ast.Unparen(l)
				if id, ok := l.(*ast.Ident); ok {
					rhs := ast.Expr(nil)
					if multi {
						rhs = n.Rhs[0]
					} else if i < len(n.Rhs) {
						rhs = n.Rhs[i]
					}
					mkDef(id, DefAssign, n, rhs, multi)
				} else {
					uses(l) // a[i] = ..., x.f = ...: index/base are read
				}
			}
		} else {
			// Op-assign: the target is read, then modified.
			for _, l := range n.Lhs {
				if id, ok := ast.Unparen(l).(*ast.Ident); ok {
					use(id)
					mkDef(id, DefModify, n, n.Rhs[0], false)
				} else {
					uses(l)
				}
			}
		}

	case *ast.IncDecStmt:
		if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
			use(id)
			mkDef(id, DefModify, n, nil, false)
		} else {
			uses(n.X)
		}

	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, e := range vs.Values {
				uses(e)
			}
			multi := len(vs.Names) > 1 && len(vs.Values) == 1
			for i, name := range vs.Names {
				switch {
				case len(vs.Values) == 0:
					mkDef(name, DefZero, vs, nil, false)
				case multi:
					mkDef(name, DefAssign, vs, vs.Values[0], true)
				case i < len(vs.Values):
					mkDef(name, DefAssign, vs, vs.Values[i], false)
				}
			}
		}

	case *ast.RangeStmt:
		uses(n.X)
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if e == nil {
				continue
			}
			if id, ok := ast.Unparen(e).(*ast.Ident); ok {
				mkDef(id, DefRange, n, nil, false)
			} else {
				uses(e)
			}
		}

	default:
		uses(n)
	}
}

// bitset is a dense bit vector sized at construction.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (i % 64) }
func (b bitset) clear(i int)    { b[i/64] &^= 1 << (i % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}

func (b bitset) union(o bitset) {
	for i := range o {
		if i < len(b) {
			b[i] |= o[i]
		}
	}
}

func (b bitset) equal(o bitset) bool {
	if len(b) != len(o) {
		return false
	}
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}
