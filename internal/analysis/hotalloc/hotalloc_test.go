package hotalloc_test

import (
	"testing"

	"gflink/internal/analysis/analysistest"
	"gflink/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), hotalloc.Analyzer, "hotalloc/dep", "hotalloc")
}
