// Package hotalloc enforces allocation-free hot paths (DESIGN.md
// invariant 10): a function annotated //gflink:hotpath — and every
// function it transitively calls through static, same-package calls —
// must not heap-allocate on any path.
//
// Allocation sites are detected lexically, per function body:
//
//   - make and new
//   - append (every append may grow its backing array; deliberate
//     amortized growth is waived with //gflink:allow-alloc)
//   - &T{...} composite literals whose value escapes the function
//     (assigned to a local used only through field selectors, nil
//     comparisons and reassignment it stays on the stack and is free)
//   - slice and map composite literals
//   - map-element assignment (may grow the table)
//   - non-constant string concatenation
//   - conversions between string and []byte/[]rune
//   - function literals and method values (closure allocation)
//   - interface conversions that box a non-pointer argument at a call
//   - calls to variadic functions with a non-empty, non-spread
//     argument list (the ...args slice)
//   - go statements and defer inside a loop body
//
// Calls compose interprocedurally: a same-package callee joins the hot
// set and is checked in place; a cross-package callee must carry an
// AllocFree fact (exported by this analyzer when it analyzed that
// package as a dependency) or belong to a small allowlist of known
// non-allocating runtime entry points (sync mutex operations,
// container/heap, atomic loads/stores). Calls through function values
// or interface methods have unknown behavior and are reported. A
// //gflink:allow-alloc <reason> directive on (or above) the offending
// line waives one site or call — that is the sanctioned escape hatch
// for pool growth, error/cold branches and amortized reallocation —
// and a waived site does not stop the function from exporting
// AllocFree.
//
// Observability gates are recognized structurally: the body of an
// `if x.Enabled() { ... }` statement — where Enabled is any niladic
// method returning bool, the convention obs.Tracer and obs.Registry
// follow — is an observability-cold branch, so allocations inside it
// (attr slices, span storage) need no waiver. This is what makes the
// tracing-OFF path *provably* zero-alloc without sprinkling waivers
// over every span call site: allocation outside such a guard is still
// reported, so an unguarded attr-slice construction on a hot path is a
// finding, not a cost silently paid when tracing is off.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"gflink/internal/analysis"
)

// AllocFree marks a function proven free of unwaived heap allocation,
// including everything it transitively calls.
type AllocFree struct{}

// AFact marks AllocFree as a fact type.
func (*AllocFree) AFact() {}

// Allocates marks a function that heap-allocates (directly or through
// a callee) on at least one path, with no waiver.
type Allocates struct{}

// AFact marks Allocates as a fact type.
func (*Allocates) AFact() {}

// Analyzer is the hotalloc analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      "hotalloc",
	Doc:       "//gflink:hotpath functions (and their transitive static callees) must not heap-allocate",
	Run:       run,
	FactTypes: []analysis.Fact{(*AllocFree)(nil), (*Allocates)(nil)},
}

// allowlist names stdlib functions trusted not to allocate on the
// caller's behalf, keyed by "pkgpath.ObjectKey".
var allowlist = map[string]bool{
	"sync.Mutex.Lock":      true,
	"sync.Mutex.Unlock":    true,
	"sync.Mutex.TryLock":   true,
	"sync.RWMutex.Lock":    true,
	"sync.RWMutex.Unlock":  true,
	"sync.RWMutex.RLock":   true,
	"sync.RWMutex.RUnlock": true,
	"container/heap.Init":  true,
	"container/heap.Push":  true,
	"container/heap.Pop":   true,
	"container/heap.Fix":   true,
	// Atomic loads/stores back the vclock's lock-free Now fast path.
	"sync/atomic.LoadInt64":  true,
	"sync/atomic.StoreInt64": true,
	"sync/atomic.AddInt64":   true,
}

// site is one unwaived allocation inside a function body.
type site struct {
	pos  token.Pos
	what string
}

// edge is one unwaived static call site.
type edge struct {
	pos    token.Pos
	callee *types.Func
}

// fnScan is the lexical summary of one declared function.
type fnScan struct {
	obj   *types.Func
	decl  *ast.FuncDecl
	idx   map[string]map[int]bool
	sites []site
	edges []edge
	hot   bool // carries //gflink:hotpath
}

func run(pass *analysis.Pass) (interface{}, error) {
	var scans []*fnScan
	byObj := make(map[*types.Func]*fnScan)
	for _, f := range pass.Files {
		idx := analysis.DirectiveIndex(pass.Fset, f)
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sc := &fnScan{obj: obj, decl: fd, idx: idx,
				hot: analysis.DirectiveAt(idx, pass.Fset, "hotpath", fd.Pos())}
			scanBody(pass, sc)
			scans = append(scans, sc)
			byObj[obj] = sc
		}
	}

	// Interprocedural fixpoint: a function allocates if it has an
	// unwaived local site or any unwaived call edge reaches allocation
	// (same-package callees through the worklist, cross-package callees
	// through AllocFree facts / the allowlist; unknown means allocates).
	allocating := make(map[*types.Func]bool)
	for changed := true; changed; {
		changed = false
		for _, sc := range scans {
			if allocating[sc.obj] {
				continue
			}
			dirty := len(sc.sites) > 0
			for _, e := range sc.edges {
				if dirty {
					break
				}
				if local, ok := byObj[e.callee]; ok {
					dirty = allocating[local.obj]
				} else {
					dirty = !externClean(pass, e.callee)
				}
			}
			if dirty {
				allocating[sc.obj] = true
				changed = true
			}
		}
	}
	for _, sc := range scans {
		if analysis.ObjectKey(sc.obj) == "" {
			continue
		}
		if allocating[sc.obj] {
			pass.ExportObjectFact(sc.obj, &Allocates{})
		} else {
			pass.ExportObjectFact(sc.obj, &AllocFree{})
		}
	}

	// Hot set: annotated roots plus transitive same-package callees
	// over unwaived edges (a waived call is a declared cold branch and
	// does not spread hotness).
	hot := make(map[*types.Func]bool)
	var grow func(sc *fnScan)
	grow = func(sc *fnScan) {
		if hot[sc.obj] {
			return
		}
		hot[sc.obj] = true
		for _, e := range sc.edges {
			if callee, ok := byObj[e.callee]; ok {
				grow(callee)
			}
		}
	}
	for _, sc := range scans {
		if sc.hot {
			grow(sc)
		}
	}

	for _, sc := range scans {
		if !hot[sc.obj] {
			continue
		}
		for _, s := range sc.sites {
			pass.Reportf(s.pos, "%s in an allocation-free hot path (invariant 10; //gflink:allow-alloc <reason> if this is a deliberate cold branch)", s.what)
		}
		for _, e := range sc.edges {
			if _, ok := byObj[e.callee]; ok {
				continue // in the hot set; its sites are reported in place
			}
			if !externClean(pass, e.callee) {
				pass.Reportf(e.pos, "hot path calls %s, which is not proven allocation-free (invariant 10; //gflink:allow-alloc <reason> if this call is a deliberate cold branch)", e.callee.FullName())
			}
		}
	}
	return nil, nil
}

// externClean reports whether a callee declared outside this package is
// trusted not to allocate: allowlisted, or carrying an AllocFree fact.
func externClean(pass *analysis.Pass, fn *types.Func) bool {
	if fn.Pkg() != nil && allowlist[fn.Pkg().Path()+"."+analysis.ObjectKey(fn)] {
		return true
	}
	return pass.ImportObjectFact(fn, &AllocFree{})
}

// scanBody fills sc.sites and sc.edges from the function body. Sites
// and edges under a //gflink:allow-alloc line are dropped here, so they
// feed neither diagnostics nor the fixpoint. Function literal bodies
// are not scanned (the literal itself is the allocation; its body runs
// on some other path).
func scanBody(pass *analysis.Pass, sc *fnScan) {
	info := pass.TypesInfo
	cold := coldGuardRanges(info, sc.decl.Body)
	waived := func(pos token.Pos) bool {
		for _, r := range cold {
			if r[0] <= pos && pos < r[1] {
				return true
			}
		}
		return analysis.DirectiveAt(sc.idx, pass.Fset, "allow-alloc", pos)
	}
	addSite := func(pos token.Pos, what string) {
		if !waived(pos) {
			sc.sites = append(sc.sites, site{pos, what})
		}
	}
	stackLocal := stackLocalLits(pass, sc.decl.Body)

	var stack []ast.Node
	ast.Inspect(sc.decl.Body, func(n ast.Node) (descend bool) {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend = true
		defer func() {
			if descend {
				stack = append(stack, n)
			}
		}()
		switch n := n.(type) {
		case *ast.FuncLit:
			addSite(n.Pos(), "function literal allocates a closure")
			return false
		case *ast.GoStmt:
			addSite(n.Pos(), "go statement allocates a goroutine")
		case *ast.DeferStmt:
			for _, a := range stack {
				switch a.(type) {
				case *ast.ForStmt, *ast.RangeStmt:
					addSite(n.Pos(), "defer inside a loop allocates its record")
					return
				}
			}
		case *ast.CallExpr:
			scanCall(pass, sc, n, addSite, waived)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok && !stackLocal[n] {
					addSite(n.Pos(), "escaping &composite literal allocates")
				}
			}
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				addSite(n.Pos(), "slice literal allocates its backing array")
			case *types.Map:
				addSite(n.Pos(), "map literal allocates")
			}
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				if ix, ok := ast.Unparen(l).(*ast.IndexExpr); ok {
					if _, isMap := info.TypeOf(ix.X).Underlying().(*types.Map); isMap {
						addSite(l.Pos(), "map-element assignment may grow the table")
					}
				}
			}
			if n.Tok == token.ADD_ASSIGN && isStringType(info.TypeOf(n.Lhs[0])) {
				addSite(n.Pos(), "string concatenation allocates")
			}
		case *ast.IncDecStmt:
			if ix, ok := ast.Unparen(n.X).(*ast.IndexExpr); ok {
				if _, isMap := info.TypeOf(ix.X).Underlying().(*types.Map); isMap {
					addSite(n.Pos(), "map-element assignment may grow the table")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(info.TypeOf(n)) {
				if tv := info.Types[n]; tv.Value == nil { // non-constant
					addSite(n.Pos(), "string concatenation allocates")
				}
			}
		case *ast.SelectorExpr:
			// A method value (selection not immediately called)
			// captures its receiver in a closure.
			if sel, ok := info.Selections[n]; ok && sel.Kind() == types.MethodVal && !isCallFun(stack, n) {
				addSite(n.Pos(), "method value allocates a closure over its receiver")
			}
		}
		return true
	})
}

// coldGuardRanges collects the source ranges of if-bodies guarded by
// an observability Enabled() gate. Sites and call edges inside such a
// body are treated as waived: the branch only runs with tracing or
// metrics enabled, and the invariant being enforced is that the
// *disabled* path is allocation-free.
func coldGuardRanges(info *types.Info, body *ast.BlockStmt) [][2]token.Pos {
	var out [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if ifs, ok := n.(*ast.IfStmt); ok && isEnabledGuard(info, ifs.Cond) {
			out = append(out, [2]token.Pos{ifs.Body.Pos(), ifs.Body.End()})
		}
		return true
	})
	return out
}

// isEnabledGuard reports whether cond is (or conjoins, via &&) a call
// to a niladic method named Enabled returning bool.
func isEnabledGuard(info *types.Info, cond ast.Expr) bool {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		if e.Op == token.LAND {
			return isEnabledGuard(info, e.X) || isEnabledGuard(info, e.Y)
		}
	case *ast.CallExpr:
		sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Enabled" || len(e.Args) != 0 {
			return false
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok {
			return false
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
			return false
		}
		b, ok := sig.Results().At(0).Type().Underlying().(*types.Basic)
		return ok && b.Kind() == types.Bool
	}
	return false
}

// scanCall classifies one call expression: builtin allocators,
// allocating conversions, boxing and variadic argument slices, and the
// static call edge itself.
func scanCall(pass *analysis.Pass, sc *fnScan, call *ast.CallExpr, addSite func(token.Pos, string), waived func(token.Pos) bool) {
	info := pass.TypesInfo
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		scanConversion(info, call, addSite)
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				addSite(call.Pos(), "make allocates")
			case "new":
				addSite(call.Pos(), "new allocates")
			case "append":
				addSite(call.Pos(), "append may grow its backing array")
			}
			return
		}
	}
	callee := analysis.StaticCallee(info, call)
	if callee == nil {
		addSite(call.Pos(), "call through a function value or interface method has unknown allocation behavior")
		return
	}
	// Canonicalize instantiated generic functions/methods to their
	// declaration so local lookups and facts line up.
	callee = callee.Origin()
	if sig, ok := callee.Type().(*types.Signature); ok {
		if sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) >= sig.Params().Len() {
			addSite(call.Pos(), "non-empty variadic argument list allocates a slice")
		}
		scanBoxing(info, call, sig, addSite)
	}
	if !waived(call.Pos()) {
		sc.edges = append(sc.edges, edge{call.Pos(), callee})
	}
}

// scanConversion flags conversions that copy: string <-> byte/rune
// slices, and boxing conversions to interface types.
func scanConversion(info *types.Info, call *ast.CallExpr, addSite func(token.Pos, string)) {
	if len(call.Args) != 1 {
		return
	}
	to := info.TypeOf(call.Fun)
	from := info.TypeOf(call.Args[0])
	if to == nil || from == nil {
		return
	}
	switch {
	case isStringType(to) && !isStringType(from):
		addSite(call.Pos(), "conversion to string allocates")
	case !isStringType(to) && isStringType(from):
		if _, slice := to.Underlying().(*types.Slice); slice {
			addSite(call.Pos(), "conversion of a string to a slice allocates")
		}
	case types.IsInterface(to.Underlying()) && boxes(from):
		addSite(call.Pos(), "interface conversion boxes a non-pointer value")
	}
}

// scanBoxing flags arguments implicitly converted to interface
// parameters when the concrete value does not fit the interface word.
func scanBoxing(info *types.Info, call *ast.CallExpr, sig *types.Signature, addSite func(token.Pos, string)) {
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (!sig.Variadic() && i < params.Len()):
			pt = params.At(i).Type()
		case sig.Variadic() && !call.Ellipsis.IsValid():
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case params.Len() > 0:
			pt = params.At(params.Len() - 1).Type()
		default:
			continue
		}
		if types.IsInterface(pt.Underlying()) && boxes(info.TypeOf(arg)) {
			addSite(arg.Pos(), "interface conversion boxes a non-pointer value")
		}
	}
}

// boxes reports whether converting a value of type t to an interface
// heap-allocates: true for concrete non-pointer-shaped types.
func boxes(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Signature, *types.Interface, *types.Map:
		return false
	case *types.Basic:
		return u.Kind() != types.UntypedNil && u.Kind() != types.UnsafePointer
	}
	return true
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isCallFun reports whether sel is the Fun of its parent CallExpr
// (i.e. the selection is immediately invoked, not a method value).
func isCallFun(stack []ast.Node, sel *ast.SelectorExpr) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.CallExpr:
			return ast.Unparen(p.Fun) == sel
		default:
			return false
		}
	}
	return false
}

// stackLocalLits finds &T{...} expressions bound by := to a local
// whose every use is a field selector, a nil comparison, a deref, or a
// reassignment — those never escape, so the compiler keeps them on the
// stack. Any other use (call argument, method call, return, store,
// capture, address-of) counts as escaping.
func stackLocalLits(pass *analysis.Pass, body *ast.BlockStmt) map[*ast.UnaryExpr]bool {
	info := pass.TypesInfo
	cands := make(map[*types.Var]*ast.UnaryExpr)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		a, ok := n.(*ast.AssignStmt)
		if !ok || a.Tok != token.DEFINE || len(a.Lhs) != len(a.Rhs) {
			return true
		}
		for i, r := range a.Rhs {
			u, ok := ast.Unparen(r).(*ast.UnaryExpr)
			if !ok || u.Op != token.AND {
				continue
			}
			if _, ok := ast.Unparen(u.X).(*ast.CompositeLit); !ok {
				continue
			}
			if id, ok := a.Lhs[i].(*ast.Ident); ok {
				if v, ok := info.Defs[id].(*types.Var); ok {
					cands[v] = u
				}
			}
		}
		return true
	})
	out := make(map[*ast.UnaryExpr]bool, len(cands))
	for v, u := range cands {
		if !escapesLocally(info, body, v) {
			out[u] = true
		}
	}
	return out
}

// escapesLocally reports whether any use of v leaks the pointer out of
// plain stack usage.
func escapesLocally(info *types.Info, body *ast.BlockStmt, v *types.Var) bool {
	escaped := false
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if escaped {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == v {
			if !safeUse(info, stack, id) || inFuncLit(stack) {
				escaped = true
			}
		}
		stack = append(stack, n)
		return true
	})
	return escaped
}

// safeUse reports whether this identifier occurrence keeps the pointer
// local: x.f field access (read or written), *x deref, x == nil / x !=
// nil, or x on the left of an assignment.
func safeUse(info *types.Info, stack []ast.Node, id *ast.Ident) bool {
	if len(stack) == 0 {
		return false
	}
	switch p := stack[len(stack)-1].(type) {
	case *ast.SelectorExpr:
		if p.X != id {
			return false
		}
		// A method call may retain its receiver; only plain field
		// selections are safe.
		if sel, ok := info.Selections[p]; ok && sel.Kind() != types.FieldVal {
			return false
		}
		return true
	case *ast.StarExpr:
		return true
	case *ast.BinaryExpr:
		return p.Op == token.EQL || p.Op == token.NEQ
	case *ast.AssignStmt:
		for _, l := range p.Lhs {
			if l == id {
				return true
			}
		}
		return false
	}
	return false
}

func inFuncLit(stack []ast.Node) bool {
	for _, n := range stack {
		if _, ok := n.(*ast.FuncLit); ok {
			return true
		}
	}
	return false
}
