// Package dep exports AllocFree/Allocates facts consumed by the
// hotalloc fixture package.
package dep

var table = map[string]int{"a": 1}

// Clean is allocation-free and exports AllocFree.
func Clean() int { return 1 + 2 }

// CleanVia is allocation-free through a local call chain.
func CleanVia() int { return Clean() }

// Dirty allocates and exports Allocates.
func Dirty() []int { return make([]int, 4) }

// DirtyVia allocates only through a callee.
func DirtyVia() []int { return Dirty() }

// Waived allocates on a declared cold branch, so it still exports
// AllocFree.
func Waived(buf []int) []int {
	if cap(buf) == len(buf) {
		//gflink:allow-alloc amortized growth on the cold branch
		buf = append(buf, 0)
		return buf
	}
	return buf[:len(buf)+1]
}

// Lookup reads a map (reads are free; only writes may grow).
func Lookup(k string) int { return table[k] }
