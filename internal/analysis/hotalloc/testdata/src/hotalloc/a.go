// Package hotalloc exercises the hotalloc analyzer: annotated hot
// paths must not heap-allocate; cold code may.
package hotalloc

import "hotalloc/dep"

type point struct{ x, y int }

func box(v interface{}) {}

func variadic(xs ...int) int { return len(xs) }

func cleanup() {}

//gflink:hotpath
func hotMake() {
	_ = make([]int, 4) // want `make allocates`
}

//gflink:hotpath
func hotNew() {
	_ = new(point) // want `new allocates`
}

//gflink:hotpath
func hotAppend(xs []int) []int {
	return append(xs, 1) // want `append may grow`
}

//gflink:hotpath
func hotGrow(xs []int) []int {
	//gflink:allow-alloc amortized growth is a deliberate cold branch
	return append(xs, 1)
}

//gflink:hotpath
func hotEscape() *point {
	p := &point{x: 1} // want `escaping &composite literal`
	return p
}

//gflink:hotpath
func hotStackLocal() int {
	p := &point{x: 1} // stays on the stack: fields, nil compare, deref only
	p.x++
	if p != nil {
		p.y = (*p).x
	}
	return p.x + p.y
}

//gflink:hotpath
func hotSliceLit() {
	_ = []int{1, 2} // want `slice literal`
}

//gflink:hotpath
func hotMapWrite(m map[string]int) {
	m["k"] = 1 // want `map-element assignment`
	m["k"]++   // want `map-element assignment`
	_ = m["k"] // reads are free
}

//gflink:hotpath
func hotConcat(a, b string) string {
	const greeting = "hello, " + "world" // constant-folded: free
	_ = greeting
	return a + b // want `string concatenation`
}

//gflink:hotpath
func hotConvert(b []byte, s string) (string, []byte) {
	return string(b), []byte(s) // want `conversion to string` `conversion of a string`
}

//gflink:hotpath
func hotClosure() {
	f := func() {} // want `function literal allocates a closure`
	f()            // want `call through a function value`
}

//gflink:hotpath
func hotMethodValue() func() {
	return cleanup // plain func value: free
}

//gflink:hotpath
func hotBox(p *point) {
	box(p)  // pointers fit the interface word: free
	box(42) // want `boxes a non-pointer value`
	box(nil)
}

//gflink:hotpath
func hotVariadic() int {
	_ = variadic()     // empty variadic list: free
	return variadic(1) // want `variadic argument list allocates`
}

//gflink:hotpath
func hotGo() {
	go cleanup() // want `go statement allocates`
}

//gflink:hotpath
func hotDeferLoop(n int) {
	defer cleanup() // open-coded, free
	for i := 0; i < n; i++ {
		defer cleanup() // want `defer inside a loop`
	}
}

//gflink:hotpath
func hotCallsHelper() {
	helper()
}

// helper is hot only transitively (called from hotCallsHelper), so its
// sites are reported in place.
func helper() {
	_ = make([]int, 1) // want `make allocates`
}

//gflink:hotpath
func hotCallsDep() int {
	_ = dep.Dirty()    // want `dep.Dirty, which is not proven allocation-free`
	_ = dep.DirtyVia() // want `dep.DirtyVia, which is not proven allocation-free`
	_ = dep.Waived(nil)
	_ = dep.Lookup("a")
	return dep.CleanVia()
}

//gflink:hotpath
func hotWaivedCall() {
	//gflink:allow-alloc error cold path
	_ = dep.Dirty()
}

// coldHelper is reached from hot code only through a waived call, so
// hotness does not spread into it and its allocations are cold.
func coldHelper() []int { return make([]int, 8) }

//gflink:hotpath
func hotColdBranch(fail bool) {
	if fail {
		//gflink:allow-alloc error cold path
		_ = coldHelper()
	}
}

// coldAllocs is never on a hot path; nothing is reported.
func coldAllocs() []int {
	m := map[string]int{}
	m["x"] = 1
	return append(make([]int, 0, 8), 1)
}

// Labeled jumps across nested loops keep the whole body hot: the
// allocation is flagged wherever it sits relative to the jumps.
//
//gflink:hotpath
func hotLabeledLoops(n int) int {
	x := 0
outer:
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j == 1 {
				continue outer
			}
			if j == 2 {
				break outer
			}
			x = append([]int(nil), j)[0] // want `append may grow`
		}
	}
	return x
}

// A select with a default clause is still a hot-path construct: both
// the comm case and the default body are checked.
//
//gflink:hotpath
func hotSelectDefault(ch chan int, buf []int) []int {
	select {
	case v := <-ch:
		return append(buf, v) // want `append may grow`
	default:
	}
	return buf
}

// gate mimics the obs layer's Enabled convention: a niladic method
// returning bool.
type gate struct{ on bool }

func (g *gate) Enabled() bool { return g != nil && g.on }

// notGate has the right name but the wrong shape (takes an argument).
type notGate struct{}

func (notGate) Enabled(x int) bool { return x > 0 }

// Allocations inside an Enabled()-guarded body are observability-cold:
// they only run with tracing on, so the hot (disabled) path stays
// provably allocation-free without waivers. Unguarded allocations and
// allocations under a non-conforming guard are still reported.
//
//gflink:hotpath
func hotEnabledGuard(g *gate, ng notGate, xs []int) int {
	if g.Enabled() {
		attrs := append([]int(nil), xs...)
		return len(attrs)
	}
	if g != nil && g.Enabled() {
		return len(make([]int, 4))
	}
	if ng.Enabled(1) {
		return len(make([]int, 4)) // want `make allocates`
	}
	return append(xs, 1)[0] // want `append may grow`
}
