package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Loader parses and type-checks packages of the enclosing module from
// source. Standard-library imports are resolved through the stdlib
// source importer, so no pre-built export data (and no network) is
// needed. Module-internal imports are type-checked recursively and
// cached.
type Loader struct {
	Fset *token.FileSet

	moduleRoot string
	modulePath string

	// ExtraSrcDirs are searched before the module for import
	// resolution; analysistest points one at testdata/src so fixture
	// packages can provide stubs or import each other.
	ExtraSrcDirs []string

	std        types.Importer
	cache      map[string]*types.Package
	inProgress map[string]bool
}

// NewLoader builds a loader rooted at the module containing startDir.
func NewLoader(startDir string) (*Loader, error) {
	root, modPath, err := findModule(startDir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		moduleRoot: root,
		modulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil),
		cache:      make(map[string]*types.Package),
		inProgress: make(map[string]bool),
	}, nil
}

// ModuleRoot returns the directory holding go.mod.
func (l *Loader) ModuleRoot() string { return l.moduleRoot }

// ModulePath returns the module path from go.mod.
func (l *Loader) ModulePath() string { return l.modulePath }

// findModule walks up from dir to the nearest go.mod and parses its
// module path.
func findModule(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Import implements types.Importer, resolving extra source dirs first,
// then the module, then the standard library.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if l.inProgress[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	for _, src := range l.ExtraSrcDirs {
		dir := filepath.Join(src, filepath.FromSlash(path))
		if hasGoFiles(dir) {
			return l.importDir(dir, path)
		}
	}
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modulePath), "/")
		dir := filepath.Join(l.moduleRoot, filepath.FromSlash(rel))
		return l.importDir(dir, path)
	}
	return l.std.Import(path)
}

// importDir type-checks dir as the export view of path (no test files)
// and caches the result.
func (l *Loader) importDir(dir, path string) (*types.Package, error) {
	l.inProgress[path] = true
	defer delete(l.inProgress, path)
	pkg, err := l.load(dir, path, false)
	if err != nil {
		return nil, err
	}
	l.cache[path] = pkg.Types
	return pkg.Types, nil
}

// Load parses and type-checks the package in dir under the given import
// path. When includeTests is set, in-package _test.go files are part of
// the package (external _test packages are not supported).
func (l *Loader) Load(dir, importPath string, includeTests bool) (*Package, error) {
	return l.load(dir, importPath, includeTests)
}

func (l *Loader) load(dir, importPath string, includeTests bool) (*Package, error) {
	ctx := build.Default
	bp, err := ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", dir, err)
	}
	names := append([]string(nil), bp.GoFiles...)
	if includeTests {
		names = append(names, bp.TestGoFiles...)
	}
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.Fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// Expand resolves package patterns ("./...", "./internal/core",
// "gflink/internal/...") to (dir, importPath) pairs, skipping testdata
// and hidden directories, in deterministic order.
func (l *Loader) Expand(patterns []string) ([][2]string, error) {
	seen := make(map[string]bool)
	var out [][2]string
	add := func(dir, path string) {
		if !seen[path] {
			seen[path] = true
			out = append(out, [2]string{dir, path})
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
		}
		var base string
		switch {
		case pat == "." || strings.HasPrefix(pat, "./") || strings.HasPrefix(pat, "../") || filepath.IsAbs(pat):
			base = pat
		case pat == l.modulePath || strings.HasPrefix(pat, l.modulePath+"/"):
			rel := strings.TrimPrefix(strings.TrimPrefix(pat, l.modulePath), "/")
			base = filepath.Join(l.moduleRoot, filepath.FromSlash(rel))
		default:
			return nil, fmt.Errorf("analysis: unsupported package pattern %q", pat)
		}
		base, err := filepath.Abs(base)
		if err != nil {
			return nil, err
		}
		if !recursive {
			ip, err := l.importPathFor(base)
			if err != nil {
				return nil, err
			}
			add(base, ip)
			continue
		}
		err = filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				ip, err := l.importPathFor(p)
				if err != nil {
					return err
				}
				add(p, ip)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// DirFor maps a module-internal import path to the directory holding
// its sources, reporting whether the path belongs to this module and
// the directory contains Go files.
func (l *Loader) DirFor(path string) (string, bool) {
	if path != l.modulePath && !strings.HasPrefix(path, l.modulePath+"/") {
		return "", false
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modulePath), "/")
	dir := filepath.Join(l.moduleRoot, filepath.FromSlash(rel))
	if !hasGoFiles(dir) {
		return "", false
	}
	return dir, true
}

// importPathFor maps a directory inside the module to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.moduleRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.moduleRoot)
	}
	if rel == "." {
		return l.modulePath, nil
	}
	return l.modulePath + "/" + filepath.ToSlash(rel), nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}
