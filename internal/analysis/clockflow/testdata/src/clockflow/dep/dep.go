// Fixture dependency for clockflow's cross-package fact flow: Stamp
// forwards its parameter into a timestamp sink (so callers inherit the
// obligation via a TimestampSink fact), and Reading is a VClockSource.
package dep

import (
	"time"

	"gflink/internal/obs"
	"gflink/internal/vclock"
)

// Stamp records a span at t; t must be vclock-derived at every caller.
func Stamp(tr *obs.Tracer, t time.Duration) {
	tr.Record("track", "cat", "stamp", t, t)
}

// Reading returns a virtual-clock reading.
func Reading(c *vclock.Clock) time.Duration {
	return c.Now()
}
