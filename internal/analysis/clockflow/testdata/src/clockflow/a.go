// Fixture for the clockflow analyzer: obs timestamp arguments must be
// vclock-derived on every path.
package clockflow

import (
	"time"

	"clockflow/dep"

	"gflink/internal/obs"
	"gflink/internal/vclock"
)

func good(tr *obs.Tracer, c *vclock.Clock) {
	t0 := c.Now()
	tr.Record("t", "c", "n", t0, c.Now()+5*time.Millisecond)
}

func wallDirect(tr *obs.Tracer, epoch time.Time) {
	tr.Record("t", "c", "n",
		time.Since(epoch), // want `wall-clock`
		time.Since(epoch)) // want `wall-clock`
}

func literalStamp(tr *obs.Tracer) {
	s := tr.Begin("t", "c", "n",
		5*time.Millisecond) // want `compile-time constant`
	s.End(
		time.Duration(42)) // want `compile-time constant`
}

func mixedBranch(tr *obs.Tracer, c *vclock.Clock, epoch time.Time, cond bool) {
	t := c.Now()
	if cond {
		t = time.Since(epoch)
	}
	tr.Record("t", "c", "n",
		t, // want `wall-clock`
		t) // want `wall-clock`
}

func zeroJoinOK(tr *obs.Tracer, c *vclock.Clock, cond bool) {
	// A zero-initialized timestamp overwritten by a clock reading on
	// some path is fine: zero is the virtual epoch, not host time.
	var t time.Duration
	if cond {
		t = c.Now()
	}
	tr.Record("t", "c", "n", t, t)
}

func arithmeticTaint(tr *obs.Tracer, c *vclock.Clock, epoch time.Time) {
	tr.Record("t", "c", "n",
		c.Now()+time.Since(epoch), // want `wall-clock`
		c.Now())
}

func fieldReadsTrusted(tr *obs.Tracer, c *vclock.Clock, r obs.WorkReport) {
	// Struct fields are opaque: their producers carry the obligation.
	start := c.Now()
	tr.Record("t", "c", "n", start, start+r.H2D)
}

func viaHelper(tr *obs.Tracer, c *vclock.Clock, epoch time.Time) {
	dep.Stamp(tr, c.Now())
	dep.Stamp(tr,
		time.Since(epoch)) // want `wall-clock`
	dep.Stamp(tr,
		3*time.Second) // want `compile-time constant`
}

func viaSource(tr *obs.Tracer, c *vclock.Clock) {
	s := tr.Begin("t", "c", "n", dep.Reading(c))
	s.End(dep.Reading(c))
}

func localStamp(tr *obs.Tracer, t time.Duration) {
	tr.Record("t", "c", "n", t, t)
}

func callsLocal(tr *obs.Tracer, epoch time.Time) {
	localStamp(tr,
		time.Since(epoch)) // want `wall-clock`
}

func inClosure(tr *obs.Tracer, c *vclock.Clock, epoch time.Time) func() {
	return func() {
		end := c.Now()
		tr.Record("t", "c", "n", end-time.Millisecond, end)
		tr.Record("t", "c", "n",
			time.Since(epoch), // want `wall-clock`
			end)
	}
}

func waived(tr *obs.Tracer) {
	tr.Record("t", "c", "replay", 0, time.Millisecond) //gflink:vclock-derived -- replaying a recorded schedule
}
