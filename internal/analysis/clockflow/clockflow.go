// Package clockflow enforces DESIGN.md invariant 8 flow-sensitively:
// every value reaching an obs timestamp argument must originate from a
// virtual-clock reading ((*vclock.Clock).Now), never from wall-clock
// time or a bare literal.
//
// The wallclock analyzer already bans time.Now lexically, but a ban on
// the call site says nothing about where a timestamp argument's value
// *came from*: `start := 5 * time.Millisecond; tr.Record(..., start,
// ...)` records a constant that no schedule produced, and a helper that
// forwards its argument into Record moves the obligation to its callers
// — across package boundaries. clockflow runs a taint analysis over
// each function's CFG and reaching definitions: timestamp sinks are the
// obs recording methods (Tracer.Record, Tracer.RecordGWork,
// Tracer.Begin, OpenSpan.End — fixed roots), plus any function through
// which a parameter provably flows into a sink. Those derived sinks are
// exported as TimestampSink facts, so the check follows helpers across
// packages exactly like the maporder/lockorder fact flows. Functions
// whose every return value is vclock-derived export VClockSource and
// count as clock readings at their call sites.
//
// The lattice per value is {vclock, wall, const, unknown, param}:
// arithmetic joins its operands (vclock + const stays vclock — offsets
// from a clock reading are the normal span idiom), struct-field reads
// and opaque calls are unknown (trusted: their producers are checked at
// their own sinks), and a sink argument is reported when its value is
// wall-derived on some path, or a pure compile-time constant.
//
// Test files are exempt (fixtures pin literal timestamps by design).
// Suppress a single site with //gflink:vclock-derived.
package clockflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"gflink/internal/analysis"
)

// TimestampSink marks a function some of whose parameters flow into an
// obs timestamp argument; callers must pass vclock-derived values at
// those indices.
type TimestampSink struct{ Indices []int }

// AFact marks TimestampSink as a fact type.
func (*TimestampSink) AFact() {}

// VClockSource marks a function whose every return value derives from
// a virtual-clock reading.
type VClockSource struct{}

// AFact marks VClockSource as a fact type.
func (*VClockSource) AFact() {}

// Analyzer implements the clockflow check.
var Analyzer = &analysis.Analyzer{
	Name:      "clockflow",
	Doc:       "values reaching obs timestamp arguments must originate from vclock readings, never wall-clock time or literals",
	Run:       run,
	FactTypes: []analysis.Fact{(*TimestampSink)(nil), (*VClockSource)(nil)},
}

const (
	obsPath    = "gflink/internal/obs"
	vclockPath = "gflink/internal/vclock"
)

// rootSinks are the obs recording methods and their timestamp
// parameter indices — the ground truth the fact propagation grows from.
var rootSinks = map[string][]int{
	"Tracer.Record":      {3, 4},
	"Tracer.RecordGWork": {3, 4},
	"Tracer.Begin":       {3},
	"OpenSpan.End":       {0},
}

// wallFuncs are time-package functions whose results are wall-derived.
var wallFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// taint is the join-semilattice element for one value.
type taint struct {
	wall, vclock, konst, other bool
	params                     map[int]bool
}

func (t *taint) join(o taint) {
	t.wall = t.wall || o.wall
	t.vclock = t.vclock || o.vclock
	t.konst = t.konst || o.konst
	t.other = t.other || o.other
	for i := range o.params {
		if t.params == nil {
			t.params = make(map[int]bool)
		}
		t.params[i] = true
	}
}

// fnScope is one analyzed function or function literal.
type fnScope struct {
	obj  *types.Func // nil for literals
	sig  *types.Signature
	body *ast.BlockStmt
	rd   *analysis.ReachingDefs
	idx  map[string]map[int]bool // directives of the enclosing file
}

func run(pass *analysis.Pass) (interface{}, error) {
	info := pass.TypesInfo
	var scopes []*fnScope
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		idx := analysis.DirectiveIndex(pass.Fset, f)
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := info.Defs[fd.Name].(*types.Func)
			cfg := analysis.BuildCFG(info, fd.Body)
			scopes = append(scopes, &fnScope{
				obj:  obj,
				sig:  sigOf(obj),
				body: fd.Body,
				rd:   analysis.NewReachingDefs(info, cfg, fd.Recv, fd.Type),
				idx:  idx,
			})
		}
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.FuncLit)
			if !ok {
				return true
			}
			sig, _ := info.Types[lit].Type.(*types.Signature)
			cfg := analysis.BuildCFG(info, lit.Body)
			scopes = append(scopes, &fnScope{
				sig:  sig,
				body: lit.Body,
				rd:   analysis.NewReachingDefs(info, cfg, nil, lit.Type),
				idx:  idx,
			})
			return true
		})
	}

	st := &state{
		pass:   pass,
		sinks:  make(map[*types.Func]map[int]bool),
		vsrc:   make(map[*types.Func]bool),
		scopes: scopes,
	}

	// Summary fixpoint: derived sinks and vclock sources feed each
	// other within the package (a helper may wrap a helper), so iterate
	// until neither set grows.
	for changed := true; changed; {
		changed = false
		for _, sc := range scopes {
			if sc.obj == nil {
				continue // literals carry no exportable obligations
			}
			forEachCall(sc.body, func(call *ast.CallExpr) {
				for _, i := range st.calleeSinks(analysis.StaticCallee(info, call)) {
					if i >= len(call.Args) {
						continue
					}
					t := st.classify(sc, call.Args[i], nil)
					for p := range t.params {
						if st.sinks[sc.obj] == nil {
							st.sinks[sc.obj] = make(map[int]bool)
						}
						if !st.sinks[sc.obj][p] {
							st.sinks[sc.obj][p] = true
							changed = true
						}
					}
				}
			})
			if !st.vsrc[sc.obj] && sc.sig != nil && sc.sig.Results().Len() > 0 && st.returnsVClock(sc) {
				st.vsrc[sc.obj] = true
				changed = true
			}
		}
	}

	// Report pass.
	for _, sc := range scopes {
		forEachCall(sc.body, func(call *ast.CallExpr) {
			for _, i := range st.calleeSinks(analysis.StaticCallee(info, call)) {
				if i >= len(call.Args) {
					continue
				}
				arg := call.Args[i]
				t := st.classify(sc, arg, nil)
				if !t.wall && !(t.konst && !t.vclock && !t.other && len(t.params) == 0) {
					continue
				}
				if analysis.DirectiveAt(sc.idx, pass.Fset, "vclock-derived", arg.Pos()) ||
					analysis.DirectiveAt(sc.idx, pass.Fset, "vclock-derived", call.Pos()) {
					continue
				}
				if t.wall {
					pass.Reportf(arg.Pos(), "obs timestamp derives from wall-clock time on some path; every timestamp must originate from (*vclock.Clock).Now")
				} else {
					pass.Reportf(arg.Pos(), "obs timestamp is a compile-time constant, not a clock reading; timestamps must originate from (*vclock.Clock).Now")
				}
			}
		})
	}

	// Export summaries for dependent packages.
	for fn, idxs := range st.sinks {
		out := make([]int, 0, len(idxs))
		for i := range idxs {
			out = append(out, i)
		}
		sort.Ints(out)
		pass.ExportObjectFact(fn, &TimestampSink{Indices: out})
	}
	for fn, ok := range st.vsrc {
		if ok {
			pass.ExportObjectFact(fn, &VClockSource{})
		}
	}
	return nil, nil
}

type state struct {
	pass   *analysis.Pass
	sinks  map[*types.Func]map[int]bool
	vsrc   map[*types.Func]bool
	scopes []*fnScope
}

// calleeSinks resolves the timestamp-parameter indices of a call
// target: fixed obs roots, package-local summaries, or imported facts.
func (st *state) calleeSinks(fn *types.Func) []int {
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	if fn.Pkg().Path() == obsPath {
		if idxs, ok := rootSinks[analysis.ObjectKey(fn)]; ok {
			return idxs
		}
	}
	if fn.Pkg() == st.pass.Pkg {
		if local, ok := st.sinks[fn]; ok {
			out := make([]int, 0, len(local))
			for i := range local {
				out = append(out, i)
			}
			sort.Ints(out)
			return out
		}
		return nil
	}
	var fact TimestampSink
	if st.pass.ImportObjectFact(fn, &fact) {
		return fact.Indices
	}
	return nil
}

// isVClockCall reports whether a static callee is a virtual-clock
// reading: the vclock root or a known VClockSource.
func (st *state) isVClockCall(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() == vclockPath && analysis.ObjectKey(fn) == "Clock.Now" {
		return true
	}
	if fn.Pkg() == st.pass.Pkg {
		return st.vsrc[fn]
	}
	var fact VClockSource
	return st.pass.ImportObjectFact(fn, &fact)
}

// returnsVClock reports whether every return value of the scope
// classifies as vclock-derived (and nothing else).
func (st *state) returnsVClock(sc *fnScope) bool {
	found := false
	ok := true
	forEachReturn(sc.body, func(ret *ast.ReturnStmt) {
		if len(ret.Results) == 0 {
			ok = false // named results assigned elsewhere: too opaque
			return
		}
		for _, e := range ret.Results {
			t := st.classify(sc, e, nil)
			if !t.vclock || t.wall || t.other || t.konst || len(t.params) > 0 {
				ok = false
			}
		}
		found = true
	})
	return found && ok
}

// classify computes the taint of one expression in a scope. visited
// guards against definition cycles (loop-carried values contribute
// nothing on the back edge).
func (st *state) classify(sc *fnScope, e ast.Expr, visited map[*analysis.Def]bool) taint {
	info := st.pass.TypesInfo
	e = ast.Unparen(e)
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		return taint{konst: true}
	}
	switch e := e.(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO, token.REM:
			t := st.classify(sc, e.X, visited)
			t.join(st.classify(sc, e.Y, visited))
			return t
		}
		return taint{other: true}
	case *ast.UnaryExpr:
		if e.Op == token.ADD || e.Op == token.SUB {
			return st.classify(sc, e.X, visited)
		}
		return taint{other: true}
	case *ast.CallExpr:
		if tv, ok := info.Types[e.Fun]; ok && tv.IsType() {
			if len(e.Args) == 1 {
				return st.classify(sc, e.Args[0], visited) // conversion
			}
			return taint{other: true}
		}
		fn := analysis.StaticCallee(info, e)
		if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" && wallFuncs[fn.Name()] {
			return taint{wall: true}
		}
		if st.isVClockCall(fn) {
			return taint{vclock: true}
		}
		return taint{other: true}
	case *ast.Ident:
		v, _ := info.Uses[e].(*types.Var)
		if v == nil || !sc.rd.Tracked(v) {
			return taint{other: true}
		}
		defs := sc.rd.DefsAt(e)
		if defs == nil {
			return taint{other: true}
		}
		var t taint
		for _, d := range defs {
			t.join(st.classifyDef(sc, d, visited))
		}
		return t
	}
	return taint{other: true}
}

func (st *state) classifyDef(sc *fnScope, d *analysis.Def, visited map[*analysis.Def]bool) taint {
	if visited[d] {
		return taint{} // cycle: the other defs decide
	}
	if visited == nil {
		visited = make(map[*analysis.Def]bool)
	}
	visited[d] = true
	defer delete(visited, d)
	switch d.Kind {
	case analysis.DefParam:
		if sc.sig != nil {
			params := sc.sig.Params()
			for i := 0; i < params.Len(); i++ {
				if params.At(i) == d.Var {
					return taint{params: map[int]bool{i: true}}
				}
			}
		}
		return taint{other: true} // receiver or named result
	case analysis.DefZero:
		return taint{konst: true}
	case analysis.DefAssign:
		if d.Multi || d.RHS == nil {
			return taint{other: true}
		}
		return st.classify(sc, d.RHS, visited)
	case analysis.DefModify:
		// The previous value also flows in; treat it as unknown so a
		// loop accumulator neither proves nor damns the result.
		t := taint{other: true}
		if d.RHS != nil {
			t.join(st.classify(sc, d.RHS, visited))
		}
		return t
	}
	return taint{other: true}
}

func sigOf(fn *types.Func) *types.Signature {
	if fn == nil {
		return nil
	}
	sig, _ := fn.Type().(*types.Signature)
	return sig
}

// forEachCall visits every call expression in a body, excluding nested
// function literals (they are separate scopes).
func forEachCall(body *ast.BlockStmt, fn func(*ast.CallExpr)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			fn(call)
		}
		return true
	})
}

// forEachReturn visits every return statement in a body, excluding
// nested function literals.
func forEachReturn(body *ast.BlockStmt, fn func(*ast.ReturnStmt)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if ret, ok := n.(*ast.ReturnStmt); ok {
			fn(ret)
		}
		return true
	})
}
