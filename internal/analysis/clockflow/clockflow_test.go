package clockflow_test

import (
	"testing"

	"gflink/internal/analysis/analysistest"
	"gflink/internal/analysis/clockflow"
)

// The dep fixture is listed first so its TimestampSink/VClockSource
// facts exist when the dependent package is analyzed — the same order
// the driver's topological sort produces.
func TestClockflow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), clockflow.Analyzer, "clockflow/dep", "clockflow")
}
