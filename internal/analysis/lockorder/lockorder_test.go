package lockorder_test

import (
	"testing"

	"gflink/internal/analysis/analysistest"
	"gflink/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	// dep is listed first so its LockSet/LockGraph facts are in the
	// store when the lockorder fixture (which imports it) is analyzed.
	analysistest.Run(t, analysistest.TestData(), lockorder.Analyzer, "lockorder/dep", "lockorder")
}
