package lockorder

import "sync"

// --- in-package ABBA cycle; both edges are local, both are reported ---

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

func ab(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want `lock order cycle`
	b.mu.Unlock()
}

func ba(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock() // want `lock order cycle`
	a.mu.Unlock()
}

// --- consistent order: no cycle ---

type C struct{ mu sync.Mutex }

type D struct{ mu sync.Mutex }

func cd(c *C, d *D) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d.mu.Lock() // consistent everywhere: allowed
	d.mu.Unlock()
}

func cdAgain(c *C, d *D) {
	c.mu.Lock()
	d.mu.Lock() // same direction: allowed
	d.mu.Unlock()
	c.mu.Unlock()
}

// --- instance conflation: two locks with one structural identity ---

func pair(a1, a2 *A) {
	a1.mu.Lock()
	a2.mu.Lock() // same structural lock: no order claim, allowed
	a2.mu.Unlock()
	a1.mu.Unlock()
}

// --- local mutexes cannot participate in an ordering ---

func withLocal(a *A) {
	a.mu.Lock()
	defer a.mu.Unlock()
	var mu sync.Mutex
	mu.Lock() // local mutex: allowed
	mu.Unlock()
}

// --- transitive edge through a same-package callee's acquire set ---

type E struct{ mu sync.Mutex }

type F struct{ mu sync.Mutex }

func lockF(f *F) {
	f.mu.Lock()
	f.mu.Unlock()
}

func efDirect(e *E, f *F) {
	f.mu.Lock()
	defer f.mu.Unlock()
	e.mu.Lock() // want `lock order cycle`
	e.mu.Unlock()
}

func efViaCall(e *E, f *F) {
	e.mu.Lock()
	defer e.mu.Unlock()
	lockF(f) // want `lock order cycle`
}
