package lockorder

import (
	"sync"

	"lockorder/dep"
)

// Package dep established X -> Y; acquiring in the opposite order here
// closes a cycle that only the imported LockGraph fact can reveal.
func yxDirect(x *dep.X, y *dep.Y) {
	y.Mu.Lock()
	defer y.Mu.Unlock()
	x.Mu.Lock() // want `lock order cycle`
	x.Mu.Unlock()
}

// Same inversion through dep.LockX's exported LockSet fact: the edge
// Y -> X exists even though no X lock is visible at this call site.
func yxViaCall(x *dep.X, y *dep.Y) {
	y.Mu.Lock()
	defer y.Mu.Unlock()
	dep.LockX(x) // want `lock order cycle`
}

// Repeating an imported order (dep acquires P before Q, and nothing
// anywhere inverts it) is fine.
func pqConsistent(p *dep.P, q *dep.Q) {
	p.Mu.Lock()
	defer p.Mu.Unlock()
	q.Mu.Lock() // matches dep's order: allowed
	q.Mu.Unlock()
}

// A justified inversion is silenced per site.
func yxJustified(x *dep.X, y *dep.Y) {
	y.Mu.Lock()
	defer y.Mu.Unlock()
	x.Mu.Lock() //gflink:lock-order -- x is freshly constructed and unshared here
	x.Mu.Unlock()
}

// Z pairs with dep.X across packages in both directions via function
// literals, which track a fresh held set but still contribute edges.
type Z struct{ mu sync.Mutex }

func litEdges(x *dep.X, z *Z) {
	f := func() {
		z.mu.Lock()
		defer z.mu.Unlock()
		x.Mu.Lock() // want `lock order cycle`
		x.Mu.Unlock()
	}
	x.Mu.Lock()
	defer x.Mu.Unlock()
	z.mu.Lock() // want `lock order cycle`
	z.mu.Unlock()
	f()
}
