// Package dep establishes a lock order (X before Y) that importers can
// only learn through exported LockGraph and LockSet facts.
package dep

import "sync"

// X is always acquired before Y within this package.
type X struct{ Mu sync.Mutex }

// Y is the inner lock of the X -> Y order.
type Y struct{ Mu sync.Mutex }

// XY establishes the edge X -> Y. Consistent here: no cycle exists
// when this package is analyzed on its own.
func XY(x *X, y *Y) {
	x.Mu.Lock()
	defer x.Mu.Unlock()
	y.Mu.Lock()
	y.Mu.Unlock()
}

// LockX acquires X; callers holding another lock inherit the edge
// through this function's LockSet fact.
func LockX(x *X) {
	x.Mu.Lock()
	x.Mu.Unlock()
}

// P is always acquired before Q; unlike X/Y this order is never
// inverted anywhere, so importers repeating it stay silent.
type P struct{ Mu sync.Mutex }

// Q is the inner lock of the P -> Q order.
type Q struct{ Mu sync.Mutex }

// PQ establishes the edge P -> Q.
func PQ(p *P, q *Q) {
	p.Mu.Lock()
	defer p.Mu.Unlock()
	q.Mu.Lock()
	q.Mu.Unlock()
}
