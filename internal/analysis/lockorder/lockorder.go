// Package lockorder builds a whole-program lock-acquisition graph and
// reports cycles — the classic ABBA deadlock that `go test -race`
// only catches if the fatal interleaving happens to run.
//
// Locks are identified structurally, not by instance: a mutex field is
// "pkgpath.Type.field", a package-level mutex is "pkgpath.var", and a
// type that embeds its mutex is "pkgpath.Type". Within one function the
// analyzer tracks the held set in source order (deferred Unlocks hold
// to exit, function literals start fresh — they run on other vclock
// processes); acquiring L2 while holding L1 records the edge L1 → L2.
// Calls made under a held lock contribute edges to everything the
// callee may transitively acquire: each function's transitive acquire
// set is computed over the package call graph and exported as a LockSet
// object fact, and each package's accumulated edges are exported as a
// LockGraph package fact, so the graph spans membuf, core and flink no
// matter which package introduces the ordering.
//
// A cycle is reported at every *locally introduced* edge that
// participates in it (the packages that merely established the opposite
// order stay silent — their order is, by construction, the consistent
// one at the time they were analyzed). Because lock identity conflates
// instances of a type, an edge from a lock to itself (two instances
// locked in sequence) is ignored. Acquisitions whose ordering is
// justified — e.g. provably distinct instances ordered by address — are
// annotated //gflink:lock-order with a justification.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"gflink/internal/analysis"
)

// LockSet is an object fact: the set of lock IDs a function may
// acquire, directly or through any chain of static calls.
type LockSet struct {
	Locks []string
}

// AFact marks LockSet as a fact type.
func (*LockSet) AFact() {}

// LockGraph is a package fact: every acquired-while-holding edge known
// once this package is analyzed, its own and (cumulatively) its
// dependencies'. Pos is "file:line" of the acquisition that introduced
// the edge, for cross-package diagnostics.
type LockGraph struct {
	Edges []LockEdge
}

// AFact marks LockGraph as a fact type.
func (*LockGraph) AFact() {}

// LockEdge records that To was acquired while From was held.
type LockEdge struct {
	From string
	To   string
	Pos  string
}

// Analyzer implements the lockorder check.
var Analyzer = &analysis.Analyzer{
	Name:      "lockorder",
	Doc:       "build the whole-program lock-acquisition graph across packages and report cycles (potential ABBA deadlocks); suppress one edge with //gflink:lock-order",
	Run:       run,
	FactTypes: []analysis.Fact{(*LockSet)(nil), (*LockGraph)(nil)},
}

// localEdge is an edge introduced by the package under analysis, with a
// real position for reporting.
type localEdge struct {
	from, to string
	pos      token.Pos
}

func run(pass *analysis.Pass) (interface{}, error) {
	g := analysis.BuildCallGraph(pass)

	// Transitive acquire set per declared function: direct acquisitions
	// seeded from the body, closed over the package call graph, with
	// cross-package callees resolved through LockSet facts.
	acquires := g.Fixpoint(
		func(fi *analysis.FuncInfo) []string {
			return directAcquires(pass, fi.Decl.Body)
		},
		func(callee *types.Func) []string {
			var fact LockSet
			if pass.ImportObjectFact(callee, &fact) {
				return fact.Locks
			}
			return nil
		},
	)
	for _, fi := range g.Decls {
		if set := acquires[fi.Obj]; len(set) > 0 {
			pass.ExportObjectFact(fi.Obj, &LockSet{Locks: set})
		}
	}

	calleeAcquires := func(fn *types.Func) []string {
		if set, ok := acquires[fn]; ok {
			return set
		}
		var fact LockSet
		if pass.ImportObjectFact(fn, &fact) {
			return fact.Locks
		}
		return nil
	}

	// Collect this package's own edges, in source order.
	var local []localEdge
	suppressed := make(map[token.Pos]bool)
	for _, f := range pass.Files {
		idx := analysis.DirectiveIndex(pass.Fset, f)
		start := len(local)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					collectEdges(pass, n.Body, calleeAcquires, &local)
				}
				return false
			case *ast.FuncLit:
				collectEdges(pass, n.Body, calleeAcquires, &local)
				return false
			}
			return true
		})
		for _, e := range local[start:] {
			if analysis.DirectiveAt(idx, pass.Fset, "lock-order", e.pos) {
				suppressed[e.pos] = true
			}
		}
	}

	// Union: edges inherited from direct imports (each dependency's
	// graph is already cumulative) plus this package's own.
	merged := make(map[LockEdge]bool)
	var depPaths []string
	for _, imp := range pass.Pkg.Imports() {
		depPaths = append(depPaths, imp.Path())
	}
	sort.Strings(depPaths)
	for _, path := range depPaths {
		var fact LockGraph
		if pass.ImportPackageFact(path, &fact) {
			for _, e := range fact.Edges {
				merged[e] = true
			}
		}
	}
	adj := make(map[string]map[string]bool) // from -> to set
	addAdj := func(from, to string) {
		if adj[from] == nil {
			adj[from] = make(map[string]bool)
		}
		adj[from][to] = true
	}
	for e := range merged {
		addAdj(e.From, e.To)
	}
	for _, e := range local {
		addAdj(e.from, e.to)
		pos := pass.Position(e.pos)
		merged[LockEdge{From: e.from, To: e.to, Pos: pos.Filename + ":" + strconv.Itoa(pos.Line)}] = true
	}

	// Export the cumulative graph (sorted for byte-stable facts).
	out := make([]LockEdge, 0, len(merged))
	for e := range merged {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Pos < b.Pos
	})
	if len(out) > 0 {
		pass.ExportPackageFact(&LockGraph{Edges: out})
	}

	// Report every locally introduced edge that closes a cycle.
	for _, e := range local {
		if e.from == e.to || suppressed[e.pos] {
			continue
		}
		if path := pathBetween(adj, e.to, e.from); path != nil {
			cycle := append([]string{e.from}, path...)
			pass.Reportf(e.pos, "lock order cycle %s: %s is acquired here while %s is held, but the reverse order exists elsewhere in the program; acquire locks in one global order or annotate //gflink:lock-order with a justification",
				strings.Join(cycle, " -> "), e.to, e.from)
		}
	}
	return nil, nil
}

// directAcquires returns the sorted set of lock IDs Lock/RLock'd
// anywhere in body, function literals included (whichever process runs
// them, the acquisition is attributable to calling this function).
func directAcquires(pass *analysis.Pass, body *ast.BlockStmt) []string {
	seen := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, op, ok := mutexOp(pass, call); ok && (op == "Lock" || op == "RLock") {
			seen[id] = true
		}
		return true
	})
	out := make([]string, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// collectEdges walks one function body in source order tracking the
// held set, recording an edge for every acquisition and every
// transitive acquisition (via static calls) made under a held lock.
func collectEdges(pass *analysis.Pass, body *ast.BlockStmt, calleeAcquires func(*types.Func) []string, edges *[]localEdge) {
	held := []string{} // acquisition order
	isHeld := func(id string) bool {
		for _, h := range held {
			if h == id {
				return true
			}
		}
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Fresh held set: literals run on other vclock processes or
			// after the enclosing lock is released (same stance as
			// lockhold); their own acquisitions still produce edges.
			collectEdges(pass, n.Body, calleeAcquires, edges)
			return false
		case *ast.DeferStmt:
			// defer mu.Unlock() keeps the lock to function exit.
			if _, _, ok := mutexOp(pass, n.Call); ok {
				return false
			}
			return true
		case *ast.CallExpr:
			if id, op, ok := mutexOp(pass, n); ok {
				switch op {
				case "Lock", "RLock":
					if id != "" {
						for _, h := range held {
							// h == id is two instances of one structural
							// lock; identity conflation makes any order
							// claim meaningless, so no edge.
							if h != id {
								*edges = append(*edges, localEdge{from: h, to: id, pos: n.Pos()})
							}
						}
						if !isHeld(id) {
							held = append(held, id)
						}
					}
				case "Unlock", "RUnlock":
					for i, h := range held {
						if h == id {
							held = append(held[:i], held[i+1:]...)
							break
						}
					}
				}
				return true
			}
			if len(held) == 0 {
				return true
			}
			callee := analysis.StaticCallee(pass.TypesInfo, n)
			if callee == nil {
				return true
			}
			for _, to := range calleeAcquires(callee) {
				for _, h := range held {
					if h != to {
						*edges = append(*edges, localEdge{from: h, to: to, pos: n.Pos()})
					}
				}
			}
		}
		return true
	})
}

// mutexOp reports whether call is Lock/Unlock/RLock/RUnlock on a
// sync.Mutex or sync.RWMutex, returning the structural lock ID ("" when
// the lock is a local and therefore unordered by construction).
func mutexOp(pass *analysis.Pass, call *ast.CallExpr) (id, op string, ok bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	var fn *types.Func
	if s, ok := pass.TypesInfo.Selections[sel]; ok {
		fn, _ = s.Obj().(*types.Func)
	} else if f, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok {
		fn = f
	}
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
		return lockID(pass, sel.X), fn.Name(), true
	}
	return "", "", false
}

// lockID names a lock structurally: "pkg.Type.field" for mutex fields,
// "pkg.var" for package-level mutexes, "pkg.Type" for types embedding
// their mutex. Local mutexes get "" — they cannot participate in a
// cross-function ordering.
func lockID(pass *analysis.Pass, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if s, ok := pass.TypesInfo.Selections[e]; ok {
			fld, ok := s.Obj().(*types.Var)
			if !ok {
				return ""
			}
			if named := namedOf(s.Recv()); named != nil && named.Obj().Pkg() != nil {
				return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + fld.Name()
			}
			return ""
		}
		// Package-qualified global: pkg.mu.
		if v, ok := pass.TypesInfo.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil {
			return v.Pkg().Path() + "." + v.Name()
		}
	case *ast.Ident:
		v, ok := pass.TypesInfo.Uses[e].(*types.Var)
		if !ok {
			return ""
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
		// Receiver or local whose type embeds its mutex.
		if named := namedOf(v.Type()); named != nil && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() != "sync" {
			return named.Obj().Pkg().Path() + "." + named.Obj().Name()
		}
	}
	return ""
}

// namedOf unwraps pointers to the named type, if any.
func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// pathBetween returns a lock-ID path from a to b over adj (inclusive of
// both endpoints), or nil if b is unreachable. BFS in sorted neighbor
// order keeps diagnostics deterministic.
func pathBetween(adj map[string]map[string]bool, a, b string) []string {
	type queued struct {
		id   string
		path []string
	}
	queue := []queued{{id: a, path: []string{a}}}
	visited := map[string]bool{a: true}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.id == b {
			return cur.path
		}
		next := make([]string, 0, len(adj[cur.id]))
		for n := range adj[cur.id] {
			next = append(next, n)
		}
		sort.Strings(next)
		for _, n := range next {
			if !visited[n] {
				visited[n] = true
				queue = append(queue, queued{id: n, path: append(append([]string(nil), cur.path...), n)})
			}
		}
	}
	return nil
}
