package bufescape

import (
	"gflink/internal/membuf"

	"bufescape/dep"
)

type sink struct {
	view []byte
}

var global []byte

// --- direct escapes of the call result ---

func returned(b *membuf.HBuffer) []byte {
	return b.Bytes() // want `returned to the caller`
}

func field(s *sink, b *membuf.HBuffer) {
	s.view = b.Bytes() // want `stored in a struct field`
}

func toGlobal(b *membuf.HBuffer) {
	global = b.Raw() // want `stored in the global variable "?global`
}

func send(ch chan []byte, b *membuf.HBuffer) {
	ch <- b.Bytes() // want `sent on a channel`
}

func appended(acc [][]byte, b *membuf.HBuffer) [][]byte {
	return append(acc, b.Bytes()) // want `appended to a slice`
}

func inComposite(b *membuf.HBuffer) *sink {
	return &sink{view: b.Bytes()} // want `returned to the caller`
}

// --- escapes through a local alias ---

func viaLocal(s *sink, b *membuf.HBuffer) {
	v := b.Bytes()
	s.view = v // want `stored in a struct field`
}

func sliced(b *membuf.HBuffer) []byte {
	v := b.Bytes()
	return v[8:16] // want `returned to the caller`
}

func converted(b *membuf.HBuffer) []byte {
	v := b.Bytes()
	return []byte(v) // want `returned to the caller`
}

func closure(b *membuf.HBuffer) func() byte {
	v := b.Bytes()
	return func() byte { // want `captured by a function literal`
		return v[0]
	}
}

func elementPointer(b *membuf.HBuffer) *byte {
	v := b.Bytes()
	return &v[0] // want `returned to the caller`
}

// --- transient views: the zero-copy fast path stays legal ---

func transient(b *membuf.HBuffer) byte {
	v := b.Bytes()
	return v[3] // element read copies the byte: allowed
}

func fill(b *membuf.HBuffer) {
	v := b.Bytes()
	for i := range v {
		v[i] = 0 // writing through the view is the point: allowed
	}
}

func copied(dst, src *membuf.HBuffer) {
	copy(dst.Bytes(), src.Bytes()) // copy reads and writes in place: allowed
}

func appendCopy(acc []byte, b *membuf.HBuffer) []byte {
	return append(acc, b.Bytes()...) // element-wise copy: allowed
}

func toString(b *membuf.HBuffer) string {
	return string(b.Bytes()) // string conversion copies: allowed
}

// --- retention through callees ---

func keep(s *sink, p []byte) {
	s.view = p
}

func read(p []byte) int {
	n := 0
	for _, x := range p {
		n += int(x)
	}
	return n
}

func passedRetained(s *sink, b *membuf.HBuffer) {
	keep(s, b.Bytes()) // want `passed to keep, which retains that argument`
}

func passedRead(b *membuf.HBuffer) int {
	return read(b.Bytes()) // callee only reads: allowed
}

func crossRetained(c *dep.Cache, b *membuf.HBuffer) {
	c.Put(b.Bytes()) // want `passed to Put, which retains that argument`
}

func crossRetainedIndirect(c *dep.Cache, b *membuf.HBuffer) {
	c.PutIndirect(b.Bytes()) // want `passed to PutIndirect, which retains that argument`
}

func crossRead(b *membuf.HBuffer) int {
	return dep.Sum(b.Bytes()) // callee only reads: allowed
}

// --- justified retention is silenced per site ---

func pinnedForRun(s *sink, b *membuf.HBuffer) {
	s.view = b.Bytes() //gflink:retains-bytes -- s is dropped before the pool reclaims b
}
