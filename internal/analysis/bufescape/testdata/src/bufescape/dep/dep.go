// Package dep provides helpers whose argument retention is visible to
// importers only through exported Retains facts.
package dep

// Cache retains every slice handed to Put.
type Cache struct {
	entries [][]byte
}

// Put stores p; its parameter is retained.
func (c *Cache) Put(p []byte) {
	c.entries = append(c.entries, p)
}

// PutIndirect retains p by delegating to Put, exercising the
// retention fixpoint across call chains.
func (c *Cache) PutIndirect(p []byte) {
	c.Put(p)
}

// Sum only reads p; not retained.
func Sum(p []byte) int {
	n := 0
	for _, b := range p {
		n += int(b)
	}
	return n
}
