package bufescape_test

import (
	"testing"

	"gflink/internal/analysis/analysistest"
	"gflink/internal/analysis/bufescape"
)

func TestBufEscape(t *testing.T) {
	// dep is listed first so its Retains facts are in the store when
	// the bufescape fixture (which imports it) is analyzed.
	analysistest.Run(t, analysistest.TestData(), bufescape.Analyzer, "bufescape/dep", "bufescape")
}
