// Package bufescape flags zero-copy HBuffer views that escape the
// scope guaranteeing the buffer is live.
//
// HBuffer.Bytes() and HBuffer.Raw() return slices aliasing the
// buffer's backing array — the whole point of the zero-copy transfer
// path. The contract is that such a view is transient: read or written
// in place, then dropped before the buffer's Free (which buflifecycle
// enforces separately). A view stored into a struct field, a global, a
// long-lived slice, or a channel — or captured by a closure that may
// run later — silently becomes a dangling window once the pool reuses
// the pages, the classic use-after-free that Go's GC hides until the
// data is *wrong* rather than crashing.
//
// The analysis tracks each view (and every local alias or re-slice of
// it) through the function: returning it, storing it anywhere that
// outlives the frame, sending it on a channel, or capturing it in a
// function literal is an escape. Passing a view to another function is
// an escape only if that function retains its argument; retention is
// computed per parameter as a fixpoint over the package call graph and
// exported as a Retains object fact, so a helper in membuf or core
// that caches its []byte argument is visible from flink. Element reads
// (v[i]), copy/len/cap, and append(dst, v...) (which copies elements)
// are not escapes. Unknown callees (function values, interface
// methods, stdlib) are assumed non-retaining — the direct-call
// discipline the simulator uses keeps that optimistic default honest.
//
// Intentional retention — e.g. a test harness that owns the buffer for
// the process's whole lifetime — is annotated //gflink:retains-bytes
// with a justification.
package bufescape

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"gflink/internal/analysis"
)

// Retains is an object fact: Params[i] reports whether the function
// retains its i'th parameter (stores it somewhere outliving the call).
type Retains struct {
	Params []bool
}

// AFact marks Retains as a fact type.
func (*Retains) AFact() {}

const membufPath = "gflink/internal/membuf"

// Analyzer implements the bufescape check.
var Analyzer = &analysis.Analyzer{
	Name:      "bufescape",
	Doc:       "flag HBuffer.Bytes()/Raw() views escaping their owning scope (returned, stored, sent, captured, or passed to a retaining function); suppress with //gflink:retains-bytes",
	Run:       run,
	FactTypes: []analysis.Fact{(*Retains)(nil)},
}

func run(pass *analysis.Pass) (interface{}, error) {
	g := analysis.BuildCallGraph(pass)

	// Per-parameter retention, to fixpoint: a later-declared helper's
	// retention must be visible when an earlier function passes its
	// parameter along.
	local := make(map[*types.Func][]bool)
	params := make(map[*types.Func][]*types.Var)
	for _, fi := range g.Decls {
		sig := fi.Obj.Type().(*types.Signature)
		ps := make([]*types.Var, sig.Params().Len())
		for i := range ps {
			ps[i] = sig.Params().At(i)
		}
		params[fi.Obj] = ps
		local[fi.Obj] = make([]bool, len(ps))
	}
	retainsOf := func(fn *types.Func) []bool {
		if r, ok := local[fn]; ok {
			return r
		}
		var fact Retains
		if pass.ImportObjectFact(fn, &fact) {
			return fact.Params
		}
		return nil
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range g.Decls {
			for i, p := range params[fi.Obj] {
				if local[fi.Obj][i] || !isSlice(p.Type()) {
					continue
				}
				esc := trackEscapes(pass, fi.Decl.Body, p, false, retainsOf, false)
				if len(esc) > 0 {
					local[fi.Obj][i] = true
					changed = true
				}
			}
		}
	}
	for _, fi := range g.Decls {
		if anyTrue(local[fi.Obj]) {
			pass.ExportObjectFact(fi.Obj, &Retains{Params: local[fi.Obj]})
		}
	}

	// Diagnose escaping views. Each function literal is scanned as its
	// own scope too: the escape walk stops at literal boundaries (a view
	// captured from outside is one escape, reported at the literal), so
	// views *bound inside* a literal need their own pass.
	for _, f := range pass.Files {
		idx := analysis.DirectiveIndex(pass.Fset, f)
		var bodies []*ast.BlockStmt
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					bodies = append(bodies, n.Body)
				}
			case *ast.FuncLit:
				bodies = append(bodies, n.Body)
			}
			return true
		})
		for _, body := range bodies {
			for _, esc := range trackEscapes(pass, body, nil, true, retainsOf, true) {
				if analysis.DirectiveAt(idx, pass.Fset, "retains-bytes", esc.pos) {
					continue
				}
				pass.Reportf(esc.pos, "zero-copy HBuffer view escapes: %s; the slice aliases pooled pages that are recycled on Free — copy the bytes, or annotate //gflink:retains-bytes with why the buffer outlives this reference", esc.kind)
			}
		}
	}
	return nil, nil
}

// escape is one site where a tracked slice value outlives the frame.
type escape struct {
	pos  token.Pos
	kind string
}

// trackEscapes scans body for escapes of tracked slice values. When
// seed is non-nil the tracked value is that parameter; when viewCalls
// is set, every HBuffer.Bytes()/Raw() call is a tracked value. Local
// aliases (x := v, x := v[a:b]) are tracked transitively. includeReturn
// controls whether returning the value counts (it does for views; a
// function returning its own parameter is the transient-view idiom and
// the caller's problem).
func trackEscapes(pass *analysis.Pass, body *ast.BlockStmt, seed *types.Var, viewCalls bool, retainsOf func(*types.Func) []bool, includeReturn bool) []escape {
	tracked := make(map[types.Object]bool)
	if seed != nil {
		tracked[seed] = true
	}

	// transmits reports whether evaluating e yields a tracked slice (or
	// an alias of one): the identifier itself, a re-slice, a slice
	// conversion, &v[i], a composite literal carrying one, or (for the
	// view analysis) a Bytes()/Raw() call.
	var transmits func(e ast.Expr) bool
	transmits = func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			return tracked[pass.TypesInfo.Uses[e]]
		case *ast.SliceExpr:
			return transmits(e.X)
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if ix, ok := ast.Unparen(e.X).(*ast.IndexExpr); ok {
					return transmits(ix.X) // &v[i] points into the buffer
				}
				return transmits(e.X) // &T{...: v}, &v
			}
			return false
		case *ast.CompositeLit:
			for _, el := range e.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if transmits(el) {
					return true
				}
			}
			return false
		case *ast.CallExpr:
			if viewCalls && isViewCall(pass, e) {
				return true
			}
			// Slice-to-slice conversion aliases; string(v) etc. copy.
			if tv, ok := pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
				if rtv, ok := pass.TypesInfo.Types[e]; ok && isSlice(rtv.Type) {
					return transmits(e.Args[0])
				}
			}
			return false
		}
		return false
	}

	// Grow the tracked set through local aliases until stable.
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			lhss, rhss := assignPairs(n)
			for i := range lhss {
				if !transmits(rhss[i]) {
					continue
				}
				id, ok := ast.Unparen(lhss[i]).(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj != nil && !isGlobal(obj) && !tracked[obj] {
					tracked[obj] = true
					changed = true
				}
			}
			return true
		})
	}

	var out []escape
	add := func(pos token.Pos, kind string) {
		out = append(out, escape{pos: pos, kind: kind})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A tracked value used inside a literal is captured; the
			// closure may run after Free (clock.Go worker, deferred hook).
			captured := false
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && tracked[pass.TypesInfo.Uses[id]] {
					captured = true
				}
				return !captured
			})
			if captured {
				add(n.Pos(), "captured by a function literal that may outlive the buffer")
			}
			return false
		case *ast.SendStmt:
			if transmits(n.Value) {
				add(n.Pos(), "sent on a channel")
			}
		case *ast.ReturnStmt:
			if includeReturn {
				for _, res := range n.Results {
					if transmits(res) {
						add(n.Pos(), "returned to the caller")
						break
					}
				}
			}
		case *ast.CallExpr:
			checkCall(pass, n, transmits, retainsOf, add)
		default:
			lhss, rhss := assignPairs(n)
			for i := range lhss {
				if !transmits(rhss[i]) {
					continue
				}
				if kind, escapes := lvalueKind(pass, lhss[i]); escapes {
					add(rhss[i].Pos(), "stored in "+kind)
				}
			}
		}
		return true
	})

	// Deduplicate per position, in source order.
	sort.Slice(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	dedup := out[:0]
	var last token.Pos = -1
	for _, e := range out {
		if e.pos != last {
			dedup = append(dedup, e)
			last = e.pos
		}
	}
	return dedup
}

// checkCall classifies a call's use of tracked values: appends that
// alias (not element-copy), and arguments to retaining parameters.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, transmits func(ast.Expr) bool, retainsOf func(*types.Func) []bool, add func(token.Pos, string)) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			if b.Name() == "append" {
				for i, a := range call.Args[1:] {
					if call.Ellipsis.IsValid() && 1+i == len(call.Args)-1 {
						continue // append(dst, v...) copies elements
					}
					if transmits(a) {
						add(a.Pos(), "appended to a slice")
					}
				}
			}
			return // copy, len, cap, ... never retain
		}
	}
	callee := analysis.StaticCallee(pass.TypesInfo, call)
	if callee == nil {
		return
	}
	ret := retainsOf(callee)
	if len(ret) == 0 {
		return
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return
	}
	for i, a := range call.Args {
		if !transmits(a) {
			continue
		}
		pi := i
		if sig.Variadic() && pi >= sig.Params().Len()-1 {
			pi = sig.Params().Len() - 1
		}
		if pi < len(ret) && ret[pi] {
			add(a.Pos(), "passed to "+callee.Name()+", which retains that argument")
		}
	}
}

// assignPairs flattens an assignment-like node into (lhs, rhs) pairs.
func assignPairs(n ast.Node) (lhs, rhs []ast.Expr) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		if len(n.Lhs) == len(n.Rhs) {
			return n.Lhs, n.Rhs
		}
	case *ast.ValueSpec:
		if len(n.Names) == len(n.Values) {
			lhs = make([]ast.Expr, len(n.Names))
			for i, id := range n.Names {
				lhs[i] = id
			}
			return lhs, n.Values
		}
	}
	return nil, nil
}

// lvalueKind classifies an assignment target that receives a tracked
// value: anything other than a local variable outlives the frame.
func lvalueKind(pass *analysis.Pass, lhs ast.Expr) (string, bool) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Defs[lhs]
		if obj == nil {
			obj = pass.TypesInfo.Uses[lhs]
		}
		if obj != nil && isGlobal(obj) {
			return "the global variable " + obj.Name(), true
		}
		return "", false // local alias, tracked instead
	case *ast.SelectorExpr:
		return "a struct field", true
	case *ast.IndexExpr:
		return "a slice or map element", true
	case *ast.StarExpr:
		return "a dereferenced pointer", true
	}
	return "", false
}

// isViewCall reports whether call is HBuffer.Bytes() or HBuffer.Raw().
func isViewCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	var fn *types.Func
	if s, ok := pass.TypesInfo.Selections[sel]; ok {
		fn, _ = s.Obj().(*types.Func)
	}
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != membufPath {
		return false
	}
	if fn.Name() != "Bytes" && fn.Name() != "Raw" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	named := sig.Recv().Type()
	if p, ok := named.(*types.Pointer); ok {
		named = p.Elem()
	}
	n, ok := named.(*types.Named)
	return ok && n.Obj().Name() == "HBuffer"
}

func isSlice(t types.Type) bool {
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

func isGlobal(obj types.Object) bool {
	return obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}

func anyTrue(bs []bool) bool {
	for _, b := range bs {
		if b {
			return true
		}
	}
	return false
}
