package suite_test

import (
	"testing"

	"gflink/internal/analysis"
	"gflink/internal/analysis/suite"
)

// TestSuiteHasThirteenAnalyzers pins the suite's composition: the seven
// lexical/interprocedural checks of DESIGN.md "Concurrency & lifetime
// invariants", the four flow-sensitive observability analyzers that
// enforce invariants 8–9 (spanpair, clockflow, counterkey,
// outputpurity), and the two allocation-discipline analyzers that
// enforce invariant 10 (hotalloc, poolsafe).
func TestSuiteHasThirteenAnalyzers(t *testing.T) {
	names := map[string]bool{}
	for _, a := range suite.Analyzers() {
		names[a.Name] = true
	}
	for _, want := range []string{
		"wallclock", "clockgo", "maporder",
		"lockhold", "lockorder",
		"buflifecycle", "bufescape",
		"spanpair", "clockflow", "counterkey", "outputpurity",
		"hotalloc", "poolsafe",
	} {
		if !names[want] {
			t.Errorf("suite is missing analyzer %q", want)
		}
	}
	if len(names) != 13 {
		t.Errorf("suite has %d analyzers, want 13", len(names))
	}
}

// TestSuiteCoversPlanLayer pins the scoping rules to the deferred plan
// layer: every one of the seven analyzers must apply to
// gflink/internal/plan, since the planner's chaining and placement
// passes sit directly on the determinism and buffer-lifecycle
// invariants the suite enforces.
func TestSuiteCoversPlanLayer(t *testing.T) {
	for _, r := range suite.Rules() {
		if r.Applies != nil && !r.Applies("gflink/internal/plan") {
			t.Errorf("analyzer %q does not apply to gflink/internal/plan", r.Analyzer.Name)
		}
	}
}

// TestSuiteCoversObsLayer pins the scoping rules to the observability
// layer: every analyzer must apply to gflink/internal/obs, because obs
// carries invariant #8 — span timestamps come only from the virtual
// clock — and the wallclock analyzer is what enforces it there.
func TestSuiteCoversObsLayer(t *testing.T) {
	for _, r := range suite.Rules() {
		if r.Applies != nil && !r.Applies("gflink/internal/obs") {
			t.Errorf("analyzer %q does not apply to gflink/internal/obs", r.Analyzer.Name)
		}
	}
}

// TestSuiteCoversTransferChannel pins the scoping rules to every
// package the transfer-channel optimization touches: column projection
// (gstruct column sets, the gpu field-use registry and range copies,
// the cost model's projected-H2D estimate) and chunked double-buffered
// pipelining (core's chunked exec path, the workloads/bench drivers).
// All of them sit on the determinism and buffer-lifecycle invariants,
// so every analyzer must apply.
func TestSuiteCoversTransferChannel(t *testing.T) {
	for _, pkg := range []string{
		"gflink/internal/gstruct",
		"gflink/internal/gpu",
		"gflink/internal/core",
		"gflink/internal/costmodel",
		"gflink/internal/workloads",
		"gflink/internal/bench",
	} {
		for _, r := range suite.Rules() {
			if r.Applies != nil && !r.Applies(pkg) {
				t.Errorf("analyzer %q does not apply to %s", r.Analyzer.Name, pkg)
			}
		}
	}
}

// TestRepositoryIsClean runs the full gflink-vet suite over the module
// (test files included), so `go test ./...` fails the moment a
// determinism, lock-discipline or buffer-lifecycle violation lands.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source; skipped in -short mode")
	}
	l, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analysis.Run(l, []string{l.ModulePath() + "/..."}, suite.Rules())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
