// Package suite assembles the gflink-vet analyzer suite and its
// package-scoping rules, shared by cmd/gflink-vet and the self-check
// test that keeps the repository clean.
package suite

import (
	"gflink/internal/analysis"
	"gflink/internal/analysis/buflifecycle"
	"gflink/internal/analysis/clockgo"
	"gflink/internal/analysis/lockhold"
	"gflink/internal/analysis/wallclock"
)

// Rules returns the production analyzer suite.
//
//   - wallclock and clockgo guard every simulator package under
//     gflink/internal (the public API and examples only assemble
//     configurations, but the internal packages are where virtual time
//     lives).
//   - lockhold is exempt in internal/vclock itself: the primitives'
//     implementation necessarily manipulates the clock's own mutex
//     around the park/wake protocol.
//   - buflifecycle runs module-wide except internal/membuf, which
//     constructs and destroys HBuffers by definition.
func Rules() []analysis.Rule {
	internal := analysis.Under("gflink/internal")
	return []analysis.Rule{
		{Analyzer: wallclock.Analyzer, Applies: internal},
		{Analyzer: clockgo.Analyzer, Applies: internal},
		{Analyzer: lockhold.Analyzer, Applies: analysis.Except(internal, "gflink/internal/vclock")},
		{Analyzer: buflifecycle.Analyzer, Applies: analysis.Except(nil, "gflink/internal/membuf")},
	}
}

// Analyzers returns the suite's analyzers in rule order.
func Analyzers() []*analysis.Analyzer {
	var as []*analysis.Analyzer
	for _, r := range Rules() {
		as = append(as, r.Analyzer)
	}
	return as
}
