// Package suite assembles the gflink-vet analyzer suite and its
// package-scoping rules, shared by cmd/gflink-vet and the self-check
// test that keeps the repository clean.
package suite

import (
	"gflink/internal/analysis"
	"gflink/internal/analysis/bufescape"
	"gflink/internal/analysis/buflifecycle"
	"gflink/internal/analysis/clockflow"
	"gflink/internal/analysis/clockgo"
	"gflink/internal/analysis/counterkey"
	"gflink/internal/analysis/hotalloc"
	"gflink/internal/analysis/lockhold"
	"gflink/internal/analysis/lockorder"
	"gflink/internal/analysis/maporder"
	"gflink/internal/analysis/outputpurity"
	"gflink/internal/analysis/poolsafe"
	"gflink/internal/analysis/spanpair"
	"gflink/internal/analysis/wallclock"
)

// Rules returns the production analyzer suite.
//
//   - wallclock, clockgo and maporder guard every simulator package
//     under gflink/internal (the public API and examples only assemble
//     configurations, but the internal packages are where virtual time
//     and result ordering live).
//   - lockhold and lockorder are exempt in internal/vclock itself: the
//     primitives' implementation necessarily manipulates the clock's
//     own mutex around the park/wake protocol, and its ordering is the
//     scheduler's concern, not the lock graph's.
//   - buflifecycle and bufescape run module-wide except internal/membuf,
//     which constructs, destroys, and aliases HBuffer storage by
//     definition.
//   - the flow-sensitive observability analyzers (spanpair, clockflow,
//     counterkey, outputpurity) run module-wide: they fire only on
//     calls into the obs/core recording APIs or on //gflink:gated
//     code, so an unrestricted scope costs nothing outside those and
//     catches misuse wherever it appears (clockflow and counterkey
//     skip _test.go files themselves — fixtures pin literal
//     timestamps and probe counters by design).
//   - the allocation-discipline analyzers (hotalloc, poolsafe) run
//     module-wide too: they fire only on //gflink:hotpath and
//     //gflink:pool annotations (invariant 10), so unannotated
//     packages cost nothing.
//
// maporder, lockorder, bufescape, clockflow, counterkey, hotalloc and
// poolsafe carry fact types, so the driver also runs them over
// module-internal dependencies of the requested packages (facts only)
// before analyzing the targets.
func Rules() []analysis.Rule {
	internal := analysis.Under("gflink/internal")
	return []analysis.Rule{
		{Analyzer: wallclock.Analyzer, Applies: internal},
		{Analyzer: clockgo.Analyzer, Applies: internal},
		{Analyzer: maporder.Analyzer, Applies: internal},
		{Analyzer: lockhold.Analyzer, Applies: analysis.Except(internal, "gflink/internal/vclock")},
		{Analyzer: lockorder.Analyzer, Applies: analysis.Except(nil, "gflink/internal/vclock")},
		{Analyzer: buflifecycle.Analyzer, Applies: analysis.Except(nil, "gflink/internal/membuf")},
		{Analyzer: bufescape.Analyzer, Applies: analysis.Except(nil, "gflink/internal/membuf")},
		{Analyzer: spanpair.Analyzer},
		{Analyzer: clockflow.Analyzer},
		{Analyzer: counterkey.Analyzer},
		{Analyzer: outputpurity.Analyzer},
		{Analyzer: hotalloc.Analyzer},
		{Analyzer: poolsafe.Analyzer},
	}
}

// Analyzers returns the suite's analyzers in rule order.
func Analyzers() []*analysis.Analyzer {
	var as []*analysis.Analyzer
	for _, r := range Rules() {
		as = append(as, r.Analyzer)
	}
	return as
}
