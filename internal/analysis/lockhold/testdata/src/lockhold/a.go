// Fixture for the lockhold analyzer: blocking vclock primitives under a
// held sync.Mutex are flagged; the same calls after Unlock, or inside a
// spawned function literal, are not.
package lockhold

import (
	"sync"

	"gflink/internal/membuf"
	"gflink/internal/vclock"
)

type mgr struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	clk *vclock.Clock
	q   *vclock.Queue[int]
	sem *vclock.Semaphore
	ev  *vclock.Event
}

func (m *mgr) badQueue() {
	m.mu.Lock()
	m.q.Get() // want `\(vclock\.Queue\)\.Get may block the virtual clock while m\.mu is held`
	m.mu.Unlock()
}

func (m *mgr) badDeferredUnlock() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sem.Acquire(1) // want `\(vclock\.Semaphore\)\.Acquire may block`
}

func (m *mgr) badSleep() {
	m.mu.Lock()
	m.clk.Sleep(5) // want `\(vclock\.Clock\)\.Sleep may block`
	m.mu.Unlock()
}

func (m *mgr) badRLock() {
	m.rw.RLock()
	m.ev.Wait() // want `\(vclock\.Event\)\.Wait may block`
	m.rw.RUnlock()
}

func (m *mgr) badPin(b *membuf.HBuffer) {
	m.mu.Lock()
	b.Pin() // want `\(membuf\.HBuffer\)\.Pin may block`
	m.mu.Unlock()
}

func (m *mgr) goodAfterUnlock() {
	m.mu.Lock()
	n := m.q.Len()
	m.mu.Unlock()
	if n == 0 {
		m.q.Get()
	}
	m.sem.Acquire(1)
	m.clk.Sleep(5)
}

func (m *mgr) goodSpawned() {
	m.mu.Lock()
	m.clk.Go("worker", func() {
		m.q.Get() // runs as its own process, not under the caller's lock
	})
	m.mu.Unlock()
}

func (m *mgr) goodNonBlockingUnderLock() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if v, ok := m.q.TryGet(); ok {
		_ = v
	}
	m.sem.Release(1)
	m.ev.Set()
}
