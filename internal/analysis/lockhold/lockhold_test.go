package lockhold_test

import (
	"testing"

	"gflink/internal/analysis/analysistest"
	"gflink/internal/analysis/lockhold"
)

func TestLockHold(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockhold.Analyzer, "lockhold")
}
