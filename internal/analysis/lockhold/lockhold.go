// Package lockhold flags calls to blocking vclock primitives made while
// a sync.Mutex (or sync.RWMutex) is held.
//
// This is the one deadlock class the race detector and `go test -race`
// cannot see: under the virtual clock, a process that blocks on
// Queue.Get / Semaphore.Acquire / Clock.Sleep while holding a mutex
// prevents the process that would wake it from ever taking that mutex
// — but because the clock serializes execution, the schedule that
// triggers it may never occur on the test machine while occurring
// deterministically on another. GStreamManager and GMemoryManager are
// written to release mu before touching any blocking primitive; this
// analyzer keeps it that way.
//
// The analysis is intraprocedural and syntactic: within one function
// body it tracks mutexes between X.Lock() and X.Unlock() (matched by
// the receiver's expression text) in source order, treating a deferred
// Unlock as holding the lock to function exit. Function literals get a
// fresh lock state: their bodies run on other processes (clock.Go) or
// after the lock is released, and charging them with the enclosing
// lock set would flag the common worker-spawn idiom.
package lockhold

import (
	"go/ast"
	"go/types"

	"gflink/internal/analysis"
)

// Analyzer implements the lockhold check.
var Analyzer = &analysis.Analyzer{
	Name: "lockhold",
	Doc:  "flag blocking vclock primitives (Queue.Get, Semaphore.Acquire, Clock.Sleep, Event.Wait, ...) called while a sync mutex is held",
	Run:  run,
}

// blocking maps package path -> receiver type name -> methods that can
// park the calling process on the virtual clock.
var blocking = map[string]map[string]map[string]bool{
	"gflink/internal/vclock": {
		"Clock":     {"Sleep": true, "Run": true},
		"Queue":     {"Get": true},
		"Semaphore": {"Acquire": true, "Use": true},
		"Event":     {"Wait": true},
		"Group":     {"Wait": true},
	},
	// HBuffer.Pin charges the page-registration cost with Clock.Sleep,
	// so it is transitively blocking.
	"gflink/internal/membuf": {
		"HBuffer": {"Pin": true},
	},
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkBody(pass, n.Body)
				}
				return false
			case *ast.FuncLit:
				// Top-level function literals (package var initializers).
				checkBody(pass, n.Body)
				return false
			}
			return true
		})
	}
	return nil, nil
}

// checkBody scans one function body in source order, tracking the set
// of held mutexes and reporting blocking calls made under any of them.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	held := make(map[string]ast.Node) // receiver text -> Lock call
	order := []string{}               // acquisition order for stable messages
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkBody(pass, n.Body)
			return false
		case *ast.DeferStmt:
			// defer mu.Unlock() keeps the lock to function exit; any
			// other deferred call is scanned for nested literals only.
			if _, _, ok := mutexOp(pass, n.Call); ok {
				return false
			}
			return true
		case *ast.CallExpr:
			if recv, op, ok := mutexOp(pass, n); ok {
				switch op {
				case "Lock", "RLock":
					if _, dup := held[recv]; !dup {
						held[recv] = n
						order = append(order, recv)
					}
				case "Unlock", "RUnlock":
					if _, ok := held[recv]; ok {
						delete(held, recv)
						for i, r := range order {
							if r == recv {
								order = append(order[:i], order[i+1:]...)
								break
							}
						}
					}
				}
				return true
			}
			if len(held) > 0 {
				if desc, ok := blockingCall(pass, n); ok {
					recv := order[len(order)-1]
					pass.Reportf(n.Pos(), "%s may block the virtual clock while %s is held (locked at line %d); release the mutex before calling blocking vclock primitives", desc, recv, pass.Position(held[recv].Pos()).Line)
				}
			}
		}
		return true
	})
}

// mutexOp reports whether call is a Lock/Unlock/RLock/RUnlock on a
// sync.Mutex or sync.RWMutex, returning the receiver's expression text
// and the method name.
func mutexOp(pass *analysis.Pass, call *ast.CallExpr) (recv, op string, ok bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	fn := calleeFunc(pass, sel)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
		return types.ExprString(sel.X), fn.Name(), true
	}
	return "", "", false
}

// blockingCall reports whether call parks the process on the virtual
// clock, returning a printable description of the callee.
func blockingCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn := calleeFunc(pass, sel)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	byType, ok := blocking[fn.Pkg().Path()]
	if !ok {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	named := namedRecv(sig.Recv().Type())
	if named == nil {
		return "", false
	}
	if byType[named.Obj().Name()][fn.Name()] {
		return "(" + fn.Pkg().Name() + "." + named.Obj().Name() + ")." + fn.Name(), true
	}
	return "", false
}

// calleeFunc resolves the method a selector call binds to.
func calleeFunc(pass *analysis.Pass, sel *ast.SelectorExpr) *types.Func {
	if s, ok := pass.TypesInfo.Selections[sel]; ok {
		if fn, ok := s.Obj().(*types.Func); ok {
			return fn
		}
		return nil
	}
	// Package-qualified call (pkg.Func) or method expression.
	if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok {
		return fn
	}
	return nil
}

// namedRecv unwraps a receiver type to its named type.
func namedRecv(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n
	}
	return nil
}
