// Package buflifecycle checks membuf.HBuffer ownership discipline.
//
// The paper's GMemoryManager "allocates and releases buffers
// automatically" and owns each buffer's lifetime exactly once
// (Section 4.1.2); membuf mirrors that with a panic on double Free and
// pool accounting that only balances when every Allocate is matched by
// exactly one Free. A leaked HBuffer is invisible to Go's GC story —
// the pages stay charged against the pool until the off-heap budget
// spuriously exhausts, which is precisely the failure mode that makes
// off-heap memory management hard (see "Garbage Collection or
// Serialization?" in PAPERS.md).
//
// The check is intraprocedural and ownership-based. Within each
// top-level function it finds Pool.Allocate / Pool.MustAllocate results
// bound to local variables and requires each to reach one of:
//
//   - a Free() call (directly, deferred, or inside a nested function
//     literal — workers commonly free in a clock.Go closure), or
//   - an ownership transfer: the buffer is returned, passed to another
//     function, stored into a field, slice, map or channel, or aliased
//     to another variable. Transfers hand lifetime to someone else and
//     end this function's responsibility.
//
// Results discarded outright (assigned to _, or an unused call result)
// are always leaks. A transfer that the analyzer cannot see (for
// example handing raw bytes whose owner keeps the HBuffer alive
// elsewhere) can be documented with //gflink:owns-buffer on the
// allocation line or the line above.
//
// Additionally, Pin() on a buffer that is never Unpinned, Freed or
// transferred in the same function is flagged: pinned pages are
// excluded from cache reclaim, so a forgotten Unpin permanently shrinks
// the evictable region.
package buflifecycle

import (
	"go/ast"
	"go/types"

	"gflink/internal/analysis"
)

// Analyzer implements the buflifecycle check.
var Analyzer = &analysis.Analyzer{
	Name: "buflifecycle",
	Doc:  "flag membuf Pool.Allocate/MustAllocate results that can leak (no Free and no ownership transfer) and Pin calls with no Unpin/Free (suppress with //gflink:owns-buffer)",
	Run:  run,
}

const membufPath = "gflink/internal/membuf"

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		idx := analysis.DirectiveIndex(pass.Fset, f)
		parents := parentMap(f)
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			checkFunc(pass, idx, parents, fd.Body)
			return false
		})
	}
	return nil, nil
}

// checkFunc audits one top-level function body. Nested function
// literals are scanned as part of the enclosing function: a Free inside
// a spawned closure still releases the allocation made outside it.
func checkFunc(pass *analysis.Pass, idx map[string]map[int]bool, parents map[ast.Node]ast.Node, body *ast.BlockStmt) {
	type allocSite struct {
		call *ast.CallExpr
		name string // Allocate or MustAllocate
		obj  *types.Var
	}
	var allocs []allocSite
	pins := make(map[*types.Var]*ast.CallExpr) // first Pin site per buffer

	// Pass 1: collect allocation and Pin sites.
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := allocCall(pass, call); ok {
			site := allocSite{call: call, name: name}
			if v := boundVar(pass, parents, call); v != nil {
				site.obj = v
			} else if transferContext(parents, call) {
				// pool.MustAllocate(...) used directly as an argument,
				// return value, or stored somewhere: ownership moved at
				// the call site.
				return true
			}
			allocs = append(allocs, site)
			return true
		}
		if recv, method := bufferMethod(pass, call); recv != nil && method == "Pin" {
			if _, seen := pins[recv]; !seen {
				pins[recv] = call
			}
		}
		return true
	})

	// Pass 2: classify every use of each tracked buffer variable.
	freed := make(map[*types.Var]bool)
	unpinned := make(map[*types.Var]bool)
	transferred := make(map[*types.Var]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		tracked := false
		for _, a := range allocs {
			if a.obj == obj {
				tracked = true
				break
			}
		}
		if _, pinTracked := pins[obj]; !tracked && !pinTracked {
			return true
		}
		switch use := classifyUse(parents, id); use {
		case "Free":
			freed[obj] = true
		case "Unpin":
			unpinned[obj] = true
		case "read":
			// Bytes, Raw, Size, Pinned, ... — neutral.
		case "transfer":
			transferred[obj] = true
		}
		return true
	})

	for _, a := range allocs {
		if analysis.DirectiveAt(idx, pass.Fset, "owns-buffer", a.call.Pos()) {
			continue
		}
		if a.obj == nil {
			pass.Reportf(a.call.Pos(), "result of Pool.%s is discarded; the HBuffer leaks pool pages until off-heap exhaustion", a.name)
			continue
		}
		if !freed[a.obj] && !transferred[a.obj] {
			pass.Reportf(a.call.Pos(), "HBuffer %q from Pool.%s is never freed or transferred in this function; call Free, or annotate the transfer with //gflink:owns-buffer", a.obj.Name(), a.name)
		}
	}
	for obj, pin := range pins {
		if analysis.DirectiveAt(idx, pass.Fset, "owns-buffer", pin.Pos()) {
			continue
		}
		if !unpinned[obj] && !freed[obj] && !transferred[obj] {
			pass.Reportf(pin.Pos(), "HBuffer %q is pinned but never unpinned, freed or transferred in this function; pinned pages are excluded from cache reclaim", obj.Name())
		}
	}
}

// allocCall reports whether call is Pool.Allocate or Pool.MustAllocate.
func allocCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok {
		return "", false
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != membufPath {
		return "", false
	}
	if fn.Name() != "Allocate" && fn.Name() != "MustAllocate" {
		return "", false
	}
	if recv := recvName(fn); recv != "Pool" {
		return "", false
	}
	return fn.Name(), true
}

// bufferMethod resolves a call of the form v.Method() where v is an
// identifier of type *membuf.HBuffer, returning its variable and the
// method name.
func bufferMethod(pass *analysis.Pass, call *ast.CallExpr) (*types.Var, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil, ""
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || !isHBuffer(v.Type()) {
		return nil, ""
	}
	return v, sel.Sel.Name
}

func isHBuffer(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == membufPath && n.Obj().Name() == "HBuffer"
}

func recvName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// boundVar returns the local variable an allocation call's buffer
// result is bound to, or nil when discarded or used inline.
func boundVar(pass *analysis.Pass, parents map[ast.Node]ast.Node, call *ast.CallExpr) *types.Var {
	asg, ok := parents[call].(*ast.AssignStmt)
	if !ok || len(asg.Rhs) != 1 || asg.Rhs[0] != ast.Expr(call) || len(asg.Lhs) == 0 {
		return nil
	}
	// Allocate returns (buf, err); MustAllocate returns buf. Either
	// way, the buffer is the first LHS element.
	id, ok := asg.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// transferContext reports whether an inline (unbound) allocation call
// hands the buffer off: used as a call argument, returned, or placed
// into a composite value.
func transferContext(parents map[ast.Node]ast.Node, call *ast.CallExpr) bool {
	switch p := parents[call].(type) {
	case *ast.CallExpr:
		return p.Fun != ast.Expr(call) // argument position
	case *ast.ReturnStmt, *ast.CompositeLit, *ast.KeyValueExpr, *ast.SendStmt:
		return true
	case *ast.AssignStmt:
		// boundVar already claimed single-RHS bindings to plain
		// variables; what remains is either an explicit discard (a
		// leak) or a store into a field/index/deref (a transfer).
		for i, r := range p.Rhs {
			if r != ast.Expr(call) {
				continue
			}
			if i < len(p.Lhs) {
				if id, ok := p.Lhs[i].(*ast.Ident); ok {
					return id.Name != "_"
				}
			}
			return true
		}
		return false
	case *ast.SelectorExpr:
		// pool.MustAllocate(n).Something() — method chain; the receiver
		// is still unowned, so not a transfer.
		return false
	}
	return false
}

// classifyUse decides what one identifier occurrence does with the
// buffer it names.
func classifyUse(parents map[ast.Node]ast.Node, id *ast.Ident) string {
	sel, ok := parents[id].(*ast.SelectorExpr)
	if ok && sel.X == ast.Expr(id) {
		if call, ok := parents[sel].(*ast.CallExpr); ok && call.Fun == ast.Expr(sel) {
			switch sel.Sel.Name {
			case "Free":
				return "Free"
			case "Unpin":
				return "Unpin"
			default:
				return "read"
			}
		}
		// Method value (b.Free passed around): treat as transfer.
		return "transfer"
	}
	switch p := parents[id].(type) {
	case *ast.AssignStmt:
		for _, l := range p.Lhs {
			if l == ast.Expr(id) {
				// Reassignment target; not a use of the old value.
				return "read"
			}
		}
		return "transfer" // aliased into another variable
	case *ast.ValueSpec:
		return "transfer"
	case *ast.CallExpr:
		if p.Fun == ast.Expr(id) {
			return "read" // calling a func-typed variable named id (not a buffer)
		}
		return "transfer" // argument
	case *ast.ReturnStmt, *ast.CompositeLit, *ast.KeyValueExpr, *ast.SendStmt,
		*ast.IndexExpr, *ast.UnaryExpr:
		return "transfer"
	}
	return "read"
}

// parentMap records each node's syntactic parent.
func parentMap(f *ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
