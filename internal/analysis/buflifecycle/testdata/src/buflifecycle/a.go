// Fixture for the buflifecycle analyzer: HBuffers must reach Free or a
// visible ownership transfer; Pin must pair with Unpin/Free/transfer.
package buflifecycle

import (
	"gflink/internal/membuf"
	"gflink/internal/vclock"
)

type holder struct {
	buf *membuf.HBuffer
}

func leak(p *membuf.Pool) {
	b := p.MustAllocate(64) // want `HBuffer "b" from Pool\.MustAllocate is never freed or transferred`
	_ = b.Bytes()
}

func leakAllocate(p *membuf.Pool) error {
	b, err := p.Allocate(64) // want `HBuffer "b" from Pool\.Allocate is never freed or transferred`
	if err != nil {
		return err
	}
	_ = b.Size()
	return nil
}

func discard(p *membuf.Pool) {
	_ = p.MustAllocate(64) // want `result of Pool\.MustAllocate is discarded`
	p.MustAllocate(128)    // want `result of Pool\.MustAllocate is discarded`
}

func pinLeak(b *membuf.HBuffer) {
	b.Pin() // want `HBuffer "b" is pinned but never unpinned, freed or transferred`
	_ = b.Bytes()
}

func okFree(p *membuf.Pool) {
	b := p.MustAllocate(64)
	_ = b.Bytes()
	b.Free()
}

func okDeferFree(p *membuf.Pool) {
	b := p.MustAllocate(64)
	defer b.Free()
	_ = b.Raw()
}

func okReturn(p *membuf.Pool) (*membuf.HBuffer, error) {
	b, err := p.Allocate(64)
	if err != nil {
		return nil, err
	}
	return b, nil
}

func okFieldStore(p *membuf.Pool, h *holder) {
	h.buf = p.MustAllocate(64)
}

func okPassedOn(p *membuf.Pool, sink func(*membuf.HBuffer)) {
	b := p.MustAllocate(64)
	sink(b)
}

func okAppended(p *membuf.Pool, bufs []*membuf.HBuffer) []*membuf.HBuffer {
	b := p.MustAllocate(64)
	return append(bufs, b)
}

func okInlineArg(p *membuf.Pool, sink func(*membuf.HBuffer)) {
	sink(p.MustAllocate(64))
}

func okFreedInClosure(c *vclock.Clock, p *membuf.Pool) {
	b := p.MustAllocate(64)
	c.Go("consumer", func() {
		_ = b.Bytes()
		b.Free()
	})
}

func okDirective(p *membuf.Pool) []byte {
	//gflink:owns-buffer -- the caller's registry keeps the buffer alive
	b := p.MustAllocate(64)
	return b.Bytes()
}

func okPinUnpin(b *membuf.HBuffer) {
	b.Pin()
	defer b.Unpin()
	_ = b.Bytes()
}

func okPinThenFree(p *membuf.Pool) {
	b := p.MustAllocate(64)
	b.Pin()
	b.Free()
}
