package buflifecycle_test

import (
	"testing"

	"gflink/internal/analysis/analysistest"
	"gflink/internal/analysis/buflifecycle"
)

func TestBufLifecycle(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), buflifecycle.Analyzer, "buflifecycle")
}
