// Fixture for the spanpair analyzer: every Tracer.Begin must reach an
// OpenSpan.End (or visibly transfer ownership) on all paths out.
package spanpair

import (
	"time"

	"gflink/internal/obs"
)

func straightLine(tr *obs.Tracer, t0, t1 time.Duration) {
	s := tr.Begin("driver", "plan", "ok", t0)
	s.End(t1)
}

func discarded(tr *obs.Tracer, t0 time.Duration) {
	tr.Begin("driver", "plan", "dropped", t0) // want `not ended on every path`
}

func earlyReturnLeak(tr *obs.Tracer, t0, t1 time.Duration, fail bool) {
	s := tr.Begin("driver", "plan", "leaky", t0) // want `not ended on every path`
	if fail {
		return // leaks s
	}
	s.End(t1)
}

func earlyReturnClosed(tr *obs.Tracer, t0, t1 time.Duration, fail bool) {
	s := tr.Begin("driver", "plan", "ok", t0)
	if fail {
		s.End(t1)
		return
	}
	s.End(t1)
}

func branchJoin(tr *obs.Tracer, t0, t1 time.Duration, c bool) {
	s := tr.Begin("driver", "plan", "ok", t0)
	if c {
		s.End(t1)
	} else {
		s.End(t1 + 1)
	}
}

func oneBranchOnly(tr *obs.Tracer, t0, t1 time.Duration, c bool) {
	s := tr.Begin("driver", "plan", "half", t0) // want `not ended on every path`
	if c {
		s.End(t1)
	}
}

func panicLeak(tr *obs.Tracer, t0, t1 time.Duration, c bool) {
	s := tr.Begin("driver", "plan", "boom", t0) // want `not ended on every path`
	if c {
		panic("abort") // leaks s: no defer covers the panic exit
	}
	s.End(t1)
}

func deferClosure(tr *obs.Tracer, t0 time.Duration, clock func() time.Duration, c bool) {
	s := tr.Begin("driver", "plan", "ok", t0)
	defer func() { s.End(clock()) }()
	if c {
		panic("abort") // covered: the deferred closure ends s
	}
}

func deferDirect(tr *obs.Tracer, t0, t1 time.Duration, c bool) {
	s := tr.Begin("driver", "plan", "ok", t0)
	defer s.End(t1)
	if c {
		return
	}
}

func loopPerIteration(tr *obs.Tracer, clock func() time.Duration, n int) {
	for i := 0; i < n; i++ {
		s := tr.Begin("driver", "iter", "ok", clock())
		s.End(clock())
	}
}

func loopLeakOnBreak(tr *obs.Tracer, clock func() time.Duration, n int) {
	for i := 0; i < n; i++ {
		s := tr.Begin("driver", "iter", "leaky", clock()) // want `not ended on every path`
		if i == 3 {
			break // leaks this iteration's span
		}
		s.End(clock())
	}
}

func ownershipTransfer(tr *obs.Tracer, t0 time.Duration, sink func(*obs.OpenSpan)) {
	s := tr.Begin("driver", "plan", "handed-off", t0)
	sink(s) // ownership moved: the callee must end it
}

func returnedHandle(tr *obs.Tracer, t0 time.Duration) *obs.OpenSpan {
	s := tr.Begin("driver", "plan", "caller-owned", t0)
	return s
}

func nilCheckIsNotAnEscape(tr *obs.Tracer, t0, t1 time.Duration) {
	s := tr.Begin("driver", "plan", "checked", t0) // want `not ended on every path`
	if s == nil {
		return
	}
	_ = s != nil
}

func reassignedLeaks(tr *obs.Tracer, t0, t1 time.Duration) {
	s := tr.Begin("driver", "plan", "first", t0) // want `not ended on every path`
	s = tr.Begin("driver", "plan", "second", t0)
	s.End(t1)
}

func suppressed(tr *obs.Tracer, t0, t1 time.Duration, c bool) {
	//gflink:span-escapes -- ended by a background recorder the analysis cannot see
	s := tr.Begin("driver", "plan", "waived", t0)
	if c {
		s.End(t1)
	}
}

func insideClosure(tr *obs.Tracer, clock func() time.Duration, c bool) func() {
	return func() {
		s := tr.Begin("driver", "cb", "leaky", clock()) // want `not ended on every path`
		if c {
			s.End(clock())
		}
	}
}

func closureOK(tr *obs.Tracer, clock func() time.Duration) func() {
	return func() {
		s := tr.Begin("driver", "cb", "ok", clock())
		s.End(clock())
	}
}
