// Package spanpair proves that every span opened with
// (*obs.Tracer).Begin is closed with (*obs.OpenSpan).End on every path
// out of the opening function — early returns, panic exits and loop
// back edges included.
//
// An OpenSpan records nothing until End runs, so a leaked handle is a
// silent hole in the trace: the run looks complete, diffs clean against
// itself, and only a cross-run comparison against a fixed span count
// notices the loss. That failure mode is exactly what regression tests
// are bad at (the missing span is on the error path the test didn't
// take), and exactly what an all-paths dataflow analysis is good at.
//
// The analysis is a forward may-problem over the function's CFG: a
// Begin call assigned to a trackable local generates an "open" fact;
// the fact is killed by an End call on that handle, by a defer that
// ends it (directly or from a deferred closure — covering both the
// return and panic exits), or by any ownership transfer (the handle is
// passed to a call, returned, stored, or copied — whoever received it
// is now responsible). A fact still live at the function's exit or
// panic block is reported at the Begin site. Handles the analysis
// cannot track (address-taken, assigned from nested closures) are
// trusted. Nil-checks (s == nil, s != nil) neither close nor transfer.
//
// Suppress with //gflink:span-escapes on the Begin line when ownership
// genuinely leaves through a path the analysis cannot see.
package spanpair

import (
	"go/ast"
	"go/token"
	"go/types"

	"gflink/internal/analysis"
)

// Analyzer implements the spanpair check.
var Analyzer = &analysis.Analyzer{
	Name: "spanpair",
	Doc:  "every obs.Tracer.Begin must reach a matching OpenSpan.End (or visibly transfer ownership) on all paths out of the function",
	Run:  run,
}

const obsPath = "gflink/internal/obs"

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		idx := analysis.DirectiveIndex(pass.Fset, f)
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, idx, fd.Body, fd.Recv, fd.Type)
		}
		// Function literals are separate functions: a Begin inside a
		// closure must be closed by the closure (or escape from it).
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				checkFunc(pass, idx, lit.Body, nil, lit.Type)
			}
			return true
		})
	}
	return nil, nil
}

// isBeginCall reports whether call is (*obs.Tracer).Begin.
func isBeginCall(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.StaticCallee(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == obsPath &&
		analysis.ObjectKey(fn) == "Tracer.Begin"
}

// endReceiver returns the receiver identifier of an (*obs.OpenSpan).End
// call, or nil.
func endReceiver(info *types.Info, call *ast.CallExpr) *ast.Ident {
	fn := analysis.StaticCallee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != obsPath ||
		analysis.ObjectKey(fn) != "OpenSpan.End" {
		return nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	id, _ := ast.Unparen(sel.X).(*ast.Ident)
	return id
}

func checkFunc(pass *analysis.Pass, idx map[string]map[int]bool, body *ast.BlockStmt, recv *ast.FieldList, ftype *ast.FuncType) {
	info := pass.TypesInfo
	cfg := analysis.BuildCFG(info, body)
	rd := analysis.NewReachingDefs(info, cfg, recv, ftype)

	// Span facts: one per Begin call whose result lands in a trackable
	// local. Begin results that are immediately discarded are reported
	// outright; results that flow anywhere else (args, returns, fields)
	// are an ownership transfer and trusted.
	type span struct {
		def  *analysis.Def
		call *ast.CallExpr
	}
	var spans []span
	spanID := make(map[*analysis.Def]int)
	for _, blk := range cfg.Blocks {
		for _, n := range blk.Nodes {
			collectSpanDefs(info, rd, n, func(d *analysis.Def, call *ast.CallExpr) {
				if _, seen := spanID[d]; seen {
					return
				}
				spanID[d] = len(spans)
				spans = append(spans, span{def: d, call: call})
			})
			// A Begin whose result is discarded leaks immediately.
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := ast.Unparen(es.X).(*ast.CallExpr); ok && isBeginCall(info, call) {
					report(pass, idx, call)
				}
			}
		}
	}
	if len(spans) == 0 {
		return
	}

	// kills resolves, for one node, which span facts it closes or
	// transfers. Evaluated inside the transfer function so the result
	// respects each path's reaching definitions.
	kills := func(n ast.Node, live []bool) {
		nilCmp := nilComparisonIdents(n)
		ast.Inspect(n, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if recvID := endReceiver(info, call); recvID != nil {
					for _, d := range rd.DefsAt(recvID) {
						if id, ok := spanID[d]; ok {
							live[id] = false
						}
					}
					// The receiver is consumed; don't double-count it
					// as an escape below. Skipping the Fun subtree is
					// enough: arguments are still inspected.
					for _, a := range call.Args {
						ast.Inspect(a, func(n ast.Node) bool { return escapeVisit(n, rd, spanID, nilCmp, live) })
					}
					return false
				}
			}
			return escapeVisit(n, rd, spanID, nilCmp, live)
		})
		// An End inside any nested closure covers the variable for the
		// whole function: deferred closures run on return and panic,
		// and callback closures transfer ownership out of this flow.
		ast.Inspect(n, func(n ast.Node) bool {
			lit, ok := n.(*ast.FuncLit)
			if !ok {
				return true
			}
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				recvID := endReceiver(info, call)
				if recvID == nil {
					return true
				}
				v, _ := info.Uses[recvID].(*types.Var)
				if v == nil {
					return true
				}
				for d, id := range spanID {
					if d.Var == v {
						live[id] = false
					}
				}
				return true
			})
			return false
		})
	}

	boundary := make([]bool, len(spans))
	in, _ := analysis.Solve(cfg, analysis.FlowProblem[[]bool]{
		Dir:      analysis.Forward,
		Boundary: boundary,
		Init:     func() []bool { return make([]bool, len(spans)) },
		Meet: func(a, b []bool) []bool {
			m := make([]bool, len(a))
			for i := range a {
				m[i] = a[i] || b[i]
			}
			return m
		},
		Transfer: func(blk *analysis.Block, in []bool) []bool {
			live := append([]bool(nil), in...)
			for _, n := range blk.Nodes {
				kills(n, live)
				collectSpanDefs(info, rd, n, func(d *analysis.Def, _ *ast.CallExpr) {
					if id, ok := spanID[d]; ok {
						live[id] = true
					}
				})
			}
			return live
		},
		Equal: func(a, b []bool) bool {
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
			return true
		},
	})

	leaked := make([]bool, len(spans))
	for _, exit := range []*analysis.Block{cfg.Exit, cfg.Panic} {
		for i, open := range in[exit] {
			if open {
				leaked[i] = true
			}
		}
	}
	for i, s := range spans {
		if leaked[i] {
			report(pass, idx, s.call)
		}
	}
}

// collectSpanDefs finds definitions of trackable locals whose RHS is a
// Begin call.
func collectSpanDefs(info *types.Info, rd *analysis.ReachingDefs, n ast.Node, fn func(*analysis.Def, *ast.CallExpr)) {
	assign, ok := n.(*ast.AssignStmt)
	if !ok || (assign.Tok != token.ASSIGN && assign.Tok != token.DEFINE) {
		return
	}
	for i, l := range assign.Lhs {
		id, ok := ast.Unparen(l).(*ast.Ident)
		if !ok || i >= len(assign.Rhs) {
			continue
		}
		call, ok := ast.Unparen(assign.Rhs[i]).(*ast.CallExpr)
		if !ok || !isBeginCall(info, call) {
			continue
		}
		v := defVar(info, id)
		if v == nil || !rd.Tracked(v) {
			continue
		}
		for _, d := range rd.Defs(v) {
			if d.Node == n && d.RHS != nil && ast.Unparen(d.RHS) == call {
				fn(d, call)
			}
		}
	}
}

// escapeVisit kills span facts whose variable is used in any ownership-
// transferring position: everything except an End receiver (handled by
// the caller) and nil comparisons. Returns false to stop descending.
func escapeVisit(n ast.Node, rd *analysis.ReachingDefs, spanID map[*analysis.Def]int, nilCmp map[*ast.Ident]bool, live []bool) bool {
	if _, ok := n.(*ast.FuncLit); ok {
		return false // closures are checked separately
	}
	id, ok := n.(*ast.Ident)
	if !ok || nilCmp[id] {
		return true
	}
	for _, d := range rd.DefsAt(id) {
		if sid, ok := spanID[d]; ok {
			live[sid] = false
		}
	}
	return true
}

// nilComparisonIdents collects identifiers compared against nil within
// n: those uses neither close nor transfer a span.
func nilComparisonIdents(n ast.Node) map[*ast.Ident]bool {
	out := make(map[*ast.Ident]bool)
	ast.Inspect(n, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
		if isNil(x) {
			if id, ok := y.(*ast.Ident); ok {
				out[id] = true
			}
		}
		if isNil(y) {
			if id, ok := x.(*ast.Ident); ok {
				out[id] = true
			}
		}
		return true
	})
	return out
}

func isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

func defVar(info *types.Info, id *ast.Ident) *types.Var {
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

func report(pass *analysis.Pass, idx map[string]map[int]bool, call *ast.CallExpr) {
	if analysis.DirectiveAt(idx, pass.Fset, "span-escapes", call.Pos()) {
		return
	}
	pass.Reportf(call.Pos(), "span opened by Tracer.Begin is not ended on every path out of the function; close it with OpenSpan.End (or //gflink:span-escapes if ownership leaves invisibly)")
}
