package spanpair_test

import (
	"testing"

	"gflink/internal/analysis/analysistest"
	"gflink/internal/analysis/spanpair"
)

func TestSpanpair(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), spanpair.Analyzer, "spanpair")
}
