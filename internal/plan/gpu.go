package plan

import (
	"gflink/internal/core"
)

// GPUMap appends a gpuMapPartition node: spec's kernel runs over every
// block of the upstream GDST when the graph executes. GPU nodes are
// never chained — block processing already bypasses the iterator model,
// which is the overhead chaining exists to amortize.
func GPUMap(s *Stream[*core.Block], spec core.GPUMapSpec) *Stream[*core.Block] {
	return newStream[*core.Block](s.gr, &node{
		kind: kGPUMap,
		name: "gpuMap:" + spec.Name,
		up:   s.n,
		run: func(ctx *Ctx, in any) any {
			return core.GPUMapPartition(ctx.G, in.(core.GDST), spec)
		},
	})
}

// GPUReduce appends a gpuReducePartition node: each block reduces to
// partialElems records for the driver to combine.
func GPUReduce(s *Stream[*core.Block], spec core.GPUMapSpec, partialElems int) *Stream[*core.Block] {
	return newStream[*core.Block](s.gr, &node{
		kind: kGPUReduce,
		name: "gpuReduce:" + spec.Name,
		up:   s.n,
		run: func(ctx *Ctx, in any) any {
			return core.GPUReducePartition(ctx.G, in.(core.GDST), spec, partialElems)
		},
	})
}
