// Package plan is GFlink's deferred dataflow layer: the JobGraph that
// real Flink builds between the program and the scheduler. Operators on
// typed Streams append nodes to a Graph instead of deploying tasks;
// Execute submits the job and materializes the graph, running two
// planner passes first:
//
//   - operator chaining — maximal runs of consecutive narrow
//     per-partition nodes (map, filter, flatMap) fuse into one task
//     per partition, so the chain deploys once and charges the
//     per-record iterator overhead once (Flink's operator chaining;
//     Options.DisableChaining keeps the unfused path measurable for
//     the abl-chaining ablation);
//   - placement — Either nodes carry both a CPU body and a GPU body
//     under a named placement group, and the planner resolves each
//     group to a device from costmodel.StageCost estimates (forced-CPU
//     and forced-GPU modes pin the decision, preserving every
//     pre-refactor benchmark configuration).
//
// Determinism survives planning by construction: the driver still runs
// nodes sequentially in program order on one virtual-time process, a
// fused chain charges exactly the sum of its members' compute demands
// (only deploy rounds and downstream record overheads disappear), and
// placement decisions are pure functions of the cost model — never of
// the clock, map iteration order, or scheduling.
package plan

import (
	"fmt"
	"time"

	"gflink/internal/core"
	"gflink/internal/costmodel"
	"gflink/internal/flink"
	"gflink/internal/obs"
)

// Mode selects how Either nodes are placed.
type Mode int

const (
	// Auto lets the cost model pick per placement group.
	Auto Mode = iota
	// ForceCPU pins every Either node to its CPU body.
	ForceCPU
	// ForceGPU pins every Either node to its GPU body.
	ForceGPU
)

func (m Mode) String() string {
	switch m {
	case ForceCPU:
		return "cpu"
	case ForceGPU:
		return "gpu"
	default:
		return "auto"
	}
}

// Device is a placement decision.
type Device int

const (
	CPU Device = iota
	GPU
)

func (d Device) String() string {
	if d == GPU {
		return "GPU"
	}
	return "CPU"
}

// Options configure one graph's planning.
type Options struct {
	Mode Mode
	// DisableChaining skips the chaining pass, executing every narrow
	// node as its own eager operator (the abl-chaining baseline).
	DisableChaining bool
	// Tracer receives the plan's per-node spans on the "driver" track.
	// Nil means the deployment's own tracer (GFlink.Obs).
	Tracer *obs.Tracer
}

// stageEst is the pair of cost-model estimates behind one placement
// decision, kept for Explain and the per-node spans.
type stageEst struct {
	cpu, gpu time.Duration
	forced   bool
}

// nodeActual accumulates a stage's simulated execution time across
// runs (iteration bodies execute their nodes once per iteration).
type nodeActual struct {
	total time.Duration
	runs  int
}

// state is the planning and execution state shared by a Graph and the
// per-iteration subgraphs Iterate builds.
type state struct {
	g      *core.GFlink
	opts   Options
	job    *flink.Job
	tracer *obs.Tracer

	groups     map[string]costmodel.StageCost
	groupOrder []string
	decisions  map[string]Device
	ests       map[string]stageEst
	actuals    map[string]nodeActual
}

// Graph is a deferred job: an ordered list of plan nodes built by the
// driver program and materialized by Execute. The per-iteration
// subgraphs Iterate builds share the parent's planning state but have
// their own node lists (and are built after the parent executed).
type Graph struct {
	st       *state
	name     string
	nodes    []*node
	executed bool
}

// NewGraph starts an empty plan against a deployment. Nothing touches
// the virtual clock until Execute.
func NewGraph(g *core.GFlink, name string, opts Options) *Graph {
	tracer := opts.Tracer
	if tracer == nil {
		tracer = g.Obs.Tracer()
	}
	return &Graph{
		st: &state{
			g:         g,
			opts:      opts,
			tracer:    tracer,
			groups:    make(map[string]costmodel.StageCost),
			decisions: make(map[string]Device),
			ests:      make(map[string]stageEst),
			actuals:   make(map[string]nodeActual),
		},
		name: name,
	}
}

// Options returns the graph's planning options.
func (gr *Graph) Options() Options { return gr.st.opts }

// PlaceGroup declares a placement group and its cost estimate. Every
// Either node names a group; declaring the cost once lets stages that
// must land together (a GPU source feeding a GPU kernel) share one
// decision. Declaration order fixes decision order, keeping auto
// placement deterministic.
func (gr *Graph) PlaceGroup(group string, cost costmodel.StageCost) {
	st := gr.st
	if _, ok := st.groups[group]; !ok {
		st.groupOrder = append(st.groupOrder, group)
	}
	st.groups[group] = cost
}

// Placement reports the device a group resolved to; ok is false before
// the placement pass has decided it.
func (gr *Graph) Placement(group string) (Device, bool) {
	d, ok := gr.st.decisions[group]
	return d, ok
}

// nodeKind discriminates plan nodes. Narrow record-at-a-time kinds
// (map, filter, flatMap) are the chainable ones.
type nodeKind int

const (
	kSource nodeKind = iota
	kMap
	kFilter
	kFlatMap
	kReduceByKey
	kGroupReduce
	kGPUMap
	kGPUReduce
	kEither
	kIterate
	kSink
	kDo
	kChain
)

// node is one deferred operator. run consumes the materialized value of
// the upstream node (nil for sources and driver nodes) and returns its
// own. Chainable nodes additionally carry the type-erased closures the
// fusion pass stitches together (see chain.go).
type node struct {
	kind nodeKind
	name string
	up   *node
	run  func(ctx *Ctx, in any) any

	// group is the placement group of Either nodes ("" otherwise);
	// chainLen is the member count of fused chains (0 otherwise). Both
	// exist for the observability layer (spans, Explain).
	group    string
	chainLen int

	// chainable metadata (kMap, kFilter, kFlatMap)
	perRec   costmodel.Work
	outBytes int // -1: keep the input record size (filter)
	rec      func(v any) []any
	erase    func(ds any) []epart
	build    func(j *flink.Job, recordBytes int, parts []epart) any

	// fused-chain alias: results are stored under the last member so
	// downstream up-pointers keep resolving (see runNodes).
	aliasFor *node
}

func (n *node) chainable() bool {
	return n.kind == kMap || n.kind == kFilter || n.kind == kFlatMap
}

func (k nodeKind) String() string {
	switch k {
	case kSource:
		return "source"
	case kMap:
		return "map"
	case kFilter:
		return "filter"
	case kFlatMap:
		return "flatMap"
	case kReduceByKey:
		return "reduceByKey"
	case kGroupReduce:
		return "groupReduce"
	case kGPUMap:
		return "gpuMap"
	case kGPUReduce:
		return "gpuReduce"
	case kEither:
		return "either"
	case kIterate:
		return "iterate"
	case kSink:
		return "sink"
	case kDo:
		return "do"
	case kChain:
		return "chain"
	default:
		return "unknown"
	}
}

func (gr *Graph) add(n *node) {
	if gr.executed {
		panic("plan: cannot append nodes to an executed graph")
	}
	gr.nodes = append(gr.nodes, n)
}

// Ctx is what node bodies see at execution time: the deployment and the
// materialized job.
type Ctx struct {
	G   *core.GFlink
	Job *flink.Job
	st  *state
}

// Placement resolves a placement group to a device, deciding it from
// the declared cost on first use (subgraph nodes can reference groups
// the top-level pass has not seen).
func (c *Ctx) Placement(group string) Device {
	return c.st.place(group)
}

func (st *state) place(group string) Device {
	if d, ok := st.decisions[group]; ok {
		return d
	}
	cost, ok := st.groups[group]
	if !ok {
		panic(fmt.Sprintf("plan: placement group %q not declared via PlaceGroup", group))
	}
	d := st.decide(group, cost)
	st.decisions[group] = d
	return d
}

// decide is the placement rule: forced modes pin the device; Auto
// compares the cost-model estimates and takes the cheaper path, CPU on
// ties (the conservative choice — no PCIe dependence). The estimates
// are recorded (for Explain and spans) even when the mode forces the
// decision — they are pure functions of the cost model, so recording
// them perturbs nothing.
func (st *state) decide(group string, cost costmodel.StageCost) Device {
	m := st.g.Cfg.Config.Model
	cpuT := m.EstimateCPUStage(cost)
	gpuT := m.EstimateGPUStage(st.g.Cfg.GPUProfile, cost)
	forced := st.opts.Mode == ForceCPU || st.opts.Mode == ForceGPU
	st.ests[group] = stageEst{cpu: cpuT, gpu: gpuT, forced: forced}
	switch st.opts.Mode {
	case ForceCPU:
		return CPU
	case ForceGPU:
		return GPU
	}
	if gpuT < cpuT {
		return GPU
	}
	return CPU
}

// Execute materializes the graph: submit the job (charging the usual
// submission overhead), run the placement pass over every declared
// group in declaration order, fuse chains unless disabled, then run
// the nodes sequentially on the calling driver process — the same
// synchronous driver semantics the eager engine has, which is why a
// planned program's virtual-time trace matches its eager equivalent.
func (gr *Graph) Execute() {
	st := gr.st
	if gr.executed {
		panic("plan: graph already executed")
	}
	gr.executed = true
	clock := st.g.Cluster.Clock
	sp := st.tracer.Begin(driverTrack, "plan", "plan:"+gr.name, clock.Now(),
		obs.Str("mode", st.opts.Mode.String()),
		obs.Bool("chaining", !st.opts.DisableChaining),
		obs.Int("nodes", int64(len(gr.nodes))))
	st.job = st.g.Cluster.NewJob(gr.name)
	ctx := &Ctx{G: st.g, Job: st.job, st: st}
	for _, group := range st.groupOrder {
		st.place(group)
	}
	gr.runNodes(ctx)
	sp.End(clock.Now())
}

// driverTrack is the trace track plan-layer spans land on: the driver
// program runs on one virtual-time process, so one track suffices.
const driverTrack = "driver"

// recordNode folds one node execution into the actuals table and emits
// its span. Estimates are attached for Either nodes whose group has
// been decided (est vs. actual is the cost-model calibration signal).
func (st *state) recordNode(n *node, t0, t1 time.Duration) {
	key := n.name
	a := st.actuals[key]
	a.total += t1 - t0
	a.runs++
	st.actuals[key] = a
	attrs := []obs.Attr{obs.Str("kind", n.kind.String())}
	if n.chainLen > 0 {
		attrs = append(attrs, obs.Int("fused", int64(n.chainLen)))
	}
	if n.group != "" {
		attrs = append(attrs, obs.Str("group", n.group))
		if d, ok := st.decisions[n.group]; ok {
			attrs = append(attrs, obs.Str("placed", d.String()))
		}
		if est, ok := st.ests[n.group]; ok {
			attrs = append(attrs,
				obs.Dur("est_cpu", est.cpu),
				obs.Dur("est_gpu", est.gpu))
		}
	}
	st.tracer.Record(driverTrack, "stage", n.name, t0, t1, attrs...)
}

// runNodes executes the (possibly fused) node list in order. Values
// flow through a map keyed by producing node; a fused chain stores its
// result under its last member so unfused up-pointers still resolve.
func (gr *Graph) runNodes(ctx *Ctx) {
	nodes := gr.nodes
	if !gr.st.opts.DisableChaining {
		nodes = fuseChains(nodes)
	}
	clock := gr.st.g.Cluster.Clock
	vals := make(map[*node]any, len(nodes))
	for _, n := range nodes {
		var in any
		if n.up != nil {
			in = vals[n.up]
		}
		t0 := clock.Now()
		out := n.run(ctx, in)
		gr.st.recordNode(n, t0, clock.Now())
		if n.aliasFor != nil {
			vals[n.aliasFor] = out
		} else {
			vals[n] = out
		}
	}
}

// IterStats carries the per-iteration durations an Iterate node
// measured, populated during Execute.
type IterStats struct {
	Durations []time.Duration
}

// Iterate appends a bulk-iteration node: body builds a fresh subgraph
// for each iteration (so per-iteration staging such as a first-pass
// HDFS read stays expressible), the subgraph runs through the same
// chaining and placement machinery, and a superstep barrier closes
// every iteration — exactly the eager Iterate/Superstep protocol.
func Iterate(gr *Graph, name string, n int, body func(it int, sub *Graph)) *IterStats {
	stats := &IterStats{}
	gr.add(&node{
		kind: kIterate,
		name: "iterate:" + name,
		run: func(ctx *Ctx, _ any) any {
			clock := ctx.G.Cluster.Clock
			for it := 0; it < n; it++ {
				t0 := clock.Now()
				sp := gr.st.tracer.Begin(driverTrack, "iteration",
					fmt.Sprintf("%s#%d", name, it), t0,
					obs.Int("iteration", int64(it)))
				sub := &Graph{st: gr.st, name: gr.name}
				body(it, sub)
				sub.runNodes(ctx)
				ctx.Job.Superstep()
				t1 := clock.Now()
				stats.Durations = append(stats.Durations, t1-t0)
				sp.End(t1)
			}
			return nil
		},
	})
	return stats
}

// Do appends a driver-side node: fn runs on the driver process at this
// point of the program, for staging, timing probes and cleanup that are
// not dataset transformations.
func Do(gr *Graph, name string, fn func(ctx *Ctx)) {
	gr.add(&node{
		kind: kDo,
		name: "do:" + name,
		run: func(ctx *Ctx, _ any) any {
			fn(ctx)
			return nil
		},
	})
}

// EitherDo appends a driver-side Either node: the placement decision of
// group selects which body runs. Workloads whose CPU and GPU paths
// differ in driver structure (different source representations, staged
// buffers, block cleanup) express each path as one body and let the
// planner choose.
func EitherDo(gr *Graph, name, group string, cpu, gpu func(ctx *Ctx)) {
	gr.add(&node{
		kind:  kEither,
		name:  "either:" + name,
		group: group,
		run: func(ctx *Ctx, _ any) any {
			if ctx.Placement(group) == GPU {
				gpu(ctx)
			} else {
				cpu(ctx)
			}
			return nil
		},
	})
}
