package plan

import (
	"reflect"
	"testing"
	"time"

	"gflink/internal/core"
	"gflink/internal/costmodel"
	"gflink/internal/flink"
)

func testDeployment() *core.GFlink {
	return core.New(core.Config{
		Config: flink.Config{
			Workers:      2,
			Model:        costmodel.Default(),
			ScaleDivisor: 1000,
		},
		GPUsPerWorker: 2,
		GPUProfile:    costmodel.C2050,
	})
}

// numbersPipeline builds the canonical narrow chain used across the
// tests: generate -> map -> map -> filter -> map, collected at the
// driver.
func numbersPipeline(g *core.GFlink, opts Options, out *[]int64) (*Graph, *Stream[int64]) {
	gr := NewGraph(g, "numbers", opts)
	src := Source(gr, "nums", func(ctx *Ctx) *flink.Dataset[int64] {
		return flink.Generate(ctx.Job, "nums", 1_000_000, 8, 8, func(part int, ord int64) int64 {
			return int64(part)*1000 + ord
		})
	})
	w := costmodel.Work{Flops: 2, BytesRead: 8}
	a := Map(src, "double", w, 8, func(v int64) int64 { return v * 2 })
	b := Map(a, "inc", w, 8, func(v int64) int64 { return v + 1 })
	c := Filter(b, "odd", w, func(v int64) bool { return v%2 == 1 })
	d := Map(c, "neg", w, 8, func(v int64) int64 { return -v })
	Collect(d, "drain", func(ctx *Ctx, recs []int64) { *out = recs })
	return gr, d
}

func TestBuildIsDeferredAndExecuteSubmits(t *testing.T) {
	g := testDeployment()
	total := g.Run(func() {
		var out []int64
		start := g.Clock.Now()
		gr, _ := numbersPipeline(g, Options{}, &out)
		if built := g.Clock.Now() - start; built != 0 {
			t.Errorf("graph building charged %v of virtual time, want 0", built)
		}
		gr.Execute()
		if len(out) == 0 {
			t.Error("pipeline produced no records")
		}
	})
	if total < g.Cfg.Config.Model.Overheads.JobSubmit {
		t.Errorf("execute did not charge job submission: total %v", total)
	}
}

func TestChainingPreservesRecordsAndReducesTime(t *testing.T) {
	g1 := testDeployment()
	var chainedOut []int64
	var chained time.Duration
	g1.Run(func() {
		gr, _ := numbersPipeline(g1, Options{}, &chainedOut)
		t0 := g1.Clock.Now()
		gr.Execute()
		chained = g1.Clock.Now() - t0
	})

	g2 := testDeployment()
	var unchainedOut []int64
	var unchained time.Duration
	g2.Run(func() {
		gr, _ := numbersPipeline(g2, Options{DisableChaining: true}, &unchainedOut)
		t0 := g2.Clock.Now()
		gr.Execute()
		unchained = g2.Clock.Now() - t0
	})

	if !reflect.DeepEqual(chainedOut, unchainedOut) {
		t.Fatalf("fused chain changed the records: %d vs %d collected",
			len(chainedOut), len(unchainedOut))
	}
	if chained >= unchained {
		t.Errorf("chaining did not reduce simulated time: %v >= %v", chained, unchained)
	}
}

func TestChainedNominalAndRecordBytesMatchEager(t *testing.T) {
	runMeta := func(disable bool) (nominal int64, recBytes int) {
		g := testDeployment()
		g.Run(func() {
			gr := NewGraph(g, "meta", Options{DisableChaining: disable})
			src := Source(gr, "nums", func(ctx *Ctx) *flink.Dataset[int64] {
				return flink.Generate(ctx.Job, "nums", 100_000, 8, 4, func(part int, ord int64) int64 {
					return ord
				})
			})
			a := Map(src, "widen", costmodel.Work{}, 16, func(v int64) int64 { return v })
			b := Filter(a, "half", costmodel.Work{}, func(v int64) bool { return v%2000 == 0 })
			Sink(b, "probe", func(ctx *Ctx, d *flink.Dataset[int64]) {
				nominal = d.NominalCount()
				recBytes = d.RecordBytes()
			})
			gr.Execute()
		})
		return nominal, recBytes
	}
	fn, fb := runMeta(false)
	un, ub := runMeta(true)
	if fn != un || fb != ub {
		t.Errorf("fused metadata differs from eager: nominal %d/%d, recordBytes %d/%d", fn, un, fb, ub)
	}
	if fb != 16 {
		t.Errorf("filter did not carry the map's record size: %d", fb)
	}
}

func TestForcedPlacementSelectsBody(t *testing.T) {
	for _, tc := range []struct {
		mode Mode
		want Device
	}{{ForceCPU, CPU}, {ForceGPU, GPU}} {
		g := testDeployment()
		var ran Device = -1
		g.Run(func() {
			gr := NewGraph(g, "placed", Options{Mode: tc.mode})
			gr.PlaceGroup("stage", costmodel.StageCost{})
			EitherDo(gr, "stage", "stage",
				func(ctx *Ctx) { ran = CPU },
				func(ctx *Ctx) { ran = GPU })
			gr.Execute()
			if d, ok := gr.Placement("stage"); !ok || d != tc.want {
				t.Errorf("mode %v: placement reported (%v,%v), want %v", tc.mode, d, ok, tc.want)
			}
		})
		if ran != tc.want {
			t.Errorf("mode %v ran the %v body", tc.mode, ran)
		}
	}
}

func TestAutoPlacementFollowsCostModel(t *testing.T) {
	g := testDeployment()
	gpuFavored := costmodel.StageCost{
		Records:        50_000_000,
		CPUPerRec:      costmodel.Work{Flops: 100, BytesRead: 64},
		GPUWork:        costmodel.Work{Flops: 5e9},
		HostToDevice:   64 << 20,
		Executions:     10,
		CacheResident:  true,
		CPUParallelism: 8,
		GPUParallelism: 4,
	}
	cpuFavored := costmodel.StageCost{
		Records:        100,
		CPUPerRec:      costmodel.Work{Flops: 4},
		GPUWork:        costmodel.Work{Flops: 400},
		HostToDevice:   1 << 30,
		CPUParallelism: 8,
		GPUParallelism: 4,
	}
	g.Run(func() {
		gr := NewGraph(g, "auto", Options{})
		gr.PlaceGroup("hot", gpuFavored)
		gr.PlaceGroup("cold", cpuFavored)
		var hot, cold Device
		EitherDo(gr, "hot", "hot", func(ctx *Ctx) { hot = CPU }, func(ctx *Ctx) { hot = GPU })
		EitherDo(gr, "cold", "cold", func(ctx *Ctx) { cold = CPU }, func(ctx *Ctx) { cold = GPU })
		gr.Execute()
		if hot != GPU {
			t.Error("compute-dense cached stage not placed on GPU")
		}
		if cold != CPU {
			t.Error("transfer-dominated tiny stage not placed on CPU")
		}
	})
}

func TestDriverNodeBreaksChain(t *testing.T) {
	// A Do node between two maps must keep its program-order position:
	// the clock time it observes sits after the first map's charge and
	// before the second's.
	g := testDeployment()
	g.Run(func() {
		gr := NewGraph(g, "probe", Options{})
		src := Source(gr, "nums", func(ctx *Ctx) *flink.Dataset[int64] {
			return flink.Generate(ctx.Job, "nums", 1_000_000, 8, 4, func(part int, ord int64) int64 {
				return ord
			})
		})
		w := costmodel.Work{Flops: 2}
		a := Map(src, "one", w, 8, func(v int64) int64 { return v + 1 })
		var mark time.Duration
		Do(gr, "mark", func(ctx *Ctx) { mark = g.Clock.Now() })
		b := Map(a, "two", w, 8, func(v int64) int64 { return v + 1 })
		var done time.Duration
		Collect(b, "drain", func(ctx *Ctx, recs []int64) { done = g.Clock.Now() })
		gr.Execute()
		if mark <= 0 || mark >= done {
			t.Errorf("probe did not observe its program position: mark=%v done=%v", mark, done)
		}
	})
}

func TestIterateRunsSupersteps(t *testing.T) {
	g := testDeployment()
	const iters = 3
	var stats *IterStats
	g.Run(func() {
		gr := NewGraph(g, "loop", Options{})
		count := 0
		stats = Iterate(gr, "body", iters, func(it int, sub *Graph) {
			Do(sub, "tick", func(ctx *Ctx) { count++ })
		})
		gr.Execute()
		if count != iters {
			t.Errorf("iterate ran body %d times, want %d", count, iters)
		}
	})
	if len(stats.Durations) != iters {
		t.Fatalf("got %d iteration durations, want %d", len(stats.Durations), iters)
	}
	sync := costmodel.Default().Overheads.SuperstepSync
	for i, d := range stats.Durations {
		if d < sync {
			t.Errorf("iteration %d (%v) shorter than the superstep barrier %v", i, d, sync)
		}
	}
}

func TestUndeclaredGroupPanics(t *testing.T) {
	g := testDeployment()
	g.Run(func() {
		gr := NewGraph(g, "bad", Options{})
		EitherDo(gr, "stage", "missing", func(ctx *Ctx) {}, func(ctx *Ctx) {})
		defer func() {
			if recover() == nil {
				t.Error("executing an Either with an undeclared group did not panic")
			}
		}()
		gr.Execute()
	})
}
