package plan

import (
	"strings"
	"testing"

	"gflink/internal/costmodel"
	"gflink/internal/flink"
	"gflink/internal/obs"
)

func TestExecuteEmitsDriverSpans(t *testing.T) {
	g := testDeployment()
	g.Run(func() {
		var out []int64
		gr, _ := numbersPipeline(g, Options{}, &out)
		gr.Execute()
	})
	spans := g.Obs.Tracer().Spans()
	if len(spans) == 0 {
		t.Fatal("Execute recorded no spans")
	}
	byName := map[string]obs.Span{}
	var stages, plans int
	for _, s := range spans {
		if s.Track != driverTrack {
			continue
		}
		byName[s.Name] = s
		switch s.Cat {
		case "stage":
			stages++
		case "plan":
			plans++
		}
	}
	if plans != 1 {
		t.Errorf("got %d plan spans, want 1", plans)
	}
	// Chaining fuses double+inc+odd+neg: source, chain, collect = 3.
	if stages != 3 {
		t.Errorf("got %d stage spans, want 3 (source, fused chain, collect)", stages)
	}
	p, ok := byName["plan:numbers"]
	if !ok {
		t.Fatal("missing plan:numbers span")
	}
	attrs := map[string]any{}
	for _, a := range p.Attrs {
		attrs[a.Key] = a.Val
	}
	if attrs["mode"] != "auto" || attrs["chaining"] != true {
		t.Errorf("plan span attrs = %v", attrs)
	}
	var chain obs.Span
	found := false
	for name, s := range byName {
		if strings.HasPrefix(name, "chain:") {
			chain, found = s, true
		}
	}
	if !found {
		t.Fatal("missing fused-chain span")
	}
	cattrs := map[string]any{}
	for _, a := range chain.Attrs {
		cattrs[a.Key] = a.Val
	}
	if cattrs["kind"] != "chain" || cattrs["fused"] != int64(4) {
		t.Errorf("chain span attrs = %v, want kind=chain fused=4", cattrs)
	}
}

func TestEitherSpanCarriesPlacementAndEstimates(t *testing.T) {
	g := testDeployment()
	// A group whose GPU estimate clearly wins (heavy flops, light PCIe).
	cost := costmodel.StageCost{
		Records:        50_000_000,
		CPUPerRec:      costmodel.Work{Flops: 100, BytesRead: 64},
		GPUWork:        costmodel.Work{Flops: 5e9},
		HostToDevice:   64 << 20,
		Executions:     10,
		CacheResident:  true,
		CPUParallelism: 8,
		GPUParallelism: 4,
	}
	g.Run(func() {
		gr := NewGraph(g, "either", Options{})
		gr.PlaceGroup("kernel", cost)
		src := Source(gr, "nums", func(ctx *Ctx) *flink.Dataset[int64] {
			return flink.Generate(ctx.Job, "nums", 1000, 8, 8, func(part int, ord int64) int64 { return ord })
		})
		res := Either(src, "compute", "kernel",
			func(ctx *Ctx, in *flink.Dataset[int64]) *flink.Dataset[int64] { return in },
			func(ctx *Ctx, in *flink.Dataset[int64]) *flink.Dataset[int64] { return in })
		Sink(res, "drop", func(ctx *Ctx, d *flink.Dataset[int64]) {})
		gr.Execute()

		d, ok := gr.Placement("kernel")
		if !ok || d != GPU {
			t.Fatalf("placement = %v/%v, want GPU", d, ok)
		}
	})
	var either *obs.Span
	for _, s := range g.Obs.Tracer().Spans() {
		if s.Name == "either:compute" {
			e := s
			either = &e
		}
	}
	if either == nil {
		t.Fatal("missing either:compute span")
	}
	attrs := map[string]any{}
	for _, a := range either.Attrs {
		attrs[a.Key] = a.Val
	}
	if attrs["group"] != "kernel" || attrs["placed"] != "GPU" {
		t.Errorf("either attrs = %v, want group=kernel placed=GPU", attrs)
	}
	for _, k := range []string{"est_cpu", "est_gpu"} {
		if v, ok := attrs[k].(string); !ok || v == "" || v == "0s" {
			t.Errorf("either attr %s = %v, want a non-zero duration", k, attrs[k])
		}
	}
}

func TestExplain(t *testing.T) {
	g := testDeployment()
	var report string
	g.Run(func() {
		gr := NewGraph(g, "explained", Options{Mode: ForceCPU})
		gr.PlaceGroup("work", costmodel.StageCost{
			Records:        100,
			CPUPerRec:      costmodel.Work{Flops: 4},
			GPUWork:        costmodel.Work{Flops: 400},
			HostToDevice:   1 << 30,
			CPUParallelism: 8,
			GPUParallelism: 4,
		})
		src := Source(gr, "nums", func(ctx *Ctx) *flink.Dataset[int64] {
			return flink.Generate(ctx.Job, "nums", 1000, 8, 8, func(part int, ord int64) int64 { return ord })
		})
		w := costmodel.Work{Flops: 2, BytesRead: 8}
		a := Map(src, "double", w, 8, func(v int64) int64 { return v * 2 })
		b := Map(a, "inc", w, 8, func(v int64) int64 { return v + 1 })
		res := Either(b, "compute", "work",
			func(ctx *Ctx, in *flink.Dataset[int64]) *flink.Dataset[int64] { return in },
			func(ctx *Ctx, in *flink.Dataset[int64]) *flink.Dataset[int64] { return in })
		Sink(res, "drop", func(ctx *Ctx, d *flink.Dataset[int64]) {})
		gr.Execute()
		report = gr.Explain()
	})
	for _, want := range []string{
		`plan "explained" (mode=cpu, chaining=on)`,
		"placement:",
		"work", "CPU", "forced", "est cpu=", "gpu=",
		"stages:",
		"chain:double:inc", "[fused x2]",
		"either:compute", "[work -> CPU]",
		"measured:",
		"source:nums",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("Explain() missing %q in:\n%s", want, report)
		}
	}
	// Explain before execution must work too (no measured section).
	g2 := testDeployment()
	gr2 := NewGraph(g2, "pre", Options{})
	pre := gr2.Explain()
	if strings.Contains(pre, "measured:") {
		t.Errorf("unexecuted plan reports measurements:\n%s", pre)
	}
	if !strings.Contains(pre, `plan "pre" (mode=auto, chaining=on)`) {
		t.Errorf("Explain() header wrong:\n%s", pre)
	}
}
