package plan

import (
	"fmt"
	"sort"
	"strings"
)

// Explain renders the plan as text: the planning options, every
// placement decision with the cost-model estimates behind it, the
// stage list after chaining, and — when the graph has executed — the
// simulated time each stage actually took. Explain is read-only with
// respect to simulation state: placement decisions are pure functions
// of the cost model, so resolving an undecided group here yields the
// same device Execute would pick, and nothing touches the clock.
func (gr *Graph) Explain() string {
	st := gr.st
	var b strings.Builder
	fmt.Fprintf(&b, "plan %q (mode=%s, chaining=%s)\n",
		gr.name, st.opts.Mode, onOff(!st.opts.DisableChaining))

	if len(st.groupOrder) > 0 {
		b.WriteString("placement:\n")
		for _, group := range st.groupOrder {
			d := st.place(group)
			est := st.ests[group]
			how := "auto"
			if est.forced {
				how = "forced"
			}
			fmt.Fprintf(&b, "  %-16s -> %-3s (%s; est cpu=%v gpu=%v)\n",
				group, d, how, est.cpu, est.gpu)
		}
	}

	nodes := gr.nodes
	if !st.opts.DisableChaining {
		nodes = fuseChains(nodes)
	}
	if len(nodes) > 0 {
		b.WriteString("stages:\n")
		for i, n := range nodes {
			fmt.Fprintf(&b, "  %2d. %-12s %s", i, n.kind, n.name)
			if n.chainLen > 0 {
				fmt.Fprintf(&b, " [fused x%d]", n.chainLen)
			}
			if n.group != "" {
				if _, declared := st.groups[n.group]; declared {
					fmt.Fprintf(&b, " [%s -> %s]", n.group, st.place(n.group))
				} else {
					fmt.Fprintf(&b, " [group %s undeclared]", n.group)
				}
			}
			b.WriteByte('\n')
		}
	}

	if len(st.actuals) > 0 {
		b.WriteString("measured:\n")
		names := make([]string, 0, len(st.actuals))
		for name := range st.actuals {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			a := st.actuals[name]
			fmt.Fprintf(&b, "  %-40s %v", name, a.total)
			if a.runs > 1 {
				fmt.Fprintf(&b, " (%d runs)", a.runs)
			}
			b.WriteByte('\n')
		}
	}

	// Transfer-channel volume: the per-device xfer.{h2d,d2h}.bytes.gpuN
	// counters the stream workers increment on every DMA. Snapshot order
	// is sorted, so this section is deterministic.
	var xfers []string
	for _, m := range st.g.Obs.Metrics().Snapshot() {
		if strings.HasPrefix(m.Name, "xfer.") {
			xfers = append(xfers, fmt.Sprintf("  %-24s %d\n", m.Name, m.Value))
		}
	}
	if len(xfers) > 0 {
		b.WriteString("transfers:\n")
		for _, line := range xfers {
			b.WriteString(line)
		}
	}
	return b.String()
}

func onOff(on bool) string {
	if on {
		return "on"
	}
	return "off"
}
