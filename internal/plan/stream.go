package plan

import (
	"gflink/internal/costmodel"
	"gflink/internal/flink"
)

// Stream is a typed handle on one plan node's (future) dataset. Stream
// operators append nodes; nothing executes until Graph.Execute.
type Stream[T any] struct {
	gr *Graph
	n  *node
}

// Graph returns the owning graph.
func (s *Stream[T]) Graph() *Graph { return s.gr }

func newStream[T any](gr *Graph, n *node) *Stream[T] {
	gr.add(n)
	return &Stream[T]{gr: gr, n: n}
}

// Source appends a source node: fn materializes the root dataset (an
// HDFS read, a generator, a GDST build) when the graph executes.
func Source[T any](gr *Graph, name string, fn func(ctx *Ctx) *flink.Dataset[T]) *Stream[T] {
	return newStream[T](gr, &node{
		kind: kSource,
		name: "source:" + name,
		run:  func(ctx *Ctx, _ any) any { return fn(ctx) },
	})
}

// Map appends a narrow map node (chainable). perRec and outBytes carry
// the same cost declarations as the eager operator.
func Map[T, U any](s *Stream[T], name string, perRec costmodel.Work, outBytes int, f func(T) U) *Stream[U] {
	return newStream[U](s.gr, &node{
		kind:     kMap,
		name:     name,
		up:       s.n,
		perRec:   perRec,
		outBytes: outBytes,
		run: func(ctx *Ctx, in any) any {
			return flink.Map(in.(*flink.Dataset[T]), name, perRec, outBytes, f)
		},
		rec:   func(v any) []any { return []any{f(v.(T))} },
		erase: erasePartitions[T],
		build: buildDataset[U],
	})
}

// Filter appends a narrow filter node (chainable).
func Filter[T any](s *Stream[T], name string, perRec costmodel.Work, pred func(T) bool) *Stream[T] {
	return newStream[T](s.gr, &node{
		kind:     kFilter,
		name:     name,
		up:       s.n,
		perRec:   perRec,
		outBytes: -1,
		run: func(ctx *Ctx, in any) any {
			return flink.Filter(in.(*flink.Dataset[T]), name, perRec, pred)
		},
		rec: func(v any) []any {
			if pred(v.(T)) {
				return []any{v}
			}
			return nil
		},
		erase: erasePartitions[T],
		build: buildDataset[T],
	})
}

// FlatMap appends a narrow flatMap node (chainable).
func FlatMap[T, U any](s *Stream[T], name string, perRec costmodel.Work, outBytes int, f func(T) []U) *Stream[U] {
	return newStream[U](s.gr, &node{
		kind:     kFlatMap,
		name:     name,
		up:       s.n,
		perRec:   perRec,
		outBytes: outBytes,
		run: func(ctx *Ctx, in any) any {
			return flink.FlatMap(in.(*flink.Dataset[T]), name, perRec, outBytes, f)
		},
		rec: func(v any) []any {
			us := f(v.(T))
			out := make([]any, len(us))
			for i, u := range us {
				out[i] = u
			}
			return out
		},
		erase: erasePartitions[T],
		build: buildDataset[U],
	})
}

// ReduceByKey appends a combinable key reduction — a wide node: it
// barriers chaining on both sides (the shuffle is a hard stage
// boundary, as in Flink).
func ReduceByKey[T any, K comparable](s *Stream[T], name string, perRec costmodel.Work, key func(T) K, combine func(T, T) T) *Stream[T] {
	return newStream[T](s.gr, &node{
		kind: kReduceByKey,
		name: "reduceByKey:" + name,
		up:   s.n,
		run: func(ctx *Ctx, in any) any {
			return flink.ReduceByKey(in.(*flink.Dataset[T]), name, perRec, key, combine)
		},
	})
}

// GroupReduce appends a non-combinable grouped reduction (wide node).
func GroupReduce[T any, K comparable, U any](s *Stream[T], name string, perRec costmodel.Work, outBytes int, key func(T) K, reduce func(K, []T) U) *Stream[U] {
	return newStream[U](s.gr, &node{
		kind: kGroupReduce,
		name: "groupReduce:" + name,
		up:   s.n,
		run: func(ctx *Ctx, in any) any {
			return flink.GroupReduce(in.(*flink.Dataset[T]), name, perRec, outBytes, key, reduce)
		},
	})
}

// Either appends a dataset-typed placement node: the group's decision
// selects which body transforms the stream. Both bodies see the
// materialized input dataset and account their own costs, exactly like
// the eager workload variants they replace.
func Either[In, Out any](s *Stream[In], name, group string,
	cpu, gpu func(ctx *Ctx, in *flink.Dataset[In]) *flink.Dataset[Out]) *Stream[Out] {
	return newStream[Out](s.gr, &node{
		kind:  kEither,
		name:  "either:" + name,
		up:    s.n,
		group: group,
		run: func(ctx *Ctx, in any) any {
			d := in.(*flink.Dataset[In])
			if ctx.Placement(group) == GPU {
				return gpu(ctx, d)
			}
			return cpu(ctx, d)
		},
	})
}

// Collect appends a driver sink that gathers the stream's records
// (charging the usual serialization and network cost) and hands them to
// fn on the driver.
func Collect[T any](s *Stream[T], name string, fn func(ctx *Ctx, recs []T)) {
	s.gr.add(&node{
		kind: kSink,
		name: "collect:" + name,
		up:   s.n,
		run: func(ctx *Ctx, in any) any {
			fn(ctx, flink.Collect(in.(*flink.Dataset[T])))
			return nil
		},
	})
}

// Sink appends a terminal node that consumes the materialized dataset.
func Sink[T any](s *Stream[T], name string, fn func(ctx *Ctx, d *flink.Dataset[T])) {
	s.gr.add(&node{
		kind: kSink,
		name: "sink:" + name,
		up:   s.n,
		run: func(ctx *Ctx, in any) any {
			fn(ctx, in.(*flink.Dataset[T]))
			return nil
		},
	})
}

// WriteHDFS appends an HDFS sink node.
func WriteHDFS[T any](s *Stream[T], file string) {
	Sink(s, "hdfs:"+file, func(ctx *Ctx, d *flink.Dataset[T]) {
		flink.WriteHDFS(d, file)
	})
}
