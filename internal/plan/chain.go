package plan

import (
	"gflink/internal/costmodel"
	"gflink/internal/flink"
)

// epart is one type-erased partition flowing through a fused chain.
type epart struct {
	worker  int
	items   []any
	nominal int64
}

// erasePartitions lifts a typed dataset's partitions into erased form —
// the head of a fused chain applies its input type's instantiation.
func erasePartitions[T any](ds any) []epart {
	d := ds.(*flink.Dataset[T])
	out := make([]epart, d.Partitions())
	for p := range out {
		part := d.Partition(p)
		items := make([]any, len(part.Items))
		for i, v := range part.Items {
			items[i] = v
		}
		out[p] = epart{worker: part.Worker, items: items, nominal: part.Nominal}
	}
	return out
}

// buildDataset rebuilds a typed dataset from erased partitions — the
// last member of a fused chain applies its output type's instantiation.
func buildDataset[U any](j *flink.Job, recordBytes int, eps []epart) any {
	parts := make([]flink.Partition[U], len(eps))
	for p, ep := range eps {
		items := make([]U, len(ep.items))
		for i, v := range ep.items {
			items[i] = v.(U)
		}
		parts[p] = flink.Partition[U]{Worker: ep.worker, Items: items, Nominal: ep.nominal}
	}
	return flink.FromPartitions(j, recordBytes, parts)
}

// fuseChains is the chaining pass: every maximal run of consecutive
// chainable nodes — consecutive both in program order and in dataflow
// (each member is the sole consumer of its predecessor) — collapses
// into one fused node. Interleaved driver nodes break a run: their
// clock effects must stay ordered exactly as the program wrote them.
func fuseChains(nodes []*node) []*node {
	consumers := make(map[*node]int, len(nodes))
	for _, n := range nodes {
		if n.up != nil {
			consumers[n.up]++
		}
	}
	out := make([]*node, 0, len(nodes))
	for i := 0; i < len(nodes); {
		n := nodes[i]
		if n.chainable() {
			j := i
			for j+1 < len(nodes) && nodes[j+1].chainable() &&
				nodes[j+1].up == nodes[j] && consumers[nodes[j]] == 1 {
				j++
			}
			if j > i {
				out = append(out, fuseNode(nodes[i:j+1]))
				i = j + 1
				continue
			}
		}
		out = append(out, n)
		i++
	}
	return out
}

// fuseNode builds the fused task for a chain of narrow members. The
// fused execution deploys one task per partition; inside it, the head
// charges the per-record iterator overhead once for its nominal count,
// then each member charges only its batch compute demand (at the
// nominal scale of its own input) and transforms the records — the
// function-call composition Flink's chaining achieves. Relative to the
// unfused plan this strictly removes (k-1) deploy rounds and every
// downstream member's record overhead while charging identical
// compute, so chaining can only reduce simulated time.
func fuseNode(members []*node) *node {
	name := "chain"
	for _, m := range members {
		name += ":" + m.name
	}
	last := members[len(members)-1]
	return &node{
		kind:     kChain,
		name:     name,
		up:       members[0].up,
		aliasFor: last,
		chainLen: len(members),
		run: func(ctx *Ctx, in any) any {
			j := ctx.Job
			eps := members[0].erase(in)
			out := make([]epart, len(eps))
			j.RunTasks(name, len(eps), func(p int) int { return eps[p].worker }, func(p int, tm *flink.TaskManager) {
				ep := eps[p]
				j.ChargeCompute(ep.nominal, costmodel.Work{})
				items, nominal := ep.items, ep.nominal
				for _, m := range members {
					j.ChargeWork(m.perRec.Scale(float64(nominal)))
					next := make([]any, 0, len(items))
					for _, v := range items {
						next = append(next, m.rec(v)...)
					}
					// Maps are 1:1 by construction: nominal is carried, not
					// rescaled, matching the eager operator on empty
					// partitions too.
					if m.kind != kMap {
						nominal = flink.ScaleNominal(nominal, int64(len(items)), int64(len(next)))
					}
					items = next
				}
				out[p] = epart{worker: ep.worker, items: items, nominal: nominal}
			})
			recordBytes := in.(flink.AnyDataset).RecordBytes()
			for _, m := range members {
				if m.outBytes >= 0 {
					recordBytes = m.outBytes
				}
			}
			return last.build(j, recordBytes, out)
		},
	}
}
