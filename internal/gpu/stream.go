package gpu

import (
	"fmt"
	"time"

	"gflink/internal/costmodel"
	"gflink/internal/membuf"
	"gflink/internal/vclock"
)

// Stream is a CUDA stream: a FIFO command queue executed by its own
// virtual-time process. Commands within one stream run in order;
// commands on different streams overlap, which is what the three-stage
// H2D / kernel / D2H pipeline exploits (Section 5).
type Stream struct {
	dev  *Device
	id   int
	cpu  costmodel.CPU
	q    *vclock.Queue[func()]
	done *vclock.Event
	// syncEv/syncSet are the reusable Synchronize rendezvous: one event,
	// reset per call, plus its prebuilt Set closure, so synchronizing a
	// stream allocates nothing. Safe because a stream has one
	// synchronizer at a time (its owning stream worker).
	syncEv  *vclock.Event
	syncSet func()
}

// NewStream creates a stream and starts its executor process. Streams
// must be closed via Device.Close (or Stream.close) before the
// simulation ends.
func (d *Device) NewStream(cpu costmodel.CPU) *Stream {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		panic("gpu: NewStream on closed device")
	}
	s := &Stream{
		dev:  d,
		id:   len(d.streams),
		cpu:  cpu,
		q:    vclock.NewQueue[func()](d.clock),
		done: vclock.NewEvent(d.clock),
	}
	s.syncEv = vclock.NewEvent(d.clock)
	s.syncSet = s.syncEv.Set
	d.streams = append(d.streams, s)
	d.mu.Unlock()
	d.clock.Go(fmt.Sprintf("gpu%d-stream%d", d.ID, s.id), s.run)
	return s
}

func (s *Stream) run() {
	defer s.done.Set()
	for {
		op, ok := s.q.Get()
		if !ok {
			return
		}
		op()
	}
}

func (s *Stream) close() {
	s.q.Close()
	s.done.Wait()
}

// Device returns the stream's device.
func (s *Stream) Device() *Device { return s.dev }

// H2DAsync enqueues an asynchronous host-to-device copy. As with
// cudaMemcpyH2DAsync, the host buffer must be page-locked; enqueuing an
// unpinned buffer panics, surfacing the programming error the paper's
// cudaHostRegister step exists to prevent.
//
//gflink:hotpath
func (s *Stream) H2DAsync(dst *Buffer, src *membuf.HBuffer, nominal int64) {
	if !src.Pinned() {
		panic("gpu: H2DAsync requires a page-locked host buffer")
	}
	//gflink:allow-alloc per-op command closure, bounded by stream queue depth
	s.q.Put(func() {
		s.dev.h2d.Acquire(1)
		s.dev.clock.Sleep(s.dev.pcie.TransferTime(nominal))
		s.dev.h2d.Release(1)
		copy(dst.data, src.Bytes())
		s.dev.count(&s.dev.h2dCopies, &s.dev.h2dBytes, nominal)
	})
}

// CopyRange is one byte range of a host/device buffer pair, used by the
// projected and chunked transfer paths. Off/Len address the *real*
// backing bytes; the virtual-time charge comes from the separate
// nominal argument.
type CopyRange struct {
	Off, Len int
}

// clampCopy copies src[off:off+len] into dst[off:off+len], clamping the
// range to both slices (real backings are scale-divided, so a nominal
// range may exceed them).
func clampCopy(dst, src []byte, r CopyRange) {
	if r.Off >= len(src) || r.Off >= len(dst) || r.Len <= 0 {
		return
	}
	end := r.Off + r.Len
	if end > len(src) {
		end = len(src)
	}
	if end > len(dst) {
		end = len(dst)
	}
	copy(dst[r.Off:end], src[r.Off:end])
}

// H2DRangesAsync enqueues one asynchronous host-to-device copy that
// moves only the given real byte ranges (at their original offsets, so
// device-side column addressing is unchanged) while charging nominal
// bytes of PCIe time — the projected-column transfer of the paper's
// transfer channel. A nil ranges slice copies everything, which makes a
// zero-range call a pure timing charge (used by chunk shadows).
//
//gflink:hotpath
func (s *Stream) H2DRangesAsync(dst *Buffer, src *membuf.HBuffer, ranges []CopyRange, nominal int64) {
	if !src.Pinned() {
		panic("gpu: H2DRangesAsync requires a page-locked host buffer")
	}
	//gflink:allow-alloc per-op command closure, bounded by stream queue depth
	s.q.Put(func() {
		s.dev.h2d.Acquire(1)
		s.dev.clock.Sleep(s.dev.pcie.TransferTime(nominal))
		s.dev.h2d.Release(1)
		if ranges == nil {
			copy(dst.data, src.Bytes())
		} else {
			for _, r := range ranges {
				clampCopy(dst.data, src.Bytes(), r)
			}
		}
		s.dev.count(&s.dev.h2dCopies, &s.dev.h2dBytes, nominal)
	})
}

// D2HRangesAsync is the device-to-host counterpart of H2DRangesAsync.
func (s *Stream) D2HRangesAsync(dst *membuf.HBuffer, src *Buffer, ranges []CopyRange, nominal int64) {
	if !dst.Pinned() {
		panic("gpu: D2HRangesAsync requires a page-locked host buffer")
	}
	//gflink:allow-alloc per-op command closure, bounded by stream queue depth
	s.q.Put(func() {
		s.dev.d2h.Acquire(1)
		s.dev.clock.Sleep(s.dev.pcie.TransferTime(nominal))
		s.dev.d2h.Release(1)
		if ranges == nil {
			copy(dst.Bytes(), src.data)
		} else {
			for _, r := range ranges {
				clampCopy(dst.Bytes(), src.data, r)
			}
		}
		s.dev.count(&s.dev.d2hCopies, &s.dev.d2hBytes, nominal)
	})
}

// D2HAsync enqueues an asynchronous device-to-host copy into a
// page-locked buffer.
//
//gflink:hotpath
func (s *Stream) D2HAsync(dst *membuf.HBuffer, src *Buffer, nominal int64) {
	if !dst.Pinned() {
		panic("gpu: D2HAsync requires a page-locked host buffer")
	}
	//gflink:allow-alloc per-op command closure, bounded by stream queue depth
	s.q.Put(func() {
		s.dev.d2h.Acquire(1)
		s.dev.clock.Sleep(s.dev.pcie.TransferTime(nominal))
		s.dev.d2h.Release(1)
		copy(dst.Bytes(), src.data)
		s.dev.count(&s.dev.d2hCopies, &s.dev.d2hBytes, nominal)
	})
}

// LaunchAsync enqueues a kernel launch. Errors surface through the
// returned future.
//
//gflink:hotpath
func (s *Stream) LaunchAsync(name string, ctx *KernelCtx) *Future {
	//gflink:allow-alloc per-launch future and completion event, bounded by stream queue depth
	f := &Future{ev: vclock.NewEvent(s.dev.clock)}
	//gflink:allow-alloc per-op command closure, bounded by stream queue depth
	s.q.Put(func() {
		f.dur, f.err = s.dev.Launch(name, ctx)
		f.ev.Set()
	})
	return f
}

// LaunchChunkAsync enqueues chunk k of a chunks-way split kernel
// launch. The chunk first waits for the after event (the previous
// chunk's future, giving cross-stream chunk ordering), then occupies
// the compute engine for its share of the roofline time. Only chunk 0
// executes the kernel function for real — over the full buffers, so
// results are bit-identical to a monolithic launch; later chunks are
// timing shadows that re-charge the recorded demand divided by chunks.
// Every chunk pays its own launch overhead, which is exactly the
// overhead the chunk policy trades against transfer/kernel overlap.
func (s *Stream) LaunchChunkAsync(name string, ctx *KernelCtx, k, chunks int, after *vclock.Event) *Future {
	f := &Future{ev: vclock.NewEvent(s.dev.clock)}
	s.q.Put(func() {
		if after != nil {
			after.Wait()
		}
		f.dur, f.err = s.dev.launchChunk(name, ctx, k, chunks)
		f.ev.Set()
	})
	return f
}

// Done returns the future's completion event, usable as the after
// dependency of a later chunk.
func (f *Future) Done() *vclock.Event { return f.ev }

// Callback enqueues fn to run in stream order (cudaStreamAddCallback).
//
//gflink:hotpath
func (s *Stream) Callback(fn func()) {
	s.q.Put(fn)
}

// Synchronize blocks the calling process until every previously
// enqueued command has completed (cudaStreamSynchronize). It reuses the
// stream's rendezvous event, so it allocates nothing; a stream supports
// one synchronizer at a time (its owning stream worker).
//
//gflink:hotpath
func (s *Stream) Synchronize() {
	s.syncEv.Reset()
	s.q.Put(s.syncSet)
	s.syncEv.Wait()
}

// Future is the completion handle of an asynchronous launch.
type Future struct {
	ev  *vclock.Event
	dur time.Duration
	err error
}

// Wait blocks until the launch completes and returns its kernel
// duration and error.
func (f *Future) Wait() (time.Duration, error) {
	f.ev.Wait()
	return f.dur, f.err
}
