package gpu

import (
	"fmt"
	"time"

	"gflink/internal/costmodel"
	"gflink/internal/membuf"
	"gflink/internal/vclock"
)

// cmdOp selects which stream command a pooled cmd shell carries.
type cmdOp uint8

const (
	opH2D cmdOp = iota
	opH2DRanges
	opD2H
	opD2HRanges
	opLaunch
	opLaunchChunk
	opCallback
)

// cmd is a pooled stream command. Commands used to be heap-allocated
// closures — one per async op, which made every GWork pay three
// closure allocations on the pinned hot route. Shells now recycle
// through a per-stream free list: the submitting process takes a shell,
// the stream's executor process returns it after running the command.
// The two processes share the free list without locking for the same
// reason every other cooperative-scheduler scratch does: the virtual
// clock runs exactly one process at a time, with happens-before edges
// through the clock's own synchronization.
type cmd struct {
	op      cmdOp
	dbuf    *Buffer         // device side of a copy
	hbuf    *membuf.HBuffer // host side of a copy
	ranges  []CopyRange
	nominal int64
	name    string
	ctx     *KernelCtx
	fut     *Future
	k       int
	chunks  int
	after   *vclock.Event
	fn      func()
}

// Stream is a CUDA stream: a FIFO command queue executed by its own
// virtual-time process. Commands within one stream run in order;
// commands on different streams overlap, which is what the three-stage
// H2D / kernel / D2H pipeline exploits (Section 5).
type Stream struct {
	dev  *Device
	id   int
	cpu  costmodel.CPU
	q    *vclock.Queue[*cmd]
	done *vclock.Event
	// syncEv/syncSet are the reusable Synchronize rendezvous: one event,
	// reset per call, plus its prebuilt Set closure, so synchronizing a
	// stream allocates nothing. Safe because a stream has one
	// synchronizer at a time (its owning stream worker).
	syncEv  *vclock.Event
	syncSet func()
	// freeCmds recycles command shells between the submitter and the
	// executor process (see cmd).
	freeCmds []*cmd
}

// NewStream creates a stream and starts its executor process. Streams
// must be closed via Device.Close (or Stream.close) before the
// simulation ends.
func (d *Device) NewStream(cpu costmodel.CPU) *Stream {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		panic("gpu: NewStream on closed device")
	}
	s := &Stream{
		dev:  d,
		id:   len(d.streams),
		cpu:  cpu,
		q:    vclock.NewQueue[*cmd](d.clock),
		done: vclock.NewEvent(d.clock),
	}
	s.syncEv = vclock.NewEvent(d.clock)
	s.syncSet = s.syncEv.Set
	d.streams = append(d.streams, s)
	d.mu.Unlock()
	d.clock.Go(fmt.Sprintf("gpu%d-stream%d", d.ID, s.id), s.run)
	return s
}

// takeCmd pops a command shell from the free list.
//
//gflink:hotpath
func (s *Stream) takeCmd() *cmd {
	if n := len(s.freeCmds); n > 0 {
		c := s.freeCmds[n-1]
		s.freeCmds = s.freeCmds[:n-1]
		return c
	}
	//gflink:allow-alloc pool cold start: command shells recycle through the free list thereafter
	return &cmd{}
}

// recycle clears a shell's references and returns it to the free list.
// Only the executor process calls this, after the command has run.
func (s *Stream) recycle(c *cmd) {
	*c = cmd{}
	s.freeCmds = append(s.freeCmds, c)
}

func (s *Stream) run() {
	defer s.done.Set()
	for {
		c, ok := s.q.Get()
		if !ok {
			return
		}
		s.exec(c)
		s.recycle(c)
	}
}

// exec runs one command on the executor process.
func (s *Stream) exec(c *cmd) {
	switch c.op {
	case opH2D:
		s.dev.h2d.Acquire(1)
		s.dev.clock.Sleep(s.dev.pcie.TransferTime(c.nominal))
		s.dev.h2d.Release(1)
		copy(c.dbuf.data, c.hbuf.Bytes())
		s.dev.count(&s.dev.h2dCopies, &s.dev.h2dBytes, c.nominal)
	case opH2DRanges:
		s.dev.h2d.Acquire(1)
		s.dev.clock.Sleep(s.dev.pcie.TransferTime(c.nominal))
		s.dev.h2d.Release(1)
		if c.ranges == nil {
			copy(c.dbuf.data, c.hbuf.Bytes())
		} else {
			for _, r := range c.ranges {
				clampCopy(c.dbuf.data, c.hbuf.Bytes(), r)
			}
		}
		s.dev.count(&s.dev.h2dCopies, &s.dev.h2dBytes, c.nominal)
	case opD2H:
		s.dev.d2h.Acquire(1)
		s.dev.clock.Sleep(s.dev.pcie.TransferTime(c.nominal))
		s.dev.d2h.Release(1)
		copy(c.hbuf.Bytes(), c.dbuf.data)
		s.dev.count(&s.dev.d2hCopies, &s.dev.d2hBytes, c.nominal)
	case opD2HRanges:
		s.dev.d2h.Acquire(1)
		s.dev.clock.Sleep(s.dev.pcie.TransferTime(c.nominal))
		s.dev.d2h.Release(1)
		if c.ranges == nil {
			copy(c.hbuf.Bytes(), c.dbuf.data)
		} else {
			for _, r := range c.ranges {
				clampCopy(c.hbuf.Bytes(), c.dbuf.data, r)
			}
		}
		s.dev.count(&s.dev.d2hCopies, &s.dev.d2hBytes, c.nominal)
	case opLaunch:
		c.fut.dur, c.fut.err = s.dev.Launch(c.name, c.ctx)
		c.fut.ev.Set()
	case opLaunchChunk:
		if c.after != nil {
			c.after.Wait()
		}
		c.fut.dur, c.fut.err = s.dev.launchChunk(c.name, c.ctx, c.k, c.chunks)
		c.fut.ev.Set()
	case opCallback:
		c.fn()
	}
}

func (s *Stream) close() {
	s.q.Close()
	s.done.Wait()
}

// Device returns the stream's device.
func (s *Stream) Device() *Device { return s.dev }

// H2DAsync enqueues an asynchronous host-to-device copy. As with
// cudaMemcpyH2DAsync, the host buffer must be page-locked; enqueuing an
// unpinned buffer panics, surfacing the programming error the paper's
// cudaHostRegister step exists to prevent.
//
//gflink:hotpath
func (s *Stream) H2DAsync(dst *Buffer, src *membuf.HBuffer, nominal int64) {
	if !src.Pinned() {
		panic("gpu: H2DAsync requires a page-locked host buffer")
	}
	c := s.takeCmd()
	c.op, c.dbuf, c.hbuf, c.nominal = opH2D, dst, src, nominal
	s.q.Put(c)
}

// CopyRange is one byte range of a host/device buffer pair, used by the
// projected and chunked transfer paths. Off/Len address the *real*
// backing bytes; the virtual-time charge comes from the separate
// nominal argument.
type CopyRange struct {
	Off, Len int
}

// clampCopy copies src[off:off+len] into dst[off:off+len], clamping the
// range to both slices (real backings are scale-divided, so a nominal
// range may exceed them).
func clampCopy(dst, src []byte, r CopyRange) {
	if r.Off >= len(src) || r.Off >= len(dst) || r.Len <= 0 {
		return
	}
	end := r.Off + r.Len
	if end > len(src) {
		end = len(src)
	}
	if end > len(dst) {
		end = len(dst)
	}
	copy(dst[r.Off:end], src[r.Off:end])
}

// H2DRangesAsync enqueues one asynchronous host-to-device copy that
// moves only the given real byte ranges (at their original offsets, so
// device-side column addressing is unchanged) while charging nominal
// bytes of PCIe time — the projected-column transfer of the paper's
// transfer channel. A nil ranges slice copies everything, which makes a
// zero-range call a pure timing charge (used by chunk shadows).
//
//gflink:hotpath
func (s *Stream) H2DRangesAsync(dst *Buffer, src *membuf.HBuffer, ranges []CopyRange, nominal int64) {
	if !src.Pinned() {
		panic("gpu: H2DRangesAsync requires a page-locked host buffer")
	}
	c := s.takeCmd()
	c.op, c.dbuf, c.hbuf, c.ranges, c.nominal = opH2DRanges, dst, src, ranges, nominal
	s.q.Put(c)
}

// D2HRangesAsync is the device-to-host counterpart of H2DRangesAsync.
func (s *Stream) D2HRangesAsync(dst *membuf.HBuffer, src *Buffer, ranges []CopyRange, nominal int64) {
	if !dst.Pinned() {
		panic("gpu: D2HRangesAsync requires a page-locked host buffer")
	}
	c := s.takeCmd()
	c.op, c.dbuf, c.hbuf, c.ranges, c.nominal = opD2HRanges, src, dst, ranges, nominal
	s.q.Put(c)
}

// D2HAsync enqueues an asynchronous device-to-host copy into a
// page-locked buffer.
//
//gflink:hotpath
func (s *Stream) D2HAsync(dst *membuf.HBuffer, src *Buffer, nominal int64) {
	if !dst.Pinned() {
		panic("gpu: D2HAsync requires a page-locked host buffer")
	}
	c := s.takeCmd()
	c.op, c.dbuf, c.hbuf, c.nominal = opD2H, src, dst, nominal
	s.q.Put(c)
}

// LaunchAsync enqueues a kernel launch. Errors surface through the
// returned future. Each call allocates a fresh future, so callers may
// hold any number of them outstanding; hot paths that launch one
// kernel at a time should use LaunchAsyncInto with a reusable Future
// instead.
func (s *Stream) LaunchAsync(name string, ctx *KernelCtx) *Future {
	f := &Future{ev: vclock.NewEvent(s.dev.clock)}
	s.launch(f, name, ctx)
	return f
}

// LaunchAsyncInto enqueues a kernel launch that completes through the
// caller-owned reusable future f (see NewFuture). The future is valid
// until the caller's next LaunchAsyncInto with the same future; a
// stream worker that waits on each launch before issuing the next one
// can therefore run an unbounded number of launches with zero
// allocations.
//
//gflink:hotpath
func (s *Stream) LaunchAsyncInto(f *Future, name string, ctx *KernelCtx) {
	f.ev.Reset()
	s.launch(f, name, ctx)
}

//gflink:hotpath
func (s *Stream) launch(f *Future, name string, ctx *KernelCtx) {
	c := s.takeCmd()
	c.op, c.fut, c.name, c.ctx = opLaunch, f, name, ctx
	s.q.Put(c)
}

// LaunchChunkAsync enqueues chunk k of a chunks-way split kernel
// launch. The chunk first waits for the after event (the previous
// chunk's future, giving cross-stream chunk ordering), then occupies
// the compute engine for its share of the roofline time. Only chunk 0
// executes the kernel function for real — over the full buffers, so
// results are bit-identical to a monolithic launch; later chunks are
// timing shadows that re-charge the recorded demand divided by chunks.
// Every chunk pays its own launch overhead, which is exactly the
// overhead the chunk policy trades against transfer/kernel overlap.
func (s *Stream) LaunchChunkAsync(name string, ctx *KernelCtx, k, chunks int, after *vclock.Event) *Future {
	f := &Future{ev: vclock.NewEvent(s.dev.clock)}
	c := s.takeCmd()
	c.op, c.fut, c.name, c.ctx = opLaunchChunk, f, name, ctx
	c.k, c.chunks, c.after = k, chunks, after
	s.q.Put(c)
	return f
}

// Done returns the future's completion event, usable as the after
// dependency of a later chunk.
func (f *Future) Done() *vclock.Event { return f.ev }

// Callback enqueues fn to run in stream order (cudaStreamAddCallback).
//
//gflink:hotpath
func (s *Stream) Callback(fn func()) {
	c := s.takeCmd()
	c.op, c.fn = opCallback, fn
	s.q.Put(c)
}

// Synchronize blocks the calling process until every previously
// enqueued command has completed (cudaStreamSynchronize). It reuses the
// stream's rendezvous event, so it allocates nothing; a stream supports
// one synchronizer at a time (its owning stream worker).
//
//gflink:hotpath
func (s *Stream) Synchronize() {
	s.syncEv.Reset()
	c := s.takeCmd()
	c.op, c.fn = opCallback, s.syncSet
	s.q.Put(c)
	s.syncEv.Wait()
}

// Future is the completion handle of an asynchronous launch.
type Future struct {
	ev  *vclock.Event
	dur time.Duration
	err error
}

// NewFuture builds a reusable completion handle for LaunchAsyncInto.
func NewFuture(c *vclock.Clock) *Future {
	return &Future{ev: vclock.NewEvent(c)}
}

// Wait blocks until the launch completes and returns its kernel
// duration and error.
func (f *Future) Wait() (time.Duration, error) {
	f.ev.Wait()
	return f.dur, f.err
}
