// Package gpu implements the virtual GPU devices GFlink schedules work
// onto. A Device mirrors the CUDA execution model the paper relies on:
//
//   - a device-memory allocator with explicit capacity (cudaMalloc /
//     cudaFree),
//   - one or two DMA copy engines over a shared PCIe link (half- vs
//     full-duplex, Section 4.1.2),
//   - asynchronous Streams — FIFO command queues whose operations from
//     different streams overlap (Section 5),
//   - kernels: registered Go functions that really execute over the raw
//     device-buffer bytes (so results are bit-checkable against CPU
//     references) and report their resource demand, which is charged on
//     the virtual clock through the roofline model in costmodel.
//
// Device buffers distinguish the *nominal* size (what the paper-scale
// dataset would occupy, used for capacity accounting and timing) from
// the *real* backing bytes (the scaled-down data actually computed on).
package gpu

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"gflink/internal/costmodel"
	"gflink/internal/membuf"
	"gflink/internal/vclock"
)

// MallocOverhead is the fixed driver cost of one device allocation.
const MallocOverhead = 10 * time.Microsecond

// Device is one virtual GPU.
type Device struct {
	ID      int
	Node    int
	Profile costmodel.GPUProfile

	clock   *vclock.Clock
	pcie    costmodel.PCIe
	compute *vclock.Semaphore
	h2d     *vclock.Semaphore
	d2h     *vclock.Semaphore

	mu        sync.Mutex
	usedBytes int64 // nominal
	nextBuf   int64
	streams   []*Stream
	closed    bool
	// freeBufs recycles Buffer shells (and their real backing arrays)
	// across Malloc/Free cycles, so the per-GWork transient allocations
	// of the three-stage pipeline are allocation-free at steady state.
	// Capacity accounting above is untouched: a recycled buffer was
	// subtracted from usedBytes at Free and re-added at Malloc.
	freeBufs []*Buffer

	// Counters for tests and EXPERIMENTS.md.
	kernels   int64
	h2dBytes  int64
	d2hBytes  int64
	h2dCopies int64
	d2hCopies int64
}

// NewDevice creates a device with the given profile on a node's PCIe
// link. With one copy engine the same DMA unit serves both directions
// (half duplex); with two, H2D and D2H can overlap.
func NewDevice(clock *vclock.Clock, id, node int, profile costmodel.GPUProfile, pcie costmodel.PCIe) *Device {
	d := &Device{
		ID:      id,
		Node:    node,
		Profile: profile,
		clock:   clock,
		pcie:    pcie,
		compute: vclock.NewSemaphore(clock, fmt.Sprintf("gpu%d-compute", id), 1),
	}
	h2d := vclock.NewSemaphore(clock, fmt.Sprintf("gpu%d-dma0", id), 1)
	d.h2d = h2d
	if profile.CopyEngines >= 2 {
		d.d2h = vclock.NewSemaphore(clock, fmt.Sprintf("gpu%d-dma1", id), 1)
	} else {
		d.d2h = h2d
	}
	return d
}

// Buffer is a device-memory allocation.
type Buffer struct {
	dev     *Device
	id      int64
	nominal int64
	data    []byte
	freed   bool
}

// NominalSize returns the capacity-accounting size in bytes.
func (b *Buffer) NominalSize() int64 { return b.nominal }

// Bytes returns the real backing storage kernels compute on.
func (b *Buffer) Bytes() []byte { return b.data }

// Device returns the owning device.
func (b *Buffer) Device() *Device { return b.dev }

// Malloc allocates nominal bytes of device memory backed by real bytes
// of host storage. It fails when device memory is exhausted. Buffer
// shells and backing arrays are recycled from freed buffers, so a
// steady-state Malloc/Free cycle does not touch the host heap.
//
//gflink:hotpath
func (d *Device) Malloc(nominal int64, real int) (*Buffer, error) {
	if nominal <= 0 || real < 0 {
		//gflink:allow-alloc error diagnostic: invalid-argument cold path
		return nil, fmt.Errorf("gpu: malloc nominal=%d real=%d", nominal, real)
	}
	d.mu.Lock()
	if d.usedBytes+nominal > d.Profile.MemBytes {
		free := d.Profile.MemBytes - d.usedBytes
		d.mu.Unlock()
		//gflink:allow-alloc error diagnostic: out-of-memory cold path
		return nil, fmt.Errorf("gpu%d: out of device memory: need %d, free %d", d.ID, nominal, free)
	}
	d.usedBytes += nominal
	d.nextBuf++
	id := d.nextBuf
	var b *Buffer
	if n := len(d.freeBufs); n > 0 {
		b = d.freeBufs[n-1]
		d.freeBufs[n-1] = nil
		d.freeBufs = d.freeBufs[:n-1]
	}
	d.mu.Unlock()
	d.clock.Sleep(MallocOverhead)
	if b == nil {
		//gflink:allow-alloc cold start: the device buffer free list amortizes this away
		b = &Buffer{}
	}
	if cap(b.data) < real {
		//gflink:allow-alloc backing growth to the largest transfer seen on this device
		b.data = make([]byte, real)
	} else {
		// Reuse the recycled backing, zeroed to match a fresh cudaMalloc'd
		// mirror exactly (results must be byte-identical to the
		// allocate-fresh path).
		b.data = b.data[:real]
		clear(b.data)
	}
	b.dev, b.id, b.nominal, b.freed = d, id, nominal, false
	return b, nil
}

// Free releases the buffer into the device's recycle list. Double frees
// panic.
//
//gflink:hotpath
func (d *Device) Free(b *Buffer) {
	if b.dev != d {
		panic("gpu: Free on wrong device")
	}
	if b.freed {
		panic("gpu: double free of device buffer")
	}
	b.freed = true
	d.mu.Lock()
	d.usedBytes -= b.nominal
	//gflink:allow-alloc amortized growth of the device buffer free list
	d.freeBufs = append(d.freeBufs, b)
	d.mu.Unlock()
}

// UsedBytes reports allocated nominal device memory.
func (d *Device) UsedBytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.usedBytes
}

// FreeBytes reports remaining nominal device memory.
func (d *Device) FreeBytes() int64 {
	return d.Profile.MemBytes - d.UsedBytes()
}

// MemcpyH2D synchronously copies src's logical bytes into dst,
// charging nominal bytes of PCIe time on the H2D engine. Unpinned
// buffers pay an extra host staging copy, as the real CUDA driver does.
func (d *Device) MemcpyH2D(dst *Buffer, src *membuf.HBuffer, nominal int64, cpu costmodel.CPU) {
	if !src.Pinned() {
		d.clock.Sleep(cpu.HeapCopy(nominal))
	}
	d.h2d.Acquire(1)
	d.clock.Sleep(d.pcie.TransferTime(nominal))
	d.h2d.Release(1)
	copy(dst.data, src.Bytes())
	d.count(&d.h2dCopies, &d.h2dBytes, nominal)
}

// MemcpyD2H synchronously copies src device bytes back into dst.
func (d *Device) MemcpyD2H(dst *membuf.HBuffer, src *Buffer, nominal int64, cpu costmodel.CPU) {
	d.d2h.Acquire(1)
	d.clock.Sleep(d.pcie.TransferTime(nominal))
	d.d2h.Release(1)
	if !dst.Pinned() {
		d.clock.Sleep(cpu.HeapCopy(nominal))
	}
	copy(dst.Bytes(), src.data)
	d.count(&d.d2hCopies, &d.d2hBytes, nominal)
}

func (d *Device) count(ops, bytes *int64, n int64) {
	d.mu.Lock()
	*ops++
	*bytes += n
	d.mu.Unlock()
}

// KernelCtx is what a kernel invocation sees: device buffers, launch
// geometry, scalar arguments, and the element counts. Kernels must call
// Charge to report their resource demand; the device converts it to
// virtual time through the roofline model.
type KernelCtx struct {
	// In and Out are the device buffers bound to the launch.
	In  []*Buffer
	Out []*Buffer
	// N is the real element count to compute on; Nominal is the
	// paper-scale element count used for cost accounting.
	N       int
	Nominal int64
	// GridSize and BlockSize mirror the CUDA launch configuration.
	GridSize, BlockSize int
	// Args carries scalar kernel arguments.
	Args []int64

	work     costmodel.Work
	coalesce float64
}

// Charge accumulates resource demand (totals at nominal scale).
func (k *KernelCtx) Charge(w costmodel.Work) { k.work = k.work.Add(w) }

// SetCoalesce declares the global-memory coalescing factor the kernel's
// access pattern achieves (see costmodel.CoalesceFactor).
func (k *KernelCtx) SetCoalesce(f float64) { k.coalesce = f }

// Func is a device kernel: it computes for real over ctx's buffers and
// reports cost via Charge.
type Func func(ctx *KernelCtx) error

// registry maps kernel names (the paper's ptx entry names) to
// implementations.
var (
	regMu    sync.RWMutex
	registry = make(map[string]Func)
)

// Register installs a kernel under name, replacing any previous
// registration (mirrors loading a ptx module).
func Register(name string, fn Func) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[name] = fn
}

// Lookup resolves a kernel by name.
func Lookup(name string) (Func, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	fn, ok := registry[name]
	return fn, ok
}

// RegisteredKernels lists kernel names, sorted (for docs and tests).
func RegisteredKernels() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Launch executes the named kernel synchronously on the calling
// process: it waits for the device's compute engine, really runs the
// kernel function, and charges the reported cost. It returns the
// virtual duration of the kernel (excluding queueing).
//
//gflink:hotpath
func (d *Device) Launch(name string, ctx *KernelCtx) (time.Duration, error) {
	fn, ok := Lookup(name)
	if !ok {
		//gflink:allow-alloc error diagnostic: unregistered-kernel cold path
		return 0, fmt.Errorf("gpu: kernel %q not registered", name)
	}
	d.compute.Acquire(1)
	defer d.compute.Release(1)
	//gflink:allow-alloc kernel bodies are user code; the launch machinery itself is allocation-free
	if err := fn(ctx); err != nil {
		//gflink:allow-alloc error diagnostic: kernel-failure cold path
		return 0, fmt.Errorf("gpu: kernel %q: %w", name, err)
	}
	coalesce := ctx.coalesce
	if coalesce == 0 {
		coalesce = 1
	}
	dur := d.Profile.KernelTime(ctx.work, coalesce)
	d.clock.Sleep(dur)
	d.mu.Lock()
	d.kernels++
	d.mu.Unlock()
	return dur, nil
}

// launchChunk runs chunk k of a chunks-way split launch (see
// Stream.LaunchChunkAsync). The caller guarantees chunk k-1 completed,
// so ctx.work already holds the demand chunk 0's real execution
// charged.
func (d *Device) launchChunk(name string, ctx *KernelCtx, k, chunks int) (time.Duration, error) {
	fn, ok := Lookup(name)
	if !ok {
		return 0, fmt.Errorf("gpu: kernel %q not registered", name)
	}
	d.compute.Acquire(1)
	defer d.compute.Release(1)
	if k == 0 {
		if err := fn(ctx); err != nil {
			return 0, fmt.Errorf("gpu: kernel %q: %w", name, err)
		}
	}
	coalesce := ctx.coalesce
	if coalesce == 0 {
		coalesce = 1
	}
	dur := d.Profile.KernelTime(ctx.work.Scale(1/float64(chunks)), coalesce)
	d.clock.Sleep(dur)
	d.mu.Lock()
	d.kernels++
	d.mu.Unlock()
	return dur, nil
}

// Stats is a snapshot of device activity counters.
type Stats struct {
	Kernels              int64
	H2DCopies, D2HCopies int64
	H2DBytes, D2HBytes   int64
}

// Stats returns the device counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return Stats{
		Kernels:   d.kernels,
		H2DCopies: d.h2dCopies,
		D2HCopies: d.d2hCopies,
		H2DBytes:  d.h2dBytes,
		D2HBytes:  d.d2hBytes,
	}
}

// Close shuts down every stream created on the device. After Close the
// device accepts no stream operations; it must be called before the
// simulation ends so stream executor processes terminate.
func (d *Device) Close() {
	d.mu.Lock()
	streams := d.streams
	d.streams = nil
	d.closed = true
	d.mu.Unlock()
	for _, s := range streams {
		s.close()
	}
}
