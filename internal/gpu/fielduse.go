package gpu

import (
	"sync"

	"gflink/internal/gstruct"
)

// FieldUse declares which GStruct columns of a kernel's primary input a
// launch actually touches. It is the registry-level analogue of reading
// the ptx: the transfer channel consults it to ship only the referenced
// columns of SoA blocks (column projection). Both functions receive the
// block's schema and the launch's scalar Args, because read sets often
// depend on them (e.g. the first d feature columns of a wider schema).
// Returning ok=false means "unknown for this schema/args" — the caller
// must fall back to shipping every column.
type FieldUse struct {
	Reads  func(s *gstruct.Schema, args []int64) (gstruct.ColSet, bool)
	Writes func(s *gstruct.Schema, args []int64) (gstruct.ColSet, bool)
}

var (
	fieldUseMu  sync.RWMutex
	fieldUseReg = make(map[string]FieldUse)
)

// RegisterFieldUse installs the field-use declaration for a kernel name,
// replacing any previous one. Kernels without a declaration are treated
// as reading every column.
func RegisterFieldUse(name string, u FieldUse) {
	fieldUseMu.Lock()
	defer fieldUseMu.Unlock()
	fieldUseReg[name] = u
}

// LookupFieldUse resolves a kernel's field-use declaration.
func LookupFieldUse(name string) (FieldUse, bool) {
	fieldUseMu.RLock()
	defer fieldUseMu.RUnlock()
	u, ok := fieldUseReg[name]
	return u, ok
}

// KernelReads returns the columns of s the named kernel reads for the
// given args, or ok=false when no declaration applies (unknown kernel,
// nil Reads, or the declaration cannot answer for this schema/args).
func KernelReads(name string, s *gstruct.Schema, args []int64) (gstruct.ColSet, bool) {
	u, ok := LookupFieldUse(name)
	if !ok || u.Reads == nil {
		return 0, false
	}
	return u.Reads(s, args)
}
