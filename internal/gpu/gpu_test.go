package gpu

import (
	"encoding/binary"
	"math"
	"strings"
	"testing"
	"time"

	"gflink/internal/costmodel"
	"gflink/internal/membuf"
	"gflink/internal/vclock"
)

func testRig() (*vclock.Clock, *Device, *membuf.Pool) {
	c := vclock.New()
	d := NewDevice(c, 0, 0, costmodel.C2050, costmodel.DefaultPCIe)
	p := membuf.NewPool(c, costmodel.Default(), membuf.Config{PageSize: 4096})
	return c, d, p
}

func init() {
	Register("test.double", func(ctx *KernelCtx) error {
		in, out := ctx.In[0].Bytes(), ctx.Out[0].Bytes()
		for i := 0; i < ctx.N; i++ {
			v := math.Float32frombits(binary.LittleEndian.Uint32(in[i*4:]))
			binary.LittleEndian.PutUint32(out[i*4:], math.Float32bits(v*2))
		}
		ctx.Charge(costmodel.Work{Flops: float64(ctx.Nominal), BytesRead: 4 * float64(ctx.Nominal), BytesWritten: 4 * float64(ctx.Nominal)})
		return nil
	})
}

func TestMallocFreeAccounting(t *testing.T) {
	c, d, _ := testRig()
	c.Run(func() {
		b, err := d.Malloc(1<<20, 1024)
		if err != nil {
			t.Fatal(err)
		}
		if d.UsedBytes() != 1<<20 || len(b.Bytes()) != 1024 {
			t.Errorf("used=%d real=%d", d.UsedBytes(), len(b.Bytes()))
		}
		d.Free(b)
		if d.UsedBytes() != 0 {
			t.Errorf("used after free = %d", d.UsedBytes())
		}
	})
}

func TestMallocOOM(t *testing.T) {
	c, d, _ := testRig()
	c.Run(func() {
		if _, err := d.Malloc(d.Profile.MemBytes+1, 0); err == nil {
			t.Error("over-capacity malloc succeeded")
		}
		b, err := d.Malloc(d.Profile.MemBytes, 0)
		if err != nil {
			t.Fatalf("exact-capacity malloc failed: %v", err)
		}
		if _, err := d.Malloc(1, 0); err == nil {
			t.Error("malloc on full device succeeded")
		}
		d.Free(b)
	})
}

func TestDoubleFreePanics(t *testing.T) {
	defer func() {
		if r := recover(); r == nil || !strings.Contains(r.(error).Error(), "double free") {
			t.Errorf("want double-free panic, got %v", r)
		}
	}()
	c, d, _ := testRig()
	c.Run(func() {
		b, _ := d.Malloc(100, 0)
		d.Free(b)
		d.Free(b)
	})
}

func TestSyncCopyMovesBytesAndChargesTime(t *testing.T) {
	c, d, p := testRig()
	cpu := costmodel.DefaultCPU
	var elapsed time.Duration
	c.Run(func() {
		h := p.MustAllocate(8)
		copy(h.Bytes(), []byte("gpudata!"))
		h.Pin()
		buf, _ := d.Malloc(1<<20, 8)
		start := c.Now()
		d.MemcpyH2D(buf, h, 1<<20, cpu)
		elapsed = c.Now() - start
		if string(buf.Bytes()) != "gpudata!" {
			t.Errorf("device bytes = %q", buf.Bytes())
		}
		out := p.MustAllocate(8)
		out.Pin()
		d.MemcpyD2H(out, buf, 1<<20, cpu)
		if string(out.Bytes()) != "gpudata!" {
			t.Errorf("host bytes = %q", out.Bytes())
		}
	})
	if want := costmodel.DefaultPCIe.TransferTime(1 << 20); elapsed != want {
		t.Errorf("H2D took %v, want %v", elapsed, want)
	}
}

func TestUnpinnedSyncCopyPaysStaging(t *testing.T) {
	c, d, p := testRig()
	cpu := costmodel.DefaultCPU
	var pinned, unpinned time.Duration
	c.Run(func() {
		buf, _ := d.Malloc(1<<20, 0)
		hp := p.MustAllocate(8)
		hp.Pin()
		t0 := c.Now()
		d.MemcpyH2D(buf, hp, 1<<20, cpu)
		pinned = c.Now() - t0
		hu := p.MustAllocate(8)
		t1 := c.Now()
		d.MemcpyH2D(buf, hu, 1<<20, cpu)
		unpinned = c.Now() - t1
	})
	if unpinned <= pinned {
		t.Errorf("unpinned copy (%v) not slower than pinned (%v)", unpinned, pinned)
	}
	if unpinned-pinned != cpu.HeapCopy(1<<20) {
		t.Errorf("staging surcharge = %v, want %v", unpinned-pinned, cpu.HeapCopy(1<<20))
	}
}

func TestLaunchComputesAndCharges(t *testing.T) {
	c, d, _ := testRig()
	c.Run(func() {
		in, _ := d.Malloc(1024, 16)
		out, _ := d.Malloc(1024, 16)
		for i := 0; i < 4; i++ {
			binary.LittleEndian.PutUint32(in.Bytes()[i*4:], math.Float32bits(float32(i+1)))
		}
		ctx := &KernelCtx{In: []*Buffer{in}, Out: []*Buffer{out}, N: 4, Nominal: 1 << 20}
		start := c.Now()
		dur, err := d.Launch("test.double", ctx)
		if err != nil {
			t.Fatal(err)
		}
		if got := c.Now() - start; got != dur {
			t.Errorf("wall %v != reported %v", got, dur)
		}
		want := d.Profile.KernelTime(costmodel.Work{Flops: 1 << 20, BytesRead: 4 << 20, BytesWritten: 4 << 20}, 1)
		if dur != want {
			t.Errorf("kernel time %v, want %v", dur, want)
		}
		for i := 0; i < 4; i++ {
			got := math.Float32frombits(binary.LittleEndian.Uint32(out.Bytes()[i*4:]))
			if got != float32(i+1)*2 {
				t.Errorf("out[%d] = %v", i, got)
			}
		}
	})
	if d.Stats().Kernels != 1 {
		t.Errorf("kernel count = %d", d.Stats().Kernels)
	}
}

func TestLaunchUnknownKernel(t *testing.T) {
	c, d, _ := testRig()
	c.Run(func() {
		if _, err := d.Launch("nope", &KernelCtx{}); err == nil {
			t.Error("unknown kernel launched")
		}
	})
}

func TestKernelsSerializeOnComputeEngine(t *testing.T) {
	c, d, _ := testRig()
	end := c.Run(func() {
		g := vclock.NewGroup(c)
		for i := 0; i < 3; i++ {
			g.Go("launcher", func() {
				ctx := &KernelCtx{N: 0, Nominal: 1}
				ctx.Charge(costmodel.Work{Flops: d.Profile.SPGFLOPS * 1e9 * d.Profile.Efficiency}) // exactly 1s
				if _, err := d.Launch("test.noop", ctx); err != nil {
					t.Error(err)
				}
			})
		}
		g.Wait()
	})
	want := 3 * (time.Second + d.Profile.LaunchOverhead)
	if end != want {
		t.Errorf("3 serialized kernels took %v, want %v", end, want)
	}
}

func init() {
	Register("test.noop", func(ctx *KernelCtx) error { return nil })
}

func TestStreamOrderingAndOverlap(t *testing.T) {
	c := vclock.New()
	// Two copy engines so H2D and D2H overlap.
	d := NewDevice(c, 0, 0, costmodel.K20, costmodel.DefaultPCIe)
	p := membuf.NewPool(c, costmodel.Default(), membuf.Config{PageSize: 4096})
	cpu := costmodel.DefaultCPU
	var elapsed time.Duration
	c.Run(func() {
		defer d.Close()
		s1 := d.NewStream(cpu)
		s2 := d.NewStream(cpu)
		h1 := p.MustAllocate(4)
		h2 := p.MustAllocate(4)
		h1.Pin()
		h2.Pin()
		b1, _ := d.Malloc(100<<20, 4)
		b2, _ := d.Malloc(100<<20, 4)
		t0 := c.Now()
		// Opposite directions on different streams: with 2 copy engines
		// these overlap.
		s1.H2DAsync(b1, h1, 100<<20)
		s2.D2HAsync(h2, b2, 100<<20)
		s1.Synchronize()
		s2.Synchronize()
		elapsed = c.Now() - t0
	})
	if want := costmodel.DefaultPCIe.TransferTime(100 << 20); elapsed != want {
		t.Errorf("full-duplex streams took %v, want %v", elapsed, want)
	}
}

func TestHalfDuplexSerializesDirections(t *testing.T) {
	c := vclock.New()
	d := NewDevice(c, 0, 0, costmodel.C2050, costmodel.DefaultPCIe) // 1 copy engine
	p := membuf.NewPool(c, costmodel.Default(), membuf.Config{PageSize: 4096})
	cpu := costmodel.DefaultCPU
	var elapsed time.Duration
	c.Run(func() {
		defer d.Close()
		s1 := d.NewStream(cpu)
		s2 := d.NewStream(cpu)
		h1 := p.MustAllocate(4)
		h2 := p.MustAllocate(4)
		h1.Pin()
		h2.Pin()
		b1, _ := d.Malloc(100<<20, 4)
		b2, _ := d.Malloc(100<<20, 4)
		t0 := c.Now()
		s1.H2DAsync(b1, h1, 100<<20)
		s2.D2HAsync(h2, b2, 100<<20)
		s1.Synchronize()
		s2.Synchronize()
		elapsed = c.Now() - t0
	})
	if want := 2 * costmodel.DefaultPCIe.TransferTime(100<<20); elapsed != want {
		t.Errorf("half-duplex streams took %v, want %v", elapsed, want)
	}
}

func TestAsyncCopyRequiresPinnedBuffer(t *testing.T) {
	c, d, p := testRig()
	defer func() {
		if recover() == nil {
			t.Error("H2DAsync with unpinned buffer did not panic")
		}
	}()
	c.Run(func() {
		defer d.Close()
		s := d.NewStream(costmodel.DefaultCPU)
		h := p.MustAllocate(4)
		b, _ := d.Malloc(100, 4)
		s.H2DAsync(b, h, 100)
	})
}

func TestThreeStagePipelineOverlaps(t *testing.T) {
	// The heart of Section 5: with multiple streams, H2D(i+1) overlaps
	// K(i); total time approaches max-stage-sum rather than sum of all
	// stages.
	c := vclock.New()
	d := NewDevice(c, 0, 0, costmodel.K20, costmodel.DefaultPCIe)
	p := membuf.NewPool(c, costmodel.Default(), membuf.Config{PageSize: 4096})
	cpu := costmodel.DefaultCPU

	Register("test.sleepy", func(ctx *KernelCtx) error {
		ctx.Charge(costmodel.Work{Flops: d.Profile.SPGFLOPS * 1e9 * d.Profile.Efficiency * 0.1}) // 100ms
		return nil
	})
	const blocks = 8
	nominal := int64(250 << 20) // ~87ms transfer each way at 3 GB/s

	pipelined := c.Run(func() {
		defer d.Close()
		streams := []*Stream{d.NewStream(cpu), d.NewStream(cpu), d.NewStream(cpu)}
		futs := make([]*Future, 0, blocks)
		for i := 0; i < blocks; i++ {
			s := streams[i%len(streams)]
			h := p.MustAllocate(8)
			h.Pin()
			in, err := d.Malloc(nominal, 8)
			if err != nil {
				t.Fatal(err)
			}
			out, err := d.Malloc(nominal, 8)
			if err != nil {
				t.Fatal(err)
			}
			s.H2DAsync(in, h, nominal)
			futs = append(futs, s.LaunchAsync("test.sleepy", &KernelCtx{In: []*Buffer{in}, Out: []*Buffer{out}, Nominal: 1}))
			s.D2HAsync(h, out, nominal)
		}
		for _, s := range streams {
			s.Synchronize()
		}
		for _, f := range futs {
			if _, err := f.Wait(); err != nil {
				t.Error(err)
			}
		}
	})

	// Serial reference: every stage strictly in order on one stream.
	c2 := vclock.New()
	d2 := NewDevice(c2, 0, 0, costmodel.K20, costmodel.DefaultPCIe)
	p2 := membuf.NewPool(c2, costmodel.Default(), membuf.Config{PageSize: 4096})
	serial := c2.Run(func() {
		defer d2.Close()
		s := d2.NewStream(cpu)
		for i := 0; i < blocks; i++ {
			h := p2.MustAllocate(8)
			h.Pin()
			in, _ := d2.Malloc(nominal, 8)
			out, _ := d2.Malloc(nominal, 8)
			s.H2DAsync(in, h, nominal)
			s.LaunchAsync("test.sleepy", &KernelCtx{In: []*Buffer{in}, Out: []*Buffer{out}, Nominal: 1})
			s.D2HAsync(h, out, nominal)
			s.Synchronize()
		}
	})
	if float64(pipelined) > 0.55*float64(serial) {
		t.Errorf("pipelining gained too little: pipelined %v vs serial %v", pipelined, serial)
	}
}

func TestRegisteredKernelsSorted(t *testing.T) {
	names := RegisteredKernels()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("kernel list not sorted/unique: %v", names)
		}
	}
	if _, ok := Lookup("test.double"); !ok {
		t.Error("test.double not found")
	}
}
