package kernels

import (
	"fmt"

	"gflink/internal/costmodel"
	"gflink/internal/gpu"
	"gflink/internal/gstruct"
)

// LinRegGradKernel computes a block's partial gradient for batch
// least-squares linear regression (the classification workload of
// Fig 6b): for each sample, err = w·x + b - y, accumulating err*x[j]
// per weight plus err for the bias and err² for the loss.
//
// Buffers:
//
//	In[0]  — samples, SoA float32: d feature columns then the label
//	         column
//	In[1]  — weights, d+1 float32 (w then bias)
//	Out[0] — partials, d+2 float32: gradient (d+1) then loss sum
//	Args   — [d]
const LinRegGradKernel = "gflink.linregGrad"

// SampleSchema returns the GStruct for d features plus a label: d+1
// scalar fields so the SoA layout yields one contiguous column per
// feature, with the label as the last column (offset d*n).
func SampleSchema(d int) *gstruct.Schema {
	fields := make([]gstruct.Field, d+1)
	for j := 0; j < d; j++ {
		fields[j] = gstruct.Field{Name: fmt.Sprintf("f%d", j), Kind: gstruct.Float32}
	}
	fields[d] = gstruct.Field{Name: "label", Kind: gstruct.Float32}
	return gstruct.MustNew(fmt.Sprintf("Sample%d", d), 4, fields...)
}

// LinRegWork returns the per-sample demand of one gradient step.
func LinRegWork(d int) costmodel.Work {
	return costmodel.Work{
		Flops:     float64(4*d + 6), // dot product + gradient accumulation
		BytesRead: float64(4 * (d + 1)),
	}
}

func init() {
	gpu.Register(LinRegGradKernel, func(ctx *gpu.KernelCtx) error {
		if len(ctx.In) < 2 || len(ctx.Out) < 1 || len(ctx.Args) < 1 {
			return fmt.Errorf("linregGrad: want 2 inputs, 1 output, 1 arg")
		}
		d := int(ctx.Args[0])
		samples, weights, out := ctx.In[0].Bytes(), ctx.In[1].Bytes(), ctx.Out[0].Bytes()
		for i := range out {
			out[i] = 0
		}
		n := ctx.N
		for i := 0; i < n; i++ {
			pred := f32(weights, d) // bias
			for j := 0; j < d; j++ {
				pred += f32(weights, j) * f32(samples, j*n+i)
			}
			err := pred - f32(samples, d*n+i) // label column is last
			for j := 0; j < d; j++ {
				putF32(out, j, f32(out, j)+err*f32(samples, j*n+i))
			}
			putF32(out, d, f32(out, d)+err)
			putF32(out, d+1, f32(out, d+1)+err*err)
		}
		ctx.Charge(LinRegWork(d).Scale(float64(ctx.Nominal)))
		return nil
	})
}

// CPULinRegGrad is the reference per-partition gradient: samples are
// row-major feature vectors with the label appended.
func CPULinRegGrad(samples [][]float32, weights []float32, d int) []float32 {
	out := make([]float32, d+2)
	for _, s := range samples {
		pred := weights[d]
		for j := 0; j < d; j++ {
			pred += weights[j] * s[j]
		}
		err := pred - s[d]
		for j := 0; j < d; j++ {
			out[j] += err * s[j]
		}
		out[d] += err
		out[d+1] += err * err
	}
	return out
}

// ApplyGradient performs one SGD step: w -= lr/n * grad.
func ApplyGradient(weights, grad []float32, n float32, lr float32, d int) []float32 {
	next := make([]float32, d+1)
	for j := 0; j <= d; j++ {
		next[j] = weights[j] - lr*grad[j]/n
	}
	return next
}
