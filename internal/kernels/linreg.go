package kernels

import (
	"fmt"

	"gflink/internal/costmodel"
	"gflink/internal/gpu"
	"gflink/internal/gstruct"
)

// LinRegGradKernel computes a block's partial gradient for batch
// least-squares linear regression (the classification workload of
// Fig 6b): for each sample, err = w·x + b - y, accumulating err*x[j]
// per weight plus err for the bias and err² for the loss.
//
// Buffers:
//
//	In[0]  — samples, SoA float32: d feature columns then the label
//	         column
//	In[1]  — weights, d+1 float32 (w then bias)
//	Out[0] — partials, d+2 float32: gradient (d+1) then loss sum
//	Args   — [d]
const LinRegGradKernel = "gflink.linregGrad"

// SampleSchema returns the GStruct for d features plus a label: d+1
// scalar fields so the SoA layout yields one contiguous column per
// feature, with the label as the last column (offset d*n).
func SampleSchema(d int) *gstruct.Schema {
	return SampleSchemaMeta(d, 0)
}

// SampleSchemaMeta widens SampleSchema with meta unread float32
// metadata columns after the label — columns the gradient kernel never
// touches, which column projection can keep off the transfer channel.
func SampleSchemaMeta(d, meta int) *gstruct.Schema {
	fields := make([]gstruct.Field, d+1+meta)
	for j := 0; j < d; j++ {
		fields[j] = gstruct.Field{Name: fmt.Sprintf("f%d", j), Kind: gstruct.Float32}
	}
	fields[d] = gstruct.Field{Name: "label", Kind: gstruct.Float32}
	for m := 0; m < meta; m++ {
		fields[d+1+m] = gstruct.Field{Name: fmt.Sprintf("m%d", m), Kind: gstruct.Float32}
	}
	name := fmt.Sprintf("Sample%d", d)
	if meta > 0 {
		name = fmt.Sprintf("Sample%dm%d", d, meta)
	}
	return gstruct.MustNew(name, 4, fields...)
}

// LinRegWork returns the per-sample demand of one gradient step.
func LinRegWork(d int) costmodel.Work {
	return costmodel.Work{
		Flops:     float64(4*d + 6), // dot product + gradient accumulation
		BytesRead: float64(4 * (d + 1)),
	}
}

func init() {
	// linregGrad reads the d feature columns plus the label column — the
	// first d+1 fields (Args[0] = d); trailing metadata columns of a
	// wider sample schema are projectable.
	gpu.RegisterFieldUse(LinRegGradKernel, gpu.FieldUse{
		Reads: func(s *gstruct.Schema, args []int64) (gstruct.ColSet, bool) {
			if len(args) < 1 {
				return 0, false
			}
			d := int(args[0])
			if d < 0 || d+1 > s.NumFields() || d+1 > gstruct.MaxCols {
				return 0, false
			}
			return gstruct.ColRange(0, d+1), true
		},
		Writes: func(s *gstruct.Schema, args []int64) (gstruct.ColSet, bool) {
			return 0, true // gradients go to Out, the block is read-only
		},
	})
	gpu.Register(LinRegGradKernel, func(ctx *gpu.KernelCtx) error {
		if len(ctx.In) < 2 || len(ctx.Out) < 1 || len(ctx.Args) < 1 {
			return fmt.Errorf("linregGrad: want 2 inputs, 1 output, 1 arg")
		}
		d := int(ctx.Args[0])
		samples, weights, out := ctx.In[0].Bytes(), ctx.In[1].Bytes(), ctx.Out[0].Bytes()
		for i := range out {
			out[i] = 0
		}
		n := ctx.N
		for i := 0; i < n; i++ {
			pred := f32(weights, d) // bias
			for j := 0; j < d; j++ {
				pred += f32(weights, j) * f32(samples, j*n+i)
			}
			err := pred - f32(samples, d*n+i) // label column is last
			for j := 0; j < d; j++ {
				putF32(out, j, f32(out, j)+err*f32(samples, j*n+i))
			}
			putF32(out, d, f32(out, d)+err)
			putF32(out, d+1, f32(out, d+1)+err*err)
		}
		ctx.Charge(LinRegWork(d).Scale(float64(ctx.Nominal)))
		return nil
	})
}

// CPULinRegGrad is the reference per-partition gradient: samples are
// row-major feature vectors with the label appended.
func CPULinRegGrad(samples [][]float32, weights []float32, d int) []float32 {
	out := make([]float32, d+2)
	for _, s := range samples {
		pred := weights[d]
		for j := 0; j < d; j++ {
			pred += weights[j] * s[j]
		}
		err := pred - s[d]
		for j := 0; j < d; j++ {
			out[j] += err * s[j]
		}
		out[d] += err
		out[d+1] += err * err
	}
	return out
}

// ApplyGradient performs one SGD step: w -= lr/n * grad.
func ApplyGradient(weights, grad []float32, n float32, lr float32, d int) []float32 {
	next := make([]float32, d+1)
	for j := 0; j <= d; j++ {
		next[j] = weights[j] - lr*grad[j]/n
	}
	return next
}
