package kernels

import (
	"fmt"

	"gflink/internal/costmodel"
	"gflink/internal/gpu"
)

// WindowAggKernel sums float32 values into per-key slots — the GPU body
// of the stream layer's tumbling-window keyed aggregation. The stream
// layer pre-hashes keys to slot indices on the host, so the kernel is a
// pure scatter-add over a dense table and the CPU reference can replay
// the exact same float additions in the exact same order (results are
// bit-comparable across placements).
//
// Buffers:
//
//	In[0]  — packed records: (slot uint32, value float32) pairs
//	Out[0] — sums, float32[slots]; the kernel accumulates, so callers
//	         zero the buffer between windows
//	Args   — [slots]
const WindowAggKernel = "gflink.windowAgg"

// WindowAggWork returns the demand of aggregating records window rows:
// one hash-free scatter-add per record over the packed 8-byte pairs.
func WindowAggWork(records int64) costmodel.Work {
	return costmodel.Work{
		Flops:        2 * float64(records),
		BytesRead:    8 * float64(records),
		BytesWritten: 4 * float64(records),
	}
}

func init() {
	gpu.Register(WindowAggKernel, func(ctx *gpu.KernelCtx) error {
		if len(ctx.In) < 1 || len(ctx.Out) < 1 || len(ctx.Args) < 1 {
			return fmt.Errorf("windowAgg: want 1 input, 1 output, 1 arg")
		}
		slots := int(ctx.Args[0])
		if slots <= 0 {
			return fmt.Errorf("windowAgg: non-positive slot count %d", slots)
		}
		in, out := ctx.In[0].Bytes(), ctx.Out[0].Bytes()
		// ctx.N is the real record count; each record is 8 packed bytes.
		n := ctx.N
		if max := len(in) / 8; n > max {
			n = max
		}
		for i := 0; i < n; i++ {
			slot := int(u32(in, 2*i)) % slots
			putF32(out, slot, f32(out, slot)+f32(in, 2*i+1))
		}
		ctx.Charge(WindowAggWork(ctx.Nominal))
		return nil
	})
}

// CPUWindowAgg is the reference aggregation over the same packed (slot,
// value) pairs, accumulating into sums in record order — bit-identical
// to the kernel.
func CPUWindowAgg(in []byte, records, slots int, sums []float32) {
	if max := len(in) / 8; records > max {
		records = max
	}
	for i := 0; i < records; i++ {
		slot := int(u32(in, 2*i)) % slots
		sums[slot] += f32(in, 2*i+1)
	}
}
