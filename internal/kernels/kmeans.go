package kernels

import (
	"fmt"
	"math"

	"gflink/internal/costmodel"
	"gflink/internal/gpu"
	"gflink/internal/gstruct"
)

// KMeansAssignKernel assigns every point of a block to its nearest
// centroid and accumulates per-centroid partial sums, fusing the assign
// and partial-update steps of one KMeans iteration (the dominant
// operation the paper offloads: "searching for the closest centers").
//
// Buffers:
//
//	In[0]  — points, SoA float32, d coordinates per point
//	In[1]  — centroids, k*d float32
//	Out[0] — partials, k*(d+1) float32: per-centroid coordinate sums
//	         followed by the member count
//	Args   — [k, d]
const KMeansAssignKernel = "gflink.kmeansAssign"

// PointSchema returns the GStruct for d-dimensional float32 points: d
// scalar fields, so the SoA layout stores one contiguous column per
// coordinate (the coalesced columnar format of Section 3.2) and the
// kernel addresses coordinate j of point i at j*n+i.
func PointSchema(d int) *gstruct.Schema {
	fields := make([]gstruct.Field, d)
	for j := range fields {
		fields[j] = gstruct.Field{Name: fmt.Sprintf("c%d", j), Kind: gstruct.Float32}
	}
	return gstruct.MustNew(fmt.Sprintf("Point%d", d), 4, fields...)
}

// KMeansWork returns the per-point resource demand of one assign step.
func KMeansWork(k, d int) costmodel.Work {
	return costmodel.Work{
		Flops:        float64(3*k*d + d), // distance terms + accumulate
		BytesRead:    float64(4 * d),     // centroids live in shared memory
		BytesWritten: 0,                  // partials are negligible per point
	}
}

func init() {
	// kmeansAssign reads only the first d coordinate columns of the
	// point block (Args[1]); any trailing metadata columns a wider
	// schema carries are never touched, so the transfer channel may
	// project them away.
	gpu.RegisterFieldUse(KMeansAssignKernel, gpu.FieldUse{
		Reads: func(s *gstruct.Schema, args []int64) (gstruct.ColSet, bool) {
			if len(args) < 2 {
				return 0, false
			}
			d := int(args[1])
			if d <= 0 || d > s.NumFields() || d > gstruct.MaxCols {
				return 0, false
			}
			return gstruct.ColRange(0, d), true
		},
		Writes: func(s *gstruct.Schema, args []int64) (gstruct.ColSet, bool) {
			return 0, true // partials go to Out, the block is read-only
		},
	})
	gpu.Register(KMeansAssignKernel, func(ctx *gpu.KernelCtx) error {
		if len(ctx.In) < 2 || len(ctx.Out) < 1 || len(ctx.Args) < 2 {
			return fmt.Errorf("kmeansAssign: want 2 inputs, 1 output, 2 args")
		}
		k, d := int(ctx.Args[0]), int(ctx.Args[1])
		points, cents, out := ctx.In[0].Bytes(), ctx.In[1].Bytes(), ctx.Out[0].Bytes()
		for i := range out {
			out[i] = 0
		}
		n := ctx.N
		for i := 0; i < n; i++ {
			best, bestDist := 0, float32(math.MaxFloat32)
			for c := 0; c < k; c++ {
				var dist float32
				for j := 0; j < d; j++ {
					// SoA: coordinate j of point i is at column j, row i.
					diff := f32(points, j*n+i) - f32(cents, c*d+j)
					dist += diff * diff
				}
				if dist < bestDist {
					best, bestDist = c, dist
				}
			}
			for j := 0; j < d; j++ {
				putF32(out, best*(d+1)+j, f32(out, best*(d+1)+j)+f32(points, j*n+i))
			}
			putF32(out, best*(d+1)+d, f32(out, best*(d+1)+d)+1)
		}
		ctx.Charge(KMeansWork(k, d).Scale(float64(ctx.Nominal)))
		return nil
	})
}

// CPUKMeansAssign is the reference per-partition implementation: it
// returns the k*(d+1) partial sums for the given points (row-major
// [][]float32) and flat centroids.
func CPUKMeansAssign(points [][]float32, cents []float32, k, d int) []float32 {
	out := make([]float32, k*(d+1))
	for _, p := range points {
		best, bestDist := 0, float32(math.MaxFloat32)
		for c := 0; c < k; c++ {
			var dist float32
			for j := 0; j < d; j++ {
				diff := p[j] - cents[c*d+j]
				dist += diff * diff
			}
			if dist < bestDist {
				best, bestDist = c, dist
			}
		}
		for j := 0; j < d; j++ {
			out[best*(d+1)+j] += p[j]
		}
		out[best*(d+1)+d]++
	}
	return out
}

// UpdateCentroids folds partial sums into new centroids; empty clusters
// keep their previous position.
func UpdateCentroids(partials []float32, prev []float32, k, d int) []float32 {
	next := make([]float32, k*d)
	for c := 0; c < k; c++ {
		count := partials[c*(d+1)+d]
		for j := 0; j < d; j++ {
			if count > 0 {
				next[c*d+j] = partials[c*(d+1)+j] / count
			} else {
				next[c*d+j] = prev[c*d+j]
			}
		}
	}
	return next
}

// MergePartials sums per-block or per-partition partials element-wise.
func MergePartials(dst, src []float32) {
	for i, v := range src {
		dst[i] += v
	}
}
