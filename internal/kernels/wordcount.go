package kernels

import (
	"fmt"

	"gflink/internal/costmodel"
	"gflink/internal/gpu"
)

// WordCountKernel tokenizes a raw ASCII text block on whitespace,
// hashes each word and accumulates counts into a dense vocabulary
// table. Word identity is the FNV-1a hash modulo the table size; both
// the kernel and the CPU reference use WordSlot so results compare
// exactly.
//
// Buffers:
//
//	In[0]  — text bytes
//	Out[0] — counts, uint32[table]
//	Args   — [table]
const WordCountKernel = "gflink.wordCount"

// WordCountWork returns the demand of scanning nominalBytes of text.
func WordCountWork(nominalBytes int64) costmodel.Work {
	return costmodel.Work{Flops: 2 * float64(nominalBytes), BytesRead: float64(nominalBytes)}
}

// WordSlot maps a word to its counting slot via FNV-1a.
func WordSlot(word []byte, table int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range word {
		h ^= uint64(b)
		h *= prime64
	}
	return int(h % uint64(table))
}

func init() {
	gpu.Register(WordCountKernel, func(ctx *gpu.KernelCtx) error {
		if len(ctx.In) < 1 || len(ctx.Out) < 1 || len(ctx.Args) < 1 {
			return fmt.Errorf("wordCount: want 1 input, 1 output, 1 arg")
		}
		table := int(ctx.Args[0])
		text, out := ctx.In[0].Bytes(), ctx.Out[0].Bytes()
		// ctx.N is the real text length in bytes.
		n := ctx.N
		if n > len(text) {
			n = len(text)
		}
		start := -1
		for i := 0; i <= n; i++ {
			isSpace := i == n || text[i] == ' ' || text[i] == '\n'
			if isSpace {
				if start >= 0 {
					slot := WordSlot(text[start:i], table)
					putU32(out, slot, u32(out, slot)+1)
					start = -1
				}
			} else if start < 0 {
				start = i
			}
		}
		ctx.Charge(WordCountWork(ctx.Nominal))
		return nil
	})
}

// CPUWordCount is the reference tokenizer over the same hash table.
func CPUWordCount(text []byte, table int) []uint32 {
	out := make([]uint32, table)
	start := -1
	for i := 0; i <= len(text); i++ {
		isSpace := i == len(text) || text[i] == ' ' || text[i] == '\n'
		if isSpace {
			if start >= 0 {
				out[WordSlot(text[start:i], table)]++
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	return out
}
