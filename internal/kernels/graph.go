package kernels

import (
	"fmt"

	"gflink/internal/costmodel"
	"gflink/internal/gpu"
	"gflink/internal/gstruct"
)

// EdgeSchema is the GStruct of one directed edge (src, dst node ids).
var EdgeSchema = gstruct.MustNew("Edge", 4,
	gstruct.Field{Name: "src", Kind: gstruct.Int32},
	gstruct.Field{Name: "dst", Kind: gstruct.Int32},
)

// PageRankContribKernel scatters rank contributions of an edge block
// into a dense per-block accumulator (one PageRank superstep's
// edge-local half; the cross-partition aggregation stays a Flink
// shuffle, which is why PageRank's end-to-end speedup is bounded).
//
// Buffers:
//
//	In[0]  — edges, AoS Edge (cacheable: the graph is static)
//	In[1]  — ranks, float32[n] (fresh every superstep)
//	In[2]  — outdeg, int32[n] (cacheable: static)
//	Out[0] — contrib, float32[n]
//	Args   — [n]
const PageRankContribKernel = "gflink.pagerankContrib"

// PageRankWork is the per-edge demand of the contribution scatter.
var PageRankWork = costmodel.Work{Flops: 2, BytesRead: 16, BytesWritten: 4}

// ConnCompKernel propagates component labels along an edge block (one
// label-propagation superstep): out[v] = min(label[v], min over
// incoming edges of label[u]).
//
// Buffers:
//
//	In[0]  — edges, AoS Edge
//	In[1]  — labels, uint32[n]
//	Out[0] — new labels, uint32[n]
//	Args   — [n]
const ConnCompKernel = "gflink.concompProp"

// ConnCompWork is the per-edge demand of label propagation.
var ConnCompWork = costmodel.Work{Flops: 1, BytesRead: 16, BytesWritten: 4}

func init() {
	gpu.Register(PageRankContribKernel, func(ctx *gpu.KernelCtx) error {
		if len(ctx.In) < 3 || len(ctx.Out) < 1 || len(ctx.Args) < 1 {
			return fmt.Errorf("pagerankContrib: want 3 inputs, 1 output, 1 arg")
		}
		edges, ranks, outdeg, out := ctx.In[0].Bytes(), ctx.In[1].Bytes(), ctx.In[2].Bytes(), ctx.Out[0].Bytes()
		for i := range out {
			out[i] = 0
		}
		for e := 0; e < ctx.N; e++ {
			src := int(i32(edges, e*2))
			dst := int(i32(edges, e*2+1))
			deg := i32(outdeg, src)
			if deg > 0 {
				contrib := f32(ranks, src) / float32(deg)
				putF32(out, dst, f32(out, dst)+contrib)
			}
		}
		ctx.Charge(PageRankWork.Scale(float64(ctx.Nominal)))
		return nil
	})

	gpu.Register(ConnCompKernel, func(ctx *gpu.KernelCtx) error {
		if len(ctx.In) < 2 || len(ctx.Out) < 1 || len(ctx.Args) < 1 {
			return fmt.Errorf("concompProp: want 2 inputs, 1 output, 1 arg")
		}
		n := int(ctx.Args[0])
		edges, labels, out := ctx.In[0].Bytes(), ctx.In[1].Bytes(), ctx.Out[0].Bytes()
		for v := 0; v < n; v++ {
			putU32(out, v, u32(labels, v))
		}
		for e := 0; e < ctx.N; e++ {
			src := int(i32(edges, e*2))
			dst := int(i32(edges, e*2+1))
			ls, ld := u32(labels, src), u32(out, dst)
			if ls < ld {
				putU32(out, dst, ls)
			}
		}
		ctx.Charge(ConnCompWork.Scale(float64(ctx.Nominal)))
		return nil
	})
}

// CPUPageRankContrib is the reference edge-block scatter: edges are
// (src, dst) pairs, ranks and outdeg are dense node arrays.
func CPUPageRankContrib(edges [][2]int32, ranks []float32, outdeg []int32, n int) []float32 {
	out := make([]float32, n)
	for _, e := range edges {
		if d := outdeg[e[0]]; d > 0 {
			out[e[1]] += ranks[e[0]] / float32(d)
		}
	}
	return out
}

// ApplyDamping folds aggregated contributions into next-iteration ranks.
func ApplyDamping(contrib []float32, damping float32, n int) []float32 {
	out := make([]float32, n)
	base := (1 - damping) / float32(n)
	for i, c := range contrib {
		out[i] = base + damping*c
	}
	return out
}

// CPUConnCompProp is the reference label-propagation step. It returns
// the new labels and whether anything changed.
func CPUConnCompProp(edges [][2]int32, labels []uint32) ([]uint32, bool) {
	out := make([]uint32, len(labels))
	copy(out, labels)
	changed := false
	for _, e := range edges {
		if ls := labels[e[0]]; ls < out[e[1]] {
			out[e[1]] = ls
			changed = true
		}
	}
	return out, changed
}

// MinLabels merges per-block label arrays element-wise.
func MinLabels(dst, src []uint32) {
	for i, v := range src {
		if v < dst[i] {
			dst[i] = v
		}
	}
}
