package kernels

import (
	"fmt"

	"gflink/internal/costmodel"
	"gflink/internal/gpu"
)

// SpMVCSRKernel multiplies a CSR row-block by a dense vector, the
// cuBLAS-backed operation of the paper's SpMV benchmark (Fig 6a, 7b).
//
// Buffers:
//
//	In[0]  — CSR block: int32 nrows, int32 nnz, int32 rowPtr[nrows+1],
//	         int32 colIdx[nnz], float32 vals[nnz]
//	In[1]  — x, float32[ncols]
//	Out[0] — y, float32[nrows]
//	Args   — [nominalNNZ, nominalRows] (cost accounting; the real block
//	         carries scaled-down nnz). nominalRows falls back to
//	         ctx.Nominal when absent.
const SpMVCSRKernel = "gflink.spmvCsr"

// SpMVWork returns the demand of multiplying nominalNNZ non-zeros with
// nominalRows output rows.
func SpMVWork(nominalNNZ, nominalRows int64) costmodel.Work {
	return costmodel.Work{
		Flops:        2 * float64(nominalNNZ),
		BytesRead:    8*float64(nominalNNZ) + 4*float64(nominalRows),
		BytesWritten: 4 * float64(nominalRows),
	}
}

// CSRBlock is the decoded header view of an encoded CSR block.
type CSRBlock struct {
	Rows, NNZ int
	rowPtrOff int // int32 index of rowPtr[0]
	colOff    int
	valOff    int
	buf       []byte
}

// DecodeCSR parses the block header of an encoded CSR buffer.
func DecodeCSR(buf []byte) (CSRBlock, error) {
	if len(buf) < 8 {
		return CSRBlock{}, fmt.Errorf("csr block too small: %d bytes", len(buf))
	}
	b := CSRBlock{
		Rows: int(i32(buf, 0)),
		NNZ:  int(i32(buf, 1)),
		buf:  buf,
	}
	b.rowPtrOff = 2
	b.colOff = b.rowPtrOff + b.Rows + 1
	b.valOff = b.colOff + b.NNZ
	need := (b.valOff + b.NNZ) * 4
	if len(buf) < need {
		return CSRBlock{}, fmt.Errorf("csr block truncated: %d < %d bytes", len(buf), need)
	}
	return b, nil
}

// EncodedCSRSize returns the byte size of an encoded CSR block.
func EncodedCSRSize(rows, nnz int) int { return (2 + rows + 1 + nnz + nnz) * 4 }

// EncodeCSR packs a CSR matrix block into buf (which must be at least
// EncodedCSRSize bytes).
func EncodeCSR(buf []byte, rowPtr []int32, colIdx []int32, vals []float32) {
	rows := len(rowPtr) - 1
	nnz := len(colIdx)
	putI32(buf, 0, int32(rows))
	putI32(buf, 1, int32(nnz))
	for i, v := range rowPtr {
		putI32(buf, 2+i, v)
	}
	for i, v := range colIdx {
		putI32(buf, 2+rows+1+i, v)
	}
	for i, v := range vals {
		putF32(buf, 2+rows+1+nnz+i, v)
	}
}

// RowPtr returns rowPtr[i].
func (b CSRBlock) RowPtr(i int) int32 { return i32(b.buf, b.rowPtrOff+i) }

// Col returns colIdx[i].
func (b CSRBlock) Col(i int) int32 { return i32(b.buf, b.colOff+i) }

// Val returns vals[i].
func (b CSRBlock) Val(i int) float32 { return f32(b.buf, b.valOff+i) }

func init() {
	gpu.Register(SpMVCSRKernel, func(ctx *gpu.KernelCtx) error {
		if len(ctx.In) < 2 || len(ctx.Out) < 1 || len(ctx.Args) < 1 {
			return fmt.Errorf("spmvCsr: want 2 inputs, 1 output, 1 arg")
		}
		blk, err := DecodeCSR(ctx.In[0].Bytes())
		if err != nil {
			return err
		}
		x, y := ctx.In[1].Bytes(), ctx.Out[0].Bytes()
		for r := 0; r < blk.Rows; r++ {
			var sum float32
			for i := blk.RowPtr(r); i < blk.RowPtr(r+1); i++ {
				sum += blk.Val(int(i)) * f32(x, int(blk.Col(int(i))))
			}
			putF32(y, r, sum)
		}
		nomRows := ctx.Nominal
		if len(ctx.Args) > 1 {
			nomRows = ctx.Args[1]
		}
		ctx.Charge(SpMVWork(ctx.Args[0], nomRows))
		return nil
	})
}

// CPUSpMV is the reference row-block multiply.
func CPUSpMV(rowPtr []int32, colIdx []int32, vals []float32, x []float32) []float32 {
	rows := len(rowPtr) - 1
	y := make([]float32, rows)
	for r := 0; r < rows; r++ {
		var sum float32
		for i := rowPtr[r]; i < rowPtr[r+1]; i++ {
			sum += vals[i] * x[colIdx[i]]
		}
		y[r] = sum
	}
	return y
}
