// Package kernels implements the device kernels the GFlink benchmarks
// register (the paper's CUDA kernels, compiled to ptx and invoked by
// executeName) together with the shared math their CPU reference
// implementations use.
//
// Every kernel really computes over the raw bytes of its device buffers
// — results are bit-comparable with the CPU path — and reports its
// resource demand at nominal scale through KernelCtx.Charge, which the
// virtual GPU converts to time through the roofline model.
//
// Buffer encodings are little-endian and match the GStruct schemas
// declared by the workloads; see each kernel's comment for its layout
// contract.
package kernels

import (
	"encoding/binary"
	"math"
)

// f32 reads the i-th float32 of buf.
func f32(buf []byte, i int) float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
}

// putF32 writes the i-th float32 of buf.
func putF32(buf []byte, i int, v float32) {
	binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(v))
}

// i32 reads the i-th int32 of buf.
func i32(buf []byte, i int) int32 {
	return int32(binary.LittleEndian.Uint32(buf[i*4:]))
}

// putI32 writes the i-th int32 of buf.
func putI32(buf []byte, i int, v int32) {
	binary.LittleEndian.PutUint32(buf[i*4:], uint32(v))
}

// u32 reads the i-th uint32 of buf.
func u32(buf []byte, i int) uint32 {
	return binary.LittleEndian.Uint32(buf[i*4:])
}

// putU32 writes the i-th uint32 of buf.
func putU32(buf []byte, i int, v uint32) {
	binary.LittleEndian.PutUint32(buf[i*4:], v)
}
