package kernels

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gflink/internal/costmodel"
	"gflink/internal/gpu"
	"gflink/internal/vclock"
)

// launch runs a registered kernel on a scratch device with the given
// real byte buffers, returning after completion. Charges are exercised
// but not asserted here (costmodel has its own tests).
func launch(t *testing.T, name string, in [][]byte, outSize int, n int, nominal int64, args []int64) []byte {
	t.Helper()
	c := vclock.New()
	d := gpu.NewDevice(c, 0, 0, costmodel.C2050, costmodel.DefaultPCIe)
	out := make([]byte, outSize)
	c.Run(func() {
		var inBufs []*gpu.Buffer
		for _, b := range in {
			buf, err := d.Malloc(int64(len(b))+1, len(b))
			if err != nil {
				t.Fatal(err)
			}
			copy(buf.Bytes(), b)
			inBufs = append(inBufs, buf)
		}
		outBuf, err := d.Malloc(int64(outSize)+1, outSize)
		if err != nil {
			t.Fatal(err)
		}
		ctx := &gpu.KernelCtx{In: inBufs, Out: []*gpu.Buffer{outBuf}, N: n, Nominal: nominal, Args: args}
		if _, err := d.Launch(name, ctx); err != nil {
			t.Fatal(err)
		}
		copy(out, outBuf.Bytes())
	})
	return out
}

func packF32(vals []float32) []byte {
	b := make([]byte, 4*len(vals))
	for i, v := range vals {
		putF32(b, i, v)
	}
	return b
}

func unpackF32(b []byte) []float32 {
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = f32(b, i)
	}
	return out
}

func TestPointAddMatchesCPU(t *testing.T) {
	const n = 37
	rng := rand.New(rand.NewSource(1))
	pts := make([]float32, 3*n)
	for i := range pts {
		pts[i] = rng.Float32() * 10
	}
	delta := [3]float32{1.5, -2.25, 0.125}
	out := launch(t, PointAddKernel, [][]byte{packF32(pts)}, 12*n, n, int64(n),
		[]int64{F32Arg(delta[0]), F32Arg(delta[1]), F32Arg(delta[2])})
	got := unpackF32(out)
	for i := 0; i < n; i++ {
		p := [3]float32{pts[i*3], pts[i*3+1], pts[i*3+2]}
		want := CPUPointAdd(p, delta)
		for j := 0; j < 3; j++ {
			if got[i*3+j] != want[j] {
				t.Fatalf("point %d coord %d: %v want %v", i, j, got[i*3+j], want[j])
			}
		}
	}
}

func TestPointAddArgValidation(t *testing.T) {
	c := vclock.New()
	d := gpu.NewDevice(c, 0, 0, costmodel.C2050, costmodel.DefaultPCIe)
	c.Run(func() {
		if _, err := d.Launch(PointAddKernel, &gpu.KernelCtx{}); err == nil {
			t.Error("pointAdd without buffers succeeded")
		}
	})
}

func TestF32ArgRoundTrip(t *testing.T) {
	f := func(v float32) bool {
		if math.IsNaN(float64(v)) {
			return true
		}
		return f32bitsArg(F32Arg(v)) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// soaPoints packs row-major points into SoA columns.
func soaPoints(points [][]float32, d int) []byte {
	n := len(points)
	b := make([]byte, 4*n*d)
	for i, p := range points {
		for j := 0; j < d; j++ {
			putF32(b, j*n+i, p[j])
		}
	}
	return b
}

func TestKMeansAssignMatchesCPU(t *testing.T) {
	const n, k, d = 200, 5, 4
	rng := rand.New(rand.NewSource(7))
	points := make([][]float32, n)
	for i := range points {
		points[i] = make([]float32, d)
		for j := range points[i] {
			points[i][j] = rng.Float32() * 100
		}
	}
	cents := make([]float32, k*d)
	for i := range cents {
		cents[i] = rng.Float32() * 100
	}
	out := launch(t, KMeansAssignKernel,
		[][]byte{soaPoints(points, d), packF32(cents)},
		4*k*(d+1), n, int64(n), []int64{k, d})
	got := unpackF32(out)
	want := CPUKMeansAssign(points, cents, k, d)
	for i := range want {
		if math.Abs(float64(got[i]-want[i])) > 1e-3 {
			t.Fatalf("partial[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestUpdateCentroids(t *testing.T) {
	// One cluster with two points summing to (6, 8); one empty cluster.
	partials := []float32{6, 8, 2 /* count */, 0, 0, 0}
	prev := []float32{0, 0, 42, 43}
	next := UpdateCentroids(partials, prev, 2, 2)
	if next[0] != 3 || next[1] != 4 {
		t.Errorf("cluster 0 = (%v,%v), want (3,4)", next[0], next[1])
	}
	if next[2] != 42 || next[3] != 43 {
		t.Errorf("empty cluster moved: (%v,%v)", next[2], next[3])
	}
}

func TestLinRegGradMatchesCPU(t *testing.T) {
	const n, d = 150, 6
	rng := rand.New(rand.NewSource(11))
	samples := make([][]float32, n)
	for i := range samples {
		samples[i] = make([]float32, d+1)
		for j := range samples[i] {
			samples[i][j] = rng.Float32()*2 - 1
		}
	}
	weights := make([]float32, d+1)
	for i := range weights {
		weights[i] = rng.Float32()
	}
	// SoA: d feature columns then the label column.
	buf := make([]byte, 4*n*(d+1))
	for i, s := range samples {
		for j := 0; j <= d; j++ {
			putF32(buf, j*n+i, s[j])
		}
	}
	out := launch(t, LinRegGradKernel, [][]byte{buf, packF32(weights)}, 4*(d+2), n, int64(n), []int64{d})
	got := unpackF32(out)
	want := CPULinRegGrad(samples, weights, d)
	for i := range want {
		if math.Abs(float64(got[i]-want[i])) > 1e-2 {
			t.Fatalf("grad[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestApplyGradientConvergesOnLine(t *testing.T) {
	// y = 2x + 1 with d=1: gradient descent must approach (2, 1).
	const d = 1
	samples := make([][]float32, 100)
	for i := range samples {
		x := float32(i) / 50
		samples[i] = []float32{x, 2*x + 1}
	}
	w := make([]float32, d+1)
	for iter := 0; iter < 400; iter++ {
		g := CPULinRegGrad(samples, w, d)
		w = ApplyGradient(w, g, float32(len(samples)), 0.5, d)
	}
	if math.Abs(float64(w[0])-2) > 0.05 || math.Abs(float64(w[1])-1) > 0.05 {
		t.Errorf("converged to w=%v, want (2,1)", w)
	}
}

func TestSpMVMatchesCPUAndDense(t *testing.T) {
	const rows, cols = 40, 30
	rng := rand.New(rand.NewSource(3))
	dense := make([][]float32, rows)
	var rowPtr []int32
	var colIdx []int32
	var vals []float32
	rowPtr = append(rowPtr, 0)
	for r := 0; r < rows; r++ {
		dense[r] = make([]float32, cols)
		for c := 0; c < cols; c++ {
			if rng.Float32() < 0.2 {
				v := rng.Float32()
				dense[r][c] = v
				colIdx = append(colIdx, int32(c))
				vals = append(vals, v)
			}
		}
		rowPtr = append(rowPtr, int32(len(vals)))
	}
	x := make([]float32, cols)
	for i := range x {
		x[i] = rng.Float32()
	}
	// Dense reference.
	wantDense := make([]float32, rows)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			wantDense[r] += dense[r][c] * x[c]
		}
	}
	wantCSR := CPUSpMV(rowPtr, colIdx, vals, x)
	enc := make([]byte, EncodedCSRSize(rows, len(vals)))
	EncodeCSR(enc, rowPtr, colIdx, vals)
	out := launch(t, SpMVCSRKernel, [][]byte{enc, packF32(x)}, 4*rows, rows, int64(rows), []int64{int64(len(vals))})
	got := unpackF32(out)
	for r := 0; r < rows; r++ {
		if math.Abs(float64(got[r]-wantCSR[r])) > 1e-4 || math.Abs(float64(got[r]-wantDense[r])) > 1e-3 {
			t.Fatalf("y[%d] = %v, csr %v, dense %v", r, got[r], wantCSR[r], wantDense[r])
		}
	}
}

func TestDecodeCSRValidation(t *testing.T) {
	if _, err := DecodeCSR([]byte{1, 2}); err == nil {
		t.Error("tiny buffer decoded")
	}
	buf := make([]byte, 8)
	putI32(buf, 0, 100)
	putI32(buf, 1, 100)
	if _, err := DecodeCSR(buf); err == nil {
		t.Error("truncated block decoded")
	}
}

func buildEdges(n, m int, seed int64) [][2]int32 {
	rng := rand.New(rand.NewSource(seed))
	edges := make([][2]int32, m)
	for i := range edges {
		edges[i] = [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))}
	}
	return edges
}

func packEdges(edges [][2]int32) []byte {
	b := make([]byte, 8*len(edges))
	for i, e := range edges {
		putI32(b, i*2, e[0])
		putI32(b, i*2+1, e[1])
	}
	return b
}

func TestPageRankContribMatchesCPU(t *testing.T) {
	const n, m = 50, 300
	edges := buildEdges(n, m, 5)
	ranks := make([]float32, n)
	outdeg := make([]int32, n)
	for i := range ranks {
		ranks[i] = 1.0 / n
	}
	for _, e := range edges {
		outdeg[e[0]]++
	}
	ranksBuf := make([]byte, 4*n)
	degBuf := make([]byte, 4*n)
	for i, r := range ranks {
		putF32(ranksBuf, i, r)
	}
	for i, d := range outdeg {
		putI32(degBuf, i, d)
	}
	out := launch(t, PageRankContribKernel, [][]byte{packEdges(edges), ranksBuf, degBuf}, 4*n, m, int64(m), []int64{n})
	got := unpackF32(out)
	want := CPUPageRankContrib(edges, ranks, outdeg, n)
	for i := range want {
		if math.Abs(float64(got[i]-want[i])) > 1e-5 {
			t.Fatalf("contrib[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Mass conservation: nodes with outgoing edges contribute all their
	// rank.
	var total, expected float64
	for _, c := range want {
		total += float64(c)
	}
	for i := range ranks {
		if outdeg[i] > 0 {
			expected += float64(ranks[i])
		}
	}
	if math.Abs(total-expected) > 1e-4 {
		t.Errorf("mass not conserved: %v vs %v", total, expected)
	}
}

func TestApplyDamping(t *testing.T) {
	contrib := []float32{0.5, 0.25}
	out := ApplyDamping(contrib, 0.85, 2)
	for i := range out {
		want := 0.15/2 + 0.85*contrib[i]
		if math.Abs(float64(out[i]-want)) > 1e-6 {
			t.Errorf("rank[%d] = %v, want %v", i, out[i], want)
		}
	}
}

func TestConnCompMatchesCPUAndConverges(t *testing.T) {
	const n = 30
	// A ring 0-1-2-...-14 and a separate clique on 15..29.
	var edges [][2]int32
	for i := 0; i < 14; i++ {
		edges = append(edges, [2]int32{int32(i), int32(i + 1)}, [2]int32{int32(i + 1), int32(i)})
	}
	for i := 15; i < 30; i++ {
		for j := 15; j < 30; j++ {
			if i != j {
				edges = append(edges, [2]int32{int32(i), int32(j)})
			}
		}
	}
	labels := make([]uint32, n)
	for i := range labels {
		labels[i] = uint32(i)
	}
	// GPU propagation until fixpoint.
	gpuLabels := append([]uint32(nil), labels...)
	for iter := 0; iter < n; iter++ {
		in := make([]byte, 4*n)
		for i, l := range gpuLabels {
			putU32(in, i, l)
		}
		out := launch(t, ConnCompKernel, [][]byte{packEdges(edges), in}, 4*n, len(edges), int64(len(edges)), []int64{n})
		next := make([]uint32, n)
		for i := range next {
			next[i] = u32(out, i)
		}
		gpuLabels = next
	}
	// CPU propagation until fixpoint.
	cpuLabels := append([]uint32(nil), labels...)
	for {
		next, changed := CPUConnCompProp(edges, cpuLabels)
		cpuLabels = next
		if !changed {
			break
		}
	}
	for i := range cpuLabels {
		if gpuLabels[i] != cpuLabels[i] {
			t.Fatalf("label[%d] = %d, want %d", i, gpuLabels[i], cpuLabels[i])
		}
	}
	// Two components: labels 0 and 15.
	for i := 0; i < 15; i++ {
		if cpuLabels[i] != 0 {
			t.Errorf("ring node %d label %d", i, cpuLabels[i])
		}
	}
	for i := 15; i < 30; i++ {
		if cpuLabels[i] != 15 {
			t.Errorf("clique node %d label %d", i, cpuLabels[i])
		}
	}
}

func TestMinLabels(t *testing.T) {
	dst := []uint32{5, 1, 7}
	MinLabels(dst, []uint32{3, 2, 9})
	want := []uint32{3, 1, 7}
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("dst[%d] = %d, want %d", i, dst[i], want[i])
		}
	}
}

func TestWordCountMatchesCPU(t *testing.T) {
	text := []byte("the quick brown fox jumps over the lazy dog the fox")
	const table = 64
	out := launch(t, WordCountKernel, [][]byte{text}, 4*table, len(text), int64(len(text)), []int64{table})
	want := CPUWordCount(text, table)
	var gotTotal, wantTotal uint32
	for i := 0; i < table; i++ {
		got := u32(out, i)
		if got != want[i] {
			t.Fatalf("slot %d: %d want %d", i, got, want[i])
		}
		gotTotal += got
		wantTotal += want[i]
	}
	if wantTotal != 11 {
		t.Errorf("total words = %d, want 11", wantTotal)
	}
	// "the" appears 3 times; its slot must hold at least 3.
	if want[WordSlot([]byte("the"), table)] < 3 {
		t.Error("'the' undercounted")
	}
}

func TestWordCountEdgeCases(t *testing.T) {
	for _, text := range []string{"", "   ", "word", " a  b\nc "} {
		got := CPUWordCount([]byte(text), 16)
		var total uint32
		for _, c := range got {
			total += c
		}
		wantWords := map[string]uint32{"": 0, "   ": 0, "word": 1, " a  b\nc ": 3}[text]
		if total != wantWords {
			t.Errorf("%q counted %d words, want %d", text, total, wantWords)
		}
	}
}

// Property: word counting is insensitive to leading/trailing whitespace
// and linear under concatenation with a separator.
func TestWordCountConcatProperty(t *testing.T) {
	f := func(aRaw, bRaw []byte) bool {
		clean := func(raw []byte) []byte {
			out := make([]byte, len(raw))
			for i, b := range raw {
				// Map into printable ASCII with some spaces.
				if b%5 == 0 {
					out[i] = ' '
				} else {
					out[i] = 'a' + b%26
				}
			}
			return out
		}
		a, b := clean(aRaw), clean(bRaw)
		const table = 32
		ca, cb := CPUWordCount(a, table), CPUWordCount(b, table)
		joined := append(append(append([]byte{}, a...), ' '), b...)
		cj := CPUWordCount(joined, table)
		for i := 0; i < table; i++ {
			if cj[i] != ca[i]+cb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
