package kernels

import (
	"fmt"
	"math"

	"gflink/internal/costmodel"
	"gflink/internal/gpu"
	"gflink/internal/gstruct"
)

// Point3Schema is the GStruct of the paper's Algorithm 3.1 example: a
// three-component float point, GStruct_4 aligned.
var Point3Schema = gstruct.MustNew("Point3", 4,
	gstruct.Field{Name: "x", Kind: gstruct.Float32},
	gstruct.Field{Name: "y", Kind: gstruct.Float32},
	gstruct.Field{Name: "z", Kind: gstruct.Float32},
)

// PointAddKernel is the executeName of the cudaAddPoint kernel.
const PointAddKernel = "gflink.pointAdd"

// PointAddWork is the per-point resource demand of the kernel.
var PointAddWork = costmodel.Work{Flops: 3, BytesRead: 12, BytesWritten: 12}

func init() {
	// gflink.pointAdd adds (dx, dy, dz) — float32s passed through Args
	// as raw bits — to every Point3 of In[0], writing Out[0].
	gpu.Register(PointAddKernel, func(ctx *gpu.KernelCtx) error {
		if len(ctx.In) < 1 || len(ctx.Out) < 1 || len(ctx.Args) < 3 {
			return fmt.Errorf("pointAdd: want 1 input, 1 output, 3 args")
		}
		in, out := ctx.In[0].Bytes(), ctx.Out[0].Bytes()
		dx := f32bitsArg(ctx.Args[0])
		dy := f32bitsArg(ctx.Args[1])
		dz := f32bitsArg(ctx.Args[2])
		for i := 0; i < ctx.N; i++ {
			putF32(out, i*3+0, f32(in, i*3+0)+dx)
			putF32(out, i*3+1, f32(in, i*3+1)+dy)
			putF32(out, i*3+2, f32(in, i*3+2)+dz)
		}
		ctx.Charge(PointAddWork.Scale(float64(ctx.Nominal)))
		return nil
	})
}

// f32bitsArg decodes a float32 smuggled through an int64 kernel
// argument.
func f32bitsArg(a int64) float32 { return math.Float32frombits(uint32(uint64(a))) }

// F32Arg encodes a float32 for kernel Args.
func F32Arg(v float32) int64 { return int64(math.Float32bits(v)) }

// CPUPointAdd is the reference implementation for the baseline path.
func CPUPointAdd(p [3]float32, d [3]float32) [3]float32 {
	return [3]float32{p[0] + d[0], p[1] + d[1], p[2] + d[2]}
}
