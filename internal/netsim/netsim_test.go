package netsim

import (
	"testing"
	"time"

	"gflink/internal/costmodel"
	"gflink/internal/vclock"
)

func TestTransferDuration(t *testing.T) {
	c := vclock.New()
	m := costmodel.DefaultNet
	var n *Network
	end := c.Run(func() {
		n = New(c, m, 4)
		n.Transfer(0, 1, 125_000_000) // 1 Gbit at 1 Gbps = 1 s + latency
	})
	want := m.TransferTime(125_000_000)
	if end != want {
		t.Errorf("transfer took %v, want %v", end, want)
	}
	tr, by := n.Stats()
	if tr != 1 || by != 125_000_000 {
		t.Errorf("stats = %d transfers, %d bytes", tr, by)
	}
}

func TestSameNodeTransferIsFree(t *testing.T) {
	c := vclock.New()
	end := c.Run(func() {
		n := New(c, costmodel.DefaultNet, 2)
		n.Transfer(1, 1, 1<<30)
	})
	if end != 0 {
		t.Errorf("local transfer cost %v", end)
	}
}

func TestUplinkContentionSerializes(t *testing.T) {
	c := vclock.New()
	m := costmodel.DefaultNet
	end := c.Run(func() {
		n := New(c, m, 3)
		g := vclock.NewGroup(c)
		// Two transfers from node 0 to different receivers share 0's
		// uplink and must serialize.
		g.Go("a", func() { n.Transfer(0, 1, 125_000_000) })
		g.Go("b", func() { n.Transfer(0, 2, 125_000_000) })
		g.Wait()
	})
	if want := 2 * m.TransferTime(125_000_000); end != want {
		t.Errorf("contended makespan %v, want %v", end, want)
	}
}

func TestDisjointPairsRunInParallel(t *testing.T) {
	c := vclock.New()
	m := costmodel.DefaultNet
	end := c.Run(func() {
		n := New(c, m, 4)
		g := vclock.NewGroup(c)
		g.Go("a", func() { n.Transfer(0, 1, 125_000_000) })
		g.Go("b", func() { n.Transfer(2, 3, 125_000_000) })
		g.Wait()
	})
	if want := m.TransferTime(125_000_000); end != want {
		t.Errorf("parallel makespan %v, want %v", end, want)
	}
}

func TestOpposingTransfersFullDuplex(t *testing.T) {
	c := vclock.New()
	m := costmodel.DefaultNet
	end := c.Run(func() {
		n := New(c, m, 2)
		g := vclock.NewGroup(c)
		g.Go("a", func() { n.Transfer(0, 1, 125_000_000) })
		g.Go("b", func() { n.Transfer(1, 0, 125_000_000) })
		g.Wait()
	})
	if want := m.TransferTime(125_000_000); end != want {
		t.Errorf("full-duplex makespan %v, want %v (no overlap)", end, want)
	}
}

func TestZeroByteTransfer(t *testing.T) {
	c := vclock.New()
	end := c.Run(func() {
		n := New(c, costmodel.DefaultNet, 2)
		n.Transfer(0, 1, 0)
		n.Transfer(0, 1, -7)
	})
	if end != time.Duration(0) {
		t.Errorf("zero-byte transfer cost %v", end)
	}
}

func TestBadNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range node did not panic")
		}
	}()
	c := vclock.New()
	c.Run(func() {
		n := New(c, costmodel.DefaultNet, 2)
		n.Transfer(0, 5, 100)
	})
}
