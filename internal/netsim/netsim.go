// Package netsim models the cluster interconnect: one full-duplex link
// per node (gigabit Ethernet in the paper's testbed). A transfer holds
// the sender's uplink and the receiver's downlink for its duration, so
// concurrent shuffles contend for link capacity deterministically.
package netsim

import (
	"fmt"
	"sync"

	"gflink/internal/costmodel"
	"gflink/internal/vclock"
)

// Network is the simulated interconnect between numNodes nodes.
// Node IDs are 0..numNodes-1.
type Network struct {
	clock *vclock.Clock
	model costmodel.Net
	up    []*vclock.Semaphore
	down  []*vclock.Semaphore

	mu        sync.Mutex
	transfers int64
	bytes     int64
}

// New builds a network of numNodes full-duplex links.
func New(clock *vclock.Clock, model costmodel.Net, numNodes int) *Network {
	n := &Network{clock: clock, model: model}
	for i := 0; i < numNodes; i++ {
		n.up = append(n.up, vclock.NewSemaphore(clock, fmt.Sprintf("net-up-%d", i), 1))
		n.down = append(n.down, vclock.NewSemaphore(clock, fmt.Sprintf("net-down-%d", i), 1))
	}
	return n
}

// Nodes returns the node count.
func (n *Network) Nodes() int { return len(n.up) }

// Transfer moves bytes from node src to node dst, blocking the calling
// process for the transfer duration. A same-node transfer is a memory
// copy and costs nothing on the network.
func (n *Network) Transfer(src, dst int, bytes int64) {
	if src == dst || bytes <= 0 {
		return
	}
	n.checkNode(src)
	n.checkNode(dst)
	d := n.model.TransferTime(bytes)
	// Acquire in fixed global order (uplink then downlink, by index) to
	// avoid lock cycles between opposing transfers.
	n.up[src].Acquire(1)
	n.down[dst].Acquire(1)
	n.clock.Sleep(d)
	n.down[dst].Release(1)
	n.up[src].Release(1)
	n.mu.Lock()
	n.transfers++
	n.bytes += bytes
	n.mu.Unlock()
}

// Stats reports cumulative transfer counters.
func (n *Network) Stats() (transfers, bytes int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.transfers, n.bytes
}

func (n *Network) checkNode(id int) {
	if id < 0 || id >= len(n.up) {
		panic(fmt.Sprintf("netsim: node %d out of range [0,%d)", id, len(n.up)))
	}
}
