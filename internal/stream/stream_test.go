package stream_test

import (
	"math"
	"reflect"
	"testing"
	"time"

	"gflink/internal/core"
	"gflink/internal/costmodel"
	"gflink/internal/flink"
	"gflink/internal/plan"
	"gflink/internal/stream"
)

func build(workers int) *core.GFlink {
	return core.New(core.Config{
		Config: flink.Config{
			Workers:        workers,
			SlotsPerWorker: 4,
			Model:          costmodel.Default(),
		},
		GPUsPerWorker: 1,
	})
}

// runPipeline builds a two-worker source→window→sink pipeline with the
// given options and returns its result.
func runPipeline(t *testing.T, records int64, opts ...stream.Option) stream.Result {
	t.Helper()
	g := build(2)
	var res stream.Result
	g.Run(func() {
		p := stream.New(g, "test", opts...)
		p.Source("gen", 0, stream.SourceSpec{Records: records, Seed: 7}).
			Window("agg", 1, stream.WindowSpec{Trigger: stream.TumblingCount(512), Slots: 64}).
			Sink("out", 0)
		res = p.Run()
	})
	return res
}

// TestZeroCreditProducerBlocks is the backpressure unit test: with a
// one-batch buffer and a consumer slower than the source, the producer
// must run out of credits, block on the virtual clock, and resume when
// the consumer's grant comes back — visible as positive credits-blocked
// time on a run that still processes every record.
func TestZeroCreditProducerBlocks(t *testing.T) {
	res := runPipeline(t, 4096,
		stream.WithMode(plan.ForceCPU), stream.WithBufferBatches(1))
	if res.Records != 4096 {
		t.Fatalf("source produced %d records, want 4096", res.Records)
	}
	if res.Blocked <= 0 {
		t.Errorf("producer never blocked on credits (blocked=%v); backpressure did not engage", res.Blocked)
	}
	if res.MaxDepth > 1 {
		t.Errorf("edge depth reached %d batches with a 1-batch credit limit", res.MaxDepth)
	}
	if res.Windows != 8 {
		t.Errorf("fired %d windows, want 8 (4096 records / 512-record tumble)", res.Windows)
	}
}

// TestBlockedCounterExported checks the stream.blockedns counter (the
// -check signal of abl-backpressure) reflects the blocking the result
// reports.
func TestBlockedCounterExported(t *testing.T) {
	g := build(2)
	var res stream.Result
	g.Run(func() {
		p := stream.New(g, "test", stream.WithMode(plan.ForceCPU), stream.WithBufferBatches(1))
		p.Source("gen", 0, stream.SourceSpec{Records: 4096, Seed: 7}).
			Window("agg", 1, stream.WindowSpec{Trigger: stream.TumblingCount(512), Slots: 64}).
			Sink("out", 0)
		res = p.Run()
	})
	blocked := g.Obs.Metrics().Total("stream.blockedns")
	if blocked != int64(res.Blocked) {
		t.Errorf("stream.blockedns total = %d, result reports %d", blocked, int64(res.Blocked))
	}
	if got := g.Obs.Metrics().Get("stream.records.s0"); got != 4096 {
		t.Errorf("stream.records.s0 = %d, want 4096", got)
	}
	if got := g.Obs.Metrics().Get("stream.depthmax.s0"); got != res.MaxDepth {
		t.Errorf("stream.depthmax.s0 = %d, result reports %d", got, res.MaxDepth)
	}
}

// TestDeeperBufferBlocksLess pins the mechanism the abl-backpressure
// curve rests on: more credits, less producer blocking, no fewer
// records.
func TestDeeperBufferBlocksLess(t *testing.T) {
	shallow := runPipeline(t, 8192, stream.WithMode(plan.ForceCPU), stream.WithBufferBatches(1))
	deep := runPipeline(t, 8192, stream.WithMode(plan.ForceCPU), stream.WithBufferBatches(16))
	if deep.Blocked >= shallow.Blocked {
		t.Errorf("16-batch buffer blocked %v, 1-batch buffer %v; want strictly less", deep.Blocked, shallow.Blocked)
	}
	if deep.Makespan >= shallow.Makespan {
		t.Errorf("16-batch makespan %v not below 1-batch %v", deep.Makespan, shallow.Makespan)
	}
}

// TestCPUAndGPUWindowsBitIdentical: both window bodies replay the same
// float additions in the same order, so the sink checksum must match
// bit for bit across placements.
func TestCPUAndGPUWindowsBitIdentical(t *testing.T) {
	cpu := runPipeline(t, 8192, stream.WithMode(plan.ForceCPU))
	gpu := runPipeline(t, 8192, stream.WithMode(plan.ForceGPU))
	if math.Float64bits(cpu.Checksum) != math.Float64bits(gpu.Checksum) {
		t.Errorf("checksums differ across placement: CPU %v, GPU %v", cpu.Checksum, gpu.Checksum)
	}
	if cpu.Records != gpu.Records || cpu.Windows != gpu.Windows {
		t.Errorf("record/window counts differ: CPU %d/%d, GPU %d/%d",
			cpu.Records, cpu.Windows, gpu.Records, gpu.Windows)
	}
}

// TestAutoPlacement: the default window body is a few thousand flops
// per record — far past the point the GPU path wins — so Auto must
// place it on the GPU; forcing pins regardless.
func TestAutoPlacement(t *testing.T) {
	g := build(2)
	g.Run(func() {
		p := stream.New(g, "test")
		p.Source("gen", 0, stream.SourceSpec{Records: 2048, Seed: 7}).
			Window("agg", 1, stream.WindowSpec{Trigger: stream.TumblingCount(512), Slots: 64}).
			Sink("out", 0)
		p.Run()
		if d, ok := p.Placement("agg"); !ok || d != plan.GPU {
			t.Errorf("Auto placed default-weight window on %v (ok=%v), want GPU", d, ok)
		}
	})

	g = build(2)
	g.Run(func() {
		p := stream.New(g, "test", stream.WithMode(plan.ForceCPU))
		p.Source("gen", 0, stream.SourceSpec{Records: 2048, Seed: 7}).
			Window("agg", 1, stream.WindowSpec{Trigger: stream.TumblingCount(512), Slots: 64}).
			Sink("out", 0)
		p.Run()
		if d, _ := p.Placement("agg"); d != plan.CPU {
			t.Errorf("ForceCPU placed window on %v", d)
		}
	})
}

// TestPipelineDeterministic: identical pipelines on fresh deployments
// produce identical results and span streams.
func TestPipelineDeterministic(t *testing.T) {
	run := func() (stream.Result, interface{}) {
		g := build(2)
		var res stream.Result
		g.Run(func() {
			p := stream.New(g, "test", stream.WithBufferBatches(2))
			p.Source("gen", 0, stream.SourceSpec{Records: 4096, Seed: 7}).
				Window("agg", 1, stream.WindowSpec{Trigger: stream.TumblingCount(512), Slots: 64}).
				Sink("out", 0)
			res = p.Run()
		})
		return res, g.Obs.Tracer().Spans()
	}
	r1, s1 := run()
	r2, s2 := run()
	if r1 != r2 {
		t.Errorf("results differ across identical runs:\n  %+v\n  %+v", r1, r2)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Error("span streams differ across identical runs")
	}
}

// TestOptionsDefaults pins the documented defaults and the functional-
// option plumbing.
func TestOptionsDefaults(t *testing.T) {
	g := build(1)
	p := stream.New(g, "test")
	o := p.Options()
	if o.BatchRecords != 256 || o.BufferBatches != 4 || o.RecordBytes != 64 {
		t.Errorf("defaults = %+v, want BatchRecords 256, BufferBatches 4, RecordBytes 64", o)
	}
	if o.Mode != plan.Auto {
		t.Errorf("default mode = %v, want Auto", o.Mode)
	}
	p2 := stream.New(g, "test",
		stream.WithMode(plan.ForceGPU), stream.WithBatchRecords(128),
		stream.WithBufferBatches(9), stream.WithRecordBytes(32))
	o2 := p2.Options()
	if o2.Mode != plan.ForceGPU || o2.BatchRecords != 128 || o2.BufferBatches != 9 || o2.RecordBytes != 32 {
		t.Errorf("options not applied: %+v", o2)
	}
}

// TestThroughputReported sanity-checks the derived fields.
func TestThroughputReported(t *testing.T) {
	res := runPipeline(t, 4096, stream.WithMode(plan.ForceGPU))
	if res.Makespan <= 0 {
		t.Fatalf("non-positive makespan %v", res.Makespan)
	}
	want := float64(res.Records) / res.Makespan.Seconds()
	if math.Abs(res.Throughput-want) > 1e-9*want {
		t.Errorf("throughput %v, want %v", res.Throughput, want)
	}
	if res.Makespan > time.Hour {
		t.Errorf("implausible makespan %v", res.Makespan)
	}
}
