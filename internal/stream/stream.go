// Package stream is GFlink's DataStream layer: the unbounded-source
// counterpart to package plan's one-shot batch graphs. A Pipeline is a
// linear chain of stages — a generator source, tumbling-window keyed
// aggregations, a sink — each running as its own virtual-time process
// on a worker node, connected by bounded edges with credit-based
// backpressure:
//
//   - records are micro-batched into fixed-size batches; a full batch
//     costs one netsim transfer between the producing and consuming
//     workers, priced by the cost model like any other network traffic;
//   - every edge holds Options.BufferBatches credits. Sending a batch
//     consumes a credit; a producer with no credits blocks on the
//     virtual clock (the blocked time is metered per stage). The
//     consumer returns each credit after processing its batch, and the
//     grant travels back over netsim as a small control message, so a
//     one-deep buffer exposes the full credit round trip while a deep
//     buffer overlaps production, transfer and consumption;
//   - window aggregation is an Either stage: the planner compares
//     costmodel estimates exactly like plan's placement pass and lowers
//     the window onto the GPU map/reduce path (pooled GWorks through
//     core.WorkPool, so steady-state submission stays allocation-free)
//     or onto a CPU slot. Keys are pre-hashed to slots on the host and
//     both bodies replay the same float additions in the same order, so
//     results are bit-identical across placements.
//
// Determinism is inherited from the substrate: stages are cooperative
// vclock processes, edges are FIFO queues and semaphores, and every
// span/counter timestamp is a virtual-clock reading — a pipeline run is
// byte-identical across GOMAXPROCS settings and repeat runs.
package stream

import (
	"fmt"
	"math"
	"time"

	"gflink/internal/core"
	"gflink/internal/costmodel"
	"gflink/internal/kernels"
	"gflink/internal/membuf"
	"gflink/internal/obs"
	"gflink/internal/plan"
	"gflink/internal/vclock"
)

// Record is one streaming element: an aggregation key and a value.
type Record struct {
	Key uint64
	Val float32
}

// packedRecordBytes is the on-device encoding of one record: a uint32
// slot index and a float32 value, packed for the windowAgg kernel.
const packedRecordBytes = 8

// Options are a pipeline's resolved settings. Construct them through
// New's functional options; the zero value of every field selects the
// default.
type Options struct {
	// Mode pins window stages to a device, or lets the cost model
	// decide (plan.Auto, the default).
	Mode plan.Mode
	// BatchRecords is the records per micro-batch (default 256). One
	// batch is the unit of network transfer and credit accounting.
	BatchRecords int
	// BufferBatches is the per-edge credit count — the bounded buffer
	// depth in batches (default 4). 1 serializes every batch against
	// the full credit round trip.
	BufferBatches int
	// RecordBytes is the nominal wire size of one record on the
	// cluster network (default 64; the packed GPU staging form is
	// always 8 bytes).
	RecordBytes int64
	// Tracer receives per-stage and per-window spans. Nil means the
	// deployment's own tracer.
	Tracer *obs.Tracer
	// Metrics receives the stream.* counters. Nil means the
	// deployment's own registry.
	Metrics *obs.Registry
}

// Option mutates Options before construction (the same functional-
// option shape as core.NewStreamManager and core.NewMemoryManager).
type Option func(*Options)

// WithMode pins window placement (plan.ForceCPU / plan.ForceGPU) or
// restores cost-model placement (plan.Auto).
func WithMode(m plan.Mode) Option { return func(o *Options) { o.Mode = m } }

// WithBatchRecords sets the records per micro-batch.
func WithBatchRecords(n int) Option { return func(o *Options) { o.BatchRecords = n } }

// WithBufferBatches sets the per-edge credit count (buffer depth).
func WithBufferBatches(n int) Option { return func(o *Options) { o.BufferBatches = n } }

// WithRecordBytes sets the nominal per-record wire size.
func WithRecordBytes(n int64) Option { return func(o *Options) { o.RecordBytes = n } }

// WithTracer directs the pipeline's spans to t.
func WithTracer(t *obs.Tracer) Option { return func(o *Options) { o.Tracer = t } }

// WithMetrics directs the stream.* counters to r.
func WithMetrics(r *obs.Registry) Option { return func(o *Options) { o.Metrics = r } }

// Trigger decides when a window fires. Only count-based tumbling
// triggers exist; the type is a named wrapper so event-time triggers
// can slot in without changing WindowSpec.
type Trigger struct {
	records int
}

// TumblingCount returns a trigger that fires every n records.
func TumblingCount(n int) Trigger { return Trigger{records: n} }

// Records returns the trigger's window width in records.
func (t Trigger) Records() int { return t.records }

func (t Trigger) String() string { return fmt.Sprintf("tumbling(%d)", t.records) }

// SourceSpec configures a generator source stage.
type SourceSpec struct {
	// Records bounds the run (experiments need finite streams); the
	// pipeline treats the stream as unbounded until it drains.
	Records int64
	// Keys is the key-space size the generator draws from (default
	// 1024).
	Keys int
	// Seed keys the splitmix64 generator, so sources are deterministic
	// and reproducible at any batch size.
	Seed uint64
	// PerRecord is the CPU demand of producing one record (decode,
	// validate). Zero means DefaultSourcePerRecord.
	PerRecord costmodel.Work
}

// DefaultSourcePerRecord is the demand of producing one record on the
// source's CPU slot: a cheap decode, so a source outruns any
// non-trivial consumer and backpressure is the governing mechanism.
var DefaultSourcePerRecord = costmodel.Work{Flops: 8, BytesRead: 16, BytesWritten: 8}

// WindowSpec configures a tumbling-window keyed aggregation stage.
type WindowSpec struct {
	// Trigger fires the window (TumblingCount; required).
	Trigger Trigger
	// Slots is the dense key-slot table size keys hash into (default
	// 256). The stage emits one aggregate record per slot per window.
	Slots int
	// Group names the placement group of the stage's CPU/GPU decision,
	// for Placement lookups and span attributes (default: stage name).
	Group string
	// PerRecordCPU is the CPU body's per-record aggregation demand.
	// Zero means DefaultWindowPerRecord.
	PerRecordCPU costmodel.Work
}

// DefaultWindowPerRecord is the CPU body's per-record demand: heavy
// enough (a few thousand flops — sessionization, model scoring) that a
// CPU-placed consumer is the pipeline bottleneck, which is the
// rate-mismatch regime the backpressure experiments reproduce.
var DefaultWindowPerRecord = costmodel.Work{Flops: 4500, BytesRead: 64, BytesWritten: 8}

// Result is one pipeline run's measurements.
type Result struct {
	// Records is the count ingested at the source; Batches the batch
	// count it emitted; Windows the windows fired across all stages.
	Records, Batches, Windows int64
	// Makespan is the virtual time from stage start to sink drain
	// (excluding job submission); Throughput is Records over it, in
	// records per simulated second.
	Makespan   time.Duration
	Throughput float64
	// Blocked is the total virtual time producers spent waiting for
	// credits, summed over every edge — the backpressure signal.
	Blocked time.Duration
	// MaxDepth is the deepest any edge buffer got, in batches.
	MaxDepth int64
	// Checksum folds every aggregate the sink received, for
	// CPU-vs-GPU equivalence checks.
	Checksum float64
}

// Pipeline is a deferred stream topology: stage constructors append
// stages, Run spawns them as virtual-time processes and waits for the
// bounded stream to drain. Mirrors plan.Graph: construction never
// touches the clock.
type Pipeline struct {
	g       *core.GFlink
	name    string
	opts    Options
	tracer  *obs.Tracer
	metrics *obs.Registry

	stages    []*stage
	decisions map[string]plan.Device
	ests      map[string]ratePair
	ran       bool
}

type ratePair struct{ cpu, gpu time.Duration }

// New starts an empty pipeline against a deployment. Like
// plan.NewGraph, nothing touches the virtual clock until Run.
func New(g *core.GFlink, name string, opts ...Option) *Pipeline {
	o := Options{}
	for _, fn := range opts {
		fn(&o)
	}
	if o.BatchRecords <= 0 {
		o.BatchRecords = 256
	}
	if o.BufferBatches <= 0 {
		o.BufferBatches = 4
	}
	if o.RecordBytes <= 0 {
		o.RecordBytes = 64
	}
	if o.Tracer == nil {
		o.Tracer = g.Obs.Tracer()
	}
	if o.Metrics == nil {
		o.Metrics = g.Obs.Metrics()
	}
	return &Pipeline{
		g: g, name: name, opts: o,
		tracer: o.Tracer, metrics: o.Metrics,
		decisions: make(map[string]plan.Device),
		ests:      make(map[string]ratePair),
	}
}

// Options returns the pipeline's resolved options.
func (p *Pipeline) Options() Options { return p.opts }

// Placement reports the device a window group resolved to; ok is false
// before Run decided it.
func (p *Pipeline) Placement(group string) (plan.Device, bool) {
	d, ok := p.decisions[group]
	return d, ok
}

type stageKind int

const (
	kSource stageKind = iota
	kWindow
	kSink
)

func (k stageKind) String() string {
	switch k {
	case kSource:
		return "source"
	case kWindow:
		return "window"
	default:
		return "sink"
	}
}

// stage is one pipeline stage. Each stage runs as a single virtual-time
// process, so its mutable fields need no locking.
type stage struct {
	p      *Pipeline
	idx    int
	kind   stageKind
	name   string
	worker int
	track  string

	in, out *edge

	src SourceSpec
	win WindowSpec

	// Preregistered counter handles (stream.<what>.s<idx>), so per-batch
	// accounting neither formats strings nor hashes counter names.
	cntRecords, cntBatches, cntWindows *obs.Counter
	cntBlocked, cntGrants, cntDepth    *obs.Counter

	// run measurements, aggregated into Result after the group joins.
	records, batches, windows int64
	blocked                   time.Duration
	checksum                  float64

	// window state
	winRecs []Record
	sums    []float32
	dev     plan.Device
	// GPU-path staging: host buffers reused across windows, plus the
	// one-element Args backing (WorkPool.Put drops Args, whose backing
	// belongs to the submitter).
	inBuf, outBuf *membuf.HBuffer
	args          [1]int64
	jobID         int
}

// Stage is the exported handle stage constructors chain on.
type Stage struct{ s *stage }

func (p *Pipeline) addStage(kind stageKind, name string, worker int) *stage {
	if p.ran {
		panic("stream: cannot append stages to a pipeline that ran")
	}
	if worker < 0 || worker >= p.g.Cfg.Config.Workers {
		panic(fmt.Sprintf("stream: stage %q on worker %d of a %d-worker deployment", name, worker, p.g.Cfg.Config.Workers))
	}
	s := &stage{
		p: p, idx: len(p.stages), kind: kind, name: name, worker: worker,
		track: fmt.Sprintf("stream/%s/%s", p.name, name),
	}
	s.cntRecords = p.metrics.Counter(fmt.Sprintf("stream.records.s%d", s.idx))
	s.cntBatches = p.metrics.Counter(fmt.Sprintf("stream.batches.s%d", s.idx))
	s.cntWindows = p.metrics.Counter(fmt.Sprintf("stream.windows.s%d", s.idx))
	s.cntBlocked = p.metrics.Counter(fmt.Sprintf("stream.blockedns.s%d", s.idx))
	s.cntGrants = p.metrics.Counter(fmt.Sprintf("stream.grants.s%d", s.idx))
	s.cntDepth = p.metrics.Counter(fmt.Sprintf("stream.depthmax.s%d", s.idx))
	p.stages = append(p.stages, s)
	return s
}

// Source appends an unbounded generator source pinned to a worker node.
// It must be the pipeline's first stage.
func (p *Pipeline) Source(name string, worker int, spec SourceSpec) *Stage {
	if len(p.stages) != 0 {
		panic("stream: Source must be the first stage")
	}
	if spec.Records <= 0 {
		panic("stream: SourceSpec.Records must be positive (experiments bound the stream)")
	}
	if spec.Keys <= 0 {
		spec.Keys = 1024
	}
	if spec.PerRecord == (costmodel.Work{}) {
		spec.PerRecord = DefaultSourcePerRecord
	}
	s := p.addStage(kSource, name, worker)
	s.src = spec
	return &Stage{s: s}
}

// Window appends a tumbling-window keyed aggregation stage downstream
// of up, pinned to a worker node. Placement (CPU slot vs pooled GWorks
// on the worker's GPUs) follows the pipeline's Mode and the cost model.
func (up *Stage) Window(name string, worker int, spec WindowSpec) *Stage {
	p := up.s.p
	if up.s.kind == kSink {
		panic("stream: cannot consume from a sink")
	}
	if spec.Trigger.records <= 0 {
		panic("stream: WindowSpec.Trigger must be a positive TumblingCount")
	}
	if spec.Slots <= 0 {
		spec.Slots = 256
	}
	if spec.Group == "" {
		spec.Group = name
	}
	if spec.PerRecordCPU == (costmodel.Work{}) {
		spec.PerRecordCPU = DefaultWindowPerRecord
	}
	s := p.addStage(kWindow, name, worker)
	s.win = spec
	p.connect(up.s, s)
	return &Stage{s: s}
}

// Sink appends a terminal stage that drains its input edge, folding a
// checksum over every record it receives.
func (up *Stage) Sink(name string, worker int) *Stage {
	p := up.s.p
	if up.s.kind == kSink {
		panic("stream: cannot consume from a sink")
	}
	s := p.addStage(kSink, name, worker)
	p.connect(up.s, s)
	return &Stage{s: s}
}

func (p *Pipeline) connect(from, to *stage) {
	if from.out != nil {
		panic(fmt.Sprintf("stream: stage %q already has a consumer", from.name))
	}
	from.out = &edge{p: p, from: from, to: to}
	to.in = from.out
}

// decide mirrors plan's placement rule for one window stage: forced
// modes pin the device; Auto compares one window's cost-model estimate
// on a CPU slot against the GPU path (packed H2D, windowAgg kernel,
// slot-table D2H) and takes the cheaper, CPU on ties.
func (p *Pipeline) decide(s *stage) plan.Device {
	if d, ok := p.decisions[s.win.Group]; ok {
		return d
	}
	width := int64(s.win.Trigger.records)
	cost := costmodel.StageCost{
		Records:      width,
		CPUPerRec:    s.win.PerRecordCPU,
		GPUWork:      kernels.WindowAggWork(width),
		HostToDevice: width * packedRecordBytes,
		DeviceToHost: int64(s.win.Slots) * 4,
	}
	m := p.g.Cfg.Config.Model
	est := ratePair{
		cpu: m.EstimateCPUStage(cost),
		gpu: m.EstimateGPUStage(p.g.Cfg.GPUProfile, cost),
	}
	p.ests[s.win.Group] = est
	d := plan.CPU
	switch p.opts.Mode {
	case plan.ForceGPU:
		d = plan.GPU
	case plan.ForceCPU:
		d = plan.CPU
	default:
		if est.gpu < est.cpu {
			d = plan.GPU
		}
	}
	p.decisions[s.win.Group] = d
	return d
}

// Run materializes the pipeline: submit the job (charging the usual
// submission overhead), decide window placements, spawn one process
// per stage plus one credit courier per edge, and wait for the bounded
// stream to drain. Must be called inside g.Run, like plan.Execute.
func (p *Pipeline) Run() Result {
	if p.ran {
		panic("stream: pipeline already ran")
	}
	p.ran = true
	if len(p.stages) < 2 || p.stages[0].kind != kSource || p.stages[len(p.stages)-1].kind != kSink {
		panic("stream: a pipeline needs a Source, optional Windows, and a Sink")
	}
	clock := p.g.Cluster.Clock
	sp := p.tracer.Begin("driver", "stream", "stream:"+p.name, clock.Now(),
		obs.Str("mode", p.opts.Mode.String()),
		obs.Int("batch_records", int64(p.opts.BatchRecords)),
		obs.Int("buffer_batches", int64(p.opts.BufferBatches)),
		obs.Int("stages", int64(len(p.stages))))
	job := p.g.Cluster.NewJob(p.name)
	for _, s := range p.stages {
		if s.kind == kWindow {
			s.dev = p.decide(s)
			s.prepareWindow(job.ID)
		}
	}
	t0 := clock.Now()
	grp := vclock.NewGroup(clock)
	for _, s := range p.stages {
		s := s
		if s.out != nil {
			s.out.open(clock)
			grp.Go(s.track+"/credits", s.out.courier)
		}
		grp.Go(s.track, s.run)
	}
	grp.Wait()
	makespan := clock.Now() - t0

	res := Result{Makespan: makespan}
	for _, s := range p.stages {
		if s.kind == kSource {
			res.Records += s.records
			res.Batches += s.batches
		}
		res.Windows += s.windows
		res.Blocked += s.blocked
		res.Checksum += s.checksum
		if s.out != nil && int64(s.out.depthMax) > res.MaxDepth {
			res.MaxDepth = int64(s.out.depthMax)
		}
	}
	if makespan > 0 {
		res.Throughput = float64(res.Records) / makespan.Seconds()
	}
	sp.End(clock.Now(),
		obs.Int("records", res.Records),
		obs.Dur("blocked", res.Blocked))
	return res
}

// batch is the unit of transfer and credit accounting. Shells circulate
// producer -> consumer -> (with the credit grant) back to the producer,
// so a stage allocates at most BufferBatches+1 of them.
type batch struct {
	recs []Record
}

// edge is one bounded producer-consumer link: a FIFO of in-flight
// batches, a credit semaphore sized to the buffer limit, and the grant
// path that returns credits (and batch shells) to the producer over the
// network.
type edge struct {
	p        *Pipeline
	from, to *stage

	q       *vclock.Queue[*batch]
	credits *vclock.Semaphore
	grants  *vclock.Queue[*batch]
	free    *vclock.Queue[*batch]
	// depthMax is the buffer-occupancy high watermark, written only by
	// the producing stage's process.
	depthMax int
}

func (e *edge) open(clock *vclock.Clock) {
	e.q = vclock.NewQueue[*batch](clock)
	e.grants = vclock.NewQueue[*batch](clock)
	e.free = vclock.NewQueue[*batch](clock)
	e.credits = vclock.NewSemaphore(clock,
		fmt.Sprintf("stream-credits-s%d", e.from.idx), int64(e.p.opts.BufferBatches))
}

// take returns an empty batch shell, reusing one returned by a credit
// grant when available.
func (e *edge) take() *batch {
	if b, ok := e.free.TryGet(); ok {
		b.recs = b.recs[:0]
		return b
	}
	return &batch{recs: make([]Record, 0, e.p.opts.BatchRecords)}
}

// send ships one batch downstream: acquire a credit (blocking on the
// virtual clock when the buffer is full — the metered backpressure
// signal), pay the network transfer at nominal record size, enqueue.
func (e *edge) send(b *batch) {
	clock := e.p.g.Cluster.Clock
	t0 := clock.Now()
	e.credits.Acquire(1)
	if blocked := clock.Now() - t0; blocked > 0 {
		e.from.blocked += blocked
		e.from.cntBlocked.Add(int64(blocked))
		e.p.tracer.Record(e.from.track, "backpressure", "credit-wait", t0, clock.Now())
	}
	e.p.g.Cluster.Net.Transfer(e.from.worker, e.to.worker, int64(len(b.recs))*e.p.opts.RecordBytes)
	e.q.Put(b)
	if d := e.q.Len(); d > e.depthMax {
		e.depthMax = d
		e.from.cntDepth.Max(int64(d))
	}
	e.from.batches++
	e.from.cntBatches.Add(1)
}

// closeSend marks the stream drained: consumers observe end-of-stream
// once the buffered batches are processed, and the courier exits after
// returning the outstanding credits.
func (e *edge) closeSend() { e.q.Close() }

// ack returns the consumed batch's credit (and its shell) to the
// producer. The grant itself is carried by the edge's courier process
// so the network latency of the control message never stalls the
// consumer.
func (e *edge) ack(b *batch) { e.grants.Put(b) }

// courier is the per-edge credit-return process: for every processed
// batch it pays the control-message transfer back to the producer,
// recycles the shell and releases the credit.
func (e *edge) courier() {
	for {
		b, ok := e.grants.Get()
		if !ok {
			return
		}
		e.p.g.Cluster.Net.Transfer(e.to.worker, e.from.worker, costmodel.StreamCreditBytes)
		e.free.Put(b)
		e.credits.Release(1)
		e.from.cntGrants.Add(1)
	}
}

// run executes the stage's process until its input drains.
func (s *stage) run() {
	clock := s.p.g.Cluster.Clock
	sp := s.p.tracer.Begin(s.track, "stage", s.name, clock.Now(),
		obs.Str("kind", s.kind.String()),
		obs.Int("worker", int64(s.worker)))
	switch s.kind {
	case kSource:
		s.runSource()
	case kWindow:
		s.runWindow()
	case kSink:
		s.runSink()
	}
	attrs := []obs.Attr{obs.Int("records", s.records)}
	if s.kind == kWindow {
		attrs = append(attrs, obs.Str("placed", s.dev.String()))
	}
	sp.End(clock.Now(), attrs...)
}

// runSource generates records batch by batch, charging the production
// cost on the source worker's CPU and pushing each batch through the
// credit-bounded edge.
func (s *stage) runSource() {
	clock := s.p.g.Cluster.Clock
	model := s.p.g.Cfg.Config.Model
	keys := uint64(s.src.Keys)
	for i := int64(0); i < s.src.Records; {
		b := s.out.take()
		for len(b.recs) < s.p.opts.BatchRecords && i < s.src.Records {
			h := mix(s.src.Seed, uint64(i))
			b.recs = append(b.recs, Record{Key: h % keys, Val: unit(h)})
			i++
		}
		n := int64(len(b.recs))
		clock.Sleep(model.CPU.SlotTime(n, s.src.PerRecord.Scale(float64(n))))
		s.records += n
		s.cntRecords.Add(n)
		s.out.send(b)
	}
	s.out.closeSend()
	s.ackGrantsClosed()
}

// ackGrantsClosed closes the grant path once every credit came home, so
// the courier exits after its last grant. Called by the producer after
// closeSend: all batches are acked by then or still in flight, and
// waiting on the credit semaphore's capacity observes the drain.
func (s *stage) ackGrantsClosed() {
	e := s.out
	e.credits.Acquire(int64(s.p.opts.BufferBatches))
	e.credits.Release(int64(s.p.opts.BufferBatches))
	e.grants.Close()
}

// runWindow consumes batches, folds records into the tumbling window,
// and on every trigger fires the aggregation on the placed device,
// emitting one aggregate record per slot downstream.
func (s *stage) runWindow() {
	for {
		b, ok := s.in.q.Get()
		if !ok {
			break
		}
		for _, r := range b.recs {
			s.winRecs = append(s.winRecs, r)
			if len(s.winRecs) == s.win.Trigger.records {
				s.fireWindow()
			}
		}
		n := int64(len(b.recs))
		s.records += n
		s.cntRecords.Add(n)
		s.in.ack(b)
	}
	if len(s.winRecs) > 0 {
		s.fireWindow()
	}
	s.out.closeSend()
	s.ackGrantsClosed()
}

// prepareWindow allocates the stage's reusable staging: the packed
// input buffer and slot-table output for the GPU path, and the sums
// table both paths accumulate into.
func (s *stage) prepareWindow(jobID int) {
	s.winRecs = make([]Record, 0, s.win.Trigger.records)
	s.sums = make([]float32, s.win.Slots)
	pool := s.p.g.Cluster.TaskManagers[s.worker].Pool
	s.inBuf = pool.MustAllocate(s.win.Trigger.records * packedRecordBytes)
	s.outBuf = pool.MustAllocate(s.win.Slots * 4)
	s.jobID = jobID
	s.args[0] = int64(s.win.Slots)
}

// fireWindow aggregates the buffered window on the placed device. Both
// bodies consume the same packed (slot, value) pairs in the same order,
// so the emitted aggregates are bit-identical across placements.
func (s *stage) fireWindow() {
	clock := s.p.g.Cluster.Clock
	n := len(s.winRecs)
	t0 := clock.Now()

	in := s.inBuf.Bytes()
	for i, r := range s.winRecs {
		putU32(in, 2*i, uint32(r.Key%uint64(s.win.Slots)))
		putF32(in, 2*i+1, r.Val)
	}
	for i := range s.sums {
		s.sums[i] = 0
	}

	if s.dev == plan.GPU {
		s.aggGPU(n)
	} else {
		model := s.p.g.Cfg.Config.Model
		clock.Sleep(model.CPU.SlotTime(int64(n), s.win.PerRecordCPU.Scale(float64(n))))
		kernels.CPUWindowAgg(in, n, s.win.Slots, s.sums)
	}

	s.windows++
	s.cntWindows.Add(1)
	s.p.tracer.Record(s.track, "window", "window", t0, clock.Now(),
		obs.Int("records", int64(n)),
		obs.Str("placed", s.dev.String()))
	s.emitAggregates()
	s.winRecs = s.winRecs[:0]
}

// aggGPU lowers one window onto the GPU path: a pooled GWork (shell,
// In backing and completion event recycled through core.WorkPool, so
// steady-state submission allocates nothing) running the windowAgg
// kernel over the packed pairs.
func (s *stage) aggGPU(n int) {
	mgr := s.p.g.Manager(s.worker).Streams
	wp := mgr.Pool()
	out := s.outBuf.Bytes()
	for i := 0; i < s.win.Slots; i++ {
		putF32(out, i, 0)
	}
	w := wp.Get()
	w.ExecuteName = kernels.WindowAggKernel
	w.Size = n
	w.Nominal = int64(n)
	w.BlockSize = 256
	w.GridSize = (n + 255) / 256
	w.In = append(w.In, core.Input{Buf: s.inBuf, Nominal: int64(n) * packedRecordBytes})
	w.Out = s.outBuf
	w.OutNominal = int64(s.win.Slots) * 4
	w.Args = s.args[:1]
	w.JobID = s.jobID
	mgr.Submit(w)
	err := w.Wait()
	wp.Put(w)
	if err != nil {
		panic(fmt.Sprintf("stream: window %q kernel failed: %v", s.name, err))
	}
	for i := range s.sums {
		s.sums[i] = f32(out, i)
	}
}

// emitAggregates streams the window's slot sums downstream as one
// record per slot, batched like any other traffic.
func (s *stage) emitAggregates() {
	e := s.out
	var b *batch
	for slot, sum := range s.sums {
		if b == nil {
			b = e.take()
		}
		b.recs = append(b.recs, Record{Key: uint64(slot), Val: sum})
		if len(b.recs) == s.p.opts.BatchRecords {
			e.send(b)
			b = nil
		}
	}
	if b != nil {
		e.send(b)
	}
}

// sinkPerRecord is the sink's per-record folding demand.
var sinkPerRecord = costmodel.Work{Flops: 2, BytesRead: 8}

// runSink drains the final edge, charging a small folding cost and
// accumulating the checksum.
func (s *stage) runSink() {
	clock := s.p.g.Cluster.Clock
	model := s.p.g.Cfg.Config.Model
	for {
		b, ok := s.in.q.Get()
		if !ok {
			return
		}
		n := int64(len(b.recs))
		clock.Sleep(model.CPU.SlotTime(n, sinkPerRecord.Scale(float64(n))))
		for _, r := range b.recs {
			s.checksum += float64(r.Val) * float64(r.Key+1)
		}
		s.records += n
		s.cntRecords.Add(n)
		s.in.ack(b)
	}
}

// mix is splitmix64 (the workloads package's generator), keyed by
// (seed, ordinal) so sources are deterministic at any batch size.
func mix(seed, x uint64) uint64 {
	z := seed + 0x9e3779b97f4a7c15*(x+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// unit maps a mixed hash to a float32 in [0, 1).
func unit(h uint64) float32 {
	return float32(h>>40) / float32(1<<24)
}

// packed little-endian accessors (the kernels package's encoding).
func putU32(buf []byte, i int, v uint32) {
	buf[i*4] = byte(v)
	buf[i*4+1] = byte(v >> 8)
	buf[i*4+2] = byte(v >> 16)
	buf[i*4+3] = byte(v >> 24)
}

func putF32(buf []byte, i int, v float32) {
	putU32(buf, i, math.Float32bits(v))
}

func f32(buf []byte, i int) float32 {
	return math.Float32frombits(uint32(buf[i*4]) | uint32(buf[i*4+1])<<8 | uint32(buf[i*4+2])<<16 | uint32(buf[i*4+3])<<24)
}
