// Package gstruct implements GFlink's GStruct abstraction: C-style
// struct schemas whose raw-byte layout in off-heap buffers matches the
// layout of the corresponding CUDA struct exactly, so blocks can be
// DMA'd to the device without serialization, deserialization, or any
// transformation (Section 3.5.1 and Section 4 of the paper).
//
// A Schema is declared from ordered fields of primitive kinds
// (Unsigned32, Float32, Double64, ...) plus a pack alignment (the
// GStruct_8 suffix in the paper's example is an 8-byte alignment).
// Field offsets follow C layout rules under #pragma pack(align).
//
// Three data layouts are supported (Section 2.1): Array-of-Structures
// (AoS, the default), Structure-of-Arrays (SoA, the columnar format
// produced by declaring array fields), and Array-of-Primitives (AoP,
// each field in its own buffer).
package gstruct

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"
)

// Kind enumerates the primitive data types GFlink defines to mirror
// CUDA types (the paper's Unsigned32, Float32, Double64 families).
type Kind uint8

// Primitive kinds.
const (
	Uint8 Kind = iota
	Int32
	Uint32
	Int64
	Float32
	Float64
)

// Size returns the storage size of the kind in bytes.
func (k Kind) Size() int {
	switch k {
	case Uint8:
		return 1
	case Int32, Uint32, Float32:
		return 4
	case Int64, Float64:
		return 8
	default:
		panic(fmt.Sprintf("gstruct: unknown kind %d", k))
	}
}

// String returns the CUDA-C spelling of the kind.
func (k Kind) String() string {
	switch k {
	case Uint8:
		return "unsigned char"
	case Int32:
		return "int"
	case Uint32:
		return "unsigned int"
	case Int64:
		return "long long"
	case Float32:
		return "float"
	case Float64:
		return "double"
	default:
		return "?"
	}
}

// Layout selects how elements are arranged in memory.
type Layout uint8

// Supported layouts.
const (
	AoS Layout = iota // interleaved structs (row format)
	SoA               // one contiguous column per field
	AoP               // one buffer per field (see Schema.AoPSizes)
)

// String names the layout.
func (l Layout) String() string {
	switch l {
	case AoS:
		return "AoS"
	case SoA:
		return "SoA"
	case AoP:
		return "AoP"
	default:
		return "?"
	}
}

// Field is one member of a GStruct, in declaration (@StructField order)
// position. Len > 1 declares a fixed-size array member.
type Field struct {
	Name string
	Kind Kind
	Len  int // array length; 0 or 1 means scalar
}

func (f Field) len() int {
	if f.Len < 1 {
		return 1
	}
	return f.Len
}

// Schema is an immutable GStruct definition: ordered fields plus a pack
// alignment. Construct with New.
type Schema struct {
	name    string
	align   int // pack alignment: 1, 2, 4, 8 or 16
	fields  []Field
	offsets []int // AoS offsets
	stride  int   // AoS element stride including tail padding
}

// New builds a schema named name with the given pack alignment and
// fields. It validates field names (unique, non-empty), array lengths
// and the alignment value.
func New(name string, align int, fields ...Field) (*Schema, error) {
	switch align {
	case 1, 2, 4, 8, 16:
	default:
		return nil, fmt.Errorf("gstruct: invalid alignment %d (want 1,2,4,8,16)", align)
	}
	if len(fields) == 0 {
		return nil, fmt.Errorf("gstruct: schema %q has no fields", name)
	}
	seen := make(map[string]bool, len(fields))
	for _, f := range fields {
		if f.Name == "" {
			return nil, fmt.Errorf("gstruct: schema %q has an unnamed field", name)
		}
		if seen[f.Name] {
			return nil, fmt.Errorf("gstruct: schema %q duplicates field %q", name, f.Name)
		}
		if f.Len < 0 {
			return nil, fmt.Errorf("gstruct: field %q has negative array length", f.Name)
		}
		seen[f.Name] = true
	}
	s := &Schema{name: name, align: align, fields: append([]Field(nil), fields...)}
	s.computeLayout()
	return s, nil
}

// MustNew is New panicking on error, for static schema declarations.
func MustNew(name string, align int, fields ...Field) *Schema {
	s, err := New(name, align, fields...)
	if err != nil {
		panic(err)
	}
	return s
}

// computeLayout assigns C offsets under #pragma pack(s.align).
func (s *Schema) computeLayout() {
	s.offsets = make([]int, len(s.fields))
	off := 0
	maxAlign := 1
	for i, f := range s.fields {
		a := f.Kind.Size()
		if a > s.align {
			a = s.align
		}
		if a > maxAlign {
			maxAlign = a
		}
		off = roundUp(off, a)
		s.offsets[i] = off
		off += f.Kind.Size() * f.len()
	}
	s.stride = roundUp(off, maxAlign)
}

func roundUp(x, a int) int { return (x + a - 1) / a * a }

// Name returns the schema name.
func (s *Schema) Name() string { return s.name }

// Align returns the pack alignment.
func (s *Schema) Align() int { return s.align }

// NumFields returns the number of declared fields.
func (s *Schema) NumFields() int { return len(s.fields) }

// Field returns field i in declaration order.
func (s *Schema) Field(i int) Field { return s.fields[i] }

// FieldIndex resolves a field name to its declaration index; ok is
// false for unknown names.
func (s *Schema) FieldIndex(name string) (int, bool) {
	for i, f := range s.fields {
		if f.Name == name {
			return i, true
		}
	}
	return 0, false
}

// Stride returns the AoS element size including padding — the sizeof of
// the matching CUDA struct.
func (s *Schema) Stride() int { return s.stride }

// OffsetAoS returns the byte offset of field i within one AoS element —
// the offsetof of the matching CUDA struct member.
func (s *Schema) OffsetAoS(i int) int { return s.offsets[i] }

// Size returns the buffer size in bytes needed to hold n elements under
// the given layout. For AoP it is the sum of the per-field buffers (see
// AoPSizes for the split).
func (s *Schema) Size(layout Layout, n int) int {
	switch layout {
	case AoS:
		return s.stride * n
	case SoA, AoP:
		total := 0
		for _, f := range s.fields {
			total += f.Kind.Size() * f.len() * n
		}
		return total
	default:
		panic("gstruct: unknown layout")
	}
}

// AoPSizes returns the per-field buffer sizes for n elements under AoP.
func (s *Schema) AoPSizes(n int) []int {
	out := make([]int, len(s.fields))
	for i, f := range s.fields {
		out[i] = f.Kind.Size() * f.len() * n
	}
	return out
}

// soaOffset returns the byte offset of (field, elem, idx) in a single
// SoA buffer of n elements.
func (s *Schema) soaOffset(n, field, elem, idx int) int {
	off := 0
	for i := 0; i < field; i++ {
		off += s.fields[i].Kind.Size() * s.fields[i].len() * n
	}
	f := s.fields[field]
	return off + (elem*f.len()+idx)*f.Kind.Size()
}

// MaxCols is the maximum number of fields a ColSet can address.
const MaxCols = 64

// ColSet is a bitmask of field indices over a schema with at most
// MaxCols fields. The zero value means "all columns" wherever a ColSet
// qualifies a transfer or cache entry, so existing call sites that
// never heard of projection keep their semantics.
type ColSet uint64

// Cols builds a ColSet from field indices.
func Cols(idx ...int) ColSet {
	var c ColSet
	for _, i := range idx {
		if i < 0 || i >= MaxCols {
			panic(fmt.Sprintf("gstruct: column index %d out of range [0,%d)", i, MaxCols))
		}
		c |= 1 << uint(i)
	}
	return c
}

// ColRange selects fields [lo, hi) — the common "prefix of the schema"
// read sets kernels declare.
func ColRange(lo, hi int) ColSet {
	var c ColSet
	for i := lo; i < hi; i++ {
		c |= 1 << uint(i)
	}
	return c
}

// Has reports whether field i is in the set.
func (c ColSet) Has(i int) bool { return i >= 0 && i < MaxCols && c&(1<<uint(i)) != 0 }

// Count returns the number of selected fields.
func (c ColSet) Count() int {
	n := 0
	for x := uint64(c); x != 0; x &= x - 1 {
		n++
	}
	return n
}

// Empty reports whether no field is selected.
func (c ColSet) Empty() bool { return c == 0 }

// String renders the set as a sorted index list, e.g. "{0,1,5}".
func (c ColSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for i := 0; i < MaxCols; i++ {
		if c.Has(i) {
			if !first {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", i)
			first = false
		}
	}
	b.WriteByte('}')
	return b.String()
}

// AllCols returns the set selecting every field of s.
func (s *Schema) AllCols() ColSet {
	return ColRange(0, len(s.fields))
}

// Covers reports whether c selects every field of s (the degenerate
// projection that ships the whole buffer). The zero ColSet also covers,
// by the "zero means all" convention.
func (s *Schema) Covers(c ColSet) bool {
	return c == 0 || c&s.AllCols() == s.AllCols()
}

// ElemBytes returns the per-element byte footprint under SoA (the sum
// of all column widths; SoA has no padding, so Size(SoA,n) ==
// ElemBytes()*n).
func (s *Schema) ElemBytes() int {
	total := 0
	for _, f := range s.fields {
		total += f.Kind.Size() * f.len()
	}
	return total
}

// ProjectedElemBytes returns the per-element byte footprint of the
// selected columns under SoA. A zero set means all columns.
func (s *Schema) ProjectedElemBytes(c ColSet) int {
	if c == 0 {
		return s.ElemBytes()
	}
	total := 0
	for i, f := range s.fields {
		if c.Has(i) {
			total += f.Kind.Size() * f.len()
		}
	}
	return total
}

// SoARange is one contiguous byte range of an SoA buffer covering a run
// of adjacent selected columns. Off and Len are byte positions in a
// buffer holding the n elements passed to SoAColumnRanges; PerElem is
// the per-element width of the run, so the same run in a buffer of m
// elements spans PerElem*m bytes.
type SoARange struct {
	Off     int
	Len     int
	PerElem int
}

// SoAColumnRanges returns the contiguous byte ranges of an n-element
// SoA buffer that hold the selected columns, merging adjacent selected
// fields into single ranges (SoA stores columns consecutively in
// declaration order with no padding). A zero set means all columns and
// yields one range covering the whole buffer. Selecting a prefix of the
// schema therefore yields exactly one range starting at offset 0 — the
// zero-copy case.
func (s *Schema) SoAColumnRanges(c ColSet, n int) []SoARange {
	if c == 0 {
		c = s.AllCols()
	}
	var out []SoARange
	off := 0
	for i, f := range s.fields {
		w := f.Kind.Size() * f.len()
		if c.Has(i) {
			if len(out) > 0 && out[len(out)-1].Off+out[len(out)-1].Len == off {
				r := &out[len(out)-1]
				r.Len += w * n
				r.PerElem += w
			} else {
				out = append(out, SoARange{Off: off, Len: w * n, PerElem: w})
			}
		}
		off += w * n
	}
	return out
}

// CLayout renders the schema as the CUDA-C struct definition a kernel
// author would declare, documenting the byte-exact contract between the
// off-heap buffer and device code.
func (s *Schema) CLayout() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#pragma pack(%d)\nstruct %s {\n", s.align, s.name)
	for i, f := range s.fields {
		if f.len() > 1 {
			fmt.Fprintf(&b, "    %s %s[%d]; // offset %d\n", f.Kind, f.Name, f.len(), s.offsets[i])
		} else {
			fmt.Fprintf(&b, "    %s %s; // offset %d\n", f.Kind, f.Name, s.offsets[i])
		}
	}
	fmt.Fprintf(&b, "}; // sizeof = %d\n", s.stride)
	return b.String()
}

// View is a typed window over a raw buffer holding n elements of a
// schema in a given layout. Views perform bounds-checked little-endian
// access, mirroring how CUDA kernels would address the same bytes.
type View struct {
	s      *Schema
	layout Layout
	n      int
	buf    []byte
}

// NewView wraps buf as n elements of s laid out per layout. The buffer
// must be at least s.Size(layout, n) bytes. AoP is not addressable
// through a single View; use per-field views via AoPField.
func NewView(s *Schema, layout Layout, buf []byte, n int) (View, error) {
	if layout == AoP {
		return View{}, fmt.Errorf("gstruct: AoP needs per-field buffers; use AoPField")
	}
	if need := s.Size(layout, n); len(buf) < need {
		return View{}, fmt.Errorf("gstruct: buffer %d bytes, need %d for %d %s elements of %s", len(buf), need, n, layout, s.name)
	}
	return View{s: s, layout: layout, n: n, buf: buf}, nil
}

// MustView is NewView panicking on error.
func MustView(s *Schema, layout Layout, buf []byte, n int) View {
	v, err := NewView(s, layout, buf, n)
	if err != nil {
		panic(err)
	}
	return v
}

// Len returns the element count of the view.
func (v View) Len() int { return v.n }

// Schema returns the schema the view addresses.
func (v View) Schema() *Schema { return v.s }

// Layout returns the view's layout.
func (v View) Layout() Layout { return v.layout }

// Bytes returns the underlying raw buffer (the exact bytes a DMA would
// move).
func (v View) Bytes() []byte { return v.buf }

// addr computes the byte offset of (elem, field, idx), bounds-checked.
func (v View) addr(elem, field, idx int) int {
	if elem < 0 || elem >= v.n {
		panic(fmt.Sprintf("gstruct: element %d out of range [0,%d)", elem, v.n))
	}
	f := v.s.fields[field]
	if idx < 0 || idx >= f.len() {
		panic(fmt.Sprintf("gstruct: index %d out of range for field %q[%d]", idx, f.Name, f.len()))
	}
	switch v.layout {
	case AoS:
		return elem*v.s.stride + v.s.offsets[field] + idx*f.Kind.Size()
	case SoA:
		return v.s.soaOffset(v.n, field, elem, idx)
	default:
		panic("gstruct: unsupported layout")
	}
}

func (v View) kindCheck(field int, k Kind) {
	if got := v.s.fields[field].Kind; got != k {
		panic(fmt.Sprintf("gstruct: field %q is %s, accessed as %s", v.s.fields[field].Name, got, k))
	}
}

// Float32At reads field (by index) of element elem; idx addresses array
// fields and must be 0 for scalars.
func (v View) Float32At(elem, field, idx int) float32 {
	v.kindCheck(field, Float32)
	off := v.addr(elem, field, idx)
	return math.Float32frombits(binary.LittleEndian.Uint32(v.buf[off:]))
}

// PutFloat32At writes field of element elem.
func (v View) PutFloat32At(elem, field, idx int, x float32) {
	v.kindCheck(field, Float32)
	off := v.addr(elem, field, idx)
	binary.LittleEndian.PutUint32(v.buf[off:], math.Float32bits(x))
}

// Float64At reads a Double64 field.
func (v View) Float64At(elem, field, idx int) float64 {
	v.kindCheck(field, Float64)
	off := v.addr(elem, field, idx)
	return math.Float64frombits(binary.LittleEndian.Uint64(v.buf[off:]))
}

// PutFloat64At writes a Double64 field.
func (v View) PutFloat64At(elem, field, idx int, x float64) {
	v.kindCheck(field, Float64)
	off := v.addr(elem, field, idx)
	binary.LittleEndian.PutUint64(v.buf[off:], math.Float64bits(x))
}

// Uint32At reads an Unsigned32 field.
func (v View) Uint32At(elem, field, idx int) uint32 {
	v.kindCheck(field, Uint32)
	off := v.addr(elem, field, idx)
	return binary.LittleEndian.Uint32(v.buf[off:])
}

// PutUint32At writes an Unsigned32 field.
func (v View) PutUint32At(elem, field, idx int, x uint32) {
	v.kindCheck(field, Uint32)
	off := v.addr(elem, field, idx)
	binary.LittleEndian.PutUint32(v.buf[off:], x)
}

// Int32At reads an Int32 field.
func (v View) Int32At(elem, field, idx int) int32 {
	v.kindCheck(field, Int32)
	off := v.addr(elem, field, idx)
	return int32(binary.LittleEndian.Uint32(v.buf[off:]))
}

// PutInt32At writes an Int32 field.
func (v View) PutInt32At(elem, field, idx int, x int32) {
	v.kindCheck(field, Int32)
	off := v.addr(elem, field, idx)
	binary.LittleEndian.PutUint32(v.buf[off:], uint32(x))
}

// Int64At reads an Int64 field.
func (v View) Int64At(elem, field, idx int) int64 {
	v.kindCheck(field, Int64)
	off := v.addr(elem, field, idx)
	return int64(binary.LittleEndian.Uint64(v.buf[off:]))
}

// PutInt64At writes an Int64 field.
func (v View) PutInt64At(elem, field, idx int, x int64) {
	v.kindCheck(field, Int64)
	off := v.addr(elem, field, idx)
	binary.LittleEndian.PutUint64(v.buf[off:], uint64(x))
}

// Uint8At reads a byte field.
func (v View) Uint8At(elem, field, idx int) uint8 {
	v.kindCheck(field, Uint8)
	return v.buf[v.addr(elem, field, idx)]
}

// PutUint8At writes a byte field.
func (v View) PutUint8At(elem, field, idx int, x uint8) {
	v.kindCheck(field, Uint8)
	v.buf[v.addr(elem, field, idx)] = x
}

// AoPField wraps one field's standalone buffer (the AoP layout) as a
// single-field SoA view so the same accessors work.
func AoPField(s *Schema, field int, buf []byte, n int) (View, error) {
	f := s.fields[field]
	sub, err := New(s.name+"."+f.Name, s.align, f)
	if err != nil {
		return View{}, err
	}
	return NewView(sub, SoA, buf, n)
}

// Convert re-encodes src (any layout) into dst (any layout); both views
// must share the schema and element count. It is the transformation
// GFlink performs when a kernel prefers a different layout than the
// cached one — and the cost the user-defined layout lets applications
// avoid.
func Convert(dst, src View) error {
	if dst.s != src.s {
		return fmt.Errorf("gstruct: convert across schemas %q -> %q", src.s.name, dst.s.name)
	}
	if dst.n != src.n {
		return fmt.Errorf("gstruct: convert %d elements into view of %d", src.n, dst.n)
	}
	for e := 0; e < src.n; e++ {
		for fi, f := range src.s.fields {
			for idx := 0; idx < f.len(); idx++ {
				so := src.addr(e, fi, idx)
				do := dst.addr(e, fi, idx)
				copy(dst.buf[do:do+f.Kind.Size()], src.buf[so:so+f.Kind.Size()])
			}
		}
	}
	return nil
}
