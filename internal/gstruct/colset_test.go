package gstruct

import (
	"reflect"
	"testing"
)

func projSchema(t *testing.T) *Schema {
	t.Helper()
	return MustNew("Proj", 4,
		Field{Name: "a", Kind: Float32},         // 4 B/elem
		Field{Name: "b", Kind: Float32, Len: 3}, // 12 B/elem
		Field{Name: "c", Kind: Int32},           // 4 B/elem
		Field{Name: "d", Kind: Uint8},           // 1 B/elem
	)
}

func TestColSetBasics(t *testing.T) {
	c := Cols(0, 2)
	if !c.Has(0) || c.Has(1) || !c.Has(2) {
		t.Fatalf("Cols(0,2) membership wrong: %v", c)
	}
	if c.Count() != 2 {
		t.Fatalf("Count = %d, want 2", c.Count())
	}
	if got := c.String(); got != "{0,2}" {
		t.Fatalf("String = %q, want {0,2}", got)
	}
	if !ColSet(0).Empty() || c.Empty() {
		t.Fatal("Empty wrong")
	}
	if ColRange(1, 3) != Cols(1, 2) {
		t.Fatal("ColRange(1,3) != Cols(1,2)")
	}
}

func TestSchemaColSet(t *testing.T) {
	s := projSchema(t)
	if s.AllCols() != Cols(0, 1, 2, 3) {
		t.Fatalf("AllCols = %v", s.AllCols())
	}
	if !s.Covers(0) || !s.Covers(s.AllCols()) || s.Covers(Cols(0)) {
		t.Fatal("Covers wrong")
	}
	if got := s.ElemBytes(); got != 21 {
		t.Fatalf("ElemBytes = %d, want 21", got)
	}
	if got := s.ProjectedElemBytes(Cols(0, 2)); got != 8 {
		t.Fatalf("ProjectedElemBytes({0,2}) = %d, want 8", got)
	}
	if got := s.ProjectedElemBytes(0); got != 21 {
		t.Fatalf("ProjectedElemBytes(0) = %d, want 21 (zero set = all)", got)
	}
	// SoA with no padding: Size(SoA,n) must equal ElemBytes*n.
	if s.Size(SoA, 7) != 7*s.ElemBytes() {
		t.Fatalf("Size(SoA,7) = %d, want %d", s.Size(SoA, 7), 7*s.ElemBytes())
	}
}

func TestSoAColumnRanges(t *testing.T) {
	s := projSchema(t)
	const n = 10
	// Prefix {a,b}: one zero-offset range.
	got := s.SoAColumnRanges(Cols(0, 1), n)
	want := []SoARange{{Off: 0, Len: 160, PerElem: 16}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("prefix ranges = %+v, want %+v", got, want)
	}
	// Disjoint {a,c}: two ranges with a hole where b lives.
	got = s.SoAColumnRanges(Cols(0, 2), n)
	want = []SoARange{
		{Off: 0, Len: 40, PerElem: 4},
		{Off: 160, Len: 40, PerElem: 4},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("disjoint ranges = %+v, want %+v", got, want)
	}
	// Adjacent {b,c} merge into one range.
	got = s.SoAColumnRanges(Cols(1, 2), n)
	want = []SoARange{{Off: 40, Len: 160, PerElem: 16}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("adjacent ranges = %+v, want %+v", got, want)
	}
	// Zero set = whole buffer.
	got = s.SoAColumnRanges(0, n)
	want = []SoARange{{Off: 0, Len: s.Size(SoA, n), PerElem: s.ElemBytes()}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("all ranges = %+v, want %+v", got, want)
	}
	// Ranges must agree with soaOffset for each selected column start.
	for _, r := range s.SoAColumnRanges(Cols(2), n) {
		if r.Off != s.soaOffset(n, 2, 0, 0) {
			t.Fatalf("range offset %d != soaOffset %d", r.Off, s.soaOffset(n, 2, 0, 0))
		}
	}
}
