package gstruct

import (
	"strings"
	"testing"
	"testing/quick"
)

// paperPoint is the Point example from Section 3.5.1 of the paper:
// GStruct_8 { Unsigned32 x; Double64 y; Float32 z; }.
func paperPoint(t *testing.T) *Schema {
	t.Helper()
	s, err := New("Point", 8,
		Field{Name: "x", Kind: Uint32},
		Field{Name: "y", Kind: Float64},
		Field{Name: "z", Kind: Float32},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPaperPointLayout(t *testing.T) {
	s := paperPoint(t)
	// C layout under pack(8): x @0, pad to 8, y @8, z @16, stride 24.
	wantOffsets := []int{0, 8, 16}
	for i, want := range wantOffsets {
		if got := s.OffsetAoS(i); got != want {
			t.Errorf("offset[%d] = %d, want %d", i, got, want)
		}
	}
	if s.Stride() != 24 {
		t.Errorf("stride = %d, want 24", s.Stride())
	}
}

func TestPack4ChangesLayout(t *testing.T) {
	s := MustNew("Point4", 4,
		Field{Name: "x", Kind: Uint32},
		Field{Name: "y", Kind: Float64},
		Field{Name: "z", Kind: Float32},
	)
	// Under pack(4): x @0, y @4 (alignment capped at 4), z @12, stride 16.
	if s.OffsetAoS(1) != 4 || s.OffsetAoS(2) != 12 || s.Stride() != 16 {
		t.Errorf("pack(4) layout: y@%d z@%d stride=%d, want 4/12/16",
			s.OffsetAoS(1), s.OffsetAoS(2), s.Stride())
	}
}

func TestByteFieldPadding(t *testing.T) {
	s := MustNew("Mixed", 8,
		Field{Name: "tag", Kind: Uint8},
		Field{Name: "v", Kind: Float64},
		Field{Name: "flag", Kind: Uint8},
	)
	if s.OffsetAoS(0) != 0 || s.OffsetAoS(1) != 8 || s.OffsetAoS(2) != 16 {
		t.Errorf("offsets = %d,%d,%d", s.OffsetAoS(0), s.OffsetAoS(1), s.OffsetAoS(2))
	}
	if s.Stride() != 24 { // tail padded to 8
		t.Errorf("stride = %d, want 24", s.Stride())
	}
}

func TestSchemaValidation(t *testing.T) {
	if _, err := New("bad", 3, Field{Name: "x", Kind: Int32}); err == nil {
		t.Error("alignment 3 accepted")
	}
	if _, err := New("bad", 8); err == nil {
		t.Error("empty schema accepted")
	}
	if _, err := New("bad", 8, Field{Name: "x", Kind: Int32}, Field{Name: "x", Kind: Int32}); err == nil {
		t.Error("duplicate field accepted")
	}
	if _, err := New("bad", 8, Field{Name: "", Kind: Int32}); err == nil {
		t.Error("unnamed field accepted")
	}
	if _, err := New("bad", 8, Field{Name: "a", Kind: Int32, Len: -2}); err == nil {
		t.Error("negative array length accepted")
	}
}

func TestAoSRoundTrip(t *testing.T) {
	s := paperPoint(t)
	const n = 17
	buf := make([]byte, s.Size(AoS, n))
	v := MustView(s, AoS, buf, n)
	for i := 0; i < n; i++ {
		v.PutUint32At(i, 0, 0, uint32(i*3))
		v.PutFloat64At(i, 1, 0, float64(i)+0.5)
		v.PutFloat32At(i, 2, 0, float32(i)*2)
	}
	for i := 0; i < n; i++ {
		if v.Uint32At(i, 0, 0) != uint32(i*3) {
			t.Fatalf("x[%d] mismatch", i)
		}
		if v.Float64At(i, 1, 0) != float64(i)+0.5 {
			t.Fatalf("y[%d] mismatch", i)
		}
		if v.Float32At(i, 2, 0) != float32(i)*2 {
			t.Fatalf("z[%d] mismatch", i)
		}
	}
}

func TestSoARoundTripAndColumnContiguity(t *testing.T) {
	s := MustNew("P", 8, Field{Name: "a", Kind: Float32}, Field{Name: "b", Kind: Float32})
	const n = 8
	buf := make([]byte, s.Size(SoA, n))
	v := MustView(s, SoA, buf, n)
	for i := 0; i < n; i++ {
		v.PutFloat32At(i, 0, 0, float32(i))
		v.PutFloat32At(i, 1, 0, float32(100+i))
	}
	// Column a occupies the first n*4 bytes, column b the next: verify
	// by reading the raw buffer directly.
	raw := MustView(MustNew("raw", 4, Field{Name: "f", Kind: Float32, Len: 2 * n}), SoA, buf, 1)
	for i := 0; i < n; i++ {
		if raw.Float32At(0, 0, i) != float32(i) {
			t.Fatalf("column a not contiguous at %d", i)
		}
		if raw.Float32At(0, 0, n+i) != float32(100+i) {
			t.Fatalf("column b not contiguous at %d", i)
		}
	}
}

func TestArrayFieldSoAStyle(t *testing.T) {
	// Declaring arrays inside the GStruct makes the layout SoA "just as
	// the columnar format" (Section 3.2).
	const n = 4
	s := MustNew("Cols", 8, Field{Name: "xs", Kind: Float32, Len: n}, Field{Name: "ys", Kind: Float32, Len: n})
	buf := make([]byte, s.Size(AoS, 1))
	v := MustView(s, AoS, buf, 1)
	for i := 0; i < n; i++ {
		v.PutFloat32At(0, 0, i, float32(i))
		v.PutFloat32At(0, 1, i, float32(-i))
	}
	for i := 0; i < n; i++ {
		if v.Float32At(0, 0, i) != float32(i) || v.Float32At(0, 1, i) != float32(-i) {
			t.Fatalf("array field mismatch at %d", i)
		}
	}
	if s.Stride() != 2*n*4 {
		t.Errorf("stride = %d, want %d", s.Stride(), 2*n*4)
	}
}

func TestConvertAoSToSoA(t *testing.T) {
	s := paperPoint(t)
	const n = 9
	src := MustView(s, AoS, make([]byte, s.Size(AoS, n)), n)
	for i := 0; i < n; i++ {
		src.PutUint32At(i, 0, 0, uint32(i))
		src.PutFloat64At(i, 1, 0, float64(i)*1.25)
		src.PutFloat32At(i, 2, 0, float32(i)-3)
	}
	dst := MustView(s, SoA, make([]byte, s.Size(SoA, n)), n)
	if err := Convert(dst, src); err != nil {
		t.Fatal(err)
	}
	back := MustView(s, AoS, make([]byte, s.Size(AoS, n)), n)
	if err := Convert(back, dst); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if back.Uint32At(i, 0, 0) != uint32(i) ||
			back.Float64At(i, 1, 0) != float64(i)*1.25 ||
			back.Float32At(i, 2, 0) != float32(i)-3 {
			t.Fatalf("roundtrip mismatch at %d", i)
		}
	}
}

func TestAoPField(t *testing.T) {
	s := paperPoint(t)
	const n = 5
	sizes := s.AoPSizes(n)
	if sizes[0] != 4*n || sizes[1] != 8*n || sizes[2] != 4*n {
		t.Fatalf("AoPSizes = %v", sizes)
	}
	buf := make([]byte, sizes[1])
	fv, err := AoPField(s, 1, buf, n)
	if err != nil {
		t.Fatal(err)
	}
	fv.PutFloat64At(3, 0, 0, 42.0)
	if fv.Float64At(3, 0, 0) != 42.0 {
		t.Error("AoP field roundtrip failed")
	}
}

func TestViewErrors(t *testing.T) {
	s := paperPoint(t)
	if _, err := NewView(s, AoS, make([]byte, 10), 5); err == nil {
		t.Error("undersized buffer accepted")
	}
	if _, err := NewView(s, AoP, make([]byte, 1000), 5); err == nil {
		t.Error("AoP through NewView accepted")
	}
	v := MustView(s, AoS, make([]byte, s.Size(AoS, 2)), 2)
	mustPanic(t, "out-of-range element", func() { v.Float32At(2, 2, 0) })
	mustPanic(t, "kind mismatch", func() { v.Float32At(0, 1, 0) })
	mustPanic(t, "array index", func() { v.Uint32At(0, 0, 1) })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	fn()
}

func TestCLayoutRendering(t *testing.T) {
	s := paperPoint(t)
	c := s.CLayout()
	for _, want := range []string{"#pragma pack(8)", "struct Point", "unsigned int x", "double y", "float z", "sizeof = 24"} {
		if !strings.Contains(c, want) {
			t.Errorf("CLayout missing %q:\n%s", want, c)
		}
	}
}

// Property: for random schemas, offsets are aligned, non-overlapping and
// within stride; SoA and AoS round-trip losslessly.
func TestLayoutInvariantsProperty(t *testing.T) {
	kinds := []Kind{Uint8, Int32, Uint32, Int64, Float32, Float64}
	aligns := []int{1, 2, 4, 8, 16}
	f := func(spec []uint8, alignSel uint8, n uint8) bool {
		if len(spec) == 0 {
			spec = []uint8{0}
		}
		if len(spec) > 8 {
			spec = spec[:8]
		}
		align := aligns[int(alignSel)%len(aligns)]
		fields := make([]Field, len(spec))
		for i, b := range spec {
			fields[i] = Field{
				Name: string(rune('a' + i)),
				Kind: kinds[int(b)%len(kinds)],
				Len:  int(b%3) + 1,
			}
		}
		s, err := New("R", align, fields...)
		if err != nil {
			return false
		}
		// Offsets aligned and non-overlapping.
		end := 0
		for i, fl := range fields {
			a := fl.Kind.Size()
			if a > align {
				a = align
			}
			off := s.OffsetAoS(i)
			if off%a != 0 || off < end {
				return false
			}
			end = off + fl.Kind.Size()*fl.Len
		}
		if s.Stride() < end {
			return false
		}
		// Round trip AoS -> SoA -> AoS for a few elements.
		cnt := int(n%5) + 1
		src := MustView(s, AoS, make([]byte, s.Size(AoS, cnt)), cnt)
		for e := 0; e < cnt; e++ {
			for fi, fl := range fields {
				for idx := 0; idx < fl.Len; idx++ {
					seed := uint64(e*1000 + fi*10 + idx + 1)
					switch fl.Kind {
					case Uint8:
						src.PutUint8At(e, fi, idx, uint8(seed))
					case Int32:
						src.PutInt32At(e, fi, idx, int32(seed))
					case Uint32:
						src.PutUint32At(e, fi, idx, uint32(seed))
					case Int64:
						src.PutInt64At(e, fi, idx, int64(seed))
					case Float32:
						src.PutFloat32At(e, fi, idx, float32(seed))
					case Float64:
						src.PutFloat64At(e, fi, idx, float64(seed))
					}
				}
			}
		}
		soa := MustView(s, SoA, make([]byte, s.Size(SoA, cnt)), cnt)
		if Convert(soa, src) != nil {
			return false
		}
		back := MustView(s, AoS, make([]byte, s.Size(AoS, cnt)), cnt)
		if Convert(back, soa) != nil {
			return false
		}
		for i := range src.Bytes() {
			// Compare only field bytes (padding bytes are unspecified);
			// easiest: compare via accessors.
			_ = i
		}
		for e := 0; e < cnt; e++ {
			for fi, fl := range fields {
				for idx := 0; idx < fl.Len; idx++ {
					switch fl.Kind {
					case Uint8:
						if back.Uint8At(e, fi, idx) != src.Uint8At(e, fi, idx) {
							return false
						}
					case Int32:
						if back.Int32At(e, fi, idx) != src.Int32At(e, fi, idx) {
							return false
						}
					case Uint32:
						if back.Uint32At(e, fi, idx) != src.Uint32At(e, fi, idx) {
							return false
						}
					case Int64:
						if back.Int64At(e, fi, idx) != src.Int64At(e, fi, idx) {
							return false
						}
					case Float32:
						if back.Float32At(e, fi, idx) != src.Float32At(e, fi, idx) {
							return false
						}
					case Float64:
						if back.Float64At(e, fi, idx) != src.Float64At(e, fi, idx) {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
