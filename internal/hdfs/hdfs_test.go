package hdfs

import (
	"testing"
	"testing/quick"

	"gflink/internal/costmodel"
	"gflink/internal/netsim"
	"gflink/internal/vclock"
)

func newFS(nodes int, cfg Config) (*vclock.Clock, *FS) {
	c := vclock.New()
	net := netsim.New(c, costmodel.DefaultNet, nodes)
	return c, New(c, costmodel.DefaultDisk, net, cfg)
}

func TestCreateAndOpen(t *testing.T) {
	c, fs := newFS(4, Config{BlockSize: 1 << 20, Replication: 2})
	c.Run(func() {
		f := fs.Create("data", 3<<20+5)
		if f.Blocks() != 4 {
			t.Errorf("blocks = %d, want 4", f.Blocks())
		}
		got, err := fs.Open("data")
		if err != nil || got != f {
			t.Errorf("Open = %v, %v", got, err)
		}
		if _, err := fs.Open("missing"); err == nil {
			t.Error("Open(missing) succeeded")
		}
	})
}

func TestEmptyFileHasOneBlock(t *testing.T) {
	c, fs := newFS(2, Config{})
	c.Run(func() {
		f := fs.Create("empty", 0)
		if f.Blocks() != 1 {
			t.Errorf("empty file blocks = %d, want 1", f.Blocks())
		}
	})
}

func TestSplitsCoverFile(t *testing.T) {
	c, fs := newFS(4, Config{BlockSize: 1 << 20})
	c.Run(func() {
		f := fs.Create("d", 10<<20+123)
		splits := fs.Splits(f, 7)
		if len(splits) != 7 {
			t.Fatalf("got %d splits", len(splits))
		}
		var total int64
		var off int64
		for _, s := range splits {
			if s.Offset != off {
				t.Errorf("split %d offset %d, want %d", s.Index, s.Offset, off)
			}
			total += s.Length
			off += s.Length
		}
		if total != f.Size {
			t.Errorf("splits cover %d bytes, file is %d", total, f.Size)
		}
	})
}

func TestLocalReadCostsDiskOnly(t *testing.T) {
	c, fs := newFS(3, Config{BlockSize: 1 << 20, Replication: 3})
	d := costmodel.DefaultDisk
	end := c.Run(func() {
		f := fs.Create("d", 1<<20)
		s := fs.Splits(f, 1)[0]
		// Replication 3 on 3 nodes: every node has a replica.
		if !s.IsLocal(2) {
			t.Fatal("expected local replica on node 2")
		}
		fs.ReadSplit(2, s)
	})
	if want := d.ReadTime(1 << 20); end != want {
		t.Errorf("local read took %v, want %v", end, want)
	}
}

func TestRemoteReadAddsNetwork(t *testing.T) {
	c, fs := newFS(4, Config{BlockSize: 1 << 20, Replication: 1})
	d := costmodel.DefaultDisk
	n := costmodel.DefaultNet
	end := c.Run(func() {
		f := fs.Create("d", 1<<20)
		s := fs.Splits(f, 1)[0]
		// Find a node with no replica.
		remote := -1
		for node := 0; node < 4; node++ {
			if !s.IsLocal(node) {
				remote = node
				break
			}
		}
		if remote < 0 {
			t.Fatal("no remote node found")
		}
		fs.ReadSplit(remote, s)
	})
	if want := d.ReadTime(1<<20) + n.TransferTime(1<<20); end != want {
		t.Errorf("remote read took %v, want %v", end, want)
	}
}

func TestWriteReplicationPipeline(t *testing.T) {
	c, fs := newFS(3, Config{Replication: 3})
	d := costmodel.DefaultDisk
	n := costmodel.DefaultNet
	end := c.Run(func() {
		fs.Write(0, "out", 1<<20)
	})
	want := 3*d.WriteTime(1<<20) + 2*n.TransferTime(1<<20)
	if end != want {
		t.Errorf("replicated write took %v, want %v", end, want)
	}
	f, err := fs.Open("out")
	if err != nil || f.Size != 1<<20 {
		t.Errorf("written file: %+v, %v", f, err)
	}
}

func TestWriteAppendsToExisting(t *testing.T) {
	c, fs := newFS(2, Config{Replication: 1})
	c.Run(func() {
		fs.Write(0, "out", 100)
		fs.Write(1, "out", 50)
		f, err := fs.Open("out")
		if err != nil || f.Size != 150 {
			t.Errorf("appended size = %v, err %v", f, err)
		}
	})
}

func TestDiskContentionSerializesReads(t *testing.T) {
	c, fs := newFS(1, Config{BlockSize: 1 << 20, Replication: 1})
	d := costmodel.DefaultDisk
	end := c.Run(func() {
		f := fs.Create("d", 2<<20)
		splits := fs.Splits(f, 2)
		g := vclock.NewGroup(c)
		for _, s := range splits {
			s := s
			g.Go("r", func() { fs.ReadSplit(0, s) })
		}
		g.Wait()
	})
	if want := 2 * d.ReadTime(1<<20); end != want {
		t.Errorf("contended reads took %v, want %v", end, want)
	}
}

// Property: splits always tile the file exactly, for any size and count.
func TestSplitTilingProperty(t *testing.T) {
	f := func(size uint32, parts uint8) bool {
		c, fs := newFS(3, Config{BlockSize: 4096})
		ok := true
		c.Run(func() {
			file := fs.Create("p", int64(size%(1<<24)))
			n := int(parts%16) + 1
			splits := fs.Splits(file, n)
			var total, off int64
			for _, s := range splits {
				if s.Offset != off || s.Length < 0 {
					ok = false
				}
				total += s.Length
				off += s.Length
			}
			if total != file.Size {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestReplicationCappedAtNodes(t *testing.T) {
	c, fs := newFS(2, Config{Replication: 5})
	c.Run(func() {
		f := fs.Create("d", 100)
		s := fs.Splits(f, 1)[0]
		if len(s.LocalNodes) != 2 {
			t.Errorf("replicas = %v, want 2 nodes", s.LocalNodes)
		}
	})
}
