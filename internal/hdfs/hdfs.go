// Package hdfs simulates the Hadoop Distributed File System that Flink
// jobs read inputs from and write results to: a NameNode directory of
// files split into replicated blocks placed round-robin over DataNodes,
// with per-node disk contention and network cost for non-local access.
//
// Only the behaviour the paper's evaluation exercises is modelled:
// locality-aware streaming reads of input splits (the dominant cost of
// WordCount and of every job's first iteration) and pipelined
// replicated writes (the last-iteration cost visible in Fig 7a/7b).
package hdfs

import (
	"fmt"
	"sort"
	"sync"

	"gflink/internal/costmodel"
	"gflink/internal/netsim"
	"gflink/internal/vclock"
)

// DefaultBlockSize is the classic HDFS block size.
const DefaultBlockSize = 128 << 20

// Config shapes a file system instance.
type Config struct {
	BlockSize   int64 // default DefaultBlockSize
	Replication int   // default 3, capped at node count
}

// FS is a simulated HDFS spanning the DataNodes 0..nodes-1 (colocated
// with the cluster's worker nodes, as in the paper's testbed).
type FS struct {
	clock *vclock.Clock
	disk  costmodel.Disk
	net   *netsim.Network
	cfg   Config
	disks []*vclock.Semaphore

	mu    sync.Mutex
	files map[string]*File
	// nextNode rotates block placement.
	nextNode int
}

// File is a NameNode directory entry.
type File struct {
	Name   string
	Size   int64
	blocks []block
}

type block struct {
	size     int64
	replicas []int
}

// New creates an empty file system over the nodes of net.
func New(clock *vclock.Clock, disk costmodel.Disk, net *netsim.Network, cfg Config) *FS {
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = DefaultBlockSize
	}
	if cfg.Replication <= 0 {
		cfg.Replication = 3
	}
	if cfg.Replication > net.Nodes() {
		cfg.Replication = net.Nodes()
	}
	fs := &FS{clock: clock, disk: disk, net: net, cfg: cfg, files: make(map[string]*File)}
	for i := 0; i < net.Nodes(); i++ {
		fs.disks = append(fs.disks, vclock.NewSemaphore(clock, fmt.Sprintf("disk-%d", i), 1))
	}
	return fs
}

// Create registers a file of the given size with blocks placed
// round-robin, charging no time (dataset staging happens before the
// measured job, matching how HiBench pre-loads inputs). It replaces any
// existing file of the same name.
func (fs *FS) Create(name string, size int64) *File {
	if size < 0 {
		panic("hdfs: negative file size")
	}
	f := &File{Name: name, Size: size}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	remaining := size
	for remaining > 0 || len(f.blocks) == 0 {
		b := block{size: fs.cfg.BlockSize}
		if remaining < b.size {
			b.size = remaining
		}
		for r := 0; r < fs.cfg.Replication; r++ {
			b.replicas = append(b.replicas, (fs.nextNode+r)%fs.net.Nodes())
		}
		fs.nextNode = (fs.nextNode + 1) % fs.net.Nodes()
		f.blocks = append(f.blocks, b)
		remaining -= b.size
		if size == 0 {
			break
		}
	}
	fs.files[name] = f
	return f
}

// Open resolves a file by name.
func (fs *FS) Open(name string) (*File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("hdfs: file %q not found", name)
	}
	return f, nil
}

// Blocks returns the number of blocks in the file.
func (f *File) Blocks() int { return len(f.blocks) }

// Split describes a contiguous byte range of a file assigned to one
// reader task, with the nodes that hold a local replica of its first
// block (the locality hint Flink's scheduler uses).
type Split struct {
	File       *File
	Index      int
	Offset     int64
	Length     int64
	LocalNodes []int
}

// Splits partitions the file into n byte-balanced splits.
func (fs *FS) Splits(f *File, n int) []Split {
	if n <= 0 {
		n = 1
	}
	out := make([]Split, 0, n)
	per := f.Size / int64(n)
	off := int64(0)
	for i := 0; i < n; i++ {
		length := per
		if i == n-1 {
			length = f.Size - off
		}
		s := Split{File: f, Index: i, Offset: off, Length: length}
		if len(f.blocks) > 0 {
			bi := int(off / fs.cfg.BlockSize)
			if bi >= len(f.blocks) {
				bi = len(f.blocks) - 1
			}
			s.LocalNodes = append([]int(nil), f.blocks[bi].replicas...)
			sort.Ints(s.LocalNodes)
		}
		out = append(out, s)
		off += length
	}
	return out
}

// ReadSplit streams the split's bytes to node, blocking the calling
// process: disk time on the replica node, plus network transfer when no
// replica is local. It returns the number of bytes read.
func (fs *FS) ReadSplit(node int, s Split) int64 {
	if s.Length <= 0 {
		return 0
	}
	src := fs.pickReplica(node, s)
	fs.disks[src].Acquire(1)
	fs.clock.Sleep(fs.disk.ReadTime(s.Length))
	fs.disks[src].Release(1)
	if src != node {
		fs.net.Transfer(src, node, s.Length)
	}
	return s.Length
}

// pickReplica prefers a replica on node, else the first replica of the
// split's starting block (deterministic).
func (fs *FS) pickReplica(node int, s Split) int {
	for _, r := range s.LocalNodes {
		if r == node {
			return r
		}
	}
	if len(s.LocalNodes) > 0 {
		return s.LocalNodes[0]
	}
	return node
}

// Write streams n bytes from node into a new or existing file region,
// following the HDFS replication pipeline: a local disk write plus
// replication-1 remote copies (network + remote disk). It blocks the
// calling process for the pipeline duration.
func (fs *FS) Write(node int, name string, n int64) {
	if n <= 0 {
		return
	}
	// Local write.
	fs.disks[node].Acquire(1)
	fs.clock.Sleep(fs.disk.WriteTime(n))
	fs.disks[node].Release(1)
	// Replication pipeline.
	for r := 1; r < fs.cfg.Replication; r++ {
		peer := (node + r) % fs.net.Nodes()
		fs.net.Transfer(node, peer, n)
		fs.disks[peer].Acquire(1)
		fs.clock.Sleep(fs.disk.WriteTime(n))
		fs.disks[peer].Release(1)
	}
	fs.mu.Lock()
	if f, ok := fs.files[name]; ok {
		f.Size += n
		fs.mu.Unlock()
		return
	}
	fs.mu.Unlock()
	fs.Create(name, n)
}

// IsLocal reports whether the split has a replica on node.
func (s Split) IsLocal(node int) bool {
	for _, r := range s.LocalNodes {
		if r == node {
			return true
		}
	}
	return false
}
