package costmodel

import (
	"testing"
	"time"
)

// TestProjectedH2DFlipsPlacement builds a transfer-bound stage whose
// GPU estimate loses to the CPU at full H2D volume but wins once the
// kernel's declared read set shrinks the shipped bytes — the Auto-flip
// the plan layer relies on.
func TestProjectedH2DFlipsPlacement(t *testing.T) {
	m := Default()
	s := StageCost{
		Records:      1_000_000,
		CPUPerRec:    Work{Flops: 40, BytesRead: 40},
		GPUWork:      Work{Flops: 4e8, BytesRead: 4e8},
		HostToDevice: 1 << 30,
		DeviceToHost: 1 << 10,
	}
	cpu := m.EstimateCPUStage(s)
	full := m.EstimateGPUStage(C2050, s)
	if full <= cpu {
		t.Fatalf("fixture broken: full-volume GPU estimate %v should lose to CPU %v", full, cpu)
	}
	s.ProjectedH2D = 1 << 26 // 64 MiB of 1 GiB actually read
	proj := m.EstimateGPUStage(C2050, s)
	if proj >= full {
		t.Fatalf("projected estimate %v did not drop below full %v", proj, full)
	}
	if proj >= cpu {
		t.Fatalf("projected GPU estimate %v should now beat CPU %v", proj, cpu)
	}
}

// TestProjectedH2DNeverInflates pins that a projected volume larger
// than the full volume (a kernel reading beyond the block — impossible,
// but defensive) is ignored.
func TestProjectedH2DNeverInflates(t *testing.T) {
	m := Default()
	s := StageCost{GPUWork: Work{Flops: 1e6}, HostToDevice: 1 << 20}
	base := m.EstimateGPUStage(C2050, s)
	s.ProjectedH2D = 1 << 24
	if got := m.EstimateGPUStage(C2050, s); got != base {
		t.Fatalf("oversized ProjectedH2D changed estimate: %v != %v", got, base)
	}
}

func TestChunkCount(t *testing.T) {
	m := Default()
	// Transfer-dominated with a comparable kernel: chunking hides the
	// kernel behind transfers (or vice versa), so the policy should pick
	// more than one chunk.
	big := Work{Flops: 1e11} // ~388 ms on C2050 roofline
	c := m.ChunkCount(C2050, big, 1, 1<<30, 1<<20)
	if c < 2 {
		t.Fatalf("balanced kernel/transfer work got %d chunks, want >= 2", c)
	}
	// Tiny work: fixed per-chunk costs dominate, policy must stay
	// monolithic.
	tiny := Work{Flops: 1e3}
	if got := m.ChunkCount(C2050, tiny, 1, 1<<10, 1<<8); got != 1 {
		t.Fatalf("tiny work got %d chunks, want 1", got)
	}
	// The chosen count must actually minimize the policy's own estimate
	// among the candidates (ties to the smaller count).
	est := func(cc int) time.Duration {
		h2d := m.PCIe.GFlinkTransferTime(int64(1<<30) / int64(cc))
		d2h := m.PCIe.GFlinkTransferTime(int64(1<<20) / int64(cc))
		kern := C2050.KernelTime(big.Scale(1/float64(cc)), 1)
		beat := h2d + d2h
		if kern > beat {
			beat = kern
		}
		return h2d + kern + d2h + time.Duration(cc-1)*beat
	}
	for _, cc := range []int{1, 2, 4, 8, 16, 32} {
		if est(cc) < est(c) {
			t.Fatalf("candidate %d (%v) beats chosen %d (%v)", cc, est(cc), c, est(c))
		}
	}
}
