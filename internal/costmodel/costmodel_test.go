package costmodel

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestWorkAddScale(t *testing.T) {
	w := Work{Flops: 2, BytesRead: 3, BytesWritten: 4}
	s := w.Add(w).Scale(0.5)
	if s != w {
		t.Errorf("Add+Scale(0.5) = %+v, want %+v", s, w)
	}
	if w.Bytes() != 7 {
		t.Errorf("Bytes = %v, want 7", w.Bytes())
	}
}

func TestCPUSlotTimeComputeBound(t *testing.T) {
	c := DefaultCPU
	// 1.2 GFLOP of pure compute on a 1.2 GFLOPS core = 1 second, plus
	// 1000 records of overhead.
	got := c.SlotTime(1000, Work{Flops: 1.2e9})
	want := time.Second + 1000*c.RecordOverhead
	if got != want {
		t.Errorf("SlotTime = %v, want %v", got, want)
	}
}

func TestCPUSlotTimeMemoryBound(t *testing.T) {
	c := DefaultCPU
	// 25.6 GB moved at 25.6 GB/s = 1 second even with tiny flops.
	got := c.SlotTime(0, Work{Flops: 1, BytesRead: 25.6e9})
	if got != time.Second {
		t.Errorf("SlotTime = %v, want 1s", got)
	}
}

func TestGPUKernelRoofline(t *testing.T) {
	p := C2050
	// Compute bound: flops/(peak*eff) dominates.
	w := Work{Flops: 1030e9 * 0.25} // exactly one second at 25% efficiency
	got := p.KernelTime(w, 1.0)
	if got != time.Second+p.LaunchOverhead {
		t.Errorf("compute-bound kernel = %v, want 1s+launch", got)
	}
	// Memory bound with coalescing penalty: halving the factor doubles
	// the time.
	wm := Work{BytesRead: 144e9}
	full := p.KernelTime(wm, 1.0) - p.LaunchOverhead
	half := p.KernelTime(wm, 0.5) - p.LaunchOverhead
	if math.Abs(float64(half)/float64(full)-2.0) > 1e-9 {
		t.Errorf("coalescing 0.5 gave ratio %v, want 2.0", float64(half)/float64(full))
	}
}

func TestGPUGenerationOrdering(t *testing.T) {
	// The same compute-heavy kernel must rank P100 < K20 < C2050 and
	// GTX750 roughly equal to C2050 (Fig 8b's ordering).
	w := Work{Flops: 1e12, BytesRead: 1e9}
	tP100 := P100.KernelTime(w, 1)
	tK20 := K20.KernelTime(w, 1)
	tC2050 := C2050.KernelTime(w, 1)
	tGTX := GTX750.KernelTime(w, 1)
	if !(tP100 < tK20 && tK20 < tC2050) {
		t.Errorf("ordering violated: P100=%v K20=%v C2050=%v", tP100, tK20, tC2050)
	}
	ratio := float64(tGTX) / float64(tC2050)
	if ratio < 0.7 || ratio > 1.3 {
		t.Errorf("GTX750 vs C2050 ratio %v, want ~1", ratio)
	}
}

func TestPCIeMatchesTable2Shape(t *testing.T) {
	p := DefaultPCIe
	mb := func(bytes int64, d time.Duration) float64 {
		return float64(bytes) / d.Seconds() / 1e6
	}
	small := mb(2048, p.GFlinkTransferTime(2048))
	large := mb(1048576, p.GFlinkTransferTime(1048576))
	if small < 500 || small > 1100 {
		t.Errorf("2KiB GFlink bandwidth %.0f MB/s, want ~0.8 GB/s", small)
	}
	if large < 2800 || large > 3100 {
		t.Errorf("1MiB GFlink bandwidth %.0f MB/s, want ~3 GB/s", large)
	}
	// Native beats GFlink for small transfers; they converge for large.
	nSmall := mb(2048, p.TransferTime(2048))
	nLarge := mb(1048576, p.TransferTime(1048576))
	if nSmall <= small {
		t.Errorf("native small %.0f <= gflink small %.0f", nSmall, small)
	}
	if math.Abs(nLarge-large)/nLarge > 0.01 {
		t.Errorf("large transfers should converge: native %.0f vs gflink %.0f", nLarge, large)
	}
}

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"GTX750", "C2050", "K20", "P100"} {
		p, ok := ProfileByName(name)
		if !ok || p.Name != name {
			t.Errorf("ProfileByName(%q) = %+v, %v", name, p, ok)
		}
	}
	if _, ok := ProfileByName("V100"); ok {
		t.Error("unknown profile resolved")
	}
}

func TestCoalesceFactor(t *testing.T) {
	if CoalesceFactor("SoA") != 1.0 || CoalesceFactor("AoP") != 1.0 {
		t.Error("columnar layouts must be fully coalesced")
	}
	if CoalesceFactor("AoS") >= 1.0 {
		t.Error("AoS must pay a coalescing penalty")
	}
}

// Property: transfer time is monotone in size and effective bandwidth
// never exceeds peak.
func TestPCIeMonotoneProperty(t *testing.T) {
	p := DefaultPCIe
	f := func(a, b uint32) bool {
		x, y := int64(a%(64<<20))+1, int64(b%(64<<20))+1
		if x > y {
			x, y = y, x
		}
		tx, ty := p.TransferTime(x), p.TransferTime(y)
		if tx > ty {
			return false
		}
		eff := float64(x) / tx.Seconds()
		return eff <= p.PeakGBps*1e9*1.001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: KernelTime is monotone in work.
func TestKernelTimeMonotoneProperty(t *testing.T) {
	f := func(flops, bytes uint32, k uint8) bool {
		p := []GPUProfile{GTX750, C2050, K20, P100}[k%4]
		w1 := Work{Flops: float64(flops), BytesRead: float64(bytes)}
		w2 := w1.Scale(2)
		return p.KernelTime(w1, 1) <= p.KernelTime(w2, 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDiskNetOverheads(t *testing.T) {
	d := DefaultDisk
	if d.ReadTime(150e6) < time.Second {
		t.Error("reading 150MB at 150MB/s should take >= 1s")
	}
	n := DefaultNet
	if n.TransferTime(125e6) < time.Second {
		t.Error("moving 125MB over 1Gbps should take >= 1s")
	}
	m := Default()
	if m.Overheads.JobSubmit <= 0 || m.CPU.Cores != 4 {
		t.Error("default model incomplete")
	}
}

func TestStageEstimatesPlacementDirection(t *testing.T) {
	m := Default()
	// A compute-dense iterative stage with a cacheable input belongs on
	// the GPU: per-record iterator overhead dwarfs the kernel time.
	dense := StageCost{
		Records:        10_000_000,
		CPUPerRec:      Work{Flops: 120, BytesRead: 80},
		GPUWork:        Work{Flops: 1.2e9, BytesRead: 8e8},
		HostToDevice:   800 << 20,
		DeviceToHost:   4 << 10,
		Executions:     10,
		CacheResident:  true,
		CPUParallelism: 8,
		GPUParallelism: 4,
	}
	if cpu, gpu := m.EstimateCPUStage(dense), m.EstimateGPUStage(C2050, dense); gpu >= cpu {
		t.Errorf("dense iterative stage: gpu %v not under cpu %v", gpu, cpu)
	}
	// A tiny one-shot stage stays on the CPU: the PCIe round trip alone
	// exceeds the iterator cost of a handful of records.
	tiny := StageCost{
		Records:        100,
		CPUPerRec:      Work{Flops: 10},
		GPUWork:        Work{Flops: 1000},
		HostToDevice:   64 << 20,
		CPUParallelism: 4,
		GPUParallelism: 2,
	}
	if cpu, gpu := m.EstimateCPUStage(tiny), m.EstimateGPUStage(C2050, tiny); cpu >= gpu {
		t.Errorf("tiny stage: cpu %v not under gpu %v", cpu, gpu)
	}
}

func TestStageEstimateCacheAmortization(t *testing.T) {
	m := Default()
	s := StageCost{
		GPUWork:        Work{Flops: 1e9},
		HostToDevice:   512 << 20,
		H2DStreamed:    1 << 20,
		Executions:     8,
		GPUParallelism: 2,
	}
	uncached := m.EstimateGPUStage(C2050, s)
	s.CacheResident = true
	cached := m.EstimateGPUStage(C2050, s)
	if cached >= uncached {
		t.Errorf("cache residency did not amortize transfers: %v >= %v", cached, uncached)
	}
	// The first execution still pays the full transfer either way:
	// one-execution stages are identical.
	one := s
	one.Executions = 1
	oneUncached := one
	oneUncached.CacheResident = false
	if m.EstimateGPUStage(C2050, one) != m.EstimateGPUStage(C2050, oneUncached) {
		t.Error("single-execution estimate should not depend on cache residency")
	}
}
