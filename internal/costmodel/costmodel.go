// Package costmodel defines the hardware timing models the GFlink
// simulator charges against its virtual clock.
//
// Every quantity the paper's evaluation depends on is an explicit,
// documented constant here: JVM per-record iterator overhead, effective
// scalar throughput of CPU task slots, GPU roofline parameters per
// device generation, PCIe DMA latency and peak bandwidth, disk and
// network bandwidth, and the fixed job-level overheads (submission,
// scheduling, per-superstep synchronization).
//
// The PCIe constants are calibrated against Table 2 of the paper
// (transfer-channel bandwidth versus transfer size): effective bandwidth
// = bytes / (setupLatency + bytes/peak) reproduces the measured ramp
// from ~0.8 GB/s at 2 KiB to ~3 GB/s at and beyond 256 KiB, and the
// extra JNI redirect cost reproduces GFlink's small-transfer deficit
// against the native path.
package costmodel

import "time"

// Work describes the resource demand of processing a batch of elements:
// floating-point operations plus bytes moved through the memory system.
// Costs are totals for the batch, not per element.
type Work struct {
	Flops        float64
	BytesRead    float64
	BytesWritten float64
}

// Add returns the component-wise sum of two work descriptors.
func (w Work) Add(o Work) Work {
	return Work{
		Flops:        w.Flops + o.Flops,
		BytesRead:    w.BytesRead + o.BytesRead,
		BytesWritten: w.BytesWritten + o.BytesWritten,
	}
}

// Scale returns the work multiplied by k, used to convert per-element
// demand into batch demand at nominal scale.
func (w Work) Scale(k float64) Work {
	return Work{Flops: w.Flops * k, BytesRead: w.BytesRead * k, BytesWritten: w.BytesWritten * k}
}

// Bytes returns total bytes moved.
func (w Work) Bytes() float64 { return w.BytesRead + w.BytesWritten }

// seconds converts a positive duration in seconds to time.Duration,
// rounding to nanoseconds.
func seconds(s float64) time.Duration {
	if s <= 0 {
		return 0
	}
	return time.Duration(s * float64(time.Second))
}

// CPU models one worker node's processor as seen by JVM task slots.
// The defaults describe the paper's testbed: an Intel Core i5-4590
// (4 cores, 3.3 GHz) running Flink operators through the
// one-element-at-a-time iterator model.
type CPU struct {
	// Cores is the number of physical cores (== default task slots).
	Cores int
	// EffectiveGFLOPS is the sustained per-core throughput of JVM scalar
	// operator code, far below peak because of bounds checks, virtual
	// dispatch and lack of vectorization.
	EffectiveGFLOPS float64
	// MemBandwidthGBps is the per-socket memory bandwidth shared by all
	// cores.
	MemBandwidthGBps float64
	// RecordOverhead is the fixed per-record cost of the Flink iterator
	// execution model: iterator advance, virtual calls, tuple access.
	RecordOverhead time.Duration
	// SerDePerByte is the cost per byte of serializing or deserializing
	// JVM objects (used on shuffle paths and in the naive JVM-to-GPU
	// communication ablation).
	SerDePerByte time.Duration
	// HeapCopyGBps is the bandwidth of copying between JVM heap and
	// native memory (the step GFlink's off-heap layout eliminates).
	HeapCopyGBps float64
}

// DefaultCPU is the testbed CPU model (i5-4590).
var DefaultCPU = CPU{
	Cores:            4,
	EffectiveGFLOPS:  1.2,
	MemBandwidthGBps: 25.6,
	RecordOverhead:   60 * time.Nanosecond,
	SerDePerByte:     time.Nanosecond,
	HeapCopyGBps:     4.0,
}

// SlotTime returns the time one task slot (one core) needs to process
// records of total demand w through the iterator model.
func (c CPU) SlotTime(records int64, w Work) time.Duration {
	compute := w.Flops / (c.EffectiveGFLOPS * 1e9)
	mem := w.Bytes() / (c.MemBandwidthGBps * 1e9)
	t := compute
	if mem > t {
		t = mem
	}
	return seconds(t) + time.Duration(records)*c.RecordOverhead
}

// SerDe returns the serialization (or deserialization) time for n bytes.
func (c CPU) SerDe(n int64) time.Duration {
	return time.Duration(n) * c.SerDePerByte
}

// HeapCopy returns the time to copy n bytes between JVM heap and native
// memory.
func (c CPU) HeapCopy(n int64) time.Duration {
	return seconds(float64(n) / (c.HeapCopyGBps * 1e9))
}

// GPUProfile is the roofline description of one GPU generation.
type GPUProfile struct {
	Name string
	// SMs is the number of streaming multiprocessors.
	SMs int
	// SPGFLOPS is peak single-precision throughput.
	SPGFLOPS float64
	// MemBWGBps is peak device-memory bandwidth.
	MemBWGBps float64
	// MemBytes is device-memory capacity.
	MemBytes int64
	// CopyEngines is 1 (half-duplex PCIe) or 2 (full-duplex).
	CopyEngines int
	// Efficiency is the fraction of peak a well-written data-parallel
	// kernel sustains.
	Efficiency float64
	// LaunchOverhead is the fixed cost of one kernel launch.
	LaunchOverhead time.Duration
}

// The device generations used in the paper's evaluation (Section 6.1).
var (
	GTX750 = GPUProfile{Name: "GTX750", SMs: 4, SPGFLOPS: 1100, MemBWGBps: 80, MemBytes: 2 << 30, CopyEngines: 1, Efficiency: 0.25, LaunchOverhead: 8 * time.Microsecond}
	C2050  = GPUProfile{Name: "C2050", SMs: 14, SPGFLOPS: 1030, MemBWGBps: 144, MemBytes: 3 << 30, CopyEngines: 1, Efficiency: 0.25, LaunchOverhead: 8 * time.Microsecond}
	K20    = GPUProfile{Name: "K20", SMs: 13, SPGFLOPS: 3520, MemBWGBps: 208, MemBytes: 5 << 30, CopyEngines: 2, Efficiency: 0.25, LaunchOverhead: 7 * time.Microsecond}
	P100   = GPUProfile{Name: "P100", SMs: 56, SPGFLOPS: 9300, MemBWGBps: 732, MemBytes: 16 << 30, CopyEngines: 2, Efficiency: 0.28, LaunchOverhead: 6 * time.Microsecond}
)

// ProfileByName resolves a profile by its Name field; it returns false
// for unknown names.
func ProfileByName(name string) (GPUProfile, bool) {
	for _, p := range []GPUProfile{GTX750, C2050, K20, P100} {
		if p.Name == name {
			return p, true
		}
	}
	return GPUProfile{}, false
}

// KernelTime returns the execution time of a kernel with demand w whose
// global-memory accesses achieve the given coalescing factor in (0,1]:
// 1.0 for fully coalesced (SoA/AoP column access), lower for strided AoS
// access. The model is the standard roofline:
// max(compute-bound, memory-bound) plus launch overhead.
func (p GPUProfile) KernelTime(w Work, coalesce float64) time.Duration {
	if coalesce <= 0 || coalesce > 1 {
		coalesce = 1
	}
	compute := w.Flops / (p.SPGFLOPS * 1e9 * p.Efficiency)
	mem := w.Bytes() / (p.MemBWGBps * 1e9 * coalesce)
	t := compute
	if mem > t {
		t = mem
	}
	return p.LaunchOverhead + seconds(t)
}

// PCIe models the host-to-device interconnect shared by the GPUs of one
// node.
type PCIe struct {
	// SetupLatency is the fixed DMA initiation cost per transfer.
	SetupLatency time.Duration
	// PeakGBps is the sustained large-transfer bandwidth.
	PeakGBps float64
	// JNIRedirect is the extra cost of routing one transfer request
	// through the CUDAWrapper -> CUDAStub control channel (GFlink path
	// only; the native baseline calls the driver directly).
	JNIRedirect time.Duration
}

// DefaultPCIe matches Table 2 of the paper (PCIe Gen2-era testbed with a
// ~3 GB/s sustained rate).
var DefaultPCIe = PCIe{
	SetupLatency: 1800 * time.Nanosecond,
	PeakGBps:     3.0,
	JNIRedirect:  300 * time.Nanosecond,
}

// TransferTime returns the duration of one DMA of n bytes, excluding any
// control-channel redirect cost.
func (p PCIe) TransferTime(n int64) time.Duration {
	return p.SetupLatency + seconds(float64(n)/(p.PeakGBps*1e9))
}

// GFlinkTransferTime is TransferTime plus the JNI redirect of the
// CUDAWrapper/CUDAStub control channel.
func (p PCIe) GFlinkTransferTime(n int64) time.Duration {
	return p.JNIRedirect + p.TransferTime(n)
}

// Disk models a node-local spinning disk used by HDFS DataNodes.
type Disk struct {
	ReadMBps  float64
	WriteMBps float64
	Seek      time.Duration
}

// DefaultDisk is a 7200 rpm SATA disk.
var DefaultDisk = Disk{ReadMBps: 150, WriteMBps: 120, Seek: 8 * time.Millisecond}

// DefaultSpillDisk is the node-local scratch SSD the tiered memory
// subsystem spills host pages to when the host tier overflows
// (core.WithDiskBandwidth overrides it): much faster than the
// HDFS-era DefaultDisk, still an order of magnitude under PCIe.
var DefaultSpillDisk = Disk{ReadMBps: 500, WriteMBps: 450, Seek: 100 * time.Microsecond}

// ReadTime returns the time to stream-read n bytes.
func (d Disk) ReadTime(n int64) time.Duration {
	return d.Seek + seconds(float64(n)/(d.ReadMBps*1e6))
}

// WriteTime returns the time to stream-write n bytes.
func (d Disk) WriteTime(n int64) time.Duration {
	return d.Seek + seconds(float64(n)/(d.WriteMBps*1e6))
}

// Net models the cluster interconnect (per-node full-duplex links).
type Net struct {
	BandwidthGbps float64
	Latency       time.Duration
}

// DefaultNet is gigabit Ethernet.
var DefaultNet = Net{BandwidthGbps: 1.0, Latency: 100 * time.Microsecond}

// TransferTime returns the time for one n-byte point-to-point transfer
// at full link rate.
func (n Net) TransferTime(bytes int64) time.Duration {
	return n.Latency + seconds(float64(bytes)/(n.BandwidthGbps*1e9/8))
}

// StreamCreditBytes is the wire size of one credit-grant control
// message in the stream layer's backpressure protocol: a channel id,
// a sequence number and a credit count. Small enough that a grant is
// latency-bound on the cluster network.
const StreamCreditBytes = 64

// Overheads are the fixed framework costs of a Flink job.
type Overheads struct {
	// JobSubmit is client -> JobManager submission plus plan
	// translation.
	JobSubmit time.Duration
	// TaskDeploy is the JobManager -> TaskManager cost of deploying one
	// task.
	TaskDeploy time.Duration
	// SuperstepSync is the driver-side synchronization barrier between
	// bulk iterations.
	SuperstepSync time.Duration
	// JNICall is one control-channel round trip (CUDAWrapper ->
	// CUDAStub -> driver API).
	JNICall time.Duration
	// PinPage is the cost of cudaHostRegister for one memory page.
	PinPage time.Duration
}

// DefaultOverheads matches Flink 1.3-era behaviour on a small cluster.
var DefaultOverheads = Overheads{
	JobSubmit:     1500 * time.Millisecond,
	TaskDeploy:    2 * time.Millisecond,
	SuperstepSync: 120 * time.Millisecond,
	JNICall:       400 * time.Nanosecond,
	PinPage:       1 * time.Microsecond,
}

// Model bundles every hardware model of one simulated cluster so the
// runtime can thread a single value through.
type Model struct {
	CPU       CPU
	PCIe      PCIe
	Disk      Disk
	Net       Net
	Overheads Overheads
}

// Default is the paper-testbed model.
func Default() Model {
	return Model{
		CPU:       DefaultCPU,
		PCIe:      DefaultPCIe,
		Disk:      DefaultDisk,
		Net:       DefaultNet,
		Overheads: DefaultOverheads,
	}
}

// StageCost describes one pipeline stage as the plan layer's placement
// pass sees it: nominal record and byte counts on both candidate
// devices, never measured times. The planner compares
// EstimateCPUStage against EstimateGPUStage and places the stage's
// Either node on the cheaper device.
type StageCost struct {
	// Records is the nominal record count one execution processes
	// through the iterator model on the CPU path.
	Records int64
	// CPUPerRec is the per-record demand of the CPU operator body.
	CPUPerRec Work
	// GPUWork is the kernel's total demand for one execution.
	GPUWork Work
	// Coalesce is the kernel's memory-coalescing factor in (0,1]
	// (0 means fully coalesced).
	Coalesce float64
	// HostToDevice is the PCIe byte volume staged to the device per
	// execution; with CacheResident set, only the first execution
	// pays it (the GPU cache keeps the blocks on-device).
	HostToDevice int64
	// H2DStreamed is the byte volume re-shipped on every execution even
	// when the stage is cache-resident (e.g. SpMV's iteration vector).
	H2DStreamed int64
	// DeviceToHost is the result byte volume copied back per execution.
	DeviceToHost int64
	// Launches is the kernel-launch count per execution (one per block;
	// 0 means 1).
	Launches int64
	// Executions is how many times the stage runs (bulk-iteration
	// count; 0 means 1).
	Executions int64
	// CacheResident marks HostToDevice as cacheable on the device.
	CacheResident bool
	// ProjectedH2D, when > 0, is the per-execution input byte volume
	// after column projection (the kernel's declared read set over the
	// SoA schema); estimators charge it in place of HostToDevice, so a
	// projectable stage competes for Auto placement with the bytes it
	// would actually ship. 0 means no projection.
	ProjectedH2D int64
	// CPUParallelism and GPUParallelism are the lane counts each path
	// spreads over — task slots and devices respectively (0 means 1).
	CPUParallelism, GPUParallelism int
}

// norm fills the neutral defaults so estimators never divide by zero.
func (s StageCost) norm() StageCost {
	if s.Executions < 1 {
		s.Executions = 1
	}
	if s.Launches < 1 {
		s.Launches = 1
	}
	if s.CPUParallelism < 1 {
		s.CPUParallelism = 1
	}
	if s.GPUParallelism < 1 {
		s.GPUParallelism = 1
	}
	if s.Coalesce <= 0 || s.Coalesce > 1 {
		s.Coalesce = 1
	}
	return s
}

// EstimateCPUStage predicts the stage's makespan on CPU task slots:
// the iterator-model slot time of one lane's share of the records,
// repeated once per execution.
func (m Model) EstimateCPUStage(s StageCost) time.Duration {
	s = s.norm()
	per := s.Records / int64(s.CPUParallelism)
	one := m.CPU.SlotTime(per, s.CPUPerRec.Scale(float64(per)))
	return one * time.Duration(s.Executions)
}

// EstimateGPUStage predicts the stage's makespan on the GPUs: per
// execution one lane transfers its share over PCIe (through the
// CUDAWrapper control channel), runs its kernel launches under the
// roofline, and copies the result back. Cache-resident input bytes are
// paid only on the first execution; streamed bytes on every one.
func (m Model) EstimateGPUStage(p GPUProfile, s StageCost) time.Duration {
	s = s.norm()
	lanes := int64(s.GPUParallelism)
	xfer := func(n int64) time.Duration {
		if n <= 0 {
			return 0
		}
		return m.PCIe.GFlinkTransferTime(n / lanes)
	}
	kern := p.KernelTime(s.GPUWork.Scale(1/float64(lanes)), s.Coalesce)
	if perLane := (s.Launches + lanes - 1) / lanes; perLane > 1 {
		kern += time.Duration(perLane-1) * p.LaunchOverhead
	}
	h2d := s.HostToDevice
	if s.ProjectedH2D > 0 && s.ProjectedH2D < h2d {
		h2d = s.ProjectedH2D
	}
	perExec := xfer(s.H2DStreamed) + kern + xfer(s.DeviceToHost)
	total := xfer(h2d) + perExec
	steadyH2D := xfer(h2d)
	if s.CacheResident {
		steadyH2D = 0
	}
	total += time.Duration(s.Executions-1) * steadyH2D
	total += time.Duration(s.Executions-1) * perExec
	return total
}

// chunkCandidates are the chunk counts the double-buffering policy
// considers. Powers of two keep nominal shares exact and bound the
// per-work launch overhead.
var chunkCandidates = []int{1, 2, 4, 8, 16, 32}

// ChunkCount picks the chunk count for a double-buffered GWork: split
// the H2D / kernel / D2H stages into C equal chunks and overlap chunk
// i+1's H2D with chunk i's kernel. Each chunk pays its own DMA setup
// and launch overhead, so the policy trades pipelining gain against
// fixed costs: estimated makespan is one pipeline fill (h2d + kern +
// d2h of a single chunk) plus C-1 steady-state beats, where a beat is
// the slowest stage — with one copy engine H2D and D2H serialize on the
// same DMA unit and the beat is max(h2d+d2h, kern). Ties go to the
// smaller count. work is the kernel's total roofline demand; h2dBytes
// the (already projected) input volume; d2hBytes the result volume.
func (m Model) ChunkCount(p GPUProfile, work Work, coalesce float64, h2dBytes, d2hBytes int64) int {
	best, bestT := 1, time.Duration(0)
	for _, c := range chunkCandidates {
		h2d := m.PCIe.GFlinkTransferTime(h2dBytes / int64(c))
		d2h := m.PCIe.GFlinkTransferTime(d2hBytes / int64(c))
		kern := p.KernelTime(work.Scale(1/float64(c)), coalesce)
		var beat time.Duration
		if p.CopyEngines >= 2 {
			beat = maxDur(h2d, kern, d2h)
		} else {
			beat = maxDur(h2d+d2h, kern)
		}
		t := h2d + kern + d2h + time.Duration(c-1)*beat
		if c == 1 || t < bestT {
			best, bestT = c, t
		}
	}
	return best
}

func maxDur(ds ...time.Duration) time.Duration {
	var m time.Duration
	for _, d := range ds {
		if d > m {
			m = d
		}
	}
	return m
}

// CoalesceFactor maps a data layout to the fraction of peak device
// memory bandwidth its access pattern achieves (Section 2.1's AoS / SoA
// / AoP discussion).
func CoalesceFactor(layout string) float64 {
	switch layout {
	case "SoA", "AoP":
		return 1.0
	case "AoS":
		return 0.45
	default:
		return 0.45
	}
}
