package membuf

import (
	"testing"
	"testing/quick"

	"gflink/internal/costmodel"
	"gflink/internal/vclock"
)

func newPool(cfg Config) (*vclock.Clock, *Pool) {
	c := vclock.New()
	return c, NewPool(c, costmodel.Default(), cfg)
}

func TestAllocateRoundsToPages(t *testing.T) {
	c, p := newPool(Config{PageSize: 1024})
	c.Run(func() {
		b := p.MustAllocate(1)
		if b.Pages() != 1 || len(b.Raw()) != 1024 || len(b.Bytes()) != 1 {
			t.Errorf("1-byte alloc: pages=%d raw=%d bytes=%d", b.Pages(), len(b.Raw()), len(b.Bytes()))
		}
		b2 := p.MustAllocate(1025)
		if b2.Pages() != 2 {
			t.Errorf("1025-byte alloc used %d pages, want 2", b2.Pages())
		}
		b.Free()
		b2.Free()
	})
	s := p.Stats()
	if s.InUsePages != 0 || s.Allocs != 2 || s.Frees != 2 || s.PeakPages != 3 {
		t.Errorf("stats = %+v", s)
	}
}

func TestCapacityExhaustion(t *testing.T) {
	c, p := newPool(Config{PageSize: 1024, CapacityPages: 2})
	c.Run(func() {
		b := p.MustAllocate(2048)
		if _, err := p.Allocate(1); err == nil {
			t.Error("allocation beyond capacity succeeded")
		}
		b.Free()
		if _, err := p.Allocate(1); err != nil {
			t.Errorf("allocation after free failed: %v", err)
		}
	})
}

func TestInvalidAllocate(t *testing.T) {
	c, p := newPool(Config{})
	c.Run(func() {
		if _, err := p.Allocate(0); err == nil {
			t.Error("zero-byte allocation succeeded")
		}
		if _, err := p.Allocate(-5); err == nil {
			t.Error("negative allocation succeeded")
		}
	})
}

func TestPinChargesTimeAndTracksPages(t *testing.T) {
	c, p := newPool(Config{PageSize: 1024})
	m := costmodel.Default()
	end := c.Run(func() {
		b := p.MustAllocate(3 * 1024)
		b.Pin()
		if !b.Pinned() {
			t.Error("not pinned after Pin")
		}
		if got := p.Stats().PinnedPages; got != 3 {
			t.Errorf("pinned pages = %d, want 3", got)
		}
		b.Pin() // idempotent, no extra charge
		b.Unpin()
		if b.Pinned() || p.Stats().PinnedPages != 0 {
			t.Error("unpin did not release")
		}
		b.Free()
	})
	if want := 3 * m.Overheads.PinPage; end != want {
		t.Errorf("pin cost %v, want %v", end, want)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("double free did not panic")
		}
	}()
	c, p := newPool(Config{})
	c.Run(func() {
		b := p.MustAllocate(10)
		b.Free()
		b.Free()
	})
}

func TestFreeUnpins(t *testing.T) {
	c, p := newPool(Config{PageSize: 512})
	c.Run(func() {
		b := p.MustAllocate(512)
		b.Pin()
		b.Free()
	})
	if p.Stats().PinnedPages != 0 {
		t.Error("Free left pages pinned")
	}
}

func TestElemsPerPage(t *testing.T) {
	if got := ElemsPerPage(32768, 24); got != 1365 {
		t.Errorf("ElemsPerPage(32768,24) = %d, want 1365", got)
	}
	if ElemsPerPage(100, 0) != 0 || ElemsPerPage(100, -1) != 0 {
		t.Error("non-positive stride must give 0")
	}
	if ElemsPerPage(10, 24) != 0 {
		t.Error("oversized stride must give 0")
	}
}

// Property: pool accounting balances — after freeing everything, in-use
// is zero and peak equals the maximum simultaneous pages.
func TestPoolAccountingProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) > 30 {
			sizes = sizes[:30]
		}
		c, p := newPool(Config{PageSize: 256})
		ok := true
		c.Run(func() {
			var bufs []*HBuffer
			total := 0
			peak := 0
			for _, s := range sizes {
				n := int(s%4096) + 1
				b := p.MustAllocate(n)
				bufs = append(bufs, b)
				total += b.Pages()
				if total > peak {
					peak = total
				}
			}
			st := p.Stats()
			if st.InUsePages != total || st.PeakPages != peak {
				ok = false
			}
			for _, b := range bufs {
				b.Free()
			}
			if p.Stats().InUsePages != 0 {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Buffers are shared across stream workers, so the lifecycle flags must
// be synchronized: this test hammers Pin/Unpin/Pinned/Freed from
// concurrent vclock processes and relies on `go test -race` to catch
// unguarded access to HBuffer.pinned/HBuffer.freed.
func TestConcurrentLifecycleFlagAccess(t *testing.T) {
	c, p := newPool(Config{PageSize: 1024})
	c.Run(func() {
		b := p.MustAllocate(4 * 1024)
		g := vclock.NewGroup(c)
		for i := 0; i < 4; i++ {
			g.Go("worker", func() {
				for j := 0; j < 50; j++ {
					b.Pin()
					_ = b.Pinned()
					_ = b.Freed()
					b.Unpin()
					c.Sleep(1)
				}
			})
		}
		g.Wait()
		b.Free()
		if !b.Freed() || b.Pinned() {
			t.Error("flags inconsistent after free")
		}
	})
	if s := p.Stats(); s.InUsePages != 0 || s.PinnedPages != 0 {
		t.Errorf("pool not drained: %+v", s)
	}
}

// Property: distinct live buffers never share an ID.
func TestBufferIDUniqueness(t *testing.T) {
	c, p := newPool(Config{})
	c.Run(func() {
		seen := map[int64]bool{}
		for i := 0; i < 100; i++ {
			b := p.MustAllocate(8)
			if seen[b.ID()] {
				t.Fatalf("duplicate buffer id %d", b.ID())
			}
			seen[b.ID()] = true
		}
	})
}
