// Package membuf models GFlink's off-heap memory management
// (Section 4.1.2): page-granular direct buffers that live outside the
// garbage-collected JVM heap, can be pinned (cudaHostRegister) for
// asynchronous DMA, and whose raw bytes are handed to the transfer
// channel without any heap-to-native copy.
//
// Because the real simulator runs in Go, "off-heap" is a bookkeeping
// concept: what the package enforces is the allocation discipline the
// paper relies on — fixed page size (matching Flink's memory segments),
// a bounded pool per worker, page-aligned HBuffers, and the rule that a
// GStruct never straddles a page boundary (Section 5.1).
package membuf

import (
	"fmt"
	"sync"
	"time"

	"gflink/internal/costmodel"
	"gflink/internal/vclock"
)

// DefaultPageSize matches Flink's default memory-segment size.
const DefaultPageSize = 32 * 1024

// Config sizes a Pool.
type Config struct {
	// PageSize is the allocation granule; HBuffer capacities round up to
	// it. Defaults to DefaultPageSize.
	PageSize int
	// CapacityPages bounds the pool; 0 means unbounded.
	CapacityPages int
}

// Pool is one worker's off-heap memory region.
type Pool struct {
	clock    *vclock.Clock
	model    costmodel.Model
	pageSize int
	capacity int // pages; 0 = unbounded

	mu      sync.Mutex
	inUse   int // pages
	peak    int
	allocs  int64
	frees   int64
	pinned  int // pages currently page-locked
	pinOps  int64
	nextIDs int64
}

// NewPool creates a pool on the given clock and hardware model.
func NewPool(clock *vclock.Clock, model costmodel.Model, cfg Config) *Pool {
	if cfg.PageSize <= 0 {
		cfg.PageSize = DefaultPageSize
	}
	return &Pool{clock: clock, model: model, pageSize: cfg.PageSize, capacity: cfg.CapacityPages}
}

// PageSize returns the pool's allocation granule.
func (p *Pool) PageSize() int { return p.pageSize }

// Allocate returns an HBuffer of at least n bytes (rounded up to whole
// pages). It fails when the pool's page budget is exhausted, modelling
// an off-heap OutOfMemory condition.
func (p *Pool) Allocate(n int) (*HBuffer, error) {
	if n <= 0 {
		return nil, fmt.Errorf("membuf: allocate %d bytes", n)
	}
	pages := (n + p.pageSize - 1) / p.pageSize
	p.mu.Lock()
	if p.capacity > 0 && p.inUse+pages > p.capacity {
		avail := p.capacity - p.inUse
		p.mu.Unlock()
		return nil, fmt.Errorf("membuf: off-heap exhausted: need %d pages, %d available", pages, avail)
	}
	p.inUse += pages
	if p.inUse > p.peak {
		p.peak = p.inUse
	}
	p.allocs++
	p.nextIDs++
	id := p.nextIDs
	p.mu.Unlock()
	return &HBuffer{
		id:    id,
		pool:  p,
		data:  make([]byte, pages*p.pageSize),
		size:  n,
		pages: pages,
	}, nil
}

// MustAllocate is Allocate panicking on failure.
func (p *Pool) MustAllocate(n int) *HBuffer {
	b, err := p.Allocate(n)
	if err != nil {
		panic(err)
	}
	return b
}

// Stats reports pool accounting.
type Stats struct {
	PageSize    int
	InUsePages  int
	PeakPages   int
	Allocs      int64
	Frees       int64
	PinnedPages int
	PinOps      int64
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{
		PageSize:    p.pageSize,
		InUsePages:  p.inUse,
		PeakPages:   p.peak,
		Allocs:      p.allocs,
		Frees:       p.frees,
		PinnedPages: p.pinned,
		PinOps:      p.pinOps,
	}
}

// HBuffer is GFlink's direct buffer: raw off-heap bytes with page
// bookkeeping. The zero value is invalid; obtain HBuffers from a Pool.
type HBuffer struct {
	id    int64
	pool  *Pool
	data  []byte
	size  int // requested size
	pages int

	// pinned and freed are guarded by pool.mu: buffers are handed
	// between stream workers, so their lifecycle flags must be as
	// race-free as the pool counters they mirror.
	pinned bool
	freed  bool
}

// ID returns a pool-unique buffer identity (used as default cache key
// material).
func (b *HBuffer) ID() int64 { return b.id }

// Bytes returns the logical contents (requested size, not the padded
// page span).
func (b *HBuffer) Bytes() []byte { return b.data[:b.size] }

// Raw returns the whole page span, as a DMA engine would see it.
func (b *HBuffer) Raw() []byte { return b.data }

// Size returns the requested byte size.
func (b *HBuffer) Size() int { return b.size }

// Pages returns the number of pages backing the buffer.
func (b *HBuffer) Pages() int { return b.pages }

// Pin page-locks the buffer (cudaHostRegister), a prerequisite for
// asynchronous DMA. Pinning charges the per-page registration cost on
// the virtual clock. Pinning a pinned buffer is a no-op.
func (b *HBuffer) Pin() {
	p := b.pool
	p.mu.Lock()
	if b.freed {
		p.mu.Unlock()
		panic("membuf: Pin on freed HBuffer")
	}
	if b.pinned {
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	// Charge registration time before publishing the pin; the clock
	// must not be blocked on while holding p.mu (lockhold invariant).
	p.clock.Sleep(p.model.Overheads.PinPage * time.Duration(b.pages))
	p.mu.Lock()
	if b.freed {
		p.mu.Unlock()
		panic("membuf: Pin on freed HBuffer")
	}
	if !b.pinned {
		b.pinned = true
		p.pinned += b.pages
		p.pinOps++
	}
	p.mu.Unlock()
}

// Unpin releases the page lock.
func (b *HBuffer) Unpin() {
	p := b.pool
	p.mu.Lock()
	if b.pinned {
		b.pinned = false
		p.pinned -= b.pages
	}
	p.mu.Unlock()
}

// Pinned reports whether the buffer is page-locked.
func (b *HBuffer) Pinned() bool {
	b.pool.mu.Lock()
	defer b.pool.mu.Unlock()
	return b.pinned
}

// Free returns the pages to the pool, releasing any page lock first.
// Double frees panic: the paper's GMemoryManager owns buffer lifetime
// exactly once.
func (b *HBuffer) Free() {
	p := b.pool
	p.mu.Lock()
	if b.freed {
		p.mu.Unlock()
		panic("membuf: double free of HBuffer")
	}
	b.freed = true
	if b.pinned {
		b.pinned = false
		p.pinned -= b.pages
	}
	p.inUse -= b.pages
	p.frees++
	p.mu.Unlock()
	b.data = nil
}

// Freed reports whether the buffer was released.
func (b *HBuffer) Freed() bool {
	b.pool.mu.Lock()
	defer b.pool.mu.Unlock()
	return b.freed
}

// ElemsPerPage returns how many elements of the given stride fit in one
// page under the no-straddling rule (Section 5.1: "the content of a
// GStruct can not be stored across pages").
func ElemsPerPage(pageSize, stride int) int {
	if stride <= 0 {
		return 0
	}
	return pageSize / stride
}
