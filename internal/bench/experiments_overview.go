package bench

import (
	"fmt"

	"gflink/internal/core"
	"gflink/internal/costmodel"
	"gflink/internal/workloads"
)

// paperSpec is the testbed of Section 6.1: slave nodes with one
// 4-core i5-4590 and two Tesla C2050s each.
func paperSpec(numWorkers, gpusPerWorker int, div int64) workloads.Spec {
	return workloads.Spec{
		Workers:       numWorkers,
		GPUsPerWorker: gpusPerWorker,
		Profile:       costmodel.C2050,
		ScaleDivisor:  div,
		OnBuild:       observeBuild,
	}
}

// overviewRow runs one benchmark at one size on a fresh 10-slave
// deployment and returns (cpu, gpu) results.
func overviewRun(div int64, run func(g *core.GFlink) (workloads.Result, workloads.Result)) (workloads.Result, workloads.Result) {
	g := paperSpec(10, 2, div).Build()
	var cpu, gpu workloads.Result
	g.Run(func() {
		cpu, gpu = run(g)
	})
	return cpu, gpu
}

func init() {
	register(&Experiment{
		ID:    "fig5a",
		Title: "KMeans running time and speedup on the 10-slave cluster",
		Paper: "speedup ~5x, growing with input size",
		Run: func(scale int64) *Table {
			t := &Table{ID: "fig5a", Header: []string{"points(M)", "Flink(CPU)", "GFlink", "speedup"}}
			t.Title = "KMeans on cluster"
			t.Paper = "speedup ~5x, growing with input size"
			var first, last float64
			for _, m := range []int64{150, 180, 210, 240, 270} {
				p := workloads.KMeansParams{Points: m * 1e6, Iterations: 10, UseCache: true, Seed: 7}
				cpu, gpu := overviewRun(scaled(200_000, scale), func(g *core.GFlink) (workloads.Result, workloads.Result) {
					return workloads.KMeansCPU(g, p), workloads.KMeansGPU(g, p)
				})
				sp := workloads.Speedup(cpu, gpu)
				if m == 150 {
					first = sp
				}
				last = sp
				t.AddRow(fmt.Sprint(m), secs(cpu.Total), secs(gpu.Total), ratio(sp))
			}
			t.Note("speedup at 270M (%.2fx) vs 150M (%.2fx): %s", last, first, growthWord(first, last))
			return t
		},
	})

	register(&Experiment{
		ID:    "fig5b",
		Title: "PageRank running time and speedup on the 10-slave cluster",
		Paper: "speedup ~3.5x (bounded by the per-superstep shuffle)",
		Run: func(scale int64) *Table {
			t := &Table{ID: "fig5b", Title: "PageRank on cluster", Paper: "speedup ~3.5x", Header: []string{"pages(M)", "Flink(CPU)", "GFlink", "speedup"}}
			for _, m := range []int64{5, 10, 15, 20, 25} {
				p := workloads.PageRankParams{Pages: m * 1e6, Iterations: 10, UseCache: true, Seed: 7}
				cpu, gpu := overviewRun(scaled(50_000, scale), func(g *core.GFlink) (workloads.Result, workloads.Result) {
					return workloads.PageRankCPU(g, p), workloads.PageRankGPU(g, p)
				})
				t.AddRow(fmt.Sprint(m), secs(cpu.Total), secs(gpu.Total), ratio(workloads.Speedup(cpu, gpu)))
			}
			return t
		},
	})

	register(&Experiment{
		ID:    "fig5c",
		Title: "WordCount running time and speedup on the 10-slave cluster",
		Paper: "speedup only ~1.1x: one-pass batch job bottlenecked on I/O",
		Run: func(scale int64) *Table {
			t := &Table{ID: "fig5c", Title: "WordCount on cluster", Paper: "speedup ~1.1x (I/O bound)", Header: []string{"input(GB)", "Flink(CPU)", "GFlink", "speedup"}}
			for _, gb := range []int64{24, 32, 40, 48, 56} {
				p := workloads.WordCountParams{Bytes: gb << 30, Seed: 7}
				cpu, gpu := overviewRun(scaled(1_000_000, scale), func(g *core.GFlink) (workloads.Result, workloads.Result) {
					return workloads.WordCountCPU(g, p), workloads.WordCountGPU(g, p)
				})
				t.AddRow(fmt.Sprint(gb), secs(cpu.Total), secs(gpu.Total), ratio(workloads.Speedup(cpu, gpu)))
			}
			return t
		},
	})

	register(&Experiment{
		ID:    "fig6a",
		Title: "SpMV running time and speedup on the 10-slave cluster",
		Paper: "speedup ~6.3x: the cached matrix removes per-iteration PCIe traffic",
		Run: func(scale int64) *Table {
			t := &Table{ID: "fig6a", Title: "SpMV on cluster", Paper: "speedup ~6.3x", Header: []string{"matrix(GB)", "Flink(CPU)", "GFlink", "speedup"}}
			for _, gb := range []int64{2, 4, 8, 16, 32} {
				// Fixed 30.75M-row dimension keeps the vector at the
				// paper's ~123 MB while density grows with matrix size.
				p := workloads.SpMVParams{MatrixBytes: gb << 30, FixedRows: 30_750_000, Iterations: 10, UseCache: true, Seed: 7}
				cpu, gpu := overviewRun(scaled(200_000, scale), func(g *core.GFlink) (workloads.Result, workloads.Result) {
					return workloads.SpMVCPU(g, p), workloads.SpMVGPU(g, p)
				})
				t.AddRow(fmt.Sprint(gb), secs(cpu.Total), secs(gpu.Total), ratio(workloads.Speedup(cpu, gpu)))
			}
			return t
		},
	})

	register(&Experiment{
		ID:    "fig6b",
		Title: "LinearRegression running time and speedup on the 10-slave cluster",
		Paper: "speedup ~9.2x: per-point gradient math dominates, no large shuffle",
		Run: func(scale int64) *Table {
			t := &Table{ID: "fig6b", Title: "LinearRegression on cluster", Paper: "speedup ~9.2x", Header: []string{"samples(M)", "Flink(CPU)", "GFlink", "speedup"}}
			for _, m := range []int64{150, 180, 210, 240, 270} {
				p := workloads.LinRegParams{Samples: m * 1e6, Iterations: 10, UseCache: true, Seed: 7}
				cpu, gpu := overviewRun(scaled(200_000, scale), func(g *core.GFlink) (workloads.Result, workloads.Result) {
					return workloads.LinRegCPU(g, p), workloads.LinRegGPU(g, p)
				})
				t.AddRow(fmt.Sprint(m), secs(cpu.Total), secs(gpu.Total), ratio(workloads.Speedup(cpu, gpu)))
			}
			return t
		},
	})

	register(&Experiment{
		ID:    "fig6c",
		Title: "ComponentConnect running time and speedup on the 10-slave cluster",
		Paper: "speedup ~4.8x",
		Run: func(scale int64) *Table {
			t := &Table{ID: "fig6c", Title: "ComponentConnect on cluster", Paper: "speedup ~4.8x", Header: []string{"pages(M)", "Flink(CPU)", "GFlink", "speedup"}}
			for _, m := range []int64{5, 10, 15, 20, 25} {
				p := workloads.ConnCompParams{Pages: m * 1e6, Iterations: 10, UseCache: true, Seed: 7}
				cpu, gpu := overviewRun(scaled(50_000, scale), func(g *core.GFlink) (workloads.Result, workloads.Result) {
					return workloads.ConnCompCPU(g, p), workloads.ConnCompGPU(g, p)
				})
				t.AddRow(fmt.Sprint(m), secs(cpu.Total), secs(gpu.Total), ratio(workloads.Speedup(cpu, gpu)))
			}
			return t
		},
	})
}

func growthWord(first, last float64) string {
	if last > first {
		return "speedup grows with input size (Observation 3)"
	}
	return "WARNING: speedup did not grow with input size"
}
