package bench

import (
	"fmt"
	"time"

	"gflink/internal/core"
	"gflink/internal/workloads"
)

// Transfer-channel ablations: SoA column projection (abl-projection)
// and chunked double-buffered GWork pipelining (abl-chunking). Both
// features are off in paper mode, so every pinned figure is untouched;
// these experiments flip them on against the identical deployment and
// check two invariants — the simulated timings move the way the
// transfer model says they must, and the workload outputs (checksums)
// do not move at all.

func init() {
	register(&Experiment{
		ID:    "abl-projection",
		Title: "Ablation: SoA column projection on the transfer channel",
		Paper: "kernels declare the columns they read; unread metadata columns never cross PCIe, shrinking H2D volume and steady-state iteration time for transfer-bound workloads",
		Run: func(scale int64) *Table {
			t := &Table{ID: "abl-projection", Title: "Column projection ablation",
				Paper:  "ship referenced columns only: H2D bytes and steady iterations drop, outputs identical",
				Header: []string{"workload", "H2D off", "H2D on", "steady off", "steady on", "speedup"}}
			type outcome struct {
				r   workloads.Result
				h2d int64
			}
			run := func(project bool, drive func(g *core.GFlink) workloads.Result) outcome {
				spec := paperSpec(1, 2, scaled(50_000, scale))
				spec.Projection = project
				g := spec.Build()
				var r workloads.Result
				g.Run(func() { r = drive(g) })
				return outcome{r: r, h2d: g.Obs.Metrics().Total("xfer.h2d.bytes")}
			}
			cases := []struct {
				name  string
				drive func(g *core.GFlink) workloads.Result
			}{
				// Uncached runs with wide records: the D (resp. D+1) columns
				// the kernel reads are a quarter of each record, the rest is
				// unread metadata, and every iteration re-ships the blocks.
				{"kmeans", func(g *core.GFlink) workloads.Result {
					return workloads.KMeansGPU(g, workloads.KMeansParams{
						Points: 50e6, K: 10, D: 8, MetaCols: 24, Iterations: 4, Seed: 7})
				}},
				{"linreg", func(g *core.GFlink) workloads.Result {
					return workloads.LinRegGPU(g, workloads.LinRegParams{
						Samples: 50e6, D: 8, MetaCols: 23, Iterations: 4, Seed: 7})
				}},
			}
			for _, c := range cases {
				off := run(false, c.drive)
				on := run(true, c.drive)
				steadyOff := off.r.Iterations[len(off.r.Iterations)-1]
				steadyOn := on.r.Iterations[len(on.r.Iterations)-1]
				t.AddRow(c.name,
					fmt.Sprintf("%.2fGiB", float64(off.h2d)/(1<<30)),
					fmt.Sprintf("%.2fGiB", float64(on.h2d)/(1<<30)),
					secs(steadyOff), secs(steadyOn),
					ratio(float64(steadyOff)/float64(steadyOn)))
				t.Note("%s: h2d off=%d on=%d bytes, steady off=%d on=%d ns, equal=%t",
					c.name, off.h2d, on.h2d, steadyOff.Nanoseconds(), steadyOn.Nanoseconds(),
					off.r.Checksum == on.r.Checksum)
			}
			return t
		},
		Check: func(t *Table) error {
			if len(t.Notes) != 2 {
				return fmt.Errorf("abl-projection: want 2 notes, got %d", len(t.Notes))
			}
			var best float64
			for i, name := range []string{"kmeans", "linreg"} {
				var h2dOff, h2dOn, nsOff, nsOn int64
				var equal bool
				if _, err := fmt.Sscanf(t.Notes[i],
					name+": h2d off=%d on=%d bytes, steady off=%d on=%d ns, equal=%t",
					&h2dOff, &h2dOn, &nsOff, &nsOn, &equal); err != nil {
					return fmt.Errorf("abl-projection: unparsable note %q: %w", t.Notes[i], err)
				}
				if h2dOn >= h2dOff {
					return fmt.Errorf("abl-projection: %s H2D bytes did not strictly drop (%d -> %d)", name, h2dOff, h2dOn)
				}
				if !equal {
					return fmt.Errorf("abl-projection: %s output checksum changed with projection on", name)
				}
				if s := float64(nsOff) / float64(nsOn); s > best {
					best = s
				}
			}
			if best < 1.2 {
				return fmt.Errorf("abl-projection: best steady-iteration speedup %.2fx, want >= 1.2x", best)
			}
			return nil
		},
	})

	register(&Experiment{
		ID:    "abl-chunking",
		Title: "Ablation: chunked double-buffered GWork pipelining",
		Paper: "splitting a GWork into cost-model-chosen chunks across two streams overlaps the H2D of chunk i+1 with the kernel of chunk i, hiding kernel time behind the transfer on transfer-bound works",
		Run: func(scale int64) *Table {
			t := &Table{ID: "abl-chunking", Title: "Chunked pipelining ablation",
				Paper:  "double-buffered chunks shorten the makespan of single large GWorks, outputs identical",
				Header: []string{"workload", "metric", "chunking off", "chunking on", "saving"}}
			chunkSpans := func(g *core.GFlink) int {
				n := 0
				for _, s := range g.Obs.Tracer().Spans() {
					if s.Cat == "chunk" {
						n++
					}
				}
				return n
			}
			run := func(chunk bool, drive func(g *core.GFlink) workloads.Result) (workloads.Result, int) {
				spec := paperSpec(1, 2, scaled(50_000, scale))
				spec.Chunking = chunk
				g := spec.Build()
				var r workloads.Result
				g.Run(func() { r = drive(g) })
				return r, chunkSpans(g)
			}
			// SpMV sized to one uncached ~128MiB-nominal block per GPU, so
			// the monolithic path has no second GWork to overlap with and
			// the first iteration pays the full serial matrix transfer.
			spmvOff, spansOff := run(false, func(g *core.GFlink) workloads.Result {
				return workloads.SpMVGPU(g, workloads.SpMVParams{
					MatrixBytes: 256 << 20, NNZPerRow: 64, Iterations: 2, Parallelism: 2, Seed: 7})
			})
			spmvOn, spansOn := run(true, func(g *core.GFlink) workloads.Result {
				return workloads.SpMVGPU(g, workloads.SpMVParams{
					MatrixBytes: 256 << 20, NNZPerRow: 64, Iterations: 2, Parallelism: 2, Seed: 7})
			})
			firstOff, firstOn := spmvOff.Iterations[0], spmvOn.Iterations[0]
			t.AddRow("spmv", "first iteration", secs(firstOff), secs(firstOn),
				fmt.Sprintf("%.1fms", (firstOff-firstOn).Seconds()*1e3))
			t.Note("spmv: first-iter off=%d on=%d ns, chunk spans off=%d on=%d, equal=%t",
				firstOff.Nanoseconds(), firstOn.Nanoseconds(), spansOff, spansOn,
				spmvOff.Checksum == spmvOn.Checksum)

			// WordCount: one tokenize GWork per GPU, the whole text crossing
			// PCIe once with only the dense count table coming back.
			wcOff, wspansOff := run(false, func(g *core.GFlink) workloads.Result {
				return workloads.WordCountGPU(g, workloads.WordCountParams{
					Bytes: 4 << 30, Parallelism: 2, Seed: 7})
			})
			wcOn, wspansOn := run(true, func(g *core.GFlink) workloads.Result {
				return workloads.WordCountGPU(g, workloads.WordCountParams{
					Bytes: 4 << 30, Parallelism: 2, Seed: 7})
			})
			t.AddRow("wordcount", "total", secs(wcOff.Total), secs(wcOn.Total),
				fmt.Sprintf("%.1fms", (wcOff.Total-wcOn.Total).Seconds()*1e3))
			t.Note("wordcount: total off=%d on=%d ns, chunk spans off=%d on=%d, equal=%t",
				wcOff.Total.Nanoseconds(), wcOn.Total.Nanoseconds(), wspansOff, wspansOn,
				wcOff.Checksum == wcOn.Checksum)
			return t
		},
		Check: func(t *Table) error {
			if len(t.Notes) != 2 {
				return fmt.Errorf("abl-chunking: want 2 notes, got %d", len(t.Notes))
			}
			check := func(note, name, metric string) error {
				var offNs, onNs int64
				var spansOff, spansOn int
				var equal bool
				if _, err := fmt.Sscanf(note,
					name+": "+metric+" off=%d on=%d ns, chunk spans off=%d on=%d, equal=%t",
					&offNs, &onNs, &spansOff, &spansOn, &equal); err != nil {
					return fmt.Errorf("abl-chunking: unparsable note %q: %w", note, err)
				}
				if spansOff != 0 {
					return fmt.Errorf("abl-chunking: %s run with chunking off recorded %d chunk spans, want 0", name, spansOff)
				}
				if spansOn == 0 {
					return fmt.Errorf("abl-chunking: %s run with chunking on recorded no chunk spans — the policy never split", name)
				}
				if time.Duration(onNs) >= time.Duration(offNs) {
					return fmt.Errorf("abl-chunking: %s did not strictly win (%dns -> %dns)", name, offNs, onNs)
				}
				if !equal {
					return fmt.Errorf("abl-chunking: %s output checksum changed with chunking on", name)
				}
				return nil
			}
			if err := check(t.Notes[0], "spmv", "first-iter"); err != nil {
				return err
			}
			return check(t.Notes[1], "wordcount", "total")
		},
	})
}
