package bench

import (
	"fmt"
	"time"

	"gflink/internal/costmodel"
	"gflink/internal/flink"
	"gflink/internal/plan"
)

func init() {
	register(&Experiment{
		ID:    "abl-chaining",
		Title: "Ablation: operator chaining in the plan layer",
		Paper: "Flink's operator chaining: fusing narrow operators removes per-operator task deployment and downstream per-record iterator overhead",
		Run: func(scale int64) *Table {
			t := &Table{ID: "abl-chaining", Title: "Operator chaining ablation",
				Paper:  "fused chain = one deploy + one record-overhead pass; unfused pays both per operator",
				Header: []string{"plan", "pipeline time", "vs chained"}}
			chained := runChainPipeline(false, scale)
			unchained := runChainPipeline(true, scale)
			t.AddRow("chained", secs(chained), "1.00x")
			t.AddRow("unchained", secs(unchained), ratio(float64(unchained)/float64(chained)))
			t.Note("unfused/fused = %.2fx", float64(unchained)/float64(chained))
			return t
		},
		Check: func(t *Table) error {
			if len(t.Rows) != 2 {
				return fmt.Errorf("abl-chaining: want 2 rows, got %d", len(t.Rows))
			}
			chained, err := parseSeconds(t.Rows[0][1])
			if err != nil {
				return err
			}
			unchained, err := parseSeconds(t.Rows[1][1])
			if err != nil {
				return err
			}
			if chained >= unchained {
				return fmt.Errorf("abl-chaining: chaining did not strictly reduce simulated time (%.2fs >= %.2fs)", chained, unchained)
			}
			return nil
		},
	})
}

// runChainPipeline measures one execution of a four-operator narrow
// pipeline on the plan layer: with chaining the four operators fuse
// into a single task deployment; without it each runs as its own eager
// operator, paying TaskDeploy and the iterator's per-record overhead
// at every step.
func runChainPipeline(disableChaining bool, scale int64) time.Duration {
	g := paperSpec(2, 1, scaled(50_000, scale)).Build()
	var total time.Duration
	g.Run(func() {
		gr := plan.NewGraph(g, "chain-bench", plan.Options{Mode: plan.ForceCPU, DisableChaining: disableChaining})
		src := plan.Source(gr, "nums", func(ctx *plan.Ctx) *flink.Dataset[int64] {
			return flink.Generate(ctx.Job, "nums", 50_000_000, 8, 8, func(part int, ord int64) int64 {
				return int64(part)*1_000_003 + ord
			})
		})
		w := costmodel.Work{Flops: 4, BytesRead: 8}
		a := plan.Map(src, "scale", w, 8, func(v int64) int64 { return v * 3 })
		b := plan.Map(a, "shift", w, 8, func(v int64) int64 { return v + 17 })
		c := plan.Filter(b, "drop5ths", w, func(v int64) bool { return v%5 != 0 })
		d := plan.Map(c, "neg", w, 8, func(v int64) int64 { return -v })
		plan.Collect(d, "drain", func(ctx *plan.Ctx, recs []int64) {})
		t0 := g.Clock.Now()
		gr.Execute()
		total = g.Clock.Now() - t0
	})
	return total
}
