package bench

import (
	"fmt"

	"gflink/internal/core"
	"gflink/internal/plan"
	"gflink/internal/stream"
	"gflink/internal/workloads"
)

// backpressureLimits is the buffer-depth axis of the sweep, in credits
// (batches) per edge.
var backpressureLimits = []int{1, 4, 16}

// backpressureRecords returns the stream length at a given scale: the
// full-fidelity run ingests 128Ki records; scale divides it, floored so
// even -scale 16 fires a healthy window count.
func backpressureRecords(scale int64) int64 {
	if scale < 1 {
		scale = 1
	}
	n := int64(131072) / scale
	if n < 8192 {
		n = 8192
	}
	return n
}

// backpressureRun drives one (consumer placement, buffer limit) cell on
// a fresh two-worker deployment: the source on worker 0 outruns the
// window consumer on worker 1, so throughput is governed by how much
// pipeline overlap the credit limit allows.
func backpressureRun(mode plan.Mode, limit int, scale int64, onBuild func(*core.GFlink)) stream.Result {
	spec := paperSpec(2, 1, 1)
	spec.OnBuild = onBuild
	g := spec.Build()
	var res stream.Result
	g.Run(func() {
		res = workloads.Backpressure(g, workloads.BackpressureParams{
			Records:       backpressureRecords(scale),
			Mode:          mode,
			BufferBatches: limit,
		})
	})
	return res
}

func init() {
	register(&Experiment{
		ID:    "abl-backpressure",
		Title: "Ablation: streaming credit-based backpressure — throughput vs buffer limit x consumer placement",
		Paper: "bounded buffers under a rate mismatch: throughput rises monotonically with the credit limit as the credit round trip overlaps production, and the producer's credits-blocked time proves backpressure engaged at the smallest limit",
		Run: func(scale int64) *Table {
			t := &Table{
				ID:     "abl-backpressure",
				Title:  "Streaming backpressure ablation",
				Paper:  "monotone throughput-vs-buffer-limit curve; producer blocks at limit 1",
				Header: []string{"consumer", "buffer", "throughput", "blocked", "depth max"},
			}
			// The six (placement, limit) cells are independent two-worker
			// deployments; the sweep fans out across OS threads in
			// row-major declared order.
			type point struct {
				mode  plan.Mode
				limit int
			}
			var pts []point
			for _, mode := range []plan.Mode{plan.ForceCPU, plan.ForceGPU} {
				for _, limit := range backpressureLimits {
					pts = append(pts, point{mode, limit})
				}
			}
			run := RunPoints(len(pts), func(i int, onBuild func(*core.GFlink)) stream.Result {
				return backpressureRun(pts[i].mode, pts[i].limit, scale, onBuild)
			})
			thr := map[string]map[int]float64{}
			blocked1 := map[string]int64{}
			for i, pt := range pts {
				res := run[i]
				name := pt.mode.String()
				if thr[name] == nil {
					thr[name] = map[int]float64{}
				}
				thr[name][pt.limit] = res.Throughput
				if pt.limit == backpressureLimits[0] {
					blocked1[name] = int64(res.Blocked)
				}
				t.AddRow(name, fmt.Sprint(pt.limit),
					fmt.Sprintf("%.0f rec/s", res.Throughput),
					res.Blocked.String(),
					fmt.Sprint(res.MaxDepth))
			}
			for _, name := range []string{"cpu", "gpu"} {
				t.Note("%s consumer throughput rec/s: b1=%.0f b4=%.0f b16=%.0f",
					name, thr[name][1], thr[name][4], thr[name][16])
			}
			t.Note("producer blocked ns at buffer 1: cpu=%d gpu=%d",
				blocked1["cpu"], blocked1["gpu"])
			return t
		},
		Check: checkBackpressure,
	})
}

// checkBackpressure pins the curve's shape: throughput must rise
// meaningfully from a 1-batch to a 4-batch buffer for both consumer
// placements (the credit round trip stops serializing production), must
// not regress from 4 to 16 beyond noise, and the producer must have
// spent real virtual time blocked on credits at the smallest limit.
func checkBackpressure(t *Table) error {
	if len(t.Rows) == 0 {
		return fmt.Errorf("abl-backpressure: empty table")
	}
	curves := map[string][3]float64{}
	var blockedCPU, blockedGPU int64
	foundBlocked := false
	for _, n := range t.Notes {
		var name string
		var b1, b4, b16 float64
		if _, err := fmt.Sscanf(n, "%s consumer throughput rec/s: b1=%f b4=%f b16=%f", &name, &b1, &b4, &b16); err == nil {
			curves[name] = [3]float64{b1, b4, b16}
			continue
		}
		if _, err := fmt.Sscanf(n, "producer blocked ns at buffer 1: cpu=%d gpu=%d", &blockedCPU, &blockedGPU); err == nil {
			foundBlocked = true
		}
	}
	for _, name := range []string{"cpu", "gpu"} {
		c, ok := curves[name]
		if !ok {
			return fmt.Errorf("abl-backpressure: missing %s throughput note", name)
		}
		if c[0] <= 0 || c[1] <= 0 || c[2] <= 0 {
			return fmt.Errorf("abl-backpressure: %s curve has non-positive throughput: %v", name, c)
		}
		if c[1] < c[0]*1.02 {
			return fmt.Errorf("abl-backpressure: %s throughput b4 (%.0f) not >= 1.02x b1 (%.0f) — deeper buffers did not pay", name, c[1], c[0])
		}
		if c[2] < c[1]*0.995 {
			return fmt.Errorf("abl-backpressure: %s throughput regressed from b4 (%.0f) to b16 (%.0f)", name, c[1], c[2])
		}
	}
	if !foundBlocked {
		return fmt.Errorf("abl-backpressure: missing blocked-time note")
	}
	if blockedCPU <= 0 || blockedGPU <= 0 {
		return fmt.Errorf("abl-backpressure: producer never blocked at buffer limit 1 (cpu=%dns gpu=%dns) — backpressure did not engage", blockedCPU, blockedGPU)
	}
	return nil
}
