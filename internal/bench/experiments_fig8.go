package bench

import (
	"fmt"
	"time"

	"gflink/internal/core"
	"gflink/internal/costmodel"
	"gflink/internal/workloads"
)

func init() {
	register(&Experiment{
		ID:    "fig8a",
		Title: "Effect of the GPU cache scheme (SpMV per-iteration, single machine)",
		Paper: "without the cache the matrix re-crosses PCIe every iteration and per-iteration time rises",
		Run: func(scale int64) *Table {
			t := &Table{ID: "fig8a", Title: "GPU cache effect on SpMV", Paper: "uncached iterations pay the matrix transfer every time", Header: []string{"iteration", "with cache", "without cache"}}
			p := workloads.SpMVParams{MatrixBytes: 1 << 30, NNZPerRow: 4, Iterations: 8, Seed: 7}
			type cell struct {
				r    workloads.Result
				hits int64
			}
			// The cached and uncached runs are independent deployments;
			// declared order (with, without) fixes the trace numbering.
			cells := RunPoints(2, func(i int, onBuild func(*core.GFlink)) cell {
				spec := paperSpec(1, 2, scaled(50_000, scale))
				spec.OnBuild = onBuild
				g := spec.Build()
				var r workloads.Result
				g.Run(func() {
					pc := p
					pc.UseCache = i == 0
					r = workloads.SpMVGPU(g, pc)
				})
				return cell{r, g.Obs.Metrics().Total("cache.hits")}
			})
			with, hitsWith := cells[0].r, cells[0].hits
			without, hitsWithout := cells[1].r, cells[1].hits
			for i := range with.Iterations {
				t.AddRow(fmt.Sprint(i+1), secs(with.Iterations[i]), secs(without.Iterations[i]))
			}
			// The registry note precedes the steady-state note: Check
			// parses the ratio from the LAST note.
			t.Note("gpu cache registry: %d hits with cache, %d without", hitsWith, hitsWithout)
			steady := len(with.Iterations) - 2
			t.Note("steady-state: uncached/cached = %.2fx", float64(without.Iterations[steady])/float64(with.Iterations[steady]))
			return t
		},
		Check: func(t *Table) error {
			// Simulated times are scale-invariant, so the steady-state
			// ratio is pinned tightly: any drift means a cost-model or
			// engine regression, not a noisy measurement.
			if len(t.Notes) == 0 {
				return fmt.Errorf("fig8a: missing steady-state note")
			}
			var r float64
			if _, err := fmt.Sscanf(t.Notes[len(t.Notes)-1], "steady-state: uncached/cached = %fx", &r); err != nil {
				return fmt.Errorf("fig8a: unparsable note %q: %w", t.Notes[len(t.Notes)-1], err)
			}
			if r < 1.80 || r > 1.88 {
				return fmt.Errorf("fig8a: steady-state uncached/cached = %.2fx, pinned band is [1.80, 1.88]", r)
			}
			// The metrics registry must agree with the figure's premise:
			// the cached run hits the GPU cache, the uncached run never
			// does.
			var hitsWith, hitsWithout int64
			found := false
			for _, n := range t.Notes {
				if _, err := fmt.Sscanf(n, "gpu cache registry: %d hits with cache, %d without", &hitsWith, &hitsWithout); err == nil {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("fig8a: missing gpu cache registry note")
			}
			if hitsWith <= 0 {
				return fmt.Errorf("fig8a: cached run recorded %d cache hits, want > 0", hitsWith)
			}
			if hitsWithout != 0 {
				return fmt.Errorf("fig8a: uncached run recorded %d cache hits, want 0", hitsWithout)
			}
			return nil
		},
	})

	register(&Experiment{
		ID:    "fig8b",
		Title: "GMapper/GReducer kernel speedups per GPU generation (single node)",
		Paper: "P100 fastest, then K20; C2050 and GTX750 comparable; GMapper speedups exceed end-to-end speedups; the GReducer gains little",
		Run: func(scale int64) *Table {
			profiles := []costmodel.GPUProfile{costmodel.GTX750, costmodel.C2050, costmodel.K20, costmodel.P100}
			t := &Table{ID: "fig8b", Title: "Kernel speedups by GPU generation", Paper: "P100 > K20 > C2050 ~ GTX750; GReducer low",
				Header: []string{"kernel", "GTX750", "C2050", "K20", "P100"}}
			type bench struct {
				name string
				run  func(g *core.GFlink) (cpu, gpu time.Duration)
			}
			benches := []bench{
				// Compute-heavy configurations so the kernels, not PCIe,
				// dominate the measured GMapper phase.
				{"KMeans GMapper", func(g *core.GFlink) (time.Duration, time.Duration) {
					p := workloads.KMeansParams{Points: 30e6, K: 40, D: 32, Iterations: 3, UseCache: true, Seed: 7}
					c := workloads.KMeansCPU(g, p)
					r := workloads.KMeansGPU(g, p)
					return c.MapPhase, r.MapPhase
				}},
				{"SpMV GMapper", func(g *core.GFlink) (time.Duration, time.Duration) {
					p := workloads.SpMVParams{MatrixBytes: 1 << 30, NNZPerRow: 64, Iterations: 3, UseCache: true, Seed: 7}
					c := workloads.SpMVCPU(g, p)
					r := workloads.SpMVGPU(g, p)
					return c.MapPhase, r.MapPhase
				}},
				{"PointAdd GMapper", func(g *core.GFlink) (time.Duration, time.Duration) {
					p := workloads.PointAddParams{Points: 100e6, Iterations: 2, Seed: 7}
					c := workloads.PointAddCPU(g, p)
					r := workloads.PointAddGPU(g, p)
					return c.MapPhase, r.MapPhase
				}},
				// The reducer is not compute-intensive: its end-to-end
				// reduce path (scan + shuffle + reduce) gains little.
				{"WordCount GReducer", func(g *core.GFlink) (time.Duration, time.Duration) {
					p := workloads.WordCountParams{Bytes: 4 << 30, Seed: 7}
					c := workloads.WordCountCPU(g, p)
					r := workloads.WordCountGPU(g, p)
					return c.Total, r.Total
				}},
			}
			// One deployment per GPU generation, fanned out across OS
			// threads; each point returns its column of speedups.
			cols := RunPoints(len(profiles), func(pi int, onBuild func(*core.GFlink)) []float64 {
				spec := paperSpec(1, 2, scaled(100_000, scale))
				spec.Profile = profiles[pi]
				spec.OnBuild = onBuild
				g := spec.Build()
				col := make([]float64, len(benches))
				g.Run(func() {
					for bi, b := range benches {
						cpu, gpu := b.run(g)
						if gpu > 0 {
							col[bi] = float64(cpu) / float64(gpu)
						}
					}
				})
				return col
			})
			results := make([][]float64, len(benches))
			for bi := range benches {
				results[bi] = make([]float64, len(profiles))
				for pi := range profiles {
					results[bi][pi] = cols[pi][bi]
				}
			}
			for bi, b := range benches {
				row := []string{b.name}
				for pi := range profiles {
					row = append(row, ratio(results[bi][pi]))
				}
				t.AddRow(row...)
			}
			t.Note("KMeans GMapper on P100/K20/C2050: %.1f/%.1f/%.1f", results[0][3], results[0][2], results[0][1])
			return t
		},
	})

	register(&Experiment{
		ID:    "fig8c",
		Title: "Concurrent multi-application execution on a single node",
		Paper: "running three apps concurrently takes slightly more than the sum of their exclusive times (the GPUs are shared)",
		Run: func(scale int64) *Table {
			t := &Table{ID: "fig8c", Title: "Concurrent apps, single node", Paper: "concurrent total slightly exceeds sum of exclusive runs",
				Header: []string{"application", "exclusive", "concurrent"}}
			div := scaled(100_000, scale)
			// Transfer-heavy, uncached configurations: each application on
			// its own saturates the node's GPUs, so sharing them cannot
			// overlap (the paper's setting).
			apps := []struct {
				name string
				run  func(g *core.GFlink)
			}{
				{"KMeans", func(g *core.GFlink) {
					workloads.KMeansGPU(g, workloads.KMeansParams{Points: 400e6, Iterations: 5, Parallelism: 2, Seed: 7})
				}},
				{"SpMV", func(g *core.GFlink) {
					workloads.SpMVGPU(g, workloads.SpMVParams{MatrixBytes: 8 << 30, FixedRows: 30_750_000, Iterations: 5, Parallelism: 2, Seed: 7})
				}},
				{"PointAdd", func(g *core.GFlink) {
					workloads.PointAddGPU(g, workloads.PointAddParams{Points: 1e9, Iterations: 5, Parallelism: 2, Seed: 7})
				}},
			}
			// Exclusive runs.
			var exclusive []time.Duration
			var exclusiveSum time.Duration
			for _, app := range apps {
				g := paperSpec(1, 2, div).Build()
				app := app
				var d time.Duration
				g.Run(func() {
					t0 := g.Clock.Now()
					app.run(g)
					d = g.Clock.Now() - t0
				})
				exclusive = append(exclusive, d)
				exclusiveSum += d
			}
			// Concurrent run on one shared deployment.
			g := paperSpec(1, 2, div).Build()
			var each []time.Duration
			var makespan time.Duration
			g.Run(func() {
				drivers := make([]func(), len(apps))
				for i, app := range apps {
					app := app
					drivers[i] = func() { app.run(g) }
				}
				each, makespan = workloads.RunConcurrently(g.Clock, drivers)
			})
			for i, app := range apps {
				t.AddRow(app.name, secs(exclusive[i]), secs(each[i]))
			}
			t.AddRow("TOTAL", secs(exclusiveSum), secs(makespan))
			t.Note("concurrent makespan / sum of exclusive = %.2f (paper: slightly above 1.0 per app-triple)", makespan.Seconds()/exclusiveSum.Seconds())
			return t
		},
	})

	register(&Experiment{
		ID:    "fig8d",
		Title: "Concurrent multi-application execution on the 10-slave cluster",
		Paper: "exclusive speedups are roughly 4x the speedups under 3-way concurrency",
		Run: func(scale int64) *Table {
			t := &Table{ID: "fig8d", Title: "Concurrent apps, cluster", Paper: "exclusive speedup ~4x the concurrent speedup",
				Header: []string{"application", "CPU", "GPU exclusive", "speedup excl", "GPU concurrent", "speedup conc"}}
			div := scaled(200_000, scale)
			type app struct {
				name string
				cpu  func(g *core.GFlink) workloads.Result
				gpu  func(g *core.GFlink) workloads.Result
			}
			// Uncached, transfer-heavy settings (parallelism 10, one task
			// per slave and app): each application alone keeps every GPU
			// busy, so three-way sharing serializes on the devices.
			apps := []app{
				{"KMeans",
					func(g *core.GFlink) workloads.Result {
						return workloads.KMeansCPU(g, workloads.KMeansParams{Points: 800e6, Iterations: 5, Parallelism: 10, FromHDFS: true, WriteResult: true, Seed: 7})
					},
					func(g *core.GFlink) workloads.Result {
						return workloads.KMeansGPU(g, workloads.KMeansParams{Points: 800e6, Iterations: 5, Parallelism: 10, FromHDFS: true, WriteResult: true, Seed: 7})
					}},
				{"SpMV",
					func(g *core.GFlink) workloads.Result {
						return workloads.SpMVCPU(g, workloads.SpMVParams{MatrixBytes: 16 << 30, FixedRows: 30_750_000, Iterations: 5, Parallelism: 10, FromHDFS: true, WriteResult: true, Seed: 7})
					},
					func(g *core.GFlink) workloads.Result {
						return workloads.SpMVGPU(g, workloads.SpMVParams{MatrixBytes: 16 << 30, FixedRows: 30_750_000, Iterations: 5, Parallelism: 10, FromHDFS: true, WriteResult: true, Seed: 7})
					}},
				{"PointAdd",
					func(g *core.GFlink) workloads.Result {
						return workloads.PointAddCPU(g, workloads.PointAddParams{Points: 2e9, Iterations: 5, Parallelism: 10, Seed: 7})
					},
					func(g *core.GFlink) workloads.Result {
						return workloads.PointAddGPU(g, workloads.PointAddParams{Points: 2e9, Iterations: 5, Parallelism: 10, Seed: 7})
					}},
			}
			var cpuT, exclT []time.Duration
			for _, a := range apps {
				g := paperSpec(10, 2, div).Build()
				var c, r workloads.Result
				g.Run(func() {
					c = a.cpu(g)
					r = a.gpu(g)
				})
				cpuT = append(cpuT, c.Total)
				exclT = append(exclT, r.Total)
			}
			g := paperSpec(10, 2, div).Build()
			var each []time.Duration
			g.Run(func() {
				drivers := make([]func(), len(apps))
				for i, a := range apps {
					a := a
					drivers[i] = func() { a.gpu(g) }
				}
				each, _ = workloads.RunConcurrently(g.Clock, drivers)
			})
			var exclSp, concSp float64
			for i, a := range apps {
				se := float64(cpuT[i]) / float64(exclT[i])
				sc := float64(cpuT[i]) / float64(each[i])
				exclSp += se
				concSp += sc
				t.AddRow(a.name, secs(cpuT[i]), secs(exclT[i]), ratio(se), secs(each[i]), ratio(sc))
			}
			t.Note("mean exclusive speedup / mean concurrent speedup = %.2f (paper: ~4)", exclSp/concSp)
			return t
		},
	})
}
