package bench

import (
	"bytes"
	"testing"

	"gflink/internal/core"
	"gflink/internal/obs"
)

// engineTrace runs one experiment with tracing and returns the Chrome
// trace bytes, optionally flipping every deployment's clock to the
// legacy (pre-batching, one-timer-per-dispatch) engine before it runs.
func engineTrace(t *testing.T, id string, legacy bool) []byte {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("%s not registered", id)
	}
	if legacy {
		deployConfigure = func(g *core.GFlink) { g.Clock.SetLegacyDispatch(true) }
		defer func() { deployConfigure = nil }()
	}
	_, procs := RunTraced(e, testScale)
	data, err := obs.ChromeTrace(procs...)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestBatchedDispatchMatchesLegacyTraces is the equivalence gate on the
// batched vclock dispatcher: on full experiment workloads (fig8a's two
// SpMV deployments and the six streaming backpressure cells), the
// batched engine must produce byte-identical traces to the retained
// legacy engine. Any divergence means batching changed a wake order —
// exactly the regression the FIFO-by-seq invariant forbids.
func TestBatchedDispatchMatchesLegacyTraces(t *testing.T) {
	for _, id := range []string{"fig8a", "abl-backpressure"} {
		batched := engineTrace(t, id, false)
		legacy := engineTrace(t, id, true)
		if !bytes.Equal(batched, legacy) {
			t.Errorf("%s: batched-dispatch trace differs from legacy-dispatch trace (%d vs %d bytes)", id, len(batched), len(legacy))
		}
	}
}
