package bench

import (
	"bytes"
	"runtime"
	"strings"
	"testing"

	"gflink/internal/obs"
)

// oocoreTrace runs abl-oocore with tracing and returns the rendered
// table plus the Chrome trace bytes of every deployment the sweep
// built (one per workload x factor x policy cell).
func oocoreTrace(t *testing.T) (string, []byte) {
	t.Helper()
	e, ok := ByID("abl-oocore")
	if !ok {
		t.Fatal("abl-oocore not registered")
	}
	tbl, procs := RunTraced(e, testScale)
	want := 2 * len(oocoreFactors) * len(oocorePolicies)
	if len(procs) != want {
		t.Fatalf("abl-oocore built %d deployments, want %d (2 workloads x %d factors x %d policies)",
			len(procs), want, len(oocoreFactors), len(oocorePolicies))
	}
	data, err := obs.ChromeTrace(procs...)
	if err != nil {
		t.Fatal(err)
	}
	return tbl.String(), data
}

// TestOocoreDeterministic pins the tiered subsystem's determinism for
// every eviction policy at once: the abl-oocore sweep (which runs all
// four policies through demotion, spill and promotion) must render a
// byte-identical table and a byte-identical trace across repeat runs
// and GOMAXPROCS settings. The CI race job runs this with -race.
func TestOocoreDeterministic(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	tblSingle, trSingle := oocoreTrace(t)
	runtime.GOMAXPROCS(4)
	tblMulti, trMulti := oocoreTrace(t)
	tblRepeat, trRepeat := oocoreTrace(t)
	if tblSingle != tblMulti {
		t.Error("abl-oocore table differs between GOMAXPROCS=1 and GOMAXPROCS=4")
	}
	if tblMulti != tblRepeat {
		t.Error("abl-oocore table differs between repeat runs")
	}
	if !bytes.Equal(trSingle, trMulti) {
		t.Error("abl-oocore trace differs between GOMAXPROCS=1 and GOMAXPROCS=4")
	}
	if !bytes.Equal(trMulti, trRepeat) {
		t.Error("abl-oocore trace differs between repeat runs")
	}
}

// TestOocoreTraceMemTrack checks the tier's spans land on the gpu<d>/mem
// track with the demote/spill/promote/reload phase names.
func TestOocoreTraceMemTrack(t *testing.T) {
	_, data := oocoreTrace(t)
	if err := obs.ValidateChromeTrace(data); err != nil {
		t.Fatalf("trace fails schema validation: %v", err)
	}
	s := string(data)
	for _, want := range []string{
		`gpu0/mem`,
		`"name":"demote"`,
		`"name":"spill"`,
		`"name":"promote"`,
		`"name":"reload"`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("abl-oocore trace missing %s", want)
		}
	}
}
