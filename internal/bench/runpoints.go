package bench

import (
	"sync"

	"gflink/internal/core"
)

// RunPoints executes n independent sweep points concurrently — one
// goroutine per point, spread across the OS threads GOMAXPROCS allows —
// and returns their results in declared (index) order. Each point must
// be self-contained: it builds its own deployment(s), and every
// deployment owns an isolated vclock.Clock, so points share no
// simulated state and every point's virtual-time result is
// deterministic regardless of how the host interleaves them.
//
// The onBuild argument passed to run replaces the package-global
// deployObserver hook for that point: the global hook is unsynchronized
// by design (serial experiments run one at a time), so parallel points
// must not touch it mid-run. RunPoints collects each point's
// deployments privately and replays them to the global hook in declared
// point order after the barrier, which keeps RunTraced's "<id>#<n>"
// process numbering — and therefore the exported traces — byte-for-byte
// independent of GOMAXPROCS.
func RunPoints[T any](n int, run func(i int, onBuild func(*core.GFlink)) T) []T {
	out := make([]T, n)
	builds := make([][]*core.GFlink, n)
	configure := deployConfigure // snapshot: points must not race a swap
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		// Host-side fan-out, not a simulated process: each point owns an
		// isolated vclock.Clock, so there is no virtual clock for these
		// goroutines to register with.
		//gflink:allow-go host-side sweep fan-out; each point runs its own isolated clock
		go func() {
			defer wg.Done()
			out[i] = run(i, func(g *core.GFlink) {
				// Configuration (e.g. the legacy-dispatch flip of the
				// engine-equivalence tests) must land before the point
				// runs its clock; only observation waits for the barrier.
				if configure != nil {
					configure(g)
				}
				builds[i] = append(builds[i], g)
			})
		}()
	}
	wg.Wait()
	for _, gs := range builds {
		for _, g := range gs {
			observeDeploy(g)
		}
	}
	return out
}
