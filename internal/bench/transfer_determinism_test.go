package bench

import (
	"bytes"
	"runtime"
	"strings"
	"testing"

	"gflink/internal/obs"
)

// ablTraceAndTable runs one transfer-channel ablation with tracing and
// returns its rendered table plus the Chrome trace bytes of every
// deployment it built.
func ablTraceAndTable(t *testing.T, id string) (string, []byte) {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("%s not registered", id)
	}
	tbl, procs := RunTraced(e, testScale)
	if len(procs) == 0 {
		t.Fatalf("%s built no deployments", id)
	}
	data, err := obs.ChromeTrace(procs...)
	if err != nil {
		t.Fatal(err)
	}
	return tbl.String(), data
}

// TestTransferAblationsDeterministic extends the byte-identity
// guarantee to the new transfer-channel paths: the projection ranges
// and the chunked double-buffered pipeline (two streams, per-chunk
// spans) must yield the same table string and the same Chrome trace
// bytes across repeat runs and GOMAXPROCS settings. The CI race job
// runs this with -race.
func TestTransferAblationsDeterministic(t *testing.T) {
	for _, id := range []string{"abl-projection", "abl-chunking"} {
		t.Run(id, func(t *testing.T) {
			prev := runtime.GOMAXPROCS(1)
			defer runtime.GOMAXPROCS(prev)
			tbl1, trace1 := ablTraceAndTable(t, id)
			runtime.GOMAXPROCS(4)
			tbl4, trace4 := ablTraceAndTable(t, id)
			tblR, traceR := ablTraceAndTable(t, id)
			if tbl1 != tbl4 {
				t.Errorf("%s table differs between GOMAXPROCS=1 and 4:\n%s\nvs\n%s", id, tbl1, tbl4)
			}
			if !bytes.Equal(trace1, trace4) {
				t.Errorf("%s trace differs between GOMAXPROCS=1 and 4", id)
			}
			if tbl4 != tblR || !bytes.Equal(trace4, traceR) {
				t.Errorf("%s differs between repeat runs at the same GOMAXPROCS", id)
			}
		})
	}
}

// TestChunkingTraceContent validates the chunked run's trace: it passes
// schema validation, the double-buffer lane tracks appear, per-chunk
// stage spans are present, and gwork spans carry the chunks/overlap
// annotations only chunked works get.
func TestChunkingTraceContent(t *testing.T) {
	_, data := ablTraceAndTable(t, "abl-chunking")
	if err := obs.ValidateChromeTrace(data); err != nil {
		t.Fatalf("trace fails schema validation: %v", err)
	}
	s := string(data)
	for _, want := range []string{
		`/dbuf0`,          // double-buffer lane tracks
		`/dbuf1`,          //
		`"cat":"chunk"`,   // per-chunk spans
		`"name":"h2d.c0"`, // chunk 0 carries the real copy
		`"name":"kernel.c0"`,
		`"chunks"`, // chunked gwork annotation
		`"overlap"`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("chunked trace missing %s", want)
		}
	}
}
