package bench

import (
	"fmt"
	"time"

	"gflink/internal/core"
	"gflink/internal/costmodel"
)

// The out-of-core ablation shrinks the device to a 256 MiB profile so
// working sets of a few hundred MiB overflow the cache region, the
// host paging tier and finally the simulated spill disk. All sizes are
// nominal (paper-scale) bytes; the real buffers stay tiny.
const (
	oocoreDevBytes   = 256 << 20 // device memory of the shrunken profile
	oocoreCacheBytes = 192 << 20 // cache-region capacity ("device memory" of the sweep)
	oocoreHostTier   = 192 << 20 // host paging tier capacity
	oocoreHotNominal = 32 << 20  // the reuse-heavy sweep's hot (centroids-like) block
	oocoreColdNom    = 16 << 20  // one cold (points/matrix) block
	oocoreSweeps     = 3         // full passes over the cold working set
)

// oocoreFactors are the working-set sizes as multiples of the cache
// capacity: resident, 2x (the LRU-vs-FIFO check point), and the deep
// out-of-core points where the host tier itself overflows to disk.
var oocoreFactors = []int{1, 2, 5, 10}

// oocorePolicies is the sweep's policy axis, in table-column order.
var oocorePolicies = []core.CachePolicy{
	core.EvictFIFO, core.StopWhenFull, core.EvictLRU, core.EvictCostAware,
}

// oocoreCell is one (workload, factor, policy) run.
type oocoreCell struct {
	makespan   time.Duration
	demotions  int64
	promotions int64
	spills     int64
	reloads    int64
}

// oocoreRun drives one sweep on a fresh single-GPU deployment with the
// host paging tier armed. kind "kmeans" is the reuse-heavy pattern: a
// hot broadcast-like block rides every work while cold blocks cycle,
// so recency-aware policies keep the hot block resident and FIFO ages
// it out. kind "spmv" is a pure cyclic scan over cold blocks — the
// pattern where FIFO and LRU behave alike — included as the contrast.
func oocoreRun(kind string, factor int, policy core.CachePolicy, onBuild func(*core.GFlink)) oocoreCell {
	prof := costmodel.C2050
	prof.Name = "C2050-oocore"
	prof.MemBytes = oocoreDevBytes

	spec := paperSpec(1, 1, 1)
	spec.Profile = prof
	spec.CacheBytes = oocoreCacheBytes
	spec.CachePolicy = policy
	spec.HostTierBytes = oocoreHostTier
	spec.StreamsPerGPU = 1
	spec.OnBuild = onBuild
	g := spec.Build()

	coldTotal := int64(factor) * oocoreCacheBytes
	if kind == "kmeans" {
		coldTotal -= oocoreHotNominal
	}
	numCold := int(coldTotal / oocoreColdNom)

	var cell oocoreCell
	g.Run(func() {
		pool := g.Cluster.TaskManagers[0].Pool
		in := pool.MustAllocate(512)
		hotKey := core.CacheKey{JobID: 1, Partition: 0, Block: 1 << 20}
		t0 := g.Clock.Now()
		for sweep := 0; sweep < oocoreSweeps; sweep++ {
			for b := 0; b < numCold; b++ {
				ins := []core.Input{{Buf: in, Nominal: oocoreColdNom, Cache: true,
					Key: core.CacheKey{JobID: 1, Partition: 0, Block: b}}}
				if kind == "kmeans" {
					ins = append(ins, core.Input{Buf: in, Nominal: oocoreHotNominal, Cache: true, Key: hotKey})
				}
				w := &core.GWork{
					ExecuteName: "bench.copy", Size: 8, Nominal: 8 << 20,
					BlockSize: 256, GridSize: 1,
					In:  ins,
					Out: pool.MustAllocate(256), OutNominal: 8 << 20, JobID: 1,
				}
				g.Manager(0).Streams.Submit(w)
				if err := w.Wait(); err != nil {
					panic(fmt.Sprintf("bench: abl-oocore %s %dx %v: %v", kind, factor, policy, err))
				}
			}
		}
		cell.makespan = g.Clock.Now() - t0
		g.ReleaseJobCaches(1)
	})
	m := g.Obs.Metrics()
	cell.demotions = m.Get("mem.demotions.gpu0")
	cell.promotions = m.Get("mem.promotions.gpu0")
	cell.spills = m.Get("mem.spills.gpu0")
	cell.reloads = m.Get("mem.reloads.gpu0")
	return cell
}

func init() {
	register(&Experiment{
		ID:    "abl-oocore",
		Title: "Ablation: out-of-core tiered memory — eviction policy x working-set factor",
		Paper: "Section 4.2.2 extended: with a host paging tier and spill disk, jobs larger than device memory still run; recency/cost-aware eviction keeps reused blocks resident where FIFO thrashes",
		Run: func(scale int64) *Table {
			// The sweep's cost is all simulated (tiny real buffers), so
			// scale does not shrink it; the signature is kept for the
			// harness.
			_ = scale
			t := &Table{
				ID:    "abl-oocore",
				Title: "Out-of-core tiered memory ablation",
				Paper: "LRU/cost-aware keep the hot block under reuse; spills engage at 5x+",
				Header: []string{"workload", "working set",
					"fifo", "stop-when-full", "lru", "cost-aware"},
			}
			// The 32 (workload, factor, policy) cells are independent
			// deployments, so the sweep fans out across OS threads; the
			// declared order below is the table's row-major order.
			type point struct {
				kind   string
				factor int
				pol    core.CachePolicy
			}
			var pts []point
			for _, kind := range []string{"kmeans", "spmv"} {
				for _, f := range oocoreFactors {
					for _, pol := range oocorePolicies {
						pts = append(pts, point{kind, f, pol})
					}
				}
			}
			run := RunPoints(len(pts), func(i int, onBuild func(*core.GFlink)) oocoreCell {
				return oocoreRun(pts[i].kind, pts[i].factor, pts[i].pol, onBuild)
			})
			var spillsDeep int64
			cells := map[string]map[int]map[string]oocoreCell{}
			i := 0
			for _, kind := range []string{"kmeans", "spmv"} {
				cells[kind] = map[int]map[string]oocoreCell{}
				for _, f := range oocoreFactors {
					row := []string{kind, fmt.Sprintf("%dx", f)}
					cells[kind][f] = map[string]oocoreCell{}
					for _, pol := range oocorePolicies {
						c := run[i]
						i++
						cells[kind][f][pol.String()] = c
						row = append(row, secs(c.makespan))
						if f >= 5 {
							spillsDeep += c.spills
						}
					}
					t.AddRow(row...)
				}
			}
			km2 := cells["kmeans"][2]
			sp2 := cells["spmv"][2]
			lruFifoKM := float64(km2["lru"].makespan) / float64(km2["fifo"].makespan)
			lruFifoSP := float64(sp2["lru"].makespan) / float64(sp2["fifo"].makespan)
			t.Note("kmeans 2x: lru/fifo makespan = %.4fx", lruFifoKM)
			t.Note("spmv 2x (cyclic, no reuse skew): lru/fifo makespan = %.4fx", lruFifoSP)
			t.Note("kmeans 2x fifo tier traffic: %d demotions, %d promotions, %d reloads",
				km2["fifo"].demotions, km2["fifo"].promotions, km2["fifo"].reloads)
			t.Note("mem.spills at 5x+: %d", spillsDeep)
			return t
		},
		Check: func(t *Table) error {
			if len(t.Rows) == 0 {
				return fmt.Errorf("abl-oocore: empty table")
			}
			var lruOverFifo float64
			var spills int64
			foundRatio, foundSpills := false, false
			for _, n := range t.Notes {
				if _, err := fmt.Sscanf(n, "kmeans 2x: lru/fifo makespan = %fx", &lruOverFifo); err == nil {
					foundRatio = true
					continue
				}
				if _, err := fmt.Sscanf(n, "mem.spills at 5x+: %d", &spills); err == nil {
					foundSpills = true
				}
			}
			if !foundRatio || !foundSpills {
				return fmt.Errorf("abl-oocore: missing pinned notes (ratio %v, spills %v)", foundRatio, foundSpills)
			}
			if lruOverFifo >= 1 {
				return fmt.Errorf("abl-oocore: LRU (%.4fx of FIFO) does not strictly beat FIFO at 2x device memory on the reuse-heavy sweep", lruOverFifo)
			}
			if spills <= 0 {
				return fmt.Errorf("abl-oocore: no spill-disk writes at 5x+ working sets — the host tier never overflowed")
			}
			return nil
		},
	})
}
