package bench

import (
	"fmt"

	"gflink/internal/core"
	"gflink/internal/obs"
)

// deployObserver, when non-nil, sees every deployment paperSpec builds.
// RunTraced installs it around one experiment run to collect each
// deployment's tracer; experiments run one at a time (the bench CLI and
// the test harness are sequential), so a plain package variable is
// enough — no locking, no goroutines. Under RunPoints the observer
// still runs sequentially: each point collects its deployments
// privately and RunPoints replays them here, in declared point order,
// after the barrier.
var deployObserver func(*core.GFlink)

// deployConfigure, when non-nil, runs against every deployment at build
// time — before the deployment's clock starts — unlike deployObserver,
// which RunPoints defers to the post-barrier replay. Parallel points
// call it concurrently for their own deployments, so an installed hook
// must only touch the deployment it is handed (the engine-equivalence
// tests use it to flip fresh clocks to the legacy dispatcher).
var deployConfigure func(*core.GFlink)

// observeBuild is the Spec.OnBuild hook paperSpec wires in on the
// serial path: configure at build time, then observe.
func observeBuild(g *core.GFlink) {
	if deployConfigure != nil {
		deployConfigure(g)
	}
	observeDeploy(g)
}

// observeDeploy feeds one deployment to the (sequential-only) observer;
// RunPoints replays collected deployments through it in declared order.
func observeDeploy(g *core.GFlink) {
	if deployObserver != nil {
		deployObserver(g)
	}
}

// RunTraced runs one experiment and returns its table together with a
// TraceProcess per deployment the run built, named "<id>#<n>" in build
// order. Tracing only reads the virtual clock, so the table is
// byte-identical to an untraced run.
func RunTraced(e *Experiment, scale int64) (*Table, []obs.TraceProcess) {
	var procs []obs.TraceProcess
	deployObserver = func(g *core.GFlink) {
		procs = append(procs, obs.TraceProcess{
			Name:   fmt.Sprintf("%s#%d", e.ID, len(procs)),
			Tracer: g.Obs.Tracer(),
		})
	}
	defer func() { deployObserver = nil }()
	return e.Run(scale), procs
}
