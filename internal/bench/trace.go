package bench

import (
	"fmt"

	"gflink/internal/core"
	"gflink/internal/obs"
)

// deployObserver, when non-nil, sees every deployment paperSpec builds.
// RunTraced installs it around one experiment run to collect each
// deployment's tracer; experiments run one at a time (the bench CLI and
// the test harness are sequential), so a plain package variable is
// enough — no locking, no goroutines.
var deployObserver func(*core.GFlink)

// observeBuild is the Spec.OnBuild hook paperSpec wires in.
func observeBuild(g *core.GFlink) {
	if deployObserver != nil {
		deployObserver(g)
	}
}

// RunTraced runs one experiment and returns its table together with a
// TraceProcess per deployment the run built, named "<id>#<n>" in build
// order. Tracing only reads the virtual clock, so the table is
// byte-identical to an untraced run.
func RunTraced(e *Experiment, scale int64) (*Table, []obs.TraceProcess) {
	var procs []obs.TraceProcess
	deployObserver = func(g *core.GFlink) {
		procs = append(procs, obs.TraceProcess{
			Name:   fmt.Sprintf("%s#%d", e.ID, len(procs)),
			Tracer: g.Obs.Tracer(),
		})
	}
	defer func() { deployObserver = nil }()
	return e.Run(scale), procs
}
