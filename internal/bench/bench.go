// Package bench regenerates every table and figure of the paper's
// evaluation (Section 6) plus the ablation studies DESIGN.md calls out.
// Each Experiment runs the relevant workloads on a simulated deployment
// matching the paper's testbed (10 slave nodes, 4 CPU cores + 2 Tesla
// C2050 per node unless the experiment says otherwise) and renders the
// same rows/series the paper reports.
//
// Reported times are virtual seconds from the simulation's cost models;
// the claims under reproduction are the *shapes* (who wins, by what
// rough factor, how the factor moves), recorded per experiment in the
// notes and checked in the tests.
package bench

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Table is one experiment's rendered result.
type Table struct {
	ID     string
	Title  string
	Paper  string // the shape the paper reports
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Note appends a formatted observation line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	if t.Paper != "" {
		fmt.Fprintf(&b, "paper: %s\n", t.Paper)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as GitHub markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	if t.Paper != "" {
		fmt.Fprintf(&b, "*Paper shape:* %s\n\n", t.Paper)
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(t.Header, " | "))
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(seps, " | "))
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "| %s |\n", strings.Join(r, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*Note:* %s\n", n)
	}
	b.WriteByte('\n')
	return b.String()
}

// Experiment regenerates one paper artifact. Scale multiplies the
// experiment's baseline scale divisor: 1 is the default fidelity, larger
// values run faster on smaller real data without changing any simulated
// cost.
type Experiment struct {
	ID    string
	Title string
	Paper string
	Run   func(scale int64) *Table
	// Check validates a rendered table against the experiment's pinned
	// shape (nil = no machine check). The bench CLI's -check flag runs
	// it so CI can fail on simulated-time regressions.
	Check func(t *Table) error
}

var registry = map[string]*Experiment{}

// register installs an experiment; duplicate IDs panic.
func register(e *Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("bench: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// ByID resolves an experiment.
func ByID(id string) (*Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every experiment sorted by ID.
func All() []*Experiment {
	out := make([]*Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// secs formats a duration as seconds.
func secs(d time.Duration) string { return fmt.Sprintf("%.2fs", d.Seconds()) }

// parseSeconds parses a cell secs rendered, for Check functions.
func parseSeconds(cell string) (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "s"), 64)
	if err != nil {
		return 0, fmt.Errorf("cell %q is not seconds: %w", cell, err)
	}
	return v, nil
}

// ratio formats a speedup.
func ratio(x float64) string { return fmt.Sprintf("%.2fx", x) }

// scaled applies the experiment scale to a baseline divisor, keeping at
// least 1.
func scaled(base, scale int64) int64 {
	if scale < 1 {
		scale = 1
	}
	return base * scale
}
