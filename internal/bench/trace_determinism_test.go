package bench

import (
	"bytes"
	"runtime"
	"strings"
	"testing"

	"gflink/internal/obs"
)

// fig8aTrace runs fig8a with tracing and returns the Chrome trace
// bytes. fig8a is the golden-trace experiment: two single-node SpMV
// deployments (cached and uncached), so the trace exercises queue
// waits, the three-stage pipeline, cache hit/miss annotations and
// multi-process export.
func fig8aTrace(t *testing.T) []byte {
	t.Helper()
	e, ok := ByID("fig8a")
	if !ok {
		t.Fatal("fig8a not registered")
	}
	_, procs := RunTraced(e, testScale)
	if len(procs) != 2 {
		t.Fatalf("fig8a built %d deployments, want 2 (cached + uncached)", len(procs))
	}
	data, err := obs.ChromeTrace(procs...)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestFig8aTraceDeterministic is the tentpole guarantee: the span
// stream is a pure function of the simulated schedule, so the exported
// trace is byte-identical across repeat runs and GOMAXPROCS settings
// (the CI race job runs this with -race, catching any unsynchronized
// recording).
func TestFig8aTraceDeterministic(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	single := fig8aTrace(t)
	runtime.GOMAXPROCS(4)
	multi := fig8aTrace(t)
	repeat := fig8aTrace(t)
	if !bytes.Equal(single, multi) {
		t.Error("trace differs between GOMAXPROCS=1 and GOMAXPROCS=4")
	}
	if !bytes.Equal(multi, repeat) {
		t.Error("trace differs between repeat runs at the same GOMAXPROCS")
	}
}

func TestFig8aTraceSchemaAndContent(t *testing.T) {
	data := fig8aTrace(t)
	if err := obs.ValidateChromeTrace(data); err != nil {
		t.Fatalf("trace fails schema validation: %v", err)
	}
	s := string(data)
	for _, want := range []string{
		`"args":{"name":"fig8a#0"}`, // cached deployment's process row
		`"args":{"name":"fig8a#1"}`, // uncached deployment's process row
		`"cat":"queue"`,             // queue-wait spans
		`"cat":"gwork"`,             // per-GWork spans
		`"name":"h2d"`,              // pipeline stage children
		`"name":"kernel"`,
		`"name":"d2h"`,
		`"cache_hits"`, // cache annotations on gwork spans
		`"stolen_from"`,
		`w0/gpu0/s0`, // stream tracks
		`w0/gpu0/queue`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("trace missing %s", want)
		}
	}
}

// TestTracedRunMatchesUntraced pins the "observability changes no
// simulated result" invariant end to end: the rendered table of a
// traced run is identical to an untraced one.
func TestTracedRunMatchesUntraced(t *testing.T) {
	e, ok := ByID("fig8a")
	if !ok {
		t.Fatal("fig8a not registered")
	}
	traced, procs := RunTraced(e, testScale)
	plain := e.Run(testScale)
	if traced.String() != plain.String() {
		t.Errorf("traced table differs from untraced:\n%s\nvs\n%s", traced.String(), plain.String())
	}
	total := 0
	for _, p := range procs {
		total += p.Tracer.Len()
	}
	if total == 0 {
		t.Error("traced run recorded no spans")
	}
}
